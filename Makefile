# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: build vet fmt lint lint-stats test fuzz-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	test -z "$$(gofmt -l . | tee /dev/stderr)"

# The repository's invariant analyzers (clockcheck, batchshare, guardedby,
# gaugekey, lockorder, leakcheck, hotpath). Any diagnostic fails the build;
# see internal/analysis/doc.go.
lint:
	$(GO) run ./cmd/scilint ./...

# Finding/suppression counts as JSON, for the CI artifact that tracks the
# lint surface over time. Always exits 0; `make lint` is the gate.
lint-stats:
	$(GO) run ./cmd/scilint -stats ./... | tee lint-stats.json

test:
	$(GO) test -race -shuffle=on ./...

fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzBinaryRoundTrip -fuzztime 10s ./internal/wire/

check: build vet fmt lint test
