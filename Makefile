# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: build vet fmt lint test fuzz-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	test -z "$$(gofmt -l . | tee /dev/stderr)"

# The repository's invariant analyzers (clockcheck, batchshare, guardedby,
# gaugekey). Any diagnostic fails the build; see internal/analysis/doc.go.
lint:
	$(GO) run ./cmd/scilint ./...

test:
	$(GO) test -race -shuffle=on ./...

fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzBinaryRoundTrip -fuzztime 10s ./internal/wire/

check: build vet fmt lint test
