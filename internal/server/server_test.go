package server

import (
	"errors"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mediator"
	"sci/internal/query"
	"sci/internal/sensor"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

func testMap(t testing.TB) *location.Map {
	t.Helper()
	places := []location.Place{
		{ID: "lobby", Path: "campus/lt/l10/lobby", Centroid: location.Point{Frame: "L10", X: 0, Y: 0}},
		{ID: "corr", Path: "campus/lt/l10/corr", Centroid: location.Point{Frame: "L10", X: 10, Y: 0}},
		{ID: "l10.01", Path: "campus/lt/l10/l10.01", Centroid: location.Point{Frame: "L10", X: 20, Y: 0}},
		{ID: "l10.02", Path: "campus/lt/l10/l10.02", Centroid: location.Point{Frame: "L10", X: 30, Y: 0}},
	}
	links := []location.Link{
		{A: "lobby", B: "corr", Door: "d-lobby"},
		{A: "corr", B: "l10.01", Door: "d-1001"},
		{A: "corr", B: "l10.02", Door: "d-1002"},
	}
	m, err := location.NewMap(places, links)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// world is a Range with door sensors, an objLocation CE and a CAA.
type world struct {
	rng   *Range
	clk   *clock.Manual
	doors map[string]*sensor.DoorSensor
	obj   *entity.ObjLocationCE
	caa   *entity.CAA
}

func newWorld(t testing.TB) *world {
	t.Helper()
	clk := clock.NewManual(epoch)
	m := testMap(t)
	rng := New(Config{
		Name:     "level-10",
		Clock:    clk,
		Places:   m,
		Coverage: "campus/lt/l10",
		// Tests advance the manual clock across lease periods; keep local
		// components alive unless a test silences them explicitly.
		AutoRenewEvery: 5 * time.Second,
	})
	w := &world{rng: rng, clk: clk, doors: map[string]*sensor.DoorSensor{}}
	for _, d := range []struct {
		door  string
		place location.PlaceID
	}{{"d-lobby", "lobby"}, {"d-1001", "l10.01"}, {"d-1002", "l10.02"}} {
		ds := sensor.NewDoorSensor(d.door, location.AtPlace(d.place), clk)
		w.doors[d.door] = ds
		if err := rng.AddEntity(ds); err != nil {
			t.Fatal(err)
		}
	}
	w.obj = entity.NewObjLocationCE(m, clk)
	if err := rng.AddEntity(w.obj); err != nil {
		t.Fatal(err)
	}
	w.caa = entity.NewCAA("test-app", nil, clk)
	if err := rng.AddApplication(w.caa); err != nil {
		t.Fatal(err)
	}
	return w
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestAddEntityRegistersEverything(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	ds := w.doors["d-1001"]
	if !w.rng.Registrar().IsLive(ds.ID()) {
		t.Fatal("not registered")
	}
	if _, err := w.rng.Profiles().Get(ds.ID()); err != nil {
		t.Fatal("profile not stored")
	}
	if _, ok := w.rng.Component(ds.ID()); !ok {
		t.Fatal("component not tracked")
	}
	if !ds.Attached() {
		t.Fatal("not attached to mediator")
	}
}

func TestSubscribeQueryEndToEnd(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	q := query.New(w.caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	res, err := w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferred || res.Configuration.IsNil() {
		t.Fatalf("result = %+v", res)
	}
	// Trigger the bound door; a position event must reach the CAA.
	bob := guid.New(guid.KindPerson)
	for _, ds := range w.doors {
		if err := ds.Sight(bob, "l10.01"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return w.caa.PendingEvents() >= 1 })
	evs := w.caa.TakeEvents()
	if evs[0].Type != ctxtype.LocationPosition || evs[0].Subject != bob {
		t.Fatalf("delivered = %+v", evs[0])
	}
}

func TestProfileQueryModes(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()

	// By pattern.
	q := query.New(w.caa.ID(), query.What{Pattern: ctxtype.LocationSightingDoor}, query.ModeProfile)
	res, err := w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 3 {
		t.Fatalf("profiles = %d, want 3 doors", len(res.Profiles))
	}
	// By named entity.
	q = query.New(w.caa.ID(), query.What{Entity: w.obj.ID()}, query.ModeProfile)
	res, err = w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 1 || res.Profiles[0].Entity != w.obj.ID() {
		t.Fatal("entity profile wrong")
	}
	// By entity type (kind attribute).
	q = query.New(w.caa.ID(), query.What{EntityType: "door-sensor"}, query.ModeProfile)
	res, err = w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 3 {
		t.Fatalf("door-sensor profiles = %d", len(res.Profiles))
	}
	// Unknown entity errors.
	q = query.New(w.caa.ID(), query.What{Entity: guid.New(guid.KindEntity)}, query.ModeProfile)
	if _, err := w.rng.Submit(q); err == nil {
		t.Fatal("unknown entity profile succeeded")
	}
}

func TestAdvertisementModeAndServiceCall(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	p1 := sensor.NewPrinter("P1", location.AtPlace("corr"), w.clk)
	if err := w.rng.AddEntity(p1); err != nil {
		t.Fatal(err)
	}
	q := query.New(w.caa.ID(), query.What{EntityType: "printer"}, query.ModeAdvertisement)
	res, err := w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Provider != p1.ID() || res.Advertisement == nil || res.Advertisement.Interface != "printer" {
		t.Fatalf("advertisement result = %+v", res)
	}
	// Call the advertised service point-to-point.
	out, err := w.rng.CallService(res.Provider, "submit", map[string]any{"doc": "paper.pdf"})
	if err != nil {
		t.Fatal(err)
	}
	if out["job"] == "" {
		t.Fatal("no job id")
	}
	if _, err := w.rng.CallService(guid.New(guid.KindDevice), "x", nil); !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("unknown provider: %v", err)
	}
}

func TestSubscribeRequiresRegisteredCAA(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	if _, err := w.rng.Submit(q); !errors.Is(err, ErrNoCAA) {
		t.Fatalf("foreign owner: %v", err)
	}
}

func TestDeferredQueryFiresOnTrigger(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	bob := guid.New(guid.KindPerson)

	// CAPA configuration X: execute when Bob enters L10.01.
	q := query.New(w.caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	q.When.Trigger = &event.Filter{
		Type:    ctxtype.LocationSightingDoor,
		Subject: bob,
	}
	res, err := w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deferred {
		t.Fatal("query not deferred")
	}
	if got := w.rng.PendingQueries(); len(got) != 1 || got[0] != q.ID {
		t.Fatalf("pending = %v", got)
	}
	if w.rng.QueriesDeferred.Value() != 1 {
		t.Fatal("deferred counter")
	}

	// Bob walks through the door: the trigger fires, the configuration is
	// built and executes; subsequent sightings now reach the CAA.
	if err := w.doors["d-1001"].Sight(bob, "l10.01"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(w.rng.PendingQueries()) == 0 })
	waitFor(t, func() bool { return w.rng.QueriesExecuted.Value() == 1 })

	// Another sighting flows through the now-live configuration. The
	// resolver bound one specific door, so sight through all of them.
	for _, ds := range w.doors {
		if err := ds.Sight(bob, "lobby"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return w.caa.PendingEvents() >= 1 })
}

func TestDeferredQueryFiresAtInstant(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	q := query.New(w.caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	q.When.After = epoch.Add(time.Hour)
	res, err := w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deferred {
		t.Fatal("not deferred")
	}
	w.clk.Advance(time.Hour)
	waitFor(t, func() bool { return w.rng.QueriesExecuted.Value() == 1 })
	if len(w.rng.PendingQueries()) != 0 {
		t.Fatal("still pending after firing")
	}
}

func TestDeferredQueryExpires(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	q := query.New(w.caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	q.When.Trigger = &event.Filter{Type: ctxtype.LocationSightingDoor, Subject: guid.New(guid.KindPerson)}
	q.When.Expires = epoch.Add(time.Minute)
	if _, err := w.rng.Submit(q); err != nil {
		t.Fatal(err)
	}
	w.clk.Advance(2 * time.Minute)
	waitFor(t, func() bool { return len(w.rng.PendingQueries()) == 0 })
	// The CAA receives a query.error event.
	waitFor(t, func() bool { return w.caa.PendingEvents() >= 1 })
	evs := w.caa.TakeEvents()
	if evs[0].Type != "query.error" {
		t.Fatalf("expected error event, got %+v", evs[0])
	}
}

func TestDepartureRepairsConfiguration(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	// Add a WLAN fallback source.
	bs := sensor.NewBaseStation("lobby", []location.PlaceID{"lobby", "corr"}, location.AtPlace("lobby"), w.clk)
	if err := w.rng.AddEntity(bs); err != nil {
		t.Fatal(err)
	}
	q := query.New(w.caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	res, err := w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	// Find the bound door and remove ALL doors so the repair must cross the
	// equivalence class to the basestation.
	for name, ds := range w.doors {
		_ = name
		if err := w.rng.RemoveEntity(ds.ID()); err != nil {
			t.Fatal(err)
		}
	}
	sts := w.rng.Runtime().Active()
	if len(sts) != 1 {
		t.Fatalf("active = %d", len(sts))
	}
	foundWLAN := false
	for _, p := range sts[0].Providers {
		if p == bs.ID() {
			foundWLAN = true
		}
	}
	if !foundWLAN {
		t.Fatalf("configuration %v not rebound to basestation", sts[0])
	}
	// Context flows from the new source.
	dev := guid.New(guid.KindDevice)
	if err := bs.Observe(dev, "lobby"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return w.caa.PendingEvents() >= 1 })
	_ = res
}

func TestLeaseExpiryTriggersDepartureEvents(t *testing.T) {
	clk := clock.NewManual(epoch)
	rng := New(Config{
		Name:           "r",
		Clock:          clk,
		Lease:          30 * time.Second,
		AutoRenewEvery: 10 * time.Second,
	})
	defer rng.Close()
	ds := sensor.NewDoorSensor("d1", location.Ref{}, clk)
	if err := rng.AddEntity(ds); err != nil {
		t.Fatal(err)
	}
	caa := entity.NewCAA("app", nil, clk)
	if err := rng.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	// Lifecycle events have no provider CE, so subscribe directly through
	// the mediator rather than via a resolved configuration.
	if _, err := rng.Mediator().Subscribe(caa.ID(),
		event.Filter{Type: ctxtype.EntityDeparture}, caa.Consume,
		mediator.SubOptions{}); err != nil {
		t.Fatal(err)
	}

	// Auto-renew keeps the sensor alive across many lease periods.
	clk.Advance(2 * time.Minute)
	if !rng.Registrar().IsLive(ds.ID()) {
		t.Fatal("auto-renew failed")
	}
	// Silence it: the lease must lapse.
	rng.StopRenewing(ds.ID())
	clk.Advance(time.Minute)
	if rng.Registrar().IsLive(ds.ID()) {
		t.Fatal("silenced sensor still live")
	}
	waitFor(t, func() bool {
		for _, e := range caa.TakeEvents() {
			if e.Type == ctxtype.EntityDeparture && e.Subject == ds.ID() {
				return true
			}
		}
		return false
	})
}

func TestRemoveEntityValidation(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	if err := w.rng.RemoveEntity(guid.New(guid.KindEntity)); !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("remove unknown: %v", err)
	}
}

func TestProfileUpdateRefreshesAttributes(t *testing.T) {
	w := newWorld(t)
	defer w.rng.Close()
	p1 := sensor.NewPrinter("P1", location.AtPlace("corr"), w.clk)
	if err := w.rng.AddEntity(p1); err != nil {
		t.Fatal(err)
	}
	// Queue a job: the printer emits profile.update; the Range must refresh
	// the stored attributes so constraint queries see status=busy.
	if _, err := p1.Submit("doc"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		p, err := w.rng.Profiles().Get(p1.ID())
		return err == nil && p.Attributes["status"] == "busy"
	})
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	w := newWorld(t)
	w.rng.Close()
	w.rng.Close()
	if err := w.rng.AddEntity(sensor.NewDoorSensor("d", location.Ref{}, w.clk)); !errors.Is(err, ErrClosed) {
		t.Fatalf("add after close: %v", err)
	}
	q := query.New(w.caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	if _, err := w.rng.Submit(q); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestWhichClosestPrinterScenario(t *testing.T) {
	// Mini-CAPA: two printers; the CAA sits in l10.01; closest wins.
	w := newWorld(t)
	defer w.rng.Close()
	near := sensor.NewPrinter("P-near", location.AtPlace("corr"), w.clk)
	far := sensor.NewPrinter("P-far", location.AtPlace("lobby"), w.clk)
	for _, p := range []*sensor.Printer{near, far} {
		if err := w.rng.AddEntity(p); err != nil {
			t.Fatal(err)
		}
	}
	// Give the CAA a location by re-storing its profile with one.
	prof := w.caa.Profile()
	prof.Location = location.AtPlace("l10.01")
	if err := w.rng.Profiles().Put(prof); err != nil {
		t.Fatal(err)
	}
	q := query.New(w.caa.ID(), query.What{EntityType: "printer"}, query.ModeAdvertisement)
	q.Which.Criterion = query.CriterionClosest
	res, err := w.rng.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Provider != near.ID() {
		t.Fatalf("closest printer = %s, want P-near", res.Provider.Short())
	}
}
