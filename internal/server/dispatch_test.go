package server

// Tests for the Range's dispatch tuning and observability surface:
// Config.EventShards threading and FillMetrics.

import (
	"strings"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/entity"
	"sci/internal/metrics"
)

func TestEventShardsThreading(t *testing.T) {
	clk := clock.NewManual(time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC))
	rng := New(Config{Name: "sharded", Clock: clk, EventShards: 5})
	defer rng.Close()
	// 5 rounds up to the next power of two.
	if got := len(rng.Mediator().ShardStats()); got != 8 {
		t.Fatalf("ShardStats stripes = %d, want 8", got)
	}
	if st := rng.DispatchStats(); st.Subs == 0 {
		t.Fatalf("DispatchStats = %+v, want the Range's own profile-update subscription", st)
	}
}

func TestFillMetrics(t *testing.T) {
	clk := clock.NewManual(time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC))
	rng := New(Config{Name: "observed", Clock: clk, EventShards: 2})
	defer rng.Close()
	caa := entity.NewCAA("watcher", nil, clk)
	if err := rng.AddApplication(caa); err != nil {
		t.Fatal(err)
	}

	var m metrics.Registry
	rng.FillMetrics(&m)
	dump := m.Dump()
	for _, want := range []string{
		"eventbus.published",
		"eventbus.subs",
		"eventbus.index_hit_ratio",
		"eventbus.shard00.published",
		"eventbus.shard01.delivered",
		"queries.submitted",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("FillMetrics dump missing %q:\n%s", want, dump)
		}
	}
	if m.Gauge("eventbus.subs").Value() < 1 {
		t.Fatal("eventbus.subs gauge not populated")
	}
	ratio := m.FloatGauge("eventbus.index_hit_ratio").Value()
	if ratio < 0 || ratio > 1 {
		t.Fatalf("index_hit_ratio = %v, want within [0,1]", ratio)
	}
}
