// Package server implements the Range and its Context Server (paper,
// Section 3.1): "Each Range is governed by its own individual Context
// Server (CS), the hub for the Range. A CS is considered to be a secure,
// always on central server for management of contextual information within
// a Range."
//
// A Range owns the full set of Context Utilities — Registrar, Profile
// Manager, Event Mediator, Query Resolver, Location Service (the location
// map) and the configuration runtime — and provides the access point for
// Context Aware Applications: query submission in the four modes of
// Section 4.3, advertisement (service) calls, and deferred execution of
// stored queries whose When clauses name a future instant or a triggering
// event (the CAPA scenario's configuration X).
package server

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/configuration"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/eventbus"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mediator"
	"sci/internal/metrics"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/registry"
	"sci/internal/resolver"
)

// Config parameterises a Range.
type Config struct {
	// Name labels the Range ("level-10", "lift-lobby").
	Name string
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Types defaults to ctxtype.NewRegistry().
	Types *ctxtype.Registry
	// Places is the Range's location ground truth; may be nil.
	Places *location.Map
	// Coverage is the hierarchical area this Range manages (used by the
	// SCINET layer to direct query forwarding); may be empty.
	Coverage location.Path
	// Lease is the registration lease (default registry.DefaultLease).
	Lease time.Duration
	// MaxRepairs bounds per-configuration adaptation (default 8).
	MaxRepairs int
	// EventShards tunes the Event Mediator's dispatch lock-stripe count
	// (rounded up to a power of two; 0 = eventbus.DefaultShards). Raise it
	// on Ranges with many concurrent publishers.
	EventShards int
	// BatchMaxEvents caps how many events the Range Service coalesces into
	// one outbound wire message per remote endpoint. 0 or 1 disables
	// coalescing: every remote delivery ships as its own single-event frame.
	BatchMaxEvents int
	// BatchMaxDelay bounds how long a coalesced event may wait for its
	// batch to fill before the pending run is flushed anyway (default
	// DefaultBatchMaxDelay when BatchMaxEvents enables coalescing).
	BatchMaxDelay time.Duration
	// AdaptiveBatching derives each outbound coalescer's effective batch
	// size and flush delay from its destination's observed arrival rate,
	// between the configured floors and the BatchMaxEvents/BatchMaxDelay
	// ceilings: idle endpoints flush near-immediately, hot ones ride full
	// batches. Applies to the Range Service's per-endpoint queues and the
	// SCINET fabric's per-peer/fan-out queues alike.
	AdaptiveBatching flow.Adaptive
	// AutoRenewEvery renews all local registrations on this period
	// (0 disables; tests drive renewal manually).
	AutoRenewEvery time.Duration
	// PublisherQuota enforces per-publisher admission and weighted-fair
	// flushing: PR 5's drop attribution turned into isolation.
	PublisherQuota PublisherQuota
	// WireCodec names the wire codec the Range's transport endpoints should
	// run: "" negotiates (binary with capable peers, JSON with legacy ones),
	// "json" pins the legacy format. The Range itself never serialises —
	// deployment glue (simulations, cmd/scid) reads this through WireCodec()
	// and applies it to the transport via transport.CodecConfigurer or the
	// factory's Codec knob.
	WireCodec string
}

// PublisherQuota configures per-publisher enforcement on a Range. Rate > 0
// arms a token bucket per publishing source at the mediator's admission
// edge (Publish/PublishAll/PublishAllFrom), clipping a flooding tenant
// before it costs dispatch work; over-quota events are shed-and-counted
// (readable via QuotaRejectedFor) or, with Reject, refused with an error
// wrapping eventbus.ErrOverQuota. Enabling enforcement (Rate > 0 or any
// Weights) also switches the Range's outbound coalescers — Range Service
// endpoints and SCINET fabric queues alike — to weighted-fair per-source
// draining, so a credit-throttled link sheds the offender's backlog rather
// than every tenant's.
type PublisherQuota struct {
	// Rate is the sustained per-publisher admission rate, events/second
	// (0 disables admission control).
	Rate float64
	// Burst is the token-bucket depth (default: one second's worth of
	// Rate).
	Burst int
	// Reject refuses over-quota publishes with a typed error instead of
	// shedding the excess.
	Reject bool
	// Weights sets per-source weighted-fair drain shares for outbound
	// coalescers (absent sources weigh 1).
	Weights map[guid.GUID]int
}

// enabled reports whether any enforcement (admission or fair flushing) is
// configured.
func (q PublisherQuota) enabled() bool { return q.Rate > 0 || len(q.Weights) > 0 }

// Range is one administrative area: a Context Server plus its utilities and
// locally hosted components.
type Range struct {
	id   guid.GUID // the Range's own GUID
	cs   guid.GUID // the Context Server's GUID
	name string
	clk  clock.Clock

	types    *ctxtype.Registry
	places   *location.Map
	coverage location.Path

	registrar *registry.Registrar
	profiles  *profile.Manager
	med       *mediator.Mediator
	res       *resolver.Resolver
	runtime   *configuration.Runtime

	mu       sync.Mutex
	comps    map[guid.GUID]entity.CE
	caas     map[guid.GUID]*entity.CAA
	silenced guid.Set // components excluded from auto-renewal (failure injection)
	pending  map[guid.GUID]*pendingQuery
	closed   bool

	renewTimer clock.Timer
	watchOff   func()
	profSub    guid.GUID

	batchMaxEvents int
	batchMaxDelay  time.Duration
	adaptive       flow.Adaptive
	quota          PublisherQuota
	wireCodec      string
	// statsSources are external contributors to StatsMap/FillMetrics —
	// layers owning state the Range can't see (the Range Service's wire
	// codec and byte gauges). Each returns dotted metric names.
	statsSources []func() map[string]float64
	// flowStats is the shared backpressure/flush sink every outbound
	// coalescer shipping on this Range's behalf reports into (Range
	// Service endpoints and SCINET fabric peers alike).
	flowStats flow.SharedStats

	// Metrics.
	QueriesSubmitted metrics.Counter
	QueriesDeferred  metrics.Counter
	QueriesExecuted  metrics.Counter
	ResolveLatency   metrics.Histogram
	// RemoteBatchesSent / RemoteEventsSent count the Range Service's
	// outbound event traffic to remote endpoints: wire messages shipped and
	// the events they carried (coalesced or not).
	RemoteBatchesSent metrics.Counter
	RemoteEventsSent  metrics.Counter
	// RemoteSendFailures counts wire sends to remote components that the
	// transport rejected (unknown destination, closed endpoint).
	RemoteSendFailures metrics.Counter
}

// DefaultBatchMaxDelay is the flush deadline used when Config.BatchMaxEvents
// enables outbound coalescing but no BatchMaxDelay is given.
const DefaultBatchMaxDelay = 2 * time.Millisecond

// pendingQuery is a stored query awaiting its When condition.
type pendingQuery struct {
	q       query.Query
	owner   *entity.CAA
	trigger guid.GUID // mediator subscription id watching for the trigger
	timer   clock.Timer
}

// Result is the synchronous answer to a query submission.
type Result struct {
	// Query echoes the submitted query's id.
	Query guid.GUID
	// Profiles answers ModeProfile.
	Profiles []profile.Profile
	// Advertisement and Provider answer ModeAdvertisement.
	Advertisement *profile.Advertisement
	Provider      guid.GUID
	// Configuration is the instantiated configuration id for subscription
	// modes (nil GUID when the query was deferred).
	Configuration guid.GUID
	// Deferred reports that the query was stored pending its When clause.
	Deferred bool
}

// Errors.
var (
	ErrClosed        = errors.New("server: range closed")
	ErrUnknownEntity = errors.New("server: unknown entity")
	ErrNoCAA         = errors.New("server: owner is not a registered application")
	ErrExpiredQuery  = errors.New("server: query expired before execution")
)

// New builds and starts a Range.
func New(cfg Config) *Range {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Types == nil {
		cfg.Types = ctxtype.NewRegistry()
	}
	if cfg.Name == "" {
		cfg.Name = "range"
	}
	if cfg.BatchMaxEvents > 1 && cfg.BatchMaxDelay <= 0 {
		cfg.BatchMaxDelay = DefaultBatchMaxDelay
	}
	r := &Range{
		id:       guid.New(guid.KindRange),
		cs:       guid.New(guid.KindServer),
		name:     cfg.Name,
		clk:      cfg.Clock,
		types:    cfg.Types,
		places:   cfg.Places,
		coverage: cfg.Coverage,
		profiles: &profile.Manager{},
		comps:    make(map[guid.GUID]entity.CE),
		caas:     make(map[guid.GUID]*entity.CAA),
		silenced: guid.NewSet(),
		pending:  make(map[guid.GUID]*pendingQuery),

		batchMaxEvents: cfg.BatchMaxEvents,
		batchMaxDelay:  cfg.BatchMaxDelay,
		adaptive:       cfg.AdaptiveBatching,
		quota:          cfg.PublisherQuota,
		wireCodec:      cfg.WireCodec,
	}
	r.registrar = registry.New(registry.Config{Clock: cfg.Clock, Lease: cfg.Lease})
	medOpts := []mediator.Option{mediator.WithShards(cfg.EventShards)}
	if cfg.PublisherQuota.Rate > 0 {
		medOpts = append(medOpts, mediator.WithQuota(eventbus.Quota{
			Rate:   cfg.PublisherQuota.Rate,
			Burst:  cfg.PublisherQuota.Burst,
			Reject: cfg.PublisherQuota.Reject,
			Clock:  cfg.Clock,
		}))
	}
	r.med = mediator.New(cfg.Types, medOpts...)
	r.res = resolver.New(r.profiles, cfg.Types, cfg.Places)
	r.runtime = configuration.New(r.med, r.res, configuration.ComponentsFunc(r.Component), cfg.MaxRepairs)

	// Departures repair configurations and are announced as events;
	// arrivals are announced as events (Section 3.4 mobility model).
	r.watchOff = r.registrar.Watch(registry.FuncWatcher{
		Arrival: func(reg registry.Registration) {
			r.publishLifecycle(ctxtype.EntityArrival, reg, "")
		},
		Departure: func(reg registry.Registration, why registry.Reason) {
			r.handleDeparture(reg, why)
		},
	})

	// Profile updates from live components (e.g. printer queue changes)
	// refresh the stored profile so resolver constraints see the truth.
	if rec, err := r.med.Subscribe(r.cs, event.Filter{Type: ctxtype.ProfileUpdate},
		r.handleProfileUpdate, mediator.SubOptions{}); err == nil {
		r.profSub = rec.ID
	}

	if cfg.AutoRenewEvery > 0 {
		r.scheduleRenew(cfg.AutoRenewEvery)
	}
	return r
}

// ID returns the Range's GUID.
func (r *Range) ID() guid.GUID { return r.id }

// ServerID returns the Context Server's GUID.
func (r *Range) ServerID() guid.GUID { return r.cs }

// Name returns the Range's label.
func (r *Range) Name() string { return r.name }

// Coverage returns the hierarchical area this Range manages.
func (r *Range) Coverage() location.Path { return r.coverage }

// Places returns the Range's location map (may be nil).
func (r *Range) Places() *location.Map { return r.places }

// Types returns the Range's context type registry.
func (r *Range) Types() *ctxtype.Registry { return r.types }

// Mediator exposes the Event Mediator (the SCINET layer and tests publish
// through it).
func (r *Range) Mediator() *mediator.Mediator { return r.med }

// Registrar exposes the Registrar.
func (r *Range) Registrar() *registry.Registrar { return r.registrar }

// Profiles exposes the Profile Manager.
func (r *Range) Profiles() *profile.Manager { return r.profiles }

// Runtime exposes the configuration runtime.
func (r *Range) Runtime() *configuration.Runtime { return r.runtime }

// Component implements configuration.Components.
func (r *Range) Component(id guid.GUID) (entity.CE, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ce, ok := r.comps[id]
	return ce, ok
}

// AddEntity performs the discovery/registration sequence of Fig 5 for a
// locally hosted CE: register with the Registrar, store the Profile, attach
// the component to the Event Mediator, and announce the arrival.
func (r *Range) AddEntity(ce entity.CE) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.comps[ce.ID()] = ce
	r.mu.Unlock()

	prof := ce.Profile()
	if err := r.profiles.Put(prof); err != nil {
		return err
	}
	if _, err := r.registrar.Register(ce.ID(), prof.Name); err != nil {
		return err
	}
	if b, ok := ce.(interface{ SetRange(guid.GUID) }); ok {
		b.SetRange(r.id)
	}
	ce.Attach(r.med)
	return nil
}

// AddApplication registers a CAA with the Range (its access point for
// queries, Section 3.1).
func (r *Range) AddApplication(caa *entity.CAA) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.caas[caa.ID()] = caa
	r.mu.Unlock()

	prof := caa.Profile()
	if err := r.profiles.Put(prof); err != nil {
		return err
	}
	if _, err := r.registrar.Register(caa.ID(), prof.Name); err != nil {
		return err
	}
	if b, ok := interface{}(caa).(interface{ SetRange(guid.GUID) }); ok {
		b.SetRange(r.id)
	}
	caa.Attach(r.med)
	return nil
}

// RemoveEntity deregisters a component cleanly (announced departure).
func (r *Range) RemoveEntity(id guid.GUID) error {
	r.mu.Lock()
	_, isComp := r.comps[id]
	_, isCAA := r.caas[id]
	r.mu.Unlock()
	if !isComp && !isCAA {
		return fmt.Errorf("%w: %s", ErrUnknownEntity, id.Short())
	}
	return r.registrar.Deregister(id)
}

// StopRenewing excludes a component from auto-renewal so its lease expires
// naturally — the failure-injection hook for experiment E8.
func (r *Range) StopRenewing(id guid.GUID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.silenced.Add(id)
}

// RenewAll renews every live local registration except silenced ones.
func (r *Range) RenewAll() {
	r.mu.Lock()
	ids := make([]guid.GUID, 0, len(r.comps)+len(r.caas))
	for id := range r.comps {
		if !r.silenced.Has(id) {
			ids = append(ids, id)
		}
	}
	for id := range r.caas {
		if !r.silenced.Has(id) {
			ids = append(ids, id)
		}
	}
	r.mu.Unlock()
	for _, id := range ids {
		_ = r.registrar.Renew(id) // a failed renew = already expired; expiry path handles it
	}
}

// Submit processes a query from a registered CAA, dispatching on mode.
func (r *Range) Submit(q query.Query) (*Result, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	owner := r.caas[q.Owner]
	r.mu.Unlock()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	r.QueriesSubmitted.Inc()

	switch q.Mode {
	case query.ModeProfile:
		return r.submitProfile(q)
	case query.ModeAdvertisement:
		return r.submitAdvertisement(q)
	case query.ModeSubscribe, query.ModeOnce:
		if owner == nil {
			return nil, fmt.Errorf("%w: %s", ErrNoCAA, q.Owner.Short())
		}
		if q.When.Immediate() {
			return r.execute(q, owner)
		}
		return r.defer_(q, owner)
	default:
		return nil, query.ErrBadQuery
	}
}

// submitProfile answers a profile request.
func (r *Range) submitProfile(q query.Query) (*Result, error) {
	res := &Result{Query: q.ID}
	switch q.What.Kind() {
	case "entity":
		p, err := r.profiles.Get(q.What.Entity)
		if err != nil {
			return nil, err
		}
		res.Profiles = []profile.Profile{p}
	case "entity-type":
		res.Profiles = append(r.profiles.FindByInterface(q.What.EntityType),
			r.profiles.FindByAttr("kind", q.What.EntityType)...)
		res.Profiles = dedupeProfiles(res.Profiles)
	case "pattern":
		for _, c := range r.profiles.FindProviders(q.What.Pattern, r.types) {
			res.Profiles = append(res.Profiles, c.Profile)
		}
	}
	return res, nil
}

// submitAdvertisement resolves the best service provider and returns its
// advertisement.
func (r *Range) submitAdvertisement(q query.Query) (*Result, error) {
	start := time.Now()
	cfg, err := r.res.Resolve(q, r.resolveContext(q))
	r.ResolveLatency.RecordDuration(time.Since(start))
	if err != nil {
		return nil, err
	}
	p, err := r.profiles.Get(cfg.Root.Provider)
	if err != nil {
		return nil, err
	}
	return &Result{
		Query:         q.ID,
		Advertisement: p.Advertisement,
		Provider:      p.Entity,
	}, nil
}

// execute resolves and instantiates a subscription-mode query now.
func (r *Range) execute(q query.Query, owner *entity.CAA) (*Result, error) {
	start := time.Now()
	rctx := r.resolveContext(q)
	cfg, err := r.res.Resolve(q, rctx)
	r.ResolveLatency.RecordDuration(time.Since(start))
	if err != nil {
		return nil, err
	}
	// Root delivery is batched end to end: a burst of root outputs crosses
	// the mediator as one slice and lands in the CAA (or its remote proxy's
	// outbound coalescer) under a single lock acquisition.
	if err := r.runtime.InstantiateBatch(cfg, rctx, owner.ConsumeAll); err != nil {
		return nil, err
	}
	r.QueriesExecuted.Inc()
	return &Result{Query: q.ID, Configuration: cfg.ID}, nil
}

// defer_ stores a query until its When clause fires (CAPA configuration X:
// "stores it until its temporal constraints are satisfied").
func (r *Range) defer_(q query.Query, owner *entity.CAA) (*Result, error) {
	pq := &pendingQuery{q: q, owner: owner}
	r.mu.Lock()
	r.pending[q.ID] = pq
	r.mu.Unlock()
	r.QueriesDeferred.Inc()

	fire := func() {
		r.mu.Lock()
		_, still := r.pending[q.ID]
		delete(r.pending, q.ID)
		r.mu.Unlock()
		if !still {
			return
		}
		if pq.trigger != (guid.GUID{}) {
			_ = r.med.Cancel(pq.trigger)
		}
		if pq.timer != nil {
			pq.timer.Stop()
		}
		// Execute with the When stripped (it has fired).
		qq := q
		qq.When = query.When{}
		if _, err := r.execute(qq, owner); err != nil {
			// Deliver the failure as a query_error event so the CAA learns.
			r.deliverError(owner, q, err)
		}
	}

	if tr := q.When.Trigger; tr != nil {
		rec, err := r.med.Subscribe(r.cs, *tr, func(event.Event) { fire() },
			mediator.SubOptions{OneShot: true})
		if err != nil {
			return nil, err
		}
		pq.trigger = rec.ID
	}
	if !q.When.After.IsZero() {
		d := q.When.After.Sub(r.clk.Now())
		pq.timer = r.clk.AfterFunc(d, fire)
	}
	if !q.When.Expires.IsZero() {
		d := q.When.Expires.Sub(r.clk.Now())
		r.clk.AfterFunc(d, func() {
			r.mu.Lock()
			pq, still := r.pending[q.ID]
			delete(r.pending, q.ID)
			r.mu.Unlock()
			if !still {
				return
			}
			if pq.trigger != (guid.GUID{}) {
				_ = r.med.Cancel(pq.trigger)
			}
			if pq.timer != nil {
				pq.timer.Stop()
			}
			r.deliverError(pq.owner, q, ErrExpiredQuery)
		})
	}
	return &Result{Query: q.ID, Deferred: true}, nil
}

// PendingQueries returns the ids of stored queries, sorted.
func (r *Range) PendingQueries() []guid.GUID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]guid.GUID, 0, len(r.pending))
	for id := range r.pending {
		out = append(out, id)
	}
	guid.Sort(out)
	return out
}

// CallService performs an advertisement (ServiceInterface) call on a local
// CE — the point-to-point half of the hybrid communication model. Service
// calls may change the provider's state (a print submission fills its
// queue), so the stored profile is refreshed synchronously afterwards:
// a query issued right after the call must see the new attributes.
func (r *Range) CallService(provider guid.GUID, op string, args map[string]any) (map[string]any, error) {
	ce, ok := r.Component(provider)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEntity, provider.Short())
	}
	out, err := ce.Serve(op, args)
	if err == nil {
		_ = r.profiles.Put(ce.Profile())
	}
	return out, err
}

// Publish lets infrastructure code (SCINET forwarding, tests) inject an
// event into the Range's mediator. Events without a Range stamp are stamped
// with this Range's id; an event already stamped (cross-range forwarding)
// keeps its producing Range, so subscriptions filtering on Range and the
// SCINET's own forwarding tap can tell local production from remote ingest.
func (r *Range) Publish(e event.Event) error {
	if e.Range.IsNil() {
		e = e.WithRange(r.id)
	}
	return r.med.Publish(e)
}

// PublishAll injects a batch of events into the Range's mediator in one
// call: the Event Mediator's bus resolves its subscription index once per
// run of same-type events and appends each subscriber's share of a run
// under a single queue lock acquisition. Unstamped events are stamped with
// this Range's id; already-stamped events (batches forwarded from a sibling
// Range) keep their origin stamp. The caller's slice is not modified.
func (r *Range) PublishAll(events []event.Event) error {
	return r.PublishAllFrom(guid.Nil, events)
}

// PublishAllFrom is PublishAll with an explicit drop-attribution key:
// events of this batch later discarded from full subscription queues count
// against pub (see DispatchDropsFor) rather than their own Source. The
// Range Service and SCINET ingest paths pass the sending endpoint/fabric,
// so the flow-credit acks they return carry the drops caused by that
// link's traffic instead of the Range-wide total. A nil pub attributes per
// event Source.
func (r *Range) PublishAllFrom(pub guid.GUID, events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	stamped := make([]event.Event, len(events))
	for i := range events {
		stamped[i] = events[i]
		if stamped[i].Range.IsNil() {
			stamped[i].Range = r.id
		}
	}
	// The stamping copy is already private, so hand it to the bus instead
	// of paying a second defensive copy.
	return r.med.PublishAllOwnedFrom(pub, stamped)
}

// BatchMaxEvents reports the configured per-endpoint outbound coalescing
// cap (0 or 1: coalescing disabled).
func (r *Range) BatchMaxEvents() int { return r.batchMaxEvents }

// BatchMaxDelay reports the configured flush deadline for partially filled
// outbound batches.
func (r *Range) BatchMaxDelay() time.Duration { return r.batchMaxDelay }

// AdaptiveBatching reports the rate-derived batch-sizing configuration the
// Range's outbound coalescers run with.
func (r *Range) AdaptiveBatching() flow.Adaptive { return r.adaptive }

// WireCodec reports the configured wire codec name ("" = negotiate) for
// deployment glue to apply to the Range's transport endpoints.
func (r *Range) WireCodec() string { return r.wireCodec }

// FlowStats returns the shared flow-control stats sink the Range's
// outbound coalescers report into; its counters feed the
// remote.backpressure.* gauges.
func (r *Range) FlowStats() *flow.SharedStats { return &r.flowStats }

// FairFlush reports the weighted-fair drain configuration the Range's
// outbound coalescers should run with: enabled whenever per-publisher
// enforcement is configured.
func (r *Range) FairFlush() flow.Fair {
	return flow.Fair{Enabled: r.quota.enabled(), Weights: r.quota.Weights}
}

// QuotaRejectedFor returns the cumulative count of events refused by
// per-publisher admission control charged against pub (0 with quotas
// disabled).
func (r *Range) QuotaRejectedFor(pub guid.GUID) uint64 {
	return r.med.QuotaRejectedFor(pub)
}

// QuotaRejectedBySource returns the per-publisher quota-refusal snapshot
// (nil-GUID key: the overflow bucket).
func (r *Range) QuotaRejectedBySource() map[guid.GUID]uint64 {
	return r.med.QuotaRejectedBySource()
}

// DispatchStats returns the Event Mediator's bus-wide dispatch counters.
func (r *Range) DispatchStats() eventbus.Stats {
	return r.med.Stats()
}

// DispatchDropsFor returns the cumulative count of dispatched events
// discarded from full subscription queues attributed to one publisher or
// ingest endpoint — the figure a flow-credit ack to that endpoint carries.
func (r *Range) DispatchDropsFor(pub guid.GUID) uint64 {
	return r.med.DropsFor(pub)
}

// DispatchDropsBySource returns the per-publisher dispatch-drop attribution
// snapshot (nil-GUID key: the overflow bucket).
func (r *Range) DispatchDropsBySource() map[guid.GUID]uint64 {
	return r.med.DropsBySource()
}

// StatsMap renders the Range's dispatch health as the flat float64 map the
// "dispatch.stats" infrastructure call answers with — shared between the
// Range Service (per-Range over the wire) and the SCINET fabric (fleet-wide
// rollup over the overlay). Values are float64 so they survive the JSON
// wire round trip unchanged.
func (r *Range) StatsMap() map[string]float64 {
	st := r.med.Stats()
	out := map[string]float64{
		"published":            float64(st.Published),
		"delivered":            float64(st.Delivered),
		"dropped":              float64(st.Dropped),
		"subs":                 float64(st.Subs),
		"index_hits":           float64(st.IndexHits),
		"residual_scanned":     float64(st.ResidualScanned),
		"index_hit_ratio":      r.med.IndexHitRatio(),
		"shards":               float64(len(r.med.ShardStats())),
		"remote_batches_sent":  float64(r.RemoteBatchesSent.Value()),
		"remote_events_sent":   float64(r.RemoteEventsSent.Value()),
		"remote_send_failures": float64(r.RemoteSendFailures.Value()),

		"remote_flushes":                      float64(r.flowStats.Flushes.Value()),
		"remote_backpressure_throttled":       float64(r.flowStats.Throttled.Value()),
		"remote_backpressure_drops_reported":  float64(r.flowStats.DropsReported.Value()),
		"remote_backpressure_throttle_events": float64(r.flowStats.ThrottleEvents.Value()),
		"remote_backpressure_shed":            float64(r.flowStats.EventsShed.Value()),
	}
	out["quota_rejected"] = float64(st.QuotaRejected)
	// Per-publisher attribution: one gauge per top publisher, keyed by its
	// short GUID form, with the long tail folded into the _other key — the
	// full maps stay queryable via DispatchDropsBySource and friends, but a
	// stats round trip must not ship a key per device a high-churn Range
	// has ever dropped for. The keys sum cleanly in fleet rollups (a
	// publisher's figures across Ranges add up).
	for _, e := range r.topDropSources() {
		key := "dropped_from_other"
		if !e.src.IsNil() {
			key = "dropped_from_" + e.src.Short()
		}
		out[key] += float64(e.n)
	}
	for _, e := range topSources(r.med.QuotaRejectedBySource()) {
		key := "quota_rejected_from_other"
		if !e.src.IsNil() {
			key = "quota_rejected_from_" + e.src.Short()
		}
		out[key] += float64(e.n)
	}
	for _, e := range topSources(r.flowStats.ShedBySource()) {
		key := "throttled_by_source_other"
		if !e.src.IsNil() {
			key = "throttled_by_source_" + e.src.Short()
		}
		out[key] += float64(e.n)
	}
	for _, src := range r.snapshotStatsSources() {
		for name, v := range src() {
			// AddStatsSource contributors are contractually bounded (wire
			// codec/byte gauges, a handful of names per endpoint).
			out[strings.ReplaceAll(name, ".", "_")] = v //lint:allow gaugekey stats-source contributors are contractually bounded per AddStatsSource
		}
	}
	return out
}

// AddStatsSource registers an external gauge contributor: f is called on
// every StatsMap/FillMetrics render and returns dotted metric names
// (StatsMap flattens the dots to underscores to match its key style). Used
// by the Range Service to surface wire-level state — negotiated codecs,
// bytes on the wire — the Range itself never sees.
func (r *Range) AddStatsSource(f func() map[string]float64) {
	if f == nil {
		return
	}
	r.mu.Lock()
	r.statsSources = append(r.statsSources, f)
	r.mu.Unlock()
}

func (r *Range) snapshotStatsSources() []func() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]func() map[string]float64(nil), r.statsSources...)
}

// maxDropSourceGauges bounds how many per-publisher drop gauges StatsMap
// and FillMetrics export by name; everything beyond the top offenders is
// aggregated under "other".
const maxDropSourceGauges = 8

// dropSourceEntry is one exported per-publisher drop figure; a nil source
// is the aggregated remainder.
type dropSourceEntry struct {
	src guid.GUID
	n   uint64
}

// topDropSources returns up to maxDropSourceGauges named publishers by
// descending drop count, plus (last, nil-keyed) the aggregated remainder
// when one exists.
//
//lint:bounded
func (r *Range) topDropSources() []dropSourceEntry {
	return topSources(r.med.DropsBySource())
}

// topSources reduces a per-publisher attribution map to its top
// maxDropSourceGauges entries by descending count, plus (last, nil-keyed)
// the aggregated remainder — the bounding every per-tenant gauge family
// shares.
//
//lint:bounded
func topSources(all map[guid.GUID]uint64) []dropSourceEntry {
	if len(all) == 0 {
		return nil
	}
	entries := make([]dropSourceEntry, 0, len(all))
	var other uint64
	for src, n := range all {
		if src.IsNil() {
			other += n // the bus's own overflow bucket
			continue
		}
		entries = append(entries, dropSourceEntry{src: src, n: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return guid.Less(entries[i].src, entries[j].src)
	})
	if len(entries) > maxDropSourceGauges {
		for _, e := range entries[maxDropSourceGauges:] {
			other += e.n
		}
		entries = entries[:maxDropSourceGauges]
	}
	if other > 0 {
		entries = append(entries, dropSourceEntry{n: other})
	}
	return entries
}

// FillMetrics publishes the Range's dispatch health into m: query counters,
// per-shard publish/deliver/drop counts of the Event Mediator's subscription
// index, the index-hit/residual-scan ratio gauge, and the Range Service's
// remote delivery counters (batches/events shipped, send failures).
func (r *Range) FillMetrics(m *metrics.Registry) {
	st := r.med.Stats()
	m.Gauge("eventbus.published").Set(int64(st.Published))
	m.Gauge("eventbus.delivered").Set(int64(st.Delivered))
	m.Gauge("eventbus.dropped").Set(int64(st.Dropped))
	m.Gauge("eventbus.subs").Set(int64(st.Subs))
	m.FloatGauge("eventbus.index_hit_ratio").Set(r.med.IndexHitRatio())
	for i, ss := range r.med.ShardStats() {
		m.Gauge(fmt.Sprintf("eventbus.shard%02d.published", i)).Set(int64(ss.Published))
		m.Gauge(fmt.Sprintf("eventbus.shard%02d.delivered", i)).Set(int64(ss.Delivered))
		m.Gauge(fmt.Sprintf("eventbus.shard%02d.dropped", i)).Set(int64(ss.Dropped))
	}
	for _, e := range r.topDropSources() {
		name := "eventbus.dropped.from.other"
		if !e.src.IsNil() {
			name = "eventbus.dropped.from." + e.src.Short()
		}
		m.Gauge(name).Set(int64(e.n))
	}
	m.Gauge("eventbus.quota.rejected").Set(int64(st.QuotaRejected))
	for _, e := range topSources(r.med.QuotaRejectedBySource()) {
		name := "eventbus.quota.rejected.from.other"
		if !e.src.IsNil() {
			name = "eventbus.quota.rejected.from." + e.src.Short()
		}
		m.Gauge(name).Set(int64(e.n))
	}
	for _, e := range topSources(r.flowStats.ShedBySource()) {
		name := "remote.backpressure.throttled.by_source.other"
		if !e.src.IsNil() {
			name = "remote.backpressure.throttled.by_source." + e.src.Short()
		}
		m.Gauge(name).Set(int64(e.n))
	}
	m.Gauge("queries.submitted").Set(int64(r.QueriesSubmitted.Value()))
	m.Gauge("queries.deferred").Set(int64(r.QueriesDeferred.Value()))
	m.Gauge("queries.executed").Set(int64(r.QueriesExecuted.Value()))
	m.Gauge("remote.batches_sent").Set(int64(r.RemoteBatchesSent.Value()))
	m.Gauge("remote.events_sent").Set(int64(r.RemoteEventsSent.Value()))
	m.Gauge("remote.send_failures").Set(int64(r.RemoteSendFailures.Value()))
	m.Gauge("remote.flushes").Set(int64(r.flowStats.Flushes.Value()))
	m.Gauge("remote.backpressure.throttled").Set(r.flowStats.Throttled.Value())
	m.Gauge("remote.backpressure.drops_reported").Set(int64(r.flowStats.DropsReported.Value()))
	m.Gauge("remote.backpressure.throttle_events").Set(int64(r.flowStats.ThrottleEvents.Value()))
	m.Gauge("remote.backpressure.shed").Set(int64(r.flowStats.EventsShed.Value()))
	for _, src := range r.snapshotStatsSources() {
		for name, v := range src() {
			//lint:allow gaugekey stats-source contributors are contractually bounded per AddStatsSource
			m.FloatGauge(name).Set(v)
		}
	}
}

// resolveContext builds the resolver context for a query: owner location
// (for closest-to-me) and registrar liveness.
func (r *Range) resolveContext(q query.Query) resolver.Context {
	ctx := resolver.Context{
		LiveOnly: r.registrar.IsLive,
	}
	if p, err := r.profiles.Get(q.Owner); err == nil {
		ctx.OwnerLocation = p.Location
	}
	return ctx
}

// handleDeparture is the registrar watcher: cancel the departed entity's
// subscriptions, drop its profile, repair configurations, announce.
func (r *Range) handleDeparture(reg registry.Registration, why registry.Reason) {
	r.mu.Lock()
	ce, isComp := r.comps[reg.Entity]
	delete(r.comps, reg.Entity)
	delete(r.caas, reg.Entity)
	r.silenced.Remove(reg.Entity)
	r.mu.Unlock()

	if isComp {
		ce.Detach()
	}
	r.med.CancelOwned(reg.Entity)
	r.profiles.Remove(reg.Entity)
	r.runtime.HandleDeparture(reg.Entity)
	r.publishLifecycle(ctxtype.EntityDeparture, reg, why.String())
}

// handleProfileUpdate refreshes the stored profile of a live component.
func (r *Range) handleProfileUpdate(e event.Event) {
	r.mu.Lock()
	ce, ok := r.comps[e.Source]
	r.mu.Unlock()
	if !ok {
		return
	}
	_ = r.profiles.Put(ce.Profile())
}

// publishLifecycle emits entity.arrival / entity.departure events.
func (r *Range) publishLifecycle(t ctxtype.Type, reg registry.Registration, reason string) {
	payload := map[string]any{
		"name": reg.Name,
		"kind": reg.Kind.String(),
	}
	if reason != "" {
		payload["reason"] = reason
	}
	e := event.New(t, r.cs, 0, r.clk.Now(), payload).
		WithSubject(reg.Entity).WithRange(r.id)
	_ = r.med.Publish(e)
}

func (r *Range) scheduleRenew(every time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.renewTimer = r.clk.AfterFunc(every, func() {
		r.RenewAll()
		r.scheduleRenew(every)
	})
}

// Close shuts the Range down: stops timers, tears down configurations and
// the mediator, closes the registrar.
func (r *Range) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	if r.renewTimer != nil {
		r.renewTimer.Stop()
	}
	pending := r.pending
	r.pending = make(map[guid.GUID]*pendingQuery)
	comps := make([]entity.CE, 0, len(r.comps))
	for _, ce := range r.comps {
		comps = append(comps, ce)
	}
	r.mu.Unlock()

	for _, pq := range pending {
		if pq.timer != nil {
			pq.timer.Stop()
		}
	}
	if r.watchOff != nil {
		r.watchOff()
	}
	for _, st := range r.runtime.Active() {
		_ = r.runtime.Teardown(st.ID)
	}
	for _, ce := range comps {
		ce.Detach()
	}
	r.registrar.Close()
	r.med.Close()
}

// deliverError synthesises an error event to the owning CAA.
func (r *Range) deliverError(owner *entity.CAA, q query.Query, err error) {
	e := event.New("query.error", r.cs, 0, r.clk.Now(), map[string]any{
		"query": q.ID.String(),
		"error": err.Error(),
	}).WithRange(r.id)
	owner.Consume(e)
}

func dedupeProfiles(ps []profile.Profile) []profile.Profile {
	seen := guid.NewSet()
	out := ps[:0]
	for _, p := range ps {
		if seen.Has(p.Entity) {
			continue
		}
		seen.Add(p.Entity)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return guid.Less(out[i].Entity, out[j].Entity) })
	return out
}
