package guid

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAssignsKindAndUniqueness(t *testing.T) {
	seen := make(map[GUID]bool)
	for i := 0; i < 1000; i++ {
		g := New(KindEntity)
		if g.Kind() != KindEntity {
			t.Fatalf("kind = %v, want %v", g.Kind(), KindEntity)
		}
		if g.IsNil() {
			t.Fatal("New returned nil GUID")
		}
		if seen[g] {
			t.Fatalf("duplicate GUID generated: %v", g)
		}
		seen[g] = true
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindUnknown:       "unknown",
		KindPerson:        "person",
		KindServer:        "server",
		KindApplication:   "application",
		KindConfiguration: "configuration",
		Kind(200):         "kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", byte(k), got, want)
		}
	}
}

func TestKindValid(t *testing.T) {
	if KindUnknown.Valid() {
		t.Error("KindUnknown should not be valid")
	}
	if !KindPerson.Valid() || !KindRange.Valid() {
		t.Error("defined kinds should be valid")
	}
	if Kind(250).Valid() {
		t.Error("out-of-range kind should not be valid")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindPerson, KindDevice, KindServer, KindQuery} {
		g := New(k)
		parsed, err := Parse(g.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", g.String(), err)
		}
		if parsed != g {
			t.Fatalf("round trip mismatch: %v != %v", parsed, g)
		}
		// Bare hex form must parse too.
		parsed, err = Parse(g.Hex())
		if err != nil {
			t.Fatalf("Parse bare hex: %v", err)
		}
		if parsed != g {
			t.Fatalf("bare hex round trip mismatch")
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"person:",
		"person:abcd",
		strings.Repeat("g", Digits),         // non-hex
		"person:" + strings.Repeat("0", 31), // too short
		"person:" + strings.Repeat("0", 33), // too long
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("bogus")
}

func TestFromBytes(t *testing.T) {
	b := make([]byte, Size)
	b[0] = byte(KindPlace)
	b[15] = 0xff
	g, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind() != KindPlace || g[15] != 0xff {
		t.Fatalf("FromBytes content mismatch: %v", g)
	}
	if _, err := FromBytes(b[:8]); err == nil {
		t.Error("FromBytes accepted short slice")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New(KindDevice)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back GUID
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Fatalf("JSON round trip mismatch: %v != %v", back, g)
	}
}

func TestDigit(t *testing.T) {
	g := MustParse("0123456789abcdef0123456789abcdef")
	want := "0123456789abcdef0123456789abcdef"
	for i := 0; i < Digits; i++ {
		d := g.Digit(i)
		var c byte
		if d < 10 {
			c = '0' + d
		} else {
			c = 'a' + d - 10
		}
		if c != want[i] {
			t.Fatalf("Digit(%d) = %c, want %c", i, c, want[i])
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := MustParse("00000000000000000000000000000000")
	if got := CommonPrefixLen(a, a); got != Digits {
		t.Fatalf("identical GUIDs: prefix %d, want %d", got, Digits)
	}
	b := MustParse("0000000f000000000000000000000000")
	if got := CommonPrefixLen(a, b); got != 7 {
		t.Fatalf("prefix = %d, want 7", got)
	}
	c := MustParse("10000000000000000000000000000000")
	if got := CommonPrefixLen(a, c); got != 0 {
		t.Fatalf("prefix = %d, want 0", got)
	}
	d := MustParse("00f00000000000000000000000000000")
	if got := CommonPrefixLen(a, d); got != 2 {
		t.Fatalf("prefix = %d, want 2", got)
	}
}

func TestCompareAndLess(t *testing.T) {
	a := MustParse("00000000000000000000000000000001")
	b := MustParse("00000000000000000000000000000002")
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Fatal("Compare ordering broken")
	}
	if !Less(a, b) || Less(b, a) || Less(a, a) {
		t.Fatal("Less ordering broken")
	}
}

func TestDistanceAndCloserTo(t *testing.T) {
	target := MustParse("ff000000000000000000000000000000")
	near := MustParse("fe000000000000000000000000000000")
	far := MustParse("00000000000000000000000000000000")
	if !CloserTo(target, near, far) {
		t.Fatal("near should be closer to target than far")
	}
	if CloserTo(target, far, near) {
		t.Fatal("far should not be closer than near")
	}
	if CloserTo(target, near, near) {
		t.Fatal("CloserTo must be a strict order")
	}
	d := Distance(target, target)
	if !d.IsNil() {
		t.Fatal("Distance(x,x) must be zero")
	}
}

func TestSort(t *testing.T) {
	gs := []GUID{
		MustParse("00000000000000000000000000000003"),
		MustParse("00000000000000000000000000000001"),
		MustParse("00000000000000000000000000000002"),
	}
	Sort(gs)
	for i := 1; i < len(gs); i++ {
		if !Less(gs[i-1], gs[i]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSet(t *testing.T) {
	a, b, c := New(KindEntity), New(KindEntity), New(KindEntity)
	s := NewSet(a, b)
	if !s.Has(a) || !s.Has(b) || s.Has(c) {
		t.Fatal("membership broken")
	}
	s.Add(c)
	if !s.Has(c) {
		t.Fatal("Add failed")
	}
	s.Remove(b)
	if s.Has(b) {
		t.Fatal("Remove failed")
	}
	members := s.Members()
	if len(members) != 2 {
		t.Fatalf("Members len = %d, want 2", len(members))
	}
	for i := 1; i < len(members); i++ {
		if !Less(members[i-1], members[i]) {
			t.Fatal("Members not sorted")
		}
	}
}

// randomGUID produces a deterministic pseudo-random GUID for property tests.
func randomGUID(r *rand.Rand) GUID {
	var g GUID
	for i := range g {
		g[i] = byte(r.Intn(256))
	}
	return g
}

func TestPropParseFormatRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGUID(rand.New(rand.NewSource(seed)))
		parsed, err := Parse(g.String())
		return err == nil && parsed == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCommonPrefixSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomGUID(r), randomGUID(r)
		return CommonPrefixLen(a, b) == CommonPrefixLen(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPrefixConsistentWithDigits(t *testing.T) {
	// CommonPrefixLen(a,b) == number of leading equal digits.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomGUID(r), randomGUID(r)
		p := CommonPrefixLen(a, b)
		for i := 0; i < p; i++ {
			if a.Digit(i) != b.Digit(i) {
				return false
			}
		}
		if p < Digits && a.Digit(p) == b.Digit(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCompareAntisymmetricTransitiveish(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomGUID(r), randomGUID(r)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropXORDistanceIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomGUID(r), randomGUID(r)
		d := Distance(a, b)
		// d ^ b == a (XOR involution).
		back := Distance(d, b)
		return back == a && Distance(a, a).IsNil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = New(KindEntity)
	}
}

func BenchmarkCommonPrefixLen(b *testing.B) {
	x, y := New(KindEntity), New(KindEntity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CommonPrefixLen(x, y)
	}
}
