package guid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubKnownValues(t *testing.T) {
	zero := MustParse("00000000000000000000000000000000")
	one := MustParse("00000000000000000000000000000001")
	two := MustParse("00000000000000000000000000000002")
	max := MustParse("ffffffffffffffffffffffffffffffff")

	if got := Sub(two, one); got != one {
		t.Fatalf("2-1 = %v", got)
	}
	if got := Sub(one, one); got != zero {
		t.Fatalf("1-1 = %v", got)
	}
	// Wraparound: 0 - 1 = 2^128 - 1.
	if got := Sub(zero, one); got != max {
		t.Fatalf("0-1 = %v, want all-ff", got)
	}
	// Borrow propagation: 0x0100 - 0x01 = 0x00ff.
	a := MustParse("00000000000000000000000000000100")
	b := MustParse("000000000000000000000000000000ff")
	if got := Sub(a, one); got != b {
		t.Fatalf("0x100-1 = %v, want 0xff", got)
	}
}

func TestCWDistDirectionality(t *testing.T) {
	a := MustParse("00000000000000000000000000000010")
	b := MustParse("00000000000000000000000000000020")
	d1 := CWDist(a, b) // b - a = 0x10
	d2 := CWDist(b, a) // wraps
	if Compare(d1, d2) >= 0 {
		t.Fatal("clockwise a→b should be shorter than b→a here")
	}
}

func TestRingDistSymmetricAndBounded(t *testing.T) {
	half := MustParse("80000000000000000000000000000000")
	zero := MustParse("00000000000000000000000000000000")
	// Antipodal points: both directions equal 2^127.
	if got := RingDist(zero, half); got != half {
		t.Fatalf("antipodal ring dist = %v", got)
	}
}

func TestPropSubAddInverse(t *testing.T) {
	// (a - b) + b == a, where addition is checked via Sub: a - (a-b) == b.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomGUID(r), randomGUID(r)
		d := Sub(a, b)
		return Sub(a, d) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropRingDistSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomGUID(r), randomGUID(r)
		return RingDist(a, b) == RingDist(b, a) && RingDist(a, a).IsNil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropRingDistIsMinOfDirections(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomGUID(r), randomGUID(r)
		cw, ccw := CWDist(a, b), CWDist(b, a)
		d := RingDist(a, b)
		if Compare(cw, ccw) <= 0 {
			return d == cw
		}
		return d == ccw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropRingCloserToStrictOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tgt, a, b := randomGUID(r), randomGUID(r), randomGUID(r)
		// Irreflexive and asymmetric.
		if RingCloserTo(tgt, a, a) {
			return false
		}
		if RingCloserTo(tgt, a, b) && RingCloserTo(tgt, b, a) {
			return false
		}
		// The target itself is closest to itself.
		return !RingCloserTo(tgt, a, tgt) || a == tgt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
