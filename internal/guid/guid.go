// Package guid implements the 128-bit globally unique identifiers that the
// SCI infrastructure uses in place of traditional network addressing.
//
// The paper (Section 3) premises the SCINET on an overlay network in which
// "entities ... communicate across many heterogeneous network types using
// GUIDs rather than traditional addressing schemes". Every entity — a Range's
// Context Server, a Context Entity, a Context Aware Application, a Context
// Utility — carries one GUID for its whole lifecycle.
//
// A GUID is 128 bits. The top byte encodes the entity Kind so that log lines
// and registrar dumps are self-describing; the remaining 120 bits are random.
// The overlay (internal/overlay) routes on the hexadecimal digit string of
// the GUID using prefix distance, so this package also provides the digit,
// prefix and XOR-distance primitives the routing tables need.
package guid

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Size is the number of bytes in a GUID.
const Size = 16

// Digits is the number of hexadecimal digits in a GUID's string form. The
// overlay's prefix routing resolves one digit per hop, so Digits is also the
// worst-case overlay hop count.
const Digits = Size * 2

// Kind classifies the entity a GUID names. It occupies the first byte of the
// identifier so that identifiers are self-describing in logs and registry
// dumps.
type Kind byte

// Entity kinds. They mirror the component taxonomy of the paper: the five
// entity classes of Section 3 (People, Software, Places, Devices, Artifacts),
// plus infrastructure components (Context Servers, Context Utilities, Context
// Aware Applications) and transient objects (queries, configurations,
// subscriptions, events).
const (
	KindUnknown Kind = iota
	KindPerson
	KindSoftware
	KindPlace
	KindDevice
	KindArtifact
	KindServer        // a Range's Context Server
	KindUtility       // a Context Utility (Registrar, Event Mediator, ...)
	KindApplication   // a Context Aware Application
	KindEntity        // a generic Context Entity
	KindQuery         // a query instance
	KindConfiguration // a resolved configuration (subscription graph)
	KindSubscription  // a single event subscription
	KindEvent         // an event instance
	KindRange         // a Range as a whole
	kindMax
)

var kindNames = [...]string{
	KindUnknown:       "unknown",
	KindPerson:        "person",
	KindSoftware:      "software",
	KindPlace:         "place",
	KindDevice:        "device",
	KindArtifact:      "artifact",
	KindServer:        "server",
	KindUtility:       "utility",
	KindApplication:   "application",
	KindEntity:        "entity",
	KindQuery:         "query",
	KindConfiguration: "configuration",
	KindSubscription:  "subscription",
	KindEvent:         "event",
	KindRange:         "range",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Valid reports whether k is a defined kind other than KindUnknown.
func (k Kind) Valid() bool { return k > KindUnknown && k < kindMax }

// GUID is a 128-bit identifier. The zero value is the nil GUID, which is
// never assigned to a live entity.
type GUID [Size]byte

// Nil is the zero GUID.
var Nil GUID

// ErrBadGUID is returned when parsing malformed identifier text.
var ErrBadGUID = errors.New("guid: malformed identifier")

// New returns a fresh random GUID of the given kind, using crypto/rand.
func New(kind Kind) GUID {
	var g GUID
	if _, err := rand.Read(g[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does the
		// process cannot make identifiers and must not continue silently.
		panic(fmt.Sprintf("guid: entropy source failed: %v", err))
	}
	g[0] = byte(kind)
	return g
}

// FromBytes builds a GUID from a 16-byte slice.
func FromBytes(b []byte) (GUID, error) {
	var g GUID
	if len(b) != Size {
		return Nil, fmt.Errorf("%w: need %d bytes, got %d", ErrBadGUID, Size, len(b))
	}
	copy(g[:], b)
	return g, nil
}

// Parse parses the canonical textual form produced by String:
// "kind:hex32". It also accepts a bare 32-digit hex string, in which case
// the kind byte is taken from the decoded bytes.
func Parse(s string) (GUID, error) {
	hexPart := s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		hexPart = s[i+1:]
	}
	if len(hexPart) != Digits {
		return Nil, fmt.Errorf("%w: want %d hex digits, got %d", ErrBadGUID, Digits, len(hexPart))
	}
	b, err := hex.DecodeString(hexPart)
	if err != nil {
		return Nil, fmt.Errorf("%w: %v", ErrBadGUID, err)
	}
	return FromBytes(b)
}

// MustParse is Parse that panics on error; intended for tests and constants.
func MustParse(s string) GUID {
	g, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return g
}

// Kind returns the entity kind encoded in the identifier.
func (g GUID) Kind() Kind { return Kind(g[0]) }

// IsNil reports whether g is the zero GUID.
func (g GUID) IsNil() bool { return g == Nil }

// String renders the canonical "kind:hex" form.
func (g GUID) String() string {
	return g.Kind().String() + ":" + hex.EncodeToString(g[:])
}

// Short returns an abbreviated form ("kind:8hex…") for logs.
func (g GUID) Short() string {
	return g.Kind().String() + ":" + hex.EncodeToString(g[:4]) + "…"
}

// Hex returns the bare 32-digit hexadecimal string.
func (g GUID) Hex() string { return hex.EncodeToString(g[:]) }

// MarshalText implements encoding.TextMarshaler.
func (g GUID) MarshalText() ([]byte, error) { return []byte(g.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (g *GUID) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*g = parsed
	return nil
}

// Digit returns the i-th hexadecimal digit (0 ≤ i < Digits), most significant
// first. The overlay routing table is indexed by (prefix length, digit).
func (g GUID) Digit(i int) byte {
	b := g[i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

// CommonPrefixLen returns the number of leading hexadecimal digits g and o
// share. It is the overlay's routing metric: each hop strictly increases the
// shared prefix with the destination.
func CommonPrefixLen(g, o GUID) int {
	for i := 0; i < Size; i++ {
		x := g[i] ^ o[i]
		if x == 0 {
			continue
		}
		if x&0xf0 != 0 {
			return i * 2
		}
		return i*2 + 1
	}
	return Digits
}

// Compare orders GUIDs lexicographically by their bytes. It returns -1, 0 or
// +1. The leaf sets of the overlay are maintained in this circular order.
func Compare(a, b GUID) int {
	for i := 0; i < Size; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports a < b in Compare order.
func Less(a, b GUID) bool { return Compare(a, b) < 0 }

// Distance fills dst with the XOR distance |a ^ b|. The magnitude ordering of
// XOR distances is what the overlay uses to pick the numerically closest
// node when no better prefix match exists.
func Distance(a, b GUID) GUID {
	var d GUID
	for i := 0; i < Size; i++ {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// CloserTo reports whether a is strictly closer to target than b is, in XOR
// distance.
func CloserTo(target, a, b GUID) bool {
	return Compare(Distance(target, a), Distance(target, b)) < 0
}

// Sub returns (a - b) mod 2^128, treating GUIDs as big-endian 128-bit
// unsigned integers. It is the primitive for ring (circular identifier
// space) distances used by the overlay's leaf sets.
func Sub(a, b GUID) GUID {
	var d GUID
	var borrow uint16
	for i := Size - 1; i >= 0; i-- {
		v := uint16(a[i]) - uint16(b[i]) - borrow
		d[i] = byte(v)
		borrow = (v >> 8) & 1
	}
	return d
}

// CWDist returns the clockwise distance from a to b on the identifier ring:
// (b - a) mod 2^128.
func CWDist(a, b GUID) GUID { return Sub(b, a) }

// RingDist returns the minimal circular distance between a and b:
// min((b-a) mod 2^128, (a-b) mod 2^128).
func RingDist(a, b GUID) GUID {
	cw := Sub(b, a)
	ccw := Sub(a, b)
	if Compare(cw, ccw) <= 0 {
		return cw
	}
	return ccw
}

// RingCloserTo reports whether a is strictly closer to target than b is, in
// minimal ring distance. The overlay's greedy forwarding uses this order:
// every hop strictly decreases ring distance, so routing terminates, and
// with accurate leaf sets it terminates at the live target.
func RingCloserTo(target, a, b GUID) bool {
	return Compare(RingDist(a, target), RingDist(b, target)) < 0
}

// Sort sorts the slice in ascending Compare order.
func Sort(gs []GUID) {
	sort.Slice(gs, func(i, j int) bool { return Less(gs[i], gs[j]) })
}

// Set is an unordered collection of GUIDs with O(1) membership.
type Set map[GUID]struct{}

// NewSet builds a Set from the given members.
func NewSet(gs ...GUID) Set {
	s := make(Set, len(gs))
	for _, g := range gs {
		s.Add(g)
	}
	return s
}

// Add inserts g.
func (s Set) Add(g GUID) { s[g] = struct{}{} }

// Remove deletes g.
func (s Set) Remove(g GUID) { delete(s, g) }

// Has reports membership.
func (s Set) Has(g GUID) bool {
	_, ok := s[g]
	return ok
}

// Members returns the members in sorted order (deterministic for tests).
func (s Set) Members() []GUID {
	out := make([]GUID, 0, len(s))
	for g := range s {
		out = append(out, g)
	}
	Sort(out)
	return out
}
