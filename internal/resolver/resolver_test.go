package resolver

import (
	"errors"
	"fmt"
	"testing"

	"sci/internal/ctxtype"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/profile"
	"sci/internal/query"
)

// world builds the Section 3.2 scenario: door sensors (sources), an
// objLocation CE (sightings → positions), and a path CE (two positions →
// path.route).
type world struct {
	profiles *profile.Manager
	types    *ctxtype.Registry
	res      *Resolver

	doors  []guid.GUID
	objLoc guid.GUID
	pathCE guid.GUID
}

func newWorld(t testing.TB) *world {
	t.Helper()
	w := &world{
		profiles: &profile.Manager{},
		types:    ctxtype.NewRegistry(),
	}
	for i := 0; i < 3; i++ {
		id := guid.New(guid.KindDevice)
		w.doors = append(w.doors, id)
		mustPut(t, w.profiles, profile.Profile{
			Entity:  id,
			Name:    fmt.Sprintf("door-%d", i),
			Outputs: []ctxtype.Type{ctxtype.LocationSightingDoor},
			Quality: 0.9,
		})
	}
	w.objLoc = guid.New(guid.KindEntity)
	mustPut(t, w.profiles, profile.Profile{
		Entity:  w.objLoc,
		Name:    "objLocationCE",
		Inputs:  []ctxtype.Type{ctxtype.LocationSighting},
		Outputs: []ctxtype.Type{ctxtype.LocationPosition},
	})
	w.pathCE = guid.New(guid.KindEntity)
	mustPut(t, w.profiles, profile.Profile{
		Entity:  w.pathCE,
		Name:    "pathCE",
		Inputs:  []ctxtype.Type{ctxtype.LocationPosition, ctxtype.LocationPosition},
		Outputs: []ctxtype.Type{ctxtype.PathRoute},
	})
	w.res = New(w.profiles, w.types, nil)
	return w
}

func mustPut(t testing.TB, m *profile.Manager, p profile.Profile) {
	t.Helper()
	if err := m.Put(p); err != nil {
		t.Fatal(err)
	}
}

func pathQuery(t testing.TB) query.Query {
	t.Helper()
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: ctxtype.PathRoute}, query.ModeSubscribe)
	return q
}

func TestSection32PathConfiguration(t *testing.T) {
	w := newWorld(t)
	cfg, err := w.res.Resolve(pathQuery(t), Context{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != w.pathCE {
		t.Fatalf("root = %s, want pathCE", cfg.Root.Provider.Short())
	}
	// pathCE has two position inputs, each bound to objLocationCE, which in
	// turn feeds from a door sensor.
	if len(cfg.Root.Inputs) != 2 {
		t.Fatalf("root inputs = %d", len(cfg.Root.Inputs))
	}
	for _, in := range cfg.Root.Inputs {
		if in.Provider != w.objLoc {
			t.Fatalf("position provider = %s, want objLocationCE", in.Provider.Short())
		}
		// Fig 3: the objLocationCE subscribes to ALL door sensors (fan-in).
		if len(in.Inputs) != 3 {
			t.Fatalf("objLoc inputs = %d, want all 3 doors", len(in.Inputs))
		}
		for _, leaf := range in.Inputs {
			if leaf.Output != ctxtype.LocationSightingDoor {
				t.Fatalf("leaf output = %s", leaf.Output)
			}
			if len(leaf.Inputs) != 0 {
				t.Fatal("door sensor must be a source (no inputs)")
			}
		}
	}
	if d := cfg.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	// The graph grounds out at sensor level: every leaf is a source.
	assertGroundsOut(t, w.profiles, cfg.Root)
	// Edges: pathCE←objLoc (deduped) and objLoc←door ×3.
	if len(cfg.Edges) != 4 {
		t.Fatalf("edges = %v", cfg.Edges)
	}
}

func assertGroundsOut(t *testing.T, m *profile.Manager, b *Binding) {
	t.Helper()
	p, err := m.Get(b.Provider)
	if err != nil {
		t.Fatal(err)
	}
	// Fan-in may bind several sources per declared input, never fewer.
	if len(b.Inputs) < len(p.Inputs) {
		t.Fatalf("binding for %s has %d inputs, profile wants at least %d", p.Name, len(b.Inputs), len(p.Inputs))
	}
	if len(b.Inputs) == 0 && !p.IsSource() && len(p.Outputs) == 0 {
		t.Fatalf("leaf %s is not a source", p.Name)
	}
	for _, in := range b.Inputs {
		assertGroundsOut(t, m, in)
	}
}

func TestNoProvider(t *testing.T) {
	w := newWorld(t)
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: ctxtype.TemperatureCelsius}, query.ModeSubscribe)
	if _, err := w.res.Resolve(q, Context{}); !errors.Is(err, ErrNoProvider) {
		t.Fatalf("want ErrNoProvider, got %v", err)
	}
}

func TestUnsatisfiableInputChain(t *testing.T) {
	w := newWorld(t)
	// A CE producing printer.status but needing a type nobody provides.
	mustPut(t, w.profiles, profile.Profile{
		Entity:  guid.New(guid.KindEntity),
		Name:    "broken",
		Inputs:  []ctxtype.Type{"nonexistent.input"},
		Outputs: []ctxtype.Type{ctxtype.PrinterStatus},
	})
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: ctxtype.PrinterStatus}, query.ModeSubscribe)
	if _, err := w.res.Resolve(q, Context{}); !errors.Is(err, ErrNoProvider) {
		t.Fatalf("want ErrNoProvider, got %v", err)
	}
}

func TestCycleDetection(t *testing.T) {
	profiles := &profile.Manager{}
	types := ctxtype.NewRegistry()
	if err := types.Register("t.a"); err != nil {
		t.Fatal(err)
	}
	if err := types.Register("t.b"); err != nil {
		t.Fatal(err)
	}
	a, b := guid.New(guid.KindEntity), guid.New(guid.KindEntity)
	mustPut(t, profiles, profile.Profile{
		Entity: a, Name: "a", Inputs: []ctxtype.Type{"t.b"}, Outputs: []ctxtype.Type{"t.a"},
	})
	mustPut(t, profiles, profile.Profile{
		Entity: b, Name: "b", Inputs: []ctxtype.Type{"t.a"}, Outputs: []ctxtype.Type{"t.b"},
	})
	res := New(profiles, types, nil)
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: "t.a"}, query.ModeSubscribe)
	_, err := res.Resolve(q, Context{})
	if err == nil {
		t.Fatal("cyclic profiles resolved")
	}
}

func TestSemanticRebindDoorToWLAN(t *testing.T) {
	w := newWorld(t)
	// Add a WLAN sighting source with lower quality.
	wlan := guid.New(guid.KindDevice)
	mustPut(t, w.profiles, profile.Profile{
		Entity:  wlan,
		Name:    "basestation",
		Outputs: []ctxtype.Type{ctxtype.LocationSightingWLAN},
		Quality: 0.6,
	})
	q := pathQuery(t)

	// Normal resolution prefers door sensors (higher quality, same score
	// for the ancestor type location.sighting).
	cfg, err := w.res.Resolve(q, Context{})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range cfg.Root.Inputs[0].Inputs {
		if leaf.Output != ctxtype.LocationSightingDoor {
			t.Fatalf("preferred leaf = %s, want door", leaf.Output)
		}
	}

	// Kill all door sensors: the resolver must rebind to the WLAN source
	// (experiment E9 / iQueue critique).
	exclude := guid.NewSet(w.doors...)
	cfg, err = w.res.Resolve(q, Context{Exclude: exclude})
	if err != nil {
		t.Fatal(err)
	}
	rebound := cfg.Root.Inputs[0].Inputs[0]
	if rebound.Provider != wlan || rebound.Output != ctxtype.LocationSightingWLAN {
		t.Fatalf("rebound leaf = %+v, want wlan basestation", rebound)
	}
}

func TestResolveReplacement(t *testing.T) {
	w := newWorld(t)
	q := pathQuery(t)
	cfg, err := w.res.Resolve(q, Context{})
	if err != nil {
		t.Fatal(err)
	}
	failed := cfg.Root.Inputs[0].Inputs[0].Provider
	rep, err := w.res.ResolveReplacement(q, ctxtype.LocationSighting, failed, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Provider == failed {
		t.Fatal("replacement chose the failed provider")
	}
}

func TestLiveOnlyFilter(t *testing.T) {
	w := newWorld(t)
	dead := guid.NewSet(w.doors[0], w.doors[1])
	ctx := Context{LiveOnly: func(g guid.GUID) bool { return !dead.Has(g) }}
	cfg, err := w.res.Resolve(pathQuery(t), ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cfg.Providers() {
		if dead.Has(p) {
			t.Fatal("configuration includes dead provider")
		}
	}
}

func TestWhichConstraintsFilter(t *testing.T) {
	profiles := &profile.Manager{}
	types := ctxtype.NewRegistry()
	busy := guid.New(guid.KindDevice)
	idle := guid.New(guid.KindDevice)
	mustPut(t, profiles, profile.Profile{
		Entity: busy, Name: "p-busy",
		Outputs:    []ctxtype.Type{ctxtype.PrinterStatus},
		Attributes: map[string]string{"status": "busy"},
	})
	mustPut(t, profiles, profile.Profile{
		Entity: idle, Name: "p-idle",
		Outputs:    []ctxtype.Type{ctxtype.PrinterStatus},
		Attributes: map[string]string{"status": "idle"},
	})
	res := New(profiles, types, nil)
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: ctxtype.PrinterStatus}, query.ModeSubscribe)
	q.Which.Constraints = map[string]string{"status": "idle"}
	cfg, err := res.Resolve(q, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != idle {
		t.Fatal("constraint did not filter busy printer")
	}
	// Impossible constraint.
	q.Which.Constraints["status"] = "on-fire"
	if _, err := res.Resolve(q, Context{}); !errors.Is(err, ErrNoProvider) {
		t.Fatalf("impossible constraint: %v", err)
	}
}

func TestWhichShortestQueue(t *testing.T) {
	profiles := &profile.Manager{}
	types := ctxtype.NewRegistry()
	long := guid.New(guid.KindDevice)
	short := guid.New(guid.KindDevice)
	mustPut(t, profiles, profile.Profile{
		Entity: long, Name: "p-long",
		Outputs:    []ctxtype.Type{ctxtype.PrinterStatus},
		Attributes: map[string]string{"queue": "7"},
	})
	mustPut(t, profiles, profile.Profile{
		Entity: short, Name: "p-short",
		Outputs:    []ctxtype.Type{ctxtype.PrinterStatus},
		Attributes: map[string]string{"queue": "1"},
	})
	res := New(profiles, types, nil)
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: ctxtype.PrinterStatus}, query.ModeSubscribe)
	q.Which.Criterion = query.CriterionShortestQueue
	cfg, err := res.Resolve(q, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != short {
		t.Fatal("shortest-queue did not pick the short queue")
	}
}

func TestWhichClosestWithMap(t *testing.T) {
	places := []location.Place{
		{ID: "r1", Path: "b/f/r1", Centroid: location.Point{Frame: "F", X: 0, Y: 0}},
		{ID: "r2", Path: "b/f/r2", Centroid: location.Point{Frame: "F", X: 10, Y: 0}},
		{ID: "r3", Path: "b/f/r3", Centroid: location.Point{Frame: "F", X: 20, Y: 0}},
	}
	links := []location.Link{{A: "r1", B: "r2"}, {A: "r2", B: "r3"}}
	lmap, err := location.NewMap(places, links)
	if err != nil {
		t.Fatal(err)
	}
	profiles := &profile.Manager{}
	types := ctxtype.NewRegistry()
	near := guid.New(guid.KindDevice)
	far := guid.New(guid.KindDevice)
	mustPut(t, profiles, profile.Profile{
		Entity: near, Name: "p-near",
		Outputs:  []ctxtype.Type{ctxtype.PrinterStatus},
		Location: location.AtPlace("r2"),
	})
	mustPut(t, profiles, profile.Profile{
		Entity: far, Name: "p-far",
		Outputs:  []ctxtype.Type{ctxtype.PrinterStatus},
		Location: location.AtPlace("r3"),
	})
	res := New(profiles, types, lmap)
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: ctxtype.PrinterStatus}, query.ModeSubscribe)
	q.Which.Criterion = query.CriterionClosest
	cfg, err := res.Resolve(q, Context{OwnerLocation: location.AtPlace("r1")})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != near {
		t.Fatal("closest criterion did not pick nearest printer")
	}
	// Implicit where=closest-to-me behaves the same.
	q.Which.Criterion = ""
	q.Where.Implicit = query.ImplicitClosest
	cfg, err = res.Resolve(q, Context{OwnerLocation: location.AtPlace("r1")})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != near {
		t.Fatal("closest-to-me did not pick nearest printer")
	}
}

func TestWhereExplicitScoping(t *testing.T) {
	places := []location.Place{
		{ID: "r1", Path: "b/f1/r1", Centroid: location.Point{Frame: "F1", X: 0, Y: 0}},
		{ID: "r2", Path: "b/f2/r2", Centroid: location.Point{Frame: "F2", X: 0, Y: 0}},
	}
	lmap, err := location.NewMap(places, nil)
	if err != nil {
		t.Fatal(err)
	}
	profiles := &profile.Manager{}
	types := ctxtype.NewRegistry()
	inRoom := guid.New(guid.KindDevice)
	elsewhere := guid.New(guid.KindDevice)
	mustPut(t, profiles, profile.Profile{
		Entity: inRoom, Name: "in-room",
		Outputs:  []ctxtype.Type{ctxtype.PrinterStatus},
		Location: location.AtPlace("r1"),
	})
	mustPut(t, profiles, profile.Profile{
		Entity: elsewhere, Name: "elsewhere",
		Outputs:  []ctxtype.Type{ctxtype.PrinterStatus},
		Location: location.AtPlace("r2"),
	})
	res := New(profiles, types, lmap)
	q := query.New(guid.New(guid.KindApplication), query.What{Pattern: ctxtype.PrinterStatus}, query.ModeSubscribe)
	q.Where.Explicit = location.AtPlace("r1")
	cfg, err := res.Resolve(q, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != inRoom {
		t.Fatal("explicit where did not scope to room")
	}
	// Area (ancestor path) scoping: floor f2 contains only "elsewhere".
	q.Where.Explicit = location.AtPath("b/f2")
	cfg, err = res.Resolve(q, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != elsewhere {
		t.Fatal("area where did not scope to floor")
	}
}

func TestBindEntityAndEntityType(t *testing.T) {
	w := newWorld(t)
	// Named entity.
	q := query.New(guid.New(guid.KindApplication), query.What{Entity: w.pathCE}, query.ModeProfile)
	cfg, err := w.res.Resolve(q, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != w.pathCE || len(cfg.Edges) != 0 {
		t.Fatal("entity binding wrong")
	}
	// Unknown entity.
	q.What.Entity = guid.New(guid.KindEntity)
	if _, err := w.res.Resolve(q, Context{}); !errors.Is(err, ErrNoProvider) {
		t.Fatalf("unknown entity: %v", err)
	}
	// Entity type via advertisement.
	printer := guid.New(guid.KindDevice)
	mustPut(t, w.profiles, profile.Profile{
		Entity: printer, Name: "p1",
		Outputs:       []ctxtype.Type{ctxtype.PrinterStatus},
		Advertisement: &profile.Advertisement{Interface: "printer", Operations: []string{"submit"}},
	})
	q2 := query.New(guid.New(guid.KindApplication), query.What{EntityType: "printer"}, query.ModeAdvertisement)
	cfg, err = w.res.Resolve(q2, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != printer {
		t.Fatal("entity-type binding wrong")
	}
	// Entity type via kind attribute.
	display := guid.New(guid.KindDevice)
	mustPut(t, w.profiles, profile.Profile{
		Entity: display, Name: "d1",
		Outputs:    []ctxtype.Type{ctxtype.ProfileUpdate},
		Attributes: map[string]string{"kind": "display"},
	})
	q3 := query.New(guid.New(guid.KindApplication), query.What{EntityType: "display"}, query.ModeAdvertisement)
	cfg, err = w.res.Resolve(q3, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Root.Provider != display {
		t.Fatal("kind-attribute binding wrong")
	}
}

func TestSubgraphReuseCache(t *testing.T) {
	w := newWorld(t)
	q := pathQuery(t)
	if _, err := w.res.Resolve(q, Context{}); err != nil {
		t.Fatal(err)
	}
	h0, m0 := w.res.CacheStats()
	// Second identical resolution reuses the position/sighting subtrees.
	if _, err := w.res.Resolve(q, Context{}); err != nil {
		t.Fatal(err)
	}
	h1, _ := w.res.CacheStats()
	if h1 <= h0 {
		t.Fatalf("no cache reuse: hits %d → %d (misses start %d)", h0, h1, m0)
	}
	// A profile mutation invalidates the cache.
	mustPut(t, w.profiles, profile.Profile{
		Entity:  guid.New(guid.KindDevice),
		Name:    "new-door",
		Outputs: []ctxtype.Type{ctxtype.LocationSightingDoor},
	})
	if _, err := w.res.Resolve(q, Context{}); err != nil {
		t.Fatal(err)
	}
	_, m2 := w.res.CacheStats()
	if m2 <= m0 {
		t.Fatal("cache not invalidated by profile change")
	}
}

func TestProvidersAndDepthHelpers(t *testing.T) {
	w := newWorld(t)
	cfg, err := w.res.Resolve(pathQuery(t), Context{})
	if err != nil {
		t.Fatal(err)
	}
	provs := cfg.Providers()
	if len(provs) != 5 { // pathCE, objLoc, three doors (fan-in)
		t.Fatalf("providers = %d: %v", len(provs), provs)
	}
	for i := 1; i < len(provs); i++ {
		if !guid.Less(provs[i-1], provs[i]) {
			t.Fatal("Providers not sorted")
		}
	}
}

func BenchmarkResolvePathQuery(b *testing.B) {
	w := newWorld(b)
	q := pathQuery(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.res.Resolve(q, Context{}); err != nil {
			b.Fatal(err)
		}
	}
}
