// Package resolver implements the Query Resolver Context Utility (paper,
// Sections 3.1–3.2): "Provides the means to take a high level query and
// decompose it into a useful configuration of Context Entities."
//
// Resolution is backward-chaining type matching over CE Profiles, exactly
// the Section 3.2 walk-through: a query for the Path between Bob and John
// finds a pathCE whose output satisfies path.route; the pathCE needs
// location.position inputs; an objLocationCE provides those but needs
// sightings; doorSensorCEs provide sightings and, being sources, ground the
// chain. The result is a Configuration — "an event subscription graph
// between entities where the inputs to one CE are provided by the outputs
// of others".
//
// Candidate selection honours the query's Which clause (constraints are
// hard filters; the criterion ranks survivors) and uses the semantic
// equivalence classes of ctxtype, which is what lets a request bound to
// door sightings rebind to W-LAN sightings (experiment E9, the iQueue
// critique). Resolved sub-graphs are cached and reused across queries while
// the profile store is unchanged (Solar's scalability idea); the cache
// invalidates on any profile mutation.
package resolver

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"sci/internal/ctxtype"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/profile"
	"sci/internal/query"
)

// Binding is one node of a configuration graph: a provider chosen to supply
// a context type, with the bindings feeding its inputs.
type Binding struct {
	// Provider is the chosen entity.
	Provider guid.GUID `json:"provider"`
	// Want is the type the consumer asked for.
	Want ctxtype.Type `json:"want"`
	// Output is the provider's actual output type satisfying Want.
	Output ctxtype.Type `json:"output"`
	// Inputs are the bindings feeding each of the provider's declared
	// inputs, in profile order.
	Inputs []*Binding `json:"inputs,omitempty"`
}

// Edge is one event subscription to establish: Consumer subscribes to
// events of Type produced by Producer.
type Edge struct {
	Consumer guid.GUID    `json:"consumer"`
	Producer guid.GUID    `json:"producer"`
	Type     ctxtype.Type `json:"type"`
}

// Configuration is a resolved subscription graph ready for the Event
// Mediator to instantiate.
type Configuration struct {
	// ID names this configuration.
	ID guid.GUID `json:"id"`
	// Query is the originating query.
	Query query.Query `json:"query"`
	// Root is the top-level binding answering the query's What.
	Root *Binding `json:"root"`
	// Edges flattens the graph into the subscriptions to establish,
	// deduplicated, consumers before their producers' consumers
	// (deterministic order).
	Edges []Edge `json:"edges"`
}

// Providers returns every distinct provider in the graph, sorted.
func (c *Configuration) Providers() []guid.GUID {
	set := guid.NewSet()
	var walk func(b *Binding)
	walk = func(b *Binding) {
		if b == nil {
			return
		}
		set.Add(b.Provider)
		for _, in := range b.Inputs {
			walk(in)
		}
	}
	walk(c.Root)
	return set.Members()
}

// Depth returns the longest provider chain in the graph.
func (c *Configuration) Depth() int {
	var walk func(b *Binding) int
	walk = func(b *Binding) int {
		if b == nil {
			return 0
		}
		max := 0
		for _, in := range b.Inputs {
			if d := walk(in); d > max {
				max = d
			}
		}
		return max + 1
	}
	return walk(c.Root)
}

// Context carries per-resolution situational data.
type Context struct {
	// OwnerLocation anchors implicit Where expressions ("closest-to-me")
	// and the Which "closest" criterion.
	OwnerLocation location.Ref
	// Exclude lists providers that must not be chosen (repair: the failed
	// provider and anything else known-bad).
	Exclude guid.Set
	// LiveOnly, when non-nil, restricts providers to those for which the
	// func returns true (wired to the Registrar's IsLive).
	LiveOnly func(guid.GUID) bool
}

// Resolver builds configurations from queries. Construct with New.
type Resolver struct {
	profiles *profile.Manager
	types    *ctxtype.Registry
	places   *location.Map // may be nil: distance criteria degrade gracefully

	mu       sync.Mutex
	cacheGen uint64
	cache    map[cacheKey]*Binding
	hits     uint64
	misses   uint64
}

type cacheKey struct {
	want        ctxtype.Type
	constraints string // canonicalised Which constraints
}

// MaxDepth bounds backward chaining; deeper graphs indicate a profile cycle.
const MaxDepth = 16

// Errors.
var (
	ErrNoProvider = errors.New("resolver: no provider satisfies request")
	ErrCycle      = errors.New("resolver: profile dependency cycle")
	ErrBadWhat    = errors.New("resolver: query What not resolvable to a configuration")
)

// New builds a Resolver. places may be nil.
func New(profiles *profile.Manager, types *ctxtype.Registry, places *location.Map) *Resolver {
	return &Resolver{
		profiles: profiles,
		types:    types,
		places:   places,
		cache:    make(map[cacheKey]*Binding),
	}
}

// CacheStats reports sub-graph reuse counts (experiment E3's reuse rate).
func (r *Resolver) CacheStats() (hits, misses uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// Resolve builds a configuration for q. For What=pattern queries this is
// the full backward chain; for What=entity it binds that entity directly;
// What=entity-type resolves to the best advertisement match (used by
// profile and advertisement modes).
func (r *Resolver) Resolve(q query.Query, ctx Context) (*Configuration, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var root *Binding
	var err error
	switch q.What.Kind() {
	case "pattern":
		root, err = r.resolveType(q.What.Pattern, q, ctx, nil, 0)
	case "entity":
		root, err = r.bindEntity(q.What.Entity, ctx)
	case "entity-type":
		root, err = r.bindEntityType(q.What.EntityType, q, ctx)
	default:
		return nil, ErrBadWhat
	}
	if err != nil {
		return nil, err
	}
	cfg := &Configuration{
		ID:    guid.New(guid.KindConfiguration),
		Query: q,
		Root:  root,
	}
	cfg.Edges = Flatten(root)
	return cfg, nil
}

// ResolveReplacement rebuilds the sub-graph that supplied want after the
// given provider failed, excluding it. The configuration runtime grafts the
// replacement in and rewires subscriptions (experiment E8).
func (r *Resolver) ResolveReplacement(q query.Query, want ctxtype.Type, failed guid.GUID, ctx Context) (*Binding, error) {
	if ctx.Exclude == nil {
		ctx.Exclude = guid.NewSet()
	}
	ctx.Exclude.Add(failed)
	// Repair must not serve the stale cached subtree that contains the
	// failed provider.
	r.invalidate()
	return r.resolveType(want, q, ctx, nil, 0)
}

// Invalidate drops the sub-graph cache (profile mutations do this
// implicitly; explicit calls serve tests and repair).
func (r *Resolver) invalidate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[cacheKey]*Binding)
	r.cacheGen = r.profiles.Generation()
}

// resolveType finds a provider for want and recursively satisfies its
// inputs. path is the provider chain above (cycle detection).
func (r *Resolver) resolveType(want ctxtype.Type, q query.Query, ctx Context, path []guid.GUID, depth int) (*Binding, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("%w: depth %d exceeded for %s", ErrCycle, MaxDepth, want)
	}

	// Sub-graph reuse: only for unconstrained situational context (no
	// exclusions, no owner anchoring) — those change per query.
	cacheable := len(ctx.Exclude) == 0 && ctx.OwnerLocation.Empty() && ctx.LiveOnly == nil && depth > 0
	key := cacheKey{want: want, constraints: canonConstraints(q.Which.Constraints)}
	if cacheable {
		r.mu.Lock()
		if r.cacheGen == r.profiles.Generation() {
			if b, ok := r.cache[key]; ok {
				r.hits++
				r.mu.Unlock()
				return b, nil
			}
		} else {
			r.cache = make(map[cacheKey]*Binding)
			r.cacheGen = r.profiles.Generation()
		}
		r.misses++
		r.mu.Unlock()
	}

	cands := r.profiles.FindProviders(want, r.types)
	cands = r.filterCandidates(cands, q, ctx, path)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoProvider, want)
	}
	r.rankCandidates(cands, q, ctx)

	var lastErr error
	for _, cand := range cands {
		b, err := r.bindProvider(cand, want, q, ctx, path, depth)
		if err != nil {
			lastErr = err
			continue // try the next-ranked candidate
		}
		if cacheable {
			r.mu.Lock()
			if r.cacheGen == r.profiles.Generation() {
				r.cache[key] = b
			}
			r.mu.Unlock()
		}
		return b, nil
	}
	return nil, fmt.Errorf("%w: %s (last: %v)", ErrNoProvider, want, lastErr)
}

// bindProvider recursively satisfies a candidate's inputs.
func (r *Resolver) bindProvider(cand profile.Candidate, want ctxtype.Type, q query.Query, ctx Context, path []guid.GUID, depth int) (*Binding, error) {
	p := cand.Profile
	b := &Binding{
		Provider: p.Entity,
		Want:     want,
		Output:   bestOutput(p, want, r.types),
	}
	childPath := append(path, p.Entity)
	for _, in := range p.Inputs {
		subs, err := r.resolveInput(in, q, ctx, childPath, depth+1)
		if err != nil {
			return nil, fmt.Errorf("input %s of %s: %w", in, p.Name, err)
		}
		b.Inputs = append(b.Inputs, subs...)
	}
	return b, nil
}

// resolveInput satisfies one declared input of an operator CE. When the
// best candidate is a source (sensor level), the operator is fanned in to
// EVERY source of that same output type — the paper's Fig 3 shows the
// objLocationCE "set up to subscribe to all events emanating from door
// sensors (doorSensorCEs)", plural. When the best candidate is another
// operator, a single provider is chosen (as at the query root, where the
// Which clause arbitrates).
func (r *Resolver) resolveInput(want ctxtype.Type, q query.Query, ctx Context, path []guid.GUID, depth int) ([]*Binding, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("%w: depth %d exceeded for %s", ErrCycle, MaxDepth, want)
	}
	cands := r.profiles.FindProviders(want, r.types)
	cands = r.filterCandidates(cands, q, ctx, path)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoProvider, want)
	}
	r.rankCandidates(cands, q, ctx)
	top := cands[0]
	if !top.Profile.IsSource() {
		b, err := r.resolveType(want, q, ctx, path, depth)
		if err != nil {
			return nil, err
		}
		return []*Binding{b}, nil
	}
	topOut := bestOutput(top.Profile, want, r.types)
	var out []*Binding
	for _, c := range cands {
		if !c.Profile.IsSource() {
			continue
		}
		if bestOutput(c.Profile, want, r.types) != topOut {
			continue // equivalent-but-different representations stay in reserve for repair
		}
		out = append(out, &Binding{
			Provider: c.Profile.Entity,
			Want:     want,
			Output:   topOut,
		})
	}
	return out, nil
}

// bindEntity builds a single-node configuration for a named entity.
func (r *Resolver) bindEntity(entity guid.GUID, ctx Context) (*Binding, error) {
	p, err := r.profiles.Get(entity)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoProvider, err)
	}
	if ctx.LiveOnly != nil && !ctx.LiveOnly(entity) {
		return nil, fmt.Errorf("%w: %s not live", ErrNoProvider, entity.Short())
	}
	out := ctxtype.Wildcard
	if len(p.Outputs) > 0 {
		out = p.Outputs[0]
	}
	return &Binding{Provider: entity, Want: out, Output: out}, nil
}

// bindEntityType selects the best entity advertising the named interface
// (or carrying kind=<type> attribute), honouring Which.
func (r *Resolver) bindEntityType(entityType string, q query.Query, ctx Context) (*Binding, error) {
	profiles := r.profiles.FindByInterface(entityType)
	for _, p := range r.profiles.FindByAttr("kind", entityType) {
		dup := false
		for _, existing := range profiles {
			if existing.Entity == p.Entity {
				dup = true
				break
			}
		}
		if !dup {
			profiles = append(profiles, p)
		}
	}
	cands := make([]profile.Candidate, 0, len(profiles))
	for _, p := range profiles {
		cands = append(cands, profile.Candidate{Profile: p, Score: 3})
	}
	cands = r.filterCandidates(cands, q, ctx, nil)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: entity type %q", ErrNoProvider, entityType)
	}
	r.rankCandidates(cands, q, ctx)
	p := cands[0].Profile
	out := ctxtype.Wildcard
	if len(p.Outputs) > 0 {
		out = p.Outputs[0]
	}
	return &Binding{Provider: p.Entity, Want: out, Output: out}, nil
}

// filterCandidates applies hard filters: exclusions, liveness, cycle
// avoidance, Which constraints, and Where scoping.
func (r *Resolver) filterCandidates(cands []profile.Candidate, q query.Query, ctx Context, path []guid.GUID) []profile.Candidate {
	out := cands[:0]
	for _, c := range cands {
		p := c.Profile
		if ctx.Exclude.Has(p.Entity) {
			continue
		}
		if ctx.LiveOnly != nil && !ctx.LiveOnly(p.Entity) {
			continue
		}
		onPath := false
		for _, anc := range path {
			if anc == p.Entity {
				onPath = true
				break
			}
		}
		if onPath {
			continue
		}
		if !meetsConstraints(p, q.Which.Constraints) {
			continue
		}
		if !r.meetsWhere(p, q.Where, ctx) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// meetsWhere applies location scoping. Entities without a location pass
// explicit scoping only if the query is unscoped (sensors placed abstractly
// should not be silently excluded from implicit queries).
func (r *Resolver) meetsWhere(p profile.Profile, w query.Where, ctx Context) bool {
	if w.Empty() {
		return true
	}
	if !w.Explicit.Empty() {
		if p.Location.Empty() {
			// Software operators (entities with inputs) have no physical
			// location and must not be excluded by area scoping; physical
			// sources without a declared location cannot prove they are in
			// the area, so they are.
			return len(p.Inputs) > 0
		}
		if r.places == nil {
			// Without a map, fall back to hierarchical containment.
			return w.Explicit.Path != "" && p.Location.Path != "" &&
				w.Explicit.Path.Contains(p.Location.Path)
		}
		// Same place, or the query names an ancestor area containing the
		// entity's place.
		pr, err := r.places.Resolve(p.Location)
		if err != nil {
			return false
		}
		qr, err := r.places.Resolve(w.Explicit)
		if err == nil {
			if pr.Place == qr.Place {
				return true
			}
		}
		if w.Explicit.Path != "" && pr.Path != "" {
			return w.Explicit.Path.Contains(pr.Path)
		}
		return false
	}
	switch w.Implicit {
	case query.ImplicitSameRoom:
		if p.Location.Empty() || ctx.OwnerLocation.Empty() || r.places == nil {
			return false
		}
		same, err := r.places.SamePlace(p.Location, ctx.OwnerLocation)
		return err == nil && same
	case query.ImplicitSameFloor:
		if p.Location.Empty() || ctx.OwnerLocation.Empty() || r.places == nil {
			return false
		}
		pr, err1 := r.places.Resolve(p.Location)
		or, err2 := r.places.Resolve(ctx.OwnerLocation)
		if err1 != nil || err2 != nil {
			return false
		}
		return pr.Path.Parent() == or.Path.Parent()
	default:
		// closest-to-me is a ranking, not a filter.
		return true
	}
}

// rankCandidates orders candidates best-first under the Which criterion,
// falling back to (score, quality, GUID).
func (r *Resolver) rankCandidates(cands []profile.Candidate, q query.Query, ctx Context) {
	crit := q.Which.Criterion
	if crit == "" && q.Where.Implicit == query.ImplicitClosest {
		crit = query.CriterionClosest
	}
	less := func(a, b profile.Candidate) bool {
		switch crit {
		case query.CriterionClosest:
			da, db := r.distanceTo(a.Profile, ctx), r.distanceTo(b.Profile, ctx)
			if da != db {
				return da < db
			}
		case query.CriterionShortestQueue:
			qa, qb := attrFloat(a.Profile, "queue", math.Inf(1)), attrFloat(b.Profile, "queue", math.Inf(1))
			if qa != qb {
				return qa < qb
			}
		case query.CriterionHighestQuality:
			if a.Profile.Quality != b.Profile.Quality {
				return a.Profile.Quality > b.Profile.Quality
			}
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		qa, qb := effectiveQuality(a, r.types), effectiveQuality(b, r.types)
		if qa != qb {
			return qa > qb
		}
		return guid.Less(a.Profile.Entity, b.Profile.Entity)
	}
	// Insertion sort: candidate lists are small and this keeps the
	// comparator stable without an extra dependency.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && less(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

func (r *Resolver) distanceTo(p profile.Profile, ctx Context) float64 {
	if r.places == nil || p.Location.Empty() || ctx.OwnerLocation.Empty() {
		return math.Inf(1)
	}
	return r.places.TravelDistance(ctx.OwnerLocation, p.Location)
}

// effectiveQuality is the profile's own quality, else the registry default
// for its first output.
func effectiveQuality(c profile.Candidate, reg *ctxtype.Registry) float64 {
	if c.Profile.Quality > 0 {
		return c.Profile.Quality
	}
	if reg != nil && len(c.Profile.Outputs) > 0 {
		return reg.Quality(c.Profile.Outputs[0])
	}
	return 0.5
}

func meetsConstraints(p profile.Profile, cons map[string]string) bool {
	for k, v := range cons {
		if p.Attributes[k] != v {
			return false
		}
	}
	return true
}

func attrFloat(p profile.Profile, key string, def float64) float64 {
	s, ok := p.Attributes[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return f
}

func bestOutput(p profile.Profile, want ctxtype.Type, reg *ctxtype.Registry) ctxtype.Type {
	best := ctxtype.Type("")
	bestScore := 0
	for _, out := range p.Outputs {
		s := 0
		if reg != nil {
			s = reg.MatchScore(out, want)
		} else if out == want || out.HasAncestor(want) {
			s = 3
		}
		if s > bestScore {
			best, bestScore = out, s
		}
	}
	if best == "" && len(p.Outputs) > 0 {
		best = p.Outputs[0]
	}
	return best
}

func canonConstraints(cons map[string]string) string {
	if len(cons) == 0 {
		return ""
	}
	keys := make([]string, 0, len(cons))
	for k := range cons {
		keys = append(keys, k)
	}
	// Sort without importing sort twice — small n insertion sort.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(cons[k])
		b.WriteByte(';')
	}
	return b.String()
}

// Flatten walks a binding graph emitting deduplicated consumer←producer
// edges in deterministic (pre-order) order. The configuration runtime uses
// it to recompute edges after a repair graft.
func Flatten(root *Binding) []Edge {
	var edges []Edge
	seen := map[Edge]bool{}
	var walk func(b *Binding)
	walk = func(b *Binding) {
		if b == nil {
			return
		}
		for _, in := range b.Inputs {
			e := Edge{Consumer: b.Provider, Producer: in.Provider, Type: in.Output}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
			walk(in)
		}
	}
	walk(root)
	return edges
}
