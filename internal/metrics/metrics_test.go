package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 22 {
		t.Fatalf("Mean = %v, want 22", h.Mean())
	}
	if h.Max() != 100 || h.Min() != 1 {
		t.Fatalf("Max/Min = %d/%d", h.Max(), h.Min())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Max() != 0 || h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative sample not clamped to zero")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	// Quantile estimates are bucket upper bounds: they must be ≥ the true
	// quantile and ≤ max.
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		got := h.Quantile(q)
		trueQ := int64(q * 1000)
		if got < trueQ {
			t.Errorf("Quantile(%v) = %d < true %d", q, got, trueQ)
		}
		if got > h.Max() {
			t.Errorf("Quantile(%v) = %d > max %d", q, got, h.Max())
		}
	}
	// Out-of-range q clamped.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("q clamping broken")
	}
}

func TestHistogramRecordDurationAndSnapshot(t *testing.T) {
	var h Histogram
	h.RecordDuration(time.Millisecond)
	h.RecordDuration(2 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 || s.Max != int64(2*time.Millisecond) {
		t.Fatalf("snapshot = %+v", s)
	}
	if !strings.Contains(s.DurationString(), "n=2") {
		t.Fatalf("DurationString = %q", s.DurationString())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(r.Intn(1 << 20)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() > h.Max() {
		t.Fatal("min > max")
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			h.Record(int64(r.Intn(1 << 30)))
		}
		qs := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		vals := make([]int64, len(qs))
		for i, q := range qs {
			vals[i] = h.Quantile(q)
		}
		return sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) ||
			func() bool { // non-strict monotone acceptable
				for i := 1; i < len(vals); i++ {
					if vals[i] < vals[i-1] {
						return false
					}
				}
				return true
			}()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMeanWithinMinMax(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Record(int64(v))
		}
		m := h.Mean()
		return m >= float64(h.Min()) && m <= float64(h.Max())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	c := r.Counter("a.count")
	if r.Counter("a.count") != c {
		t.Fatal("Counter not memoised")
	}
	c.Inc()
	g := r.Gauge("b.gauge")
	if r.Gauge("b.gauge") != g {
		t.Fatal("Gauge not memoised")
	}
	g.Set(3)
	h := r.Histogram("c.hist")
	if r.Histogram("c.hist") != h {
		t.Fatal("Histogram not memoised")
	}
	h.Record(7)
	dump := r.Dump()
	for _, want := range []string{"a.count", "b.gauge", "c.hist"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}
