// Package metrics provides the lightweight counters, gauges and histograms
// the benchmark harness uses to characterise the infrastructure — hop
// counts and relay load in the SCINET overlay (experiment E1), discovery
// and repair latencies (E5, E8), end-to-end CAPA latency (E7).
//
// Histograms use fixed logarithmic buckets so recording is allocation-free
// and safe to call from hot paths and many goroutines at once.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a settable instantaneous float64 value — ratios and rates
// such as the event dispatcher's index-hit ratio. The zero value reads 0.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of logarithmic buckets: bucket i covers values
// in [2^(i-1), 2^i) with bucket 0 covering {0}.
const histBuckets = 64

// Histogram records a distribution of non-negative int64 samples (typically
// nanoseconds or hop counts) in logarithmic buckets. The zero value is ready
// to use and safe for concurrent recording.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // stored negated-with-offset; see Record
	minInit sync.Once
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.minInit.Do(func() { h.min.Store(math.MaxInt64) })
	idx := 0
	if v > 0 {
		idx = 64 - leadingZeros64(uint64(v))
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest recorded sample (0 with no samples).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Min returns the smallest recorded sample (0 with no samples).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// using bucket upper edges; exact for values that are powers of two.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			upper := int64(1) << uint(i)
			if upper < 0 || upper > h.max.Load() {
				return h.max.Load()
			}
			return upper
		}
	}
	return h.max.Load()
}

// Snapshot summarises the histogram for reporting.
type Snapshot struct {
	Count uint64
	Mean  float64
	Min   int64
	P50   int64
	P90   int64
	P99   int64
	Max   int64
}

// Snapshot returns a point-in-time summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// DurationString renders a nanosecond-valued snapshot with duration units.
func (s Snapshot) DurationString() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.Count, time.Duration(int64(s.Mean)).Round(time.Microsecond),
		time.Duration(s.P50), time.Duration(s.P99), time.Duration(s.Max))
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Registry is a named collection of metrics, used by cmd/scibench to print
// experiment outputs. Safe for concurrent use; the zero value is usable.
type Registry struct {
	mu      sync.Mutex
	counts  map[string]*Counter
	gauges  map[string]*Gauge
	fgauges map[string]*FloatGauge
	hists   map[string]*Histogram
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counts == nil {
		r.counts = make(map[string]*Counter)
	}
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns (creating if needed) the named float gauge.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fgauges == nil {
		r.fgauges = make(map[string]*FloatGauge)
	}
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Dump renders all metrics sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, c := range r.counts {
		lines = append(lines, fmt.Sprintf("counter %-40s %d", n, c.Value()))
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-40s %d", n, g.Value()))
	}
	for n, g := range r.fgauges {
		lines = append(lines, fmt.Sprintf("fgauge  %-40s %.4f", n, g.Value()))
	}
	for n, h := range r.hists {
		s := h.Snapshot()
		lines = append(lines, fmt.Sprintf("hist    %-40s n=%d mean=%.1f p50=%d p99=%d max=%d",
			n, s.Count, s.Mean, s.P50, s.P99, s.Max))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
