package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	if v := g.Value(); v != 0 {
		t.Fatalf("zero value = %v, want 0", v)
	}
	g.Set(0.75)
	if v := g.Value(); v != 0.75 {
		t.Fatalf("Value = %v, want 0.75", v)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Set(float64(i))
			}
		}(i)
	}
	wg.Wait()
	if v := g.Value(); v < 0 || v > 7 {
		t.Fatalf("concurrent Set left torn value %v", v)
	}
}

func TestRegistryFloatGauge(t *testing.T) {
	var r Registry
	g := r.FloatGauge("dispatch.index_hit_ratio")
	if g != r.FloatGauge("dispatch.index_hit_ratio") {
		t.Fatal("FloatGauge not idempotent")
	}
	g.Set(0.9)
	if !strings.Contains(r.Dump(), "dispatch.index_hit_ratio") {
		t.Fatalf("Dump missing float gauge:\n%s", r.Dump())
	}
}
