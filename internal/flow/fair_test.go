package flow

import (
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

func mkEventsFrom(src guid.GUID, n int, startSeq uint64, at time.Time) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.New(ctxtype.TemperatureCelsius, src, startSeq+uint64(i)+1, at, nil)
	}
	return out
}

func newFair(clk clock.Clock, maxBatch int, maxDelay time.Duration, rec *recorder,
	st *SharedStats, weights map[guid.GUID]int) *Coalescer {
	return New(Config{
		Clock:    clk,
		MaxBatch: maxBatch,
		MaxDelay: maxDelay,
		Fair:     Fair{Enabled: true, Weights: weights},
		Send:     rec.send,
		Stats:    st,
	})
}

// countBySource tallies a chunk per Event.Source.
func countBySource(events []event.Event) map[guid.GUID]int {
	out := make(map[guid.GUID]int)
	for i := range events {
		out[events[i].Source]++
	}
	return out
}

// TestFairDrainSharesChunk: with one source flooding and one paced, every
// shipped chunk carries the paced source's events — the flood cannot push
// them behind its own backlog.
func TestFairDrainSharesChunk(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	hot := guid.New(guid.KindDevice)
	well := guid.New(guid.KindDevice)
	c := newFair(clk, 8, 10*time.Millisecond, rec, nil, nil)

	// The flood arrives first and deep; the paced events arrive last.
	c.AddAll(mkEventsFrom(hot, 7, 0, clk.Now()))
	c.Add(mkEventsFrom(well, 1, 0, clk.Now())[0]) // 8th event: size flush
	if got := rec.sends(); got != 1 {
		t.Fatalf("sends = %d, want 1 size flush", got)
	}
	by := countBySource(rec.chunks[0])
	if by[well] != 1 {
		t.Fatalf("paced source absent from the flushed chunk: %v", by)
	}
	if by[hot] != 7 {
		t.Fatalf("chunk = %v, want the remaining 7 flood events", by)
	}
}

// TestFairWeightedSplit: a 3:1 weight split divides a full chunk 3:1 when
// both sources are backlogged.
func TestFairWeightedSplit(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	a := guid.New(guid.KindDevice)
	d := guid.New(guid.KindDevice)
	c := newFair(clk, 64, 10*time.Millisecond, rec, nil, map[guid.GUID]int{a: 3, d: 1})

	// Keep both far deeper than one chunk, added below the size trigger.
	c.AddAll(mkEventsFrom(a, 63, 0, clk.Now()))
	c.AddAll(mkEventsFrom(d, 63, 0, clk.Now())) // 126 total ≥ 64: size flush
	if got := rec.sends(); got != 1 {
		t.Fatalf("sends = %d, want 1", got)
	}
	by := countBySource(rec.chunks[0])
	if by[a] != 48 || by[d] != 16 {
		t.Fatalf("64-event chunk split %d:%d, want 48:16 for weights 3:1", by[a], by[d])
	}
}

// TestFairPerSourceFIFO: DRR reorders across sources but never within one.
func TestFairPerSourceFIFO(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	a := guid.New(guid.KindDevice)
	d := guid.New(guid.KindDevice)
	c := newFair(clk, 16, 10*time.Millisecond, rec, nil, nil)

	c.AddAll(mkEventsFrom(a, 10, 0, clk.Now()))
	c.AddAll(mkEventsFrom(d, 5, 0, clk.Now()))
	c.Flush()
	last := make(map[guid.GUID]uint64)
	for _, e := range rec.events() {
		if e.Seq <= last[e.Source] {
			t.Fatalf("source %s out of order: seq %d after %d", e.Source.Short(), e.Seq, last[e.Source])
		}
		last[e.Source] = e.Seq
	}
	if len(rec.events()) != 15 {
		t.Fatalf("flush shipped %d events, want all 15", len(rec.events()))
	}
}

// TestFairShedTargetsOffender: under a credit throttle the bounded buffer
// sheds from the deepest sub-queue — the flooding source — and attributes
// the loss to it; the paced source survives untouched.
func TestFairShedTargetsOffender(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	st := &SharedStats{}
	hot := guid.New(guid.KindDevice)
	well := guid.New(guid.KindDevice)
	c := newFair(clk, 2, 10*time.Millisecond, rec, st, nil)

	c.UpdateCredit(0, 100)
	c.UpdateCredit(9, 0)
	if !c.Throttled() {
		t.Fatal("not throttled")
	}
	limit := 2 * throttleBufferFactor
	c.AddAll(mkEventsFrom(well, 3, 0, clk.Now()))
	c.AddAll(mkEventsFrom(hot, limit+20, 0, clk.Now()))
	if got := c.PendingLen(); got != limit {
		t.Fatalf("pending = %d, want bounded at %d", got, limit)
	}
	shed := st.ShedBySource()
	if shed[hot] != 23 {
		t.Fatalf("flood shed = %d, want 23 (3 + limit + 20 − limit)", shed[hot])
	}
	if shed[well] != 0 {
		t.Fatalf("paced source shed %d events", shed[well])
	}
	// The flood's survivors are its freshest; the paced events all survive.
	c.Flush()
	by := countBySource(rec.events())
	if by[well] != 3 {
		t.Fatalf("paced source delivered %d of 3", by[well])
	}
	var oldestHot uint64
	for _, e := range rec.events() {
		if e.Source == hot && (oldestHot == 0 || e.Seq < oldestHot) {
			oldestHot = e.Seq
		}
	}
	if oldestHot != 24 {
		t.Fatalf("flood shed kept the oldest: first surviving seq = %d, want 24", oldestHot)
	}
}

// TestFairTimerFlushShipsEverything: the delay-timer path drains every
// sub-queue, partial rounds included.
func TestFairTimerFlushShipsEverything(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	a := guid.New(guid.KindDevice)
	d := guid.New(guid.KindDevice)
	c := newFair(clk, 64, 10*time.Millisecond, rec, nil, nil)

	c.AddAll(mkEventsFrom(a, 3, 0, clk.Now()))
	c.AddAll(mkEventsFrom(d, 2, 0, clk.Now()))
	clk.Advance(10 * time.Millisecond)
	if got := len(rec.events()); got != 5 {
		t.Fatalf("timer flush shipped %d events, want 5", got)
	}
	if got := c.PendingLen(); got != 0 {
		t.Fatalf("pending = %d after timer flush", got)
	}
}

// TestFairSubQueueTableBounded: beyond maxFairSources distinct sources the
// overflow events share the nil-GUID sub-queue; nothing is lost.
func TestFairSubQueueTableBounded(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	c := newFair(clk, 1<<20, time.Hour, rec, nil, nil)

	total := 0
	for i := 0; i < maxFairSources+10; i++ {
		c.Add(mkEventsFrom(guid.New(guid.KindDevice), 1, 0, clk.Now())[0])
		total++
	}
	c.mu.Lock()
	subs := len(c.subs)
	c.mu.Unlock()
	// The bound admits maxFairSources named queues plus the shared nil-GUID
	// overflow queue.
	if subs > maxFairSources+1 {
		t.Fatalf("sub-queue table grew to %d, want ≤ %d", subs, maxFairSources+1)
	}
	c.Flush()
	if got := len(rec.events()); got != total {
		t.Fatalf("flush shipped %d events, want all %d", got, total)
	}
}

// TestFairConcurrentConservation races multi-source adds against flushes
// and credit updates; no event is lost or duplicated.
func TestFairConcurrentConservation(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	st := &SharedStats{}
	c := newFair(clk, 8, 10*time.Millisecond, rec, st, nil)

	const (
		goroutines = 6
		perG       = 200
	)
	srcs := make([]guid.GUID, goroutines)
	for i := range srcs {
		srcs[i] = guid.New(guid.KindDevice)
	}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(src guid.GUID) {
			defer wg.Done()
			for j := 0; j < perG; j += 4 {
				c.AddAll(mkEventsFrom(src, 4, uint64(j), clk.Now()))
			}
		}(srcs[i])
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.Flush()
				c.UpdateCredit(0, 50)
			}
		}
	}()
	wg.Wait()
	close(done)
	c.Flush()
	if got := len(rec.events()); got != goroutines*perG {
		t.Fatalf("delivered %d events, want %d (none shed: never throttled)",
			got, goroutines*perG)
	}
	if got := st.EventsShed.Value(); got != 0 {
		t.Fatalf("unthrottled run shed %d events", got)
	}
}
