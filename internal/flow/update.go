package flow

import (
	"sync"
	"time"

	"sci/internal/clock"
)

// UpdateConfig parameterises an UpdateCoalescer. Clock, Window and Send are
// required.
type UpdateConfig struct {
	// Clock schedules the deferred-update timers (injected for tests).
	Clock clock.Clock
	// Window is the minimum spacing between updates to one peer.
	Window time.Duration
	// Send ships one update and reports success. Called outside the
	// coalescer's lock; the callback reads the live state itself, so an
	// update is never staler than its send instant. On failure the
	// coalescer re-touches itself, so the window timer retries instead of
	// silently losing the change.
	Send func() bool
}

// UpdateCoalescer rate-limits state-summary announcements toward one peer —
// the send-side sibling of the AckCoalescer's leading/cumulative state
// machine, used by the fabric hierarchy's digest announcements: interest
// churn from mobility must not re-announce a subtree summary per change.
//
//   - the first announcement after quiet leaves immediately (the leading
//     edge, so a fresh interest reaches the hierarchy at interactive
//     latency);
//   - further changes within Window coalesce into one deferred
//     announcement carrying the then-current state — the summary is
//     whole-state (like a cumulative credit figure), so every suppressed
//     intermediate is subsumed by the one that leaves;
//   - a change landing after the window re-opens ships immediately again.
//
// Construct with NewUpdateCoalescer; safe for concurrent use.
type UpdateCoalescer struct {
	cfg UpdateConfig

	mu      sync.Mutex
	pending bool
	timer   clock.Timer
	last    time.Time // when the last update left
	stopped bool
}

// NewUpdateCoalescer builds an UpdateCoalescer.
func NewUpdateCoalescer(cfg UpdateConfig) *UpdateCoalescer {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	return &UpdateCoalescer{cfg: cfg}
}

// Touch records that the announced state changed and an update is now owed,
// shipping or deferring it per the contract above.
func (u *UpdateCoalescer) Touch() {
	u.mu.Lock()
	if u.stopped {
		u.mu.Unlock()
		return
	}
	u.pending = true
	now := u.cfg.Clock.Now()
	var due time.Duration
	if !u.last.IsZero() {
		due = u.cfg.Window - now.Sub(u.last)
	}
	if due <= 0 {
		u.mu.Unlock()
		u.Flush()
		return
	}
	if u.timer == nil {
		u.timer = u.cfg.Clock.AfterFunc(due, u.Flush)
	}
	u.mu.Unlock()
}

// Flush ships the pending update (the timer path, and Touch's immediate
// path). A no-op when nothing is pending; a failed send re-touches so the
// window timer retries (takeLocked just refreshed `last`, so the retry
// defers rather than looping).
func (u *UpdateCoalescer) Flush() {
	u.mu.Lock()
	ok := u.takeLocked()
	u.mu.Unlock()
	if ok && !u.cfg.Send() {
		u.Touch()
	}
}

// takeLocked resets the coalescing state for an update that is about to
// leave. Callers hold u.mu.
func (u *UpdateCoalescer) takeLocked() bool {
	if !u.pending || u.stopped {
		return false
	}
	u.pending = false
	u.last = u.cfg.Clock.Now()
	if u.timer != nil {
		u.timer.Stop()
		u.timer = nil
	}
	return true
}

// Stop disarms the timer and refuses further updates (peer departed or
// owner closing).
func (u *UpdateCoalescer) Stop() {
	u.mu.Lock()
	u.stopped = true
	u.pending = false
	if u.timer != nil {
		u.timer.Stop()
		u.timer = nil
	}
	u.mu.Unlock()
}
