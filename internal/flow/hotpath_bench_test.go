package flow

// Allocation cross-check for this package's //lint:hotpath annotation on
// Coalescer.doFlush. The static analyzer proves the flush path free of
// allocating constructs up to its //lint:allow escapes (the fair-mode
// extraction, the once-per-tail timer re-arm); this test proves the
// steady-state flush — lock, extraction arithmetic, timer bookkeeping,
// chunked sends — adds nothing on top of the producer-side buffer that
// addN owns. internal/analysis/hotpath's registry test fails if the
// annotation exists without this check.

import (
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/event"
	"sci/internal/guid"
)

// TestHotpathDoFlushZeroAlloc measures doFlush with a held-back partial
// tail: the size-triggered form (all=false) keeps the tail for the delay
// timer, so every call walks the full lock/extract/re-arm path and, after
// the first call armed the timer, must allocate nothing.
func TestHotpathDoFlushZeroAlloc(t *testing.T) {
	var sent int
	c := New(Config{
		Clock:    clock.NewManual(time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)),
		MaxBatch: 8,
		MaxDelay: 10 * time.Millisecond,
		Send:     func(batch []event.Event) { sent += len(batch) },
	})
	src := guid.New(guid.KindApplication)
	run := make([]event.Event, 5)
	for i := range run {
		run[i] = event.Event{Type: "bench.flow", Source: src, Seq: uint64(i + 1)}
	}
	c.AddAll(run) // 5 pending < effective batch of 8: the tail is held back
	c.doFlush(false)
	allocs := testing.AllocsPerRun(500, func() { c.doFlush(false) })
	if allocs != 0 {
		t.Fatalf("doFlush allocates %.1f times per call, want 0", allocs)
	}
	c.Flush()
	if sent != 5 {
		t.Fatalf("final flush shipped %d events, want 5", sent)
	}
}

// BenchmarkHotpathDoFlush measures the annotated flush alone, with a
// held-back tail so every iteration walks the full lock/extract/re-arm
// path: 0 allocs/op.
func BenchmarkHotpathDoFlush(b *testing.B) {
	c := New(Config{
		Clock:    clock.NewManual(time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)),
		MaxBatch: 8,
		MaxDelay: 10 * time.Millisecond,
		Send:     func([]event.Event) {},
	})
	src := guid.New(guid.KindApplication)
	run := make([]event.Event, 5)
	for i := range run {
		run[i] = event.Event{Type: "bench.flow", Source: src, Seq: uint64(i + 1)}
	}
	c.AddAll(run)
	c.doFlush(false) // arms the tail timer once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.doFlush(false)
	}
}

// BenchmarkHotpathCoalescerCycle reports the full produce-and-ship cycle:
// the one allocation per op is the pending buffer addN grows (doFlush hands
// the backing array to Send, so it cannot be recycled), not the flush.
func BenchmarkHotpathCoalescerCycle(b *testing.B) {
	c := New(Config{
		Clock:    clock.NewManual(time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)),
		MaxBatch: 8,
		MaxDelay: 10 * time.Millisecond,
		Send:     func([]event.Event) {},
	})
	src := guid.New(guid.KindApplication)
	run := make([]event.Event, 8)
	for i := range run {
		run[i] = event.Event{Type: "bench.flow", Source: src, Seq: uint64(i + 1)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddAll(run) // reaches the effective batch: size-triggered flush
	}
}
