package flow

import (
	"math"
	"time"

	"sci/internal/clock"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/metrics"
	"sync"
)

// Adaptive configures rate-derived batch sizing. The zero value disables
// adaptation: the effective batch size and delay equal the configured
// ceilings, reproducing the static coalescers this package replaced.
type Adaptive struct {
	// Enabled turns the EWMA arrival-rate tracker on.
	Enabled bool
	// MinBatch is the effective-batch floor an idle destination settles at
	// (default 1: a lone event flushes immediately).
	MinBatch int
	// MinDelay is the effective-delay floor (default 0).
	MinDelay time.Duration
	// RateHalfLife is the EWMA half-life: how quickly the tracked arrival
	// rate forgets old traffic (default 100ms).
	RateHalfLife time.Duration
}

// DefaultRateHalfLife is used when Adaptive.RateHalfLife is zero.
const DefaultRateHalfLife = 100 * time.Millisecond

// RateTracker is an EWMA arrival-rate estimator: the adaptive-sizing signal
// the Coalescer is built on, exported so other bounded queues (the Range
// Service connector's delivery queue) can size themselves from the same
// estimate instead of growing a private copy. Arrivals sharing one clock
// instant (manual clocks) accumulate and fold when the clock next moves.
// Not safe for concurrent use: callers guard it with their own lock.
type RateTracker struct {
	tau  float64 // EWMA time constant, seconds
	rate float64 // events/sec
	buf  float64 // arrivals since last (folded when the clock moves)
	last time.Time
}

// NewRateTracker builds a tracker with the given half-life (how quickly the
// estimate forgets old traffic); non-positive means DefaultRateHalfLife.
func NewRateTracker(halfLife time.Duration) *RateTracker {
	if halfLife <= 0 {
		halfLife = DefaultRateHalfLife
	}
	return &RateTracker{tau: halfLife.Seconds() / math.Ln2}
}

// Observe folds n arrivals at now into the estimate. It reports whether the
// estimate moved: false while the clock stands still (the arrivals are
// buffered and fold on the next tick) and on the very first arrival, which
// only opens the measurement window.
func (rt *RateTracker) Observe(n int, now time.Time) bool {
	if rt.last.IsZero() {
		// The first arrival sets the window start; it cannot contribute to a
		// rate until time has passed.
		rt.last = now
		return false
	}
	rt.buf += float64(n)
	dt := now.Sub(rt.last).Seconds()
	if dt <= 0 {
		return false
	}
	inst := rt.buf / dt
	w := math.Exp(-dt / rt.tau)
	rt.rate = w*rt.rate + (1-w)*inst
	rt.buf = 0
	rt.last = now
	return true
}

// Rate returns the current estimate in events per second (0 until time has
// passed across at least two observations).
func (rt *RateTracker) Rate() float64 { return rt.rate }

// maxPenalty bounds the credit-collapse flush-rate penalty (and with it the
// stretched timer delay, at maxPenalty × the effective delay).
const maxPenalty = 16

// penaltyDecay is the per-healthy-report multiplicative decay of the
// penalty back towards 1.
const penaltyDecay = 0.75

// throttleBufferFactor bounds how many events a throttled Coalescer buffers
// (factor × MaxBatch) before shedding the oldest.
const throttleBufferFactor = 64

// SharedStats is an optional sink several Coalescers report into — one per
// Range, surfaced as its remote.backpressure.* gauges. The zero value is
// ready to use; pass the same pointer to every Coalescer of one owner.
type SharedStats struct {
	// Flushes counts flush passes (timer, size or explicit) that shipped at
	// least one event; under backpressure this rate falls.
	Flushes metrics.Counter
	// DropsReported totals receiver-reported drop deltas from credit
	// updates.
	DropsReported metrics.Counter
	// ThrottleEvents counts penalty raises (credit collapses observed).
	ThrottleEvents metrics.Counter
	// EventsShed counts events dropped sender-side because a throttled
	// queue exceeded its buffer bound.
	EventsShed metrics.Counter
	// Throttled gauges how many Coalescers currently hold a penalty above
	// one.
	Throttled metrics.Gauge

	// shedBy attributes sender-side sheds to the publishing source the
	// evicted events belonged to (bounded; overflow folds into the nil
	// GUID), so a throttled Range can report which tenant's backlog is
	// being cut.
	shedMu sync.Mutex
	shedBy map[guid.GUID]uint64
}

// noteShed counts n events shed from src's backlog: the EventsShed total
// plus the bounded per-source attribution table.
func (s *SharedStats) noteShed(src guid.GUID, n uint64) {
	if n == 0 {
		return
	}
	s.EventsShed.Add(n)
	s.shedMu.Lock()
	if s.shedBy == nil {
		s.shedBy = make(map[guid.GUID]uint64)
	}
	key := src
	if _, ok := s.shedBy[src]; !ok && len(s.shedBy) >= maxShedSources {
		key = guid.Nil // overflow bucket
	}
	s.shedBy[key] += n
	s.shedMu.Unlock()
}

// noteShedEvents attributes a shed stretch event by event (per-event
// Source), walking it in runs so each run costs one table update.
func (s *SharedStats) noteShedEvents(events []event.Event) {
	for i := 0; i < len(events); {
		j := i + 1
		for j < len(events) && events[j].Source == events[i].Source {
			j++
		}
		s.noteShed(events[i].Source, uint64(j-i))
		i = j
	}
}

// ShedBySource returns a snapshot of the per-source shed attribution. The
// nil-GUID key, when present, is the overflow bucket.
func (s *SharedStats) ShedBySource() map[guid.GUID]uint64 {
	s.shedMu.Lock()
	defer s.shedMu.Unlock()
	out := make(map[guid.GUID]uint64, len(s.shedBy))
	for k, v := range s.shedBy {
		out[k] = v
	}
	return out
}

// Config parameterises a Coalescer. Clock, MaxBatch (≥1), MaxDelay and
// Send are required.
type Config struct {
	// Clock schedules the delay-flush timers (injected for deterministic
	// tests).
	Clock clock.Clock
	// MaxBatch is the batch-size ceiling: no Send call receives more
	// events.
	MaxBatch int
	// MaxDelay is the flush-deadline ceiling for a partial batch.
	MaxDelay time.Duration
	// Send ships one bounded chunk. It is called outside the queue lock,
	// serialised with other flushes of this Coalescer, and must not call
	// back into the Coalescer.
	Send func(batch []event.Event)
	// Adaptive optionally derives effective bounds from the arrival rate.
	Adaptive Adaptive
	// Fair optionally drains per-source sub-queues by weighted deficit
	// round robin instead of one global FIFO.
	Fair Fair
	// Stats is an optional shared sink for flush/backpressure accounting.
	Stats *SharedStats
}

// Coalescer collects events for one destination and ships them as bounded
// batches. Construct with New; safe for concurrent use.
type Coalescer struct {
	cfg Config

	// sendMu serialises flushes: a timer flush and a size flush may race,
	// and sending outside the extraction lock without ordering them could
	// deliver batches out of per-producer order.
	//
	//lint:lockorder flow.Coalescer.sendMu < flow.Coalescer.mu doFlush extracts under mu while holding the flush serialisation lock
	sendMu sync.Mutex

	mu      sync.Mutex
	pending []event.Event // guarded by mu
	timer   clock.Timer   // guarded by mu; armed while a partial batch waits for the delay
	dead    bool          // guarded by mu

	// Weighted-fair state (replaces pending when cfg.Fair.Enabled).
	subs  map[guid.GUID]*subQueue // guarded by mu
	ring  []guid.GUID             // guarded by mu; backlogged sources in DRR order
	total int                     // guarded by mu; events across all sub-queues

	// Adaptive state.
	rt       *RateTracker  // guarded by mu
	eff      int           // guarded by mu; current effective batch size
	effDelay time.Duration // guarded by mu; current effective flush delay

	// Backpressure state.
	penalty     float64 // guarded by mu; flush-rate penalty; 1 = none
	lastDropped uint64  // guarded by mu; last cumulative receiver drop report
	creditSeen  bool    // guarded by mu; a credit report has established the baseline
}

// New builds a Coalescer. MaxBatch below 1 is raised to 1; adaptive floors
// default to MinBatch 1 / MinDelay 0 / RateHalfLife 100ms.
func New(cfg Config) *Coalescer {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.Adaptive.MinBatch < 1 {
		cfg.Adaptive.MinBatch = 1
	}
	if cfg.Adaptive.MinBatch > cfg.MaxBatch {
		cfg.Adaptive.MinBatch = cfg.MaxBatch
	}
	if cfg.Adaptive.MinDelay < 0 {
		cfg.Adaptive.MinDelay = 0
	}
	if cfg.Adaptive.MinDelay > cfg.MaxDelay {
		cfg.Adaptive.MinDelay = cfg.MaxDelay
	}
	if cfg.Adaptive.RateHalfLife <= 0 {
		cfg.Adaptive.RateHalfLife = DefaultRateHalfLife
	}
	c := &Coalescer{
		cfg:     cfg,
		rt:      NewRateTracker(cfg.Adaptive.RateHalfLife),
		penalty: 1,
	}
	if cfg.Adaptive.Enabled {
		// Unknown rate reads as idle: the first events flush fast rather
		// than waiting out a ceiling-sized batch that may never fill.
		c.eff = cfg.Adaptive.MinBatch
		c.effDelay = cfg.Adaptive.MinDelay
	} else {
		c.eff = cfg.MaxBatch
		c.effDelay = cfg.MaxDelay
	}
	return c
}

// observeLocked folds n arrivals at now into the EWMA rate and recomputes
// the effective bounds. Called under mu.
func (c *Coalescer) observeLocked(n int, now time.Time) {
	if !c.cfg.Adaptive.Enabled {
		return
	}
	if !c.rt.Observe(n, now) {
		return
	}

	a := c.cfg.Adaptive
	// The batch worth waiting for is the arrivals expected within one
	// ceiling delay window; beyond that, waiting buys nothing.
	want := int(math.Round(c.rt.Rate() * c.cfg.MaxDelay.Seconds()))
	c.eff = clampInt(want, a.MinBatch, c.cfg.MaxBatch)
	if c.cfg.MaxBatch > a.MinBatch {
		frac := float64(c.eff-a.MinBatch) / float64(c.cfg.MaxBatch-a.MinBatch)
		c.effDelay = a.MinDelay + time.Duration(frac*float64(c.cfg.MaxDelay-a.MinDelay))
	} else {
		c.effDelay = c.cfg.MaxDelay
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Add appends one event, flushing when the pending run reaches the
// effective batch size and otherwise arming the delay timer so a partial
// batch never waits longer than the effective delay (stretched by the
// backpressure penalty while credit is collapsed).
func (c *Coalescer) Add(e event.Event) {
	if c.cfg.Fair.Enabled {
		c.addFairN(func() { c.enqueueFairLocked(e) }, 1)
		return
	}
	//lint:allow guardedby the append closure runs under mu inside addN
	c.addN(func() { c.pending = append(c.pending, e) }, 1)
}

// AddAll appends a whole run under one lock acquisition — the batch-fed
// edge from Mediator.SubscribeBatch. The events are copied out of the
// delivery loop's reused slice.
func (c *Coalescer) AddAll(events []event.Event) {
	if len(events) == 0 {
		return
	}
	if c.cfg.Fair.Enabled {
		c.addFairN(func() { c.enqueueFairRunsLocked(events) }, len(events))
		return
	}
	//lint:allow guardedby the append closure runs under mu inside addN
	c.addN(func() { c.pending = append(c.pending, events...) }, len(events))
}

func (c *Coalescer) addN(app func(), n int) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.observeLocked(n, c.cfg.Clock.Now())
	app()
	full := false
	if c.penalty > 1 {
		// Throttled: no size flushes — the timer paces shipments at the
		// penalty-stretched delay; sustained overload is shed oldest-first
		// so the buffer stays bounded.
		if limit := c.cfg.MaxBatch * throttleBufferFactor; len(c.pending) > limit {
			shed := len(c.pending) - limit
			if c.cfg.Stats != nil {
				c.cfg.Stats.noteShedEvents(c.pending[:shed])
			}
			c.pending = append(c.pending[:0], c.pending[shed:]...)
		}
	} else {
		full = len(c.pending) >= c.eff
	}
	if !full && c.timer == nil {
		c.timer = c.cfg.Clock.AfterFunc(c.flushDelayLocked(), c.Flush)
	}
	c.mu.Unlock()
	if full {
		c.doFlush(false)
	}
}

// flushDelayLocked returns the delay to the next timer flush: the effective
// delay stretched by the backpressure penalty. Called under mu.
func (c *Coalescer) flushDelayLocked() time.Duration {
	d := c.effDelay
	if c.penalty > 1 {
		d = time.Duration(float64(maxDur(d, c.cfg.MaxDelay)) * c.penalty)
	}
	return d
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Flush ships everything pending, partial tail included (the delay-timer
// and close path).
func (c *Coalescer) Flush() { c.doFlush(true) }

// doFlush ships pending events split so no Send call exceeds the MaxBatch
// ceiling. A size-triggered flush (all=false) holds back the partial tail
// (modulo the effective batch) for the delay timer, so a steady stream
// arriving at the adapted rate costs exactly ⌈N/effectiveBatch⌉ sends —
// each flush fires as pending reaches the effective batch — while a
// surprise burst against an idle endpoint still rides ceiling-sized
// chunks (⌈burst/MaxBatch⌉ sends) instead of one message per event.
//
//lint:hotpath
func (c *Coalescer) doFlush(all bool) {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.mu.Lock()
	eff := c.eff
	if eff < 1 {
		eff = 1
	}
	chunk := c.cfg.MaxBatch
	var send []event.Event
	if c.cfg.Fair.Enabled {
		cut := c.total
		if !all {
			cut -= cut % eff
		}
		//lint:allow hotpath fair mode ships an owned slice once per flush, amortised across the batch
		send = c.extractFairLocked(cut)
	} else {
		batch := c.pending
		cut := len(batch)
		if !all {
			cut -= cut % eff
		}
		// The held-back tail keeps its position: later adds append behind it
		// in the same backing array, never overlapping the chunk being sent.
		c.pending = batch[cut:]
		send = batch[:cut]
	}
	rest := c.pendingLocked()
	if c.timer != nil && rest == 0 {
		c.timer.Stop()
		c.timer = nil
	}
	if rest > 0 && c.timer == nil && !c.dead {
		//lint:allow hotpath timer re-arm happens once per held-back tail, not per event
		c.timer = c.cfg.Clock.AfterFunc(c.flushDelayLocked(), c.Flush)
	}
	c.mu.Unlock()
	if len(send) > 0 && c.cfg.Stats != nil {
		c.cfg.Stats.Flushes.Inc()
	}
	for len(send) > 0 {
		n := len(send)
		if n > chunk {
			n = chunk
		}
		c.cfg.Send(send[:n])
		send = send[n:]
	}
}

// Discard drops pending events, disarms the timer and refuses further adds
// (the destination departed, or its owner is closing after a final Flush).
func (c *Coalescer) Discard() {
	c.mu.Lock()
	c.dead = true
	c.pending = nil
	c.subs = nil
	c.ring = nil
	c.total = 0
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	wasThrottled := c.penalty > 1
	c.penalty = 1
	c.mu.Unlock()
	if wasThrottled && c.cfg.Stats != nil {
		c.cfg.Stats.Throttled.Add(-1)
	}
}

// UpdateCredit ingests one receiver credit report: the receiver's
// cumulative drop count and its remaining queue capacity (negative =
// unknown). The first report establishes the drop baseline; later reports
// feed the delta to NoteCredit. A report below the baseline means the
// receiver restarted (its counter reset to zero, possibly under a reused
// GUID): the baseline is reset to the regressed value rather than held, so
// the very next genuine drop is detected instead of drop detection freezing
// until the fresh counter re-passes the stale high-water mark. The
// regressing report itself carries no delta — a restart is not congestion.
func (c *Coalescer) UpdateCredit(dropped uint64, queueFree int) {
	c.mu.Lock()
	var delta uint64
	if c.creditSeen && dropped >= c.lastDropped {
		delta = dropped - c.lastDropped
	}
	c.creditSeen = true
	c.lastDropped = dropped
	c.mu.Unlock()
	c.NoteCredit(delta, queueFree)
}

// NoteCredit applies one receiver health signal: fresh drops double the
// flush-rate penalty; a healthy report decays it towards one. A full queue
// without drops (queueFree == 0) is neutral — the receiver is saturated
// but keeping up, so the penalty neither rises nor decays; punishing a
// transiently full queue would throttle healthy endpoints. Callers that
// multiplex one Coalescer across receivers (the fan-out queue) compute
// per-receiver drop deltas themselves and feed them here.
func (c *Coalescer) NoteCredit(dropDelta uint64, queueFree int) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	was := c.penalty > 1
	bad := dropDelta > 0
	if bad {
		c.penalty *= 2
		if c.penalty > maxPenalty {
			c.penalty = maxPenalty
		}
	} else if c.penalty > 1 && queueFree != 0 {
		c.penalty *= penaltyDecay
		if c.penalty < 1.05 {
			c.penalty = 1
		}
	}
	now := c.penalty > 1
	c.mu.Unlock()
	if c.cfg.Stats != nil {
		if bad {
			c.cfg.Stats.ThrottleEvents.Inc()
			if dropDelta > 0 {
				c.cfg.Stats.DropsReported.Add(dropDelta)
			}
		}
		if now && !was {
			c.cfg.Stats.Throttled.Add(1)
		} else if was && !now {
			c.cfg.Stats.Throttled.Add(-1)
		}
	}
}

// pendingLocked reports how many events await a flush, whichever queue
// shape is in use. Called under mu.
func (c *Coalescer) pendingLocked() int {
	if c.cfg.Fair.Enabled {
		return c.total
	}
	return len(c.pending)
}

// PendingLen reports how many events await a flush (tests, diagnostics).
func (c *Coalescer) PendingLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pendingLocked()
}

// EffectiveBatch reports the current rate-derived batch size (the ceiling
// when adaptation is disabled).
func (c *Coalescer) EffectiveBatch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eff
}

// EffectiveDelay reports the current rate-derived flush delay.
func (c *Coalescer) EffectiveDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.effDelay
}

// Throttled reports whether credit collapse currently suppresses size
// flushes.
func (c *Coalescer) Throttled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.penalty > 1
}

// Penalty reports the current flush-rate penalty (1 = none).
func (c *Coalescer) Penalty() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.penalty
}
