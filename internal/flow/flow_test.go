package flow

import (
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

// recorder captures every Send chunk, thread-safe.
type recorder struct {
	mu     sync.Mutex
	chunks [][]event.Event
}

func (r *recorder) send(batch []event.Event) {
	r.mu.Lock()
	cp := make([]event.Event, len(batch))
	copy(cp, batch)
	r.chunks = append(r.chunks, cp)
	r.mu.Unlock()
}

func (r *recorder) sends() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.chunks)
}

func (r *recorder) events() []event.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []event.Event
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	return out
}

func (r *recorder) maxChunk() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := 0
	for _, c := range r.chunks {
		if len(c) > m {
			m = len(c)
		}
	}
	return m
}

func mkEvents(n int, at time.Time) []event.Event {
	src := guid.New(guid.KindDevice)
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.New(ctxtype.TemperatureCelsius, src, uint64(i+1), at, nil)
	}
	return out
}

func newStatic(clk clock.Clock, maxBatch int, maxDelay time.Duration, rec *recorder, st *SharedStats) *Coalescer {
	return New(Config{Clock: clk, MaxBatch: maxBatch, MaxDelay: maxDelay, Send: rec.send, Stats: st})
}

func TestSizeFlushBudgetAndTailHoldback(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	c := newStatic(clk, 4, 50*time.Millisecond, rec, nil)

	events := mkEvents(10, epoch)
	for _, e := range events {
		c.Add(e)
	}
	// Two full chunks leave on fill; the trailing partial (10 mod 4 = 2)
	// waits for the delay timer.
	if got := rec.sends(); got != 2 {
		t.Fatalf("size flushes sent %d chunks, want 2", got)
	}
	if got := c.PendingLen(); got != 2 {
		t.Fatalf("held-back tail = %d, want 2", got)
	}
	clk.Advance(50 * time.Millisecond)
	if got := rec.sends(); got != 3 {
		t.Fatalf("after delay flush sent %d chunks, want 3 (= ceil(10/4))", got)
	}
	got := rec.events()
	if len(got) != 10 {
		t.Fatalf("delivered %d events, want 10", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("coalescing reordered events at %d: seq=%d", i, e.Seq)
		}
	}
	if rec.maxChunk() > 4 {
		t.Fatalf("chunk of %d exceeds MaxBatch=4", rec.maxChunk())
	}
}

func TestAddAllSingleAcquisitionBudget(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	c := newStatic(clk, 8, 10*time.Millisecond, rec, nil)

	c.AddAll(mkEvents(21, epoch))
	if got := rec.sends(); got != 2 {
		t.Fatalf("size flush sent %d chunks for 21 events at batch 8, want 2", got)
	}
	clk.Advance(10 * time.Millisecond)
	if got := rec.sends(); got != 3 {
		t.Fatalf("delay flush: %d chunks, want 3", got)
	}
	if got := len(rec.events()); got != 21 {
		t.Fatalf("delivered %d, want 21", got)
	}
}

func TestDelayTimerDisarmedWhenEmpty(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	c := newStatic(clk, 4, 10*time.Millisecond, rec, nil)

	c.AddAll(mkEvents(3, epoch))
	c.Flush()
	if got := rec.sends(); got != 1 {
		t.Fatalf("flush sent %d chunks, want 1", got)
	}
	if n := clk.PendingCount(); n != 0 {
		t.Fatalf("%d timers still armed after an emptying flush", n)
	}
}

func TestCloseFlushThenDiscard(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	c := newStatic(clk, 8, 10*time.Millisecond, rec, nil)

	c.AddAll(mkEvents(5, epoch))
	c.Flush()
	c.Discard()
	if got := len(rec.events()); got != 5 {
		t.Fatalf("close flush shipped %d events, want 5", got)
	}
	c.AddAll(mkEvents(3, epoch))
	c.Flush()
	if got := len(rec.events()); got != 5 {
		t.Fatalf("add after Discard shipped events: %d", got)
	}
	if n := clk.PendingCount(); n != 0 {
		t.Fatalf("%d timers armed after Discard", n)
	}
}

// TestAdaptiveBatchFollowsArrivalRate ramps the arrival rate with a manual
// clock and asserts the effective batch size tracks it: floor while idle,
// ceiling under load, back to the floor after the rate collapses.
func TestAdaptiveBatchFollowsArrivalRate(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	c := New(Config{
		Clock:    clk,
		MaxBatch: 64,
		MaxDelay: 10 * time.Millisecond,
		Send:     rec.send,
		Adaptive: Adaptive{Enabled: true},
	})

	if got := c.EffectiveBatch(); got != 1 {
		t.Fatalf("cold effective batch = %d, want the floor 1", got)
	}
	if got := c.EffectiveDelay(); got != 0 {
		t.Fatalf("cold effective delay = %v, want the floor 0", got)
	}

	// Trickle: one event per 10ms ≈ 100/s → ~1 expected arrival per delay
	// window: stays at the floor, so each event flushes immediately.
	for i := 0; i < 20; i++ {
		clk.Advance(10 * time.Millisecond)
		c.AddAll(mkEvents(1, clk.Now()))
	}
	if got := c.EffectiveBatch(); got > 2 {
		t.Fatalf("trickle effective batch = %d, want ~1", got)
	}
	if got := len(rec.events()); got != 20 {
		t.Fatalf("trickle delivered %d of 20 (idle events must not wait)", got)
	}

	// Ramp: 100 events per 10ms ≈ 10k/s → 100 expected per window, clamped
	// to the 64 ceiling.
	for i := 0; i < 100; i++ {
		clk.Advance(10 * time.Millisecond)
		c.AddAll(mkEvents(100, clk.Now()))
	}
	if got := c.EffectiveBatch(); got != 64 {
		t.Fatalf("hot effective batch = %d, want the 64 ceiling", got)
	}
	if got := c.EffectiveDelay(); got != 10*time.Millisecond {
		t.Fatalf("hot effective delay = %v, want the 10ms ceiling", got)
	}

	// Collapse: a long idle gap folds the rate back down on the next
	// arrival.
	clk.Advance(5 * time.Second)
	c.AddAll(mkEvents(1, clk.Now()))
	if got := c.EffectiveBatch(); got > 2 {
		t.Fatalf("post-idle effective batch = %d, want back near the floor", got)
	}
	c.Flush()
}

// TestAdaptiveBudgetExactUnderAdaptation: a stream arriving at the
// adapted rate costs exactly ⌈N/effectiveBatch⌉ sends — each flush fires
// as pending reaches the effective batch — with no chunk ever exceeding
// the MaxBatch ceiling.
func TestAdaptiveBudgetExactUnderAdaptation(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	c := New(Config{
		Clock:    clk,
		MaxBatch: 64,
		MaxDelay: 10 * time.Millisecond,
		Send:     rec.send,
		Adaptive: Adaptive{Enabled: true},
	})
	// Stabilise at an intermediate rate: 20 events per 10ms → ~20/window.
	for i := 0; i < 200; i++ {
		clk.Advance(10 * time.Millisecond)
		c.AddAll(mkEvents(20, clk.Now()))
	}
	clk.Advance(10 * time.Millisecond)
	c.Flush()
	eff := c.EffectiveBatch()
	if eff <= 1 || eff >= 64 {
		t.Fatalf("effective batch = %d, want an adapted intermediate value", eff)
	}

	// Same-instant arrivals leave the rate (and eff) frozen, so the budget
	// is exact: k runs of eff events cost k sends, and a run with a tail
	// costs ⌈run/eff⌉ once the tail's delay flush lands.
	before := rec.sends()
	for i := 0; i < 5; i++ {
		c.AddAll(mkEvents(eff, clk.Now()))
	}
	if got := rec.sends() - before; got != 5 {
		t.Fatalf("5 runs of eff=%d cost %d sends, want 5", eff, got)
	}
	c.AddAll(mkEvents(eff+3, clk.Now()))
	c.Flush()
	if got := rec.sends() - before; got != 7 {
		t.Fatalf("eff+3 run cost %d extra sends at eff=%d, want 2 (= ceil((eff+3)/eff))",
			rec.sends()-before-5, eff)
	}
	if rec.maxChunk() > 64 {
		t.Fatalf("chunk of %d exceeds ceiling", rec.maxChunk())
	}
}

// TestAdaptiveIdleBurstRidesCeilingChunks: a surprise burst against an
// idle endpoint (effective batch at the floor) must not ship one message
// per event — flushing is immediate, but chunks ride the MaxBatch
// ceiling: ⌈burst/MaxBatch⌉ sends.
func TestAdaptiveIdleBurstRidesCeilingChunks(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	c := New(Config{
		Clock:    clk,
		MaxBatch: 64,
		MaxDelay: 10 * time.Millisecond,
		Send:     rec.send,
		Adaptive: Adaptive{Enabled: true},
	})
	if got := c.EffectiveBatch(); got != 1 {
		t.Fatalf("cold effective batch = %d, want 1", got)
	}
	c.AddAll(mkEvents(100, clk.Now()))
	if got := rec.sends(); got != 2 {
		t.Fatalf("idle burst of 100 cost %d sends, want 2 (= ceil(100/64))", got)
	}
	if rec.maxChunk() > 64 {
		t.Fatalf("chunk of %d exceeds ceiling", rec.maxChunk())
	}
	if got := len(rec.events()); got != 100 {
		t.Fatalf("delivered %d of 100", got)
	}
}

// TestCreditCollapseThrottlesFlushRate: receiver-reported drops suppress
// size flushes and pace the timer at a stretched delay; healthy reports
// decay the penalty back and size flushing resumes.
func TestCreditCollapseThrottlesFlushRate(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	st := &SharedStats{}
	c := newStatic(clk, 8, 10*time.Millisecond, rec, st)

	c.UpdateCredit(0, 100) // baseline: healthy
	if c.Throttled() {
		t.Fatal("healthy credit throttled the coalescer")
	}
	c.UpdateCredit(5, 3) // 5 new drops: credit collapsed
	if !c.Throttled() {
		t.Fatal("drop report did not throttle")
	}
	if got := st.Throttled.Value(); got != 1 {
		t.Fatalf("Throttled gauge = %d, want 1", got)
	}
	if got := st.DropsReported.Value(); got != 5 {
		t.Fatalf("DropsReported = %d, want 5", got)
	}

	// A full batch no longer size-flushes; the stretched timer ships it.
	c.AddAll(mkEvents(8, clk.Now()))
	if got := rec.sends(); got != 0 {
		t.Fatalf("throttled coalescer size-flushed %d chunks", got)
	}
	clk.Advance(10 * time.Millisecond) // the unstretched delay: too early
	if got := rec.sends(); got != 0 {
		t.Fatalf("throttled flush fired at the unstretched delay")
	}
	clk.Advance(10 * time.Millisecond) // 2× penalty reached
	if got := rec.sends(); got != 1 {
		t.Fatalf("stretched timer flush sent %d chunks, want 1", got)
	}

	// Healthy acks decay the penalty; size flushing resumes.
	for i := 0; i < 4 && c.Throttled(); i++ {
		c.UpdateCredit(5, 100)
	}
	if c.Throttled() {
		t.Fatal("penalty did not decay on healthy credit")
	}
	if got := st.Throttled.Value(); got != 0 {
		t.Fatalf("Throttled gauge = %d after recovery, want 0", got)
	}
	c.AddAll(mkEvents(8, clk.Now()))
	if got := rec.sends(); got != 2 {
		t.Fatalf("recovered coalescer did not size-flush: %d sends", got)
	}
}

// TestThrottledBufferShedsOldest: sustained overload is bounded sender-side
// by shedding the oldest pending events, counted in the shared stats.
func TestThrottledBufferShedsOldest(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	st := &SharedStats{}
	c := newStatic(clk, 2, 10*time.Millisecond, rec, st)

	c.UpdateCredit(0, 100)
	c.UpdateCredit(9, 0)
	if !c.Throttled() {
		t.Fatal("not throttled")
	}
	limit := 2 * throttleBufferFactor
	c.AddAll(mkEvents(limit+10, clk.Now()))
	if got := c.PendingLen(); got != limit {
		t.Fatalf("pending = %d, want bounded at %d", got, limit)
	}
	if got := st.EventsShed.Value(); got != 10 {
		t.Fatalf("EventsShed = %d, want 10", got)
	}
	// The survivors are the freshest.
	c.Flush()
	evs := rec.events()
	if evs[0].Seq != 11 {
		t.Fatalf("shed kept the oldest: first surviving seq = %d, want 11", evs[0].Seq)
	}
}

// TestConcurrentAddFlushCredit exercises the locking under -race.
func TestConcurrentAddFlushCredit(t *testing.T) {
	rec := &recorder{}
	c := New(Config{
		Clock:    clock.Real(),
		MaxBatch: 16,
		MaxDelay: time.Millisecond,
		Send:     rec.send,
		Adaptive: Adaptive{Enabled: true},
		Stats:    &SharedStats{},
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.AddAll(mkEvents(3, epoch))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.UpdateCredit(uint64(i/30), 50)
			c.Flush()
		}
	}()
	wg.Wait()
	c.Flush()
	c.Discard()
	if got := len(rec.events()); got != 4*200*3 {
		t.Fatalf("delivered %d events, want %d", got, 4*200*3)
	}
}

// TestReceiverRestartRebaselinesCredit: a credit report below the baseline
// (the receiver restarted and its cumulative counter reset) re-baselines
// drop detection instead of freezing it until the fresh counter re-passes
// the stale high-water mark — the very next genuine drop must throttle.
func TestReceiverRestartRebaselinesCredit(t *testing.T) {
	clk := clock.NewManual(epoch)
	rec := &recorder{}
	st := &SharedStats{}
	c := newStatic(clk, 8, 10*time.Millisecond, rec, st)

	c.UpdateCredit(1000, 100) // baseline, far along the old counter
	c.UpdateCredit(1050, 3)   // 50 new drops: throttled
	if !c.Throttled() {
		t.Fatal("drop report did not throttle")
	}
	for i := 0; i < 10 && c.Throttled(); i++ {
		c.UpdateCredit(1050, 100)
	}
	if c.Throttled() {
		t.Fatal("healthy reports did not recover")
	}

	// Restart: the counter regresses to zero. Not congestion — no throttle.
	c.UpdateCredit(0, 100)
	if c.Throttled() {
		t.Fatal("counter regression read as congestion")
	}
	// The stale 1050 baseline must be gone: 5 post-restart drops are a
	// fresh delta, not a report still 1045 short of the high-water mark.
	c.UpdateCredit(5, 3)
	if !c.Throttled() {
		t.Fatal("post-restart drops frozen behind the stale baseline")
	}
	if got := st.DropsReported.Value(); got != 55 {
		t.Fatalf("DropsReported = %d, want 55 (50 pre-restart + 5 post)", got)
	}
}

// TestRateTrackerEstimate: the exported tracker converges on a steady
// arrival rate, buffers same-instant arrivals until the clock moves, and
// decays when traffic stops.
func TestRateTrackerEstimate(t *testing.T) {
	rt := NewRateTracker(100 * time.Millisecond)
	now := epoch
	if rt.Observe(10, now) {
		t.Fatal("first observation cannot move the estimate")
	}
	if rt.Rate() != 0 {
		t.Fatalf("rate before time passed = %v, want 0", rt.Rate())
	}
	// 100 events every 10ms = 10k events/s, for 50 ticks (5 half-lives).
	for i := 0; i < 50; i++ {
		now = now.Add(10 * time.Millisecond)
		if !rt.Observe(100, now) {
			t.Fatal("observation across a clock tick did not fold")
		}
	}
	if r := rt.Rate(); r < 9000 || r > 11000 {
		t.Fatalf("steady 10k/s stream estimated at %.0f", r)
	}
	// Same-instant arrivals buffer and fold on the next tick.
	if rt.Observe(100, now) {
		t.Fatal("same-instant arrival folded without time passing")
	}
	now = now.Add(10 * time.Millisecond)
	rt.Observe(0, now)
	if r := rt.Rate(); r < 9000 || r > 11000 {
		t.Fatalf("buffered same-instant arrivals lost: %.0f", r)
	}
	// A long silent gap collapses the estimate.
	now = now.Add(2 * time.Second)
	rt.Observe(0, now)
	if r := rt.Rate(); r > 100 {
		t.Fatalf("estimate after 20 half-lives of silence = %.0f, want ~0", r)
	}
}

// TestAckCoalescerRateLimitsReports: the leading report is immediate,
// figure-moving reports are rate-limited to one per window, no-news
// reports wait the idle window, and Take claims a pending report for
// piggybacking (suppressing its standalone send).
func TestAckCoalescerRateLimitsReports(t *testing.T) {
	clk := clock.NewManual(epoch)
	var figure uint64
	type sent struct{ events int }
	var mu sync.Mutex
	var sends []sent
	a := NewAckCoalescer(AckConfig{
		Clock:      clk,
		Window:     2 * time.Millisecond,
		IdleWindow: 20 * time.Millisecond,
		Figure:     func() uint64 { return figure },
		Send: func(events int) bool {
			mu.Lock()
			sends = append(sends, sent{events})
			mu.Unlock()
			return true
		},
	})
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(sends)
	}

	a.Note(4) // leading edge: immediate
	if count() != 1 {
		t.Fatalf("leading report not immediate: %d sends", count())
	}
	// A drop storm: the figure moves on every ingest, but reports stay
	// rate-limited to one per window.
	for i := 0; i < 100; i++ {
		figure += 3
		a.Note(1)
	}
	if count() != 1 {
		t.Fatalf("drop storm provoked %d sends within one window, want the initial 1", count())
	}
	clk.Advance(2 * time.Millisecond)
	if count() != 2 {
		t.Fatalf("window expiry sent %d reports, want exactly 1 more", count())
	}
	mu.Lock()
	if sends[1].events != 100 {
		mu.Unlock()
		t.Fatalf("deferred report covers %d frames, want the accumulated 100", sends[1].events)
	}
	mu.Unlock()

	// No-news reports wait the idle window, not the urgent one.
	a.Note(5)
	clk.Advance(2 * time.Millisecond)
	if count() != 2 {
		t.Fatal("no-news report left at the urgent window")
	}
	// An urgent note shortens the armed idle deferral to the window edge.
	figure += 1
	a.Note(1)
	clk.Advance(2 * time.Millisecond)
	if count() != 3 {
		t.Fatalf("urgent note did not shorten the idle deferral: %d sends", count())
	}

	// Take claims the pending report; nothing standalone follows.
	a.Note(7)
	clk.Advance(2 * time.Millisecond) // within idle window: still pending
	events, ok := a.Take()
	if !ok || events != 7 {
		t.Fatalf("Take = (%d, %v), want (7, true)", events, ok)
	}
	clk.Advance(40 * time.Millisecond)
	if count() != 3 {
		t.Fatalf("claimed report still went standalone: %d sends", count())
	}
	if _, ok := a.Take(); ok {
		t.Fatal("second Take claimed an already-taken report")
	}
	a.Stop()
	a.Note(1)
	clk.Advance(40 * time.Millisecond)
	if count() != 3 {
		t.Fatal("stopped coalescer still reported")
	}
}
