package flow

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/clock"
)

func TestUpdateCoalescerLeadingEdgeThenWindow(t *testing.T) {
	clk := clock.NewManual(time.Date(2003, 6, 17, 0, 0, 0, 0, time.UTC))
	var sent atomic.Int64
	u := NewUpdateCoalescer(UpdateConfig{
		Clock:  clk,
		Window: 100 * time.Millisecond,
		Send:   func() bool { sent.Add(1); return true },
	})

	// Leading edge: first change ships immediately.
	u.Touch()
	if got := sent.Load(); got != 1 {
		t.Fatalf("leading touch sent %d updates, want 1", got)
	}

	// A burst of changes inside the window coalesces into one deferred
	// update at the window boundary.
	for i := 0; i < 10; i++ {
		u.Touch()
	}
	if got := sent.Load(); got != 1 {
		t.Fatalf("burst inside window sent %d updates, want still 1", got)
	}
	clk.Advance(100 * time.Millisecond)
	if got := sent.Load(); got != 2 {
		t.Fatalf("window expiry sent %d updates, want 2", got)
	}

	// After a quiet window the next change is a fresh leading edge.
	clk.Advance(150 * time.Millisecond)
	u.Touch()
	if got := sent.Load(); got != 3 {
		t.Fatalf("post-quiet touch sent %d updates, want 3", got)
	}
}

func TestUpdateCoalescerRetriesFailedSend(t *testing.T) {
	clk := clock.NewManual(time.Date(2003, 6, 17, 0, 0, 0, 0, time.UTC))
	var mu sync.Mutex
	fail := true
	sent := 0
	u := NewUpdateCoalescer(UpdateConfig{
		Clock:  clk,
		Window: 50 * time.Millisecond,
		Send: func() bool {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return false
			}
			sent++
			return true
		},
	})
	u.Touch() // leading send fails, re-touched onto the window timer
	mu.Lock()
	fail = false
	mu.Unlock()
	clk.Advance(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if sent != 1 {
		t.Fatalf("failed leading update retried %d times, want 1", sent)
	}
}

func TestUpdateCoalescerStop(t *testing.T) {
	clk := clock.NewManual(time.Date(2003, 6, 17, 0, 0, 0, 0, time.UTC))
	var sent atomic.Int64
	u := NewUpdateCoalescer(UpdateConfig{
		Clock:  clk,
		Window: 50 * time.Millisecond,
		Send:   func() bool { sent.Add(1); return true },
	})
	u.Touch()
	u.Touch() // deferred
	u.Stop()
	clk.Advance(time.Second)
	u.Touch()
	if got := sent.Load(); got != 1 {
		t.Fatalf("stopped coalescer sent %d updates, want only the pre-stop leading edge", got)
	}
}
