// Package flow is the unified outbound flow-control layer: one Coalescer
// implementation shared by every component that turns a stream of events
// into bounded batches on a wire — the Range Service's per-endpoint
// delivery queues and the SCINET fabric's per-peer and fan-out queues were
// parallel copies of this algorithm before it was extracted here.
//
// # Coalescer contract
//
// A Coalescer collects events for one destination and ships them through
// the configured Send function in chunks never exceeding the effective
// batch size. Its obligations, in order of importance:
//
//   - Flush ordering: flushes are serialised (a send mutex taken before the
//     extraction lock), so batches leave in the order their events arrived;
//     a timer flush racing a size flush can never reorder them. Events
//     added while a flush is in flight leave in the next one.
//
//   - Partial-tail holdback: a size-triggered flush ships only whole
//     multiples of the effective batch size — in chunks never exceeding
//     the MaxBatch ceiling — and holds the remainder back for the delay
//     timer. A steady stream therefore costs exactly ⌈N/effectiveBatch⌉
//     Send calls however the producer's bursts were sliced, and a burst
//     never costs more than one Send per MaxBatch events. Flush (the
//     timer and close path) ships everything, tail included.
//
//   - Bounded latency: a partial batch never waits longer than the
//     effective delay; the timer is armed whenever events are pending and
//     disarmed when the queue empties.
//
//   - Close-flush: Flush followed by Discard ships every pending event
//     exactly once and then refuses further adds with all timers disarmed.
//     Discard alone (destination departed) drops pending events.
//
// # Adaptive bounds
//
// With Adaptive.Enabled, an EWMA arrival-rate tracker (fed by the injected
// clock, so tests drive it deterministically) derives the effective batch
// size and flush delay between the configured floors (Adaptive.MinBatch,
// Adaptive.MinDelay) and ceilings (Config.MaxBatch, Config.MaxDelay): the
// effective batch approximates the arrivals expected within one MaxDelay
// window. An idle destination therefore sits at the floor — a lone event
// triggers an immediate size flush instead of waiting out MaxDelay — while
// a hot one rides full ceiling-sized batches. Disabled, the effective
// bounds equal the ceilings and the Coalescer behaves exactly like the
// static copies it replaced.
//
// The arrival-rate estimator itself is exported as RateTracker, so bounded
// queues outside this package (the Range Service connector's delivery
// queue) size themselves from the same EWMA signal the Coalescer adapts on
// instead of growing private copies.
//
// # Credit and backpressure
//
// Receivers report flow credit — their cumulative drop count and remaining
// queue capacity — on batch acknowledgements; UpdateCredit ingests one
// report. A collapsing credit (new drops) doubles a flush-rate penalty
// (bounded by maxPenalty); healthy reports decay it, and a full queue
// that is not yet dropping holds it steady.
// While the penalty is above one the Coalescer stops size-flushing and
// paces itself on the timer at penalty × the effective delay, absorbing
// the burst in its pending queue up to a bound (throttleBufferFactor ×
// MaxBatch) beyond which the oldest events are shed (freshest-wins, like
// the delivery rings downstream). Chunks still never exceed the effective
// batch size, so the wire-message budget is preserved; only the flush
// rate falls. Every transition and shed event is reported through the
// optional SharedStats sink, which a Range surfaces as its
// remote.backpressure.* gauges.
//
// # Weighted-fair flushing and publisher quotas
//
// With Fair.Enabled, the pending queue becomes per-source sub-queues keyed
// by Event.Source and every chunk is assembled by deficit round-robin
// across them: each source earns quantum × weight (Fair.Weights, default
// 1) per round and contributes up to its deficit, so a backlogged pair
// with weights 3:1 splits a full chunk 48:16 and a flooding source can
// saturate only its own share of every flush — a paced tenant's events
// ride the next chunk out however deep the flood's backlog is. Order is
// preserved per source (each sub-queue is FIFO) but not across sources;
// consumers needing cross-source ordering already cannot assume it from
// concurrent publishers. The throttle-buffer shed (previous section)
// becomes targeted under Fair: the oldest events of the *deepest*
// sub-queue are shed first, and every shed is attributed to its source
// through SharedStats.ShedBySource — the flooding tenant eats its own
// losses, and the gauges name it. The sub-queue table is bounded
// (maxFairSources); past the bound, newcomers share a nil-GUID overflow
// queue so an adversary minting sources cannot grow it without limit.
//
// Fair scheduling shares the wire once events are admitted; the admission
// edge itself is the event bus's per-publisher token-bucket quota
// (eventbus.Quota, surfaced as server.PublisherQuota): each source earns
// Rate events/s up to a Burst ceiling, charged at PublishAll* before any
// dispatch work, with the caller choosing shed-and-count or a typed
// ErrOverQuota reject. Rejections are counted per source (the
// quota_rejected_from_* gauges) by the same attribution discipline as
// drops and sheds. The two layers compose: quotas clip what a tenant may
// offer, weighted-fair flushing divides what the link can carry, and both
// charge the offender — so one hostile publisher can neither starve a
// shared Range at the publish edge nor push a shared link's backlog onto
// its neighbours (experiment E14).
//
// # Attributed and transitive credit
//
// The cumulative drop count a receiver reports is *attributed*: it names
// the drops caused by the reporting link's own traffic (the event bus
// counts every discarded event against its publisher, and receivers ack
// with the sender's per-publisher figure), never the receiving Range's
// global total — so one endpoint's flood cannot throttle an innocent
// neighbour sharing the Range. Credit is also *transitive* across relays:
// a fabric that forwards batches onward folds the congestion it observes
// downstream (the Downstream field of its overlay acks, itself a monotone
// counter) into the figure it reports upstream, so a multi-hop chain
// throttles at the origin rather than hop by hop. Both counters are
// monotone per reporter; UpdateCredit treats a regression (a report below
// the baseline) as a receiver restart and re-baselines rather than
// freezing drop detection until the fresh counter re-passes the stale
// high-water mark.
//
// The receive side of the loop is AckCoalescer: one per (receiver, peer)
// pair, it coalesces the credit reports owed to that peer. The leading
// report is immediate; reports whose figure moved are rate-limited to one
// per window (cumulative figures mean one frame per window carries
// everything a per-message flood would); no-news reports wait a longer
// idle window, because an all-clear decays the sender's penalty and must
// not outpace the congestion it is meant to confirm gone; and a pending
// report can be claimed (Take) for piggybacking on reverse-direction
// batches (wire.EventBatchBody.Credit), sparing the standalone ack frame
// entirely. A relay reporting downstream congestion excludes what it
// learned from the very peer it is acking — echoing a peer's own figure
// back would amplify one finite drop episode around any cycle forever.
package flow
