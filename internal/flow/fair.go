package flow

import (
	"sci/internal/event"
	"sci/internal/guid"
)

// Fair configures weighted-fair flushing: the Coalescer keeps one sub-queue
// per publishing source (Event.Source) and drains them by deficit round
// robin, so a flooding publisher's backlog cannot starve a paced one of its
// share of every shipped chunk. Shed-oldest evictions under a credit
// throttle come from the deepest backlog — the offender — instead of the
// global head, and are attributed per source through SharedStats.
type Fair struct {
	// Enabled turns per-source sub-queues and DRR draining on. Per-source
	// FIFO order is preserved; global cross-source FIFO order is not.
	Enabled bool
	// Weights sets per-source drain weights (events granted per DRR round).
	// Sources absent from the map weigh 1; values below 1 read as 1.
	Weights map[guid.GUID]int
}

// maxFairSources bounds the per-Coalescer sub-queue table; sources beyond
// the bound share the nil-GUID overflow sub-queue, mirroring the bus's
// drop-attribution and quota tables.
const maxFairSources = 4096

// maxShedSources bounds SharedStats' per-source shed table the same way.
const maxShedSources = 4096

// subQueue is one source's pending events plus its DRR deficit. The deficit
// carries across flushes while the queue stays backlogged, so a source
// clipped mid-round by the chunk boundary catches up next round.
type subQueue struct {
	events  []event.Event
	deficit int
}

// fairKeyLocked maps a source to its sub-queue key, folding new sources
// into the nil-GUID overflow queue once the table is full. Called under mu.
func (c *Coalescer) fairKeyLocked(src guid.GUID) guid.GUID {
	if _, ok := c.subs[src]; ok {
		return src
	}
	if len(c.subs) >= maxFairSources {
		return guid.Nil
	}
	return src
}

// enqueueFairLocked appends one event to its source's sub-queue. Called
// under mu.
func (c *Coalescer) enqueueFairLocked(e event.Event) {
	key := c.fairKeyLocked(e.Source)
	if c.subs == nil {
		c.subs = make(map[guid.GUID]*subQueue)
	}
	q := c.subs[key]
	if q == nil {
		q = &subQueue{}
		c.subs[key] = q
	}
	if len(q.events) == 0 {
		c.ring = append(c.ring, key)
	}
	q.events = append(q.events, e)
	c.total++
}

// enqueueFairRunsLocked appends a batch, walking it in runs of consecutive
// same-Source events so each run costs one map probe. Called under mu.
func (c *Coalescer) enqueueFairRunsLocked(events []event.Event) {
	for i := 0; i < len(events); {
		j := i + 1
		for j < len(events) && events[j].Source == events[i].Source {
			j++
		}
		key := c.fairKeyLocked(events[i].Source)
		if c.subs == nil {
			c.subs = make(map[guid.GUID]*subQueue)
		}
		q := c.subs[key]
		if q == nil {
			q = &subQueue{}
			c.subs[key] = q
		}
		if len(q.events) == 0 {
			c.ring = append(c.ring, key)
		}
		q.events = append(q.events, events[i:j]...)
		c.total += j - i
		i = j
	}
}

// addFairN is addN's weighted-fair counterpart: app appends into the
// sub-queues under mu; size flushing and throttle shedding work on the
// cross-source total.
func (c *Coalescer) addFairN(app func(), n int) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.observeLocked(n, c.cfg.Clock.Now())
	app()
	full := false
	if c.penalty > 1 {
		if limit := c.cfg.MaxBatch * throttleBufferFactor; c.total > limit {
			c.shedFairLocked(c.total - limit)
		}
	} else {
		full = c.total >= c.eff
	}
	if !full && c.timer == nil {
		c.timer = c.cfg.Clock.AfterFunc(c.flushDelayLocked(), c.Flush)
	}
	c.mu.Unlock()
	if full {
		c.doFlush(false)
	}
}

// shedFairLocked evicts excess events oldest-first from the deepest
// backlog(s): under a throttle the source that overran its share absorbs
// the loss, not whoever happens to sit at a global queue head. Called under
// mu.
func (c *Coalescer) shedFairLocked(excess int) {
	for excess > 0 && c.total > 0 {
		var bigKey guid.GUID
		var big *subQueue
		ringPos := -1
		for i, k := range c.ring {
			q := c.subs[k]
			if big == nil || len(q.events) > len(big.events) {
				big, bigKey, ringPos = q, k, i
			}
		}
		if big == nil {
			return
		}
		n := excess
		if n > len(big.events) {
			n = len(big.events)
		}
		big.events = append(big.events[:0], big.events[n:]...)
		c.total -= n
		excess -= n
		if c.cfg.Stats != nil {
			c.cfg.Stats.noteShed(bigKey, uint64(n))
		}
		if len(big.events) == 0 {
			big.deficit = 0
			c.ring = append(c.ring[:ringPos], c.ring[ringPos+1:]...)
		}
	}
}

// weightLocked returns a source's DRR quantum (minimum 1). Called under mu.
func (c *Coalescer) weightLocked(src guid.GUID) int {
	if w := c.cfg.Fair.Weights[src]; w > 0 {
		return w
	}
	return 1
}

// extractFairLocked removes up to cut events by deficit round robin —
// every backlogged source contributes up to its weight per round, so each
// shipped chunk carries every active source's share in proportion. Sources
// emptied mid-round leave the ring; a source clipped by the cut keeps its
// ring position and accumulated deficit. Called under mu.
func (c *Coalescer) extractFairLocked(cut int) []event.Event {
	if cut <= 0 {
		return nil
	}
	out := make([]event.Event, 0, cut)
	for len(out) < cut && len(c.ring) > 0 {
		live := c.ring[:0]
		for _, k := range c.ring {
			q := c.subs[k]
			if rem := cut - len(out); rem > 0 && len(q.events) > 0 {
				q.deficit += c.weightLocked(k)
				t := q.deficit
				if t > len(q.events) {
					t = len(q.events)
				}
				if t > rem {
					t = rem
				}
				out = append(out, q.events[:t]...)
				n := copy(q.events, q.events[t:])
				for i := n; i < len(q.events); i++ {
					q.events[i] = event.Event{} // release payload references
				}
				q.events = q.events[:n]
				q.deficit -= t
			}
			if len(q.events) == 0 {
				q.deficit = 0
				continue // leaves the ring
			}
			live = append(live, k)
		}
		c.ring = live
	}
	c.total -= len(out)
	return out
}
