package flow

import (
	"sync"
	"time"

	"sci/internal/clock"
)

// AckConfig parameterises an AckCoalescer. Clock, Window, Figure and Send
// are required.
type AckConfig struct {
	// Clock schedules the deferred-report timers (injected for tests).
	Clock clock.Clock
	// Window is the minimum spacing between reports to one peer — urgent
	// (figure-moving) reports included. The figure is cumulative, so one
	// report per window carries everything the suppressed ones would have.
	Window time.Duration
	// IdleWindow is the spacing of no-news reports (defaults to Window; it
	// must be at least Window). Receivers whose reports cannot carry a
	// meaningful queue depth set it well above the sender's deepest
	// throttled flush cycle: an all-clear decays the sender's penalty, so
	// answering a relayed burst with a flood of "nothing new" frames would
	// wind the throttle down between the bursts still causing congestion.
	IdleWindow time.Duration
	// Figure returns the current cumulative credit figure for this peer
	// (attributed drops, plus downstream congestion where relevant): the
	// urgency signal. Called with the coalescer's lock held; it may take
	// its owner's locks but must never call back into the coalescer.
	Figure func() uint64
	// Send ships one standalone report covering the given number of
	// ingested frames and reports success. Called outside the coalescer's
	// lock; the callback reads the live figure itself, so a report is
	// never staler than its send instant. On failure the coalescer
	// re-notes the claimed report, so the window timer retries instead of
	// silently losing it.
	Send func(events int) bool
}

// AckCoalescer coalesces the receive-side flow-credit reports owed to one
// peer — the shared state machine behind the Range Service's wire acks
// (host and connector) and the SCINET fabric's overlay acks, extracted so
// the three sites cannot drift:
//
//   - the first report to a peer leaves immediately (the leading edge
//     establishes the sender's baseline);
//   - a report whose figure moved is urgent but still rate-limited to one
//     per Window — under a sustained drop storm the reverse path carries
//     one cumulative report per window, not one frame per ingested
//     message;
//   - a no-news report waits IdleWindow (timer fallback, so an idle
//     reverse path still acks);
//   - a pending report may be claimed for piggybacking on reverse-direction
//     traffic (Take), suppressing the standalone frame entirely.
//
// Construct with NewAckCoalescer; safe for concurrent use.
type AckCoalescer struct {
	cfg AckConfig

	mu         sync.Mutex
	pending    bool
	events     int
	timer      clock.Timer
	deadline   time.Time
	last       time.Time // when the last report left (either carrier)
	lastFigure uint64
	stopped    bool
}

// NewAckCoalescer builds an AckCoalescer. IdleWindow below Window is
// raised to Window.
func NewAckCoalescer(cfg AckConfig) *AckCoalescer {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.IdleWindow < cfg.Window {
		cfg.IdleWindow = cfg.Window
	}
	return &AckCoalescer{cfg: cfg}
}

// Note records that events more frames were ingested from the peer and a
// report is now owed, shipping or deferring it per the contract above.
func (a *AckCoalescer) Note(events int) {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.pending = true
	a.events += events
	fig := a.cfg.Figure()
	now := a.cfg.Clock.Now()
	var due time.Duration
	switch {
	case a.last.IsZero():
		due = 0
	case fig != a.lastFigure:
		due = a.cfg.Window - now.Sub(a.last)
	default:
		due = a.cfg.IdleWindow - now.Sub(a.last)
	}
	if due <= 0 {
		a.mu.Unlock()
		a.Flush()
		return
	}
	a.armLocked(now, due)
	a.mu.Unlock()
}

// armLocked schedules a flush after due, shortening an already-armed timer
// whose deadline is later (an urgent note must not wait out an idle
// deferral). Callers hold a.mu.
func (a *AckCoalescer) armLocked(now time.Time, due time.Duration) {
	target := now.Add(due)
	if a.timer != nil {
		if !target.Before(a.deadline) {
			return
		}
		a.timer.Stop()
	}
	a.deadline = target
	a.timer = a.cfg.Clock.AfterFunc(due, a.Flush)
}

// Flush ships the pending report as a standalone frame (the timer and
// urgent paths). A no-op when nothing is pending; a failed send re-notes
// the report for a deferred retry (takeLocked just refreshed `last`, so
// the re-note lands on the window timer rather than looping).
func (a *AckCoalescer) Flush() {
	a.mu.Lock()
	events, ok := a.takeLocked()
	a.mu.Unlock()
	if ok && !a.cfg.Send(events) {
		a.Note(events)
	}
}

// Take claims the pending report for carriage on reverse-direction traffic,
// suppressing its standalone frame. It returns the frame count the report
// covers; ok is false when nothing is pending.
func (a *AckCoalescer) Take() (events int, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.takeLocked()
}

// takeLocked resets the coalescing state for a report that is about to
// leave. Callers hold a.mu.
func (a *AckCoalescer) takeLocked() (int, bool) {
	if !a.pending || a.stopped {
		return 0, false
	}
	events := a.events
	a.events = 0
	a.pending = false
	a.last = a.cfg.Clock.Now()
	a.lastFigure = a.cfg.Figure()
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	return events, true
}

// Stop disarms the timer and refuses further reports (peer departed or
// owner closing). Do not call it while holding a lock the Figure callback
// takes.
func (a *AckCoalescer) Stop() {
	a.mu.Lock()
	a.stopped = true
	a.pending = false
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	a.mu.Unlock()
}
