package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/wire"
)

func shortHelloTimeout(t *testing.T) {
	t.Helper()
	old := helloTimeout
	helloTimeout = 50 * time.Millisecond
	t.Cleanup(func() { helloTimeout = old })
}

type msgSink struct {
	mu   sync.Mutex
	msgs []wire.Message
	cond *sync.Cond
}

func newMsgSink() *msgSink {
	s := &msgSink{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *msgSink) handler(m wire.Message) {
	s.mu.Lock()
	s.msgs = append(s.msgs, m)
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *msgSink) waitFor(t *testing.T, n int) []wire.Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.msgs) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages, have %d", n, len(s.msgs))
		}
		done := make(chan struct{})
		go func() { time.Sleep(10 * time.Millisecond); s.cond.Broadcast(); close(done) }()
		s.cond.Wait()
		<-done
	}
	return append([]wire.Message(nil), s.msgs...)
}

func testBatchMsg(t *testing.T, src, dst guid.GUID, n int) wire.Message {
	t.Helper()
	events := make([]event.Event, n)
	dev := guid.New(guid.KindDevice)
	for i := range events {
		events[i] = event.New(ctxtype.TemperatureCelsius, dev, uint64(i),
			time.Unix(1700000000, int64(i)), map[string]any{"value": float64(i)})
	}
	m, err := wire.NewNativeEventBatch(src, dst, events, &wire.BatchCredit{Dropped: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTCPNegotiatesBinary(t *testing.T) {
	shortHelloTimeout(t)
	tn := NewTCP(nil)
	defer tn.Close()

	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	sink := newMsgSink()
	if _, err := tn.Attach(b, sink.handler); err != nil {
		t.Fatal(err)
	}
	epA, err := tn.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	m := testBatchMsg(t, a, b, 8)
	if err := epA.Send(m); err != nil {
		t.Fatal(err)
	}
	got := sink.waitFor(t, 1)
	if got[0].Batch == nil {
		t.Fatal("binary connection should deliver a native batch")
	}
	if len(got[0].Batch.Events) != 8 || got[0].Batch.Credit == nil || got[0].Batch.Credit.Dropped != 5 {
		t.Fatalf("batch content: %+v", got[0].Batch)
	}

	st := epA.(WireStatser).WireStats()
	if st.Codecs[string(wire.CodecBinary)] != 1 {
		t.Fatalf("expected one binary connection, stats %+v", st)
	}
	if st.BytesSent == 0 {
		t.Fatalf("bytes sent not counted: %+v", st)
	}
}

func TestTCPForcedJSONSkipsNegotiation(t *testing.T) {
	shortHelloTimeout(t)
	tn := NewTCP(nil)
	defer tn.Close()

	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	tn.ConfigureCodec(a, wire.CodecJSON)
	sink := newMsgSink()
	if _, err := tn.Attach(b, sink.handler); err != nil {
		t.Fatal(err)
	}
	epA, err := tn.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	if err := epA.Send(testBatchMsg(t, a, b, 4)); err != nil {
		t.Fatal(err)
	}
	got := sink.waitFor(t, 1)
	if got[0].Batch != nil {
		t.Fatal("JSON-forced sender must deliver a legacy body, not a native batch")
	}
	frames, err := got[0].EventFrames()
	if err != nil || len(frames) != 4 {
		t.Fatalf("legacy frames: %d, %v", len(frames), err)
	}
	if c, ok := got[0].BatchCreditInfo(); !ok || c.Dropped != 5 {
		t.Fatalf("credit lost in materialization: %+v ok=%v", c, ok)
	}
	st := epA.(WireStatser).WireStats()
	if st.Codecs[string(wire.CodecJSON)] != 1 {
		t.Fatalf("expected one json connection, stats %+v", st)
	}
}

func TestTCPJSONForcedAcceptSideDeclinesBinary(t *testing.T) {
	shortHelloTimeout(t)
	tn := NewTCP(nil)
	defer tn.Close()

	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	tn.ConfigureCodec(b, wire.CodecJSON) // receiver is "legacy"
	sink := newMsgSink()
	if _, err := tn.Attach(b, sink.handler); err != nil {
		t.Fatal(err)
	}
	epA, err := tn.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	if err := epA.Send(testBatchMsg(t, a, b, 4)); err != nil {
		t.Fatal(err)
	}
	got := sink.waitFor(t, 1)
	if got[0].Batch != nil {
		t.Fatal("receiver declined binary; sender must fall back to JSON")
	}
	st := epA.(WireStatser).WireStats()
	if st.Codecs[string(wire.CodecJSON)] != 1 {
		t.Fatalf("expected json fallback connection, stats %+v", st)
	}
}

// TestTCPLegacyPeerFallback dials a hand-rolled listener that never answers
// the hello — a pre-negotiation peer — and checks the dialer times out into
// JSON and the peer receives well-formed legacy frames, hello included
// (which legacy stacks ignore by kind).
func TestTCPLegacyPeerFallback(t *testing.T) {
	shortHelloTimeout(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		msgs []wire.Message
		err  error
	}
	results := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			results <- result{err: err}
			return
		}
		defer conn.Close()
		r := wire.NewReader(conn) // legacy peers use the JSON-era reader
		var got []wire.Message
		for len(got) < 2 {
			m, err := r.Read()
			if err != nil {
				results <- result{err: err}
				return
			}
			got = append(got, m)
		}
		results <- result{msgs: got}
	}()

	tn := NewTCP(nil)
	defer tn.Close()
	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	tn.Directory().Register(b, ln.Addr().String())
	epA, err := tn.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if err := epA.Send(testBatchMsg(t, a, b, 4)); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited < helloTimeout/2 {
		t.Fatalf("dialer should have waited out the hello deadline, took %v", waited)
	}

	res := <-results
	if res.err != nil {
		t.Fatalf("legacy peer read: %v", res.err)
	}
	if res.msgs[0].Kind != wire.KindCodecHello {
		t.Fatalf("first frame should be the hello, got %s", res.msgs[0].Kind)
	}
	batch := res.msgs[1]
	if batch.Kind != wire.KindEventBatch || batch.Batch != nil {
		t.Fatalf("legacy peer must get a JSON event.batch, got %+v", batch)
	}
	frames, err := batch.EventFrames()
	if err != nil || len(frames) != 4 {
		t.Fatalf("legacy frames: %d, %v", len(frames), err)
	}
}

func TestMemoryNativePassthroughAndForcedJSON(t *testing.T) {
	n := NewMemory(MemoryConfig{})
	defer n.Close()

	a, b, c := guid.New(guid.KindServer), guid.New(guid.KindServer), guid.New(guid.KindServer)
	n.ConfigureCodec(c, wire.CodecJSON)

	sinkB, sinkC := newMsgSink(), newMsgSink()
	if _, err := n.Attach(b, sinkB.handler); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(c, sinkC.handler); err != nil {
		t.Fatal(err)
	}
	epA, err := n.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	mB := testBatchMsg(t, a, b, 3)
	if err := epA.Send(mB); err != nil {
		t.Fatal(err)
	}
	got := sinkB.waitFor(t, 1)
	if got[0].Batch != mB.Batch {
		t.Fatal("memory delivery must pass the native batch pointer through untouched")
	}

	if err := epA.Send(testBatchMsg(t, a, c, 3)); err != nil {
		t.Fatal(err)
	}
	gotC := sinkC.waitFor(t, 1)
	if gotC[0].Batch != nil {
		t.Fatal("JSON-forced receiver must get a materialized legacy body")
	}
	if frames, err := gotC[0].EventFrames(); err != nil || len(frames) != 3 {
		t.Fatalf("materialized frames: %d, %v", len(frames), err)
	}

	if st := epA.(WireStatser).WireStats(); st.Codecs["native"] != 1 {
		t.Fatalf("default memory endpoint should report native: %+v", st)
	}
	n.mu.RLock()
	cEp := n.eps[c]
	n.mu.RUnlock()
	if st := cEp.WireStats(); st.Codecs["json"] != 1 {
		t.Fatalf("forced endpoint should report json: %+v", st)
	}
}

func TestFactoryBackends(t *testing.T) {
	n, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(*Memory); !ok {
		t.Fatalf("default backend should be memory, got %T", n)
	}
	_ = n.Close()

	tcp, err := New(Config{Backend: "tcp", Codec: wire.CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	tt := tcp.(*TCP)
	if tt.codecFor(guid.New(guid.KindServer)) != wire.CodecJSON {
		t.Fatal("factory Codec knob should set the default codec")
	}
	_ = tcp.Close()

	if _, err := New(Config{Backend: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown backend must error")
	}
	found := false
	for _, name := range Backends() {
		if name == "tcp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Backends() missing tcp: %v", Backends())
	}
}
