package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/guid"
	"sci/internal/leak"
	"sci/internal/wire"
)

func mkMsg(t testing.TB, src, dst guid.GUID, body any) wire.Message {
	t.Helper()
	m, err := wire.NewMessage(src, dst, wire.KindEvent, body)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// recorder collects received messages.
type recorder struct {
	mu   sync.Mutex
	msgs []wire.Message
}

func (r *recorder) handle(m wire.Message) {
	r.mu.Lock()
	r.msgs = append(r.msgs, m)
	r.mu.Unlock()
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func (r *recorder) all() []wire.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]wire.Message, len(r.msgs))
	copy(out, r.msgs)
	return out
}

func TestMemoryBasicDelivery(t *testing.T) {
	n := NewMemory(MemoryConfig{})
	defer n.Close()
	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	var rec recorder
	epA, err := n.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(b, rec.handle); err != nil {
		t.Fatal(err)
	}
	if epA.ID() != a {
		t.Fatal("endpoint ID mismatch")
	}
	for i := 0; i < 10; i++ {
		if err := epA.Send(mkMsg(t, a, b, map[string]int{"i": i})); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return rec.count() == 10 })
	// Per-pair FIFO with zero latency.
	for i, m := range rec.all() {
		var body map[string]int
		if err := m.DecodeBody(&body); err != nil {
			t.Fatal(err)
		}
		if body["i"] != i {
			t.Fatalf("out of order: got %d at %d", body["i"], i)
		}
	}
	if n.Sent.Value() != 10 || n.Delivered.Value() != 10 || n.Lost.Value() != 0 {
		t.Fatalf("counters: sent=%d delivered=%d lost=%d",
			n.Sent.Value(), n.Delivered.Value(), n.Lost.Value())
	}
}

func TestMemoryUnknownDestination(t *testing.T) {
	n := NewMemory(MemoryConfig{})
	defer n.Close()
	a := guid.New(guid.KindServer)
	ep, err := n.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	err = ep.Send(mkMsg(t, a, guid.New(guid.KindServer), nil))
	if !errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("want ErrUnknownDestination, got %v", err)
	}
}

func TestMemoryRejectsInvalidAndDuplicates(t *testing.T) {
	n := NewMemory(MemoryConfig{})
	defer n.Close()
	a := guid.New(guid.KindServer)
	if _, err := n.Attach(a, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	ep, err := n.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(a, func(wire.Message) {}); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if err := ep.Send(wire.Message{}); err == nil {
		t.Fatal("invalid message accepted")
	}
	// Send with nil destination.
	m := mkMsg(t, a, a, nil)
	m.Dst = guid.Nil
	if err := ep.Send(m); err == nil {
		t.Fatal("nil destination accepted")
	}
}

func TestMemoryLatencyWithManualClock(t *testing.T) {
	clk := clock.NewManual(time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC))
	n := NewMemory(MemoryConfig{Clock: clk, BaseLatency: 10 * time.Millisecond})
	defer n.Close()
	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	var rec recorder
	epA, _ := n.Attach(a, func(wire.Message) {})
	if _, err := n.Attach(b, rec.handle); err != nil {
		t.Fatal(err)
	}
	if err := epA.Send(mkMsg(t, a, b, nil)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // real time passes; manual clock hasn't
	if rec.count() != 0 {
		t.Fatal("message delivered before clock advance")
	}
	clk.Advance(10 * time.Millisecond)
	waitFor(t, func() bool { return rec.count() == 1 })
}

func TestMemoryLoss(t *testing.T) {
	n := NewMemory(MemoryConfig{Loss: 1.0})
	defer n.Close()
	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	var rec recorder
	epA, _ := n.Attach(a, func(wire.Message) {})
	if _, err := n.Attach(b, rec.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := epA.Send(mkMsg(t, a, b, nil)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if rec.count() != 0 {
		t.Fatal("loss=1.0 still delivered")
	}
	if n.Lost.Value() != 5 {
		t.Fatalf("Lost = %d, want 5", n.Lost.Value())
	}
}

func TestMemoryPartition(t *testing.T) {
	n := NewMemory(MemoryConfig{})
	defer n.Close()
	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	var rec recorder
	epA, _ := n.Attach(a, func(wire.Message) {})
	if _, err := n.Attach(b, rec.handle); err != nil {
		t.Fatal(err)
	}
	n.Partition(b)
	if err := epA.Send(mkMsg(t, a, b, nil)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if rec.count() != 0 {
		t.Fatal("partitioned endpoint received message")
	}
	n.Unpartition(b)
	if err := epA.Send(mkMsg(t, a, b, nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec.count() == 1 })
}

func TestMemoryEndpointClose(t *testing.T) {
	n := NewMemory(MemoryConfig{})
	defer n.Close()
	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	epA, _ := n.Attach(a, func(wire.Message) {})
	epB, _ := n.Attach(b, func(wire.Message) {})
	if err := epB.Close(); err != nil {
		t.Fatal(err)
	}
	err := epA.Send(mkMsg(t, a, b, nil))
	if !errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("send to closed endpoint: %v", err)
	}
	// Re-attach after close must work.
	if _, err := n.Attach(b, func(wire.Message) {}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryNetworkClose(t *testing.T) {
	n := NewMemory(MemoryConfig{})
	a := guid.New(guid.KindServer)
	ep, _ := n.Attach(a, func(wire.Message) {})
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := ep.Send(mkMsg(t, a, a, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := n.Attach(guid.New(guid.KindServer), func(wire.Message) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach after close: %v", err)
	}
}

func TestMemoryConcurrentSenders(t *testing.T) {
	defer leak.Check(t)()
	n := NewMemory(MemoryConfig{})
	defer n.Close()
	dst := guid.New(guid.KindServer)
	var received atomic.Int64
	if _, err := n.Attach(dst, func(wire.Message) { received.Add(1) }); err != nil {
		t.Fatal(err)
	}
	const senders, per = 8, 250
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := guid.New(guid.KindEntity)
			ep, err := n.Attach(src, func(wire.Message) {})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := ep.Send(mkMsg(t, src, dst, nil)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return received.Load() == senders*per })
}

func TestTCPBasicExchange(t *testing.T) {
	dir := &Directory{}
	n := NewTCP(dir)
	defer n.Close()
	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	var recA, recB recorder
	epA, err := n.Attach(a, recA.handle)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := n.Attach(b, recB.handle)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Len() != 2 {
		t.Fatalf("directory has %d entries, want 2", dir.Len())
	}
	for i := 0; i < 20; i++ {
		if err := epA.Send(mkMsg(t, a, b, map[string]int{"i": i})); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return recB.count() == 20 })
	for i, m := range recB.all() {
		var body map[string]int
		if err := m.DecodeBody(&body); err != nil {
			t.Fatal(err)
		}
		if body["i"] != i {
			t.Fatalf("TCP out of order at %d: %d", i, body["i"])
		}
	}
	// Reverse direction uses B's own dialed connection.
	if err := epB.Send(mkMsg(t, b, a, nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return recA.count() == 1 })
}

func TestTCPUnknownDestination(t *testing.T) {
	n := NewTCP(nil)
	defer n.Close()
	a := guid.New(guid.KindServer)
	ep, err := n.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	err = ep.Send(mkMsg(t, a, guid.New(guid.KindServer), nil))
	if !errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("want ErrUnknownDestination, got %v", err)
	}
}

func TestTCPEndpointCloseUnregisters(t *testing.T) {
	dir := &Directory{}
	n := NewTCP(dir)
	defer n.Close()
	a := guid.New(guid.KindServer)
	ep, err := n.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dir.Lookup(a); !ok {
		t.Fatal("attach did not register address")
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := dir.Lookup(a); ok {
		t.Fatal("close did not unregister address")
	}
}

func TestTCPSendAfterPeerRestart(t *testing.T) {
	dir := &Directory{}
	n := NewTCP(dir)
	defer n.Close()
	a, b := guid.New(guid.KindServer), guid.New(guid.KindServer)
	epA, err := n.Attach(a, func(wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	var rec recorder
	epB, err := n.Attach(b, rec.handle)
	if err != nil {
		t.Fatal(err)
	}
	if err := epA.Send(mkMsg(t, a, b, nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec.count() == 1 })

	// Restart B on a new port.
	if err := epB.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(b, rec.handle); err != nil {
		t.Fatal(err)
	}
	// Early sends may be written into the stale cached connection's kernel
	// buffer and vanish with the RST, or fail outright; either way the
	// transport must detect the dead connection and redial. Keep sending
	// until a message actually lands.
	deadline := time.Now().Add(5 * time.Second)
	for rec.count() < 2 && time.Now().Before(deadline) {
		_ = epA.Send(mkMsg(t, a, b, nil)) // errors expected while stale conn is flushed out
		time.Sleep(10 * time.Millisecond)
	}
	if rec.count() < 2 {
		t.Fatal("send never recovered after peer restart")
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	defer leak.Check(t)()
	n := NewTCP(nil)
	defer n.Close()
	dst := guid.New(guid.KindServer)
	var received atomic.Int64
	if _, err := n.Attach(dst, func(wire.Message) { received.Add(1) }); err != nil {
		t.Fatal(err)
	}
	const senders, per = 4, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := guid.New(guid.KindEntity)
			ep, err := n.Attach(src, func(wire.Message) {})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := ep.Send(mkMsg(t, src, dst, nil)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return received.Load() == senders*per })
}

func BenchmarkMemorySend(b *testing.B) {
	n := NewMemory(MemoryConfig{})
	defer n.Close()
	src, dst := guid.New(guid.KindServer), guid.New(guid.KindServer)
	var done atomic.Int64
	ep, err := n.Attach(src, func(wire.Message) {})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := n.Attach(dst, func(wire.Message) { done.Add(1) }); err != nil {
		b.Fatal(err)
	}
	m := mkMsg(b, src, dst, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ep.Send(m); err != nil {
			b.Fatal(err)
		}
	}
	for int(done.Load()) < b.N {
		time.Sleep(time.Microsecond)
	}
}

func BenchmarkTCPSend(b *testing.B) {
	n := NewTCP(nil)
	defer n.Close()
	src, dst := guid.New(guid.KindServer), guid.New(guid.KindServer)
	var done atomic.Int64
	ep, err := n.Attach(src, func(wire.Message) {})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := n.Attach(dst, func(wire.Message) { done.Add(1) }); err != nil {
		b.Fatal(err)
	}
	m := mkMsg(b, src, dst, map[string]string{"k": "v"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ep.Send(m); err != nil {
			b.Fatal(err)
		}
	}
	for int(done.Load()) < b.N {
		time.Sleep(time.Microsecond)
	}
}
