package transport

import (
	"fmt"
	"sort"
	"sync"

	"sci/internal/wire"
)

// Config selects and tunes a transport backend by name, so deployments
// (cmd/scid, cmd/scibench, simulations) pick their network — and its wire
// codec — from configuration instead of hard-wiring a constructor.
type Config struct {
	// Backend names the transport: "memory" (default) or "tcp". Additional
	// backends register with Register.
	Backend string
	// Codec forces the default wire codec for every endpoint the network
	// attaches. Empty means negotiate (TCP) or native pass-through (memory);
	// wire.CodecJSON pins the legacy format fleet-wide.
	Codec wire.Codec
	// Memory tunes the "memory" backend.
	Memory MemoryConfig
	// Dir seeds the "tcp" backend's GUID→address directory; nil gets a
	// private empty one.
	Dir *Directory
}

// Builder constructs a Network from a Config.
type Builder func(Config) (Network, error)

var (
	factoryMu sync.RWMutex
	factories = map[string]Builder{}
)

// Register installs a backend builder under name, replacing any previous
// registration. The "memory" and "tcp" backends are pre-registered.
func Register(name string, b Builder) {
	factoryMu.Lock()
	factories[name] = b
	factoryMu.Unlock()
}

// Backends lists registered backend names, sorted.
func Backends() []string {
	factoryMu.RLock()
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	factoryMu.RUnlock()
	sort.Strings(names)
	return names
}

// New builds the configured backend. An empty Backend means "memory".
func New(cfg Config) (Network, error) {
	name := cfg.Backend
	if name == "" {
		name = "memory"
	}
	factoryMu.RLock()
	b, ok := factories[name]
	factoryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown backend %q (have %v)", name, Backends())
	}
	return b(cfg)
}

func init() {
	Register("memory", func(cfg Config) (Network, error) {
		n := NewMemory(cfg.Memory)
		if cfg.Codec != "" {
			n.SetDefaultCodec(cfg.Codec)
		}
		return n, nil
	})
	Register("tcp", func(cfg Config) (Network, error) {
		t := NewTCP(cfg.Dir)
		if cfg.Codec != "" {
			t.SetDefaultCodec(cfg.Codec)
		}
		return t, nil
	})
}
