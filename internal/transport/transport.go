// Package transport carries wire.Messages between SCI components that are
// addressed by GUID rather than by network address (the paper's Section 3
// overlay premise).
//
// Two implementations are provided:
//
//   - Memory: an in-process network with configurable per-message latency
//     and loss, driven by an injectable clock. The simulation experiments
//     (E1, E10) run thousands of Ranges on one machine over this network.
//   - TCP: a real network over net.Listen/net.Dial with a Directory mapping
//     GUIDs to listen addresses, used by cmd/scid deployments and the
//     integration tests.
//
// Both deliver messages to an attached Handler. Delivery per (src,dst) pair
// is ordered unless latency jitter is configured on the Memory network
// (reordering under jitter is deliberate: the overlay must tolerate it).
package transport

import (
	"errors"
	"fmt"
	"sync"

	"sci/internal/guid"
	"sci/internal/wire"
)

// Handler consumes an inbound message. Handlers run on the endpoint's
// delivery goroutine; blocking delays only that endpoint's inbox.
type Handler func(wire.Message)

// Endpoint is one attached component's connection to a Network.
type Endpoint interface {
	// ID returns the GUID this endpoint is addressable as.
	ID() guid.GUID
	// Send dispatches m to m.Dst. Send never blocks on the destination's
	// handler; it returns ErrUnknownDestination when the destination is not
	// attached (Memory) or not in the Directory (TCP).
	Send(m wire.Message) error
	// Close detaches the endpoint; its inbox drains and its handler stops.
	Close() error
}

// Network attaches endpoints.
type Network interface {
	// Attach registers id and begins delivering its traffic to h.
	Attach(id guid.GUID, h Handler) (Endpoint, error)
	// Close shuts the whole network down.
	Close() error
}

// Common errors.
var (
	ErrUnknownDestination = errors.New("transport: unknown destination")
	ErrClosed             = errors.New("transport: closed")
)

// WireStats summarises an endpoint's wire-level activity: how many live
// connections (or, for wireless transports, the endpoint itself) run each
// codec, and the total bytes that crossed the wire in each direction.
type WireStats struct {
	Codecs        map[string]int
	BytesSent     uint64
	BytesReceived uint64
}

// WireStatser is implemented by endpoints that can report wire statistics.
type WireStatser interface {
	WireStats() WireStats
}

// CodecConfigurer is implemented by networks whose per-endpoint codec can be
// forced. Forcing wire.CodecJSON makes the endpoint behave exactly like a
// pre-binary peer: it emits only legacy JSON frames (TCP) or only
// materialized legacy bodies (Memory), and never negotiates. Configure
// before or after Attach; new connections pick the setting up.
type CodecConfigurer interface {
	ConfigureCodec(id guid.GUID, codec wire.Codec)
}

// inbox is an unbounded FIFO with a wake channel, drained by one goroutine.
// Unbounded is the right choice here: senders must never block (a Memory
// send may run on a clock callback), and the simulation experiments bound
// traffic externally.
type inbox struct {
	mu     sync.Mutex
	queue  []wire.Message
	closed bool
	wake   chan struct{}
}

func newInbox() *inbox {
	return &inbox{wake: make(chan struct{}, 1)}
}

// put enqueues m; reports false if the inbox is closed.
func (in *inbox) put(m wire.Message) bool {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return false
	}
	in.queue = append(in.queue, m)
	in.mu.Unlock()
	select {
	case in.wake <- struct{}{}:
	default:
	}
	return true
}

// takeAll moves every queued message into buf under one lock acquisition,
// leaving the queue empty but its backing array in place for reuse. The
// returned slice aliases buf's storage.
func (in *inbox) takeAll(buf []wire.Message) []wire.Message {
	in.mu.Lock()
	defer in.mu.Unlock()
	buf = append(buf[:0], in.queue...)
	for i := range in.queue {
		in.queue[i] = wire.Message{}
	}
	in.queue = in.queue[:0]
	return buf
}

func (in *inbox) close() {
	in.mu.Lock()
	in.closed = true
	in.queue = nil
	in.mu.Unlock()
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// drainBatch empties the inbox into buf; when the inbox is already empty it
// blocks on the wake channel unless the inbox has closed (done=true).
func (in *inbox) drainBatch(buf []wire.Message) (out []wire.Message, done bool) {
	buf = in.takeAll(buf)
	if len(buf) > 0 {
		return buf, false
	}
	if in.isClosed() {
		return buf, true
	}
	<-in.wake
	return in.takeAll(buf), false
}

func (in *inbox) isClosed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.closed
}

// drainLoop delivers queued messages to h until the inbox closes. Each
// wakeup drains the whole backlog into a reused slice under one lock
// acquisition instead of re-locking per message, so a burst of inbound
// traffic costs one lock round trip and one wake.
func (in *inbox) drainLoop(h Handler) {
	var buf []wire.Message
	for {
		batch, done := in.drainBatch(buf[:0])
		for i := range batch {
			h(batch[i])
			batch[i] = wire.Message{} // release body references while buf is reused
		}
		if done {
			return
		}
		buf = batch
	}
}

// Validate checks that a message is sendable.
func validateOutbound(m wire.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.Dst.IsNil() {
		return fmt.Errorf("%w: nil destination", wire.ErrBadMessage)
	}
	return nil
}
