package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sci/internal/guid"
	"sci/internal/wire"
)

// Directory maps GUIDs to network addresses for the TCP transport. In a
// deployment it is seeded from configuration or from Range discovery
// announcements; the GUID→address binding is exactly the indirection the
// paper's overlay premise requires. Safe for concurrent use; the zero value
// is usable.
type Directory struct {
	mu    sync.RWMutex
	addrs map[guid.GUID]string
}

// Register binds id to addr, replacing any previous binding.
func (d *Directory) Register(id guid.GUID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.addrs == nil {
		d.addrs = make(map[guid.GUID]string)
	}
	d.addrs[id] = addr
}

// Unregister removes id's binding.
func (d *Directory) Unregister(id guid.GUID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.addrs, id)
}

// Lookup resolves id to an address.
func (d *Directory) Lookup(id guid.GUID) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	a, ok := d.addrs[id]
	return a, ok
}

// Len returns the number of bindings.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.addrs)
}

// helloTimeout bounds how long a dialing endpoint waits for the accept
// side's codec-hello answer before falling back to JSON (a legacy peer never
// answers). Package variable so negotiation tests can shorten it.
var helloTimeout = 250 * time.Millisecond

// TCP is a Network over real TCP sockets. Each attached endpoint owns a
// listener; outbound connections are cached per destination and negotiate
// their codec at dial time (see internal/wire: version negotiation).
// Construct with NewTCP.
type TCP struct {
	dir *Directory

	mu       sync.Mutex
	eps      map[guid.GUID]*tcpEndpoint
	codecs   map[guid.GUID]wire.Codec
	defCodec wire.Codec
	closed   bool
	wg       sync.WaitGroup
}

// NewTCP builds a TCP network resolving destinations through dir. A nil dir
// gets a private empty directory (endpoints it attaches still register).
func NewTCP(dir *Directory) *TCP {
	if dir == nil {
		dir = &Directory{}
	}
	return &TCP{dir: dir, eps: make(map[guid.GUID]*tcpEndpoint), codecs: make(map[guid.GUID]wire.Codec)}
}

// ConfigureCodec implements CodecConfigurer. Forcing wire.CodecJSON makes id
// skip negotiation on outbound dials and answer inbound hellos with "json" —
// indistinguishable, on the wire, from a legacy peer.
func (t *TCP) ConfigureCodec(id guid.GUID, codec wire.Codec) {
	t.mu.Lock()
	t.codecs[id] = codec
	t.mu.Unlock()
}

// SetDefaultCodec forces every endpoint without an explicit ConfigureCodec
// entry (used by the transport factory's Codec knob).
func (t *TCP) SetDefaultCodec(codec wire.Codec) {
	t.mu.Lock()
	t.defCodec = codec
	t.mu.Unlock()
}

func (t *TCP) codecFor(id guid.GUID) wire.Codec {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.codecs[id]; ok {
		return c
	}
	return t.defCodec
}

// Directory exposes the GUID→address directory (for seeding remote peers).
func (t *TCP) Directory() *Directory { return t.dir }

// Attach implements Network: it opens a listener on 127.0.0.1:0 (or the
// address previously registered for id in the directory, enabling fixed
// ports for cmd/scid) and serves inbound frames to h.
func (t *TCP) Attach(id guid.GUID, h Handler) (Endpoint, error) {
	return t.AttachAddr(id, "127.0.0.1:0", h)
}

// AttachAddr attaches with an explicit listen address.
func (t *TCP) AttachAddr(id guid.GUID, listenAddr string, h Handler) (Endpoint, error) {
	if h == nil {
		return nil, wire.ErrBadMessage
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := t.eps[id]; dup {
		t.mu.Unlock()
		return nil, duplicateAttachError(id)
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &tcpEndpoint{
		id:       id,
		net:      t,
		ln:       ln,
		h:        h,
		conns:    make(map[guid.GUID]*tcpConn),
		liveDecs: make(map[*wire.Decoder]struct{}),
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = ln.Close()
		return nil, ErrClosed
	}
	t.eps[id] = ep
	t.wg.Add(1)
	t.mu.Unlock()

	t.dir.Register(id, ln.Addr().String())

	go func() {
		defer t.wg.Done()
		ep.acceptLoop()
	}()
	return ep, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closed = true
	eps := make([]*tcpEndpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	t.eps = make(map[guid.GUID]*tcpEndpoint)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	t.wg.Wait()
	return nil
}

type tcpEndpoint struct {
	id  guid.GUID
	net *TCP
	ln  net.Listener
	h   Handler

	mu       sync.Mutex
	conns    map[guid.GUID]*tcpConn
	served   []net.Conn // inbound connections, closed on shutdown
	liveDecs map[*wire.Decoder]struct{}
	closed   bool

	// Bytes accumulated from connections that have since died; live
	// connections are summed on top in WireStats.
	deadSent atomic.Uint64
	deadRecv atomic.Uint64

	wg sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex // serialises writers
	c    net.Conn
	enc  *wire.Encoder
	dead bool
}

// finalize marks the connection dead exactly once, folds its byte count into
// the endpoint totals, returns its pooled buffer, and closes the socket.
func (c *tcpConn) finalize(ep *tcpEndpoint) {
	c.mu.Lock()
	if !c.dead {
		c.dead = true
		ep.deadSent.Add(c.enc.BytesWritten())
		c.enc.Release()
	}
	c.mu.Unlock()
	_ = c.c.Close()
}

// ID implements Endpoint.
func (ep *tcpEndpoint) ID() guid.GUID { return ep.id }

// Addr returns the endpoint's listen address.
func (ep *tcpEndpoint) Addr() string { return ep.ln.Addr().String() }

// Send implements Endpoint.
func (ep *tcpEndpoint) Send(m wire.Message) error {
	if err := validateOutbound(m); err != nil {
		return err
	}
	conn, err := ep.connTo(m.Dst)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	if conn.dead {
		conn.mu.Unlock()
		return fmt.Errorf("transport: send to %s: %w", m.Dst.Short(), net.ErrClosed)
	}
	err = conn.enc.Write(m)
	conn.mu.Unlock()
	if err != nil {
		// Connection went bad: forget it so the next send redials.
		ep.dropConn(m.Dst, conn)
		return fmt.Errorf("transport: send to %s: %w", m.Dst.Short(), err)
	}
	return nil
}

// WireStats implements WireStatser: codec counts over live outbound
// connections plus bytes across every connection this endpoint ever had.
func (ep *tcpEndpoint) WireStats() WireStats {
	st := WireStats{Codecs: make(map[string]int)}
	ep.mu.Lock()
	for _, c := range ep.conns {
		c.mu.Lock()
		if !c.dead {
			st.Codecs[string(c.enc.Codec())]++
			st.BytesSent += c.enc.BytesWritten()
		}
		c.mu.Unlock()
	}
	for d := range ep.liveDecs {
		st.BytesReceived += d.BytesRead()
	}
	ep.mu.Unlock()
	st.BytesSent += ep.deadSent.Load()
	st.BytesReceived += ep.deadRecv.Load()
	return st
}

// Close implements Endpoint.
func (ep *tcpEndpoint) Close() error {
	ep.net.mu.Lock()
	if ep.net.eps[ep.id] == ep {
		delete(ep.net.eps, ep.id)
	}
	ep.net.mu.Unlock()
	ep.shutdown()
	return nil
}

func (ep *tcpEndpoint) shutdown() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		ep.wg.Wait()
		return
	}
	ep.closed = true
	conns := ep.conns
	ep.conns = make(map[guid.GUID]*tcpConn)
	served := ep.served
	ep.served = nil
	ep.mu.Unlock()

	ep.net.dir.Unregister(ep.id)
	_ = ep.ln.Close()
	for _, c := range conns {
		c.finalize(ep)
	}
	for _, c := range served {
		_ = c.Close()
	}
	ep.wg.Wait()
}

func (ep *tcpEndpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

func (ep *tcpEndpoint) connTo(dst guid.GUID) (*tcpConn, error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := ep.conns[dst]; ok {
		ep.mu.Unlock()
		return c, nil
	}
	ep.mu.Unlock()

	addr, ok := ep.net.dir.Lookup(dst)
	if !ok {
		return nil, ErrUnknownDestination
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", dst.Short(), addr, err)
	}
	enc := wire.NewEncoder(raw, wire.CodecJSON)
	if ep.net.codecFor(ep.id) != wire.CodecJSON {
		// Negotiate: offer our codecs as a JSON frame every peer decodes, and
		// give a codec-aware accept side a brief window to answer. A legacy
		// peer ignores the unknown kind and the deadline expires into the
		// JSON fallback. This is the only read we ever issue on an outbound
		// connection; past it, reverse traffic drains to io.Discard below.
		negotiated := wire.CodecJSON
		if hello, err := wire.NewCodecHello(ep.id, dst, wire.CodecBinary, wire.CodecJSON); err == nil {
			if err := enc.Write(hello); err != nil {
				enc.Release()
				_ = raw.Close()
				return nil, fmt.Errorf("transport: hello to %s: %w", dst.Short(), err)
			}
			//lint:allow clockcheck kernel socket deadlines are absolute wall-clock instants
			_ = raw.SetReadDeadline(time.Now().Add(helloTimeout))
			dec := wire.NewDecoder(raw)
			if m, err := dec.Read(); err == nil && m.Kind == wire.KindCodecHello {
				var h wire.CodecHello
				if m.DecodeBody(&h) == nil && h.Chosen == wire.CodecBinary {
					negotiated = wire.CodecBinary
				}
			}
			dec.Release()
			_ = raw.SetReadDeadline(time.Time{})
		}
		enc.SetCodec(negotiated)
	}
	c := &tcpConn{c: raw, enc: enc}

	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		c.finalize(ep)
		return nil, ErrClosed
	}
	if existing, ok := ep.conns[dst]; ok {
		// Lost a dial race; use the winner.
		ep.mu.Unlock()
		c.finalize(ep)
		return existing, nil
	}
	ep.conns[dst] = c
	ep.mu.Unlock()

	// Outbound connections are write-only; drain and discard any reverse
	// traffic so the peer's writes never block. (Peers reply via their own
	// dialed connections, keyed by GUID, not by socket.)
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		_, _ = io.Copy(io.Discard, raw)
	}()
	return c, nil
}

func (ep *tcpEndpoint) dropConn(dst guid.GUID, c *tcpConn) {
	ep.mu.Lock()
	if ep.conns[dst] == c {
		delete(ep.conns, dst)
	}
	ep.mu.Unlock()
	c.finalize(ep)
}

func (ep *tcpEndpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			if ep.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept error: keep serving.
			continue
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			_ = conn.Close()
			return
		}
		ep.served = append(ep.served, conn)
		ep.wg.Add(1)
		ep.mu.Unlock()
		go func() {
			defer ep.wg.Done()
			ep.serveConn(conn)
		}()
	}
}

func (ep *tcpEndpoint) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := wire.NewDecoder(conn)
	ep.mu.Lock()
	ep.liveDecs[dec] = struct{}{}
	ep.mu.Unlock()
	defer func() {
		ep.mu.Lock()
		delete(ep.liveDecs, dec)
		ep.mu.Unlock()
		ep.deadRecv.Add(dec.BytesRead())
		dec.Release()
	}()
	answered := false
	for {
		m, err := dec.Read()
		if err != nil {
			return // EOF, peer close, or framing error: drop the connection
		}
		if ep.isClosed() {
			return
		}
		if m.Kind == wire.KindCodecHello {
			// Answer the dialer's codec offer once — the only bytes this side
			// ever writes on an inbound connection — and keep the hello away
			// from the application handler. An endpoint forced to JSON
			// answers "json", declining binary.
			if !answered {
				answered = true
				chosen := wire.CodecJSON
				var h wire.CodecHello
				if m.DecodeBody(&h) == nil && ep.net.codecFor(ep.id) != wire.CodecJSON {
					chosen = wire.ChooseCodec(h.Codecs)
				}
				if ack, err := wire.NewCodecHelloAck(m, chosen); err == nil {
					aw := wire.NewWriter(conn)
					_ = aw.Write(ack)
					aw.Release()
				}
			}
			continue
		}
		ep.h(m)
	}
}

var (
	_ Network         = (*TCP)(nil)
	_ Endpoint        = (*tcpEndpoint)(nil)
	_ WireStatser     = (*tcpEndpoint)(nil)
	_ CodecConfigurer = (*TCP)(nil)
)
