package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"sci/internal/guid"
	"sci/internal/wire"
)

// Directory maps GUIDs to network addresses for the TCP transport. In a
// deployment it is seeded from configuration or from Range discovery
// announcements; the GUID→address binding is exactly the indirection the
// paper's overlay premise requires. Safe for concurrent use; the zero value
// is usable.
type Directory struct {
	mu    sync.RWMutex
	addrs map[guid.GUID]string
}

// Register binds id to addr, replacing any previous binding.
func (d *Directory) Register(id guid.GUID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.addrs == nil {
		d.addrs = make(map[guid.GUID]string)
	}
	d.addrs[id] = addr
}

// Unregister removes id's binding.
func (d *Directory) Unregister(id guid.GUID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.addrs, id)
}

// Lookup resolves id to an address.
func (d *Directory) Lookup(id guid.GUID) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	a, ok := d.addrs[id]
	return a, ok
}

// Len returns the number of bindings.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.addrs)
}

// TCP is a Network over real TCP sockets. Each attached endpoint owns a
// listener; outbound connections are cached per destination. Construct with
// NewTCP.
type TCP struct {
	dir *Directory

	mu     sync.Mutex
	eps    map[guid.GUID]*tcpEndpoint
	closed bool
	wg     sync.WaitGroup
}

// NewTCP builds a TCP network resolving destinations through dir. A nil dir
// gets a private empty directory (endpoints it attaches still register).
func NewTCP(dir *Directory) *TCP {
	if dir == nil {
		dir = &Directory{}
	}
	return &TCP{dir: dir, eps: make(map[guid.GUID]*tcpEndpoint)}
}

// Directory exposes the GUID→address directory (for seeding remote peers).
func (t *TCP) Directory() *Directory { return t.dir }

// Attach implements Network: it opens a listener on 127.0.0.1:0 (or the
// address previously registered for id in the directory, enabling fixed
// ports for cmd/scid) and serves inbound frames to h.
func (t *TCP) Attach(id guid.GUID, h Handler) (Endpoint, error) {
	return t.AttachAddr(id, "127.0.0.1:0", h)
}

// AttachAddr attaches with an explicit listen address.
func (t *TCP) AttachAddr(id guid.GUID, listenAddr string, h Handler) (Endpoint, error) {
	if h == nil {
		return nil, wire.ErrBadMessage
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := t.eps[id]; dup {
		t.mu.Unlock()
		return nil, duplicateAttachError(id)
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &tcpEndpoint{
		id:    id,
		net:   t,
		ln:    ln,
		h:     h,
		conns: make(map[guid.GUID]*tcpConn),
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = ln.Close()
		return nil, ErrClosed
	}
	t.eps[id] = ep
	t.wg.Add(1)
	t.mu.Unlock()

	t.dir.Register(id, ln.Addr().String())

	go func() {
		defer t.wg.Done()
		ep.acceptLoop()
	}()
	return ep, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closed = true
	eps := make([]*tcpEndpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	t.eps = make(map[guid.GUID]*tcpEndpoint)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	t.wg.Wait()
	return nil
}

type tcpEndpoint struct {
	id  guid.GUID
	net *TCP
	ln  net.Listener
	h   Handler

	mu     sync.Mutex
	conns  map[guid.GUID]*tcpConn
	served []net.Conn // inbound connections, closed on shutdown
	closed bool

	wg sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex // serialises writers
	c  net.Conn
	w  *wire.Writer
}

// ID implements Endpoint.
func (ep *tcpEndpoint) ID() guid.GUID { return ep.id }

// Addr returns the endpoint's listen address.
func (ep *tcpEndpoint) Addr() string { return ep.ln.Addr().String() }

// Send implements Endpoint.
func (ep *tcpEndpoint) Send(m wire.Message) error {
	if err := validateOutbound(m); err != nil {
		return err
	}
	conn, err := ep.connTo(m.Dst)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	err = conn.w.Write(m)
	conn.mu.Unlock()
	if err != nil {
		// Connection went bad: forget it so the next send redials.
		ep.dropConn(m.Dst, conn)
		return fmt.Errorf("transport: send to %s: %w", m.Dst.Short(), err)
	}
	return nil
}

// Close implements Endpoint.
func (ep *tcpEndpoint) Close() error {
	ep.net.mu.Lock()
	if ep.net.eps[ep.id] == ep {
		delete(ep.net.eps, ep.id)
	}
	ep.net.mu.Unlock()
	ep.shutdown()
	return nil
}

func (ep *tcpEndpoint) shutdown() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		ep.wg.Wait()
		return
	}
	ep.closed = true
	conns := ep.conns
	ep.conns = make(map[guid.GUID]*tcpConn)
	served := ep.served
	ep.served = nil
	ep.mu.Unlock()

	ep.net.dir.Unregister(ep.id)
	_ = ep.ln.Close()
	for _, c := range conns {
		_ = c.c.Close()
	}
	for _, c := range served {
		_ = c.Close()
	}
	ep.wg.Wait()
}

func (ep *tcpEndpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

func (ep *tcpEndpoint) connTo(dst guid.GUID) (*tcpConn, error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := ep.conns[dst]; ok {
		ep.mu.Unlock()
		return c, nil
	}
	ep.mu.Unlock()

	addr, ok := ep.net.dir.Lookup(dst)
	if !ok {
		return nil, ErrUnknownDestination
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", dst.Short(), addr, err)
	}
	c := &tcpConn{c: raw, w: wire.NewWriter(raw)}

	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		_ = raw.Close()
		return nil, ErrClosed
	}
	if existing, ok := ep.conns[dst]; ok {
		// Lost a dial race; use the winner.
		ep.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	ep.conns[dst] = c
	ep.mu.Unlock()

	// Outbound connections are write-only; drain and discard any reverse
	// traffic so the peer's writes never block. (Peers reply via their own
	// dialed connections, keyed by GUID, not by socket.)
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		_, _ = io.Copy(io.Discard, raw)
	}()
	return c, nil
}

func (ep *tcpEndpoint) dropConn(dst guid.GUID, c *tcpConn) {
	ep.mu.Lock()
	if ep.conns[dst] == c {
		delete(ep.conns, dst)
	}
	ep.mu.Unlock()
	_ = c.c.Close()
}

func (ep *tcpEndpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			if ep.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept error: keep serving.
			continue
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			_ = conn.Close()
			return
		}
		ep.served = append(ep.served, conn)
		ep.wg.Add(1)
		ep.mu.Unlock()
		go func() {
			defer ep.wg.Done()
			ep.serveConn(conn)
		}()
	}
}

func (ep *tcpEndpoint) serveConn(conn net.Conn) {
	defer conn.Close()
	r := wire.NewReader(conn)
	for {
		m, err := r.Read()
		if err != nil {
			return // EOF, peer close, or framing error: drop the connection
		}
		if ep.isClosed() {
			return
		}
		ep.h(m)
	}
}

var (
	_ Network  = (*TCP)(nil)
	_ Endpoint = (*tcpEndpoint)(nil)
)
