package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sci/internal/clock"
	"sci/internal/guid"
	"sci/internal/metrics"
	"sci/internal/wire"
)

// MemoryConfig tunes the simulated in-process network.
type MemoryConfig struct {
	// Clock drives latency simulation; defaults to the real clock.
	Clock clock.Clock
	// BaseLatency is the fixed one-way delivery delay (default 0: deliver
	// on the sender's goroutine path immediately, fully deterministic).
	BaseLatency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1) that a message is silently dropped.
	Loss float64
	// Seed makes jitter/loss deterministic; 0 uses a fixed default seed so
	// simulations are reproducible unless explicitly varied.
	Seed int64
}

// Memory is an in-process Network. Construct with NewMemory.
type Memory struct {
	cfg MemoryConfig
	clk clock.Clock

	mu       sync.RWMutex
	eps      map[guid.GUID]*memEndpoint
	codecs   map[guid.GUID]wire.Codec
	defCodec wire.Codec
	closed   bool

	rngMu sync.Mutex
	rng   *rand.Rand

	wg sync.WaitGroup

	// Metrics: sent counts every Send; delivered counts handler handoffs;
	// lost counts simulated drops.
	Sent      metrics.Counter
	Delivered metrics.Counter
	Lost      metrics.Counter
}

// NewMemory builds an in-process network.
func NewMemory(cfg MemoryConfig) *Memory {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 20030617 // workshop date: fixed for reproducibility
	}
	return &Memory{
		cfg:    cfg,
		clk:    cfg.Clock,
		eps:    make(map[guid.GUID]*memEndpoint),
		codecs: make(map[guid.GUID]wire.Codec),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// ConfigureCodec implements CodecConfigurer. The memory network has no wire,
// so the default ("native") delivery passes Message.Batch pointers through
// untouched. Forcing wire.CodecJSON on an endpoint makes every native batch
// it sends or receives materialize into the legacy JSON body first — an
// in-process stand-in for a pre-binary peer.
func (n *Memory) ConfigureCodec(id guid.GUID, codec wire.Codec) {
	n.mu.Lock()
	n.codecs[id] = codec
	n.mu.Unlock()
}

// SetDefaultCodec forces every endpoint without an explicit ConfigureCodec
// entry (used by the transport factory's Codec knob).
func (n *Memory) SetDefaultCodec(codec wire.Codec) {
	n.mu.Lock()
	n.defCodec = codec
	n.mu.Unlock()
}

// codecForLocked reads the effective codec for id; callers hold n.mu.
func (n *Memory) codecForLocked(id guid.GUID) wire.Codec {
	if c, ok := n.codecs[id]; ok {
		return c
	}
	return n.defCodec
}

// Attach implements Network.
func (n *Memory) Attach(id guid.GUID, h Handler) (Endpoint, error) {
	if h == nil {
		return nil, wire.ErrBadMessage
	}
	ep := &memEndpoint{id: id, net: n, in: newInbox()}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := n.eps[id]; dup {
		n.mu.Unlock()
		return nil, duplicateAttachError(id)
	}
	n.eps[id] = ep
	n.wg.Add(1)
	n.mu.Unlock()

	go func() {
		defer n.wg.Done()
		ep.in.drainLoop(h)
	}()
	return ep, nil
}

func duplicateAttachError(id guid.GUID) error {
	return &AttachError{ID: id}
}

// AttachError reports a duplicate attach.
type AttachError struct{ ID guid.GUID }

func (e *AttachError) Error() string {
	return "transport: endpoint already attached: " + e.ID.String()
}

// Close implements Network.
func (n *Memory) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return nil
	}
	n.closed = true
	eps := make([]*memEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.eps = make(map[guid.GUID]*memEndpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.in.close()
	}
	n.wg.Wait()
	return nil
}

// Partition simulates a network partition by detaching the given endpoint's
// inbox from delivery (messages to it are lost) without closing it. Heal
// with Unpartition. Used by failure-injection tests.
func (n *Memory) Partition(id guid.GUID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[id]; ok {
		ep.partitioned.Store(true)
	}
}

// Unpartition heals a partition.
func (n *Memory) Unpartition(id guid.GUID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[id]; ok {
		ep.partitioned.Store(false)
	}
}

// deliver routes m to its destination applying loss and latency.
func (n *Memory) deliver(m wire.Message) error {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrClosed
	}
	dst, ok := n.eps[m.Dst]
	legacy := m.Batch != nil &&
		(n.codecForLocked(m.Src) == wire.CodecJSON || n.codecForLocked(m.Dst) == wire.CodecJSON)
	n.mu.RUnlock()
	if !ok {
		return ErrUnknownDestination
	}
	if legacy {
		// A JSON-forced sender cannot emit, and a JSON-forced receiver cannot
		// decode, a native batch: fold it into the legacy body exactly as a
		// JSON wire connection would.
		folded, err := wire.Materialize(m)
		if err != nil {
			return err
		}
		m = folded
	}
	n.Sent.Inc()

	if n.cfg.Loss > 0 {
		n.rngMu.Lock()
		lost := n.rng.Float64() < n.cfg.Loss
		n.rngMu.Unlock()
		if lost {
			n.Lost.Inc()
			return nil // silent loss, like the real world
		}
	}
	if dst.partitioned.Load() {
		n.Lost.Inc()
		return nil
	}

	delay := n.cfg.BaseLatency
	if n.cfg.Jitter > 0 {
		n.rngMu.Lock()
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.rngMu.Unlock()
	}
	if delay <= 0 {
		if dst.in.put(m) {
			n.Delivered.Inc()
		}
		return nil
	}
	n.clk.AfterFunc(delay, func() {
		if dst.in.put(m) {
			n.Delivered.Inc()
		}
	})
	return nil
}

type memEndpoint struct {
	id          guid.GUID
	net         *Memory
	in          *inbox
	partitioned atomic.Bool
}

// ID implements Endpoint.
func (ep *memEndpoint) ID() guid.GUID { return ep.id }

// Send implements Endpoint.
func (ep *memEndpoint) Send(m wire.Message) error {
	if err := validateOutbound(m); err != nil {
		return err
	}
	return ep.net.deliver(m)
}

// Close implements Endpoint.
func (ep *memEndpoint) Close() error {
	ep.net.mu.Lock()
	if ep.net.eps[ep.id] == ep {
		delete(ep.net.eps, ep.id)
	}
	ep.net.mu.Unlock()
	ep.in.close()
	return nil
}

// WireStats implements WireStatser. No bytes cross a wire in process; the
// codec gauge reports "native" (batch pointers pass through) or "json"
// (forced legacy materialization).
func (ep *memEndpoint) WireStats() WireStats {
	ep.net.mu.RLock()
	codec := ep.net.codecForLocked(ep.id)
	ep.net.mu.RUnlock()
	name := "native"
	if codec == wire.CodecJSON {
		name = "json"
	}
	return WireStats{Codecs: map[string]int{name: 1}}
}

var (
	_ Network         = (*Memory)(nil)
	_ Endpoint        = (*memEndpoint)(nil)
	_ WireStatser     = (*memEndpoint)(nil)
	_ CodecConfigurer = (*Memory)(nil)
)
