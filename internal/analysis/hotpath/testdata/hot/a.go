// Package hot fixtures: every allocating construct inside an annotated
// function is flagged, the amortised idioms stay clean, calls are
// followed interprocedurally, and unannotated functions are untouched.
package hot

import "fmt"

// T is a carrier for method-based cases.
type T struct {
	buf  []byte
	n    int
	ch   chan int
	dict map[string]int
}

//lint:hotpath
func (t *T) clean(p *T, b []byte) {
	t.n += len(b)                   // arithmetic: free
	t.buf = append(t.buf, b...)     // self-append: amortised, exempt
	t.buf = append(t.buf[:0], b...) // buffer-reuse append: exempt
	t.ch <- t.n                     // channel send: free
	t.n = t.dict["k"]               // map read: free
	sinkPtr(p)                      // pointer into interface: stays in the word
	t.leafClean()                   // resolvable clean callee
}

//lint:hotpath
func literals(t *T) {
	t.dict = map[string]int{} // want `map literal allocates`
	t.buf = []byte{1}         // want `slice literal allocates`
	_ = &T{}                  // want `&composite literal allocates`
	t.buf = make([]byte, 8)   // want `make allocates`
	_ = new(T)                // want `new allocates`
	_ = func() {}             // want `function literal allocates a closure`
	go t.leafClean()          // want `go statement allocates a goroutine`
}

//lint:hotpath
func strings2(s string, b []byte) {
	_ = s + s         // want `string concatenation allocates`
	_ = []byte(s)     // want `string/slice conversion copies and allocates`
	_ = string(b)     // want `string/slice conversion copies and allocates`
	_ = fmt.Sprint(s) // want `fmt.Sprint allocates`
}

//lint:hotpath
func boxing(t *T, v int) {
	sinkAny(v)      // want `argument boxes a non-pointer value into an interface parameter`
	sinkPtr(t)      // pointer: clean
	_ = any(v)      // want `conversion boxes a non-pointer value into an interface`
	_ = any(t)      // pointer conversion: clean
	_ = t.leafClean // want `method value allocates a closure`
}

//lint:hotpath
func growsForeign(dst, src []byte) []byte {
	out := append(dst, src...) // want `append to a different slice may grow past capacity and allocate`
	return out
}

// the append-helper tail form is self-append one frame up: exempt, both
// directly and through the interprocedural summary.
//
//lint:hotpath
func appendHelper(b []byte, v byte) []byte {
	return append(b, v)
}

//lint:hotpath
func usesHelper(t *T) {
	t.buf = appendHelper(t.buf, 1)
}

//lint:hotpath
func returnsForeign(b []byte) []byte {
	return append([]byte(nil), b...) // want `append to a different slice may grow past capacity and allocate`
}

// interprocedural: the allocation is one call away.
//
//lint:hotpath
func callsAllocating(t *T) {
	t.allocHelper() // want `call to .*\.T\.allocHelper allocates \(composite literal`
}

// calls into another annotated function are trusted, not re-traversed.
//
//lint:hotpath
func callsAnnotated(t *T, p *T, b []byte) {
	t.clean(p, b)
}

//lint:hotpath
func escaped(t *T) {
	//lint:allow hotpath cold branch: dictionary built once per connection
	t.dict = map[string]int{}
}

func (t *T) allocHelper() {
	t.dict = map[string]int{}
}

func (t *T) leafClean() {
	t.n++
}

// unannotated functions allocate freely.
func unannotated() *T {
	return &T{dict: map[string]int{}, buf: make([]byte, 0, 8)}
}

func sinkAny(v any) { _ = v }

func sinkPtr(v any) { _ = v }
