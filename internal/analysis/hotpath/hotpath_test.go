package hotpath_test

import (
	"testing"

	"sci/internal/analysis/analysistest"
	"sci/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	analysistest.Run(t, "testdata/hot", hotpath.Analyzer)
}
