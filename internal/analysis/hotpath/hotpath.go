// Package hotpath enforces that functions annotated //lint:hotpath stay
// allocation-free. The dispatch, encode and flush paths run per event;
// one hidden allocation there turns into GC pressure proportional to the
// publish rate, which is exactly the cost the zero-alloc wire path was
// built to avoid.
//
// Inside an annotated function the analyzer flags every construct the
// compiler lowers to a heap allocation:
//
//   - map and slice composite literals, &T{} literals, make and new
//   - function literals and method values (closure allocation)
//   - fmt calls (interface boxing plus formatting state)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - interface boxing: converting or passing a non-pointer-shaped value
//     to an interface; pointers, channels, maps and funcs are stored in
//     the interface word directly and stay free
//   - append whose destination is not the slice being appended to
//     (x = append(y, ...)): growth is unprovable, while self-append to a
//     reused buffer — x = append(x, ...), x = append(x[:0], ...), and the
//     append-helper tail `return append(b, ...)` whose caller reassigns
//     over the same buffer — is the amortised idiom the benchmarks vouch
//     for
//   - go statements (a new goroutine is never free)
//
// Calls are checked interprocedurally: a call to another in-program
// function is traversed (to a bounded depth) and flagged when its body
// may allocate, unless the callee is itself annotated //lint:hotpath —
// then it is checked in its own right and trusted here. Calls that
// cannot be resolved statically (stdlib, interface methods, function
// values) are assumed clean; that unsoundness is deliberate and is
// backstopped by the AllocsPerRun benchmark cross-check, which measures
// every annotated function end to end (see hotpath_bench_test.go).
//
// Deliberate exceptions — a cold branch that builds a table once, a
// method value handed to a timer — carry //lint:allow hotpath <reason>.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sci/internal/analysis"
	"sci/internal/analysis/interproc"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name:       "hotpath",
	Doc:        "functions annotated //lint:hotpath must not allocate",
	RunProgram: run,
}

// marker is the annotation line, in doc comments of hot functions.
const marker = "//lint:hotpath"

func run(prog *analysis.Program) error {
	c := &checker{
		prog:      prog,
		ip:        interproc.Build(prog.Packages),
		annotated: make(map[string]*interproc.Func),
		memo:      make(map[string]string),
		inProg:    make(map[string]bool),
	}
	// Pass 1: index every annotated function, in scope or not, so calls
	// into them are trusted rather than re-traversed.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !isAnnotated(fd) {
					continue
				}
				if fd.Body == nil {
					continue
				}
				if fn := c.ip.FuncOf(pkg, fd); fn != nil {
					c.annotated[fn.Key] = fn
				}
			}
		}
	}
	// Pass 2: check each annotated body.
	for _, fn := range sortedFuncs(c.annotated) {
		if !prog.InScope(fn.Pkg) {
			continue
		}
		c.scan(fn.Pkg, fn.Decl.Body, func(pos token.Pos, msg string) {
			prog.Reportf(pos, "%s in //lint:hotpath function %s", msg, fn.Decl.Name.Name)
		})
	}
	return nil
}

// Annotated returns the symbol keys of every //lint:hotpath function in
// the program, sorted. The benchmark cross-check uses this to tie each
// annotation to an AllocsPerRun measurement.
func Annotated(pkgs []*analysis.Package) []string {
	ip := interproc.Build(pkgs)
	var keys []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !isAnnotated(fd) || fd.Body == nil {
					continue
				}
				if fn := ip.FuncOf(pkg, fd); fn != nil {
					keys = append(keys, fn.Key)
				}
			}
		}
	}
	sort.Strings(keys)
	return keys
}

func isAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

type checker struct {
	prog      *analysis.Program
	ip        *interproc.Program
	annotated map[string]*interproc.Func
	memo      map[string]string // symbol key -> first alloc reason, "" = clean
	inProg    map[string]bool   // recursion guard for mayAlloc
}

// scan walks body and reports every allocating construct. Calls are
// followed per the interprocedural policy in the package doc.
func (c *checker) scan(pkg *analysis.Package, body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	info := pkg.TypesInfo
	selfAppends := selfAppendCalls(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				report(x.Pos(), "map literal allocates")
			case *types.Slice:
				report(x.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal allocates")
				}
			}
		case *ast.FuncLit:
			report(x.Pos(), "function literal allocates a closure")
			return false // its body runs later, on someone else's budget
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info, x) {
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(info, x.Lhs[0]) {
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			// A method value outside call position is a closure.
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal && !isCallFun(body, x) {
				report(x.Pos(), "method value allocates a closure")
			}
		case *ast.CallExpr:
			c.call(pkg, x, selfAppends, report)
		}
		return true
	})
}

// call classifies one call expression: conversion, builtin, fmt,
// in-program callee, or opaque.
func (c *checker) call(pkg *analysis.Package, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, report func(pos token.Pos, msg string)) {
	info := pkg.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(info, call, tv.Type, report)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if !selfAppends[call] {
					report(call.Pos(), "append to a different slice may grow past capacity and allocate")
				}
			}
			return
		}
	}
	if obj := interproc.CalleeObj(pkg, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt."+obj.Name()+" allocates")
		return
	}
	c.boxedArgs(info, call, report)
	if callee := c.ip.Callee(pkg, call); callee != nil {
		if _, ok := c.annotated[callee.Key]; ok {
			return // checked in its own right
		}
		if reason := c.mayAlloc(callee, interproc.MaxDepth); reason != "" {
			report(call.Pos(), "call to "+callee.Key+" allocates ("+reason+")")
		}
	}
}

// conversion flags allocating type conversions: string<->[]byte/[]rune
// and boxing into an interface.
func (c *checker) conversion(info *types.Info, call *ast.CallExpr, to types.Type, report func(pos token.Pos, msg string)) {
	if len(call.Args) != 1 {
		return
	}
	from := info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isStringSlicePair(toU, fromU) || isStringSlicePair(fromU, toU) {
		report(call.Pos(), "string/slice conversion copies and allocates")
		return
	}
	if _, ok := toU.(*types.Interface); ok && boxes(from) {
		report(call.Pos(), "conversion boxes a non-pointer value into an interface")
	}
}

// boxedArgs flags arguments whose static type must be boxed to satisfy
// an interface parameter.
func (c *checker) boxedArgs(info *types.Info, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || !boxes(at) {
			continue
		}
		report(arg.Pos(), "argument boxes a non-pointer value into an interface parameter")
	}
}

// boxes reports whether storing a value of type t in an interface
// requires a heap allocation. Pointer-shaped types (pointers, channels,
// maps, funcs, unsafe.Pointer) live in the interface word directly;
// interfaces re-box nothing; everything else allocates.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		if t.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// mayAlloc reports the first allocating construct reachable from fn
// through resolvable, unannotated callees, or "" when the body is clean.
// Unresolvable calls are assumed clean (the benchmark cross-check is the
// backstop); recursion breaks optimistically.
func (c *checker) mayAlloc(fn *interproc.Func, depth int) string {
	if reason, ok := c.memo[fn.Key]; ok {
		return reason
	}
	if c.inProg[fn.Key] || depth <= 0 || fn.Decl.Body == nil {
		return ""
	}
	c.inProg[fn.Key] = true
	defer delete(c.inProg, fn.Key)

	reason := ""
	pkg := fn.Pkg
	selfAppends := selfAppendCalls(fn.Decl.Body)
	info := pkg.TypesInfo
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		note := func(_ token.Pos, msg string) {
			if reason == "" {
				reason = msg + " in " + fn.Key
			}
		}
		switch x := n.(type) {
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Map, *types.Slice:
				note(x.Pos(), "composite literal")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					note(x.Pos(), "&composite literal")
				}
			}
		case *ast.FuncLit:
			note(x.Pos(), "function literal")
			return false
		case *ast.GoStmt:
			note(x.Pos(), "go statement")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info, x) {
				note(x.Pos(), "string concatenation")
			}
		case *ast.CallExpr:
			c.call(pkg, x, selfAppends, note)
		}
		return reason == ""
	})
	c.memo[fn.Key] = reason
	return reason
}

// selfAppendCalls returns the append calls of the amortised self-append
// form x = append(x, ...) (including the x = append(x[:n], ...) reuse
// idiom) plus the append-helper tail form `return append(b, ...)` where b
// is a plain variable — the caller reassigns the result over the same
// buffer (b = h.appendFoo(b, ...)), so it is self-append one frame up.
// Both are exempt; growth past capacity is the benchmark's to catch.
func selfAppendCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	self := make(map[*ast.CallExpr]bool)
	appendDst := func(e ast.Expr) (ast.Expr, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return nil, false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return nil, false
		}
		dst := call.Args[0]
		if sl, ok := ast.Unparen(dst).(*ast.SliceExpr); ok {
			dst = sl.X // append(buf[:0], ...) reuses buf's storage
		}
		return dst, true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if dst, ok := appendDst(rhs); ok && types.ExprString(st.Lhs[i]) == types.ExprString(dst) {
					self[ast.Unparen(rhs).(*ast.CallExpr)] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if dst, ok := appendDst(res); ok {
					if _, isIdent := ast.Unparen(dst).(*ast.Ident); isIdent {
						self[ast.Unparen(res).(*ast.CallExpr)] = true
					}
				}
			}
		}
		return true
	})
	return self
}

// isCallFun reports whether sel appears as the Fun of some call in body
// (a direct method call, not a method value).
func isCallFun(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			used = true
		}
		return !used
	})
	return used
}

func isString(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringSlicePair(a, b types.Type) bool {
	ab, ok := a.(*types.Basic)
	if !ok || ab.Info()&types.IsString == 0 {
		return false
	}
	_, isSlice := b.(*types.Slice)
	return isSlice
}

func sortedFuncs(m map[string]*interproc.Func) []*interproc.Func {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fns := make([]*interproc.Func, len(keys))
	for i, k := range keys {
		fns[i] = m[k]
	}
	return fns
}
