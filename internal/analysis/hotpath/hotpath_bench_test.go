package hotpath_test

// The annotation↔benchmark registry. Every //lint:hotpath function in the
// repository must have an AllocsPerRun check (and benchmark) in its own
// package proving the steady-state path really allocates nothing — the
// static analyzer bounds what the code can do, the runtime check bounds
// what it does, and this test keeps the two in lockstep: annotating a
// function without adding a covering check fails here, as does deleting a
// function (or its annotation) while leaving a stale registry entry.

import (
	"testing"

	"sci/internal/analysis"
	"sci/internal/analysis/hotpath"
)

// allocChecks maps each annotated function's symbol key to the test that
// holds it to zero allocations. Keep entries sorted by key.
var allocChecks = map[string]string{
	"sci/internal/eventbus.Bus.dispatchRuns":        "internal/eventbus/hotpath_bench_test.go:TestHotpathPublishZeroAlloc",
	"sci/internal/eventbus.Bus.lookupKeys":          "internal/eventbus/hotpath_bench_test.go:TestHotpathLookupKeysZeroAlloc",
	"sci/internal/eventbus.Subscription.enqueueRun": "internal/eventbus/hotpath_bench_test.go:TestHotpathPublishZeroAlloc",
	"sci/internal/eventbus.shard.dropCounter":       "internal/eventbus/hotpath_bench_test.go:TestHotpathDropCounterZeroAlloc",
	"sci/internal/flow.Coalescer.doFlush":           "internal/flow/hotpath_bench_test.go:TestHotpathDoFlushZeroAlloc",
	"sci/internal/wire.Encoder.appendBatch":         "internal/wire/hotpath_bench_test.go:TestHotpathEncodeZeroAlloc",
	"sci/internal/wire.Encoder.appendBinary":        "internal/wire/hotpath_bench_test.go:TestHotpathEncodeZeroAlloc",
	"sci/internal/wire.Encoder.appendEvent":         "internal/wire/hotpath_bench_test.go:TestHotpathEncodeZeroAlloc",
}

func TestAnnotationsMatchAllocChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	pkgs, err := analysis.Load("../../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	annotated := hotpath.Annotated(pkgs)
	seen := make(map[string]bool, len(annotated))
	for _, key := range annotated {
		seen[key] = true
		if _, ok := allocChecks[key]; !ok {
			t.Errorf("//lint:hotpath on %s has no AllocsPerRun check; add one in its package and register it here", key)
		}
	}
	for key, check := range allocChecks {
		if !seen[key] {
			t.Errorf("registry entry %s -> %s is stale: no //lint:hotpath function with that key", key, check)
		}
	}
}
