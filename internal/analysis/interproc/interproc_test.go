package interproc_test

import (
	"go/ast"
	"strings"
	"testing"

	"sci/internal/analysis"
	"sci/internal/analysis/interproc"
)

const (
	ipaPath = "sci/internal/analysis/interproc/testdata/src/ipa"
	ipbPath = "sci/internal/analysis/interproc/testdata/src/ipb"
)

// loadFixtures loads the two cross-package fixture packages through the
// real loader, so edges cross a genuine package (and type-checking
// universe) boundary exactly as they do in a ./... run.
func loadFixtures(t *testing.T) *interproc.Program {
	t.Helper()
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	pkgs, err := analysis.Load(".", []string{"./testdata/src/ipa", "./testdata/src/ipb"})
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	return interproc.Build(pkgs)
}

// funcByKey fails the test when the program is missing key.
func funcByKey(t *testing.T, p *interproc.Program, key string) *interproc.Func {
	t.Helper()
	f := p.Funcs[key]
	if f == nil {
		var have []string
		for k := range p.Funcs {
			have = append(have, k)
		}
		t.Fatalf("program has no %s (have %s)", key, strings.Join(have, ", "))
	}
	return f
}

// firstCall returns the first call expression in f's body.
func firstCall(t *testing.T, f *interproc.Func) *ast.CallExpr {
	t.Helper()
	var call *ast.CallExpr
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && call == nil {
			call = c
		}
		return call == nil
	})
	if call == nil {
		t.Fatalf("no call in %s", f.Key)
	}
	return call
}

func TestBuildIndexesDeclarations(t *testing.T) {
	p := loadFixtures(t)
	for _, key := range []string{
		ipaPath + ".Direct",
		ipaPath + ".T.M",
		ipaPath + ".mutual",
		ipbPath + ".Helper",
		ipbPath + ".leaf",
	} {
		funcByKey(t, p, key)
	}
}

func TestCalleeResolution(t *testing.T) {
	p := loadFixtures(t)
	cases := []struct {
		in   string // function whose first call is resolved
		want string // expected callee key; "" = must not resolve
	}{
		{ipaPath + ".Direct", ipaPath + ".T.M"},      // concrete method
		{ipaPath + ".Cross", ipbPath + ".Helper"},    // cross-package edge
		{ipaPath + ".MethodValue", ipaPath + ".T.M"}, // go t.M()
		{ipaPath + ".MethodExpr", ipaPath + ".T.M"},  // (*T).M(&t)
		{ipaPath + ".Recur", ipaPath + ".mutual"},    // mutual recursion
		{ipaPath + ".Dyn", ""},                       // interface dispatch
		{ipaPath + ".Val", ""},                       // function value
	}
	for _, tc := range cases {
		f := funcByKey(t, p, tc.in)
		got := p.Callee(f.Pkg, firstCall(t, f))
		switch {
		case tc.want == "" && got != nil:
			t.Errorf("%s: first call resolved to %s, want unresolvable", tc.in, got.Key)
		case tc.want != "" && got == nil:
			t.Errorf("%s: first call did not resolve, want %s", tc.in, tc.want)
		case tc.want != "" && got.Key != tc.want:
			t.Errorf("%s: first call resolved to %s, want %s", tc.in, got.Key, tc.want)
		}
	}
}

func TestVisitTerminatesOnRecursion(t *testing.T) {
	p := loadFixtures(t)
	root := funcByKey(t, p, ipaPath+".Recur")
	visits := map[string]int{}
	p.Visit(root, 0, func(f *interproc.Func) { visits[f.Key]++ })
	if visits[ipaPath+".Recur"] != 1 || visits[ipaPath+".mutual"] != 1 {
		t.Fatalf("recursive visit counts = %v, want each exactly once", visits)
	}
}

func TestVisitDepthBound(t *testing.T) {
	p := loadFixtures(t)
	root := funcByKey(t, p, ipaPath+".Cross")

	shallow := map[string]bool{}
	p.Visit(root, 1, func(f *interproc.Func) { shallow[f.Key] = true })
	if !shallow[ipbPath+".Helper"] {
		t.Fatalf("depth 1 should reach ipb.Helper; visited %v", shallow)
	}
	if shallow[ipbPath+".leaf"] {
		t.Fatalf("depth 1 must not reach ipb.leaf; visited %v", shallow)
	}

	deep := map[string]bool{}
	p.Visit(root, 0, func(f *interproc.Func) { deep[f.Key] = true })
	if !deep[ipbPath+".leaf"] {
		t.Fatalf("default depth should reach ipb.leaf; visited %v", deep)
	}
}
