// Package ipb is the far side of the interproc cross-package fixtures.
package ipb

// Helper is called from the ipa fixture across the package boundary.
func Helper() { leaf() }

func leaf() {}
