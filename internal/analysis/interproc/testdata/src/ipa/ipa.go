// Package ipa exercises the interproc resolution cases: direct calls,
// concrete-receiver methods, method values and expressions, mutual
// recursion, cross-package edges, and the unresolvable forms (interface
// dispatch, function values).
package ipa

import "sci/internal/analysis/interproc/testdata/src/ipb"

// T is a concrete receiver type.
type T struct{ n int }

// M is resolvable through values, pointers, method values and method
// expressions.
func (t *T) M() int { return t.n }

// Direct calls a method on a concrete receiver.
func Direct() int {
	t := &T{}
	return t.M()
}

// Cross calls across the package boundary.
func Cross() { ipb.Helper() }

// Recur and mutual recurse into each other; Visit must terminate and see
// each exactly once.
func Recur(n int) {
	if n > 0 {
		mutual(n - 1)
	}
}

func mutual(n int) { Recur(n - 1) }

// I makes Dyn an interface dispatch site: unresolvable.
type I interface{ M() int }

// Dyn must not resolve its call.
func Dyn(i I) int { return i.M() }

// Val must not resolve its call.
func Val(f func()) { f() }

// MethodValue launches a bound method value; the go statement's call must
// resolve to T.M.
func MethodValue() {
	t := &T{}
	go t.M()
}

// MethodExpr calls through a method expression; must resolve to T.M.
func MethodExpr() int {
	t := T{}
	return (*T).M(&t)
}
