// Package interproc is the summary-based interprocedural layer under the
// whole-program analyzers (lockorder, leakcheck, hotpath). It indexes every
// function declaration across the loaded packages under a stable symbol key
// and resolves call sites to those declarations, so an analyzer can follow
// a call edge from eventbus into flow without sharing types.Object identity
// across type-checking universes (each package is checked against export
// data, so the *types.Func for flow.New seen from scinet is a different
// object than the one defined in the loaded flow package — only the key
// matches).
//
// Resolution is deliberately conservative: direct function calls, method
// calls on concrete receivers (through pointers and embedding) and method
// expressions resolve; calls through interface methods, function values and
// built-ins do not (Callee returns nil) and contribute nothing to a
// summary. That is the documented unsoundness boundary — dynamic dispatch
// is invisible — and why the hotpath analyzer pairs with a benchmark
// cross-check and leakcheck with the runtime internal/leak helper.
package interproc

import (
	"go/ast"
	"go/types"

	"sci/internal/analysis"
	"sci/internal/analysis/astutil"
)

// Func is one function declaration somewhere in the program.
type Func struct {
	// Key is the stable symbol name: pkgpath.Name for functions,
	// pkgpath.Recv.Name for methods (pointer receivers are not
	// distinguished from value receivers).
	Key  string
	Decl *ast.FuncDecl
	Pkg  *analysis.Package
}

// Program indexes every function declaration of a loaded package set.
type Program struct {
	Funcs map[string]*Func
	pkgs  []*analysis.Package
}

// MaxDepth is the default call-graph exploration bound. Summaries are
// joined bottom-up with memoisation, so the bound only clips pathological
// chains; the repository's deepest lock-relevant chain is 4 calls.
const MaxDepth = 8

// Key derives the symbol key for a function object, or "" when the object
// cannot anchor a summary (interface methods, builtins, instantiated
// generics resolve to their origin).
func Key(obj *types.Func) string {
	if obj == nil {
		return ""
	}
	obj = obj.Origin()
	pkg := obj.Pkg()
	if pkg == nil {
		return "" // builtin or universe scope
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		named := astutil.Named(recv.Type())
		if named == nil {
			return "" // interface or weird receiver
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			return "" // dynamic dispatch: no single body
		}
		return pkg.Path() + "." + named.Obj().Name() + "." + obj.Name()
	}
	return pkg.Path() + "." + obj.Name()
}

// Build indexes pkgs. Packages type-checked against different universes
// (the real load, a fixture load) join the same program as long as their
// import paths agree.
func Build(pkgs []*analysis.Package) *Program {
	p := &Program{Funcs: make(map[string]*Func), pkgs: pkgs}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				key := Key(obj)
				if key == "" {
					continue
				}
				p.Funcs[key] = &Func{Key: key, Decl: fd, Pkg: pkg}
			}
		}
	}
	return p
}

// Packages returns the indexed package set.
func (p *Program) Packages() []*analysis.Package { return p.pkgs }

// FuncOf returns the indexed entry for a declaration in pkg, or nil.
func (p *Program) FuncOf(pkg *analysis.Package, fd *ast.FuncDecl) *Func {
	obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
	return p.Funcs[Key(obj)]
}

// CalleeObj resolves the called function object of a call expression using
// pkg's type info: a direct function, a method on a concrete receiver, or
// a method expression. nil for interface dispatch, function values,
// builtins and conversions.
func CalleeObj(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := pkg.TypesInfo.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				obj, _ := sel.Obj().(*types.Func)
				return obj
			}
			return nil // field access producing a func value
		}
		// Package-qualified call (flow.New) or type conversion.
		obj, _ := pkg.TypesInfo.Uses[fun.Sel].(*types.Func)
		return obj
	}
	return nil
}

// Callee resolves a call expression to its in-program declaration, or nil
// when the callee is dynamic, external or unresolvable.
func (p *Program) Callee(pkg *analysis.Package, call *ast.CallExpr) *Func {
	return p.Funcs[Key(CalleeObj(pkg, call))]
}

// Visit walks root's body and, depth-first, the body of every statically
// resolvable callee, to maxDepth call edges (≤ 0 means MaxDepth). Each
// function is visited at most once, so recursion terminates; walk receives
// each visited function exactly once, root first.
func (p *Program) Visit(root *Func, maxDepth int, walk func(f *Func)) {
	if maxDepth <= 0 {
		maxDepth = MaxDepth
	}
	seen := map[*Func]bool{}
	var dfs func(f *Func, depth int)
	dfs = func(f *Func, depth int) {
		if f == nil || seen[f] {
			return
		}
		seen[f] = true
		walk(f)
		if depth >= maxDepth {
			return
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				dfs(p.Callee(f.Pkg, call), depth+1)
			}
			return true
		})
	}
	dfs(root, 0)
}
