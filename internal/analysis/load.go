package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs one `go list -export -deps -json` invocation and decodes the
// JSON stream. CGO is disabled so every listed package has a pure-Go build
// (and therefore export data) on machines without a C toolchain.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,ImportMap,Standard,DepOnly,Module,Error",
	}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export data `go list -export`
// reported, through one shared gc importer whose lookup serves the files.
type exportImporter struct {
	exports   map[string]string // import path -> export file
	importMap map[string]string // per-package source path -> resolved path
	gc        types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f := ei.exports[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := ei.importMap[path]; ok {
		path = mapped
	}
	return ei.gc.Import(path)
}

// newInfo returns a types.Info with every map analyzers consume populated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckFiles type-checks parsed files as one package using export data for
// its imports. Shared by the driver and analysistest.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp *exportImporter) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: imp, FakeImportC: true}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Load resolves patterns with the go tool, parses every matched package and
// type-checks it against the toolchain's export data. It never compiles
// dependencies itself — `go list -export` does, through the ordinary build
// cache — so a tree that builds is a tree that loads.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		imp := newExportImporter(fset, exports)
		imp.importMap = p.ImportMap
		pkg, info, err := CheckFiles(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info})
	}
	return out, nil
}

// LoadFixture parses and type-checks one directory of fixture files as a
// standalone package (import path = directory base name). Imports resolve
// against the enclosing module, so fixtures may use the real sci/internal
// packages. Used by analysistest.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, im := range f.Imports {
			if p, err := strconv.Unquote(im.Path.Value); err == nil && p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		args := make([]string, 0, len(importSet))
		for p := range importSet {
			args = append(args, p)
		}
		listed, err := goList(dir, args)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			if p.Error != nil {
				return nil, fmt.Errorf("fixture import %s: %s", p.ImportPath, p.Error.Err)
			}
		}
	}
	imp := newExportImporter(fset, exports)
	path := filepath.Base(dir)
	pkg, info, err := CheckFiles(fset, path, files, imp)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}
