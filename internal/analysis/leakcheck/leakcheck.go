// Package leakcheck enforces goroutine ownership: every `go` statement in
// the core packages must be tied to a lifecycle owner, so no goroutine can
// outlive the Fabric/Host/Bus/Network that launched it. A goroutine counts
// as owned when either
//
//   - the launch is registered: a sync.WaitGroup Add call appears earlier
//     in the launching function (the wg.Add(1)-before-go /
//     defer-wg.Done-inside idiom, waited on a Close path), or
//   - the goroutine body — the function literal, or the statically
//     resolved callee for `go x.loop()` forms, searched transitively
//     through resolvable calls to a bounded depth — parks on something its
//     owner controls: a channel receive (<-done, a select case, or a
//     for-range over a channel, all of which a Close can unblock by
//     closing the channel), or a sync.WaitGroup Done call.
//
// A fire-and-forget goroutine with none of these is a finding: it will
// survive its owner's Close, hold captured state alive, and show up as a
// leak in the runtime cross-check (internal/leak) only when a test happens
// to trip it — the static rule makes the ownership contract hold
// everywhere, not just under test. Genuinely unowned goroutines (a
// self-terminating one-shot helper) carry //lint:allow leakcheck <reason>.
//
// The check is conservative at dynamic dispatch: a body that delegates its
// lifecycle through an interface or function value is invisible and gets
// flagged — annotate those with the reason the lifecycle is sound.
package leakcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"sci/internal/analysis"
	"sci/internal/analysis/astutil"
	"sci/internal/analysis/interproc"
)

// Analyzer is the leakcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:       "leakcheck",
	Doc:        "every go statement in the core packages must be tied to a lifecycle owner (WaitGroup or stop/done channel)",
	Packages:   []string{"eventbus", "flow", "rangesvc", "scinet", "wire", "transport", "overlay"},
	RunProgram: run,
}

// signalDepth bounds how deep the body search follows call edges; the
// repository's deepest ownership chain (go c.deliverLoop → range c.dqWake)
// is one hop.
const signalDepth = 3

func run(prog *analysis.Program) error {
	ip := interproc.Build(prog.Packages)
	for _, pkg := range prog.Packages {
		if !prog.InScope(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFunc(prog, ip, pkg, fd)
			}
		}
	}
	return nil
}

// checkFunc inspects every go statement launched (directly or inside
// nested function literals) by fd.
func checkFunc(prog *analysis.Program, ip *interproc.Program, pkg *analysis.Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if registeredBefore(pkg, fd.Body, gs) {
			return true
		}
		if bodyHasLifecycleSignal(ip, pkg, gs.Call) {
			return true
		}
		prog.Reportf(gs.Pos(), "goroutine has no lifecycle owner: no WaitGroup.Add before launch and its body never parks on a channel or calls WaitGroup.Done; tie it to its owner's Close/WaitGroup (or //lint:allow leakcheck <reason>)")
		return true
	})
}

// registeredBefore reports whether a sync.WaitGroup Add call appears in
// body at a position before the go statement — the launch-side half of the
// Add/Done protocol. Position order stands in for dominance; the idiom
// puts the Add directly above the launch, usually under the same lock.
func registeredBefore(pkg *analysis.Package, body *ast.BlockStmt, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() < gs.Pos() && isWaitGroupCall(pkg.TypesInfo, call, "Add") {
			found = true
		}
		return !found
	})
	return found
}

// bodyHasLifecycleSignal looks for an ownership signal inside the launched
// body: the function literal itself, or the resolved callee of a
// `go x.loop()` form, searched through statically resolvable calls.
func bodyHasLifecycleSignal(ip *interproc.Program, pkg *analysis.Package, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if hasSignal(pkg.TypesInfo, lit.Body) {
			return true
		}
		// The literal may delegate: go func() { c.loop() }().
		return literalDelegates(ip, pkg, lit)
	}
	callee := ip.Callee(pkg, call)
	if callee == nil {
		return false
	}
	return calleeHasSignal(ip, callee, signalDepth)
}

// literalDelegates searches the literal's resolvable callees for a signal.
func literalDelegates(ip *interproc.Program, pkg *analysis.Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if inner, ok := n.(*ast.CallExpr); ok {
			if callee := ip.Callee(pkg, inner); callee != nil && calleeHasSignal(ip, callee, signalDepth) {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeHasSignal reports whether fn or any resolvable callee to depth
// carries an ownership signal.
func calleeHasSignal(ip *interproc.Program, fn *interproc.Func, depth int) bool {
	found := false
	ip.Visit(fn, depth, func(f *interproc.Func) {
		if !found && hasSignal(f.Pkg.TypesInfo, f.Decl.Body) {
			found = true
		}
	})
	return found
}

// hasSignal scans one body for a lifecycle signal: any channel receive
// (unary <-, a select comm case, a range over a channel) or a
// sync.WaitGroup Done call. Nested function literals are included: a
// deferred cleanup closure calling wg.Done counts.
func hasSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := info.Types[x.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupCall(info, x, "Done") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupCall reports whether call is <wg>.<method>() on a
// sync.WaitGroup (through pointers and fields).
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync" && astutil.IsNamed(s.Recv(), "sync", "WaitGroup")
}
