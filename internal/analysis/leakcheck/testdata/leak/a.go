// Package leak fixtures: owned goroutines via WaitGroup registration,
// channel parking (direct, select, range, interprocedural), and the
// unowned fire-and-forget forms that must be flagged.
package leak

import "sync"

// Owner ties goroutines to a lifecycle with a WaitGroup and a done
// channel, matching the repository idiom.
type Owner struct {
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
}

// addBeforeGo registers the goroutine before launch: clean.
func (o *Owner) addBeforeGo() {
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		busy()
	}()
}

// doneInBody carries only the Done half inside the body: clean (the body
// signal alone proves a Wait observes exit).
func (o *Owner) doneInBody() {
	go func() {
		defer o.wg.Done()
		busy()
	}()
}

// rangeOverChannel parks on the work channel; Close unblocks it by
// closing work: clean.
func (o *Owner) rangeOverChannel() {
	go func() {
		for v := range o.work {
			_ = v
		}
	}()
}

// selectOnDone parks on the done channel in a select: clean.
func (o *Owner) selectOnDone() {
	go func() {
		for {
			select {
			case <-o.done:
				return
			case v := <-o.work:
				_ = v
			}
		}
	}()
}

// methodLaunch launches a named method whose body parks: the signal is
// found interprocedurally. Clean.
func (o *Owner) methodLaunch() {
	go o.loop()
}

func (o *Owner) loop() {
	for range o.work {
	}
}

// delegated wraps the parking method in a literal: the literal's callee
// is searched. Clean.
func (o *Owner) delegated() {
	go func() {
		o.loop()
	}()
}

// deepLaunch reaches the signal two hops down, inside signalDepth. Clean.
func (o *Owner) deepLaunch() {
	go o.hop1()
}

func (o *Owner) hop1() { o.hop2() }

func (o *Owner) hop2() { <-o.done }

// fireAndForget has no registration and never parks: flagged.
func (o *Owner) fireAndForget() {
	go func() { // want `goroutine has no lifecycle owner`
		for {
			busy()
		}
	}()
}

// namedNoSignal launches a resolvable callee with no signal: flagged.
func (o *Owner) namedNoSignal() {
	go busy() // want `goroutine has no lifecycle owner`
}

// Runner hides the body behind an interface; the analyzer cannot see the
// lifecycle and must flag it.
type Runner interface{ Run() }

func dynamicLaunch(r Runner) {
	go r.Run() // want `goroutine has no lifecycle owner`
}

// allowed is a genuinely unowned one-shot; the suppression documents why.
func allowed() {
	//lint:allow leakcheck one-shot helper exits on its own after busy returns
	go busy()
}

func busy() {}
