package leakcheck_test

import (
	"testing"

	"sci/internal/analysis/analysistest"
	"sci/internal/analysis/leakcheck"
)

func TestLeakCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	analysistest.Run(t, "testdata/leak", leakcheck.Analyzer)
}
