package analysis_test

import (
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sci/internal/analysis"
	"sci/internal/analysis/batchshare"
	"sci/internal/analysis/clockcheck"
	"sci/internal/analysis/gaugekey"
	"sci/internal/analysis/guardedby"
	"sci/internal/analysis/hotpath"
	"sci/internal/analysis/leakcheck"
	"sci/internal/analysis/lockorder"
)

// suite returns the full analyzer set, the same list cmd/scilint registers.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clockcheck.Analyzer,
		batchshare.Analyzer,
		guardedby.Analyzer,
		gaugekey.Analyzer,
		lockorder.Analyzer,
		leakcheck.Analyzer,
		hotpath.Analyzer,
	}
}

// TestTreeIsLintClean runs the full analyzer suite over the repository the
// same way CI's scilint step does and fails on any diagnostic, so the
// invariants are enforced by `go test ./...` as well as by the dedicated CI
// step. New violations (or stale //lint:allow suppressions) break this test.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	diags, fset, err := analysis.Run("../..", []string{"./..."}, suite())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		t.Errorf("%s:%d:%d: %s (%s)", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
	}
}

// TestSelectFiltersAnalyzers pins the -only flag's selection semantics:
// names resolve in any order, whitespace is tolerated, unknown names fail
// with the known set listed, and an empty selection is rejected.
func TestSelectFiltersAnalyzers(t *testing.T) {
	sel, err := analysis.Select(suite(), "lockorder, leakcheck,hotpath")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, a := range sel {
		names = append(names, a.Name)
	}
	if got := strings.Join(names, ","); got != "lockorder,leakcheck,hotpath" {
		t.Fatalf("Select returned %q, want the three program analyzers", got)
	}
	if _, err := analysis.Select(suite(), "lockodrer"); err == nil ||
		!strings.Contains(err.Error(), "lockorder") {
		t.Fatalf("unknown-name error should list known analyzers, got %v", err)
	}
	if _, err := analysis.Select(suite(), " , "); err == nil {
		t.Fatal("blank selection should be rejected")
	}
}

// TestOnlyProgramAnalyzersCLI runs the actual scilint binary with
// -only=lockorder,leakcheck,hotpath over the repository: the flag plumbing
// (selection, suppression scoping to analyzers that ran, exit status) is
// exercised exactly as CI and developers invoke it.
func TestOnlyProgramAnalyzersCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs cmd/scilint; skipped in -short")
	}
	cmd := exec.Command("go", "run", "./cmd/scilint",
		"-only=lockorder,leakcheck,hotpath", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("scilint -only failed: %v\n%s", err, out)
	}
}

// TestRevertedFixIsCaught reverts one representative fix from the zero-
// finding sweep — ctxtype.HasAncestor's allocation-free boundary check,
// which sits on the publish fan-out under //lint:hotpath via
// dispatchRuns → matchesEvent → MatchesIn — in a scratch copy of the tree
// and verifies the hotpath analyzer turns red again. This is the guard
// that the clean state is held by the analyzers, not by convention.
func TestRevertedFixIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the repository; skipped in -short")
	}
	tmp := t.TempDir()
	copyTree(t, "../..", tmp)

	path := filepath.Join(tmp, "internal/ctxtype/ctxtype.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fixed := `return len(t) > len(anc) && t[len(anc)] == '.' &&
		strings.HasPrefix(string(t), string(anc))`
	reverted := `return strings.HasPrefix(string(t), string(anc)+".")`
	if !strings.Contains(string(src), fixed) {
		t.Fatal("HasAncestor no longer matches the fixed form; update this test alongside it")
	}
	patched := strings.Replace(string(src), fixed, reverted, 1)
	if err := os.WriteFile(path, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	diags, fset, err := analysis.Run(tmp, []string{"./..."}, []*analysis.Analyzer{hotpath.Analyzer})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "hotpath" && strings.Contains(d.Message, "allocates") {
			found = true
			t.Logf("caught: %s: %s", fset.Position(d.Pos), d.Message)
		}
	}
	if !found {
		t.Fatal("reverting the HasAncestor allocation fix produced no hotpath finding")
	}
}

// copyTree replicates the module (go.mod and every .go file outside .git)
// into dst so a test can mutate sources without touching the checkout.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(p, ".go") && d.Name() != "go.mod" && d.Name() != "go.sum" {
			return nil
		}
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(filepath.Join(dst, rel))
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
