package analysis_test

import (
	"testing"

	"sci/internal/analysis"
	"sci/internal/analysis/batchshare"
	"sci/internal/analysis/clockcheck"
	"sci/internal/analysis/gaugekey"
	"sci/internal/analysis/guardedby"
)

// TestTreeIsLintClean runs the full analyzer suite over the repository the
// same way CI's scilint step does and fails on any diagnostic, so the
// invariants are enforced by `go test ./...` as well as by the dedicated CI
// step. New violations (or stale //lint:allow suppressions) break this test.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	analyzers := []*analysis.Analyzer{
		clockcheck.Analyzer,
		batchshare.Analyzer,
		guardedby.Analyzer,
		gaugekey.Analyzer,
	}
	diags, fset, err := analysis.Run("../..", []string{"./..."}, analyzers)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		t.Errorf("%s:%d:%d: %s (%s)", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
	}
}
