// Package gaugekey keeps metric cardinality bounded: every key handed to
// the metrics registry (Counter, Gauge, FloatGauge, Histogram) and every
// key written into a Range's StatsMap render must be either a compile-time
// constant or derived inside a loop over a bounded top-K helper — the
// topSources-style reducers that fold an unbounded per-publisher map into
// at most K named entries plus an "other" bucket.
//
// Without the check, one fmt.Sprintf keyed by GUID in a hot path grows a
// gauge per device the deployment has ever seen: an unbounded metrics
// surface that a stats round trip then ships over the wire (PR 5's
// bounded-gauge contract).
//
// A helper qualifies as bounded when its declaration carries a
// //lint:bounded directive (same package), or its qualified name appears
// in BoundedHelpers (cross-package helpers the analyzer cannot see the
// comments of). Keys the analyzer cannot justify carry a
// //lint:allow gaugekey <reason> suppression stating why the cardinality
// is bounded anyway.
package gaugekey

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sci/internal/analysis"
)

// Analyzer is the gaugekey pass.
var Analyzer = &analysis.Analyzer{
	Name: "gaugekey",
	Doc:  "metrics/StatsMap keys must be constants or derive from a bounded top-K helper",
	Run:  run,
}

// BoundedHelpers lists cross-package bounded reducers by qualified name
// (types.Func.FullName form). Same-package helpers use the //lint:bounded
// directive instead.
var BoundedHelpers = map[string]bool{
	"(*sci/internal/mediator.Mediator).ShardStats": true,
}

// registryMethods are the key-consuming metrics entry points.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "FloatGauge": true, "Histogram": true}

type span struct{ from, to token.Pos }

func run(pass *analysis.Pass) error {
	marked := markedHelpers(pass)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, marked)
		}
	}
	return nil
}

// markedHelpers collects this package's //lint:bounded functions.
func markedHelpers(pass *analysis.Pass) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, "//lint:bounded") {
					if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
						marked[obj] = true
					}
				}
			}
		}
	}
	return marked
}

// boundedCall reports whether call invokes a bounded reducer.
func boundedCall(pass *analysis.Pass, marked map[types.Object]bool, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	return marked[fn] || BoundedHelpers[fn.FullName()]
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, marked map[types.Object]bool) {
	// Spans of `for ... := range <boundedCall>(...)` bodies: keys built
	// inside them inherit the helper's cardinality bound.
	var bounded []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if call, ok := rs.X.(*ast.CallExpr); ok && boundedCall(pass, marked, call) {
			bounded = append(bounded, span{rs.Body.Pos(), rs.Body.End()})
		}
		return true
	})
	keyOK := func(key ast.Expr) bool {
		if tv, ok := pass.TypesInfo.Types[key]; ok && tv.Value != nil {
			return true // compile-time constant
		}
		for _, s := range bounded {
			if key.Pos() >= s.from && key.End() <= s.to {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] || len(x.Args) != 1 {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
				return true
			}
			if !keyOK(x.Args[0]) {
				pass.Reportf(x.Args[0].Pos(), "unbounded %s key: use a constant or derive it in a loop over a bounded top-K helper", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			// StatsMap renders ship every key over the wire: writes into a
			// map[string]float64 inside a StatsMap method follow the same
			// rules.
			if fd.Name.Name != "StatsMap" {
				return true
			}
			for _, lhs := range x.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				mt, ok := pass.TypesInfo.Types[ix.X].Type.Underlying().(*types.Map)
				if !ok {
					continue
				}
				if b, ok := mt.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
					continue
				}
				if b, ok := mt.Elem().Underlying().(*types.Basic); !ok || b.Kind() != types.Float64 {
					continue
				}
				if !keyOK(ix.Index) {
					pass.Reportf(ix.Index.Pos(), "unbounded StatsMap key: use a constant or derive it in a loop over a bounded top-K helper")
				}
			}
		}
		return true
	})
}
