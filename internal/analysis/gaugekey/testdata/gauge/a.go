// Package gaugefix is the gaugekey fixture.
package gaugefix

import (
	"fmt"

	"sci/internal/metrics"
)

const quotaKey = "quota.rejected"

type src struct {
	name string
	n    uint64
}

// topSrc reduces the unbounded attribution map to its top entries plus an
// "other" bucket.
//
//lint:bounded
func topSrc(all map[string]uint64) []src {
	out := make([]src, 0, 8)
	for k, v := range all {
		if len(out) < 8 {
			out = append(out, src{name: k, n: v})
		}
	}
	return out
}

// unboundedKeys mints a gauge per device: the canonical violation.
func unboundedKeys(m *metrics.Registry, device string, n int) {
	m.Gauge("per.device." + device).Set(int64(n))       // want `unbounded Gauge key`
	m.Counter(fmt.Sprintf("dev.%s.seen", device)).Inc() // want `unbounded Counter key`
}

// constKeys are always fine.
func constKeys(m *metrics.Registry) {
	m.Gauge("eventbus.published").Set(1)
	m.FloatGauge(quotaKey).Set(0.5)
	m.Histogram("dispatch." + "latency").Record(1)
}

// boundedLoop derives keys inside a loop over a bounded reducer: at most
// K+1 distinct keys can exist.
func boundedLoop(m *metrics.Registry, all map[string]uint64) {
	for _, e := range topSrc(all) {
		key := "dropped.from.other"
		if e.name != "" {
			key = "dropped.from." + e.name
		}
		m.Gauge(key).Set(int64(e.n))
	}
}

// rawLoop ranges over the raw unbounded map: still a violation.
func rawLoop(m *metrics.Registry, all map[string]uint64) {
	for k, v := range all {
		m.Gauge("dropped.from." + k).Set(int64(v)) // want `unbounded Gauge key`
	}
}

// StatsMap writes follow the same rules inside a StatsMap method.
type rng struct{ all map[string]uint64 }

func (r *rng) StatsMap() map[string]float64 {
	out := map[string]float64{"published": 1}
	out["delivered"] = 2
	for _, e := range topSrc(r.all) {
		out["dropped_from_"+e.name] = float64(e.n)
	}
	for k, v := range r.all {
		out["dropped_from_"+k] = float64(v) // want `unbounded StatsMap key`
	}
	return out
}

// suppressed documents a contributor whose boundedness is contractual.
func suppressed(m *metrics.Registry, external func() map[string]float64) {
	for name, v := range external() {
		m.FloatGauge(name).Set(v) //lint:allow gaugekey stats-source contributors are contractually bounded
	}
}
