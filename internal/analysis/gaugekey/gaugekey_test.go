package gaugekey_test

import (
	"testing"

	"sci/internal/analysis/analysistest"
	"sci/internal/analysis/gaugekey"
)

func TestGaugeKey(t *testing.T) {
	analysistest.Run(t, "testdata/gauge", gaugekey.Analyzer)
}
