// Package astutil holds the small AST/type helpers the scilint analyzers
// share: expression path rendering, leftmost-base resolution and the
// freshly-constructed-local analysis behind every "this object has not
// escaped yet" exemption.
package astutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// BaseIdent returns the leftmost identifier of a selector/index/deref
// chain (the x of x.a.b[i].c), or nil when the chain is rooted in a call
// or literal.
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isFreshExpr reports whether e constructs a new object: a composite
// literal, its address, or new(T).
func isFreshExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if _, ok := x.X.(*ast.CompositeLit); ok {
			return true
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// FreshLocals returns the local objects in body that only ever hold a
// value constructed inside the function (composite literal, &literal or
// new). Writes through such a local cannot race or mutate shared state —
// the object has not escaped the constructor yet — so the mutation
// analyzers exempt them. A local ever assigned anything else is tainted
// and excluded.
func FreshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	tainted := make(map[types.Object]bool)
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if rhs != nil && isFreshExpr(rhs) {
			fresh[obj] = true
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				note(id, rhs)
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				var rhs ast.Expr
				if i < len(st.Values) {
					rhs = st.Values[i]
				}
				if rhs == nil && len(st.Values) == 0 {
					// var nb wire.NativeBatch — zero value, local storage.
					fresh[info.Defs[id]] = true
					continue
				}
				note(id, rhs)
			}
		}
		return true
	})
	for obj := range tainted {
		delete(fresh, obj)
	}
	return fresh
}

// IsFreshBase reports whether the chain rooted at e is based on a fresh
// local per FreshLocals.
func IsFreshBase(info *types.Info, fresh map[types.Object]bool, e ast.Expr) bool {
	id := BaseIdent(e)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && fresh[obj]
}

// Named unwraps pointers and aliases down to the named type of t, or nil.
func Named(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Alias:
			t = types.Unalias(x)
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (through pointers) is the named type
// pkgSuffix.name, where pkgSuffix is matched against the end of the
// defining package's path (so "internal/wire".NativeBatch matches both the
// real module path and a test module's).
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	n := Named(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}
