package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
	used     bool
}

// parseAllows collects every //lint:allow directive in the package,
// reporting malformed ones (an allow without a reason is itself a finding:
// the reason is the audit trail that makes the escape hatch reviewable).
func parseAllows(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed suppression: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				out = append(out, &allowDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					line:     fset.Position(c.Pos()).Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// suppress drops diagnostics covered by an allow directive for the same
// analyzer on the same line or the line directly above, then reports any
// directive that suppressed nothing (stale hatches must not linger once
// the code they excused is gone).
func suppress(fset *token.FileSet, diags []Diagnostic, allows []*allowDirective) []Diagnostic {
	byFileLine := make(map[string]map[int][]*allowDirective)
	for _, a := range allows {
		file := fset.Position(a.pos).Filename
		if byFileLine[file] == nil {
			byFileLine[file] = make(map[int][]*allowDirective)
		}
		byFileLine[file][a.line] = append(byFileLine[file][a.line], a)
	}
	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, line := range []int{p.Line, p.Line - 1} {
			for _, a := range byFileLine[p.Filename][line] {
				if a.analyzer == d.Analyzer {
					a.used = true
					matched = true
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		if !a.used {
			kept = append(kept, Diagnostic{
				Pos:      a.pos,
				Analyzer: "lint",
				Message:  fmt.Sprintf("unused suppression for %s (%s): nothing here trips that analyzer", a.analyzer, a.reason),
			})
		}
	}
	return kept
}

// RunPackage applies the analyzers to one loaded package, honouring
// //lint:allow suppressions. When applyFilter is false the analyzers'
// package filters are ignored (analysistest mode).
func RunPackage(p *Package, analyzers []*Analyzer, applyFilter bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if applyFilter && !a.appliesTo(p.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.TypesInfo,
			report:    collect,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, p.Path, err)
		}
	}
	allows := parseAllows(p.Fset, p.Files, collect)
	diags = suppress(p.Fset, diags, allows)
	sortDiags(p.Fset, diags)
	return diags, nil
}

// Run loads the packages matching patterns (relative to dir; "" = cwd) and
// applies every analyzer, returning the surviving diagnostics sorted by
// position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var all []Diagnostic
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
		diags, err := RunPackage(p, analyzers, true)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, diags...)
	}
	if fset != nil {
		sortDiags(fset, all)
	}
	return all, fset, nil
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
