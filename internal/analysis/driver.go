package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
	used     bool
}

// minAllowReason is the shortest acceptable suppression reason, exclusive:
// a reason of 10 characters or fewer ("TODO", "see above", "perf") is not
// an audit trail, and CI fails on it like any other finding.
const minAllowReason = 10

// parseAllows collects every //lint:allow directive in the package,
// reporting malformed ones (an allow without a reason — or with a
// throwaway one — is itself a finding: the reason is the audit trail that
// makes the escape hatch reviewable).
func parseAllows(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed suppression: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				reason := strings.Join(fields[1:], " ")
				if len(reason) <= minAllowReason {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  fmt.Sprintf("suppression reason %q is too short (> %d chars required): say why the invariant is safe to waive here", reason, minAllowReason),
					})
					continue
				}
				out = append(out, &allowDirective{
					analyzer: fields[0],
					reason:   reason,
					line:     fset.Position(c.Pos()).Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// suppress drops diagnostics covered by an allow directive for the same
// analyzer on the same line or the line directly above, then reports any
// directive that suppressed nothing (stale hatches must not linger once
// the code they excused is gone). Staleness is only judged for analyzers
// in ran: under -only, an allow for an analyzer that did not run proves
// nothing either way.
func suppress(fset *token.FileSet, diags []Diagnostic, allows []*allowDirective, ran map[string]bool) []Diagnostic {
	byFileLine := make(map[string]map[int][]*allowDirective)
	for _, a := range allows {
		file := fset.Position(a.pos).Filename
		if byFileLine[file] == nil {
			byFileLine[file] = make(map[int][]*allowDirective)
		}
		byFileLine[file][a.line] = append(byFileLine[file][a.line], a)
	}
	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, line := range []int{p.Line, p.Line - 1} {
			for _, a := range byFileLine[p.Filename][line] {
				if a.analyzer == d.Analyzer {
					a.used = true
					matched = true
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		if !a.used && ran[a.analyzer] {
			kept = append(kept, Diagnostic{
				Pos:      a.pos,
				Analyzer: "lint",
				Message:  fmt.Sprintf("unused suppression for %s (%s): nothing here trips that analyzer", a.analyzer, a.reason),
			})
		}
	}
	return kept
}

// Stats aggregates one run's finding and suppression counts per analyzer —
// the payload of `scilint -stats` and the `make lint-stats` CI artifact,
// so suppression growth is visible as a trend, not just a diff.
type Stats struct {
	Findings     map[string]int `json:"findings"`     // surviving diagnostics per analyzer
	Suppressions map[string]int `json:"suppressions"` // used //lint:allow directives per analyzer
}

func newStats() *Stats {
	return &Stats{Findings: make(map[string]int), Suppressions: make(map[string]int)}
}

// runPackages applies the analyzers to the loaded packages: per-package
// passes first, then the whole-program passes, then one global suppression
// step (a program-level diagnostic must honour an allow in whichever file
// it lands in).
func runPackages(pkgs []*Package, analyzers []*Analyzer, applyFilter bool) ([]Diagnostic, *Stats, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if applyFilter && !a.appliesTo(p.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.TypesInfo,
				report:    collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, p.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		prog := &Program{
			Analyzer:    a,
			Fset:        fset,
			Packages:    pkgs,
			applyFilter: applyFilter,
			report:      collect,
		}
		if err := a.RunProgram(prog); err != nil {
			return nil, nil, fmt.Errorf("%s (program): %v", a.Name, err)
		}
	}
	var allows []*allowDirective
	for _, p := range pkgs {
		allows = append(allows, parseAllows(p.Fset, p.Files, collect)...)
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	diags = suppress(fset, diags, allows, ran)
	stats := newStats()
	for _, d := range diags {
		stats.Findings[d.Analyzer]++
	}
	for _, a := range allows {
		if a.used {
			stats.Suppressions[a.analyzer]++
		}
	}
	if fset != nil {
		sortDiags(fset, diags)
	}
	return diags, stats, nil
}

// RunPackage applies the analyzers to one loaded package, honouring
// //lint:allow suppressions. When applyFilter is false the analyzers'
// package filters are ignored (analysistest mode). Whole-program analyzers
// run against a program of this single package.
func RunPackage(p *Package, analyzers []*Analyzer, applyFilter bool) ([]Diagnostic, error) {
	diags, _, err := runPackages([]*Package{p}, analyzers, applyFilter)
	return diags, err
}

// Run loads the packages matching patterns (relative to dir; "" = cwd) and
// applies every analyzer, returning the surviving diagnostics sorted by
// position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	diags, fset, _, err := RunWithStats(dir, patterns, analyzers)
	return diags, fset, err
}

// RunWithStats is Run plus the per-analyzer finding/suppression counts.
func RunWithStats(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, *Stats, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, nil, err
	}
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
	}
	diags, stats, err := runPackages(pkgs, analyzers, true)
	if err != nil {
		return nil, nil, nil, err
	}
	return diags, fset, stats, nil
}

// Select filters analyzers by a comma-separated name list (the -only
// flag). An empty list selects everything; an unknown name returns an
// error naming the known analyzers.
func Select(analyzers []*Analyzer, only string) ([]*Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return analyzers, nil
	}
	byName := make(map[string]*Analyzer, len(analyzers))
	var known []string
	for _, a := range analyzers {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	var sel []*Analyzer
	for _, n := range strings.Split(only, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
		sel = append(sel, a)
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("empty -only selection (known: %s)", strings.Join(known, ", "))
	}
	return sel, nil
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
