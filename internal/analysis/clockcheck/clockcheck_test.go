package clockcheck_test

import (
	"testing"

	"sci/internal/analysis/analysistest"
	"sci/internal/analysis/clockcheck"
)

func TestClockCheck(t *testing.T) {
	analysistest.Run(t, "testdata/clock", clockcheck.Analyzer)
}
