package clockfix

import "time"

// Test files are exempt: tests may pin real time for timeouts and
// wall-clock assertions.
func realTimeInTests() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
