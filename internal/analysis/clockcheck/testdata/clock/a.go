// Package clockfix is the clockcheck fixture: raw time reads must
// diagnose, injected-clock use and sanctioned suppressions must not.
package clockfix

import (
	"time"

	"sci/internal/clock"
)

type timed struct {
	clk clock.Clock
}

func (t *timed) deadline(d time.Duration) time.Time {
	return time.Now().Add(d) // want `time\.Now bypasses the injected clock`
}

func (t *timed) wait(d time.Duration) {
	<-time.After(d) // want `time\.After bypasses the injected clock`
}

func (t *timed) nap(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep bypasses the injected clock`
}

func (t *timed) age(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since bypasses the injected clock`
}

func (t *timed) timer(d time.Duration) *time.Timer {
	return time.NewTimer(d) // want `time\.NewTimer bypasses the injected clock`
}

// asValue escapes as a function value, not a call — still a read of the
// system clock.
func (t *timed) asValue() func() time.Time {
	return time.Now // want `time\.Now bypasses the injected clock`
}

// good takes every instant from the injected clock.
func (t *timed) good(d time.Duration) time.Time {
	t.clk.Sleep(d)
	<-t.clk.After(d)
	return t.clk.Now().Add(d)
}

// socketDeadline is the sanctioned wall-clock escape hatch: deadlines
// handed to the kernel must be absolute wall time.
func (t *timed) socketDeadline(d time.Duration) time.Time {
	return time.Now().Add(d) //lint:allow clockcheck kernel socket deadlines are wall-clock absolute
}

// durations and zero values are not clock reads.
func (t *timed) harmless() (time.Duration, time.Time) {
	return 5 * time.Millisecond, time.Time{}
}
