// Package clockcheck enforces the injected-clock invariant: the fabric's
// core packages take time from an injected clock.Clock (internal/clock), so
// tests and the simulation harness can drive timers deterministically.
// Reading the system clock directly reintroduces wall-clock nondeterminism
// — timer-dependent logic that cannot be unit-tested and drifts from the
// simulated world.
//
// Within the core packages (eventbus, flow, rangesvc, scinet, wire,
// transport, overlay) any use of time.Now, time.Since, time.Until,
// time.Sleep, time.After, time.AfterFunc, time.Tick, time.NewTimer or
// time.NewTicker outside _test.go files is a diagnostic. Code that
// genuinely needs the wall clock (e.g. socket deadlines handed to the
// kernel) carries a //lint:allow clockcheck <reason> suppression.
package clockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"sci/internal/analysis"
)

// banned maps the forbidden time package functions to the injected
// replacement named in the diagnostic.
var banned = map[string]string{
	"Now":       "clock.Clock.Now",
	"Since":     "clock.Clock.Now and Sub",
	"Until":     "clock.Clock.Now and Sub",
	"Sleep":     "clock.Clock.Sleep",
	"After":     "clock.Clock.After",
	"AfterFunc": "clock.Clock.AfterFunc",
	"Tick":      "clock.Clock.After in a loop",
	"NewTimer":  "clock.Clock.AfterFunc",
	"NewTicker": "clock.Clock.AfterFunc",
}

// Analyzer is the clockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:     "clockcheck",
	Doc:      "core packages must take time from the injected clock.Clock, never package time directly",
	Packages: []string{"eventbus", "flow", "rangesvc", "scinet", "wire", "transport", "overlay"},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests may pin real time
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if repl, bad := banned[sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(), "time.%s bypasses the injected clock; use %s (internal/clock)", sel.Sel.Name, repl)
			}
			return true
		})
	}
	return nil
}
