// Package analysis is a small, dependency-free reimplementation of the
// go/analysis driver pattern, plus the repository's invariant analyzers.
// It exists because the invariants below are load-bearing for correctness
// and cannot be expressed to go vet: they encode contracts between
// packages (clock injection, batch sharing, lock discipline, metric-key
// cardinality) that only hold if every call site cooperates.
//
// Run the suite with
//
//	go run ./cmd/scilint ./...
//
// or `make lint`. CI runs it as a required step and
// internal/analysis.TestTreeIsLintClean enforces it under `go test ./...`
// as well. Analyzer unit tests use internal/analysis/analysistest with
// `// want "rx"` fixtures under each analyzer's testdata directory.
//
// # Enforced invariants
//
// clockcheck — core packages (eventbus, flow, rangesvc, scinet, wire,
// transport, overlay) must route every time source through the injected
// internal/clock.Clock: time.Now, time.Sleep, time.After, time.Tick,
// time.NewTimer, time.NewTicker, time.Since, time.Until and time.AfterFunc
// are banned outside _test.go files. Rationale: the simulation harness and
// the deterministic tests drive these packages on a clock.Manual; one
// stray wall-clock read silently decouples a timeout from the simulated
// timeline (the FleetDispatchStats deadline bug fixed alongside this
// analyzer). cmd/ and sim entrypoints, which own the real clock, are
// exempt.
//
// batchshare — wire.NativeBatch rides the fan-out path by reference: one
// decoded batch is shared by every local subscriber. Writing through
// Events/Credit, mutating an element in place, or appending into the
// Events slice outside internal/wire's sanctioned clone/materialize
// helpers corrupts a neighbour's view (the copy-on-escape /
// copy-before-mutate contract in wire/doc.go). The analyzer exempts
// batches provably constructed fresh in the current function.
//
// guardedby — struct fields carrying a `// guarded by <mu>` comment may
// only be accessed while that mutex is held, checked intra-procedurally:
// Lock/RLock bring the named lock into the held set, Unlock/RUnlock drop
// it (a deferred Unlock keeps it held to function end), branch bodies
// cannot leak lock state outward, `go` closures start with nothing held,
// and *Locked-suffixed methods assume their receiver's guards. Freshly
// constructed, never-escaped locals are exempt. Rationale: the hot
// structs in eventbus, flow, scinet and rangesvc interleave locked and
// lock-free fields in one struct; the annotation makes the discipline
// machine-checked instead of tribal.
//
// gaugekey — metrics.Registry keys (Counter/Gauge/FloatGauge/Histogram)
// and StatsMap entries must be compile-time constants or flow through a
// bounded top-K reducer (a function marked `//lint:bounded`, or listed in
// gaugekey.BoundedHelpers). Rationale: gauge maps are exported on every
// stats probe; an attacker-influenced or per-entity key (publisher GUIDs,
// source names) makes the registry grow without bound — PR 6's shedding
// work specifically bounds per-source gauges to a top-K.
//
// # Suppressions
//
// A deliberate exception is written as
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line immediately above. The reason is
// mandatory — a bare allow is itself a diagnostic — and an allow that no
// longer suppresses anything is reported as unused so suppressions cannot
// outlive the code they excused.
//
// # Writing a new analyzer
//
// Implement an *analysis.Analyzer whose Run inspects Pass.Files with
// Pass.TypesInfo, report through Pass.Reportf, restrict it to the packages
// whose contract it checks via Packages, add it to cmd/scilint and the
// self-test, and give it positive and negative fixtures under
// testdata/<dir> driven by analysistest.Run.
package analysis
