// Package analysis is a small, dependency-free reimplementation of the
// go/analysis driver pattern, plus the repository's invariant analyzers.
// It exists because the invariants below are load-bearing for correctness
// and cannot be expressed to go vet: they encode contracts between
// packages (clock injection, batch sharing, lock discipline, metric-key
// cardinality) that only hold if every call site cooperates.
//
// Run the suite with
//
//	go run ./cmd/scilint ./...
//
// or `make lint`. CI runs it as a required step and
// internal/analysis.TestTreeIsLintClean enforces it under `go test ./...`
// as well. Analyzer unit tests use internal/analysis/analysistest with
// `// want "rx"` fixtures under each analyzer's testdata directory.
//
// # Enforced invariants
//
// clockcheck — core packages (eventbus, flow, rangesvc, scinet, wire,
// transport, overlay) must route every time source through the injected
// internal/clock.Clock: time.Now, time.Sleep, time.After, time.Tick,
// time.NewTimer, time.NewTicker, time.Since, time.Until and time.AfterFunc
// are banned outside _test.go files. Rationale: the simulation harness and
// the deterministic tests drive these packages on a clock.Manual; one
// stray wall-clock read silently decouples a timeout from the simulated
// timeline (the FleetDispatchStats deadline bug fixed alongside this
// analyzer). cmd/ and sim entrypoints, which own the real clock, are
// exempt.
//
// batchshare — wire.NativeBatch rides the fan-out path by reference: one
// decoded batch is shared by every local subscriber. Writing through
// Events/Credit, mutating an element in place, or appending into the
// Events slice outside internal/wire's sanctioned clone/materialize
// helpers corrupts a neighbour's view (the copy-on-escape /
// copy-before-mutate contract in wire/doc.go). The analyzer exempts
// batches provably constructed fresh in the current function.
//
// guardedby — struct fields carrying a `// guarded by <mu>` comment may
// only be accessed while that mutex is held, checked intra-procedurally:
// Lock/RLock bring the named lock into the held set, Unlock/RUnlock drop
// it (a deferred Unlock keeps it held to function end), branch bodies
// cannot leak lock state outward, `go` closures start with nothing held,
// and *Locked-suffixed methods assume their receiver's guards. Freshly
// constructed, never-escaped locals are exempt. Rationale: the hot
// structs in eventbus, flow, scinet and rangesvc interleave locked and
// lock-free fields in one struct; the annotation makes the discipline
// machine-checked instead of tribal.
//
// gaugekey — metrics.Registry keys (Counter/Gauge/FloatGauge/Histogram)
// and StatsMap entries must be compile-time constants or flow through a
// bounded top-K reducer (a function marked `//lint:bounded`, or listed in
// gaugekey.BoundedHelpers). Rationale: gauge maps are exported on every
// stats probe; an attacker-influenced or per-entity key (publisher GUIDs,
// source names) makes the registry grow without bound — PR 6's shedding
// work specifically bounds per-source gauges to a top-K.
//
// # Whole-program analyzers
//
// The three analyzers below run through Analyzer.RunProgram over every
// loaded package at once, propagating per-function summaries across call
// edges (internal/analysis/interproc keys functions by symbol —
// pkgpath.Recv.Name — so identities survive the per-package export-data
// universes). They report only into packages matched by the load pattern.
//
// lockorder — builds the global lock-ordering graph: an edge a → b is
// recorded whenever a Lock/RLock of b happens while a is held, including
// through call chains (each function's summary lists the locks its body
// and callees may take; function literals are excluded from summaries
// because callbacks run on their own stack later, not at the call site).
// Any cycle in the graph is a potential deadlock and is reported with one
// witness site per edge. The discipline is documented in source with
//
//	//lint:lockorder <a> < <b> <reason>
//
// assertions; a lock acquisition that contradicts a declared order is a
// hard error even when no full cycle exists yet, and an assertion naming
// locks that are never observed is flagged as a typo. The repository's
// declared order catalogue:
//
//	flow.Coalescer.sendMu < flow.Coalescer.mu
//	    doFlush extracts under mu while holding the flush serialisation
//	    lock; the reverse direction would deadlock a timer flush racing a
//	    size flush.
//	flow.Coalescer.sendMu < scinet.Fabric.mu
//	    Coalescer send callbacks run under the flush lock and take f.mu to
//	    route; calling Flush/Touch/Stop/Discard while holding f.mu would
//	    invert it. scinet releases f.mu before every flow entry point.
//	eventbus.Subscription.mu < eventbus.shard.dropMu
//	    drop attribution runs under a subscription's lock; dropMu is a
//	    leaf that takes nothing.
//
// leakcheck — every `go` statement in the core packages must have a
// lifecycle owner: either a sync.WaitGroup.Add precedes the launch in the
// same body, or the goroutine's body provably parks on a channel
// (receive, range, select) or calls WaitGroup.Done — searched through up
// to three call hops when the body delegates to a named function.
// Rationale: an unowned goroutine outlives its owner's Close, and the
// failure mode is a handler running against freed state (the
// Connector.Close/deliverLoop join fixed alongside this analyzer).
// Dynamic dispatch (interface method launches) cannot be proven and is
// flagged; tie the goroutine to an owner or justify with //lint:allow.
// The runtime half is internal/leak.Check, wired into the heaviest race
// suites: it snapshots goroutines at test start and fails the test if
// goroutines born during it are still alive at the end.
//
// hotpath — a function annotated
//
//	//lint:hotpath
//
// in its doc comment must be allocation-free in steady state: composite
// literals, make/new, closures, go statements, string concatenation,
// string↔[]byte conversions, fmt calls, interface boxing of non-pointer
// values, method values outside call position and appends that may grow a
// foreign slice are all flagged, and calls are followed interprocedurally
// (a call into a function whose summary may allocate is reported with the
// full chain). Exempt idioms: self-append (x = append(x, ...)), buffer
// reuse (x = append(x[:0], ...)) and the append-helper tail form (return
// append(b, ...)). Calls into other annotated functions are trusted.
// Every annotation must be backed by a testing.AllocsPerRun check in its
// package, registered in internal/analysis/hotpath's allocChecks table —
// the static analyzer bounds what the code can do, the runtime check
// proves the //lint:allow escapes were justified, and the registry test
// keeps the two in lockstep.
//
// # Suppressions
//
// A deliberate exception is written as
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line immediately above. The reason is
// mandatory and must carry more than ten characters of justification — a
// bare or perfunctory allow is itself a diagnostic — and an allow that no
// longer suppresses anything is reported as unused (scoped to the
// analyzers that actually ran, so -only selections do not misfire) so
// suppressions cannot outlive the code they excused. CI publishes the
// finding and suppression counts per analyzer as the lint-stats artifact
// (`make lint-stats`), so the suppression surface is tracked over time.
//
// # Writing a new analyzer
//
// Implement an *analysis.Analyzer whose Run inspects Pass.Files with
// Pass.TypesInfo, report through Pass.Reportf, restrict it to the packages
// whose contract it checks via Packages, add it to cmd/scilint and the
// self-test, and give it positive and negative fixtures under
// testdata/<dir> driven by analysistest.Run. An invariant that crosses
// package boundaries implements RunProgram instead: it receives every
// loaded package with a shared interproc call-graph view, joins
// per-function summaries bottom-up, and filters reports with
// Program.InScope.
package analysis
