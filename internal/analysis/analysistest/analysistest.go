// Package analysistest runs one analyzer over a fixture directory and
// checks its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of ordinary .go files forming one package;
// imports resolve against the enclosing module, so fixtures exercise
// analyzers against the real sci/internal types. Every diagnostic must be
// matched by a want comment on its line, and every want comment must match
// exactly one diagnostic. //lint:allow suppressions are honoured, so
// negative fixtures prove the escape hatches too.
package analysistest

import (
	"path/filepath"
	"regexp"
	"testing"

	"sci/internal/analysis"
)

// wantRx extracts the quoted regexps of a want comment; both "double" and
// `backtick` quoting are accepted, as in upstream analysistest.
var wantRx = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var quotedRx = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads dir as a fixture package, applies a and compares diagnostics
// with the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadFixture(abs)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a}, false)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRx.FindAllStringSubmatch(m[1], -1) {
					pat := q[1]
					if q[2] != "" {
						pat = q[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.rx)
		}
	}
}
