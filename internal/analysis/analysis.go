// This file defines the analyzer/pass core. The API deliberately mirrors
// golang.org/x/tools/go/analysis so the analyzers under
// internal/analysis/... can be ported to the upstream multichecker
// unchanged if the dependency ever becomes available; only the loader
// (go list -export + the gc export-data importer, see load.go) is local.
// See doc.go for the package documentation and invariant catalogue.

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> <reason> suppression comments.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one package and reports diagnostics via pass.Report.
	// The returned error aborts the whole scilint run (loader faults,
	// not findings).
	Run func(pass *Pass) error
	// RunProgram, when set, runs once per load with every matched package
	// visible, after the per-package Run calls. It is how the
	// interprocedural analyzers (lockorder, leakcheck, hotpath) see call
	// edges that cross package boundaries. Either Run or RunProgram (or
	// both) may be set.
	RunProgram func(prog *Program) error
	// Packages optionally restricts the analyzer to packages whose import
	// path's last element is in the list. The driver applies the filter
	// for Run; RunProgram analyzers receive every package and consult
	// Program.InScope for their reporting scope. analysistest ignores the
	// filter so fixtures can use any package name.
	Packages []string
}

// Program carries every loaded package through one whole-program analyzer.
type Program struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package

	// applyFilter mirrors the driver/analysistest distinction: fixtures
	// ignore the analyzer's package filter.
	applyFilter bool
	report      func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Program) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// InScope reports whether diagnostics rooted in pkg are within the
// analyzer's package filter. Whole-program analyzers see every package (a
// lock edge may cross any boundary) but report only inside their scope.
func (p *Program) InScope(pkg *Package) bool {
	return !p.applyFilter || p.Analyzer.appliesTo(pkg.Path)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report collects diagnostics; installed by the driver.
	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// appliesTo reports whether the analyzer's package filter admits path.
func (a *Analyzer) appliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	for _, p := range a.Packages {
		if p == base {
			return true
		}
	}
	return false
}
