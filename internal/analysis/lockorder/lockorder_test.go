package lockorder_test

import (
	"testing"

	"sci/internal/analysis/analysistest"
	"sci/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	analysistest.Run(t, "testdata/lockorder", lockorder.Analyzer)
}
