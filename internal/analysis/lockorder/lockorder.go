// Package lockorder builds a whole-program lock-ordering graph and reports
// potential deadlocks: an edge A → B is recorded whenever an instance of
// lock B is acquired while an instance of lock A is held, directly or
// through any chain of statically resolvable calls, and any cycle in that
// graph is a lock-ordering inversion two goroutines can interleave into a
// deadlock.
//
// Locks are identified by declaration, not by instance: the key for a
// mutex field is pkg.Type.field (flow.Coalescer.mu), for a package-level
// mutex pkg.var. Two instances of the same lock therefore merge, which
// makes the analysis instance-insensitive: acquiring an instance of a lock
// while an instance of the same lock is held is itself reported (it is a
// self-deadlock unless instances are strictly ordered, which the analyzer
// cannot prove — suppress with //lint:allow lockorder <reason> stating the
// instance order).
//
// Held sets propagate through call edges via per-function summaries: each
// function's transitively-acquired lock set (bounded depth, memoised) is
// joined into edges at every call site made while locks are held. Calls
// through interfaces and function values contribute nothing — the
// documented conservative boundary; callback-driven inversions are out of
// scope (and the reason Send-style callbacks must not re-enter their
// owner, see flow.Config.Send).
//
// Intended orderings are documented in-code as
//
//	//lint:lockorder <a> < <b> <reason>
//
// e.g. //lint:lockorder flow.Coalescer.sendMu < flow.Coalescer.mu flushes
// take the serialiser first. An observed edge that contradicts a declared
// ordering is a hard error even when no full cycle is visible, so the
// documented order is enforced, not advisory. Assertions naming locks the
// program never acquires are reported (typo guard).
//
// An //lint:allow lockorder <reason> on the line of the offending
// acquisition (or call) removes that edge from the graph before cycle
// detection, so one blessed edge does not keep an entire cycle reported.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sci/internal/analysis"
	"sci/internal/analysis/astutil"
	"sci/internal/analysis/interproc"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "lock acquisitions must agree on one global order; cycles in the acquired-while-holding graph are potential deadlocks",
	RunProgram: run,
}

// edge is one observed acquired-while-holding pair, with the site that
// created it (for diagnostics and for allow-based edge removal).
type edge struct {
	from, to string
	pos      token.Pos // the acquisition (or call) that added `to`
	heldAt   token.Pos // where `from` was acquired
	via      string    // non-empty: the callee chain that introduced the edge
	pkg      *analysis.Package
}

// assertion is one parsed //lint:lockorder a < b reason directive.
type assertion struct {
	before, after string
	reason        string
	pos           token.Pos
	pkg           *analysis.Package
}

type checker struct {
	prog    *analysis.Program
	ip      *interproc.Program
	edges   []edge
	touched map[*interproc.Func][]string // memoised transitive acquisition sets
	inProg  map[*interproc.Func]bool     // recursion guard for touched
	allowed map[string]map[int]bool      // file → lines carrying //lint:allow lockorder
}

func run(prog *analysis.Program) error {
	c := &checker{
		prog:    prog,
		ip:      interproc.Build(prog.Packages),
		touched: make(map[*interproc.Func][]string),
		inProg:  make(map[*interproc.Func]bool),
		allowed: make(map[string]map[int]bool),
	}
	c.collectAllows()
	asserts := c.collectAssertions()
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					c.function(pkg, fd)
				}
			}
		}
	}
	c.report(asserts)
	return nil
}

// collectAllows indexes //lint:allow lockorder lines so blessed edges can
// be removed before cycle detection. Each removal reports a diagnostic on
// the allow's own line, which the driver's suppression step then eats and
// counts — keeping the allow "used" without surfacing anything.
func (c *checker) collectAllows() {
	for _, pkg := range c.prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					rest, ok := strings.CutPrefix(cm.Text, "//lint:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 || fields[0] != "lockorder" {
						continue
					}
					p := pkg.Fset.Position(cm.Pos())
					if c.allowed[p.Filename] == nil {
						c.allowed[p.Filename] = make(map[int]bool)
					}
					c.allowed[p.Filename][p.Line] = true
				}
			}
		}
	}
}

// isAllowed reports whether pos sits on (or directly under) an
// //lint:allow lockorder line.
func (c *checker) isAllowed(pkg *analysis.Package, pos token.Pos) bool {
	p := pkg.Fset.Position(pos)
	lines := c.allowed[p.Filename]
	return lines != nil && (lines[p.Line] || lines[p.Line-1])
}

var assertRx = "//lint:lockorder"

// collectAssertions parses every //lint:lockorder a < b reason directive.
func (c *checker) collectAssertions() []assertion {
	var out []assertion
	for _, pkg := range c.prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					rest, ok := strings.CutPrefix(cm.Text, assertRx)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 4 || fields[1] != "<" {
						c.prog.Reportf(cm.Pos(), "malformed assertion: want //lint:lockorder <a> < <b> <reason>")
						continue
					}
					out = append(out, assertion{
						before: fields[0],
						after:  fields[2],
						reason: strings.Join(fields[3:], " "),
						pos:    cm.Pos(),
						pkg:    pkg,
					})
				}
			}
		}
	}
	return out
}

// lockKey renders the declaration-level identity of the mutex behind expr,
// or "" when the expression does not denote a trackable lock (a local
// mutex variable, an unresolvable chain).
func lockKey(pkg *analysis.Package, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch x := expr.(type) {
	case *ast.Ident:
		obj, _ := pkg.TypesInfo.Uses[x].(*types.Var)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.IsField() {
			// Embedded mutex promoted through a receiver named like the
			// field: fall through to field handling via type.
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return pkgBase(obj.Pkg().Path()) + "." + obj.Name()
		}
		return "" // local mutex: instances are untrackable
	case *ast.SelectorExpr:
		sel, ok := pkg.TypesInfo.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return ""
		}
		named := astutil.Named(sel.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return pkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + x.Sel.Name
	}
	return ""
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// lockOp decodes a call as a lock operation: the lock key, whether it
// acquires, and whether it was a mutex Lock/Unlock at all. Both direct
// fields (c.mu.Lock()) and embedded mutexes (t.Lock()) are handled.
func lockOp(pkg *analysis.Package, call *ast.CallExpr) (key string, acquires, isOp bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquires = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	// The receiver must be (or embed) a sync mutex for this to be a lock
	// operation rather than a same-named method.
	s, ok := pkg.TypesInfo.Selections[sel]
	if !ok {
		return "", false, false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	recv := ast.Unparen(sel.X)
	if key = lockKey(pkg, recv); key != "" {
		return key, acquires, true
	}
	// t.Lock() on a type embedding sync.Mutex: identify the lock as the
	// embedded field of the receiver's named type.
	if named := astutil.Named(pkg.TypesInfo.Types[recv].Type); named != nil && named.Obj().Pkg() != nil {
		embedded := "Mutex"
		if strings.HasPrefix(sel.Sel.Name, "R") {
			embedded = "RWMutex"
		}
		return pkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + embedded, acquires, true
	}
	return "", acquires, true // untrackable lock; still a lock op
}

// acquisition records where a held lock was taken.
type acquisition struct {
	key string
	pos token.Pos
}

type heldSet []acquisition

func (h heldSet) clone() heldSet { return append(heldSet(nil), h...) }

func (h heldSet) has(key string) bool {
	for _, a := range h {
		if a.key == key {
			return true
		}
	}
	return false
}

// function simulates one function body with an empty entry held set,
// recording edges. Caller-held context is accounted for at call sites via
// the callee's transitive acquisition summary, so an empty entry set here
// is not a loss of coverage — every function is simulated as a root.
func (c *checker) function(pkg *analysis.Package, fd *ast.FuncDecl) {
	c.stmts(pkg, fd.Body.List, heldSet{})
}

// addEdge records from→to unless the creating site is blessed by an
// //lint:allow lockorder line.
func (c *checker) addEdge(pkg *analysis.Package, from acquisition, to string, pos token.Pos, via string) {
	if c.isAllowed(pkg, pos) {
		// Report on the allow's line so the driver marks it used, then
		// suppresses the diagnostic; the edge itself is dropped.
		c.prog.Reportf(pos, "edge %s -> %s blessed by suppression", from.key, to)
		return
	}
	c.edges = append(c.edges, edge{from: from.key, to: to, pos: pos, heldAt: from.pos, via: via, pkg: pkg})
}

// acquire applies one acquisition: edges from everything held, including
// the instance-insensitive self-edge, then joins the lock into held.
func (c *checker) acquire(pkg *analysis.Package, held *heldSet, key string, pos token.Pos) {
	for _, h := range *held {
		c.addEdge(pkg, h, key, pos, "")
	}
	if !held.has(key) {
		*held = append(*held, acquisition{key: key, pos: pos})
	}
}

// call applies a call expression's effect: direct lock operations mutate
// held; anything else resolved in-program joins its transitive acquisition
// set as edges from every held lock.
func (c *checker) call(pkg *analysis.Package, call *ast.CallExpr, held *heldSet) {
	if key, acquires, isOp := lockOp(pkg, call); isOp {
		if key == "" {
			return
		}
		if acquires {
			c.acquire(pkg, held, key, call.Pos())
			return
		}
		for i, a := range *held {
			if a.key == key {
				*held = append((*held)[:i], (*held)[i+1:]...)
				break
			}
		}
		return
	}
	if len(*held) == 0 {
		return
	}
	callee := c.ip.Callee(pkg, call)
	if callee == nil {
		return
	}
	for _, lk := range c.touchedLocks(callee, 0) {
		for _, h := range *held {
			// h.key == lk included: calling something that reacquires a
			// held lock is the re-entrant self-deadlock, Go mutexes are
			// not recursive.
			c.addEdge(pkg, h, lk, call.Pos(), callee.Key)
		}
	}
}

// touchedLocks returns the set of lock keys fn may acquire, transitively
// through statically resolvable calls, memoised and bounded.
func (c *checker) touchedLocks(fn *interproc.Func, depth int) []string {
	if got, ok := c.touched[fn]; ok {
		return got
	}
	if c.inProg[fn] || depth > interproc.MaxDepth {
		return nil // recursion cut: the cycle's other members contribute theirs
	}
	c.inProg[fn] = true
	set := map[string]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A literal defined here (a timer callback, a Send closure)
			// does not run at call time; when it eventually runs it starts
			// on its own stack with nothing held.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acquires, isOp := lockOp(fn.Pkg, call); isOp {
			if acquires && key != "" {
				set[key] = true
			}
			return true
		}
		if callee := c.ip.Callee(fn.Pkg, call); callee != nil {
			for _, k := range c.touchedLocks(callee, depth+1) {
				set[k] = true
			}
		}
		return true
	})
	delete(c.inProg, fn)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	c.touched[fn] = out
	return out
}

// stmts walks straight-line statements, threading the held set. The
// control-flow approximation matches guardedby: branch bodies run on a
// clone, loop bodies run twice (so a lock still held after iteration N is
// seen by iteration N+1's acquisitions — the defer-in-loop trap), deferred
// unlocks are ignored (held to return).
func (c *checker) stmts(pkg *analysis.Package, list []ast.Stmt, held heldSet) heldSet {
	for _, s := range list {
		held = c.stmt(pkg, s, held)
	}
	return held
}

func (c *checker) stmt(pkg *analysis.Package, s ast.Stmt, held heldSet) heldSet {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		c.exprCalls(pkg, st.X, &held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			c.exprCalls(pkg, e, &held)
		}
		for _, e := range st.Lhs {
			c.exprCalls(pkg, e, &held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.exprCalls(pkg, v, &held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			c.exprCalls(pkg, e, &held)
		}
	case *ast.IncDecStmt:
		c.exprCalls(pkg, st.X, &held)
	case *ast.SendStmt:
		c.exprCalls(pkg, st.Chan, &held)
		c.exprCalls(pkg, st.Value, &held)
	case *ast.IfStmt:
		held = c.stmt(pkg, st.Init, held)
		c.exprCalls(pkg, st.Cond, &held)
		c.stmts(pkg, st.Body.List, held.clone())
		if st.Else != nil {
			c.stmt(pkg, st.Else, held.clone())
		}
	case *ast.ForStmt:
		held = c.stmt(pkg, st.Init, held)
		if st.Cond != nil {
			c.exprCalls(pkg, st.Cond, &held)
		}
		body := held.clone()
		for range 2 { // twice: expose carried-over state to iteration 2
			body = c.stmts(pkg, st.Body.List, body)
			if st.Post != nil {
				body = c.stmt(pkg, st.Post, body)
			}
		}
	case *ast.RangeStmt:
		c.exprCalls(pkg, st.X, &held)
		body := held.clone()
		for range 2 {
			body = c.stmts(pkg, st.Body.List, body)
		}
	case *ast.SwitchStmt:
		held = c.stmt(pkg, st.Init, held)
		if st.Tag != nil {
			c.exprCalls(pkg, st.Tag, &held)
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				h := held.clone()
				for _, e := range clause.List {
					c.exprCalls(pkg, e, &h)
				}
				c.stmts(pkg, clause.Body, h)
			}
		}
	case *ast.TypeSwitchStmt:
		held = c.stmt(pkg, st.Init, held)
		held = c.stmt(pkg, st.Assign, held)
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.stmts(pkg, clause.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				h := held.clone()
				h = c.stmt(pkg, clause.Comm, h)
				c.stmts(pkg, clause.Body, h)
			}
		}
	case *ast.BlockStmt:
		held = c.stmts(pkg, st.List, held)
	case *ast.LabeledStmt:
		held = c.stmt(pkg, st.Stmt, held)
	case *ast.DeferStmt:
		if _, _, isOp := lockOp(pkg, st.Call); isOp {
			return held // defer mu.Unlock(): held to return
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range st.Call.Args {
				c.exprCalls(pkg, a, &held)
			}
			c.stmts(pkg, lit.Body.List, held.clone())
			return held
		}
		h := held.clone()
		c.call(pkg, st.Call, &h)
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			c.exprCalls(pkg, a, &held)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(pkg, lit.Body.List, heldSet{}) // new goroutine: nothing held
		}
	}
	return held
}

// exprCalls finds calls inside e in evaluation order (approximately:
// Inspect order) and applies them to held. Function literals are analyzed
// with an empty held set — they run elsewhere — except that arguments are
// walked in the current context first.
func (c *checker) exprCalls(pkg *analysis.Package, e ast.Expr, held *heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.stmts(pkg, x.Body.List, heldSet{})
			return false
		case *ast.CallExpr:
			// Arguments first (inner calls happen before the outer one).
			for _, a := range x.Args {
				c.exprCalls(pkg, a, held)
			}
			if fun, ok := x.Fun.(*ast.SelectorExpr); ok {
				c.exprCalls(pkg, fun.X, held)
			}
			c.call(pkg, x, held)
			return false
		}
		return true
	})
}

// report runs assertion checks and cycle detection over the edge graph.
func (c *checker) report(asserts []assertion) {
	// Deduplicate edges per (from,to), keeping the first site.
	type pair struct{ from, to string }
	firstEdge := make(map[pair]edge)
	adj := make(map[string][]string)
	observed := make(map[string]bool) // lock keys seen anywhere
	for _, e := range c.edges {
		observed[e.from], observed[e.to] = true, true
		p := pair{e.from, e.to}
		if _, ok := firstEdge[p]; !ok {
			firstEdge[p] = e
			adj[e.from] = append(adj[e.from], e.to)
		}
	}

	// Assertion violations are hard errors even without a visible cycle.
	declared := make(map[pair]assertion)
	for _, a := range asserts {
		declared[pair{a.before, a.after}] = a
	}
	for _, a := range asserts {
		if !observed[a.before] && !observed[a.after] {
			// Neither side is ever acquired-while-held: likely a typo in
			// the key (the catalogue must track the code).
			if !c.anyAcquisition(a.before) && !c.anyAcquisition(a.after) {
				c.prog.Reportf(a.pos, "lockorder assertion names locks never acquired in the program: %s, %s", a.before, a.after)
			}
		}
		if rev, ok := declared[pair{a.after, a.before}]; ok && a.before < a.after {
			c.prog.Reportf(a.pos, "contradictory lockorder assertions: %s < %s here, but %s < %s at %s",
				a.before, a.after, rev.before, rev.after, c.prog.Fset.Position(rev.pos))
		}
	}
	violated := make(map[pair]bool)
	for p, e := range firstEdge {
		if a, ok := declared[pair{p.to, p.from}]; ok {
			violated[p] = true
			c.diagEdge(e, fmt.Sprintf("violates the documented order %q < %q (%s, declared at %s)",
				a.before, a.after, a.reason, c.prog.Fset.Position(a.pos)))
		}
	}

	// Cycles: Tarjan SCC over the deduplicated graph; every edge inside a
	// multi-node SCC (or a self-loop) is part of at least one cycle.
	inCycle := sccCyclic(adj)
	var cyclic []edge
	for p, e := range firstEdge {
		if p.from == p.to || (inCycle[p.from] != 0 && inCycle[p.from] == inCycle[p.to]) {
			if violated[p] {
				continue // already a hard error above
			}
			if _, ok := declared[p]; ok {
				// The documented direction: report only its partner(s).
				continue
			}
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool { return cyclic[i].pos < cyclic[j].pos })
	for _, e := range cyclic {
		if e.from == e.to {
			c.diagEdge(e, "already held (instance-insensitive self-deadlock unless instances are strictly ordered)")
			continue
		}
		c.diagEdge(e, fmt.Sprintf("completes a lock-order cycle (some path acquires %s while holding %s)", e.from, e.to))
	}
}

// diagEdge renders one edge finding at its creating site.
func (c *checker) diagEdge(e edge, why string) {
	where := ""
	if e.via != "" {
		where = fmt.Sprintf(" via call to %s", e.via)
	}
	c.prog.Reportf(e.pos, "%s acquired%s while holding %s (held since %s): %s",
		e.to, where, e.from, c.prog.Fset.Position(e.heldAt), why)
}

// anyAcquisition reports whether key is ever acquired anywhere (even with
// nothing held), used to validate assertions against reality.
func (c *checker) anyAcquisition(key string) bool {
	for _, pkg := range c.prog.Packages {
		for _, f := range pkg.Files {
			found := false
			ast.Inspect(f, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if k, acq, isOp := lockOp(pkg, call); isOp && acq && k == key {
						found = true
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// sccCyclic returns a component id per node for nodes in multi-node
// strongly connected components (0 = not in one), via iterative Tarjan.
func sccCyclic(adj map[string][]string) map[string]int {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	comp := make(map[string]int)
	next, compID := 1, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	var nodes []string
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	for _, v := range nodes {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	return comp
}
