// Package lockorder fixtures: inversions direct and through calls,
// documented-order violations, defer-in-loop self-deadlock, goroutine
// boundary resets, embedded mutexes, blessed edges, assertion hygiene.
package lockorder

import "sync"

// A and B carry the documented order: A before B.
//
//lint:lockorder lockorder.A.mu < lockorder.B.mu registry feeds the index, so its lock is outermost
type A struct{ mu sync.Mutex }

// B is the inner lock of the documented pair.
type B struct{ mu sync.Mutex }

var a A
var b B

// ab follows the documented order: clean.
func ab() {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba inverts it: hard error against the declared assertion.
func ba() {
	b.mu.Lock()
	a.mu.Lock() // want `violates the documented order "lockorder.A.mu" < "lockorder.B.mu"`
	a.mu.Unlock()
	b.mu.Unlock()
}

// C and D invert through call edges, with no declared order: both
// directions report as a cycle.
type C struct{ mu sync.Mutex }

// D is the partner lock of the undocumented cycle.
type D struct{ mu sync.Mutex }

var cv C
var dv D

func lockD() {
	dv.mu.Lock()
	dv.mu.Unlock()
}

func lockC() {
	cv.mu.Lock()
	cv.mu.Unlock()
}

func cThenD() {
	cv.mu.Lock()
	lockD() // want `lockorder.D.mu acquired via call to lockorder.lockD while holding lockorder.C.mu`
	cv.mu.Unlock()
}

func dThenC() {
	dv.mu.Lock()
	lockC() // want `lockorder.C.mu acquired via call to lockorder.lockC while holding lockorder.D.mu`
	dv.mu.Unlock()
}

// E: defer-in-loop keeps iteration N's lock held into iteration N+1 — the
// second acquisition self-deadlocks.
type E struct{ mu sync.Mutex }

var ev E

func deferInLoop(n int) {
	for i := 0; i < n; i++ {
		ev.mu.Lock() // want `already held`
		defer ev.mu.Unlock()
	}
}

// E2: the same shape with an in-loop unlock is clean.
type E2 struct{ mu sync.Mutex }

var ev2 E2

func unlockInLoop(n int) {
	for i := 0; i < n; i++ {
		ev2.mu.Lock()
		ev2.mu.Unlock()
	}
}

// C2: recursing while holding the lock reacquires it on the next frame.
type C2 struct{ mu sync.Mutex }

var cv2 C2

func recurHolding(n int) {
	if n == 0 {
		return
	}
	cv2.mu.Lock()
	recurHolding(n - 1) // want `lockorder.C2.mu acquired via call to lockorder.recurHolding while holding lockorder.C2.mu`
	cv2.mu.Unlock()
}

// recurReleased recurses after releasing: clean.
func recurReleased(n int) {
	if n == 0 {
		return
	}
	cv2.mu.Lock()
	cv2.mu.Unlock()
	recurReleased(n - 1)
}

// F/G: an inversion whose minority direction is blessed by a suppression —
// the edge is removed before cycle detection, so the majority direction
// stays clean too.
type F struct{ mu sync.Mutex }

// G pairs with F for the blessed-edge case.
type G struct{ mu sync.Mutex }

var fv F
var gv G

func fg() {
	fv.mu.Lock()
	gv.mu.Lock()
	gv.mu.Unlock()
	fv.mu.Unlock()
}

func gf() {
	gv.mu.Lock()
	//lint:allow lockorder fixture: instances are disjoint by construction here
	fv.mu.Lock()
	fv.mu.Unlock()
	gv.mu.Unlock()
}

// goResets: a goroutine body starts with an empty held set — launching
// while holding A and locking B inside is not an A→B…B→A inversion source.
func goResets() {
	b.mu.Lock()
	go func() {
		a.mu.Lock() // clean: new goroutine holds nothing
		a.mu.Unlock()
	}()
	b.mu.Unlock()
}

// Emb embeds its mutex; the lock key is the embedded field.
type Emb struct{ sync.Mutex }

var emb Emb

func embThenA() {
	emb.Lock()
	a.mu.Lock() // clean: Emb.Mutex → A.mu is acyclic
	a.mu.Unlock()
	emb.Unlock()
}

// Assertion hygiene: unknown keys and malformed directives are findings.
//
//lint:lockorder lockorder.Zzz.mu < lockorder.Yyy.mu stale catalogue entry // want `lockorder assertion names locks never acquired`
//lint:lockorder broken directive // want `malformed assertion`
func hygieneAnchor() {}
