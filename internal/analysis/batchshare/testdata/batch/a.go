// Package batchfix is the batchshare fixture: mutating a NativeBatch that
// may have escaped must diagnose; the fresh-clone idiom must not.
package batchfix

import (
	"sci/internal/event"
	"sci/internal/wire"
)

// stampRange rewrites events in place — the canonical violation: the batch
// arrived on a Message and may be shared with other receivers.
func stampRange(m wire.Message, e event.Event) {
	m.Batch.Events[0] = e                      // want `write through m\.Batch\.Events mutates a shared NativeBatch`
	m.Batch.Events[1].Seq = 7                  // want `write through m\.Batch\.Events mutates a shared NativeBatch`
	m.Batch.Events[2].Seq++                    // want `write through m\.Batch\.Events mutates a shared NativeBatch`
	m.Batch.Credit = nil                       // want `write through m\.Batch\.Credit mutates a shared NativeBatch`
	m.Batch.Events = append(m.Batch.Events, e) // want `write through m\.Batch\.Events mutates a shared NativeBatch` `append to m\.Batch\.Events may grow into a shared NativeBatch`
	_ = append(m.Batch.Events, e)              // want `append to m\.Batch\.Events may grow into a shared NativeBatch`
}

// reslice through a parameter batch is equally shared.
func truncate(nb *wire.NativeBatch) {
	nb.Events = nb.Events[:0] // want `write through nb\.Events mutates a shared NativeBatch`
}

// cloneAndFilter is the sanctioned copy-on-escape idiom: a freshly
// constructed batch is private until attached, so building it is clean.
func cloneAndFilter(m wire.Message, keep func(event.Event) bool) *wire.NativeBatch {
	out := &wire.NativeBatch{Events: make([]event.Event, 0, len(m.Batch.Events))}
	for _, e := range m.Batch.Events {
		if keep(e) {
			out.Events = append(out.Events, e)
		}
	}
	out.Credit = m.Batch.Credit
	return out
}

// zeroValueLocal is private local storage until it escapes.
func zeroValueLocal(events []event.Event) wire.NativeBatch {
	var nb wire.NativeBatch
	nb.Events = events
	return nb
}

// attach sets the Batch pointer itself — handing over a batch is the
// contract, not a violation of it.
func attach(m *wire.Message, nb *wire.NativeBatch) {
	m.Batch = nb
}

// reads never diagnose.
func reads(m wire.Message) int {
	n := 0
	for _, e := range m.Batch.Events {
		n += int(e.Seq)
	}
	dst := make([]event.Event, len(m.Batch.Events))
	copy(dst, m.Batch.Events)
	return n
}

// suppressed documents a reviewed exception.
func suppressed(nb *wire.NativeBatch) {
	nb.Credit = nil //lint:allow batchshare single-owner batch never attached to a message
}
