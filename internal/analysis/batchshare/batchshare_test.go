package batchshare_test

import (
	"testing"

	"sci/internal/analysis/analysistest"
	"sci/internal/analysis/batchshare"
)

func TestBatchShare(t *testing.T) {
	analysistest.Run(t, "testdata/batch", batchshare.Analyzer)
}
