// Package batchshare enforces the PR 7 native-batch sharing contract
// (internal/wire/doc.go): a wire.NativeBatch attached to a Message is a
// shared read-only pointer — the memory transport delivers it
// pointer-identical, possibly to several receivers — so once a batch may
// have escaped, its Events slice must be neither reassigned, appended to
// nor mutated element-wise. Copy on escape, copy before mutate.
//
// The analyzer flags, outside the wire package itself (which owns the
// codec and the sanctioned clone/materialize helpers):
//
//   - assignment to the Events or Credit field of a NativeBatch
//   - assignment through the Events slice (nb.Events[i] = e,
//     nb.Events[i].Seq = 7, ++/--, op-assign)
//   - append whose first argument is a NativeBatch's Events slice
//
// A batch the function itself constructed (nb := &wire.NativeBatch{...},
// new(wire.NativeBatch), or a zero-valued local) has not escaped yet and
// is exempt — that exemption is exactly the sanctioned clone idiom: build
// a fresh batch, then attach it. Anything subtler carries a
// //lint:allow batchshare <reason> suppression.
package batchshare

import (
	"go/ast"
	"go/types"
	"strings"

	"sci/internal/analysis"
	"sci/internal/analysis/astutil"
)

// Analyzer is the batchshare pass.
var Analyzer = &analysis.Analyzer{
	Name: "batchshare",
	Doc:  "an escaped wire.NativeBatch is shared read-only: no field writes, element mutation or append outside the clone helpers",
	Run:  run,
}

// batchField reports whether sel selects the Events or Credit field of a
// wire.NativeBatch.
func batchField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Events" && sel.Sel.Name != "Credit" {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return astutil.IsNamed(s.Recv(), "internal/wire", "NativeBatch")
}

// writesThroughBatch reports the innermost NativeBatch field selector an
// assignment target writes through, or nil: nb.Events, nb.Events[i],
// nb.Events[i].Seq, m.Batch.Credit all qualify.
func writesThroughBatch(pass *analysis.Pass, lhs ast.Expr) *ast.SelectorExpr {
	for {
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			if batchField(pass, x) {
				return x
			}
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return nil
		}
	}
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/wire") {
		return nil // the codec owns its batches; its contract is the doc + fuzz suite
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd.Body)
			return false
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	fresh := astutil.FreshLocals(pass.TypesInfo, body)
	exempt := func(e ast.Expr) bool { return astutil.IsFreshBase(pass.TypesInfo, fresh, e) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if sel := writesThroughBatch(pass, lhs); sel != nil && !exempt(sel) {
					pass.Reportf(lhs.Pos(), "write through %s.%s mutates a shared NativeBatch; copy before mutate (wire/doc.go)",
						render(sel.X), sel.Sel.Name)
				}
			}
		case *ast.IncDecStmt:
			if sel := writesThroughBatch(pass, st.X); sel != nil && !exempt(sel) {
				pass.Reportf(st.X.Pos(), "write through %s.%s mutates a shared NativeBatch; copy before mutate (wire/doc.go)",
					render(sel.X), sel.Sel.Name)
			}
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "append" && len(st.Args) > 0 {
				if sel, ok := unparen(st.Args[0]).(*ast.SelectorExpr); ok && batchField(pass, sel) && !exempt(sel) {
					pass.Reportf(st.Args[0].Pos(), "append to %s.%s may grow into a shared NativeBatch's backing array; copy on escape (wire/doc.go)",
						render(sel.X), sel.Sel.Name)
				}
			}
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// render prints the receiver chain of a diagnostic compactly.
func render(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return render(x.X) + "[...]"
	case *ast.ParenExpr:
		return render(x.X)
	case *ast.StarExpr:
		return "*" + render(x.X)
	case *ast.CallExpr:
		return render(x.Fun) + "(...)"
	default:
		return "batch"
	}
}
