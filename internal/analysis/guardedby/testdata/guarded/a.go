// Package guardfix is the guardedby fixture.
package guardfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	// queue is the pending backlog.
	// guarded by mu
	queue []int

	statsMu sync.RWMutex
	stats   map[string]int // guarded by statsMu

	unguarded int
}

// bare access without the lock: the canonical violation.
func (c *counter) bad() int {
	return c.n // want `c\.n is guarded by c\.mu, which is not held here`
}

func (c *counter) badWrite(v int) {
	c.queue = append(c.queue, v) // want `c\.queue is guarded by c\.mu` `c\.queue is guarded by c\.mu`
}

// the wrong mutex does not satisfy the annotation.
func (c *counter) wrongLock() int {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.n // want `c\.n is guarded by c\.mu, which is not held here`
}

// released too early: after Unlock the guard no longer covers the access.
func (c *counter) afterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `c\.n is guarded by c\.mu, which is not held here`
}

// good: classic lock/defer-unlock.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// good: RLock counts, and an early-return unlock inside a branch does not
// poison the straight-line path.
func (c *counter) read(key string) int {
	c.statsMu.RLock()
	defer c.statsMu.RUnlock()
	if v, ok := c.stats[key]; ok {
		return v
	}
	return c.stats[""]
}

func (c *counter) earlyReturn(v int) bool {
	c.mu.Lock()
	if v < 0 {
		c.mu.Unlock()
		return false
	}
	c.n = v
	c.mu.Unlock()
	return true
}

// good: the *Locked suffix convention assumes the receiver's guards held.
func (c *counter) bumpLocked(v int) {
	c.n += v
	c.queue = append(c.queue, v)
}

// good: a goroutine must take the lock itself.
func (c *counter) async(v int) {
	go func() {
		c.mu.Lock()
		c.n = v
		c.mu.Unlock()
	}()
}

// a goroutine that skips the lock is a violation even if the spawner held it.
func (c *counter) asyncBad(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n = v // want `c\.n is guarded by c\.mu, which is not held here`
	}()
}

// good: freshly constructed, not escaped yet.
func newCounter(v int) *counter {
	c := &counter{unguarded: v}
	c.n = v
	c.queue = []int{v}
	return c
}

// good: deferred cleanup closures inherit the held set.
func (c *counter) deferredCleanup() {
	c.mu.Lock()
	defer func() {
		c.queue = nil
		c.mu.Unlock()
	}()
	c.n++
}

// suppressed: a reviewed exception the heuristic cannot follow.
func (c *counter) snapshotDuringInit() int {
	return c.n //lint:allow guardedby init-time read before the object is published
}
