// Package guardedby enforces "// guarded by <mu>" field annotations: a
// struct field whose declaration carries that comment may only be read or
// written while the named sibling mutex is held on the same receiver
// chain. The check is intra-procedural and deliberately simple — it is a
// convention enforcer, not a proof system.
//
// Semantics, in the order they matter:
//
//   - p.Lock() / p.RLock() adds the lock path p to the held set;
//     p.Unlock() / p.RUnlock() removes it. defer p.Unlock() removes
//     nothing: the lock is held until return.
//   - An access x.f (f annotated "guarded by mu") requires "x.mu" in the
//     held set, matched textually on the rendered receiver chain.
//   - Branch bodies (if/else, for, range, switch, select cases) are
//     analyzed with a copy of the held set; lock-state changes inside a
//     branch do not leak out. Straight-line code propagates normally.
//   - A function whose name ends in "Locked" is assumed to be called with
//     every annotated guard of its receiver held — the repository's
//     existing naming convention for lock-requiring helpers.
//   - Objects freshly constructed in the function (x := &T{...}, new(T),
//     zero-valued var) are exempt: they have not escaped yet.
//   - A go statement's function literal starts with an empty held set (it
//     runs concurrently); other function literals are likewise analyzed
//     conservatively with an empty set, except deferred literals, which
//     inherit a copy of the current set (the defer-after-lock cleanup
//     idiom).
//
// RLock is treated as Lock (the read/write distinction is not modeled),
// and aliasing through intermediate variables is not tracked. Code the
// approximation cannot follow carries //lint:allow guardedby <reason>.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"sci/internal/analysis"
	"sci/internal/analysis/astutil"
)

// Analyzer is the guardedby pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated // guarded by <mu> must only be accessed with that mutex held",
	Run:  run,
}

var guardRx = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// annotations maps a struct type's fields to their guard field names.
type annotations map[*types.TypeName]map[string]string

// collect finds every "guarded by <mu>" field annotation in the package.
func collect(pass *analysis.Pass) annotations {
	ann := make(annotations)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if obj == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardOf(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if ann[obj] == nil {
						ann[obj] = make(map[string]string)
					}
					ann[obj][name.Name] = guard
				}
			}
			return true
		})
	}
	return ann
}

func guardOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRx.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

type checker struct {
	pass  *analysis.Pass
	ann   annotations
	fresh map[types.Object]bool
}

func run(pass *analysis.Pass) error {
	ann := collect(pass)
	if len(ann) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, ann: ann, fresh: astutil.FreshLocals(pass.TypesInfo, fd.Body)}
			held := make(lockSet)
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				c.assumeReceiverLocks(fd, held)
			}
			c.stmts(fd.Body.List, held)
		}
	}
	return nil
}

// assumeReceiverLocks seeds held with every guard of the receiver's
// annotated fields, honouring the *Locked naming convention.
func (c *checker) assumeReceiverLocks(fd *ast.FuncDecl, held lockSet) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	obj := c.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return
	}
	named := astutil.Named(obj.Type())
	if named == nil {
		return
	}
	if guards, ok := c.ann[named.Obj()]; ok {
		for _, g := range guards {
			held[recvName+"."+g] = true
		}
	}
}

// stmts walks straight-line statements, threading lock-state through.
func (c *checker) stmts(list []ast.Stmt, held lockSet) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func (c *checker) stmt(s ast.Stmt, held lockSet) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if c.lockCall(st.X, held) {
			return
		}
		c.expr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			c.expr(e, held)
		}
		for _, e := range st.Lhs {
			c.expr(e, held)
		}
	case *ast.IncDecStmt:
		c.expr(st.X, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			c.expr(e, held)
		}
	case *ast.IfStmt:
		c.stmt(st.Init, held)
		c.expr(st.Cond, held)
		c.stmts(st.Body.List, held.clone())
		if st.Else != nil {
			c.stmt(st.Else, held.clone())
		}
	case *ast.ForStmt:
		c.stmt(st.Init, held)
		if st.Cond != nil {
			c.expr(st.Cond, held)
		}
		body := held.clone()
		c.stmts(st.Body.List, body)
		if st.Post != nil {
			c.stmt(st.Post, body)
		}
	case *ast.RangeStmt:
		c.expr(st.X, held)
		c.stmts(st.Body.List, held.clone())
	case *ast.SwitchStmt:
		c.stmt(st.Init, held)
		if st.Tag != nil {
			c.expr(st.Tag, held)
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				h := held.clone()
				for _, e := range clause.List {
					c.expr(e, h)
				}
				c.stmts(clause.Body, h)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(st.Init, held)
		c.stmt(st.Assign, held)
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.stmts(clause.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				h := held.clone()
				c.stmt(clause.Comm, h)
				c.stmts(clause.Body, h)
			}
		}
	case *ast.BlockStmt:
		c.stmts(st.List, held)
	case *ast.LabeledStmt:
		c.stmt(st.Stmt, held)
	case *ast.DeferStmt:
		c.deferred(st.Call, held)
	case *ast.GoStmt:
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range st.Call.Args {
				c.expr(a, held)
			}
			c.stmts(lit.Body.List, make(lockSet)) // new goroutine: nothing held
		} else {
			c.expr(st.Call, held)
		}
	case *ast.SendStmt:
		c.expr(st.Chan, held)
		c.expr(st.Value, held)
	}
}

// deferred handles defer statements: deferred unlocks are ignored (the
// lock stays held to return), deferred closures inherit a copy of the
// current set (the defer-after-lock cleanup idiom).
func (c *checker) deferred(call *ast.CallExpr, held lockSet) {
	if p, _, isLockOp := lockPath(call); isLockOp && p != "" {
		return // defer p.Unlock(): held until return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			c.expr(a, held)
		}
		c.stmts(lit.Body.List, held.clone())
		return
	}
	c.expr(call, held)
}

// lockPath decodes a mutex method call: the rendered lock path, whether it
// acquires (vs releases), and whether it is a lock operation at all.
func lockPath(call *ast.CallExpr) (path string, acquires, isLockOp bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return renderExpr(sel.X), true, true
	case "Unlock", "RUnlock":
		return renderExpr(sel.X), false, true
	}
	return "", false, false
}

// lockCall applies a top-level mutex call's effect on held; reports
// whether e was one.
func (c *checker) lockCall(e ast.Expr, held lockSet) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	p, acquires, isLockOp := lockPath(call)
	if !isLockOp || p == "" {
		return false
	}
	if acquires {
		held[p] = true
	} else {
		delete(held, p)
	}
	return true
}

// expr checks every guarded-field access inside e against held.
func (c *checker) expr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Callback: runs who-knows-where; assume nothing held.
			c.stmts(x.Body.List, make(lockSet))
			return false
		case *ast.SelectorExpr:
			c.access(x, held)
		}
		return true
	})
}

// access validates one selector against the annotations.
func (c *checker) access(sel *ast.SelectorExpr, held lockSet) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	named := astutil.Named(s.Recv())
	if named == nil {
		return
	}
	guards, ok := c.ann[named.Obj()]
	if !ok {
		return
	}
	guard, ok := guards[sel.Sel.Name]
	if !ok {
		return
	}
	if astutil.IsFreshBase(c.pass.TypesInfo, c.fresh, sel) {
		return // not escaped yet
	}
	base := renderExpr(sel.X)
	if held[base+"."+guard] {
		return
	}
	c.pass.Reportf(sel.Pos(), "%s.%s is guarded by %s.%s, which is not held here", base, sel.Sel.Name, base, guard)
}

// renderExpr prints a receiver chain the way lock paths are matched:
// identifiers, selectors and derefs; anything else renders opaquely.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(x.X)
	case *ast.StarExpr:
		return renderExpr(x.X)
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[i]"
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "()"
	default:
		return "?"
	}
}
