package guardedby_test

import (
	"testing"

	"sci/internal/analysis/analysistest"
	"sci/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata/guarded", guardedby.Analyzer)
}
