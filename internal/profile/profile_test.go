package profile

import (
	"errors"
	"testing"

	"sci/internal/ctxtype"
	"sci/internal/guid"
	"sci/internal/location"
)

func validProfile() Profile {
	return Profile{
		Entity:  guid.New(guid.KindEntity),
		Name:    "door L10.01",
		Outputs: []ctxtype.Type{ctxtype.LocationSightingDoor},
		Quality: 0.9,
		Attributes: map[string]string{
			"door": "d-1001",
		},
		Location: location.AtPlace("l10.01"),
	}
}

func TestValidate(t *testing.T) {
	p := validProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Entity = guid.Nil
	if bad.Validate() == nil {
		t.Error("nil entity accepted")
	}
	bad = p
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name accepted")
	}
	bad = p
	bad.Outputs = []ctxtype.Type{"BAD TYPE"}
	if bad.Validate() == nil {
		t.Error("bad output type accepted")
	}
	bad = p
	bad.Inputs = []ctxtype.Type{""}
	if bad.Validate() == nil {
		t.Error("bad input type accepted")
	}
	bad = p
	bad.Quality = 1.5
	if bad.Validate() == nil {
		t.Error("quality > 1 accepted")
	}
	bad = p
	bad.Advertisement = &Advertisement{}
	if bad.Validate() == nil {
		t.Error("advertisement without interface accepted")
	}
}

func TestProvidesIn(t *testing.T) {
	reg := ctxtype.NewRegistry()
	p := validProfile()
	if s := p.ProvidesIn(ctxtype.LocationSightingDoor, reg); s != 3 {
		t.Errorf("exact match score = %d", s)
	}
	if s := p.ProvidesIn(ctxtype.LocationSighting, reg); s != 2 {
		t.Errorf("subsumption score = %d", s)
	}
	if s := p.ProvidesIn(ctxtype.LocationSightingWLAN, reg); s != 1 {
		t.Errorf("equivalence score = %d", s)
	}
	if s := p.ProvidesIn(ctxtype.PrinterStatus, reg); s != 0 {
		t.Errorf("unrelated score = %d", s)
	}
	// Without a registry, only hierarchy matching.
	if s := p.ProvidesIn(ctxtype.LocationSighting, nil); s != 3 {
		t.Errorf("nil-registry hierarchy score = %d", s)
	}
	if s := p.ProvidesIn(ctxtype.LocationSightingWLAN, nil); s != 0 {
		t.Errorf("nil-registry equivalence score = %d", s)
	}
}

func TestIsSourceAndAttr(t *testing.T) {
	p := validProfile()
	if !p.IsSource() {
		t.Error("sensor profile should be a source")
	}
	p.Inputs = []ctxtype.Type{ctxtype.LocationSighting}
	if p.IsSource() {
		t.Error("operator profile is not a source")
	}
	if p.Attr("door") != "d-1001" || p.Attr("missing") != "" {
		t.Error("Attr broken")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := validProfile()
	p.Advertisement = &Advertisement{
		Interface:  "printer",
		Operations: []string{"submit"},
		Attributes: map[string]string{"ppm": "30"},
	}
	c := p.Clone()
	c.Attributes["door"] = "changed"
	c.Outputs[0] = "changed.type"
	c.Advertisement.Operations[0] = "changed"
	c.Advertisement.Attributes["ppm"] = "0"
	if p.Attributes["door"] != "d-1001" || p.Outputs[0] != ctxtype.LocationSightingDoor {
		t.Fatal("Clone shares storage with original")
	}
	if p.Advertisement.Operations[0] != "submit" || p.Advertisement.Attributes["ppm"] != "30" {
		t.Fatal("Clone shares advertisement storage")
	}
}

func TestManagerPutGetRemove(t *testing.T) {
	var m Manager
	p := validProfile()
	if err := m.Put(p); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatal("Len != 1")
	}
	got, err := m.Get(p.Entity)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name {
		t.Fatal("Get returned wrong profile")
	}
	// Mutating the returned copy must not affect the store.
	got.Attributes["door"] = "mutated"
	again, _ := m.Get(p.Entity)
	if again.Attributes["door"] != "d-1001" {
		t.Fatal("Get returned shared storage")
	}
	if _, err := m.Get(guid.New(guid.KindEntity)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := m.Put(Profile{}); err == nil {
		t.Fatal("invalid profile stored")
	}
	m.Remove(p.Entity)
	if m.Len() != 0 {
		t.Fatal("Remove did not delete")
	}
	m.Remove(p.Entity) // idempotent
}

func TestManagerVersioning(t *testing.T) {
	var m Manager
	p := validProfile()
	if m.Version(p.Entity) != 0 {
		t.Fatal("absent profile must have version 0")
	}
	_ = m.Put(p)
	if m.Version(p.Entity) != 1 {
		t.Fatal("first Put must set version 1")
	}
	p.Name = "renamed"
	_ = m.Put(p)
	if m.Version(p.Entity) != 2 {
		t.Fatal("second Put must bump version")
	}
}

func TestFindProvidersOrdering(t *testing.T) {
	reg := ctxtype.NewRegistry()
	var m Manager

	door := validProfile() // exact door sighting, q=0.9
	wlan := Profile{
		Entity:  guid.New(guid.KindEntity),
		Name:    "basestation",
		Outputs: []ctxtype.Type{ctxtype.LocationSightingWLAN},
		Quality: 0.6,
	}
	printer := Profile{
		Entity:  guid.New(guid.KindEntity),
		Name:    "printer",
		Outputs: []ctxtype.Type{ctxtype.PrinterStatus},
	}
	for _, p := range []Profile{wlan, printer, door} {
		if err := m.Put(p); err != nil {
			t.Fatal(err)
		}
	}

	// Want door sightings: door is exact (3), wlan is equivalent (1).
	cands := m.FindProviders(ctxtype.LocationSightingDoor, reg)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	if cands[0].Profile.Entity != door.Entity || cands[0].Score != 3 {
		t.Fatalf("best candidate wrong: %+v", cands[0])
	}
	if cands[1].Profile.Entity != wlan.Entity || cands[1].Score != 1 {
		t.Fatalf("second candidate wrong: %+v", cands[1])
	}

	// Want any sighting: both subsume (2); the higher quality one first.
	cands = m.FindProviders(ctxtype.LocationSighting, reg)
	if len(cands) != 2 || cands[0].Profile.Entity != door.Entity {
		t.Fatalf("quality tie break wrong: %+v", cands)
	}

	if got := m.FindProviders(ctxtype.PathRoute, reg); len(got) != 0 {
		t.Fatal("no provider expected for path.route")
	}
}

func TestFindByAttrAndInterface(t *testing.T) {
	var m Manager
	p1 := validProfile()
	p1.Attributes["kind"] = "printer"
	p1.Advertisement = &Advertisement{Interface: "printer", Operations: []string{"submit"}}
	p2 := validProfile()
	p2.Entity = guid.New(guid.KindEntity)
	p2.Attributes = map[string]string{"kind": "display"}
	for _, p := range []Profile{p1, p2} {
		if err := m.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.FindByAttr("kind", "printer"); len(got) != 1 || got[0].Entity != p1.Entity {
		t.Fatalf("FindByAttr = %+v", got)
	}
	if got := m.FindByInterface("printer"); len(got) != 1 || got[0].Entity != p1.Entity {
		t.Fatalf("FindByInterface = %+v", got)
	}
	if got := m.FindByInterface("scanner"); len(got) != 0 {
		t.Fatal("unexpected interface match")
	}
}

func TestAllSorted(t *testing.T) {
	var m Manager
	for i := 0; i < 20; i++ {
		p := validProfile()
		p.Entity = guid.New(guid.KindEntity)
		if err := m.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	all := m.All()
	if len(all) != 20 {
		t.Fatalf("All len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if !guid.Less(all[i-1].Entity, all[i].Entity) {
			t.Fatal("All not sorted")
		}
	}
}
