// Package profile implements Context Entity Profiles and Advertisements
// (paper, Section 3.1): "A CE maintains a Profile for its entity that
// contains meta-data describing the entity. For entities that provide a
// service, the CE may also maintain an Advertisement describing the services
// that this entity can provide to other entities."
//
// Profiles declare an entity's typed event inputs and outputs — the raw
// material for the Query Resolver's type matching (Section 3.2) — plus
// free-form attributes and a location. Advertisements name the "well known"
// interface a CAA can invoke on the entity (Section 4: the ServiceInterface).
//
// The Manager is the Profile Manager Context Utility: "provides access and
// update abilities to Context Entities Profiles".
package profile

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sci/internal/ctxtype"
	"sci/internal/guid"
	"sci/internal/location"
)

// Profile is the metadata a Context Entity maintains about its entity.
type Profile struct {
	// Entity is the described entity's GUID.
	Entity guid.GUID `json:"entity"`
	// Name is a human-readable label ("Bob", "printer-p1", "door L10.01").
	Name string `json:"name"`
	// Inputs are the context types this entity consumes (empty for sources
	// such as sensors).
	Inputs []ctxtype.Type `json:"inputs,omitempty"`
	// Outputs are the context types this entity produces (empty for pure
	// consumers).
	Outputs []ctxtype.Type `json:"outputs,omitempty"`
	// Location is where the entity is, in the intermediate location
	// language; may be empty for mobile or abstract entities.
	Location location.Ref `json:"location,omitzero"`
	// Quality grades this provider's output in (0,1]; 0 means unspecified
	// (the resolver then falls back to the type registry's default).
	Quality float64 `json:"quality,omitempty"`
	// Attributes carry free-form metadata ("colour"="yes", "ppm"="30").
	Attributes map[string]string `json:"attributes,omitempty"`
	// Advertisement describes the entity's service interface, if any.
	Advertisement *Advertisement `json:"advertisement,omitempty"`
}

// Advertisement is the "well known" interface description through which
// CAAs transfer service-specific data to a CE (Section 4.1's
// ServiceInterface, e.g. the print submission interface of CAPA).
type Advertisement struct {
	// Interface names the well-known interface ("printer", "display").
	Interface string `json:"interface"`
	// Operations lists the invocable operations ("submit", "cancel",
	// "query-queue").
	Operations []string `json:"operations"`
	// Attributes carry interface-specific metadata.
	Attributes map[string]string `json:"attributes,omitempty"`
}

// ErrBadProfile reports a structurally invalid profile.
var ErrBadProfile = errors.New("profile: invalid")

// Validate checks structural invariants.
func (p Profile) Validate() error {
	if p.Entity.IsNil() {
		return fmt.Errorf("%w: nil entity", ErrBadProfile)
	}
	if p.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadProfile)
	}
	for _, t := range p.Inputs {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("%w: input: %v", ErrBadProfile, err)
		}
	}
	for _, t := range p.Outputs {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("%w: output: %v", ErrBadProfile, err)
		}
	}
	if p.Quality < 0 || p.Quality > 1 {
		return fmt.Errorf("%w: quality %v outside [0,1]", ErrBadProfile, p.Quality)
	}
	if p.Advertisement != nil {
		if p.Advertisement.Interface == "" {
			return fmt.Errorf("%w: advertisement without interface name", ErrBadProfile)
		}
	}
	return nil
}

// ProvidesIn reports whether the profile offers an output satisfying want
// under the registry's matching rules, returning the best match score
// (0 = no match; see ctxtype.MatchScore).
func (p Profile) ProvidesIn(want ctxtype.Type, reg *ctxtype.Registry) int {
	best := 0
	for _, out := range p.Outputs {
		var s int
		if reg != nil {
			s = reg.MatchScore(out, want)
		} else if out.HasAncestor(want) || out == want {
			s = 3
		}
		if s > best {
			best = s
		}
	}
	return best
}

// IsSource reports whether the entity produces context without consuming
// any — the ground level at which the resolver's backward chaining stops.
func (p Profile) IsSource() bool {
	return len(p.Outputs) > 0 && len(p.Inputs) == 0
}

// Attr returns an attribute value ("" when absent).
func (p Profile) Attr(key string) string {
	return p.Attributes[key]
}

// Clone returns a deep copy (maps and slices are not shared).
func (p Profile) Clone() Profile {
	out := p
	out.Inputs = append([]ctxtype.Type(nil), p.Inputs...)
	out.Outputs = append([]ctxtype.Type(nil), p.Outputs...)
	if p.Attributes != nil {
		out.Attributes = make(map[string]string, len(p.Attributes))
		for k, v := range p.Attributes {
			out.Attributes[k] = v
		}
	}
	if p.Advertisement != nil {
		ad := *p.Advertisement
		ad.Operations = append([]string(nil), p.Advertisement.Operations...)
		if p.Advertisement.Attributes != nil {
			ad.Attributes = make(map[string]string, len(p.Advertisement.Attributes))
			for k, v := range p.Advertisement.Attributes {
				ad.Attributes[k] = v
			}
		}
		out.Advertisement = &ad
	}
	return out
}

// Manager is the Profile Manager Context Utility. It is safe for concurrent
// use. The zero value is usable.
type Manager struct {
	mu         sync.RWMutex
	profiles   map[guid.GUID]Profile
	version    map[guid.GUID]uint64
	generation uint64
}

// ErrNotFound reports a missing profile.
var ErrNotFound = errors.New("profile: not found")

// Put stores (or replaces) a profile after validation, bumping its version.
func (m *Manager) Put(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cp := p.Clone()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.profiles == nil {
		m.profiles = make(map[guid.GUID]Profile)
		m.version = make(map[guid.GUID]uint64)
	}
	m.profiles[cp.Entity] = cp
	m.version[cp.Entity]++
	m.generation++
	return nil
}

// Generation counts every mutation (Put or Remove) of the store. Callers
// caching derived structures (the resolver's sub-graph reuse) compare
// generations to detect staleness.
func (m *Manager) Generation() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.generation
}

// Get returns a copy of the profile for entity.
func (m *Manager) Get(entity guid.GUID) (Profile, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.profiles[entity]
	if !ok {
		return Profile{}, fmt.Errorf("%w: %s", ErrNotFound, entity.Short())
	}
	return p.Clone(), nil
}

// Version returns the profile's update count (0 when absent); the
// configuration runtime uses it to detect concurrent profile changes.
func (m *Manager) Version(entity guid.GUID) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version[entity]
}

// Remove deletes the profile for entity; it is not an error if absent.
func (m *Manager) Remove(entity guid.GUID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.profiles[entity]; ok {
		m.generation++
	}
	delete(m.profiles, entity)
	delete(m.version, entity)
}

// Len returns the number of stored profiles.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.profiles)
}

// All returns copies of all profiles, ordered by entity GUID for
// determinism.
func (m *Manager) All() []Profile {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Profile, 0, len(m.profiles))
	for _, p := range m.profiles {
		out = append(out, p.Clone())
	}
	sort.Slice(out, func(i, j int) bool {
		return guid.Less(out[i].Entity, out[j].Entity)
	})
	return out
}

// Candidate is a provider matched by FindProviders, with its match score.
type Candidate struct {
	Profile Profile
	// Score is the type-match grade (3 exact, 2 subsumption, 1 equivalence).
	Score int
}

// FindProviders returns all profiles offering an output that satisfies want
// under reg's matching rules, best score first; ties break by descending
// quality and then by entity GUID (deterministic).
func (m *Manager) FindProviders(want ctxtype.Type, reg *ctxtype.Registry) []Candidate {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Candidate
	for _, p := range m.profiles {
		if s := p.ProvidesIn(want, reg); s > 0 {
			out = append(out, Candidate{Profile: p.Clone(), Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		qi, qj := out[i].Profile.Quality, out[j].Profile.Quality
		if qi != qj {
			return qi > qj
		}
		return guid.Less(out[i].Profile.Entity, out[j].Profile.Entity)
	})
	return out
}

// FindByAttr returns profiles whose attribute key equals value, ordered by
// entity GUID.
func (m *Manager) FindByAttr(key, value string) []Profile {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Profile
	for _, p := range m.profiles {
		if p.Attributes[key] == value {
			out = append(out, p.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return guid.Less(out[i].Entity, out[j].Entity)
	})
	return out
}

// FindByInterface returns profiles advertising the named interface.
func (m *Manager) FindByInterface(iface string) []Profile {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Profile
	for _, p := range m.profiles {
		if p.Advertisement != nil && p.Advertisement.Interface == iface {
			out = append(out, p.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return guid.Less(out[i].Entity, out[j].Entity)
	})
	return out
}
