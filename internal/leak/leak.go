// Package leak is the runtime half of the goroutine-ownership contract
// that internal/analysis/leakcheck enforces statically: leakcheck proves
// every `go` statement is tied to a lifecycle owner, and this package
// proves, in the heaviest concurrency suites, that the owners actually
// reap their goroutines — Close really joins, done channels really fire.
//
// Usage, first line of a test:
//
//	defer leak.Check(t)()
//
// Check snapshots the live goroutines, and the returned function (run at
// the test's end, after the test's own defers tore everything down)
// re-snapshots and fails the test if goroutines born during the test are
// still alive. Termination is asynchronous — a joined goroutine's stack
// may linger a few scheduler ticks after the Wait returns — so the diff
// retries with backoff before declaring a leak.
//
// The comparison is by goroutine id against the baseline, so pre-existing
// goroutines (the test runner's, a shared fixture's) never trip it, and
// stacks created by the runtime or the testing framework itself are
// filtered out by origin.
package leak

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// maxWait bounds how long Check waits for straggler goroutines to finish
// before declaring them leaked.
const maxWait = 4 * time.Second

// goroutine is one parsed stack dump entry.
type goroutine struct {
	id    int
	state string // "running", "chan receive", ...
	stack string // full text, for reports and filtering
}

// ignored reports whether g is infrastructure that no test owns: runtime
// helpers, the testing framework, and this package's own collector.
func ignored(g goroutine) bool {
	for _, marker := range []string{
		"runtime.goexit0",  // dying; will be gone momentarily
		"testing.(*T).Run", // test runner frames
		"testing.RunTests",
		"testing.Main",
		"testing.runTests",
		"runtime/trace",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.timerRunning",
		"os/signal.signal_recv",
		"os/signal.loop",
		"sci/internal/leak.snapshot", // ourselves
	} {
		if strings.Contains(g.stack, marker) {
			return true
		}
	}
	return false
}

// snapshot returns the live goroutines by id.
func snapshot() map[int]goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[int]goroutine)
	for _, dump := range strings.Split(string(buf), "\n\n") {
		g, ok := parse(dump)
		if !ok || ignored(g) {
			continue
		}
		out[g.id] = g
	}
	return out
}

// parse decodes one "goroutine N [state]:\n<frames>" block.
func parse(dump string) (goroutine, bool) {
	head, rest, ok := strings.Cut(dump, "\n")
	if !ok || !strings.HasPrefix(head, "goroutine ") {
		return goroutine{}, false
	}
	head = strings.TrimPrefix(head, "goroutine ")
	idStr, state, ok := strings.Cut(head, " ")
	if !ok {
		return goroutine{}, false
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return goroutine{}, false
	}
	return goroutine{
		id:    id,
		state: strings.Trim(state, "[]:"),
		stack: rest,
	}, true
}

// TB is the subset of testing.TB Check needs (avoids importing testing
// into non-test binaries that link this package).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check snapshots the current goroutines and returns the verification
// function; defer it first so it runs after the test's own cleanup:
//
//	defer leak.Check(t)()
//
// The verifier retries until the deadline, so goroutines whose owners
// joined them just before returning are never false positives.
func Check(t TB) func() {
	base := snapshot()
	return func() {
		t.Helper()
		deadline := time.Now().Add(maxWait)
		delay := time.Millisecond
		var extra []goroutine
		for {
			extra = extra[:0]
			for id, g := range snapshot() {
				if _, ok := base[id]; !ok {
					extra = append(extra, g)
				}
			}
			if len(extra) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(delay)
			if delay < 100*time.Millisecond {
				delay *= 2
			}
		}
		var b strings.Builder
		for _, g := range extra {
			fmt.Fprintf(&b, "\n  goroutine %d [%s]:\n%s\n", g.id, g.state, indent(g.stack))
		}
		t.Errorf("leak: %d goroutine(s) created during the test are still running after %v:%s",
			len(extra), maxWait, b.String())
	}
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}
