package leak

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// recorder captures Errorf output so we can probe Check without failing
// the real test.
type recorder struct {
	mu   sync.Mutex
	msgs []string
}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, format)
}

func (r *recorder) failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs) > 0
}

func TestCheckPassesWhenGoroutinesAreJoined(t *testing.T) {
	rec := &recorder{}
	verify := Check(rec)

	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go func() {
			defer wg.Done()
			time.Sleep(5 * time.Millisecond)
		}()
	}
	wg.Wait()

	verify()
	if rec.failed() {
		t.Fatalf("Check reported a leak for joined goroutines: %v", rec.msgs)
	}
}

func TestCheckDetectsParkedGoroutine(t *testing.T) {
	if testing.Short() {
		t.Skip("leak detection waits out the full retry deadline")
	}
	rec := &recorder{}
	verify := Check(rec)

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-release // parked for the whole verification window
	}()

	verify()
	if !rec.failed() {
		t.Fatal("Check did not report the parked goroutine")
	}
	if !strings.Contains(rec.msgs[0], "still running") {
		t.Fatalf("unexpected report: %q", rec.msgs[0])
	}

	close(release)
	wg.Wait()
}

func TestCheckIgnoresPreexistingGoroutines(t *testing.T) {
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-release
	}()

	// Baseline taken while the goroutine above is already alive: it must
	// not be attributed to the checked region.
	rec := &recorder{}
	Check(rec)()
	if rec.failed() {
		t.Fatalf("Check blamed a pre-existing goroutine: %v", rec.msgs)
	}

	close(release)
	wg.Wait()
}

func TestParse(t *testing.T) {
	g, ok := parse("goroutine 42 [chan receive]:\nmain.worker()\n\t/tmp/x.go:10 +0x1")
	if !ok {
		t.Fatal("parse rejected a well-formed dump")
	}
	if g.id != 42 || g.state != "chan receive" {
		t.Fatalf("parsed id=%d state=%q", g.id, g.state)
	}
	if _, ok := parse("not a goroutine header"); ok {
		t.Fatal("parse accepted garbage")
	}
}
