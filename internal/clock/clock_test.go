package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC) // workshop day

func TestManualNowAdvance(t *testing.T) {
	m := NewManual(epoch)
	if !m.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", m.Now(), epoch)
	}
	m.Advance(90 * time.Second)
	if want := epoch.Add(90 * time.Second); !m.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", m.Now(), want)
	}
}

func TestManualAfter(t *testing.T) {
	m := NewManual(epoch)
	ch := m.After(time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired before advance")
	default:
	}
	m.Advance(59 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired early")
	default:
	}
	m.Advance(time.Second)
	select {
	case got := <-ch:
		if want := epoch.Add(time.Minute); !got.Equal(want) {
			t.Fatalf("After delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestManualAfterFuncOrderAndStop(t *testing.T) {
	m := NewManual(epoch)
	var order []int
	m.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	m.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	t2 := m.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	if !t2.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if t2.Stop() {
		t.Fatal("second Stop returned true")
	}
	m.Advance(5 * time.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("fire order = %v, want [1 3]", order)
	}
}

func TestManualEqualDeadlinesFireInScheduleOrder(t *testing.T) {
	m := NewManual(epoch)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		m.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	m.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestManualCallbackSchedulesMore(t *testing.T) {
	m := NewManual(epoch)
	var fired []string
	m.AfterFunc(time.Second, func() {
		fired = append(fired, "first")
		m.AfterFunc(time.Second, func() { fired = append(fired, "second") })
	})
	m.Advance(3 * time.Second)
	if len(fired) != 2 || fired[1] != "second" {
		t.Fatalf("fired = %v", fired)
	}
	// The chained timer must have fired at epoch+2s, i.e. during the same
	// Advance window.
	if m.PendingCount() != 0 {
		t.Fatalf("PendingCount = %d, want 0", m.PendingCount())
	}
}

func TestManualSleepUnblocksOnAdvance(t *testing.T) {
	m := NewManual(epoch)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Sleep(time.Minute)
		close(done)
	}()
	// Wait until the sleeper has registered its timer.
	for i := 0; i < 1000; i++ {
		if m.PendingCount() == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not unblock")
	}
	wg.Wait()
}

func TestManualNegativeDurationFiresImmediatelyOnAdvance(t *testing.T) {
	m := NewManual(epoch)
	fired := false
	m.AfterFunc(-time.Second, func() { fired = true })
	m.Advance(0)
	if !fired {
		t.Fatal("negative-duration timer did not fire on zero advance")
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	t0 := c.Now()
	c.Sleep(5 * time.Millisecond)
	if !c.Now().After(t0) {
		t.Fatal("real clock did not advance")
	}
	fired := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("real After did not fire")
	}
}

func TestPendingCount(t *testing.T) {
	m := NewManual(epoch)
	a := m.AfterFunc(time.Second, func() {})
	m.AfterFunc(2*time.Second, func() {})
	if got := m.PendingCount(); got != 2 {
		t.Fatalf("PendingCount = %d, want 2", got)
	}
	a.Stop()
	if got := m.PendingCount(); got != 1 {
		t.Fatalf("PendingCount after stop = %d, want 1", got)
	}
	m.Advance(2 * time.Second)
	if got := m.PendingCount(); got != 0 {
		t.Fatalf("PendingCount after advance = %d, want 0", got)
	}
}
