// Package clock abstracts time for the SCI infrastructure.
//
// Leases in the Registrar, heartbeats in the overlay, temporal (When)
// clauses of queries and the simulated world all consume time through the
// Clock interface so that unit tests and the benchmark harness can run with
// a manually stepped clock and remain fully deterministic, while deployments
// use the system clock.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout the infrastructure.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d has
	// elapsed. The channel has capacity one and is never closed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run once d has elapsed, returning a handle
	// that can cancel it.
	AfterFunc(d time.Duration, f func()) Timer
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
}

// Timer is a cancelable pending callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the call prevented the
	// callback from firing.
	Stop() bool
}

// Real returns the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Manual is a deterministic, manually advanced clock for tests and
// simulation. The zero value is not usable; construct with NewManual.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	pending pendingHeap
	seq     int64 // tiebreak so equal deadlines fire in schedule order
}

// NewManual returns a Manual clock starting at the given instant.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.schedule(d, func(t time.Time) { ch <- t })
	return ch
}

// AfterFunc implements Clock.
func (m *Manual) AfterFunc(d time.Duration, f func()) Timer {
	return m.schedule(d, func(time.Time) { f() })
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (m *Manual) Sleep(d time.Duration) {
	<-m.After(d)
}

// Advance moves the clock forward by d, firing every timer whose deadline is
// reached, in deadline order. Callbacks run on the calling goroutine with no
// locks held, so they may schedule further timers.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		if len(m.pending) == 0 || m.pending[0].when.After(target) {
			break
		}
		p := heap.Pop(&m.pending).(*pendingTimer)
		if p.stopped {
			continue
		}
		m.now = p.when
		fn := p.fn
		when := p.when
		m.mu.Unlock()
		fn(when)
		m.mu.Lock()
	}
	m.now = target
	m.mu.Unlock()
}

// PendingCount returns the number of timers not yet fired or stopped; useful
// for test assertions.
func (m *Manual) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, p := range m.pending {
		if !p.stopped {
			n++
		}
	}
	return n
}

func (m *Manual) schedule(d time.Duration, fn func(time.Time)) *pendingTimer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 {
		d = 0
	}
	p := &pendingTimer{
		when: m.now.Add(d),
		fn:   fn,
		m:    m,
		seq:  m.seq,
	}
	m.seq++
	heap.Push(&m.pending, p)
	return p
}

type pendingTimer struct {
	when    time.Time
	fn      func(time.Time)
	m       *Manual
	seq     int64
	index   int
	stopped bool
}

// Stop implements Timer.
func (p *pendingTimer) Stop() bool {
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	if p.stopped || p.index == -1 {
		return false
	}
	p.stopped = true
	return true
}

type pendingHeap []*pendingTimer

func (h pendingHeap) Len() int { return len(h) }

func (h pendingHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}

func (h pendingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *pendingHeap) Push(x any) {
	p := x.(*pendingTimer)
	p.index = len(*h)
	*h = append(*h, p)
}

func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	p.index = -1
	*h = old[:n-1]
	return p
}

var (
	_ Clock = realClock{}
	_ Clock = (*Manual)(nil)
	_ Timer = realTimer{}
	_ Timer = (*pendingTimer)(nil)
)
