// Package entity implements the component model of the paper's Fig 4: the
// abstract Context Entity (CE) and Context Aware Application (CAA) classes
// that concrete components extend.
//
// "Both entities share the RegisterInterface in order to facilitate
// communication with a Range Service while CAA's include the
// ConsumeInterface for dealing with events (in response to a query). The
// ServiceInterface, implemented by the CE represents the 'well known'
// Advertisement interface. At the Concrete level, CE or CAA developers need
// only to deal with the service they provide or the events they receive."
//
// Base provides the shared plumbing (identity, profile, sequenced event
// emission); the operator CEs in operators.go are the reusable aggregation/
// interpretation components the Section 3.2 composition example is built
// from.
package entity

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/profile"
)

// Publisher is where an attached component emits its events — in a running
// Range, the Event Mediator.
type Publisher interface {
	Publish(event.Event) error
}

// Component is the RegisterInterface of Fig 4, shared by CEs and CAAs.
type Component interface {
	// ID returns the component's GUID.
	ID() guid.GUID
	// Profile returns the component's current profile.
	Profile() profile.Profile
}

// CE is a Context Entity: it may consume input events (when wired into a
// configuration), emit output events, and serve advertisement calls.
type CE interface {
	Component
	// Attach connects the CE to its Range's publisher. Called by the Range
	// Service on registration.
	Attach(pub Publisher)
	// Detach disconnects (departure).
	Detach()
	// HandleInput consumes one event delivered on a configuration edge.
	HandleInput(event.Event)
	// Serve handles an advertisement (ServiceInterface) call.
	Serve(op string, args map[string]any) (map[string]any, error)
}

// Consumer is the ConsumeInterface of Fig 4 (CAAs).
type Consumer interface {
	Consume(event.Event)
}

// BatchInput is implemented by CEs that can absorb a whole run of
// configuration-edge events in one call. The configuration runtime wires
// such consumers through Mediator.SubscribeBatch, so a publish burst
// reaches them as one slice instead of one HandleInput call per event —
// the remote proxies in rangesvc use this to append a burst to their
// outbound wire coalescer under a single lock acquisition. The slice is
// the delivery loop's reused buffer and must not be retained.
type BatchInput interface {
	HandleInputAll([]event.Event)
}

// ErrNoService is returned by components without an advertisement.
var ErrNoService = errors.New("entity: no such service operation")

// ErrDetached is returned when emitting while unattached.
var ErrDetached = errors.New("entity: not attached to a range")

// Base supplies identity, profile storage and sequenced emission. Embed it
// in concrete CEs. Construct with NewBase.
type Base struct {
	id  guid.GUID
	clk clock.Clock

	mu   sync.Mutex
	prof profile.Profile
	pub  Publisher
	seq  uint64
	rng  guid.GUID // the Range currently hosting this component
}

// NewBase builds component plumbing. The profile's Entity field is forced
// to the generated id. clk may be nil (real clock).
func NewBase(kind guid.Kind, prof profile.Profile, clk clock.Clock) *Base {
	return NewBaseWithID(guid.New(kind), prof, clk)
}

// NewBaseWithID builds plumbing for a component whose identity was minted
// elsewhere — the Range Service uses it to build proxies standing in for
// remote components, which keep their own GUIDs.
func NewBaseWithID(id guid.GUID, prof profile.Profile, clk clock.Clock) *Base {
	if clk == nil {
		clk = clock.Real()
	}
	prof.Entity = id
	return &Base{id: id, clk: clk, prof: prof}
}

// ID implements Component.
func (b *Base) ID() guid.GUID { return b.id }

// Profile implements Component.
func (b *Base) Profile() profile.Profile {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.prof.Clone()
}

// UpdateProfile mutates the profile through fn (under the component lock).
func (b *Base) UpdateProfile(fn func(*profile.Profile)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(&b.prof)
	b.prof.Entity = b.id
}

// Attach implements CE.
func (b *Base) Attach(pub Publisher) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pub = pub
}

// Detach implements CE.
func (b *Base) Detach() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pub = nil
}

// SetRange records the hosting Range's GUID (stamped onto emitted events).
func (b *Base) SetRange(rng guid.GUID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rng = rng
}

// Attached reports whether the component can emit.
func (b *Base) Attached() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pub != nil
}

// Emit publishes a typed event from this component with the next sequence
// number.
func (b *Base) Emit(t ctxtype.Type, subject guid.GUID, payload map[string]any) error {
	b.mu.Lock()
	pub := b.pub
	if pub == nil {
		b.mu.Unlock()
		return ErrDetached
	}
	b.seq++
	e := event.New(t, b.id, b.seq, b.clk.Now(), payload)
	e.Subject = subject
	e.Range = b.rng
	e.Quality = b.prof.Quality
	b.mu.Unlock()
	return pub.Publish(e)
}

// Clock returns the component's clock.
func (b *Base) Clock() clock.Clock { return b.clk }

// HandleInput implements CE as a no-op; operator CEs override.
func (b *Base) HandleInput(event.Event) {}

// Serve implements CE: no advertisement by default.
func (b *Base) Serve(op string, args map[string]any) (map[string]any, error) {
	return nil, fmt.Errorf("%w: %q", ErrNoService, op)
}

// CAA is the Context Aware Application base: a component that receives
// events in response to its queries. Construct with NewCAA.
type CAA struct {
	*Base

	mu      sync.Mutex
	handler func(event.Event)
	batch   func([]event.Event)
	inbox   []event.Event
}

// NewCAA builds a CAA base. handler may be nil, in which case events
// accumulate in an inbox drained by TakeEvents (convenient for tests and
// simple applications).
func NewCAA(name string, handler func(event.Event), clk clock.Clock) *CAA {
	base := NewBase(guid.KindApplication, profile.Profile{Name: name}, clk)
	return &CAA{Base: base, handler: handler}
}

// NewRemoteCAA builds a CAA proxy with a fixed id whose Consume forwards to
// fn — the Range-side stand-in for an application living across the
// transport.
func NewRemoteCAA(id guid.GUID, name string, fn func(event.Event), clk clock.Clock) *CAA {
	base := NewBaseWithID(id, profile.Profile{Name: name}, clk)
	return &CAA{Base: base, handler: fn}
}

// NewRemoteBatchCAA builds a CAA proxy whose ConsumeAll hands whole event
// runs to fn — the stand-in for remote applications whose deliveries flow
// through an outbound coalescer (rangesvc, scinet). fn must not retain the
// slice: it is the delivery loop's reused buffer.
func NewRemoteBatchCAA(id guid.GUID, name string, fn func([]event.Event), clk clock.Clock) *CAA {
	base := NewBaseWithID(id, profile.Profile{Name: name}, clk)
	return &CAA{Base: base, batch: fn}
}

// Consume implements Consumer.
func (c *CAA) Consume(e event.Event) {
	c.mu.Lock()
	h, bh := c.handler, c.batch
	if h == nil && bh == nil {
		c.inbox = append(c.inbox, e)
	}
	c.mu.Unlock()
	switch {
	case bh != nil:
		bh([]event.Event{e})
	case h != nil:
		h(e)
	}
}

// ConsumeAll delivers a run of events in one call: batch-handler CAAs get
// the whole slice, per-event handlers are invoked in order, and handler-less
// CAAs append the run to the inbox under a single lock acquisition. The
// slice must not be retained by batch handlers (delivery loops reuse it).
func (c *CAA) ConsumeAll(events []event.Event) {
	if len(events) == 0 {
		return
	}
	c.mu.Lock()
	h, bh := c.handler, c.batch
	if h == nil && bh == nil {
		c.inbox = append(c.inbox, events...)
	}
	c.mu.Unlock()
	switch {
	case bh != nil:
		bh(events)
	case h != nil:
		for i := range events {
			h(events[i])
		}
	}
}

// TakeEvents drains and returns the inbox (handler-less CAAs).
func (c *CAA) TakeEvents() []event.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.inbox
	c.inbox = nil
	return out
}

// PendingEvents returns the inbox length without draining.
func (c *CAA) PendingEvents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inbox)
}

var (
	_ Component = (*Base)(nil)
	_ CE        = (*Base)(nil)
	_ Consumer  = (*CAA)(nil)
)

// Sequenced returns the base's current sequence number (diagnostics).
func (b *Base) Sequenced() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Now is a convenience for concrete components.
func (b *Base) Now() time.Time { return b.clk.Now() }
