package entity

import (
	"fmt"
	"sync"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/profile"
)

// This file contains the reusable operator CEs the paper's composition
// example (Section 3.2) is assembled from, plus the aggregator/interpreter
// archetypes the Context Toolkit taxonomy names.

// FuncCE is a generic transformer: a CE whose input handling is a supplied
// function. It covers most ad hoc interpreters.
type FuncCE struct {
	*Base
	fn func(ce *FuncCE, e event.Event)
}

// NewFuncCE builds a transformer CE. prof declares the inputs/outputs; fn
// receives every input event and may call ce.Emit.
func NewFuncCE(prof profile.Profile, clk clock.Clock, fn func(ce *FuncCE, e event.Event)) *FuncCE {
	ce := &FuncCE{fn: fn}
	ce.Base = NewBase(guid.KindEntity, prof, clk)
	return ce
}

// HandleInput implements CE.
func (ce *FuncCE) HandleInput(e event.Event) {
	if ce.fn != nil {
		ce.fn(ce, e)
	}
}

// ObjLocationCE is the objLocationCE of Section 3.2: it consumes sighting
// events (door or W-LAN — any location.sighting) and produces interpreted
// location.position events for the sighted subject. It also remembers the
// last known position of every subject, served through its advertisement
// ("locate" operation) — the continuously-updated store a Location Service
// consults.
type ObjLocationCE struct {
	*Base
	places *location.Map

	mu   sync.Mutex
	last map[guid.GUID]location.Ref
}

// NewObjLocationCE builds the object-location interpreter. places may be
// nil (positions then carry only what the sighting carried).
func NewObjLocationCE(places *location.Map, clk clock.Clock) *ObjLocationCE {
	prof := profile.Profile{
		Name:    "objLocationCE",
		Inputs:  []ctxtype.Type{ctxtype.LocationSighting},
		Outputs: []ctxtype.Type{ctxtype.LocationPosition},
		Advertisement: &profile.Advertisement{
			Interface:  "object-location",
			Operations: []string{"locate"},
		},
	}
	ce := &ObjLocationCE{places: places, last: make(map[guid.GUID]location.Ref)}
	ce.Base = NewBase(guid.KindEntity, prof, clk)
	return ce
}

// HandleInput interprets a sighting into a position.
func (ce *ObjLocationCE) HandleInput(e event.Event) {
	if e.Subject.IsNil() {
		return // a sighting of nobody carries no position information
	}
	ref := refFromPayload(e.Payload)
	if ce.places != nil && !ref.Empty() {
		if resolved, err := ce.places.Resolve(ref); err == nil {
			ref = resolved
		}
	}
	if ref.Empty() {
		return
	}
	ce.mu.Lock()
	ce.last[e.Subject] = ref
	ce.mu.Unlock()
	_ = ce.Emit(ctxtype.LocationPosition, e.Subject, refPayload(ref))
}

// LastPosition returns the last interpreted position of subject.
func (ce *ObjLocationCE) LastPosition(subject guid.GUID) (location.Ref, bool) {
	ce.mu.Lock()
	defer ce.mu.Unlock()
	ref, ok := ce.last[subject]
	return ref, ok
}

// Serve implements the "object-location" advertisement: op "locate" with
// args {"subject": "<guid>"} returns the last known position.
func (ce *ObjLocationCE) Serve(op string, args map[string]any) (map[string]any, error) {
	if op != "locate" {
		return nil, fmt.Errorf("%w: %q", ErrNoService, op)
	}
	s, _ := args["subject"].(string)
	subject, err := guid.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("entity: locate: bad subject: %w", err)
	}
	ref, ok := ce.LastPosition(subject)
	if !ok {
		return nil, fmt.Errorf("entity: locate: no position for %s", subject.Short())
	}
	return refPayload(ref), nil
}

// PathCE is the pathCE of Section 3.2: it consumes location.position events
// for two watched subjects and emits a path.route event (the route between
// them) whenever either moves.
type PathCE struct {
	*Base
	places *location.Map

	mu   sync.Mutex
	a, b guid.GUID
	posA location.Ref
	posB location.Ref
}

// NewPathCE builds a path computer over the given map.
func NewPathCE(places *location.Map, clk clock.Clock) *PathCE {
	prof := profile.Profile{
		Name:    "pathCE",
		Inputs:  []ctxtype.Type{ctxtype.LocationPosition, ctxtype.LocationPosition},
		Outputs: []ctxtype.Type{ctxtype.PathRoute},
		Advertisement: &profile.Advertisement{
			Interface:  "path",
			Operations: []string{"watch"},
		},
	}
	ce := &PathCE{places: places}
	ce.Base = NewBase(guid.KindEntity, prof, clk)
	return ce
}

// Watch sets the two subjects whose separation the CE computes.
func (ce *PathCE) Watch(a, b guid.GUID) {
	ce.mu.Lock()
	ce.a, ce.b = a, b
	ce.posA, ce.posB = location.Ref{}, location.Ref{}
	ce.mu.Unlock()
}

// Serve implements the "path" advertisement: op "watch" with args
// {"a": "<guid>", "b": "<guid>"}.
func (ce *PathCE) Serve(op string, args map[string]any) (map[string]any, error) {
	if op != "watch" {
		return nil, fmt.Errorf("%w: %q", ErrNoService, op)
	}
	as, _ := args["a"].(string)
	bs, _ := args["b"].(string)
	a, err := guid.Parse(as)
	if err != nil {
		return nil, fmt.Errorf("entity: watch: bad a: %w", err)
	}
	b, err := guid.Parse(bs)
	if err != nil {
		return nil, fmt.Errorf("entity: watch: bad b: %w", err)
	}
	ce.Watch(a, b)
	return map[string]any{"watching": true}, nil
}

// HandleInput updates the watched subject's position and re-emits the path.
func (ce *PathCE) HandleInput(e event.Event) {
	if ce.places == nil || e.Subject.IsNil() {
		return
	}
	ref := refFromPayload(e.Payload)
	if ref.Empty() {
		return
	}
	ce.mu.Lock()
	switch e.Subject {
	case ce.a:
		ce.posA = ref
	case ce.b:
		ce.posB = ref
	default:
		ce.mu.Unlock()
		return
	}
	a, b := ce.posA, ce.posB
	subjA, subjB := ce.a, ce.b
	ce.mu.Unlock()

	if a.Empty() || b.Empty() {
		return
	}
	route, err := ce.places.ShortestRoute(a, b)
	if err != nil {
		return // disconnected; emit nothing rather than a wrong route
	}
	placeNames := make([]string, len(route.Places))
	for i, p := range route.Places {
		placeNames[i] = string(p)
	}
	_ = ce.Emit(ctxtype.PathRoute, subjA, map[string]any{
		"from":   subjA.String(),
		"to":     subjB.String(),
		"places": placeNames,
		"length": route.Length,
		"hops":   route.Hops(),
	})
}

// AggregatorCE averages a numeric payload field over a sliding window of
// the last N events — the Context Toolkit "aggregator" archetype (e.g. a
// smoothed temperature).
type AggregatorCE struct {
	*Base
	field  string
	window int

	mu   sync.Mutex
	vals []float64
}

// NewAggregatorCE builds an averaging aggregator: consumes `in`, produces
// `out`, averaging payload[field] over `window` samples.
func NewAggregatorCE(name string, in, out ctxtype.Type, field string, window int, clk clock.Clock) *AggregatorCE {
	if window < 1 {
		window = 1
	}
	prof := profile.Profile{
		Name:    name,
		Inputs:  []ctxtype.Type{in},
		Outputs: []ctxtype.Type{out},
	}
	ce := &AggregatorCE{field: field, window: window}
	ce.Base = NewBase(guid.KindEntity, prof, clk)
	return ce
}

// HandleInput accumulates and emits the running mean.
func (ce *AggregatorCE) HandleInput(e event.Event) {
	v, ok := e.Float(ce.field)
	if !ok {
		return
	}
	ce.mu.Lock()
	ce.vals = append(ce.vals, v)
	if len(ce.vals) > ce.window {
		ce.vals = ce.vals[len(ce.vals)-ce.window:]
	}
	var sum float64
	for _, x := range ce.vals {
		sum += x
	}
	mean := sum / float64(len(ce.vals))
	n := len(ce.vals)
	ce.mu.Unlock()

	out := ce.Profile().Outputs[0]
	_ = ce.Emit(out, e.Subject, map[string]any{
		ce.field: mean,
		"window": n,
	})
}

// InterpreterCE converts events from one representation to another using
// the type registry's converters — the Context Toolkit "interpreter"
// archetype (e.g. Kelvin → Celsius).
type InterpreterCE struct {
	*Base
	reg      *ctxtype.Registry
	from, to ctxtype.Type
}

// NewInterpreterCE builds a converter CE for the from→to pair registered in
// reg.
func NewInterpreterCE(name string, reg *ctxtype.Registry, from, to ctxtype.Type, clk clock.Clock) *InterpreterCE {
	prof := profile.Profile{
		Name:    name,
		Inputs:  []ctxtype.Type{from},
		Outputs: []ctxtype.Type{to},
	}
	ce := &InterpreterCE{reg: reg, from: from, to: to}
	ce.Base = NewBase(guid.KindEntity, prof, clk)
	return ce
}

// HandleInput converts and re-emits.
func (ce *InterpreterCE) HandleInput(e event.Event) {
	payload, err := ce.reg.Convert(ce.from, ce.to, e.Payload)
	if err != nil {
		return
	}
	_ = ce.Emit(ce.to, e.Subject, payload)
}

// refPayload flattens a location.Ref into an event payload.
func refPayload(r location.Ref) map[string]any {
	p := map[string]any{}
	if r.Place != "" {
		p["place"] = string(r.Place)
	}
	if r.Path != "" {
		p["path"] = string(r.Path)
	}
	if r.Point != nil {
		p["frame"] = r.Point.Frame
		p["x"] = r.Point.X
		p["y"] = r.Point.Y
	}
	return p
}

// refFromPayload reconstructs a location.Ref from an event payload.
func refFromPayload(p map[string]any) location.Ref {
	var r location.Ref
	if s, ok := p["place"].(string); ok && s != "" {
		r.Place = location.PlaceID(s)
	}
	if s, ok := p["path"].(string); ok && s != "" {
		r.Path = location.Path(s)
	}
	frame, okF := p["frame"].(string)
	x, okX := toFloat(p["x"])
	y, okY := toFloat(p["y"])
	if okF && okX && okY {
		r.Point = &location.Point{Frame: frame, X: x, Y: y}
	}
	return r
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	default:
		return 0, false
	}
}

var (
	_ CE = (*FuncCE)(nil)
	_ CE = (*ObjLocationCE)(nil)
	_ CE = (*PathCE)(nil)
	_ CE = (*AggregatorCE)(nil)
	_ CE = (*InterpreterCE)(nil)
)
