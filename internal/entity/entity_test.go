package entity

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/profile"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

// capture is a Publisher that records published events.
type capture struct {
	mu  sync.Mutex
	evs []event.Event
}

func (c *capture) Publish(e event.Event) error {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
	return nil
}

func (c *capture) all() []event.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]event.Event, len(c.evs))
	copy(out, c.evs)
	return out
}

func testMap(t testing.TB) *location.Map {
	t.Helper()
	places := []location.Place{
		{ID: "lobby", Path: "b/f/lobby", Centroid: location.Point{Frame: "F", X: 0, Y: 0}},
		{ID: "corr", Path: "b/f/corr", Centroid: location.Point{Frame: "F", X: 10, Y: 0}},
		{ID: "r1", Path: "b/f/r1", Centroid: location.Point{Frame: "F", X: 20, Y: 0}},
		{ID: "r2", Path: "b/f/r2", Centroid: location.Point{Frame: "F", X: 30, Y: 0}},
	}
	links := []location.Link{
		{A: "lobby", B: "corr"}, {A: "corr", B: "r1"}, {A: "corr", B: "r2"},
	}
	m, err := location.NewMap(places, links)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBaseIdentityAndProfile(t *testing.T) {
	clk := clock.NewManual(epoch)
	b := NewBase(guid.KindEntity, profile.Profile{Name: "x"}, clk)
	if b.ID().Kind() != guid.KindEntity {
		t.Fatal("kind wrong")
	}
	p := b.Profile()
	if p.Entity != b.ID() || p.Name != "x" {
		t.Fatalf("profile = %+v", p)
	}
	// Profile copies are isolated.
	p.Name = "mutated"
	if b.Profile().Name != "x" {
		t.Fatal("Profile returned shared storage")
	}
	b.UpdateProfile(func(p *profile.Profile) {
		p.Name = "y"
		p.Entity = guid.New(guid.KindEntity) // must be forced back
	})
	if got := b.Profile(); got.Name != "y" || got.Entity != b.ID() {
		t.Fatalf("UpdateProfile result = %+v", got)
	}
}

func TestBaseEmitLifecycle(t *testing.T) {
	clk := clock.NewManual(epoch)
	b := NewBase(guid.KindEntity, profile.Profile{Name: "x", Quality: 0.8}, clk)
	if err := b.Emit(ctxtype.TemperatureCelsius, guid.Nil, nil); !errors.Is(err, ErrDetached) {
		t.Fatalf("emit while detached: %v", err)
	}
	var pub capture
	rng := guid.New(guid.KindRange)
	b.Attach(&pub)
	b.SetRange(rng)
	if !b.Attached() {
		t.Fatal("not attached")
	}
	subj := guid.New(guid.KindPerson)
	for i := 0; i < 3; i++ {
		if err := b.Emit(ctxtype.TemperatureCelsius, subj, map[string]any{"value": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	evs := pub.all()
	if len(evs) != 3 {
		t.Fatalf("published %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
		if e.Source != b.ID() || e.Subject != subj || e.Range != rng {
			t.Fatalf("event fields wrong: %+v", e)
		}
		if e.Quality != 0.8 {
			t.Fatalf("quality = %v", e.Quality)
		}
		if !e.Time.Equal(epoch) {
			t.Fatal("event time should come from the injected clock")
		}
	}
	if b.Sequenced() != 3 {
		t.Fatal("sequence counter wrong")
	}
	b.Detach()
	if b.Attached() {
		t.Fatal("still attached")
	}
	if err := b.Emit(ctxtype.TemperatureCelsius, guid.Nil, nil); !errors.Is(err, ErrDetached) {
		t.Fatal("emit after detach succeeded")
	}
	// Base has no service.
	if _, err := b.Serve("anything", nil); !errors.Is(err, ErrNoService) {
		t.Fatalf("Serve = %v", err)
	}
}

func TestCAAConsumeHandlerAndInbox(t *testing.T) {
	clk := clock.NewManual(epoch)
	var mu sync.Mutex
	var got []event.Event
	caa := NewCAA("app", func(e event.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}, clk)
	e := event.New(ctxtype.PrinterStatus, guid.New(guid.KindDevice), 1, epoch, nil)
	caa.Consume(e)
	mu.Lock()
	if len(got) != 1 {
		t.Fatal("handler not invoked")
	}
	mu.Unlock()
	if caa.PendingEvents() != 0 {
		t.Fatal("handler CAA should not queue")
	}

	inboxCAA := NewCAA("app2", nil, clk)
	inboxCAA.Consume(e)
	inboxCAA.Consume(e)
	if inboxCAA.PendingEvents() != 2 {
		t.Fatal("inbox not filled")
	}
	if evs := inboxCAA.TakeEvents(); len(evs) != 2 {
		t.Fatal("TakeEvents wrong")
	}
	if inboxCAA.PendingEvents() != 0 {
		t.Fatal("TakeEvents did not drain")
	}
}

func TestFuncCE(t *testing.T) {
	clk := clock.NewManual(epoch)
	prof := profile.Profile{
		Name:    "doubler",
		Inputs:  []ctxtype.Type{ctxtype.TemperatureCelsius},
		Outputs: []ctxtype.Type{ctxtype.TemperatureCelsius},
	}
	ce := NewFuncCE(prof, clk, func(ce *FuncCE, e event.Event) {
		v, _ := e.Float("value")
		_ = ce.Emit(ctxtype.TemperatureCelsius, e.Subject, map[string]any{"value": v * 2})
	})
	var pub capture
	ce.Attach(&pub)
	ce.HandleInput(event.New(ctxtype.TemperatureCelsius, guid.New(guid.KindDevice), 1, epoch,
		map[string]any{"value": 21.0}))
	evs := pub.all()
	if len(evs) != 1 {
		t.Fatal("no output")
	}
	if v, _ := evs[0].Float("value"); v != 42 {
		t.Fatalf("value = %v", v)
	}
}

func TestObjLocationCE(t *testing.T) {
	clk := clock.NewManual(epoch)
	m := testMap(t)
	ce := NewObjLocationCE(m, clk)
	var pub capture
	ce.Attach(&pub)

	bob := guid.New(guid.KindPerson)
	sensor := guid.New(guid.KindDevice)

	// A sighting with a place reference becomes an interpreted position.
	sighting := event.New(ctxtype.LocationSightingDoor, sensor, 1, epoch,
		map[string]any{"place": "r1"}).WithSubject(bob)
	ce.HandleInput(sighting)

	evs := pub.all()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	out := evs[0]
	if out.Type != ctxtype.LocationPosition || out.Subject != bob {
		t.Fatalf("output = %+v", out)
	}
	if p, _ := out.Str("place"); p != "r1" {
		t.Fatal("place lost")
	}
	if p, _ := out.Str("path"); p != "b/f/r1" {
		t.Fatal("resolution did not fill hierarchical path")
	}
	ref, ok := ce.LastPosition(bob)
	if !ok || ref.Place != "r1" {
		t.Fatal("LastPosition wrong")
	}

	// Sightings without a subject or without a place are ignored.
	ce.HandleInput(event.New(ctxtype.LocationSightingDoor, sensor, 2, epoch, map[string]any{"place": "r1"}))
	ce.HandleInput(event.New(ctxtype.LocationSightingDoor, sensor, 3, epoch, nil).WithSubject(bob))
	if len(pub.all()) != 1 {
		t.Fatal("degenerate sightings produced output")
	}

	// Serve: locate.
	res, err := ce.Serve("locate", map[string]any{"subject": bob.String()})
	if err != nil {
		t.Fatal(err)
	}
	if res["place"] != "r1" {
		t.Fatalf("locate = %v", res)
	}
	if _, err := ce.Serve("locate", map[string]any{"subject": guid.New(guid.KindPerson).String()}); err == nil {
		t.Fatal("locate unknown subject succeeded")
	}
	if _, err := ce.Serve("bogus", nil); !errors.Is(err, ErrNoService) {
		t.Fatal("unknown op accepted")
	}
}

func TestPathCE(t *testing.T) {
	clk := clock.NewManual(epoch)
	m := testMap(t)
	ce := NewPathCE(m, clk)
	var pub capture
	ce.Attach(&pub)

	bob := guid.New(guid.KindPerson)
	john := guid.New(guid.KindPerson)
	if _, err := ce.Serve("watch", map[string]any{"a": bob.String(), "b": john.String()}); err != nil {
		t.Fatal(err)
	}
	src := guid.New(guid.KindEntity)

	// Only one position known: no path yet.
	ce.HandleInput(event.New(ctxtype.LocationPosition, src, 1, epoch,
		map[string]any{"place": "r1"}).WithSubject(bob))
	if len(pub.all()) != 0 {
		t.Fatal("path emitted with one endpoint")
	}
	// Second position: path r1 → corr → r2.
	ce.HandleInput(event.New(ctxtype.LocationPosition, src, 2, epoch,
		map[string]any{"place": "r2"}).WithSubject(john))
	evs := pub.all()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Type != ctxtype.PathRoute {
		t.Fatal("wrong output type")
	}
	places, ok := evs[0].Payload["places"].([]string)
	if !ok || len(places) != 3 || places[0] != "r1" || places[2] != "r2" {
		t.Fatalf("places = %v", evs[0].Payload["places"])
	}
	// Update: Bob moves to lobby → new path emitted.
	ce.HandleInput(event.New(ctxtype.LocationPosition, src, 3, epoch,
		map[string]any{"place": "lobby"}).WithSubject(bob))
	if len(pub.all()) != 2 {
		t.Fatal("no update after movement")
	}
	// Events for unrelated subjects are ignored.
	ce.HandleInput(event.New(ctxtype.LocationPosition, src, 4, epoch,
		map[string]any{"place": "r1"}).WithSubject(guid.New(guid.KindPerson)))
	if len(pub.all()) != 2 {
		t.Fatal("unrelated subject emitted path")
	}
	// Bad watch args.
	if _, err := ce.Serve("watch", map[string]any{"a": "junk", "b": john.String()}); err == nil {
		t.Fatal("bad watch args accepted")
	}
}

func TestAggregatorCE(t *testing.T) {
	clk := clock.NewManual(epoch)
	ce := NewAggregatorCE("avg-temp", ctxtype.TemperatureCelsius, ctxtype.TemperatureCelsius,
		"value", 3, clk)
	var pub capture
	ce.Attach(&pub)
	src := guid.New(guid.KindDevice)
	for i, v := range []float64{10, 20, 30, 40} {
		ce.HandleInput(event.New(ctxtype.TemperatureCelsius, src, uint64(i), epoch,
			map[string]any{"value": v}))
	}
	evs := pub.all()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	// Means: 10, 15, 20, then window slides: (20+30+40)/3 = 30.
	wantMeans := []float64{10, 15, 20, 30}
	for i, e := range evs {
		if v, _ := e.Float("value"); v != wantMeans[i] {
			t.Fatalf("mean[%d] = %v, want %v", i, v, wantMeans[i])
		}
	}
	// Non-numeric payloads ignored.
	ce.HandleInput(event.New(ctxtype.TemperatureCelsius, src, 9, epoch, map[string]any{"value": "NaNsense"}))
	if len(pub.all()) != 4 {
		t.Fatal("non-numeric input produced output")
	}
}

func TestInterpreterCE(t *testing.T) {
	clk := clock.NewManual(epoch)
	reg := ctxtype.NewRegistry()
	ce := NewInterpreterCE("k2c", reg, ctxtype.TemperatureKelvin, ctxtype.TemperatureCelsius, clk)
	var pub capture
	ce.Attach(&pub)
	src := guid.New(guid.KindDevice)
	ce.HandleInput(event.New(ctxtype.TemperatureKelvin, src, 1, epoch, map[string]any{"value": 300.0}))
	evs := pub.all()
	if len(evs) != 1 || evs[0].Type != ctxtype.TemperatureCelsius {
		t.Fatalf("events = %+v", evs)
	}
	if v, _ := evs[0].Float("value"); v < 26.84 || v > 26.86 {
		t.Fatalf("converted = %v", v)
	}
	// Unconvertible payload ignored.
	ce.HandleInput(event.New(ctxtype.TemperatureKelvin, src, 2, epoch, nil))
	if len(pub.all()) != 1 {
		t.Fatal("bad payload converted")
	}
}

func TestRefPayloadRoundTrip(t *testing.T) {
	ref := location.Ref{
		Place: "r1",
		Path:  "b/f/r1",
		Point: &location.Point{Frame: "F", X: 1, Y: 2},
	}
	back := refFromPayload(refPayload(ref))
	if back.Place != ref.Place || back.Path != ref.Path {
		t.Fatal("names lost")
	}
	if back.Point == nil || back.Point.X != 1 || back.Point.Y != 2 || back.Point.Frame != "F" {
		t.Fatal("point lost")
	}
	if !refFromPayload(map[string]any{}).Empty() {
		t.Fatal("empty payload produced non-empty ref")
	}
}
