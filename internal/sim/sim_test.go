package sim

import (
	"strings"
	"testing"
	"time"
)

func TestNewBuilding(t *testing.T) {
	b, err := NewBuilding(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// 3 floors × (lobby + corridor + 6 rooms) places.
	if got := len(b.Map.Places()); got != 3*8 {
		t.Fatalf("places = %d", got)
	}
	// Rooms reachable from every lobby (cross-floor too).
	if _, err := b.Map.ShortestRoute(
		atPlace(b.Lobbies[0]), atPlace(b.Rooms[2][5])); err != nil {
		t.Fatalf("cross-floor route: %v", err)
	}
	// Every room has a named door.
	for f := range b.Rooms {
		for _, r := range b.Rooms[f] {
			if b.DoorOf[r] == "" {
				t.Fatalf("room %s without door", r)
			}
		}
	}
	if b.FloorPath(1) != "campus/tower/f1" {
		t.Fatal("FloorPath wrong")
	}
	if _, err := NewBuilding(0, 5); err == nil {
		t.Fatal("zero floors accepted")
	}
}

func TestCAPAScenario(t *testing.T) {
	res, err := RunE7()
	if err != nil {
		t.Fatal(err)
	}
	if !res.BobCorrect {
		t.Errorf("Bob printed to %s, want P1", res.BobPrinter)
	}
	if !res.JohnCorrect {
		t.Errorf("John printed to %s, want P4", res.JohnPrinter)
	}
	tbl := E7Table(res)
	if !strings.Contains(tbl.String(), "bob") {
		t.Fatal("table rendering broken")
	}
}

func TestRunE1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunE1([]int{32}, 400, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The paper's claim: comparable hops, avoided bottleneck. Overlay relay
	// load must be spread far more evenly than the tree's root-heavy load.
	if r.OverlayRelayRatio >= r.TreeRelayRatio {
		t.Fatalf("overlay max/mean %.2f not better than tree %.2f",
			r.OverlayRelayRatio, r.TreeRelayRatio)
	}
	if r.OverlayHopsP99 > 12 {
		t.Fatalf("overlay p99 hops = %d", r.OverlayHopsP99)
	}
	if E1Table(rows).String() == "" {
		t.Fatal("table empty")
	}
}

func TestRunE2E3Shapes(t *testing.T) {
	rows2, err := RunE2([]int{50})
	if err != nil {
		t.Fatal(err)
	}
	if rows2[0].RegisterPerSec <= 0 || rows2[0].EventsPerSec <= 0 {
		t.Fatalf("e2 rates: %+v", rows2[0])
	}
	_ = E2Table(rows2)

	rows3, err := RunE3([]int{60}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows3[0].Depth != 4 {
		t.Fatalf("e3 depth = %d", rows3[0].Depth)
	}
	if rows3[0].ReuseHits == 0 {
		t.Fatal("e3 expected cache reuse on repeat resolutions")
	}
	_ = E3Table(rows3)
}

func TestRunE4E5E6Shapes(t *testing.T) {
	rows4, err := RunE4([]int{4}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rows4[0].EventsPerSec <= 0 {
		t.Fatal("e4 rate zero")
	}
	_ = E4Table(rows4)

	rows5, err := RunE5([]int{32})
	if err != nil {
		t.Fatal(err)
	}
	if rows5[0].P99 < rows5[0].P50 {
		t.Fatal("e5 quantiles inverted")
	}
	_ = E5Table(rows5)

	rows6, err := RunE6(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows6) != 4 {
		t.Fatalf("e6 modes = %d", len(rows6))
	}
	for _, r := range rows6 {
		if r.XMLSize <= 0 || r.RoundTrip <= 0 {
			t.Fatalf("e6 row: %+v", r)
		}
	}
	_ = E6Table(rows6)
}

func TestRunE8E9E10Shapes(t *testing.T) {
	rows8, err := RunE8([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if !rows8[0].Repaired {
		t.Fatal("e8 repair failed with spare providers")
	}
	_ = E8Table(rows8)

	r9, err := RunE9(3)
	if err != nil {
		t.Fatal(err)
	}
	if !r9.Rebound {
		t.Fatalf("e9 rebind failed: %+v", r9)
	}
	_ = E9Table(r9)

	rows10, err := RunE10([]int{1, 4}, 80, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows10) != 2 || rows10[0].QueriesPerSec <= 0 {
		t.Fatalf("e10 rows: %+v", rows10)
	}
	_ = E10Table(rows10)
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "test",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxxxxx", "1"}},
	}
	s := tbl.String()
	if !strings.Contains(s, "long-header") || !strings.Contains(s, "xxxxxxxx") {
		t.Fatalf("render = %q", s)
	}
}

func TestRunE11CrossRangeFanOut(t *testing.T) {
	rows, fleet, err := RunE11([]int{3}, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.EventsPerSec <= 0 {
		t.Fatalf("no throughput: %+v", r)
	}
	if want := float64(512 / 16); r.MsgsPerPeer != want {
		t.Fatalf("msgs/peer = %.1f, want %.0f (= ceil(512/16))", r.MsgsPerPeer, want)
	}
	if fleet == nil || fleet.Ranges != 3 {
		t.Fatalf("fleet rollup = %+v", fleet)
	}
	if fleet.Totals["dropped"] != 0 {
		t.Fatalf("fleet dropped %v events", fleet.Totals["dropped"])
	}
}

func TestRunE12Shape(t *testing.T) {
	rows, bp, err := RunE12(1500, 16, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "static" || rows[1].Mode != "adaptive" {
		t.Fatalf("rows = %+v, want a static and an adaptive row", rows)
	}
	for _, r := range rows {
		if r.HotEventsPerSec <= 0 {
			t.Fatalf("%s row measured no hot throughput", r.Mode)
		}
		if r.IdleP50 <= 0 {
			t.Fatalf("%s row measured no idle latency", r.Mode)
		}
	}
	// The point of adaptation: idle deliveries stop waiting out the static
	// flush delay.
	if rows[1].IdleP50 >= 2*time.Millisecond {
		t.Fatalf("adaptive idle p50 = %v, want below the 2ms static BatchMaxDelay", rows[1].IdleP50)
	}
	if bp == nil {
		t.Fatal("no backpressure phase result")
	}
	if bp.ThrottleEvents == 0 || bp.DropsReported == 0 {
		t.Fatalf("overload induced no throttling: %+v", bp)
	}
	if bp.OverloadFlushPerSec >= bp.HealthyFlushPerSec {
		t.Fatalf("throttling did not reduce the flush rate: healthy %.0f → overload %.0f",
			bp.HealthyFlushPerSec, bp.OverloadFlushPerSec)
	}
	if E12Table(rows).String() == "" || E12BackpressureTable(bp).String() == "" {
		t.Fatal("empty tables")
	}
}

func TestRunE13Shape(t *testing.T) {
	res, err := RunE13(64, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.HealthyFlushPerSec <= 0 {
		t.Fatal("healthy window measured no origin flushes")
	}
	// The timing assertions hold on real builds only: under -race the
	// CPU-bound decode at the relay slows 10-20×, its unbounded transport
	// inbox buffers the backlog instead of any ring overflowing, and the
	// experiment's contention point (the sink's slow consumer) never
	// engages — no drops, no credit, no collapse to measure. The credit
	// mechanism itself is race-covered deterministically by the scinet
	// chain suite (TestChainOriginThrottlesOnRelayDownstream); here the
	// race build only exercises the experiment machinery for data races.
	if !raceEnabled {
		if res.OverloadFlushPerSec >= res.HealthyFlushPerSec {
			t.Fatalf("relay-side overload did not slow the origin: healthy %.0f → overload %.0f",
				res.HealthyFlushPerSec, res.OverloadFlushPerSec)
		}
		// The acceptance bar: origin flush rate collapses ≥10× on
		// relay-reported downstream congestion (scibench/BenchmarkE13
		// measure ~45-56× on an unloaded box).
		if res.Collapse < 10 {
			t.Fatalf("origin flush-rate collapse = %.1f×, want ≥ 10×", res.Collapse)
		}
		if !res.OriginThrottled {
			t.Fatal("origin not throttled at the end of the overload window")
		}
		if res.RelayDownstream == 0 {
			t.Fatal("relay accumulated no downstream drops")
		}
		if res.SinkDropsFromRelay == 0 {
			t.Fatal("sink attributed no drops to the relay's traffic")
		}
		if res.FleetDropGauges == 0 {
			t.Fatal("no per-publisher drop gauges in the fleet rollup")
		}
	}
	// Ack economy: standalone frames on a hot bidirectional link must cost
	// at most 55% of PR 4's one-ack-per-batch. Same gate: a race build
	// overloads the link for real (slowed handlers overflow the delivery
	// queue), and genuine drops rightly make every report urgent — the
	// deterministic piggyback coverage lives in rangesvc's
	// TestPiggybackedCreditSuppressesStandaloneAcks.
	if res.BatchesEachWay == 0 {
		t.Fatalf("ack phase shipped no batches: %+v", res)
	}
	if !raceEnabled {
		if res.PiggybackedAcks == 0 {
			t.Fatalf("hot bidirectional link piggybacked nothing: %+v", res)
		}
		if res.AckRatioVsPR4 > 0.55 {
			t.Fatalf("standalone-ack ratio vs PR4 = %.2f, want ≤ 0.55", res.AckRatioVsPR4)
		}
	}
	if E13Table(res).String() == "" || E13AckTable(res).String() == "" {
		t.Fatal("empty tables")
	}
}

func TestRunE14Shape(t *testing.T) {
	res, err := RunE14(2000, 64, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalSoloP99 <= 0 || res.RemoteSoloP99 <= 0 {
		t.Fatalf("solo baselines unmeasured: %+v", res)
	}
	if res.FloodOffered == 0 || res.FloodAdmitted == 0 {
		t.Fatalf("hostile flood unmeasured: %+v", res)
	}
	if !res.QuotaGauge {
		t.Fatal("hostile source never surfaced in quota_rejected_from_* gauges")
	}
	// The timing bars hold on real builds only: under -race every handler
	// and the flood loop slow 10-20× and the p99 ratios measure scheduler
	// noise, not the isolation mechanism (which the eventbus, flow, and
	// scinet -race suites cover deterministically).
	if !raceEnabled {
		// The hostile tenant's admitted throughput is clipped to the quota
		// within ±10%.
		if res.FloodClipErr > 0.10 {
			t.Fatalf("hostile admission off quota by %.1f%% (admitted %d, expected %.0f)",
				100*res.FloodClipErr, res.FloodAdmitted, res.FloodExpected)
		}
		// The well tenant's p99 stays within 3× its solo baseline on the
		// shared Range and across the shared fabric. Micro-scale baselines
		// make a pure ratio noise-dominated, so each bar carries a small
		// absolute floor.
		if res.LocalQuotaP99 > 3*res.LocalSoloP99 && res.LocalQuotaP99 > 10*time.Millisecond {
			t.Fatalf("shared-range p99 %v vs solo %v: hostile tenant leaked through the quota",
				res.LocalQuotaP99, res.LocalSoloP99)
		}
		if res.RemoteQuotaP99 > 3*res.RemoteSoloP99 && res.RemoteQuotaP99 > 50*time.Millisecond {
			t.Fatalf("shared-fabric p99 %v vs solo %v: hostile tenant leaked through the quota",
				res.RemoteQuotaP99, res.RemoteSoloP99)
		}
		// The weights-only collapse must shed from the flooding source and
		// never from the paced one.
		if !res.ControlThrottled {
			t.Fatal("weights-only control never engaged the credit throttle")
		}
		if res.ShedHostile == 0 {
			t.Fatal("collapse shed nothing from the hostile source")
		}
	}
	// Shed attribution to the paced source must be zero on every build.
	if res.ShedWell != 0 {
		t.Fatalf("fair shed charged %d events to the well-behaved source", res.ShedWell)
	}
	if E14Table(res).String() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("two four-fleet E16 builds in -short mode")
	}
	rows, err := RunE16([]int{28, 40}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want flat+hier at each size", len(rows))
	}
	for _, r := range rows {
		// Delivery correctness holds at every scale and in both modes; the
		// sublinearity and 0.5× bars need the full 32→128 sweep (scibench
		// -exp e16, enforced by E16Check in CI) to be meaningful.
		if r.Lost != 0 || r.Dups != 0 {
			t.Fatalf("%s/%d lost %d dups %d: %+v", r.Mode, r.Fabrics, r.Lost, r.Dups, r)
		}
		if r.Mode == "hier" && r.DigestUpdates == 0 {
			t.Fatalf("hier/%d exchanged no digests: %+v", r.Fabrics, r)
		}
	}
	// At equal fleet size the hierarchy must hold less interest state than
	// flat flooding — the structural claim, scale-independent.
	for i := 0; i+1 < len(rows); i += 2 {
		flat, hier := rows[i], rows[i+1]
		if hier.AvgInterestEntries >= flat.AvgInterestEntries {
			t.Fatalf("hier %d holds %.1f entries/fabric vs flat %.1f",
				hier.Fabrics, hier.AvgInterestEntries, flat.AvgInterestEntries)
		}
	}
	if E16Table(rows).String() == "" {
		t.Fatal("empty table")
	}
	if err := E16Check(rows[:3]); err == nil {
		t.Fatal("E16Check accepted unpaired rows")
	}
}
