package sim

// E14 (ISSUE 6): hostile-tenant isolation. Two tenants share first a Range
// and then a SCINET fabric: a well-behaved publisher pacing one event per
// 2ms, and a hostile one flooding as fast as the CPU allows. Phase A
// measures the shared Range's dispatch edge — with a per-publisher
// admission quota the hostile flood is clipped to its configured rate at
// the publish call and the well tenant's delivery p99 stays within 3× its
// solo baseline; a no-quota control shows what the flood does otherwise.
// Phase B repeats the contest across a fabric link whose remote consumer
// is the shared bottleneck: the admission quota keeps total inflow under
// the consumer's capacity (so the credit throttle never engages and the
// well tenant's cross-fabric p99 holds the same 3× bar), and a
// weights-only control — fair flushing on, admission off — collapses the
// link to prove the deficit-round-robin shed discipline charges evictions
// to the flooding source and none to the paced one.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mediator"
	"sci/internal/scinet"
	"sci/internal/server"
	"sci/internal/transport"
)

// E14Result reports the hostile-tenant isolation experiment.
type E14Result struct {
	// Rate/Burst are the per-publisher admission quota; Batch the
	// BatchMaxEvents ceiling.
	Rate  float64
	Burst int
	Batch int

	// Phase A: shared Range, local dispatch.
	LocalSoloP99    time.Duration // well tenant alone
	LocalQuotaP99   time.Duration // hostile flood, quota on
	LocalQuotaX     float64       // LocalQuotaP99 / LocalSoloP99
	LocalControlP99 time.Duration // hostile flood, quota off
	LocalControlX   float64

	// Hostile admission accounting from the quota run: Offered events at
	// the publish edge, Admitted past the token bucket, the Expected
	// admission (burst + rate × flood duration) and the relative clip
	// error |admitted − expected| / expected (acceptance bar ≤ 0.10).
	FloodOffered  uint64
	FloodAdmitted uint64
	FloodExpected float64
	FloodClipErr  float64
	// QuotaGauge reports whether the hostile source surfaced in the
	// Range's quota_rejected_from_* stats gauges.
	QuotaGauge bool

	// Phase B: shared fabric, remote consumer is the bottleneck.
	RemoteSoloP99    time.Duration
	RemoteQuotaP99   time.Duration
	RemoteQuotaX     float64
	RemoteControlP99 time.Duration // weights-only control (no admission)
	// Shed attribution from the weights-only collapse: DRR evictions
	// charged to the hostile source vs the well-behaved one (acceptance:
	// hostile > 0, well == 0).
	ShedHostile uint64
	ShedWell    uint64
	// ControlThrottled reports whether the fan path actually engaged its
	// credit throttle during the collapse (the shed discipline's
	// precondition).
	ControlThrottled bool
}

// e14Latencies collects per-event delivery latencies for one tenant.
type e14Latencies struct {
	mu sync.Mutex
	ds []time.Duration
}

func (l *e14Latencies) note(e event.Event) {
	ns, ok := e14SentNs(e)
	if !ok {
		return
	}
	d := time.Duration(time.Now().UnixNano() - ns)
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

func (l *e14Latencies) p99() time.Duration {
	l.mu.Lock()
	ds := append([]time.Duration(nil), l.ds...)
	l.mu.Unlock()
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[(len(ds)*99)/100]
}

// e14SentNs extracts the send timestamp a well-tenant event carries. Local
// dispatch hands the payload back untouched (int64); the fabric path
// round-trips it through JSON (float64).
func e14SentNs(e event.Event) (int64, bool) {
	switch v := e.Payload["sent"].(type) {
	case int64:
		return v, true
	case float64:
		return int64(v), true
	}
	return 0, false
}

func e14WellEvent(src guid.GUID, seq uint64) event.Event {
	now := time.Now()
	return event.New(ctxtype.TemperatureCelsius, src, seq, now,
		map[string]any{"value": 294.0, "sent": now.UnixNano()})
}

// e14Flood publishes hostile batches of 64 every millisecond (~60k events/s
// offered, 30× the quota) until stop flips, counting the offered events. The
// inter-batch sleep keeps the flood an event flood rather than a CPU-starvation
// attack: on a small host a spin loop would monopolize the scheduler and
// degrade the well tenant through the OS, which no dispatch-layer quota can
// prevent and which is not what E14 measures.
func e14Flood(pub func([]event.Event) error, src guid.GUID, stop *atomic.Bool, offered *atomic.Uint64) {
	var seq uint64
	buf := make([]event.Event, 0, 64)
	for !stop.Load() {
		buf = buf[:0]
		now := time.Now()
		for i := 0; i < 64; i++ {
			seq++
			buf = append(buf, event.New(ctxtype.TemperatureCelsius, src, seq, now,
				map[string]any{"value": 512.0}))
		}
		offered.Add(64)
		if pub(buf) != nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// e14SlowConsumer returns a handler that burns amortized perEvent time per
// hostile event, sleeping in every-16th-event chunks so timer-wakeup
// overhead does not swamp the budget on a single-core host.
func e14SlowConsumer(perEvent time.Duration) func(event.Event) {
	var n atomic.Uint64
	return func(event.Event) {
		if n.Add(1)%16 == 0 {
			time.Sleep(16 * perEvent)
		}
	}
}

// e14Pace publishes one well-tenant event every 2ms for the window.
func e14Pace(pub func([]event.Event) error, src guid.GUID, window time.Duration) {
	var seq uint64
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		seq++
		if pub([]event.Event{e14WellEvent(src, seq)}) != nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runE14Local runs one Phase A window on a fresh shared Range: the well
// tenant paces, the hostile tenant floods if contended, and the well
// tenant's p99 comes from its own Source-filtered subscription.
func runE14Local(rate float64, burst, batch int, maxDelay time.Duration,
	contended bool) (p99 time.Duration, res *E14Result, err error) {
	wellSrc := guid.New(guid.KindDevice)
	hotSrc := guid.New(guid.KindDevice)
	cfg := server.Config{
		Name:             "e14-local",
		Coverage:         location.Path("campus/e14-local"),
		BatchMaxEvents:   batch,
		BatchMaxDelay:    maxDelay,
		AdaptiveBatching: flow.Adaptive{Enabled: true},
	}
	if rate > 0 {
		cfg.PublisherQuota = server.PublisherQuota{Rate: rate, Burst: burst}
	}
	rng := server.New(cfg)
	defer rng.Close()

	lat := &e14Latencies{}
	if _, err := rng.Mediator().Subscribe(guid.New(guid.KindApplication),
		event.Filter{Type: ctxtype.TemperatureCelsius, Source: wellSrc},
		lat.note, mediator.SubOptions{}); err != nil {
		return 0, nil, err
	}
	// The hostile tenant has its own (slow) consumer: realistic floods are
	// published to be read, and the slow ring is what unquota'd dispatch
	// contends on.
	if _, err := rng.Mediator().Subscribe(guid.New(guid.KindApplication),
		event.Filter{Type: ctxtype.TemperatureCelsius, Source: hotSrc},
		e14SlowConsumer(50*time.Microsecond),
		mediator.SubOptions{}); err != nil {
		return 0, nil, err
	}

	const window = 1200 * time.Millisecond
	var stop atomic.Bool
	var offered atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	if contended {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e14Flood(func(evs []event.Event) error {
				return rng.PublishAllFrom(hotSrc, evs)
			}, hotSrc, &stop, &offered)
		}()
	}
	e14Pace(func(evs []event.Event) error {
		return rng.PublishAllFrom(wellSrc, evs)
	}, wellSrc, window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	time.Sleep(100 * time.Millisecond) // drain the delivery rings

	p99 = lat.p99()
	if contended && rate > 0 {
		res = &E14Result{
			FloodOffered:  offered.Load(),
			FloodAdmitted: offered.Load() - rng.QuotaRejectedFor(hotSrc),
			FloodExpected: float64(burst) + rate*elapsed.Seconds(),
		}
		if res.FloodExpected > 0 {
			res.FloodClipErr = (float64(res.FloodAdmitted) - res.FloodExpected) / res.FloodExpected
			if res.FloodClipErr < 0 {
				res.FloodClipErr = -res.FloodClipErr
			}
		}
		prefix := "quota_rejected_from_"
		for k, v := range rng.StatsMap() {
			if len(k) > len(prefix) && k[:len(prefix)] == prefix && v > 0 {
				res.QuotaGauge = true
			}
		}
	}
	return p99, res, nil
}

// runE14Remote runs one Phase B window: both tenants publish into Range A,
// whose fabric fans out to Range B's remote subscriber — the shared
// bottleneck (its hostile-event handler burns 100µs per event). The well
// tenant's p99 is measured at B.
func runE14Remote(quota server.PublisherQuota, batch int, maxDelay time.Duration,
	contended bool) (p99 time.Duration, shedWell, shedHot uint64, throttled bool, err error) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer func() { _ = net.Close() }()
	wellSrc := guid.New(guid.KindDevice)
	hotSrc := guid.New(guid.KindDevice)
	perEvent := 100 * time.Microsecond
	if quota.Weights != nil {
		// The caller's weight map is keyed by role; rebuild it on the
		// per-run GUIDs.
		quota.Weights = map[guid.GUID]int{wellSrc: 1, hotSrc: 1}
	}
	if quota.Weights != nil && quota.Rate <= 0 {
		// The weights-only collapse control exists to prove shed
		// attribution, so the bottleneck must actually collapse during the
		// window even on a heavily loaded host: a slower consumer and a
		// smaller batch (and with it a smaller throttle buffer) turn the
		// overflow from timing-lucky into certain.
		perEvent = 400 * time.Microsecond
		if batch > 8 {
			batch = 8
		}
	}

	rngA := server.New(server.Config{
		Name:             "e14-a",
		Coverage:         location.Path("campus/e14-a"),
		BatchMaxEvents:   batch,
		BatchMaxDelay:    maxDelay,
		AdaptiveBatching: flow.Adaptive{Enabled: true},
		PublisherQuota:   quota,
	})
	defer rngA.Close()
	rngB := server.New(server.Config{
		Name:             "e14-b",
		Coverage:         location.Path("campus/e14-b"),
		BatchMaxEvents:   batch,
		BatchMaxDelay:    maxDelay,
		AdaptiveBatching: flow.Adaptive{Enabled: true},
	})
	defer rngB.Close()

	fA, err := scinet.NewFabric(rngA, net, nil)
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer func() { _ = fA.Close() }()
	fB, err := scinet.NewFabric(rngB, net, nil)
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer func() { _ = fB.Close() }()
	if err := fB.Join(fA.NodeID()); err != nil {
		return 0, 0, 0, false, err
	}

	lat := &e14Latencies{}
	slow := e14SlowConsumer(perEvent)
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication),
		event.Filter{Type: ctxtype.TemperatureCelsius},
		func(e event.Event) {
			if e.Source == wellSrc {
				lat.note(e)
				return
			}
			slow(e)
		}); err != nil {
		return 0, 0, 0, false, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(fA.Interests()[fB.NodeID()]) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	const window = 1200 * time.Millisecond
	var stop atomic.Bool
	var offered atomic.Uint64
	var wg sync.WaitGroup
	if contended {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e14Flood(func(evs []event.Event) error {
				return rngA.PublishAllFrom(hotSrc, evs)
			}, hotSrc, &stop, &offered)
		}()
	}
	e14Pace(func(evs []event.Event) error {
		return rngA.PublishAllFrom(wellSrc, evs)
	}, wellSrc, window)
	stop.Store(true)
	wg.Wait()
	time.Sleep(500 * time.Millisecond) // drain the link and the rings

	sheds := rngA.FlowStats().ShedBySource()
	return lat.p99(), sheds[wellSrc], sheds[hotSrc],
		rngA.FlowStats().Throttled.Value() > 0, nil
}

// RunE14 runs both phases of the hostile-tenant isolation experiment.
func RunE14(rate float64, batch int, maxDelay time.Duration) (*E14Result, error) {
	if rate <= 0 {
		rate = 2000
	}
	if batch < 1 {
		batch = 1
	}
	burst := int(rate / 20)
	if burst < 1 {
		burst = 1
	}
	res := &E14Result{Rate: rate, Burst: burst, Batch: batch}

	// Phase A: shared Range.
	solo, _, err := runE14Local(rate, burst, batch, maxDelay, false)
	if err != nil {
		return nil, err
	}
	res.LocalSoloP99 = solo
	quotaP99, acct, err := runE14Local(rate, burst, batch, maxDelay, true)
	if err != nil {
		return nil, err
	}
	res.LocalQuotaP99 = quotaP99
	if acct != nil {
		res.FloodOffered = acct.FloodOffered
		res.FloodAdmitted = acct.FloodAdmitted
		res.FloodExpected = acct.FloodExpected
		res.FloodClipErr = acct.FloodClipErr
		res.QuotaGauge = acct.QuotaGauge
	}
	controlP99, _, err := runE14Local(0, 0, batch, maxDelay, true)
	if err != nil {
		return nil, err
	}
	res.LocalControlP99 = controlP99
	if solo > 0 {
		res.LocalQuotaX = float64(quotaP99) / float64(solo)
		res.LocalControlX = float64(controlP99) / float64(solo)
	}

	// Phase B: shared fabric link. The quota runs clip hostile admission
	// below the remote consumer's capacity, so the credit throttle never
	// engages; the weights-only control lets the flood through to collapse
	// the link and exercise the DRR shed discipline.
	admission := server.PublisherQuota{Rate: rate, Burst: burst}
	rSolo, _, _, _, err := runE14Remote(admission, batch, maxDelay, false)
	if err != nil {
		return nil, err
	}
	res.RemoteSoloP99 = rSolo
	rQuota, _, _, _, err := runE14Remote(admission, batch, maxDelay, true)
	if err != nil {
		return nil, err
	}
	res.RemoteQuotaP99 = rQuota
	if rSolo > 0 {
		res.RemoteQuotaX = float64(rQuota) / float64(rSolo)
	}
	rCtl, shedWell, shedHot, throttled, err := runE14Remote(
		server.PublisherQuota{Weights: map[guid.GUID]int{}}, batch, maxDelay, true)
	if err != nil {
		return nil, err
	}
	res.RemoteControlP99 = rCtl
	res.ShedWell = shedWell
	res.ShedHostile = shedHot
	res.ControlThrottled = throttled
	return res, nil
}

// E14Table formats the result.
func E14Table(r *E14Result) Table {
	return Table{
		Title: "E14 (ISSUE 6): per-publisher quota + weighted-fair flushing vs a hostile tenant",
		Header: []string{"phase", "solo p99", "quota p99", "×solo", "no-quota p99",
			"clip err", "shed hot/well", "throttled"},
		Rows: [][]string{
			{
				"shared range",
				fmt.Sprintf("%v", r.LocalSoloP99),
				fmt.Sprintf("%v", r.LocalQuotaP99),
				fmt.Sprintf("%.2f", r.LocalQuotaX),
				fmt.Sprintf("%v", r.LocalControlP99),
				fmt.Sprintf("%.3f", r.FloodClipErr),
				"-",
				"-",
			},
			{
				"shared fabric",
				fmt.Sprintf("%v", r.RemoteSoloP99),
				fmt.Sprintf("%v", r.RemoteQuotaP99),
				fmt.Sprintf("%.2f", r.RemoteQuotaX),
				fmt.Sprintf("%v", r.RemoteControlP99),
				"-",
				fmt.Sprintf("%d/%d", r.ShedHostile, r.ShedWell),
				fmt.Sprintf("%v", r.ControlThrottled),
			},
		},
	}
}
