// Package sim provides the experiment harness: synthetic buildings, the
// Section 5 CAPA scenario, and the per-figure experiments of DESIGN.md
// (E1–E10), each regenerable from cmd/scibench and the root benchmarks.
package sim

import (
	"fmt"

	"sci/internal/location"
)

// Building is a synthetic multi-floor building in all three location
// models, standing in for the paper's Livingstone Tower deployment.
//
// Each floor is: lobby — corridor — room1 … roomN, with a stairwell linking
// corridors of adjacent floors. Every inter-place link has a named door.
type Building struct {
	// Map is the ground truth.
	Map *location.Map
	// Floors and RoomsPerFloor echo the generator parameters.
	Floors, RoomsPerFloor int
	// Rooms[f] lists floor f's room place ids.
	Rooms [][]location.PlaceID
	// Corridors[f] is floor f's corridor.
	Corridors []location.PlaceID
	// Lobbies[f] is floor f's lift lobby.
	Lobbies []location.PlaceID
	// DoorOf names the door sensor on the link into each room.
	DoorOf map[location.PlaceID]string
}

// NewBuilding generates a building ("campus/tower/...").
func NewBuilding(floors, roomsPerFloor int) (*Building, error) {
	if floors < 1 || roomsPerFloor < 1 {
		return nil, fmt.Errorf("sim: need at least one floor and one room, got %d×%d", floors, roomsPerFloor)
	}
	b := &Building{
		Floors:        floors,
		RoomsPerFloor: roomsPerFloor,
		Rooms:         make([][]location.PlaceID, floors),
		DoorOf:        make(map[location.PlaceID]string),
	}
	var places []location.Place
	var links []location.Link
	for f := 0; f < floors; f++ {
		frame := fmt.Sprintf("F%d", f)
		floorPath := location.Path(fmt.Sprintf("campus/tower/f%d", f))

		lobby := location.PlaceID(fmt.Sprintf("f%d.lobby", f))
		corr := location.PlaceID(fmt.Sprintf("f%d.corridor", f))
		b.Lobbies = append(b.Lobbies, lobby)
		b.Corridors = append(b.Corridors, corr)
		places = append(places,
			location.Place{ID: lobby, Path: floorPath + "/lobby",
				Centroid: location.Point{Frame: frame, X: 0, Y: 0}, Kind: "lobby"},
			location.Place{ID: corr, Path: floorPath + "/corridor",
				Centroid: location.Point{Frame: frame, X: 10, Y: 0}, Kind: "corridor"},
		)
		lobbyDoor := fmt.Sprintf("d.f%d.lobby", f)
		links = append(links, location.Link{A: lobby, B: corr, Door: lobbyDoor})
		b.DoorOf[corr] = lobbyDoor

		for r := 0; r < roomsPerFloor; r++ {
			room := location.PlaceID(fmt.Sprintf("f%d.r%02d", f, r))
			b.Rooms[f] = append(b.Rooms[f], room)
			places = append(places, location.Place{
				ID:   room,
				Path: floorPath + location.Path(fmt.Sprintf("/r%02d", r)),
				Centroid: location.Point{
					Frame: frame, X: 20 + 10*float64(r/2), Y: 8 * float64(r%2),
				},
				Kind: "room",
			})
			door := fmt.Sprintf("d.f%d.r%02d", f, r)
			links = append(links, location.Link{A: corr, B: room, Door: door})
			b.DoorOf[room] = door
		}
		if f > 0 {
			links = append(links, location.Link{
				A: b.Corridors[f-1], B: corr, Weight: 8,
				Door: fmt.Sprintf("d.stairs.%d-%d", f-1, f),
			})
		}
	}
	m, err := location.NewMap(places, links)
	if err != nil {
		return nil, fmt.Errorf("sim: building map: %w", err)
	}
	b.Map = m
	return b, nil
}

// FloorPath returns the hierarchical path of floor f.
func (b *Building) FloorPath(f int) location.Path {
	return location.Path(fmt.Sprintf("campus/tower/f%d", f))
}

// atPlace is a tiny alias used by tests.
func atPlace(p location.PlaceID) location.Ref { return location.AtPlace(p) }
