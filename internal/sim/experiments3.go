package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/scinet"
	"sci/internal/server"
	"sci/internal/transport"
	"sci/internal/wire"
)

// E11Row reports cross-range fan-out delivery for one SCINET size.
type E11Row struct {
	// Ranges is the SCINET size: one publisher plus Ranges-1 subscribers.
	Ranges int
	// Events is the number of events published in the publisher Range.
	Events int
	// Batch is BatchMaxEvents on every Range.
	Batch int
	// Codec is the wire path events rode: "native" (batches cross the
	// in-process transport un-serialized, the moral equivalent of the
	// binary TCP codec) or "json" (every batch materialized to legacy
	// per-event JSON frames, the pre-PR-7 baseline).
	Codec string
	// EventsPerSec is the fleet-wide delivered throughput (publish start to
	// last remote delivery).
	EventsPerSec float64
	// MsgsPerPeer is the overlay event_batch messages the publisher sent to
	// each interested peer (⌈Events/Batch⌉ when coalescing holds).
	MsgsPerPeer float64
	// EventsPerMsg is the achieved coalescing ratio on the wire.
	EventsPerMsg float64
}

// RunE11 (ROADMAP cross-range fan-out): events published in one Range reach
// a subscriber in every other Range of the SCINET as coalesced
// scinet.event_batch overlay messages with loop suppression. Returns one
// row per SCINET size, plus the fleet-wide dispatch.stats rollup collected
// over the overlay from the last topology.
func RunE11(rangeCounts []int, events, batch int) ([]E11Row, *scinet.FleetStats, error) {
	return RunE11Codec(rangeCounts, events, batch, "")
}

// RunE11Codec is RunE11 with an explicit wire codec: wire.CodecJSON forces
// every hop onto the legacy materialized-JSON path (the pre-binary-codec
// baseline), anything else rides batches natively across the in-process
// transport. The ratio between the two is the end-to-end win of the
// zero-copy wire path.
func RunE11Codec(rangeCounts []int, events, batch int, codec wire.Codec) ([]E11Row, *scinet.FleetStats, error) {
	if batch < 1 {
		batch = 1
	}
	codecName := "native"
	if codec == wire.CodecJSON {
		codecName = "json"
	}
	var rows []E11Row
	var fleet *scinet.FleetStats
	for _, rc := range rangeCounts {
		if rc < 2 {
			return nil, nil, fmt.Errorf("sim: e11 needs at least 2 ranges, got %d", rc)
		}
		net := transport.NewMemory(transport.MemoryConfig{})
		if codec == wire.CodecJSON {
			net.SetDefaultCodec(wire.CodecJSON)
		}
		mk := func(name string) (*server.Range, *scinet.Fabric, error) {
			rng := server.New(server.Config{
				Name:           name,
				Coverage:       location.Path("campus/" + name),
				BatchMaxEvents: batch,
				BatchMaxDelay:  2 * time.Millisecond,
			})
			f, err := scinet.NewFabric(rng, net, nil)
			if err != nil {
				rng.Close()
				return nil, nil, err
			}
			return rng, f, nil
		}
		pubRange, pubFabric, err := mk("e11-pub")
		if err != nil {
			return nil, nil, err
		}
		peers := rc - 1
		var delivered atomic.Int64
		ranges := []*server.Range{pubRange}
		fabrics := []*scinet.Fabric{pubFabric}
		for i := 0; i < peers; i++ {
			rng, f, err := mk(fmt.Sprintf("e11-sub%d", i))
			if err != nil {
				return nil, nil, err
			}
			ranges, fabrics = append(ranges, rng), append(fabrics, f)
			if err := f.Join(pubFabric.NodeID()); err != nil {
				return nil, nil, err
			}
			if _, err := f.SubscribeRemote(guid.New(guid.KindApplication),
				event.Filter{Type: ctxtype.TemperatureCelsius}, func(event.Event) {
					delivered.Add(1)
				}); err != nil {
				return nil, nil, err
			}
		}
		waitUntil(func() bool { return len(pubFabric.Interests()) >= peers })

		src := guid.New(guid.KindDevice)
		chunk := make([]event.Event, 0, batch)
		target := int64(events) * int64(peers)
		start := time.Now()
		for i := 0; i < events; i++ {
			chunk = append(chunk, event.New(ctxtype.TemperatureCelsius, src,
				uint64(i+1), start, map[string]any{"value": float64(i)}))
			if len(chunk) == batch || i == events-1 {
				if err := pubRange.PublishAll(chunk); err != nil {
					return nil, nil, err
				}
				chunk = chunk[:0]
				// Aggregate outstanding bounds every subscriber's lag, so
				// capping it below one delivery queue prevents ring drops.
				for int64(i+1)*int64(peers)-delivered.Load() > 2048 {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}
		waitUntil(func() bool { return delivered.Load() >= target })
		elapsed := time.Since(start).Seconds()

		row := E11Row{
			Ranges:       rc,
			Events:       events,
			Batch:        batch,
			Codec:        codecName,
			EventsPerSec: float64(target) / elapsed,
		}
		if msgs := pubFabric.BatchesForwarded.Value(); msgs > 0 {
			row.MsgsPerPeer = float64(msgs) / float64(peers)
			row.EventsPerMsg = float64(pubFabric.EventsForwarded.Value()) / float64(msgs)
		}
		rows = append(rows, row)

		fleet, err = pubFabric.FleetDispatchStats(5 * time.Second)
		if err != nil {
			return nil, nil, err
		}
		for _, f := range fabrics {
			_ = f.Close()
		}
		for _, r := range ranges {
			r.Close()
		}
		_ = net.Close()
	}
	return rows, fleet, nil
}

// E11Table formats RunE11 rows.
func E11Table(rows []E11Row) Table {
	t := Table{
		Title:  "E11 (ROADMAP fan-out): cross-range batched event fan-out over the SCINET",
		Header: []string{"ranges", "events", "batch", "codec", "events/s", "msgs/peer", "events/msg"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Ranges),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d", r.Batch),
			r.Codec,
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.1f", r.MsgsPerPeer),
			fmt.Sprintf("%.1f", r.EventsPerMsg),
		})
	}
	return t
}

// E11FleetTable formats the fleet-wide dispatch.stats rollup collected over
// the overlay.
func E11FleetTable(fs *scinet.FleetStats) Table {
	t := Table{
		Title:  fmt.Sprintf("E11 rollup: fleet-wide dispatch.stats across %d ranges", fs.Ranges),
		Header: []string{"range", "published", "delivered", "dropped", "subs", "hit ratio", "remote batches", "remote events"},
	}
	row := func(name string, st map[string]float64) []string {
		return []string{
			name,
			fmt.Sprintf("%.0f", st["published"]),
			fmt.Sprintf("%.0f", st["delivered"]),
			fmt.Sprintf("%.0f", st["dropped"]),
			fmt.Sprintf("%.0f", st["subs"]),
			fmt.Sprintf("%.3f", st["index_hit_ratio"]),
			fmt.Sprintf("%.0f", st["remote_batches_sent"]),
			fmt.Sprintf("%.0f", st["remote_events_sent"]),
		}
	}
	for _, pr := range fs.PerRange {
		t.Rows = append(t.Rows, row(pr.Name, pr.Stats))
	}
	t.Rows = append(t.Rows, row("TOTAL", fs.Totals))
	return t
}
