//go:build !race

package sim

// raceEnabled reports whether the race detector instruments this build.
// Timing-sensitive experiment assertions (E13's flush-rate collapse) are
// gated on it: under -race the CPU-bound stages slow 10-20×, which moves
// the bottleneck off the experiment's intended contention point.
const raceEnabled = false
