package sim

import (
	"errors"
	"fmt"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mobility"
	"sci/internal/query"
	"sci/internal/sensor"
	"sci/internal/server"
)

// CAPAWorld reconstructs the Section 5 scenario: one floor of the tower
// with four printers (P1 busy with Bob's job, P2 out of paper, P3 behind a
// locked door, P4 free), Bob and John with ID badges, door sensors on every
// room, and the CAPA application logic.
type CAPAWorld struct {
	Clock    *clock.Manual
	Range    *server.Range
	World    *mobility.World
	Building *Building

	Bob, John guid.GUID
	Printers  map[string]*sensor.Printer // "P1".."P4"
	ObjLoc    *entity.ObjLocationCE
}

// CAPAOutcome reports a completed print request.
type CAPAOutcome struct {
	// Printer is the selected printer's name.
	Printer string
	// Job is the job id returned by the printer's submit operation.
	Job string
	// Elapsed is wall time from door event to job submission.
	Elapsed time.Duration
}

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

// NewCAPAWorld assembles the scenario. Room layout on floor 0:
//
//	r00 = Bob's office (L10.01)   r01 = John's office
//	P1 in r02, P2 in r03, P3 in r04 (locked), P4 in r05
func NewCAPAWorld() (*CAPAWorld, error) {
	b, err := NewBuilding(1, 8)
	if err != nil {
		return nil, err
	}
	// Lock P3's room (r04): rebuild the map with that link locked.
	places := []location.Place{}
	for _, id := range b.Map.Places() {
		p, _ := b.Map.Place(id)
		places = append(places, p)
	}
	links := b.Map.Links()
	for i := range links {
		if links[i].A == "f0.r04" || links[i].B == "f0.r04" {
			links[i].Locked = true
		}
	}
	lockedMap, err := location.NewMap(places, links)
	if err != nil {
		return nil, err
	}
	b.Map = lockedMap

	clk := clock.NewManual(epoch)
	rng := server.New(server.Config{
		Name:           "level-10",
		Clock:          clk,
		Places:         b.Map,
		Coverage:       "campus/tower/f0",
		AutoRenewEvery: 10 * time.Second,
	})

	w := mobility.NewWorld(b.Map)
	cw := &CAPAWorld{
		Clock:    clk,
		Range:    rng,
		World:    w,
		Building: b,
		Printers: make(map[string]*sensor.Printer),
	}

	// Door sensors on every door.
	for room, door := range b.DoorOf {
		ds := sensor.NewDoorSensor(door, location.AtPlace(room), clk)
		if err := rng.AddEntity(ds); err != nil {
			return nil, err
		}
		w.AttachDoorSensor(ds)
	}
	// Object location interpreter.
	cw.ObjLoc = entity.NewObjLocationCE(b.Map, clk)
	if err := rng.AddEntity(cw.ObjLoc); err != nil {
		return nil, err
	}
	// Printers.
	printerRooms := map[string]location.PlaceID{
		"P1": "f0.r02", "P2": "f0.r03", "P3": "f0.r04", "P4": "f0.r05",
	}
	for name, room := range printerRooms {
		p := sensor.NewPrinter(name, location.AtPlace(room), clk)
		if err := rng.AddEntity(p); err != nil {
			return nil, err
		}
		cw.Printers[name] = p
	}
	// Scenario state: P2 out of paper. The stored profile is refreshed
	// synchronously: the paper state otherwise reaches the profile store
	// through an async status event, and a query resolving before it lands
	// (heavily loaded test runs) would still see P2 as idle.
	cw.Printers["P2"].SetOutOfPaper(true)
	if err := rng.Profiles().Put(cw.Printers["P2"].Profile()); err != nil {
		return nil, err
	}

	// Actors.
	cw.Bob = guid.New(guid.KindPerson)
	cw.John = guid.New(guid.KindPerson)
	if err := w.AddActor(mobility.Actor{ID: cw.Bob, Name: "bob", Badge: true}, "f0.lobby"); err != nil {
		return nil, err
	}
	if err := w.AddActor(mobility.Actor{ID: cw.John, Name: "john", Badge: true}, "f0.r01"); err != nil {
		return nil, err
	}
	return cw, nil
}

// Close shuts the world down.
func (cw *CAPAWorld) Close() {
	cw.Range.Close()
}

// RunBob executes Bob's half of Section 5: a stored query that fires when
// Bob's badge is seen entering his office (r00), then selects the closest
// available printer and submits the documents. The mobile-phase storing of
// the query before any Range connectivity is represented by submitting the
// deferred query to the Range Bob will reach (configuration X).
func (cw *CAPAWorld) RunBob(docs []string) (*CAPAOutcome, error) {
	caa := entity.NewCAA("capa-bob", nil, cw.Clock)
	if err := cw.Range.AddApplication(caa); err != nil {
		return nil, err
	}
	// Anchor the CAA at Bob's office for the closest-printer criterion.
	prof := caa.Profile()
	prof.Location = location.AtPlace("f0.r00")
	if err := cw.Range.Profiles().Put(prof); err != nil {
		return nil, err
	}

	// Configuration X: when Bob enters r00, tell me printer status.
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.PrinterStatus}, query.ModeOnce)
	q.When.Trigger = &event.Filter{
		Type:    ctxtype.LocationSightingDoor,
		Subject: cw.Bob,
		Source:  cw.doorSensorID("f0.r00"),
	}
	q.Which = query.Which{
		Criterion:   query.CriterionClosest,
		Constraints: map[string]string{"status": "idle"},
	}
	res, err := cw.Range.Submit(q)
	if err != nil {
		return nil, err
	}
	if !res.Deferred {
		return nil, errors.New("sim: Bob's query should be deferred")
	}

	// Bob walks to his office; the door sensor fires configuration X.
	start := time.Now()
	if _, err := cw.World.MoveTo(cw.Bob, "f0.r00"); err != nil {
		return nil, err
	}
	// Wait for the one-shot printer.status event.
	deadline := time.Now().Add(5 * time.Second)
	for caa.PendingEvents() == 0 {
		if time.Now().After(deadline) {
			return nil, errors.New("sim: Bob's configuration never fired")
		}
		time.Sleep(time.Millisecond)
	}
	// Identify the chosen printer via an advertisement query with the same
	// Which clause, then submit the documents.
	aq := query.New(caa.ID(), query.What{EntityType: "printer"}, query.ModeAdvertisement)
	aq.Which = q.Which
	ares, err := cw.Range.Submit(aq)
	if err != nil {
		return nil, err
	}
	name, err := cw.printerName(ares.Provider)
	if err != nil {
		return nil, err
	}
	var job string
	for _, doc := range docs {
		out, err := cw.Range.CallService(ares.Provider, "submit", map[string]any{"doc": doc})
		if err != nil {
			return nil, err
		}
		job, _ = out["job"].(string)
	}
	return &CAPAOutcome{Printer: name, Job: job, Elapsed: time.Since(start)}, nil
}

// RunJohn executes John's half: closest idle printer with an empty queue,
// after Bob's job has made P1 busy. Expected: P4 (P1 busy, P2 out of paper,
// P3 unreachable behind its locked door).
func (cw *CAPAWorld) RunJohn(doc string) (*CAPAOutcome, error) {
	caa := entity.NewCAA("capa-john", nil, cw.Clock)
	if err := cw.Range.AddApplication(caa); err != nil {
		return nil, err
	}
	prof := caa.Profile()
	prof.Location = location.AtPlace("f0.r01")
	if err := cw.Range.Profiles().Put(prof); err != nil {
		return nil, err
	}
	q := query.New(caa.ID(), query.What{EntityType: "printer"}, query.ModeAdvertisement)
	q.Which = query.Which{
		Criterion:   query.CriterionClosest,
		Constraints: map[string]string{"status": "idle", "queue": "0"},
	}
	start := time.Now()
	res, err := cw.Range.Submit(q)
	if err != nil {
		return nil, err
	}
	name, err := cw.printerName(res.Provider)
	if err != nil {
		return nil, err
	}
	out, err := cw.Range.CallService(res.Provider, "submit", map[string]any{"doc": doc})
	if err != nil {
		return nil, err
	}
	job, _ := out["job"].(string)
	return &CAPAOutcome{Printer: name, Job: job, Elapsed: time.Since(start)}, nil
}

func (cw *CAPAWorld) printerName(id guid.GUID) (string, error) {
	for name, p := range cw.Printers {
		if p.ID() == id {
			return name, nil
		}
	}
	return "", fmt.Errorf("sim: provider %s is not a known printer", id.Short())
}

func (cw *CAPAWorld) doorSensorID(room location.PlaceID) guid.GUID {
	door := cw.Building.DoorOf[room]
	for _, prof := range cw.Range.Profiles().All() {
		if prof.Attributes["door"] == door {
			return prof.Entity
		}
	}
	return guid.Nil
}
