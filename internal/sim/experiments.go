package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/metrics"
	"sci/internal/overlay"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/resolver"
	"sci/internal/sensor"
	"sci/internal/server"
	"sci/internal/transport"
)

// This file implements the experiment index of DESIGN.md §4. Each RunEx
// function is deterministic given its seed, returns printable rows, and is
// wrapped by cmd/scibench and the root benchmarks.

// Table renders rows with a header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders an aligned text table.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for i, h := range t.Header {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// E1Row is one population size of the overlay-vs-hierarchy comparison.
type E1Row struct {
	N int
	// Overlay: hop quantiles and relay-load concentration.
	OverlayHopsP50, OverlayHopsP99 int64
	OverlayMaxRelay                uint64
	OverlayRelayRatio              float64 // max relay / mean relay
	// Tree baseline.
	TreeHopsP50, TreeHopsP99 int64
	TreeMaxRelay             uint64
	TreeRelayRatio           float64
}

// RunE1 reproduces the paper's Section 3 claim: overlay routing avoids the
// hierarchy's root bottleneck at comparable hop counts. For each n it
// builds both networks over a zero-latency memory transport, sends `probes`
// uniform random pairwise messages through each, and reports hop quantiles
// and relay-load concentration (max/mean across nodes).
func RunE1(sizes []int, probes int, seed int64) ([]E1Row, error) {
	var rows []E1Row
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))

		// --- structured overlay ---
		onet := transport.NewMemory(transport.MemoryConfig{Seed: seed})
		var nodes []*overlay.Node
		var mu sync.Mutex
		delivered := 0
		var hops metrics.Histogram
		for i := 0; i < n; i++ {
			node, err := overlay.NewNode(overlay.Config{
				Network: onet,
				Deliver: func(d overlay.Delivery) {
					mu.Lock()
					delivered++
					mu.Unlock()
					hops.Record(int64(d.Hops))
				},
			})
			if err != nil {
				return nil, err
			}
			if i > 0 {
				if err := node.Join(nodes[rng.Intn(len(nodes))].ID()); err != nil {
					return nil, err
				}
			}
			nodes = append(nodes, node)
		}
		for i := 0; i < probes; i++ {
			src := nodes[rng.Intn(n)]
			dst := nodes[rng.Intn(n)]
			if err := src.Route(dst.ID(), "e1", nil); err != nil {
				return nil, err
			}
		}
		waitUntil(func() bool {
			mu.Lock()
			defer mu.Unlock()
			return delivered >= probes
		})
		var oMax, oSum uint64
		for _, node := range nodes {
			rl := node.Relayed()
			oSum += rl
			if rl > oMax {
				oMax = rl
			}
		}
		oMean := float64(oSum) / float64(n)
		row := E1Row{
			N:               n,
			OverlayHopsP50:  hops.Quantile(0.5),
			OverlayHopsP99:  hops.Quantile(0.99),
			OverlayMaxRelay: oMax,
		}
		if oMean > 0 {
			row.OverlayRelayRatio = float64(oMax) / oMean
		}
		for _, node := range nodes {
			_ = node.Close()
		}
		_ = onet.Close()

		// --- hierarchical baseline ---
		tnet := transport.NewMemory(transport.MemoryConfig{Seed: seed})
		ids := make([]guid.GUID, n)
		for i := range ids {
			ids[i] = guid.New(guid.KindServer)
		}
		var tmu sync.Mutex
		tDelivered := 0
		var tHops metrics.Histogram
		tree, err := overlay.BuildTree(tnet, ids, 4, func(_ guid.GUID, d overlay.Delivery) {
			tmu.Lock()
			tDelivered++
			tmu.Unlock()
			tHops.Record(int64(d.Hops))
		})
		if err != nil {
			return nil, err
		}
		probeRng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < probes; i++ {
			src := ids[probeRng.Intn(n)]
			dst := ids[probeRng.Intn(n)]
			if err := tree.Nodes[src].Route(dst, "e1", nil); err != nil {
				return nil, err
			}
		}
		waitUntil(func() bool {
			tmu.Lock()
			defer tmu.Unlock()
			return tDelivered >= probes
		})
		var tMax, tSum uint64
		for _, node := range tree.Nodes {
			rl := node.Relayed()
			tSum += rl
			if rl > tMax {
				tMax = rl
			}
		}
		tMean := float64(tSum) / float64(n)
		row.TreeHopsP50 = tHops.Quantile(0.5)
		row.TreeHopsP99 = tHops.Quantile(0.99)
		row.TreeMaxRelay = tMax
		if tMean > 0 {
			row.TreeRelayRatio = float64(tMax) / tMean
		}
		_ = tree.Close()
		_ = tnet.Close()

		rows = append(rows, row)
	}
	return rows, nil
}

// E1Table formats RunE1 output.
func E1Table(rows []E1Row) Table {
	t := Table{
		Title: "E1 (Fig 1): overlay vs hierarchical routing — hops and relay-load concentration",
		Header: []string{"n", "ovl p50", "ovl p99", "ovl maxRelay", "ovl max/mean",
			"tree p50", "tree p99", "tree maxRelay", "tree max/mean"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.OverlayHopsP50), fmt.Sprintf("%d", r.OverlayHopsP99),
			fmt.Sprintf("%d", r.OverlayMaxRelay), fmt.Sprintf("%.1f", r.OverlayRelayRatio),
			fmt.Sprintf("%d", r.TreeHopsP50), fmt.Sprintf("%d", r.TreeHopsP99),
			fmt.Sprintf("%d", r.TreeMaxRelay), fmt.Sprintf("%.1f", r.TreeRelayRatio),
		})
	}
	return t
}

// E2Row reports Range churn/fan-out throughput for one population size.
type E2Row struct {
	Entities       int
	RegisterPerSec float64
	EventsPerSec   float64
}

// RunE2 (Fig 2): a single Range sustains registration churn and event
// fan-out through its central Context Server.
func RunE2(sizes []int) ([]E2Row, error) {
	var rows []E2Row
	for _, n := range sizes {
		rng := server.New(server.Config{Name: "e2"})
		clk := clock.Real()

		start := time.Now()
		sensors := make([]*sensor.DoorSensor, 0, n)
		for i := 0; i < n; i++ {
			ds := sensor.NewDoorSensor(fmt.Sprintf("d%d", i), location.Ref{}, clk)
			if err := rng.AddEntity(ds); err != nil {
				return nil, err
			}
			sensors = append(sensors, ds)
		}
		regRate := float64(n) / time.Since(start).Seconds()

		// Fan-out: one CAA subscribed to all sightings; every sensor fires.
		caa := entity.NewCAA("e2-app", nil, clk)
		if err := rng.AddApplication(caa); err != nil {
			return nil, err
		}
		q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationSightingDoor}, query.ModeSubscribe)
		// Subscribing binds one sensor; for fan-out measure publish directly.
		_ = q
		const perSensor = 10
		badge := guid.New(guid.KindPerson)
		start = time.Now()
		for i := 0; i < perSensor; i++ {
			for _, ds := range sensors {
				if err := ds.Sight(badge, "x"); err != nil {
					return nil, err
				}
			}
		}
		evRate := float64(n*perSensor) / time.Since(start).Seconds()
		rng.Close()
		rows = append(rows, E2Row{Entities: n, RegisterPerSec: regRate, EventsPerSec: evRate})
	}
	return rows, nil
}

// E2Table formats RunE2 output.
func E2Table(rows []E2Row) Table {
	t := Table{
		Title:  "E2 (Fig 2): Range churn and event throughput through one Context Server",
		Header: []string{"entities", "register/s", "events/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Entities),
			fmt.Sprintf("%.0f", r.RegisterPerSec),
			fmt.Sprintf("%.0f", r.EventsPerSec),
		})
	}
	return t
}

// E3Row reports composition resolution for one CE population.
type E3Row struct {
	Population  int
	Depth       int
	ResolveTime time.Duration
	GraphNodes  int
	ReuseHits   uint64
}

// RunE3 (Fig 3): the resolver composes multi-level configurations
// automatically; resolution cost scales with population and chain depth,
// and repeated queries reuse cached sub-graphs.
func RunE3(populations []int, depth int) ([]E3Row, error) {
	for depth < 2 {
		depth = 2
	}
	var rows []E3Row
	for _, pop := range populations {
		profiles := &profile.Manager{}
		types := ctxtype.NewRegistry()
		// Type chain t.l0 ← t.l1 ← ... ← t.l(depth-1); sources output t.l0.
		for l := 0; l < depth; l++ {
			if err := types.Register(ctxtype.Type(fmt.Sprintf("t.l%d", l))); err != nil {
				return nil, err
			}
		}
		// Population: sources at level 0, operators above, round robin.
		for i := 0; i < pop; i++ {
			l := i % depth
			p := profile.Profile{
				Entity:  guid.New(guid.KindEntity),
				Name:    fmt.Sprintf("ce-%d", i),
				Outputs: []ctxtype.Type{ctxtype.Type(fmt.Sprintf("t.l%d", l))},
			}
			if l > 0 {
				p.Inputs = []ctxtype.Type{ctxtype.Type(fmt.Sprintf("t.l%d", l-1))}
			}
			if err := profiles.Put(p); err != nil {
				return nil, err
			}
		}
		res := resolver.New(profiles, types, nil)
		q := query.New(guid.New(guid.KindApplication),
			query.What{Pattern: ctxtype.Type(fmt.Sprintf("t.l%d", depth-1))}, query.ModeSubscribe)

		start := time.Now()
		cfg, err := res.Resolve(q, resolver.Context{})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		// Re-resolve to exercise the cache.
		for i := 0; i < 10; i++ {
			if _, err := res.Resolve(q, resolver.Context{}); err != nil {
				return nil, err
			}
		}
		hits, _ := res.CacheStats()
		rows = append(rows, E3Row{
			Population:  pop,
			Depth:       cfg.Depth(),
			ResolveTime: elapsed,
			GraphNodes:  len(cfg.Providers()),
			ReuseHits:   hits,
		})
	}
	return rows, nil
}

// E3Table formats RunE3 output.
func E3Table(rows []E3Row) Table {
	t := Table{
		Title:  "E3 (Fig 3): automatic composition — resolution time, graph size, cache reuse",
		Header: []string{"population", "depth", "resolve", "providers", "reuse hits"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Population),
			fmt.Sprintf("%d", r.Depth),
			r.ResolveTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.GraphNodes),
			fmt.Sprintf("%d", r.ReuseHits),
		})
	}
	return t
}

// E5Row reports discovery latency for one arrival burst size.
type E5Row struct {
	Burst int
	P50   time.Duration
	P99   time.Duration
}

// RunE5 (Fig 5): concurrent discovery handshakes complete in bounded time.
// Measured in-process: AddEntity performs the same register→store→attach
// sequence the wire protocol drives.
func RunE5(bursts []int) ([]E5Row, error) {
	var rows []E5Row
	for _, burst := range bursts {
		rng := server.New(server.Config{Name: "e5"})
		var lat metrics.Histogram
		var wg sync.WaitGroup
		errs := make(chan error, burst)
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ds := sensor.NewDoorSensor(fmt.Sprintf("d%d", i), location.Ref{}, nil)
				start := time.Now()
				if err := rng.AddEntity(ds); err != nil {
					errs <- err
					return
				}
				lat.RecordDuration(time.Since(start))
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, E5Row{
			Burst: burst,
			P50:   time.Duration(lat.Quantile(0.5)),
			P99:   time.Duration(lat.Quantile(0.99)),
		})
		rng.Close()
	}
	return rows, nil
}

// E5Table formats RunE5 output.
func E5Table(rows []E5Row) Table {
	t := Table{
		Title:  "E5 (Fig 5): discovery/registration latency under arrival bursts",
		Header: []string{"burst", "p50", "p99"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Burst),
			r.P50.Round(time.Microsecond).String(),
			r.P99.Round(time.Microsecond).String(),
		})
	}
	return t
}

// E7Result reports the CAPA end-to-end scenario outcome.
type E7Result struct {
	BobPrinter  string
	JohnPrinter string
	BobCorrect  bool
	JohnCorrect bool
	BobLatency  time.Duration
	JohnLatency time.Duration
}

// RunE7 (Fig 7 / Section 5): the full CAPA scenario. Correctness: Bob's
// documents go to P1 (closest idle printer to his office); John's go to P4
// (P1 busy, P2 out of paper, P3 behind a locked door).
func RunE7() (*E7Result, error) {
	cw, err := NewCAPAWorld()
	if err != nil {
		return nil, err
	}
	defer cw.Close()
	bob, err := cw.RunBob([]string{"slides.pdf", "paper.pdf"})
	if err != nil {
		return nil, err
	}
	john, err := cw.RunJohn("lecture-notes.pdf")
	if err != nil {
		return nil, err
	}
	return &E7Result{
		BobPrinter:  bob.Printer,
		JohnPrinter: john.Printer,
		BobCorrect:  bob.Printer == "P1",
		JohnCorrect: john.Printer == "P4",
		BobLatency:  bob.Elapsed,
		JohnLatency: john.Elapsed,
	}, nil
}

// E7Table formats RunE7 output.
func E7Table(r *E7Result) Table {
	return Table{
		Title:  "E7 (Fig 7 / §5): CAPA printer selection",
		Header: []string{"actor", "selected", "expected", "correct", "latency"},
		Rows: [][]string{
			{"bob", r.BobPrinter, "P1", fmt.Sprintf("%v", r.BobCorrect), r.BobLatency.Round(time.Microsecond).String()},
			{"john", r.JohnPrinter, "P4", fmt.Sprintf("%v", r.JohnCorrect), r.JohnLatency.Round(time.Microsecond).String()},
		},
	}
}

// E8Row reports repair behaviour for one provider population.
type E8Row struct {
	Providers    int
	Repaired     bool
	RepairTime   time.Duration
	EventGapSeqs uint64 // sequence gap observed by the consumer
}

// RunE8 (§3.2 adaptivity): kill the bound provider of a live configuration
// and measure repair latency; context keeps flowing from an equivalent
// provider.
func RunE8(providerCounts []int) ([]E8Row, error) {
	var rows []E8Row
	for _, n := range providerCounts {
		clk := clock.NewManual(epoch)
		rng := server.New(server.Config{Name: "e8", Clock: clk, AutoRenewEvery: 5 * time.Second})

		doors := make([]*sensor.DoorSensor, 0, n)
		for i := 0; i < n; i++ {
			ds := sensor.NewDoorSensor(fmt.Sprintf("d%d", i), location.Ref{}, clk)
			if err := rng.AddEntity(ds); err != nil {
				return nil, err
			}
			doors = append(doors, ds)
		}
		obj := entity.NewObjLocationCE(nil, clk)
		if err := rng.AddEntity(obj); err != nil {
			return nil, err
		}
		var mu sync.Mutex
		var seqs []uint64
		caa := entity.NewCAA("e8-app", func(e event.Event) {
			mu.Lock()
			seqs = append(seqs, e.Seq)
			mu.Unlock()
		}, clk)
		if err := rng.AddApplication(caa); err != nil {
			return nil, err
		}
		q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
		if _, err := rng.Submit(q); err != nil {
			return nil, err
		}
		sts := rng.Runtime().Active()
		if len(sts) != 1 {
			return nil, fmt.Errorf("sim: e8 expected 1 active configuration")
		}
		// Identify the bound door.
		var bound *sensor.DoorSensor
		for _, ds := range doors {
			for _, p := range sts[0].Providers {
				if ds.ID() == p {
					bound = ds
				}
			}
		}
		if bound == nil {
			return nil, fmt.Errorf("sim: e8 no door bound")
		}
		badge := guid.New(guid.KindPerson)
		_ = bound.Sight(badge, "x")

		// Kill it (clean departure) and time the repair.
		start := time.Now()
		if err := rng.RemoveEntity(bound.ID()); err != nil {
			return nil, err
		}
		repaired := len(rng.Runtime().Active()) == 1
		elapsed := time.Since(start)

		// Fire the replacement door; consumer sees events again.
		if repaired {
			sts = rng.Runtime().Active()
			for _, ds := range doors {
				for _, p := range sts[0].Providers {
					if ds.ID() == p {
						_ = ds.Sight(badge, "y")
					}
				}
			}
		}
		rows = append(rows, E8Row{
			Providers:  n,
			Repaired:   repaired,
			RepairTime: elapsed,
		})
		rng.Close()
	}
	return rows, nil
}

// E8Table formats RunE8 output.
func E8Table(rows []E8Row) Table {
	t := Table{
		Title:  "E8 (§3.2/§6 adaptivity): configuration repair on provider failure",
		Header: []string{"providers", "repaired", "repair time"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Providers),
			fmt.Sprintf("%v", r.Repaired),
			r.RepairTime.Round(time.Microsecond).String(),
		})
	}
	return t
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
