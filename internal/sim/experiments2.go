package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/query"
	"sci/internal/sensor"
	"sci/internal/server"
)

// E9Result reports the semantic-rebind experiment.
type E9Result struct {
	InitialLeaf ctxtype.Type
	ReboundLeaf ctxtype.Type
	Rebound     bool
	RebindTime  time.Duration
}

// RunE9 (§2, iQueue critique): a query bound to door-sensor sightings
// transparently rebinds to a W-LAN source when all door sensors vanish —
// the cross-representation flexibility iQueue lacks.
func RunE9(doorCount int) (*E9Result, error) {
	clk := clock.NewManual(epoch)
	rng := server.New(server.Config{Name: "e9", Clock: clk, AutoRenewEvery: 5 * time.Second})
	defer rng.Close()

	doors := make([]*sensor.DoorSensor, 0, doorCount)
	for i := 0; i < doorCount; i++ {
		ds := sensor.NewDoorSensor(fmt.Sprintf("d%d", i), location.Ref{}, clk)
		if err := rng.AddEntity(ds); err != nil {
			return nil, err
		}
		doors = append(doors, ds)
	}
	bs := sensor.NewBaseStation("cell", nil, location.Ref{}, clk)
	if err := rng.AddEntity(bs); err != nil {
		return nil, err
	}
	obj := entity.NewObjLocationCE(nil, clk)
	if err := rng.AddEntity(obj); err != nil {
		return nil, err
	}
	caa := entity.NewCAA("e9-app", nil, clk)
	if err := rng.AddApplication(caa); err != nil {
		return nil, err
	}
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	if _, err := rng.Submit(q); err != nil {
		return nil, err
	}
	res := &E9Result{InitialLeaf: leafType(rng, doors, bs)}

	start := time.Now()
	for _, ds := range doors {
		if err := rng.RemoveEntity(ds.ID()); err != nil {
			return nil, err
		}
	}
	res.RebindTime = time.Since(start)
	res.ReboundLeaf = leafType(rng, doors, bs)
	res.Rebound = res.InitialLeaf == ctxtype.LocationSightingDoor &&
		res.ReboundLeaf == ctxtype.LocationSightingWLAN
	return res, nil
}

func leafType(rng *server.Range, doors []*sensor.DoorSensor, bs *sensor.BaseStation) ctxtype.Type {
	for _, st := range rng.Runtime().Active() {
		for _, p := range st.Providers {
			for _, ds := range doors {
				if p == ds.ID() {
					return ctxtype.LocationSightingDoor
				}
			}
			if p == bs.ID() {
				return ctxtype.LocationSightingWLAN
			}
		}
	}
	return ""
}

// E9Table formats RunE9 output.
func E9Table(r *E9Result) Table {
	return Table{
		Title:  "E9 (§2 iQueue critique): semantic rebind door → wlan",
		Header: []string{"initial leaf", "rebound leaf", "rebound", "time"},
		Rows: [][]string{{
			string(r.InitialLeaf), string(r.ReboundLeaf),
			fmt.Sprintf("%v", r.Rebound), r.RebindTime.Round(time.Microsecond).String(),
		}},
	}
}

// E10Row reports aggregate query throughput for one range count.
type E10Row struct {
	Ranges         int
	TotalEntities  int
	QueriesPerSec  float64
	PerRangePerSec float64
}

// RunE10 (§3 scalability): the same total entity population either crowds
// one Range or shards across many; aggregate immediate-query throughput
// scales with the number of Ranges because each Context Server resolves
// against its own (smaller) profile store.
func RunE10(rangeCounts []int, totalEntities, queries int) ([]E10Row, error) {
	for _, rc := range rangeCounts {
		if rc < 1 {
			return nil, fmt.Errorf("sim: e10 range count %d", rc)
		}
	}
	var rows []E10Row
	for _, rc := range rangeCounts {
		perRange := totalEntities / rc
		if perRange < 1 {
			perRange = 1
		}
		ranges := make([]*server.Range, rc)
		caas := make([]*entity.CAA, rc)
		for i := 0; i < rc; i++ {
			ranges[i] = server.New(server.Config{Name: fmt.Sprintf("e10-%d", i)})
			for j := 0; j < perRange; j++ {
				ds := sensor.NewDoorSensor(fmt.Sprintf("d%d-%d", i, j), location.Ref{}, nil)
				if err := ranges[i].AddEntity(ds); err != nil {
					return nil, err
				}
			}
			obj := entity.NewObjLocationCE(nil, nil)
			if err := ranges[i].AddEntity(obj); err != nil {
				return nil, err
			}
			caas[i] = entity.NewCAA("e10-app", nil, nil)
			if err := ranges[i].AddApplication(caas[i]); err != nil {
				return nil, err
			}
		}

		start := time.Now()
		done := make(chan error, rc)
		for i := 0; i < rc; i++ {
			go func(i int) {
				for k := 0; k < queries/rc; k++ {
					q := query.New(caas[i].ID(), query.What{Pattern: ctxtype.LocationSightingDoor}, query.ModeProfile)
					if _, err := ranges[i].Submit(q); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(i)
		}
		for i := 0; i < rc; i++ {
			if err := <-done; err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start).Seconds()
		total := float64(queries/rc*rc) / elapsed
		rows = append(rows, E10Row{
			Ranges:         rc,
			TotalEntities:  perRange * rc,
			QueriesPerSec:  total,
			PerRangePerSec: total / float64(rc),
		})
		for _, r := range ranges {
			r.Close()
		}
	}
	return rows, nil
}

// E10Table formats RunE10 output.
func E10Table(rows []E10Row) Table {
	t := Table{
		Title:  "E10 (§3 scalability): aggregate profile-query throughput vs number of Ranges",
		Header: []string{"ranges", "entities", "queries/s", "per-range/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Ranges),
			fmt.Sprintf("%d", r.TotalEntities),
			fmt.Sprintf("%.0f", r.QueriesPerSec),
			fmt.Sprintf("%.0f", r.PerRangePerSec),
		})
	}
	return t
}

// E4Row reports event-dispatch throughput for one fan-out.
type E4Row struct {
	Subscribers  int
	EventsPerSec float64
}

// RunE4 (Fig 4): cost of delivery through the abstract CE/CAA interfaces at
// increasing fan-out.
func RunE4(fanouts []int, events int) ([]E4Row, error) {
	var rows []E4Row
	for _, n := range fanouts {
		rng := server.New(server.Config{Name: "e4"})
		src := sensor.NewDoorSensor("d0", location.Ref{}, nil)
		if err := rng.AddEntity(src); err != nil {
			return nil, err
		}
		var delivered atomic.Int64
		counters := make([]*entity.CAA, n)
		for i := 0; i < n; i++ {
			counters[i] = entity.NewCAA(fmt.Sprintf("app%d", i),
				func(event.Event) { delivered.Add(1) }, nil)
			if err := rng.AddApplication(counters[i]); err != nil {
				return nil, err
			}
			q := query.New(counters[i].ID(), query.What{Pattern: ctxtype.LocationSightingDoor}, query.ModeSubscribe)
			if _, err := rng.Submit(q); err != nil {
				return nil, err
			}
		}
		badge := guid.New(guid.KindPerson)
		start := time.Now()
		for i := 0; i < events; i++ {
			if err := src.Sight(badge, "x"); err != nil {
				return nil, err
			}
		}
		// Wait until every delivery lands.
		waitUntil(func() bool { return delivered.Load() >= int64(events*n) })
		elapsed := time.Since(start).Seconds()
		rows = append(rows, E4Row{
			Subscribers:  n,
			EventsPerSec: float64(events*n) / elapsed,
		})
		rng.Close()
	}
	return rows, nil
}

// E4Table formats RunE4 output.
func E4Table(rows []E4Row) Table {
	t := Table{
		Title:  "E4 (Fig 4): event deliveries/second through abstract interfaces vs fan-out",
		Header: []string{"subscribers", "deliveries/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Subscribers),
			fmt.Sprintf("%.0f", r.EventsPerSec),
		})
	}
	return t
}

// E6Row reports query model costs per mode.
type E6Row struct {
	Mode      string
	XMLSize   int
	RoundTrip time.Duration // encode+decode+validate
}

// RunE6 (Fig 6): query encode/parse/validate costs across the four modes.
func RunE6(iters int) ([]E6Row, error) {
	owner := guid.New(guid.KindApplication)
	mk := func(mode query.Mode) query.Query {
		var q query.Query
		switch mode {
		case query.ModeProfile:
			q = query.New(owner, query.What{EntityType: "printer"}, mode)
		case query.ModeAdvertisement:
			q = query.New(owner, query.What{EntityType: "printer"}, mode)
			q.Which = query.Which{Criterion: query.CriterionClosest,
				Constraints: map[string]string{"status": "idle"}}
		default:
			q = query.New(owner, query.What{Pattern: ctxtype.PrinterStatus}, mode)
			q.Where.Explicit = location.AtPath("campus/tower/f0")
		}
		return q
	}
	var rows []E6Row
	for _, mode := range []query.Mode{query.ModeProfile, query.ModeSubscribe, query.ModeOnce, query.ModeAdvertisement} {
		q := mk(mode)
		data, err := q.Encode()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			d, err := q.Encode()
			if err != nil {
				return nil, err
			}
			if _, err := query.Decode(d); err != nil {
				return nil, err
			}
		}
		per := time.Since(start) / time.Duration(iters)
		rows = append(rows, E6Row{Mode: string(mode), XMLSize: len(data), RoundTrip: per})
	}
	return rows, nil
}

// E6Table formats RunE6 output.
func E6Table(rows []E6Row) Table {
	t := Table{
		Title:  "E6 (Fig 6): query XML encode+decode round trip per mode",
		Header: []string{"mode", "xml bytes", "round trip"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mode, fmt.Sprintf("%d", r.XMLSize), r.RoundTrip.Round(100 * time.Nanosecond).String(),
		})
	}
	return t
}
