package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/metrics"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/rangesvc"
	"sci/internal/sensor"
	"sci/internal/server"
	"sci/internal/transport"
)

// E12Row reports one flow-control mode of the hot-vs-idle endpoint
// experiment: a flooded remote application and a trickle-fed one sharing
// one Range Service, each behind its own outbound coalescer.
type E12Row struct {
	// Mode is "static" (fixed BatchMaxEvents/BatchMaxDelay) or "adaptive"
	// (rate-derived effective bounds per endpoint).
	Mode string
	// Batch is the BatchMaxEvents ceiling.
	Batch int
	// HotEvents is the flood size delivered to the hot endpoint.
	HotEvents int
	// HotEventsPerSec is the hot endpoint's end-to-end delivered
	// throughput (publish start → last remote delivery).
	HotEventsPerSec float64
	// EventsPerMsg is the achieved wire coalescing ratio across both
	// endpoints (the hot flood dominates it).
	EventsPerMsg float64
	// IdleP50 / IdleP99 are the idle endpoint's delivery latencies
	// (sensor emission → remote handler). The static coalescer pins the
	// idle p50 near BatchMaxDelay; the adaptive one flushes at the floor.
	IdleP50 time.Duration
	IdleP99 time.Duration
}

// E12Backpressure reports the induced-overload phase: the same hot flood
// against a receiver that stops keeping up, with adaptive coalescing on.
type E12Backpressure struct {
	// HealthyFlushPerSec / OverloadFlushPerSec are the sender's coalescer
	// flush rates with a healthy receiver and with a receiver whose credit
	// collapsed — the throttling the acks buy.
	HealthyFlushPerSec  float64
	OverloadFlushPerSec float64
	// ThrottleEvents / DropsReported / EventsShed mirror the Range's
	// remote.backpressure.* gauges after the overload phase.
	ThrottleEvents uint64
	DropsReported  uint64
	EventsShed     uint64
	// Throttled reports whether the endpoint was still marked throttled
	// when the phase ended.
	Throttled bool
}

// e12Rig is one Range Service plus a hot and an idle remote application.
type e12Rig struct {
	net  *transport.Memory
	rng  *server.Range
	host *rangesvc.Host

	thermo *sensor.TemperatureSensor
	door   *sensor.DoorSensor

	hot          *rangesvc.Connector
	hotDelivered atomic.Int64
	hotSleep     atomic.Int64 // per-event handler delay, ns (overload phase)

	idle          *rangesvc.Connector
	idleDelivered atomic.Int64
	idleLatency   metrics.Histogram
}

func newE12Rig(name string, batch int, maxDelay time.Duration, adaptive bool) (*e12Rig, error) {
	rig := &e12Rig{net: transport.NewMemory(transport.MemoryConfig{})}
	rig.rng = server.New(server.Config{
		Name:             name,
		Coverage:         location.Path("campus/" + name),
		BatchMaxEvents:   batch,
		BatchMaxDelay:    maxDelay,
		AdaptiveBatching: flow.Adaptive{Enabled: adaptive},
	})
	host, err := rangesvc.NewHost(rig.rng, rig.net, nil)
	if err != nil {
		rig.close()
		return nil, err
	}
	rig.host = host

	rig.thermo = sensor.NewTemperatureSensor(name+"-probe", location.Ref{}, 294, 2, 1, nil)
	if err := rig.rng.AddEntity(rig.thermo); err != nil {
		rig.close()
		return nil, err
	}
	rig.door = sensor.NewDoorSensor(name+"-door", location.Ref{}, nil)
	if err := rig.rng.AddEntity(rig.door); err != nil {
		rig.close()
		return nil, err
	}

	connect := func(label string, onEvent func(event.Event)) (*rangesvc.Connector, error) {
		c, err := rangesvc.NewConnector(guid.New(guid.KindApplication), label, rig.net, onEvent, nil)
		if err != nil {
			return nil, err
		}
		if err := c.Register(rig.rng.ServerID(), profile.Profile{}, true); err != nil {
			_ = c.Close()
			return nil, err
		}
		return c, nil
	}
	rig.hot, err = connect(name+"-hot", func(event.Event) {
		if d := rig.hotSleep.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		rig.hotDelivered.Add(1)
	})
	if err != nil {
		rig.close()
		return nil, err
	}
	rig.idle, err = connect(name+"-idle", func(e event.Event) {
		rig.idleLatency.RecordDuration(time.Since(e.Time))
		rig.idleDelivered.Add(1)
	})
	if err != nil {
		rig.close()
		return nil, err
	}

	hotQ := query.New(rig.hot.ID(), query.What{Pattern: ctxtype.TemperatureKelvin}, query.ModeSubscribe)
	if _, err := rig.hot.Submit(hotQ); err != nil {
		rig.close()
		return nil, err
	}
	idleQ := query.New(rig.idle.ID(), query.What{Pattern: ctxtype.LocationSightingDoor}, query.ModeSubscribe)
	if _, err := rig.idle.Submit(idleQ); err != nil {
		rig.close()
		return nil, err
	}
	return rig, nil
}

func (rig *e12Rig) close() {
	// Host first: its Close flushes pending coalescers, which must happen
	// while the connector endpoints are still attached.
	if rig.host != nil {
		_ = rig.host.Close()
	}
	if rig.hot != nil {
		_ = rig.hot.Close()
	}
	if rig.idle != nil {
		_ = rig.idle.Close()
	}
	if rig.rng != nil {
		rig.rng.Close()
	}
	_ = rig.net.Close()
}

// floodHot publishes n temperature events addressed to the hot endpoint's
// configuration, pacing on aggregate lag so delivery rings never overflow,
// and returns when every one has been delivered remotely.
func (rig *e12Rig) floodHot(n, chunk int) error {
	src := rig.thermo.ID()
	start := rig.hotDelivered.Load()
	buf := make([]event.Event, 0, chunk)
	now := time.Now()
	for i := 0; i < n; i++ {
		buf = append(buf, event.New(ctxtype.TemperatureKelvin, src, uint64(i+1), now,
			map[string]any{"value": 294.0, "unit": "kelvin"}))
		if len(buf) == chunk || i == n-1 {
			if err := rig.rng.PublishAll(buf); err != nil {
				return err
			}
			buf = buf[:0]
			// The root subscription ring holds 1024 events: bounding the
			// publisher's lead below it keeps freshest-wins drops out of a
			// throughput measurement.
			for int64(i+1)-(rig.hotDelivered.Load()-start) > 768 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	waitUntil(func() bool { return rig.hotDelivered.Load()-start >= int64(n) })
	return nil
}

// RunE12 (hot vs idle endpoints): one Range Service delivering to a
// flooded remote application and a trickle-fed one, under static and
// adaptive coalescing. The adaptive row must show idle p50 below the
// static BatchMaxDelay (the idle endpoint's effective batch sits at the
// floor) at hot throughput matching the static ceiling. A final phase
// induces receiver overload and reports the flush-rate throttling the
// event.batch credit acks buy.
func RunE12(hotEvents, batch int, maxDelay time.Duration) ([]E12Row, *E12Backpressure, error) {
	if batch < 1 {
		batch = 1
	}
	const idleEvents = 40
	var rows []E12Row
	for _, mode := range []string{"static", "adaptive"} {
		rig, err := newE12Rig("e12-"+mode, batch, maxDelay, mode == "adaptive")
		if err != nil {
			return nil, nil, err
		}
		// Idle trickle: one door sighting at a time, each waiting for
		// delivery before the next — every event meets an empty coalescer.
		badge := guid.New(guid.KindPerson)
		for i := 0; i < idleEvents; i++ {
			if err := rig.door.Sight(badge, location.PlaceID("lobby")); err != nil {
				rig.close()
				return nil, nil, err
			}
			want := int64(i + 1)
			waitUntil(func() bool { return rig.idleDelivered.Load() >= want })
		}
		// Hot flood.
		startMsgs := rig.rng.RemoteBatchesSent.Value()
		startEvents := rig.rng.RemoteEventsSent.Value()
		start := time.Now()
		if err := rig.floodHot(hotEvents, batch); err != nil {
			rig.close()
			return nil, nil, err
		}
		elapsed := time.Since(start).Seconds()

		lat := rig.idleLatency.Snapshot()
		row := E12Row{
			Mode:            mode,
			Batch:           batch,
			HotEvents:       hotEvents,
			HotEventsPerSec: float64(hotEvents) / elapsed,
			IdleP50:         time.Duration(lat.P50),
			IdleP99:         time.Duration(lat.P99),
		}
		if msgs := rig.rng.RemoteBatchesSent.Value() - startMsgs; msgs > 0 {
			row.EventsPerMsg = float64(rig.rng.RemoteEventsSent.Value()-startEvents) / float64(msgs)
		}
		rows = append(rows, row)
		rig.close()
	}

	bp, err := runE12Backpressure(batch, maxDelay)
	if err != nil {
		return nil, nil, err
	}
	return rows, bp, nil
}

// pacedFlood publishes batch-sized chunks of hot events at a steady pace
// for the given window and returns the sender's flush rate over it.
func (rig *e12Rig) pacedFlood(batch int, window time.Duration) (flushPerSec float64, err error) {
	stats := rig.rng.FlowStats()
	pre := stats.Flushes.Value()
	src := rig.thermo.ID()
	buf := make([]event.Event, 0, batch)
	now := time.Now()
	deadline := now.Add(window)
	var seq uint64
	for time.Now().Before(deadline) {
		buf = buf[:0]
		for i := 0; i < batch; i++ {
			seq++
			buf = append(buf, event.New(ctxtype.TemperatureKelvin, src, seq, now,
				map[string]any{"value": 294.0, "unit": "kelvin"}))
		}
		if err := rig.rng.PublishAll(buf); err != nil {
			return 0, err
		}
		time.Sleep(500 * time.Microsecond)
	}
	return float64(stats.Flushes.Value()-pre) / window.Seconds(), nil
}

// runE12Backpressure runs the same paced hot flood twice under adaptive
// coalescing: once against a healthy receiver, once with the receiver
// slowed and its delivery queue shrunk so overflow drops collapse the
// acked credit. The sender's flush rate (remote.flushes per second) must
// fall while throttled; identical pacing makes the two windows directly
// comparable.
func runE12Backpressure(batch int, maxDelay time.Duration) (*E12Backpressure, error) {
	rig, err := newE12Rig("e12-bp", batch, maxDelay, true)
	if err != nil {
		return nil, err
	}
	defer rig.close()
	stats := rig.rng.FlowStats()
	const window = 1500 * time.Millisecond

	// Healthy window: size flushes follow the publish pacing. A deep
	// delivery queue keeps transient bursts from reading as overload.
	rig.hot.SetDeliveryQueueCap(1 << 16)
	healthyRate, err := rig.pacedFlood(batch, window)
	if err != nil {
		return nil, err
	}

	// Overload window: the receiver burns time per event behind a small
	// queue, so its acks report drops and the coalescer paces itself on
	// the penalty-stretched timer (deliveries lag far behind, which is
	// the point).
	rig.hotSleep.Store(int64(500 * time.Microsecond))
	rig.hot.SetDeliveryQueueCap(batch)
	overloadRate, err := rig.pacedFlood(batch, window)
	if err != nil {
		return nil, err
	}

	return &E12Backpressure{
		HealthyFlushPerSec:  healthyRate,
		OverloadFlushPerSec: overloadRate,
		ThrottleEvents:      stats.ThrottleEvents.Value(),
		DropsReported:       stats.DropsReported.Value(),
		EventsShed:          stats.EventsShed.Value(),
		Throttled:           stats.Throttled.Value() > 0,
	}, nil
}

// E12Table formats RunE12 rows.
func E12Table(rows []E12Row) Table {
	t := Table{
		Title:  "E12 (ISSUE 4): hot vs idle endpoints under static and adaptive coalescing",
		Header: []string{"mode", "batch", "hot events", "hot events/s", "events/msg", "idle p50", "idle p99"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%d", r.HotEvents),
			fmt.Sprintf("%.0f", r.HotEventsPerSec),
			fmt.Sprintf("%.1f", r.EventsPerMsg),
			r.IdleP50.Round(time.Microsecond).String(),
			r.IdleP99.Round(time.Microsecond).String(),
		})
	}
	return t
}

// E12BackpressureTable formats the induced-overload phase.
func E12BackpressureTable(bp *E12Backpressure) Table {
	return Table{
		Title:  "E12 backpressure: receiver overload throttles the sender's flush rate",
		Header: []string{"healthy flush/s", "overload flush/s", "throttle events", "drops reported", "events shed", "throttled"},
		Rows: [][]string{{
			fmt.Sprintf("%.0f", bp.HealthyFlushPerSec),
			fmt.Sprintf("%.0f", bp.OverloadFlushPerSec),
			fmt.Sprintf("%d", bp.ThrottleEvents),
			fmt.Sprintf("%d", bp.DropsReported),
			fmt.Sprintf("%d", bp.EventsShed),
			fmt.Sprintf("%v", bp.Throttled),
		}},
	}
}
