package sim

// E16 (ISSUE 9): grid-scale interest routing. A fleet of N fabrics carries
// the same pub/sub workload twice — once flat (every interest flooded to
// every fabric, the PR 3 protocol) and once attached to a super-peer
// hierarchy (⌈√N⌉ root super-peers in a digest-exchanging clique, leaves
// spread round-robin below them). The workload is fixed — a constant
// subscriber and publisher population — while the fleet grows around it,
// and a background set of fabrics churns interests in types nobody
// publishes: the mobility-grade noise that makes flat flooding quadratic.
// Under that fixed workload any growth in messages-per-publish is pure
// routing overhead, which is exactly what must stay sublinear in N.
// The experiment measures what the paper's grid story needs to stay
// sublinear: per-fabric interest-routing state and total overlay messages
// per published event, with delivery losses, duplicates and digest
// false-positive spillover accounted. E16Check enforces the acceptance
// bars: at the largest fleet the hierarchy must at least halve both
// metrics, their growth across fleet sizes must be sublinear (log-log
// slope < 1), no delivery may be lost or duplicated, and spillover must
// stay under 5% of forwarded batches.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/scinet"
	"sci/internal/server"
	"sci/internal/transport"
)

// E16Row is one (fleet size, routing mode) measurement.
type E16Row struct {
	Fabrics int    `json:"fabrics"`
	Mode    string `json:"mode"` // "flat" or "hier"

	// AvgInterestEntries is the mean per-fabric interest-routing state:
	// non-empty flat interest-table entries plus hierarchy digest links.
	AvgInterestEntries float64 `json:"avg_interest_entries"`
	// MsgsPerPublish is total overlay traffic (deliveries + relays summed
	// fleet-wide, interest gossip and digest updates included) during the
	// measured phase, per published event.
	MsgsPerPublish float64 `json:"msgs_per_publish"`

	Published int `json:"published"`
	Expected  int `json:"expected"` // published × subscribers
	Delivered int `json:"delivered"`
	Lost      int `json:"lost"`
	Dups      int `json:"dups"`

	// Spillover counts batches a digest false positive forwarded to a
	// fabric with no matching consumer; SpilloverFrac is that against all
	// forwarded batches (fan-out + relay) in the measured phase.
	Spillover     uint64  `json:"spillover"`
	SpilloverFrac float64 `json:"spillover_frac"`
	DigestUpdates uint64  `json:"digest_updates"`
}

// e16Topics: the measured workload topic, the readiness probe topic, and
// the churned noise prefix nobody publishes.
const (
	e16LoadTopic  = ctxtype.Type("grid.load")
	e16ProbeTopic = ctxtype.Type("grid.probe")
)

// e16Counter tallies deliveries per event id for one subscriber.
type e16Counter struct {
	mu   sync.Mutex
	seen map[guid.GUID]int
}

func (c *e16Counter) handle(e event.Event) {
	c.mu.Lock()
	if c.seen == nil {
		c.seen = make(map[guid.GUID]int)
	}
	c.seen[e.ID]++
	c.mu.Unlock()
}

// uniqueAndDups reports distinct event ids seen and surplus deliveries.
func (c *e16Counter) uniqueAndDups() (unique, dups int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.seen {
		unique++
		dups += n - 1
	}
	return unique, dups
}

// e16Probes tracks which publishers' probe events each subscriber has seen.
type e16Probes struct {
	mu   sync.Mutex
	seen []map[guid.GUID]bool
}

func newE16Probes(subs int) *e16Probes {
	p := &e16Probes{seen: make([]map[guid.GUID]bool, subs)}
	for i := range p.seen {
		p.seen[i] = make(map[guid.GUID]bool)
	}
	return p
}

func (p *e16Probes) handler(sub int) func(event.Event) {
	return func(e event.Event) {
		p.mu.Lock()
		p.seen[sub][e.Source] = true
		p.mu.Unlock()
	}
}

func (p *e16Probes) allSaw(srcs []guid.GUID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.seen {
		for _, s := range srcs {
			if !m[s] {
				return false
			}
		}
	}
	return true
}

// runE16One runs one fleet at one size in one mode and measures it.
func runE16One(n, perPub int, hier bool) (E16Row, error) {
	const (
		publishers  = 4
		churners    = 8
		churnRounds = 3
	)
	supers := int(math.Ceil(math.Sqrt(float64(n))))
	const subs = 8
	if n < supers+subs+publishers+churners {
		return E16Row{}, fmt.Errorf("sim: e16 fleet of %d too small for %d supers + %d subs + %d pubs + %d churners",
			n, supers, subs, publishers, churners)
	}
	mode := "flat"
	if hier {
		mode = "hier"
	}

	net := transport.NewMemory(transport.MemoryConfig{})
	var ranges []*server.Range
	var fabrics []*scinet.Fabric
	defer func() {
		for _, f := range fabrics {
			_ = f.Close()
		}
		for _, r := range ranges {
			r.Close()
		}
		_ = net.Close()
	}()
	for i := 0; i < n; i++ {
		rng := server.New(server.Config{
			Name:           fmt.Sprintf("e16-%s-%d", mode, i),
			Coverage:       location.Path(fmt.Sprintf("grid/%s/%d", mode, i)),
			BatchMaxEvents: 8,
			BatchMaxDelay:  2 * time.Millisecond,
		})
		f, err := scinet.NewFabric(rng, net, nil)
		if err != nil {
			rng.Close()
			return E16Row{}, err
		}
		ranges, fabrics = append(ranges, rng), append(fabrics, f)
	}
	if hier {
		// ⌈√N⌉ super-peers form a root forest exchanging digests as a
		// clique; every leaf attaches round-robin below one of them — the
		// overlay.PlanTree shape with the roots' Peers filled in.
		ids := make([]guid.GUID, n)
		for i, f := range fabrics {
			ids[i] = f.NodeID()
		}
		for i, f := range fabrics {
			cfg := scinet.HierarchyConfig{DigestWindow: 20 * time.Millisecond}
			if i < supers {
				cfg.SuperPeer = true
				for j := 0; j < supers; j++ {
					if j != i {
						cfg.Peers = append(cfg.Peers, ids[j])
					}
				}
			} else {
				cfg.Parent = ids[(i-supers)%supers]
				cfg.Level = 1
			}
			f.SetHierarchy(cfg)
		}
	}
	for i, f := range fabrics {
		if i > 0 {
			if err := f.Join(fabrics[0].NodeID()); err != nil {
				return E16Row{}, err
			}
		}
	}

	subIdx := make([]int, subs)
	for i := range subIdx {
		subIdx[i] = supers + i
	}
	pubIdx := make([]int, publishers)
	for i := range pubIdx {
		pubIdx[i] = supers + subs + i
	}
	churnIdx := make([]int, churners)
	for i := range churnIdx {
		churnIdx[i] = supers + subs + publishers + i
	}

	counters := make([]*e16Counter, subs)
	probes := newE16Probes(subs)
	for i, si := range subIdx {
		counters[i] = &e16Counter{}
		if _, err := fabrics[si].SubscribeRemote(guid.New(guid.KindApplication),
			event.Filter{Type: e16LoadTopic}, counters[i].handle); err != nil {
			return E16Row{}, err
		}
		if _, err := fabrics[si].SubscribeRemote(guid.New(guid.KindApplication),
			event.Filter{Type: e16ProbeTopic}, probes.handler(i)); err != nil {
			return E16Row{}, err
		}
	}

	// Readiness probes: repeat a probe event per publisher until every
	// subscriber has heard every publisher — the interest (or digest) path
	// from each publisher to each subscriber is proven live before the
	// measured phase starts. Probe traffic is excluded from the metrics by
	// snapshotting counters after it settles.
	probeSrcs := make([]guid.GUID, publishers)
	for i := range probeSrcs {
		probeSrcs[i] = guid.New(guid.KindDevice)
	}
	probeDeadline := time.Now().Add(20 * time.Second)
	seq := uint64(0)
	for !probes.allSaw(probeSrcs) {
		if time.Now().After(probeDeadline) {
			return E16Row{}, fmt.Errorf("sim: e16 %s/%d: pub→sub paths not live within 20s", mode, n)
		}
		seq++
		for i, pi := range pubIdx {
			e := event.New(e16ProbeTopic, probeSrcs[i], seq, time.Now(), nil)
			if err := ranges[pi].Publish(e); err != nil {
				return E16Row{}, err
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // let probe traffic drain

	sumCounters := func() (msgs, fwd, spill, dig uint64) {
		for _, f := range fabrics {
			d, r := f.OverlayCounters()
			msgs += d + r
			fwd += f.BatchesForwarded.Value() + f.BatchesRelayed.Value()
			spill += f.SpilloverDropped.Value()
			dig += f.DigestUpdatesSent.Value()
		}
		return
	}
	baseMsgs, baseFwd, baseSpill, baseDig := sumCounters()

	// Measured phase: the publishers stream their events while the churn
	// fabrics add and withdraw interests in types nobody publishes — the
	// background interest mobility a grid fleet lives with.
	var wg sync.WaitGroup
	for i, pi := range pubIdx {
		wg.Add(1)
		go func(i, pi int) {
			defer wg.Done()
			src := guid.New(guid.KindDevice)
			chunk := make([]event.Event, 0, 8)
			for k := 0; k < perPub; k++ {
				chunk = append(chunk, event.New(e16LoadTopic, src, uint64(k+1), time.Now(),
					map[string]any{"pub": i, "k": k}))
				if len(chunk) == 8 || k == perPub-1 {
					if err := ranges[pi].PublishAll(chunk); err != nil {
						return
					}
					chunk = chunk[:0]
				}
			}
		}(i, pi)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < churnRounds; r++ {
			for c, ci := range churnIdx {
				fabrics[ci].AddInterest(event.Filter{Type: ctxtype.Type(fmt.Sprintf("noise.c%d.r%d", c, r))})
			}
			time.Sleep(20 * time.Millisecond)
			for c, ci := range churnIdx {
				fabrics[ci].RemoveInterest(event.Filter{Type: ctxtype.Type(fmt.Sprintf("noise.c%d.r%d", c, r))})
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	wg.Wait()

	published := publishers * perPub
	waitUntil(func() bool {
		for _, c := range counters {
			if u, _ := c.uniqueAndDups(); u < published {
				return false
			}
		}
		return true
	})
	time.Sleep(300 * time.Millisecond) // drain trailing gossip and relays

	endMsgs, endFwd, endSpill, endDig := sumCounters()
	row := E16Row{
		Fabrics:       n,
		Mode:          mode,
		Published:     published,
		Expected:      published * subs,
		Spillover:     endSpill - baseSpill,
		DigestUpdates: endDig - baseDig,
	}
	for _, c := range counters {
		u, d := c.uniqueAndDups()
		row.Delivered += u
		row.Dups += d
	}
	row.Lost = row.Expected - row.Delivered
	if published > 0 {
		row.MsgsPerPublish = float64(endMsgs-baseMsgs) / float64(published)
	}
	if fwd := endFwd - baseFwd; fwd > 0 {
		row.SpilloverFrac = float64(row.Spillover) / float64(fwd)
	}
	entries := 0
	for _, f := range fabrics {
		entries += f.InterestStateSize()
	}
	row.AvgInterestEntries = float64(entries) / float64(n)
	return row, nil
}

// RunE16 measures flat vs hierarchical interest routing at each fleet size.
func RunE16(sizes []int, perPub int) ([]E16Row, error) {
	if perPub < 1 {
		perPub = 25
	}
	var rows []E16Row
	for _, n := range sizes {
		for _, hier := range []bool{false, true} {
			row, err := runE16One(n, perPub, hier)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// E16Check enforces the ISSUE 9 acceptance bars on a RunE16 sweep. It
// returns nil when every bar holds.
func E16Check(rows []E16Row) error {
	byMode := map[string][]E16Row{}
	for _, r := range rows {
		if r.Lost != 0 || r.Dups != 0 {
			return fmt.Errorf("e16: %s/%d lost %d and duplicated %d deliveries, want zero",
				r.Mode, r.Fabrics, r.Lost, r.Dups)
		}
		if r.Mode == "hier" && r.SpilloverFrac >= 0.05 {
			return fmt.Errorf("e16: hier/%d spillover %.1f%% of forwarded batches, want < 5%%",
				r.Fabrics, r.SpilloverFrac*100)
		}
		byMode[r.Mode] = append(byMode[r.Mode], r)
	}
	flat, hier := byMode["flat"], byMode["hier"]
	if len(flat) == 0 || len(hier) == 0 || len(flat) != len(hier) {
		return fmt.Errorf("e16: need paired flat/hier rows, got %d flat and %d hier", len(flat), len(hier))
	}
	last := len(hier) - 1
	if flat[last].Fabrics != hier[last].Fabrics {
		return fmt.Errorf("e16: unpaired fleet sizes %d vs %d", flat[last].Fabrics, hier[last].Fabrics)
	}
	if hier[last].AvgInterestEntries > 0.5*flat[last].AvgInterestEntries {
		return fmt.Errorf("e16: at %d fabrics hier holds %.1f interest entries/fabric vs flat %.1f, want ≤ 0.5×",
			hier[last].Fabrics, hier[last].AvgInterestEntries, flat[last].AvgInterestEntries)
	}
	if hier[last].MsgsPerPublish > 0.5*flat[last].MsgsPerPublish {
		return fmt.Errorf("e16: at %d fabrics hier costs %.1f msgs/publish vs flat %.1f, want ≤ 0.5×",
			hier[last].Fabrics, hier[last].MsgsPerPublish, flat[last].MsgsPerPublish)
	}
	if len(hier) >= 2 {
		first := hier[0]
		lastRow := hier[last]
		slope := func(m0, m1 float64) float64 {
			if m0 <= 0 || m1 <= 0 {
				return 0 // degenerate: nothing grew
			}
			return math.Log(m1/m0) / math.Log(float64(lastRow.Fabrics)/float64(first.Fabrics))
		}
		if s := slope(first.MsgsPerPublish, lastRow.MsgsPerPublish); s >= 1 {
			return fmt.Errorf("e16: hier msgs/publish grows with slope %.2f across %d→%d fabrics, want sublinear (< 1)",
				s, first.Fabrics, lastRow.Fabrics)
		}
		if s := slope(first.AvgInterestEntries, lastRow.AvgInterestEntries); s >= 1 {
			return fmt.Errorf("e16: hier interest entries grow with slope %.2f across %d→%d fabrics, want sublinear (< 1)",
				s, first.Fabrics, lastRow.Fabrics)
		}
	}
	return nil
}

// E16Table formats RunE16 rows.
func E16Table(rows []E16Row) Table {
	t := Table{
		Title: "E16 (ISSUE 9): hierarchical digest routing vs flat interest flooding",
		Header: []string{"fabrics", "mode", "entries/fabric", "msgs/publish",
			"published", "delivered", "lost", "dups", "spillover", "digests"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Fabrics),
			r.Mode,
			fmt.Sprintf("%.1f", r.AvgInterestEntries),
			fmt.Sprintf("%.1f", r.MsgsPerPublish),
			fmt.Sprintf("%d", r.Published),
			fmt.Sprintf("%d/%d", r.Delivered, r.Expected),
			fmt.Sprintf("%d", r.Lost),
			fmt.Sprintf("%d", r.Dups),
			fmt.Sprintf("%d (%.2f%%)", r.Spillover, r.SpilloverFrac*100),
			fmt.Sprintf("%d", r.DigestUpdates),
		})
	}
	return t
}
