package sim

// E13 (ISSUE 5): multi-hop overload. A three-fabric chain — origin A,
// relay B, sink C, where A never learned C's interest and relies on B's
// relay — is driven into relay-side overload: C's consumer collapses, C's
// acks to B report the drops B's traffic caused (per-publisher
// attribution), B folds them into the Downstream field of its own acks to
// A, and A — two hops from the congestion — throttles at the source. A
// second phase measures the ack economy of a hot bidirectional wire link:
// credit reports ride the opposing event.batch traffic instead of paying
// standalone event.batch_ack frames.

import (
	"fmt"
	"sync/atomic"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/rangesvc"
	"sci/internal/scinet"
	"sci/internal/sensor"
	"sci/internal/server"
	"sci/internal/transport"
)

// E13Result reports the multi-hop overload experiment.
type E13Result struct {
	// Batch is the BatchMaxEvents ceiling the chain ran with.
	Batch int
	// HealthyFlushPerSec / OverloadFlushPerSec are the ORIGIN's fan-out
	// flush rates with a healthy chain and with the sink collapsed two
	// hops downstream; Collapse is their ratio.
	HealthyFlushPerSec  float64
	OverloadFlushPerSec float64
	Collapse            float64
	// OriginThrottled reports whether the origin's fan coalescer was
	// throttled at the end of the overload window.
	OriginThrottled bool
	// RelayDownstream is the relay's accumulated downstream-drop counter —
	// the congestion it propagated upstream.
	RelayDownstream uint64
	// SinkDropsFromRelay is the sink Range's dispatch-drop count attributed
	// to the relay's traffic (per-publisher attribution at the sink).
	SinkDropsFromRelay uint64
	// FleetDropGauges counts the per-publisher drop gauges visible in the
	// FleetDispatchStats rollup; FleetDropTotal sums them.
	FleetDropGauges int
	FleetDropTotal  float64

	// Ack-economy phase (hot bidirectional Range-Service link).
	BatchesEachWay  uint64 // event.batch messages, both directions summed
	StandaloneAcks  uint64 // standalone event.batch_ack frames actually paid
	PiggybackedAcks uint64 // credit reports that rode reverse batches
	// AckRatioVsPR4 is StandaloneAcks over the PR 4 cost (one standalone
	// ack per batch): the acceptance bar is ≤ 0.55.
	AckRatioVsPR4 float64
}

// e13Chain is the three-fabric A→B→C rig.
type e13Chain struct {
	net     *transport.Memory
	ranges  []*server.Range
	fabrics []*scinet.Fabric

	src       guid.GUID
	seq       atomic.Uint64
	sinkSleep atomic.Int64 // per-event handler delay at the sink, ns
	sinkSeen  atomic.Int64
	relaySeen atomic.Int64
}

func newE13Chain(batch int, maxDelay time.Duration) (*e13Chain, error) {
	ch := &e13Chain{
		net: transport.NewMemory(transport.MemoryConfig{}),
		src: guid.New(guid.KindDevice),
	}
	for i := 0; i < 3; i++ {
		rng := server.New(server.Config{
			Name:             fmt.Sprintf("e13-r%d", i),
			Coverage:         location.Path(fmt.Sprintf("campus/e13-r%d", i)),
			BatchMaxEvents:   batch,
			BatchMaxDelay:    maxDelay,
			AdaptiveBatching: flow.Adaptive{Enabled: true},
		})
		f, err := scinet.NewFabric(rng, ch.net, nil)
		if err != nil {
			ch.close()
			return nil, err
		}
		if i > 0 {
			if err := f.Join(ch.fabrics[0].NodeID()); err != nil {
				ch.close()
				return nil, err
			}
		}
		ch.ranges = append(ch.ranges, rng)
		ch.fabrics = append(ch.fabrics, f)
	}

	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	// Relay consumer: fast.
	if _, err := ch.fabrics[1].SubscribeRemote(guid.New(guid.KindApplication), flt,
		func(event.Event) { ch.relaySeen.Add(1) }); err != nil {
		ch.close()
		return nil, err
	}
	// Sink consumer: speed governed by sinkSleep.
	if _, err := ch.fabrics[2].SubscribeRemote(guid.New(guid.KindApplication), flt,
		func(event.Event) {
			if d := ch.sinkSleep.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			ch.sinkSeen.Add(1)
		}); err != nil {
		ch.close()
		return nil, err
	}

	fA, fB, fC := ch.fabrics[0], ch.fabrics[1], ch.fabrics[2]
	// Wait until gossip settles: A knows B's interest, B knows C's.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		aKnowsB := len(fA.Interests()[fB.NodeID()]) > 0
		bKnowsC := len(fB.Interests()[fC.NodeID()]) > 0
		if aKnowsB && bKnowsC {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Partial knowledge: A never learned of C. Re-gossiped records may be
	// in flight, so prune until the entry stays gone.
	for settled := 0; settled < 25; {
		if fA.ForgetInterest(fC.NodeID()) {
			settled = 0
		} else {
			settled++
		}
		time.Sleep(time.Millisecond)
	}
	return ch, nil
}

func (ch *e13Chain) close() {
	// The sink must not drain its backlog at the overload pace during
	// teardown.
	ch.sinkSleep.Store(0)
	for _, f := range ch.fabrics {
		_ = f.Close()
	}
	for _, r := range ch.ranges {
		r.Close()
	}
	_ = ch.net.Close()
}

// pace publishes batch-sized chunks at the origin at a steady rate for the
// window and returns the origin's flush rate over it.
func (ch *e13Chain) pace(batch int, window time.Duration) float64 {
	stats := ch.ranges[0].FlowStats()
	pre := stats.Flushes.Value()
	buf := make([]event.Event, 0, batch)
	now := time.Now()
	deadline := now.Add(window)
	for time.Now().Before(deadline) {
		buf = buf[:0]
		for i := 0; i < batch; i++ {
			buf = append(buf, event.New(ctxtype.TemperatureCelsius, ch.src, ch.seq.Add(1), now,
				map[string]any{"value": 294.0}))
		}
		if err := ch.ranges[0].PublishAll(buf); err != nil {
			return 0
		}
		time.Sleep(500 * time.Microsecond)
	}
	return float64(stats.Flushes.Value()-pre) / window.Seconds()
}

// RunE13 drives the three-fabric chain through a healthy and an overloaded
// window, then measures the ack economy of a hot bidirectional link.
func RunE13(batch int, maxDelay time.Duration) (*E13Result, error) {
	if batch < 1 {
		batch = 1
	}
	ch, err := newE13Chain(batch, maxDelay)
	if err != nil {
		return nil, err
	}
	defer ch.close()
	fA, fB, fC := ch.fabrics[0], ch.fabrics[1], ch.fabrics[2]

	const window = 1500 * time.Millisecond
	res := &E13Result{Batch: batch}
	res.HealthyFlushPerSec = ch.pace(batch, window)

	// Collapse the sink: its consumer burns 20ms per event, so the relay's
	// inflow overruns it however hard A throttles — sustained drops,
	// attributed to the relay, propagated to the origin. The first ~150ms
	// are the control loop's onset (the sink's ring fills, the first
	// credit round trip crosses two hops, the penalty ramps), so the
	// overload figure is measured steady-state after an unmeasured onset
	// window under identical pacing.
	ch.sinkSleep.Store(int64(20 * time.Millisecond))
	ch.pace(batch, 300*time.Millisecond)
	res.OverloadFlushPerSec = ch.pace(batch, window)
	if res.OverloadFlushPerSec > 0 {
		res.Collapse = res.HealthyFlushPerSec / res.OverloadFlushPerSec
	}
	res.OriginThrottled = ch.ranges[0].FlowStats().Throttled.Value() > 0
	res.RelayDownstream = fB.DownstreamDrops()
	res.SinkDropsFromRelay = ch.ranges[2].DispatchDropsFor(fB.NodeID())

	// Per-publisher drop gauges in the fleet rollup.
	if fleet, err := fA.FleetDispatchStats(2 * time.Second); err == nil {
		for k, v := range fleet.Totals {
			if len(k) > 13 && k[:13] == "dropped_from_" {
				res.FleetDropGauges++
				res.FleetDropTotal += v
			}
		}
	}
	_ = fC

	ackStats, err := runE13AckEconomy(batch, maxDelay)
	if err != nil {
		return nil, err
	}
	res.BatchesEachWay = ackStats.batches
	res.StandaloneAcks = ackStats.standalone
	res.PiggybackedAcks = ackStats.piggybacked
	if ackStats.batches > 0 {
		res.AckRatioVsPR4 = float64(ackStats.standalone) / float64(ackStats.batches)
	}
	return res, nil
}

type e13AckStats struct {
	batches     uint64
	standalone  uint64
	piggybacked uint64
}

// runE13AckEconomy runs a hot bidirectional Range-Service link — the host
// floods deliveries to a batch connector that is simultaneously publishing
// its own batches — and counts how credit travelled. PR 4 paid one
// standalone event.batch_ack per received batch in each direction.
func runE13AckEconomy(batch int, maxDelay time.Duration) (*e13AckStats, error) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	rng := server.New(server.Config{
		Name:             "e13-duplex",
		Coverage:         location.Path("campus/e13-duplex"),
		BatchMaxEvents:   batch,
		BatchMaxDelay:    maxDelay,
		AdaptiveBatching: flow.Adaptive{Enabled: true},
	})
	defer rng.Close()
	host, err := rangesvc.NewHost(rng, net, nil)
	if err != nil {
		return nil, err
	}
	defer host.Close()
	thermo := sensor.NewTemperatureSensor("e13-probe", location.Ref{}, 294, 2, 1, nil)
	if err := rng.AddEntity(thermo); err != nil {
		return nil, err
	}

	var received atomic.Int64
	conn, err := rangesvc.NewBatchConnector(guid.New(guid.KindApplication), "duplex", net,
		func(events []event.Event) { received.Add(int64(len(events))) }, nil)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.Register(rng.ServerID(), profile.Profile{}, true); err != nil {
		return nil, err
	}
	conn.EnableAdaptiveQueue(64, 1<<16, 0)
	q := query.New(conn.ID(), query.What{Pattern: ctxtype.TemperatureKelvin}, query.ModeSubscribe)
	if _, err := conn.Submit(q); err != nil {
		return nil, err
	}

	// Hot both ways for one second: the Range floods temperature batches at
	// the connector while the connector publishes sighting batches back.
	src := thermo.ID()
	var seq uint64
	var published uint64
	deadline := time.Now().Add(time.Second)
	down := make([]event.Event, 0, batch)
	up := make([]event.Event, 0, batch)
	for time.Now().Before(deadline) {
		now := time.Now()
		down = down[:0]
		up = up[:0]
		for i := 0; i < batch; i++ {
			seq++
			down = append(down, event.New(ctxtype.TemperatureKelvin, src, seq, now,
				map[string]any{"value": 294.0, "unit": "kelvin"}))
			up = append(up, event.New(ctxtype.LocationSightingDoor, conn.ID(), seq, now,
				map[string]any{"place": "lobby"}))
		}
		if err := rng.PublishAll(down); err != nil {
			return nil, err
		}
		if err := conn.PublishAll(up); err != nil {
			return nil, err
		}
		published++
		time.Sleep(time.Millisecond)
	}
	// Let the tail of deliveries and acks drain.
	time.Sleep(50 * time.Millisecond)

	return &e13AckStats{
		batches:     rng.RemoteBatchesSent.Value() + published,
		standalone:  host.AcksSent.Value() + conn.AcksSent(),
		piggybacked: host.AcksPiggybacked.Value() + conn.AcksPiggybacked(),
	}, nil
}

// E13Table formats the chain phase.
func E13Table(r *E13Result) Table {
	return Table{
		Title: "E13 (ISSUE 5): 3-hop chain, relay-side overload throttles the origin",
		Header: []string{"batch", "healthy flush/s", "overload flush/s", "collapse",
			"origin throttled", "relay downstream", "sink drops (from relay)", "fleet drop gauges"},
		Rows: [][]string{{
			fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%.0f", r.HealthyFlushPerSec),
			fmt.Sprintf("%.0f", r.OverloadFlushPerSec),
			fmt.Sprintf("%.1f×", r.Collapse),
			fmt.Sprintf("%v", r.OriginThrottled),
			fmt.Sprintf("%d", r.RelayDownstream),
			fmt.Sprintf("%d", r.SinkDropsFromRelay),
			fmt.Sprintf("%d (Σ %.0f)", r.FleetDropGauges, r.FleetDropTotal),
		}},
	}
}

// E13AckTable formats the ack-economy phase.
func E13AckTable(r *E13Result) Table {
	return Table{
		Title:  "E13 ack economy: hot bidirectional link, credit rides reverse batches",
		Header: []string{"batches (both ways)", "standalone acks", "piggybacked", "acks vs PR4 (≤0.55)"},
		Rows: [][]string{{
			fmt.Sprintf("%d", r.BatchesEachWay),
			fmt.Sprintf("%d", r.StandaloneAcks),
			fmt.Sprintf("%d", r.PiggybackedAcks),
			fmt.Sprintf("%.2f", r.AckRatioVsPR4),
		}},
	}
}
