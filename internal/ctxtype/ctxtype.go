// Package ctxtype implements SCI's context type system: the vocabulary in
// which Context Entity Profiles declare their inputs and outputs and in
// which queries express the information they need.
//
// Section 2 of the paper criticises iQueue for matching data sources only
// syntactically: "an iQueue application that has been developed to request
// location data from a network of door sensors cannot take advantage of an
// environment that provides location information using a wireless detection
// scheme". SCI's stated requirement is "flexible and extensible
// representation and retrieval of contextual information". This package
// therefore models context types as dotted hierarchical names with declared
// semantic-equivalence classes and registered converters, so the Query
// Resolver can bind a request for "location.position" to a door-sensor
// provider, a W-LAN provider, or anything registered as semantically
// equivalent — and the configuration runtime can transparently rebind
// between them when providers fail (experiment E9).
package ctxtype

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// Type names a kind of contextual information, e.g. "location.position",
// "location.sighting.door", "path.route", "printer.status". Names are
// dotted, lower-case, and hierarchical: a provider of "location.sighting.door"
// also satisfies a request for the ancestor "location.sighting".
type Type string

// Wildcard matches any type in filters.
const Wildcard Type = "*"

// ErrBadType reports a malformed type name.
var ErrBadType = errors.New("ctxtype: malformed type name")

// Validate checks that t is a well-formed dotted name: non-empty, lower-case
// segments of letters/digits/hyphens separated by single dots. It allocates
// nothing on success — it runs inside every event publish.
func (t Type) Validate() error {
	if t == Wildcard {
		return nil
	}
	if t == "" {
		return fmt.Errorf("%w: empty", ErrBadType)
	}
	segLen := 0
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c == '.' {
			if segLen == 0 {
				return fmt.Errorf("%w: %q has empty segment", ErrBadType, t)
			}
			segLen = 0
			continue
		}
		ok := c == '-' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
		if !ok {
			// Decode the full rune for the message; multi-byte characters
			// are invalid but should be reported whole, not byte by byte.
			r, _ := utf8.DecodeRuneInString(string(t)[i:])
			return fmt.Errorf("%w: %q contains %q", ErrBadType, t, r)
		}
		segLen++
	}
	if segLen == 0 {
		return fmt.Errorf("%w: %q has empty segment", ErrBadType, t)
	}
	return nil
}

// Parent returns the immediate ancestor of t ("a.b.c" → "a.b") or "" when t
// is a root segment.
func (t Type) Parent() Type {
	i := strings.LastIndexByte(string(t), '.')
	if i < 0 {
		return ""
	}
	return t[:i]
}

// HasAncestor reports whether anc is t itself or a proper ancestor of t in
// the dotted hierarchy.
func (t Type) HasAncestor(anc Type) bool {
	if anc == Wildcard || t == anc {
		return true
	}
	// Boundary check instead of HasPrefix(t, anc+"."): this runs per event
	// per residual subscription, and the concatenation would allocate.
	return len(t) > len(anc) && t[len(anc)] == '.' &&
		strings.HasPrefix(string(t), string(anc))
}

// Depth returns the number of segments in the name.
func (t Type) Depth() int {
	if t == "" {
		return 0
	}
	return strings.Count(string(t), ".") + 1
}

// Core type vocabulary used by the built-in entities, sensors and the CAPA
// scenario. Applications may register arbitrary additional types.
const (
	// Location family. Sightings are raw sensor observations; position is
	// interpreted location in some model (see internal/location).
	LocationPosition     Type = "location.position"
	LocationSighting     Type = "location.sighting"
	LocationSightingDoor Type = "location.sighting.door"
	LocationSightingWLAN Type = "location.sighting.wlan"
	PathRoute            Type = "path.route"

	// Environmental measurements.
	TemperatureCelsius Type = "temperature.celsius"
	TemperatureKelvin  Type = "temperature.kelvin"

	// Device/service state.
	PrinterStatus Type = "printer.status"
	PrinterQueue  Type = "printer.queue"

	// Entity lifecycle announcements produced by Range Services and the
	// Registrar (arrival into / departure from a Range, Section 3.4).
	EntityArrival   Type = "entity.arrival"
	EntityDeparture Type = "entity.departure"

	// Profile and advertisement updates.
	ProfileUpdate Type = "profile.update"
)

// Converter transforms a payload of one type into another, e.g. Kelvin to
// Celsius or a door sighting to a position. Payloads are the generic JSON
// object form used by internal/event.
type Converter func(payload map[string]any) (map[string]any, error)

// Registry holds the known types, their semantic-equivalence classes, and
// converters. A Registry is safe for concurrent use. The zero value is
// usable.
type Registry struct {
	mu      sync.RWMutex
	types   map[Type]struct{}
	equiv   map[Type]Type         // union-find parent for equivalence classes
	conv    map[[2]Type]Converter // exact-pair converters
	quality map[Type]float64      // default quality score of a representation

	// gen counts equivalence-class mutations. Dispatch-index caches (the
	// event bus's lookup-key memo) key their entries on it so a
	// DeclareEquivalent issued after subscriptions exist still reaches them.
	gen atomic.Uint64
}

// Generation returns the equivalence-mutation counter. It changes exactly
// when a DeclareEquivalent call merges two previously distinct classes, so
// a cache keyed on it never serves stale equivalence answers.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// NewRegistry returns a Registry pre-loaded with the core vocabulary and the
// equivalences/conversions the built-in components rely on:
//
//   - location.sighting.door ≡ location.sighting.wlan (both are sightings and
//     can ground a location.position request),
//   - temperature.kelvin → temperature.celsius converter.
func NewRegistry() *Registry {
	r := &Registry{}
	for _, t := range []Type{
		LocationPosition, LocationSighting, LocationSightingDoor,
		LocationSightingWLAN, PathRoute, TemperatureCelsius,
		TemperatureKelvin, PrinterStatus, PrinterQueue, EntityArrival,
		EntityDeparture, ProfileUpdate,
	} {
		if err := r.Register(t); err != nil {
			panic(err) // core vocabulary is statically well-formed
		}
	}
	if err := r.DeclareEquivalent(LocationSightingDoor, LocationSightingWLAN); err != nil {
		panic(err)
	}
	if err := r.RegisterConverter(TemperatureKelvin, TemperatureCelsius,
		func(p map[string]any) (map[string]any, error) {
			k, ok := p["value"].(float64)
			if !ok {
				return nil, fmt.Errorf("ctxtype: kelvin payload missing numeric value")
			}
			return map[string]any{"value": k - 273.15, "unit": "celsius"}, nil
		}); err != nil {
		panic(err)
	}
	r.SetQuality(LocationSightingDoor, 0.9) // precise point observation
	r.SetQuality(LocationSightingWLAN, 0.6) // coarse cell-level observation
	return r
}

// Register adds a type to the registry. Registering an already-known type is
// a no-op.
func (r *Registry) Register(t Type) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.types == nil {
		r.types = make(map[Type]struct{})
	}
	r.types[t] = struct{}{}
	return nil
}

// Known reports whether t has been registered.
func (r *Registry) Known(t Type) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.types[t]
	return ok
}

// Types returns all registered types, sorted.
func (r *Registry) Types() []Type {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Type, 0, len(r.types))
	for t := range r.types {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeclareEquivalent records that a and b belong to the same semantic
// equivalence class: a provider of either satisfies a request for the other.
// Equivalence is reflexive, symmetric and transitive (union-find).
func (r *Registry) DeclareEquivalent(a, b Type) error {
	for _, t := range []Type{a, b} {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.equiv == nil {
		r.equiv = make(map[Type]Type)
	}
	ra, rb := r.findLocked(a), r.findLocked(b)
	if ra != rb {
		// Union by lexicographic order for determinism.
		if ra < rb {
			r.equiv[rb] = ra
		} else {
			r.equiv[ra] = rb
		}
		r.gen.Add(1)
	}
	return nil
}

// EquivSet returns every type in t's declared equivalence class, including
// t itself when the class is non-trivial, sorted. Unlike ClassOf it also
// reports class members that were named in DeclareEquivalent without being
// registered, which is what exact-index dispatch needs: a subscription may
// filter on such a type. A type with no declared equivalences yields nil.
func (r *Registry) EquivSet(t Type) []Type {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.equiv == nil {
		return nil
	}
	root := r.findLocked(t)
	members := make([]Type, 0, 4)
	if root != t || r.inSomeClassLocked(t) {
		members = append(members, root)
	}
	for u := range r.equiv {
		if u != root && r.findLocked(u) == root {
			members = append(members, u)
		}
	}
	if len(members) <= 1 {
		return nil
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// inSomeClassLocked reports whether t participates in any declared
// equivalence, either as a recorded child or as the root of one.
func (r *Registry) inSomeClassLocked(t Type) bool {
	if _, ok := r.equiv[t]; ok {
		return true
	}
	for _, parent := range r.equiv {
		if parent == t {
			return true
		}
	}
	return false
}

// Equivalent reports whether a and b are in the same declared equivalence
// class (or are the same type).
func (r *Registry) Equivalent(a, b Type) bool {
	if a == b {
		return true
	}
	r.mu.Lock() // findLocked performs path compression, so full lock
	defer r.mu.Unlock()
	return r.findLocked(a) == r.findLocked(b)
}

// ClassOf returns all registered types in t's equivalence class, sorted;
// it always contains t itself if registered.
func (r *Registry) ClassOf(t Type) []Type {
	r.mu.Lock()
	defer r.mu.Unlock()
	root := r.findLocked(t)
	var out []Type
	for u := range r.types {
		if r.findLocked(u) == root {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *Registry) findLocked(t Type) Type {
	if r.equiv == nil {
		return t
	}
	root := t
	for {
		p, ok := r.equiv[root]
		if !ok {
			break
		}
		root = p
	}
	// Path compression.
	for t != root {
		next, ok := r.equiv[t]
		if !ok {
			break
		}
		r.equiv[t] = root
		t = next
	}
	return root
}

// Satisfies reports whether a provider of got satisfies a request for want,
// under the three matching rules the resolver uses, in order of preference:
// exact match, hierarchical subsumption (got is a descendant of want), and
// declared semantic equivalence.
func (r *Registry) Satisfies(got, want Type) bool {
	if got == want || want == Wildcard {
		return true
	}
	if got.HasAncestor(want) {
		return true
	}
	return r.Equivalent(got, want)
}

// MatchScore grades how well got satisfies want: 3 exact, 2 subsumption,
// 1 equivalence, 0 no match. The resolver uses it to rank candidate
// providers before applying the query's Which clause.
func (r *Registry) MatchScore(got, want Type) int {
	switch {
	case got == want || want == Wildcard:
		return 3
	case got.HasAncestor(want):
		return 2
	case r.Equivalent(got, want):
		return 1
	default:
		return 0
	}
}

// RegisterConverter installs a payload converter from → to. Both types are
// implicitly registered.
func (r *Registry) RegisterConverter(from, to Type, c Converter) error {
	if c == nil {
		return errors.New("ctxtype: nil converter")
	}
	if err := r.Register(from); err != nil {
		return err
	}
	if err := r.Register(to); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conv == nil {
		r.conv = make(map[[2]Type]Converter)
	}
	r.conv[[2]Type{from, to}] = c
	return nil
}

// Convert transforms payload from one type to another. Identity conversions
// always succeed. Returns ErrNoConversion when no converter is registered.
func (r *Registry) Convert(from, to Type, payload map[string]any) (map[string]any, error) {
	if from == to {
		return payload, nil
	}
	r.mu.RLock()
	c, ok := r.conv[[2]Type{from, to}]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s → %s", ErrNoConversion, from, to)
	}
	return c(payload)
}

// ErrNoConversion indicates no converter is registered for the pair.
var ErrNoConversion = errors.New("ctxtype: no conversion registered")

// SetQuality records the default quality score (0..1] for a representation;
// used to break ties between equivalent providers (door sighting beats WLAN
// sighting for precision).
func (r *Registry) SetQuality(t Type, q float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.quality == nil {
		r.quality = make(map[Type]float64)
	}
	r.quality[t] = q
}

// Quality returns the recorded quality for t, defaulting to 0.5.
func (r *Registry) Quality(t Type) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if q, ok := r.quality[t]; ok {
		return q
	}
	return 0.5
}
