package ctxtype

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := []Type{"a", "a.b", "location.sighting.door", "x-1.y2", Wildcard}
	for _, ty := range good {
		if err := ty.Validate(); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", ty, err)
		}
	}
	bad := []Type{"", ".", "a.", ".a", "a..b", "A.b", "a b", "a.B", "日本"}
	for _, ty := range bad {
		if err := ty.Validate(); err == nil {
			t.Errorf("Validate(%q) = nil, want error", ty)
		} else if !errors.Is(err, ErrBadType) {
			t.Errorf("Validate(%q) error not ErrBadType: %v", ty, err)
		}
	}
}

func TestParentDepthAncestor(t *testing.T) {
	ty := Type("location.sighting.door")
	if ty.Parent() != "location.sighting" {
		t.Fatalf("Parent = %q", ty.Parent())
	}
	if Type("location").Parent() != "" {
		t.Fatal("root parent should be empty")
	}
	if ty.Depth() != 3 || Type("").Depth() != 0 {
		t.Fatal("Depth broken")
	}
	if !ty.HasAncestor("location") || !ty.HasAncestor("location.sighting") || !ty.HasAncestor(ty) {
		t.Fatal("HasAncestor false negatives")
	}
	if ty.HasAncestor("loc") || ty.HasAncestor("location.sight") {
		t.Fatal("HasAncestor must match whole segments")
	}
	if !ty.HasAncestor(Wildcard) {
		t.Fatal("wildcard is ancestor of everything")
	}
}

func TestRegistryRegisterKnown(t *testing.T) {
	var r Registry // zero value usable
	if r.Known("foo.bar") {
		t.Fatal("empty registry knows types")
	}
	if err := r.Register("foo.bar"); err != nil {
		t.Fatal(err)
	}
	if !r.Known("foo.bar") {
		t.Fatal("Register did not take")
	}
	if err := r.Register("BAD NAME"); err == nil {
		t.Fatal("Register accepted malformed name")
	}
}

func TestNewRegistryCoreVocabulary(t *testing.T) {
	r := NewRegistry()
	for _, ty := range []Type{LocationPosition, PathRoute, PrinterStatus, EntityArrival} {
		if !r.Known(ty) {
			t.Errorf("core type %q not registered", ty)
		}
	}
	if len(r.Types()) < 10 {
		t.Fatalf("core vocabulary too small: %v", r.Types())
	}
	// Types() sorted.
	ts := r.Types()
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatal("Types not sorted")
		}
	}
}

func TestEquivalence(t *testing.T) {
	r := NewRegistry()
	if !r.Equivalent(LocationSightingDoor, LocationSightingWLAN) {
		t.Fatal("door and wlan sightings should be equivalent (core registry)")
	}
	if !r.Equivalent(LocationSightingDoor, LocationSightingDoor) {
		t.Fatal("equivalence must be reflexive")
	}
	if r.Equivalent(LocationSightingDoor, PrinterStatus) {
		t.Fatal("unrelated types equivalent")
	}
	// Transitivity via a chain.
	if err := r.Register("location.sighting.bluetooth"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeclareEquivalent("location.sighting.bluetooth", LocationSightingWLAN); err != nil {
		t.Fatal(err)
	}
	if !r.Equivalent("location.sighting.bluetooth", LocationSightingDoor) {
		t.Fatal("equivalence must be transitive")
	}
	class := r.ClassOf(LocationSightingDoor)
	if len(class) != 3 {
		t.Fatalf("ClassOf = %v, want 3 members", class)
	}
}

func TestDeclareEquivalentValidates(t *testing.T) {
	var r Registry
	if err := r.DeclareEquivalent("ok", "NOT OK"); err == nil {
		t.Fatal("DeclareEquivalent accepted bad name")
	}
}

func TestSatisfiesAndScore(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		got, want Type
		satisfies bool
		score     int
	}{
		{LocationPosition, LocationPosition, true, 3},
		{LocationSightingDoor, LocationSighting, true, 2}, // subsumption
		{LocationSightingDoor, LocationSightingWLAN, true, 1},
		{PrinterStatus, LocationPosition, false, 0},
		{LocationSighting, LocationSightingDoor, false, 0}, // ancestor does NOT satisfy descendant
		{PrinterQueue, Wildcard, true, 3},
	}
	for _, c := range cases {
		if got := r.Satisfies(c.got, c.want); got != c.satisfies {
			t.Errorf("Satisfies(%q,%q) = %v, want %v", c.got, c.want, got, c.satisfies)
		}
		if got := r.MatchScore(c.got, c.want); got != c.score {
			t.Errorf("MatchScore(%q,%q) = %d, want %d", c.got, c.want, got, c.score)
		}
	}
}

func TestConvert(t *testing.T) {
	r := NewRegistry()
	out, err := r.Convert(TemperatureKelvin, TemperatureCelsius, map[string]any{"value": 300.0})
	if err != nil {
		t.Fatal(err)
	}
	if v := out["value"].(float64); v < 26.84 || v > 26.86 {
		t.Fatalf("300K = %v °C, want ≈26.85", v)
	}
	// Identity.
	p := map[string]any{"x": 1}
	same, err := r.Convert(PrinterQueue, PrinterQueue, p)
	if err != nil || same["x"] != 1 {
		t.Fatal("identity conversion broken")
	}
	// Missing.
	if _, err := r.Convert(PrinterQueue, PathRoute, p); !errors.Is(err, ErrNoConversion) {
		t.Fatalf("want ErrNoConversion, got %v", err)
	}
	// Converter error path.
	if _, err := r.Convert(TemperatureKelvin, TemperatureCelsius, map[string]any{}); err == nil {
		t.Fatal("converter should reject missing value")
	}
}

func TestRegisterConverterValidation(t *testing.T) {
	var r Registry
	if err := r.RegisterConverter("a", "b", nil); err == nil {
		t.Fatal("nil converter accepted")
	}
	if err := r.RegisterConverter("BAD NAME", "b", func(p map[string]any) (map[string]any, error) { return p, nil }); err == nil {
		t.Fatal("bad from-type accepted")
	}
	if err := r.RegisterConverter("a", "b", func(p map[string]any) (map[string]any, error) { return p, nil }); err != nil {
		t.Fatal(err)
	}
	if !r.Known("a") || !r.Known("b") {
		t.Fatal("RegisterConverter should register both endpoint types")
	}
}

func TestQuality(t *testing.T) {
	r := NewRegistry()
	if r.Quality(LocationSightingDoor) <= r.Quality(LocationSightingWLAN) {
		t.Fatal("door sighting should outrank wlan sighting")
	}
	if q := r.Quality("never.seen"); q != 0.5 {
		t.Fatalf("default quality = %v, want 0.5", q)
	}
	r.SetQuality("never.seen", 0.99)
	if q := r.Quality("never.seen"); q != 0.99 {
		t.Fatalf("SetQuality did not take: %v", q)
	}
}

// Property: equivalence is symmetric and transitive over random declarations.
func TestPropEquivalenceClosure(t *testing.T) {
	names := []Type{"t.a", "t.b", "t.c", "t.d", "t.e", "t.f"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := &Registry{}
		for _, n := range names {
			if err := r.Register(n); err != nil {
				return false
			}
		}
		// Declare random pairs equivalent; track ground truth with a naive
		// union-find over indices.
		parent := make([]int, len(names))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(i int) int {
			for parent[i] != i {
				i = parent[i]
			}
			return i
		}
		for k := 0; k < 8; k++ {
			i, j := rng.Intn(len(names)), rng.Intn(len(names))
			if err := r.DeclareEquivalent(names[i], names[j]); err != nil {
				return false
			}
			parent[find(i)] = find(j)
		}
		for i := range names {
			for j := range names {
				want := find(i) == find(j)
				if r.Equivalent(names[i], names[j]) != want {
					return false
				}
				// Symmetry.
				if r.Equivalent(names[i], names[j]) != r.Equivalent(names[j], names[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Satisfies is implied by MatchScore > 0 and vice versa.
func TestPropSatisfiesIffScorePositive(t *testing.T) {
	r := NewRegistry()
	all := r.Types()
	f := func(i, j uint8) bool {
		got := all[int(i)%len(all)]
		want := all[int(j)%len(all)]
		return r.Satisfies(got, want) == (r.MatchScore(got, want) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestHasAncestorDoesNotAllocate: ancestry checks run per event per
// residual subscription on the dispatch hot path; the old implementation
// concatenated anc+"." per call. Regression test for the zero-alloc form.
func TestHasAncestorDoesNotAllocate(t *testing.T) {
	ty := Type("location.sighting.badge")
	anc := Type("location.sighting")
	if n := testing.AllocsPerRun(100, func() { _ = ty.HasAncestor(anc) }); n != 0 {
		t.Fatalf("HasAncestor allocates %v times per call, want 0", n)
	}
}
