package ctxtype

import (
	"reflect"
	"testing"
)

func TestGenerationBumpsOnlyOnRealMerges(t *testing.T) {
	r := &Registry{}
	if r.Generation() != 0 {
		t.Fatal("fresh registry has non-zero generation")
	}
	if err := r.DeclareEquivalent("a.x", "b.y"); err != nil {
		t.Fatal(err)
	}
	g1 := r.Generation()
	if g1 == 0 {
		t.Fatal("merge did not bump generation")
	}
	// Re-declaring an existing equivalence merges nothing.
	if err := r.DeclareEquivalent("b.y", "a.x"); err != nil {
		t.Fatal(err)
	}
	if r.Generation() != g1 {
		t.Fatal("no-op declaration bumped generation")
	}
	if err := r.DeclareEquivalent("b.y", "c.z"); err != nil {
		t.Fatal(err)
	}
	if r.Generation() <= g1 {
		t.Fatal("transitive merge did not bump generation")
	}
}

func TestEquivSet(t *testing.T) {
	r := &Registry{}
	if got := r.EquivSet("a.x"); got != nil {
		t.Fatalf("EquivSet on empty registry = %v, want nil", got)
	}
	if err := r.DeclareEquivalent("a.x", "b.y"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeclareEquivalent("b.y", "c.z"); err != nil {
		t.Fatal(err)
	}
	want := []Type{"a.x", "b.y", "c.z"}
	// Every member sees the full class, whether it is the union-find root
	// or a child, and regardless of registration.
	for _, m := range want {
		if got := r.EquivSet(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("EquivSet(%s) = %v, want %v", m, got, want)
		}
	}
	// A type outside any class yields nil even with classes present.
	if got := r.EquivSet("d.w"); got != nil {
		t.Fatalf("EquivSet(d.w) = %v, want nil", got)
	}
}

func TestEquivSetCoreRegistry(t *testing.T) {
	r := NewRegistry()
	want := []Type{LocationSightingDoor, LocationSightingWLAN}
	if got := r.EquivSet(LocationSightingWLAN); !reflect.DeepEqual(got, want) {
		t.Fatalf("EquivSet(wlan) = %v, want %v", got, want)
	}
	if got := r.EquivSet(TemperatureCelsius); got != nil {
		t.Fatalf("EquivSet(celsius) = %v, want nil (converters are not equivalences)", got)
	}
}

func TestValidateAllocationFree(t *testing.T) {
	// Validate runs inside every Publish; it must not allocate on success.
	allocs := testing.AllocsPerRun(100, func() {
		if err := LocationSightingDoor.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Validate allocates %v objects per run", allocs)
	}
	for _, bad := range []Type{"", ".", "a..b", "a.", ".a", "A.b", "a b"} {
		if bad.Validate() == nil {
			t.Fatalf("Validate(%q) accepted malformed type", bad)
		}
	}
}
