package scinet

import (
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/overlay"
	"sci/internal/server"
	"sci/internal/transport"
)

// TestFleetDispatchStatsDeadlineUsesInjectedClock pins the routed-stats
// probe deadline to the fabric's injected clock. A mute overlay node (no
// Deliver handler) joins the SCINET so the fabric probes it and never
// hears back; the probe must wait out the timeout on the *manual* clock —
// real time passing alone may not expire it, and advancing the manual
// clock must. This is the regression test for the former time.Now()-based
// deadline in FleetDispatchStats.
func TestFleetDispatchStatsDeadlineUsesInjectedClock(t *testing.T) {
	clk := clock.NewManual(epoch)
	net := transport.NewMemory(transport.MemoryConfig{Clock: clk})
	rng := server.New(server.Config{Name: "solo", Clock: clk, Coverage: "campus"})
	defer rng.Close()

	f, err := NewFabric(rng, net, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	mute, err := overlay.NewNode(overlay.Config{Network: net, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	if err := mute.Join(f.NodeID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, id := range f.node.Known() {
			if id == mute.ID() {
				return true
			}
		}
		return false
	})

	const timeout = 3 * time.Second
	base := clk.PendingCount()
	done := make(chan *FleetStats, 1)
	errCh := make(chan error, 1)
	go func() {
		fs, err := f.FleetDispatchStats(timeout)
		errCh <- err
		done <- fs
	}()

	// The probe's deadline timer must land on the manual clock.
	waitFor(t, func() bool { return clk.PendingCount() > base })

	// With the manual clock standing still, real time cannot expire the
	// probe.
	select {
	case <-done:
		t.Fatal("FleetDispatchStats returned before the injected clock advanced")
	case <-time.After(50 * time.Millisecond):
	}

	clk.Advance(timeout)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
		fs := <-done
		if fs.Ranges != 1 {
			t.Fatalf("Ranges = %d, want 1 (mute peer must be left out)", fs.Ranges)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FleetDispatchStats did not return after advancing the injected clock")
	}
}
