package scinet

import (
	"fmt"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/query"
	"sci/internal/sensor"
	"sci/internal/server"
	"sci/internal/transport"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func l10Map(t testing.TB) *location.Map {
	t.Helper()
	places := []location.Place{
		{ID: "l10.corr", Path: "campus/lt/l10/corr", Centroid: location.Point{Frame: "L10", X: 10, Y: 0}},
		{ID: "l10.01", Path: "campus/lt/l10/l10.01", Centroid: location.Point{Frame: "L10", X: 20, Y: 0}},
	}
	links := []location.Link{{A: "l10.corr", B: "l10.01", Door: "d-1001"}}
	m, err := location.NewMap(places, links)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// twoRanges builds the CAPA topology: a lobby Range and a Level-10 Range
// joined into one SCINET.
type twoRanges struct {
	clk          *clock.Manual
	net          *transport.Memory
	lobby, l10   *server.Range
	fLobby, fL10 *Fabric
	door         *sensor.DoorSensor
	obj          *entity.ObjLocationCE
}

func newTwoRanges(t testing.TB) *twoRanges {
	t.Helper()
	clk := clock.NewManual(epoch)
	net := transport.NewMemory(transport.MemoryConfig{Clock: clk})

	lobby := server.New(server.Config{
		Name: "lift-lobby", Clock: clk, Coverage: "campus/lt/lobby",
		AutoRenewEvery: 5 * time.Second,
	})
	m := l10Map(t)
	l10 := server.New(server.Config{
		Name: "level-10", Clock: clk, Places: m, Coverage: "campus/lt/l10",
		AutoRenewEvery: 5 * time.Second,
	})

	fLobby, err := NewFabric(lobby, net, clk)
	if err != nil {
		t.Fatal(err)
	}
	fL10, err := NewFabric(l10, net, clk)
	if err != nil {
		t.Fatal(err)
	}
	if err := fL10.Join(fLobby.NodeID()); err != nil {
		t.Fatal(err)
	}

	tr := &twoRanges{clk: clk, net: net, lobby: lobby, l10: l10, fLobby: fLobby, fL10: fL10}
	tr.door = sensor.NewDoorSensor("d-1001", location.AtPlace("l10.01"), clk)
	if err := l10.AddEntity(tr.door); err != nil {
		t.Fatal(err)
	}
	tr.obj = entity.NewObjLocationCE(m, clk)
	if err := l10.AddEntity(tr.obj); err != nil {
		t.Fatal(err)
	}
	return tr
}

func (tr *twoRanges) close() {
	_ = tr.fLobby.Close()
	_ = tr.fL10.Close()
	tr.lobby.Close()
	tr.l10.Close()
	_ = tr.net.Close()
}

func TestCoveragePropagation(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	waitFor(t, func() bool {
		cov := tr.fLobby.Coverage()
		_, ok := cov[tr.fL10.NodeID()]
		return ok && len(cov) == 2
	})
	waitFor(t, func() bool {
		cov := tr.fL10.Coverage()
		_, ok := cov[tr.fLobby.NodeID()]
		return ok
	})
	// Most-specific covering node.
	node, ok := tr.fLobby.CoveringNode("campus/lt/l10/l10.01")
	if !ok || node != tr.fL10.NodeID() {
		t.Fatalf("covering node = %v ok=%v", node.Short(), ok)
	}
	if _, ok := tr.fLobby.CoveringNode("mars/base"); ok {
		t.Fatal("phantom coverage")
	}
	if len(tr.fLobby.Names()) != 2 {
		t.Fatalf("names = %v", tr.fLobby.Names())
	}
}

func TestLocalQueryStaysLocal(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	caa := entity.NewCAA("l10-app", nil, tr.clk)
	if err := tr.l10.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	q.Where.Explicit = location.AtPath("campus/lt/l10")
	res, err := tr.fL10.Submit(q, caa)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configuration.IsNil() {
		t.Fatal("no configuration")
	}
}

func TestForwardedQueryCAPAHop(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	waitFor(t, func() bool {
		_, ok := tr.fLobby.CoveringNode("campus/lt/l10")
		return ok
	})

	// Bob's CAPA is registered in the LOBBY range but queries about L10.01:
	// the lobby CS must forward to the Level Ten CS (Section 5).
	caa := entity.NewCAA("capa", nil, tr.clk)
	if err := tr.lobby.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	q.Where.Explicit = location.AtPath("campus/lt/l10")
	res, err := tr.fLobby.Submit(q, caa)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configuration.IsNil() {
		t.Fatal("remote execution did not build a configuration")
	}
	// The configuration lives in the L10 range.
	if len(tr.l10.Runtime().Active()) != 1 {
		t.Fatal("configuration not active in target range")
	}

	// A sighting in L10 flows back across the SCINET to the lobby CAA.
	bob := guid.New(guid.KindPerson)
	if err := tr.door.Sight(bob, "l10.01"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return caa.PendingEvents() >= 1 })
	evs := caa.TakeEvents()
	if evs[0].Type != ctxtype.LocationPosition || evs[0].Subject != bob {
		t.Fatalf("routed event = %+v", evs[0])
	}
}

func TestForwardedQueryErrorPropagates(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	waitFor(t, func() bool {
		_, ok := tr.fLobby.CoveringNode("campus/lt/l10")
		return ok
	})
	caa := entity.NewCAA("capa", nil, tr.clk)
	if err := tr.lobby.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	// Nobody provides printer.queue in L10.
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.PrinterQueue}, query.ModeSubscribe)
	q.Where.Explicit = location.AtPath("campus/lt/l10")
	if _, err := tr.fLobby.Submit(q, caa); err == nil {
		t.Fatal("unsatisfiable forwarded query succeeded")
	}
}

func TestQueryWithoutWhereExecutesLocally(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	caa := entity.NewCAA("app", nil, tr.clk)
	if err := tr.lobby.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	// The lobby has no position providers, so an unscoped query fails
	// locally (it must NOT be silently forwarded).
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	if _, err := tr.fLobby.Submit(q, caa); err == nil {
		t.Fatal("unscoped query forwarded remotely")
	}
}

func TestThreeRangeScaleOutCoverage(t *testing.T) {
	clk := clock.NewManual(epoch)
	net := transport.NewMemory(transport.MemoryConfig{Clock: clk})
	defer net.Close()
	var fabrics []*Fabric
	for i := 0; i < 5; i++ {
		rng := server.New(server.Config{
			Name:     fmt.Sprintf("r%d", i),
			Clock:    clk,
			Coverage: location.Path(fmt.Sprintf("campus/b%d", i)),
		})
		f, err := NewFabric(rng, net, clk)
		if err != nil {
			t.Fatal(err)
		}
		if len(fabrics) > 0 {
			if err := f.Join(fabrics[0].NodeID()); err != nil {
				t.Fatal(err)
			}
		}
		fabrics = append(fabrics, f)
	}
	defer func() {
		for _, f := range fabrics {
			_ = f.Close()
			f.Range().Close()
		}
	}()
	// Every fabric eventually knows every coverage.
	waitFor(t, func() bool {
		for _, f := range fabrics {
			if len(f.Coverage()) != len(fabrics) {
				return false
			}
		}
		return true
	})
	// Each area maps to its own range from any vantage point.
	for i, want := range fabrics {
		p := location.Path(fmt.Sprintf("campus/b%d/room", i))
		for _, from := range fabrics {
			got, ok := from.CoveringNode(p)
			if !ok || got != want.NodeID() {
				t.Fatalf("coverage of %s from %s wrong", p, from.Range().Name())
			}
		}
	}
}
