package scinet

// Mixed-codec fleet interop tests for the zero-copy wire path (PR 7):
// fabrics whose endpoints are pinned to the legacy JSON codec (the
// in-process stand-in for a pre-binary peer) must keep exchanging
// interests, fan-out event batches, relays and routed-query results with
// fabrics riding native batches, with exactly-once delivery intact.

import (
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/wire"
)

// TestMixedCodecFleetFanOut: a three-range fleet where C's endpoint is
// pinned to the legacy JSON wire path while A and B ride native batches.
// A's publish reaches both subscribers exactly once — B via the zero-copy
// batch, C via the overlay fold back to legacy per-event frames — and
// nothing echoes into A.
func TestMixedCodecFleetFanOut(t *testing.T) {
	fn := newFanNet(t, 3, 8)
	defer fn.close()
	fA, fB, fC := fn.fabrics[0], fn.fabrics[1], fn.fabrics[2]
	fn.net.ConfigureCodec(fC.NodeID(), wire.CodecJSON)
	waitCoverage(t, fn)

	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	bRecv, cRecv := newCounter(), newCounter()
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, bRecv.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := fC.SubscribeRemote(guid.New(guid.KindApplication), flt, cRecv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return fA.knowsInterest(fB.NodeID()) && fA.knowsInterest(fC.NodeID()) && fA.hasTap()
	})

	const n = 16
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return bRecv.total() >= n && cRecv.total() >= n })
	time.Sleep(20 * time.Millisecond)
	if !bRecv.exactlyOnce(n) {
		t.Fatalf("native peer deliveries not exactly-once: %d events, %d deliveries",
			len(bRecv.seen), bRecv.total())
	}
	if !cRecv.exactlyOnce(n) {
		t.Fatalf("legacy peer deliveries not exactly-once: %d events, %d deliveries",
			len(cRecv.seen), cRecv.total())
	}
	if got := fA.BatchesIngested.Value(); got != 0 {
		t.Fatalf("A ingested %d of its own batches", got)
	}
}

// TestMixedCodecRelayThroughLegacyHop: A does not know C's interest; the
// relay in the middle (B) is a legacy JSON-only peer. A's native batch
// materializes on the hop into B, B re-forwards it as legacy frames, and
// the native fabric C still ingests every event exactly once.
func TestMixedCodecRelayThroughLegacyHop(t *testing.T) {
	fn := newFanNet(t, 3, 8)
	defer fn.close()
	fA, fB, fC := fn.fabrics[0], fn.fabrics[1], fn.fabrics[2]
	fn.net.ConfigureCodec(fB.NodeID(), wire.CodecJSON)
	waitCoverage(t, fn)

	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	bRecv := newCounter()
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, bRecv.handle); err != nil {
		t.Fatal(err)
	}
	cRecv := newCounter()
	if _, err := fC.SubscribeRemote(guid.New(guid.KindApplication), flt, cRecv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return fA.knowsInterest(fB.NodeID()) && fA.knowsInterest(fC.NodeID()) &&
			fB.knowsInterest(fC.NodeID()) && fA.hasTap()
	})
	// Partial knowledge: A never learned of C's subscription, so C is only
	// reachable through B's relay. Re-gossiped interest records may still be
	// in flight, so delete until the entry stays gone.
	for settled := 0; settled < 25; {
		fA.mu.Lock()
		_, present := fA.interests[fC.NodeID()]
		if present {
			delete(fA.interests, fC.NodeID())
			fA.refreshInterestSnapLocked()
		}
		fA.mu.Unlock()
		if present {
			settled = 0
		} else {
			settled++
		}
		time.Sleep(time.Millisecond)
	}

	const n = 8
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return cRecv.total() >= n && bRecv.total() >= n })
	time.Sleep(20 * time.Millisecond)
	if !cRecv.exactlyOnce(n) {
		t.Fatalf("C deliveries via legacy relay not exactly-once: %d events, %d deliveries",
			len(cRecv.seen), cRecv.total())
	}
	if got := fB.BatchesRelayed.Value(); got == 0 {
		t.Fatal("legacy B never relayed: C cannot have been reached via B")
	}
	if got := fA.BatchesIngested.Value(); got != 0 {
		t.Fatalf("A ingested %d batches of its own events", got)
	}
}

// TestMixedCodecRoutedQueryResults: routed-query result batches ship
// natively from the serving fabric and materialize on the hop into a
// legacy JSON-only consumer, which still consumes every result and answers
// with the coalesced credit report.
func TestMixedCodecRoutedQueryResults(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	fn.net.ConfigureCodec(fB.NodeID(), wire.CodecJSON)
	waitCoverage(t, fn)

	// B holds a waiting consumer for a routed query it submitted to A.
	qid := guid.New(guid.KindQuery)
	recv := newCounter()
	sink := entity.NewCAA("sink", recv.handle, fn.clk)
	fB.mu.Lock()
	fB.consumers[qid] = &outQuery{caa: sink, target: fA.NodeID()}
	fB.mu.Unlock()

	acksBase := fB.AcksSent.Value()
	const n = 8
	events := makeEvents(n, fn.clk)
	for i := range events {
		events[i].Range = fn.ranges[0].ID()
	}
	// The serving side ships results through the native batch path; the
	// transport materializes them for B's legacy endpoint.
	fA.sendQueryBatch(fB.NodeID(), qid, events)
	waitFor(t, func() bool { return recv.total() >= n })
	if !recv.exactlyOnce(n) {
		t.Fatalf("legacy consumer results not exactly-once: %d events, %d deliveries",
			len(recv.seen), recv.total())
	}
	waitFor(t, func() bool { return fB.AcksSent.Value() > acksBase })
}
