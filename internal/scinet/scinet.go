// Package scinet binds Ranges into the SCINET: the upper layer of the SCI
// architecture (paper, Fig 1), "a network overlay of partially connected
// nodes ... concerned with managing interactions that take place between
// two or more ranges in order to provide appropriate contextual
// information".
//
// Each Range's Context Server gets a Fabric: an overlay node plus the
// inter-range protocol. Ranges announce the hierarchical area they cover
// ("campus/lt/l10"); a query whose Where clause names an area covered by
// another Range is forwarded to that Range's Context Server — exactly the
// CAPA scenario's hop from the lift-lobby Range to the Level Ten Range —
// and the resulting context events are routed back to the querying
// application through the overlay.
package scinet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/overlay"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/server"
	"sci/internal/transport"
)

// App kinds for overlay payloads.
const (
	appCoverage    = "scinet.coverage"
	appQuery       = "scinet.query"
	appQueryResult = "scinet.query_result"
	appEvent       = "scinet.event"
)

type coverageMsg struct {
	Origin   guid.GUID     `json:"origin"` // fabric node id
	Coverage location.Path `json:"coverage"`
	Name     string        `json:"name"`
	// Echo requests the receiver to send its own coverage back (anti-
	// entropy on join).
	Echo bool `json:"echo,omitempty"`
}

type queryMsg struct {
	Origin  guid.GUID `json:"origin"` // fabric node id to reply to
	QueryID guid.GUID `json:"query_id"`
	XML     []byte    `json:"xml"`
}

type queryResultMsg struct {
	QueryID       guid.GUID `json:"query_id"`
	Deferred      bool      `json:"deferred,omitempty"`
	Configuration guid.GUID `json:"configuration,omitzero"`
	Provider      guid.GUID `json:"provider,omitzero"`
	Error         string    `json:"error,omitempty"`
}

type eventMsg struct {
	QueryID guid.GUID   `json:"query_id"`
	Event   event.Event `json:"event"`
}

// Result mirrors the answer to a forwarded subscription query.
type Result struct {
	QueryID       guid.GUID
	Deferred      bool
	Configuration guid.GUID
	Provider      guid.GUID
}

// Errors.
var (
	ErrNoCoveringRange = errors.New("scinet: no range covers the queried area")
	ErrTimeout         = errors.New("scinet: request timed out")
)

// RequestTimeout bounds forwarded-query round trips.
const RequestTimeout = 5 * time.Second

// Fabric is one Range's presence in the SCINET.
type Fabric struct {
	rng  *server.Range
	node *overlay.Node
	clk  clock.Clock

	mu        sync.Mutex
	coverage  map[guid.GUID]coverageMsg // fabric node → its coverage
	waiters   map[guid.GUID]chan queryResultMsg
	consumers map[guid.GUID]*entity.CAA // queryID → local CAA receiving routed events
	remote    map[guid.GUID]guid.GUID   // queryID → origin fabric (remote side)
	closed    bool
}

// NewFabric attaches a Range to the SCINET over net. The fabric's overlay
// node has its own GUID (the Range's transport host, if any, keeps the CS
// GUID).
func NewFabric(rng *server.Range, net transport.Network, clk clock.Clock) (*Fabric, error) {
	if clk == nil {
		clk = clock.Real()
	}
	f := &Fabric{
		rng:       rng,
		clk:       clk,
		coverage:  make(map[guid.GUID]coverageMsg),
		waiters:   make(map[guid.GUID]chan queryResultMsg),
		consumers: make(map[guid.GUID]*entity.CAA),
		remote:    make(map[guid.GUID]guid.GUID),
	}
	node, err := overlay.NewNode(overlay.Config{
		Network: net,
		Clock:   clk,
		Deliver: f.deliver,
	})
	if err != nil {
		return nil, err
	}
	f.node = node
	f.coverage[node.ID()] = coverageMsg{
		Origin:   node.ID(),
		Coverage: rng.Coverage(),
		Name:     rng.Name(),
	}
	return f, nil
}

// NodeID returns the fabric's overlay node id.
func (f *Fabric) NodeID() guid.GUID { return f.node.ID() }

// Range returns the attached Range.
func (f *Fabric) Range() *server.Range { return f.rng }

// Join enters the SCINET via a bootstrap fabric node, then announces this
// Range's coverage to every known node (requesting echoes, so the joiner
// also learns the existing coverage map).
func (f *Fabric) Join(bootstrap guid.GUID) error {
	if err := f.node.Join(bootstrap); err != nil {
		return err
	}
	f.AnnounceCoverage(true)
	return nil
}

// AnnounceCoverage gossips this Range's coverage to all known overlay
// nodes.
func (f *Fabric) AnnounceCoverage(echo bool) {
	msg := coverageMsg{
		Origin:   f.node.ID(),
		Coverage: f.rng.Coverage(),
		Name:     f.rng.Name(),
		Echo:     echo,
	}
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	for _, peer := range f.node.Known() {
		_ = f.node.Route(peer, appCoverage, payload)
	}
}

// Coverage returns the known coverage table: fabric node id → covered path,
// sorted by node id.
func (f *Fabric) Coverage() map[guid.GUID]location.Path {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[guid.GUID]location.Path, len(f.coverage))
	for id, c := range f.coverage {
		out[id] = c.Coverage
	}
	return out
}

// CoveringNode returns the fabric node whose announced coverage most
// specifically contains the path.
func (f *Fabric) CoveringNode(p location.Path) (guid.GUID, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best guid.GUID
	bestDepth := -1
	ids := make([]guid.GUID, 0, len(f.coverage))
	for id := range f.coverage {
		ids = append(ids, id)
	}
	guid.Sort(ids) // deterministic tie-break
	for _, id := range ids {
		c := f.coverage[id]
		if c.Coverage == "" {
			continue
		}
		if c.Coverage.Contains(p) && c.Coverage.Depth() > bestDepth {
			best, bestDepth = id, c.Coverage.Depth()
		}
	}
	return best, bestDepth >= 0
}

// Submit routes a query to the Range covering its Where clause. Queries
// whose area this Range covers (or with no explicit area) execute locally.
// For remote subscription queries, owner receives the routed result events.
func (f *Fabric) Submit(q query.Query, owner *entity.CAA) (*Result, error) {
	target, remote := f.routeTarget(q)
	if !remote {
		res, err := f.rng.Submit(q)
		if err != nil {
			return nil, err
		}
		return &Result{
			QueryID:       q.ID,
			Deferred:      res.Deferred,
			Configuration: res.Configuration,
			Provider:      res.Provider,
		}, nil
	}

	xmlData, err := q.Encode()
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(queryMsg{
		Origin:  f.node.ID(),
		QueryID: q.ID,
		XML:     xmlData,
	})
	if err != nil {
		return nil, err
	}

	ch := make(chan queryResultMsg, 1)
	f.mu.Lock()
	f.waiters[q.ID] = ch
	if owner != nil {
		f.consumers[q.ID] = owner
	}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.waiters, q.ID)
		f.mu.Unlock()
	}()

	if err := f.node.Route(target, appQuery, payload); err != nil {
		return nil, err
	}
	select {
	case res := <-ch:
		if res.Error != "" {
			f.mu.Lock()
			delete(f.consumers, q.ID)
			f.mu.Unlock()
			return nil, fmt.Errorf("scinet: remote range: %s", res.Error)
		}
		return &Result{
			QueryID:       q.ID,
			Deferred:      res.Deferred,
			Configuration: res.Configuration,
			Provider:      res.Provider,
		}, nil
	case <-time.After(RequestTimeout):
		return nil, ErrTimeout
	}
}

// routeTarget decides where a query executes: locally, or at the fabric
// node covering its explicit Where path.
func (f *Fabric) routeTarget(q query.Query) (guid.GUID, bool) {
	p := q.Where.Explicit.Path
	if p == "" {
		return guid.Nil, false
	}
	if own := f.rng.Coverage(); own != "" && own.Contains(p) {
		return guid.Nil, false
	}
	target, ok := f.CoveringNode(p)
	if !ok || target == f.node.ID() {
		return guid.Nil, false
	}
	return target, true
}

// deliver handles overlay payloads addressed to this fabric.
func (f *Fabric) deliver(d overlay.Delivery) {
	switch d.AppKind {
	case appCoverage:
		var msg coverageMsg
		if json.Unmarshal(d.Payload, &msg) != nil {
			return
		}
		f.mu.Lock()
		_, known := f.coverage[msg.Origin]
		f.coverage[msg.Origin] = coverageMsg{Origin: msg.Origin, Coverage: msg.Coverage, Name: msg.Name}
		f.mu.Unlock()
		if msg.Echo && !known {
			// Reply with our own coverage so the joiner learns us.
			reply := coverageMsg{
				Origin:   f.node.ID(),
				Coverage: f.rng.Coverage(),
				Name:     f.rng.Name(),
			}
			if payload, err := json.Marshal(reply); err == nil {
				_ = f.node.Route(msg.Origin, appCoverage, payload)
			}
		}
	case appQuery:
		f.handleRemoteQuery(d)
	case appQueryResult:
		var msg queryResultMsg
		if json.Unmarshal(d.Payload, &msg) != nil {
			return
		}
		f.mu.Lock()
		ch, ok := f.waiters[msg.QueryID]
		f.mu.Unlock()
		if ok {
			select {
			case ch <- msg:
			default:
			}
		}
	case appEvent:
		var msg eventMsg
		if json.Unmarshal(d.Payload, &msg) != nil {
			return
		}
		f.mu.Lock()
		caa, ok := f.consumers[msg.QueryID]
		f.mu.Unlock()
		if ok {
			caa.Consume(msg.Event)
		}
	}
}

// handleRemoteQuery executes a forwarded query against the local Range,
// registering a proxy CAA that routes result events back to the origin.
func (f *Fabric) handleRemoteQuery(d overlay.Delivery) {
	var msg queryMsg
	if json.Unmarshal(d.Payload, &msg) != nil {
		return
	}
	reply := queryResultMsg{QueryID: msg.QueryID}

	q, err := query.Decode(msg.XML)
	if err != nil {
		reply.Error = err.Error()
		f.sendResult(msg.Origin, reply)
		return
	}
	// Stand-in application for the remote owner: every event it consumes is
	// routed back through the overlay tagged with the query id.
	origin := msg.Origin
	qid := msg.QueryID
	proxy := entity.NewRemoteCAA(q.Owner, "scinet-proxy", func(e event.Event) {
		payload, err := json.Marshal(eventMsg{QueryID: qid, Event: e})
		if err != nil {
			return
		}
		_ = f.node.Route(origin, appEvent, payload)
	}, f.clk)
	if err := f.rng.AddApplication(proxy); err != nil && !errors.Is(err, server.ErrClosed) {
		// Already present (repeat query from the same owner) is fine.
		var dummy profile.Profile
		_ = dummy
	}
	f.mu.Lock()
	f.remote[qid] = origin
	f.mu.Unlock()

	res, err := f.rng.Submit(q)
	if err != nil {
		reply.Error = err.Error()
	} else {
		reply.Deferred = res.Deferred
		reply.Configuration = res.Configuration
		reply.Provider = res.Provider
	}
	f.sendResult(origin, reply)
}

func (f *Fabric) sendResult(to guid.GUID, msg queryResultMsg) {
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	_ = f.node.Route(to, appQueryResult, payload)
}

// Names returns the known range names keyed by fabric node, for
// diagnostics, sorted output.
func (f *Fabric) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.coverage))
	for _, c := range f.coverage {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// Close detaches the fabric's overlay node.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	return f.node.Close()
}
