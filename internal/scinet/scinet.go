// Package scinet binds Ranges into the SCINET: the upper layer of the SCI
// architecture (paper, Fig 1), "a network overlay of partially connected
// nodes ... concerned with managing interactions that take place between
// two or more ranges in order to provide appropriate contextual
// information".
//
// Each Range's Context Server gets a Fabric: an overlay node plus the
// inter-range protocol. Ranges announce the hierarchical area they cover
// ("campus/lt/l10"); a query whose Where clause names an area covered by
// another Range is forwarded to that Range's Context Server — exactly the
// CAPA scenario's hop from the lift-lobby Range to the Level Ten Range —
// and the resulting context events are routed back to the querying
// application through the overlay.
//
// # Cross-range fan-out
//
// Beyond per-query forwarding, fabrics exchange published events directly.
// A Range announces cross-range interests (event filters) to its peers;
// each peer taps its own Event Mediator through a batch subscription and
// forwards matching publishes as coalesced scinet.event_batch payloads —
// one overlay message per BatchMaxEvents events per interested peer, not
// one per event. The receiving fabric ingests a whole batch through
// Range.PublishAll, so it enters the batched dispatch path, and re-forwards
// it to interested peers the sender did not know about.
//
// Loop suppression: every forwarded batch is stamped with the origin
// fabric's id, a batch id, and a hop set (Via) naming every fabric already
// covered — the origin plus all direct recipients, extended by each relay.
// A relay only forwards to interested peers outside the hop set; a batch
// whose origin is the receiving fabric (or whose events carry the local
// Range's stamp) is dropped as an echo; and a bounded per-fabric window of
// recently ingested batch ids suppresses the duplicates hop sets cannot
// (two relays covering the same gap in a sender's knowledge). An event
// published in Range A and relayed via B to C is therefore delivered
// exactly once and never returns to A, even on cyclic topologies.
//
// # Hierarchical interest routing
//
// Flat interest gossip costs O(fleet²) messages per interest change and
// O(fleet) interest state per fabric. Fleets beyond a few dozen fabrics
// attach to a super-peer hierarchy (SetHierarchy, typically planned with
// overlay.PlanTree): a leaf announces its interests only to its
// super-peer, as a compact digest (coarse ctxtype prefixes plus a Bloom
// filter — wire.Digest) rather than as filters; a super-peer aggregates
// its children's digests with its own interests and announces the summary
// upward and level-wise to its peer super-peers, and sends each child a
// downward digest of the rest of the fleet. Event batches follow the
// links whose digest admits them. Digests only over-approximate —
// coarsening, Bloom collisions and prefix overflow all widen, never
// narrow — so routing tolerates false positives (a batch that crosses a
// hop for nobody is counted as spillover and dropped there) and never
// loses a delivery to a false negative. Digest updates are rate-limited
// per link by a flow.UpdateCoalescer, suppressed when unchanged, and
// generation-stamped against reordering; staleness (an unknown digest)
// admits everything. The exactly-once machinery above — hop sets,
// batch-id dedup, echo drops — applies unchanged, and every hierarchy hop
// keeps the same per-link coalescing, credit acks and relay shedding as a
// flat link. See hierarchy.go.
package scinet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mediator"
	"sci/internal/metrics"
	"sci/internal/overlay"
	"sci/internal/query"
	"sci/internal/server"
	"sci/internal/transport"
	"sci/internal/wire"
)

// init registers the legacy fold for scinet.event_batch payloads: when a
// routed native batch must leave on a JSON-only hop, the overlay hands the
// batch's per-event frames back here to be spliced into the eventBatchMsg a
// legacy fabric expects. The wire batch credit is ignored by design —
// scinet flow credit rides separate event_batch_ack messages, never
// piggybacked batch credit.
func init() {
	overlay.RegisterAppBatchFolder(appEventBatch,
		func(payload json.RawMessage, frames []json.RawMessage, _ *wire.BatchCredit) (json.RawMessage, error) {
			var msg eventBatchMsg
			if err := json.Unmarshal(payload, &msg); err != nil {
				return nil, err
			}
			msg.Events = frames
			return json.Marshal(msg)
		})
}

// App kinds for overlay payloads.
const (
	appCoverage    = "scinet.coverage"
	appQuery       = "scinet.query"
	appQueryResult = "scinet.query_result"
	// appCancel withdraws a forwarded query (the origin timed out or no
	// longer wants it), so the serving fabric releases its record, proxy
	// and configuration instead of streaming to nobody.
	appCancel = "scinet.cancel"
	appEvent  = "scinet.event"
	// appEventBatch carries a coalesced run of events between fabrics: the
	// cross-range fan-out path and the batched replacement for per-event
	// appEvent frames on the routed-query path.
	appEventBatch = "scinet.event_batch"
	// appEventBatchAck is the scinet.event_batch reply hint: the receiving
	// fabric reports its flow credit (cumulative dispatch drops) so the
	// sender's coalescer can throttle while the receiver is overloaded.
	// Fabrics that predate it neither send nor understand it — unknown app
	// kinds are ignored — so mixed fleets interoperate.
	appEventBatchAck = "scinet.event_batch_ack"
	// appInterest announces (and re-gossips) a fabric's cross-range event
	// interests.
	appInterest = "scinet.interest"
	// appLeave announces a clean fabric departure so peers tear down
	// per-peer state (proxies, interests, coalescers) immediately.
	appLeave = "scinet.leave"
	// appDigest and appInterestSync belong to the hierarchical interest
	// layer; see hierarchy.go.
	// appStats / appStatsResult carry the fleet-wide dispatch.stats rollup.
	appStats       = "scinet.stats"
	appStatsResult = "scinet.stats_result"
)

type coverageMsg struct {
	Origin   guid.GUID     `json:"origin"` // fabric node id
	Coverage location.Path `json:"coverage"`
	Name     string        `json:"name"`
	// Echo requests the receiver to send its own coverage back (anti-
	// entropy on join).
	Echo bool `json:"echo,omitempty"`
}

type queryMsg struct {
	Origin  guid.GUID `json:"origin"` // fabric node id to reply to
	QueryID guid.GUID `json:"query_id"`
	XML     []byte    `json:"xml"`
}

type queryResultMsg struct {
	QueryID       guid.GUID `json:"query_id"`
	Deferred      bool      `json:"deferred,omitempty"`
	Configuration guid.GUID `json:"configuration,omitzero"`
	Provider      guid.GUID `json:"provider,omitzero"`
	Error         string    `json:"error,omitempty"`
}

// eventMsg is the legacy single-event frame, kept so fabrics that predate
// scinet.event_batch interoperate (it is still emitted when batching is
// disabled, and always accepted).
type eventMsg struct {
	QueryID guid.GUID   `json:"query_id"`
	Event   event.Event `json:"event"`
}

// eventBatchMsg is a coalesced run of events crossing the overlay. With
// QueryID set it carries routed results for one forwarded query; otherwise
// it is a cross-range fan-out batch stamped for loop suppression: Origin is
// the publishing fabric and Via names every fabric already covered (origin,
// direct recipients, and relays' additions), so no fabric ingests the run
// twice and it never echoes back to its origin.
type eventBatchMsg struct {
	Origin  guid.GUID `json:"origin"`
	QueryID guid.GUID `json:"query_id,omitzero"`
	// BatchID names this batch for duplicate suppression: relays preserve
	// it, and a receiver ingests each id at most once. The hop set alone
	// cannot cover every race — two relays that each know an interested
	// fabric absent from Via would both forward to it.
	BatchID guid.GUID         `json:"batch_id,omitzero"`
	Via     []guid.GUID       `json:"via,omitempty"`
	Events  []json.RawMessage `json:"events"`
}

// interestMsg announces one fabric's cross-range interests. Receivers
// update their table entry for Owner and re-gossip changes, so records
// cross partially connected topologies.
//
// Two forms share the message. The legacy wholesale form (Gen zero)
// carries the owner's full set in Filters and replaces the entry. The
// generation-stamped form orders announcements per owner: Full carries
// the complete set (sent on first contact, on resync, and whenever the
// receiver's delta chain broke), while Add/Del carry only the change
// since Prev — a receiver applies a delta only when Prev equals the
// generation it holds, and otherwise asks the owner for a full
// re-announce (appInterestSync). Stale generations are discarded, so
// reordered gossip cannot roll an entry back.
type interestMsg struct {
	Owner   guid.GUID      `json:"owner"`
	Filters []event.Filter `json:"filters,omitempty"`
	// Remove withdraws all of Owner's interests (departure, or a Full
	// announcement of an empty set).
	Remove bool `json:"remove,omitempty"`
	// Gen orders announcements per owner (zero = legacy wholesale form).
	Gen uint64 `json:"gen,omitempty"`
	// Prev is the generation a delta applies on top of.
	Prev uint64 `json:"prev,omitempty"`
	// Full marks a complete-set announcement (Filters is authoritative).
	Full bool `json:"full,omitempty"`
	// Add/Del are the delta form's changes since Prev.
	Add []event.Filter `json:"add,omitempty"`
	Del []event.Filter `json:"del,omitempty"`
}

// eventBatchAckMsg is a receiver's flow-credit report for event_batch
// traffic: Dropped is the cumulative count of dispatch drops *attributed to
// the acked sender's traffic* (the bus's per-publisher attribution — never
// the Range-wide total, which would blame one link for another's flood)
// and QueueFree its remaining queue capacity (negative = unknown).
//
// Downstream/DownstreamBy make credit transitive across relays.
// DownstreamBy carries per-origin *accounts*: cumulative drop figures keyed
// by the fabric that observed them at its own receivers, merged by max at
// every hop. Max-merging is idempotent, so a figure that travels a cycle —
// or returns to the fabric that first reported it — converges instead of
// being re-counted as fresh congestion on every lap; the sender also
// excludes accounts keyed by the recipient, so nobody is told about its
// own receivers' drops twice. Downstream is the sum of DownstreamBy (the
// back-compat scalar a peer that predates the map still understands —
// summed figures are monotone per sender because the excluded key set per
// recipient is fixed). Peers that predate both fields simply omit them
// (read as 0). QueryAck marks a cumulative routed-query credit frame that
// applies to every per-(peer, query) coalescer the serving fabric keeps
// toward the sender — all of them track the same per-peer drop figure, so
// one frame per peer per window replaces a frame per result batch; those
// acks carry no downstream figures at all. QueryID is the legacy
// per-query form retained for peers that predate QueryAck.
type eventBatchAckMsg struct {
	Origin       guid.GUID            `json:"origin"`
	QueryID      guid.GUID            `json:"query_id,omitzero"`
	QueryAck     bool                 `json:"query_ack,omitempty"`
	Events       int                  `json:"events,omitempty"`
	Dropped      uint64               `json:"dropped"`
	Downstream   uint64               `json:"downstream,omitempty"`
	DownstreamBy map[guid.GUID]uint64 `json:"downstream_by,omitempty"`
	QueueFree    int                  `json:"queue_free"`
}

type leaveMsg struct {
	Origin guid.GUID `json:"origin"`
}

type cancelMsg struct {
	QueryID guid.GUID `json:"query_id"`
	Origin  guid.GUID `json:"origin"` // the fabric withdrawing its query
}

type statsQueryMsg struct {
	Origin guid.GUID `json:"origin"`
	Corr   guid.GUID `json:"corr"`
}

type statsResultMsg struct {
	Corr  guid.GUID          `json:"corr"`
	Name  string             `json:"name"`
	Stats map[string]float64 `json:"stats"`
}

// Result mirrors the answer to a forwarded subscription query.
type Result struct {
	QueryID       guid.GUID
	Deferred      bool
	Configuration guid.GUID
	Provider      guid.GUID
}

// RangeStats is one Range's dispatch.stats snapshot inside a fleet rollup.
type RangeStats struct {
	// Node is the answering fabric's overlay node id.
	Node guid.GUID
	// Name is the Range's label.
	Name string
	// Stats is the Range's dispatch.stats map (see server.Range.StatsMap).
	Stats map[string]float64
}

// FleetStats aggregates dispatch.stats across every Range of a SCINET that
// answered within the collection window.
type FleetStats struct {
	// Ranges counts the Ranges included (answering peers plus the caller).
	Ranges int
	// Totals sums each counter across the fleet; index_hit_ratio is
	// recomputed from the summed index_hits / residual_scanned rather than
	// summed (a ratio of sums, not a sum of ratios).
	Totals map[string]float64
	// PerRange holds each contributing Range's snapshot, sorted by name.
	PerRange []RangeStats
}

// Errors.
var (
	ErrNoCoveringRange = errors.New("scinet: no range covers the queried area")
	ErrTimeout         = errors.New("scinet: request timed out")
	ErrClosed          = errors.New("scinet: fabric closed")
)

// RequestTimeout bounds forwarded-query round trips.
const RequestTimeout = 5 * time.Second

// tapQueueLen is the queue capacity of the fabric's mediator tap and of
// SubscribeRemote subscriptions: generous, because a tap absorbs whole
// publish bursts for forwarding.
const tapQueueLen = 4096

// queueKey identifies one outbound coalescer: the destination fabric and,
// for routed-query traffic, the query whose results it carries.
type queueKey struct {
	peer guid.GUID
	qid  guid.GUID
}

// outQuery is the origin side of one forwarded query: the consumer of the
// routed result events and the fabric serving the query (for teardown when
// that peer departs).
type outQuery struct {
	caa    *entity.CAA
	target guid.GUID
}

// servedQuery is the serving side of one forwarded query.
type servedQuery struct {
	origin guid.GUID // origin fabric node
	owner  guid.GUID // remote CAA the proxy stands in for
	cfg    guid.GUID // instantiated configuration (nil while deferred)
}

// Fabric is one Range's presence in the SCINET.
type Fabric struct {
	rng  *server.Range
	node *overlay.Node
	clk  clock.Clock

	maxBatch  int
	maxDelay  time.Duration
	adaptive  flow.Adaptive
	ackWindow time.Duration

	// Flow-layer callbacks (Coalescer send paths) run while the coalescer
	// holds its flush lock and may take f.mu downstream, so no flow entry
	// point (Flush, Touch, Stop, Discard) may ever be called with f.mu
	// held — collect under the lock, call after unlocking.
	//
	//lint:lockorder flow.Coalescer.sendMu < scinet.Fabric.mu send callbacks run under the flush lock and take f.mu; flushing under f.mu inverts it
	mu        sync.Mutex
	coverage  map[guid.GUID]coverageMsg         // guarded by mu; fabric node → its coverage
	waiters   map[guid.GUID]chan queryResultMsg // guarded by mu
	consumers map[guid.GUID]*outQuery           // guarded by mu; queryID → origin-side consumer
	served    map[guid.GUID]*servedQuery        // guarded by mu; queryID → serving-side record
	ownerRefs map[guid.GUID]int                 // guarded by mu; remote owner → live served queries
	interests map[guid.GUID][]event.Filter      // guarded by mu; fabric node → its announced interests
	local     []localInterest                   // guarded by mu; this fabric's own interests, refcounted
	taps      map[ctxtype.Type]guid.GUID        // guarded by mu; mediator taps by tap type (Wildcard key = residual tap)
	queues    map[queueKey]*flow.Coalescer      // guarded by mu; outbound coalescers, routed-query traffic
	fan       *flow.Coalescer                   // outbound coalescer, fan-out traffic
	peerDrops map[guid.GUID]uint64              // guarded by mu; last combined (drops+downstream) report per peer (fan-out acks)
	downObs   map[guid.GUID]uint64              // guarded by mu; downstream accounts: observing fabric → max cumulative drops seen
	facks     map[guid.GUID]*flow.AckCoalescer  // guarded by mu; coalesced fan-path ack owed per peer
	qacks     map[guid.GUID]*flow.AckCoalescer  // guarded by mu; coalesced routed-query ack owed per peer
	relays    map[guid.GUID]*relayQueue         // guarded by mu; bounded relay backlog per throttled peer
	statsWait map[guid.GUID]chan statsResultMsg // guarded by mu
	seen      guid.Set                          // guarded by mu; recently ingested batch ids (duplicate window)
	seenRing  []guid.GUID                       // guarded by mu; eviction order for seen, bounded at seenWindow
	seenPos   int                               // guarded by mu
	closed    bool                              // guarded by mu

	// Hierarchical interest routing state (hierarchy.go).
	hier         HierarchyConfig                     // guarded by mu
	hierSet      bool                                // guarded by mu; SetHierarchy was called
	hierOn       bool                                // guarded by mu; hierarchical routing latched active
	hierGen      uint64                              // guarded by mu; generation stamp of outgoing digests
	hierStatsOn  bool                                // guarded by mu; stats source registered
	childDigests map[guid.GUID]*wire.Digest          // guarded by mu; child → its subtree digest
	peerDigests  map[guid.GUID]*wire.Digest          // guarded by mu; peer super-peer → its subtree digest
	upDigest     *wire.Digest                        // guarded by mu; parent's downward rest-of-fleet digest
	digestGens   map[guid.GUID]uint64                // guarded by mu; last digest generation seen per announcer
	digestSent   map[guid.GUID]*wire.Digest          // guarded by mu; last digest shipped per link (suppression)
	digestCoal   map[guid.GUID]*flow.UpdateCoalescer // guarded by mu; per-link digest update pacing
	childFwd     map[guid.GUID]uint64                // guarded by mu; batches forwarded into each child subtree

	// Delta interest-announcement state.
	announceGen uint64               // guarded by mu; local interest-set generation
	sentGen     map[guid.GUID]uint64 // guarded by mu; last generation announced per peer
	deltaAware  map[guid.GUID]bool   // guarded by mu; peers known to speak the generation-stamped form
	interestGen map[guid.GUID]uint64 // guarded by mu; last generation applied per interest owner

	// interestSnap is the lock-free copy-on-write view of interests that
	// fanOut and relay match against; rebuilt under mu whenever the live
	// table changes.
	interestSnap atomic.Pointer[[]interestEntry]
	// hierSnap is the lock-free hierarchy routing view (nil until
	// SetHierarchy); rebuilt under mu whenever hierarchy state changes.
	hierSnap atomic.Pointer[hierView]

	// BatchesForwarded / EventsForwarded count the fan-out and routed-query
	// batches this fabric originated (one batch per overlay message per
	// peer) and the events they carried.
	BatchesForwarded metrics.Counter
	EventsForwarded  metrics.Counter
	// BatchesIngested / EventsIngested count cross-range batches accepted
	// into the local Range's dispatch path.
	BatchesIngested metrics.Counter
	EventsIngested  metrics.Counter
	// BatchesRelayed counts batches re-forwarded to interested peers the
	// sender's hop set did not cover.
	BatchesRelayed metrics.Counter
	// EchoesDropped counts batches (or events within them) suppressed
	// because they would have returned to their origin.
	EchoesDropped metrics.Counter
	// DuplicatesDropped counts batches whose id was already ingested — two
	// relays covering the same gap in a sender's hop set.
	DuplicatesDropped metrics.Counter
	// BatchesRelayShed counts relayed batches evicted from a throttled
	// peer's bounded relay backlog instead of being forwarded at line rate.
	BatchesRelayShed metrics.Counter
	// AcksSent counts flow-credit ack frames this fabric put on the wire
	// (fan-path, routed-query, and legacy per-batch forms alike).
	AcksSent metrics.Counter
	// SpilloverDropped counts hierarchy-routed batches that crossed this
	// hop for nobody — digest false positives (matched no local filter and
	// relayed nowhere). The tolerated cost of summarized routing.
	SpilloverDropped metrics.Counter
	// DigestUpdatesSent counts hierarchy digest announcements actually put
	// on the wire (coalesced and unchanged-suppressed updates excluded).
	DigestUpdatesSent metrics.Counter
}

// seenWindow bounds the duplicate-suppression window: how many recently
// ingested batch ids a fabric remembers.
const seenWindow = 4096

// localInterest is one of this fabric's own announced interests. Two
// SubscribeRemote calls sharing a filter share one entry: the refcount
// makes the first withdrawal survive the second subscription, so interest
// lifetime follows subscription cancellation exactly.
type localInterest struct {
	flt  event.Filter
	refs int
}

// NewFabric attaches a Range to the SCINET over net. The fabric's overlay
// node has its own GUID (the Range's transport host, if any, keeps the CS
// GUID). The Range's BatchMaxEvents/BatchMaxDelay govern the fabric's
// outbound coalescers exactly as they govern the Range Service's.
func NewFabric(rng *server.Range, net transport.Network, clk clock.Clock) (*Fabric, error) {
	if clk == nil {
		clk = clock.Real()
	}
	f := &Fabric{
		rng:       rng,
		clk:       clk,
		maxBatch:  rng.BatchMaxEvents(),
		maxDelay:  rng.BatchMaxDelay(),
		adaptive:  rng.AdaptiveBatching(),
		ackWindow: rng.BatchMaxDelay(),
		coverage:  make(map[guid.GUID]coverageMsg),
		waiters:   make(map[guid.GUID]chan queryResultMsg),
		consumers: make(map[guid.GUID]*outQuery),
		served:    make(map[guid.GUID]*servedQuery),
		ownerRefs: make(map[guid.GUID]int),
		interests: make(map[guid.GUID][]event.Filter),
		taps:      make(map[ctxtype.Type]guid.GUID),
		queues:    make(map[queueKey]*flow.Coalescer),
		peerDrops: make(map[guid.GUID]uint64),
		downObs:   make(map[guid.GUID]uint64),
		facks:     make(map[guid.GUID]*flow.AckCoalescer),
		qacks:     make(map[guid.GUID]*flow.AckCoalescer),
		relays:    make(map[guid.GUID]*relayQueue),
		statsWait: make(map[guid.GUID]chan statsResultMsg),
		seen:      guid.NewSet(),

		childDigests: make(map[guid.GUID]*wire.Digest),
		peerDigests:  make(map[guid.GUID]*wire.Digest),
		digestGens:   make(map[guid.GUID]uint64),
		digestSent:   make(map[guid.GUID]*wire.Digest),
		digestCoal:   make(map[guid.GUID]*flow.UpdateCoalescer),
		childFwd:     make(map[guid.GUID]uint64),
		sentGen:      make(map[guid.GUID]uint64),
		deltaAware:   make(map[guid.GUID]bool),
		interestGen:  make(map[guid.GUID]uint64),
	}
	f.refreshInterestSnapLocked()
	if f.ackWindow <= 0 {
		f.ackWindow = server.DefaultBatchMaxDelay
	}
	node, err := overlay.NewNode(overlay.Config{
		Network: net,
		Clock:   clk,
		Deliver: f.deliver,
		Forgot:  f.peerGone,
	})
	if err != nil {
		return nil, err
	}
	f.node = node
	f.fan = flow.New(flow.Config{
		Clock:    clk,
		MaxBatch: f.maxBatch,
		MaxDelay: f.maxDelay,
		Adaptive: f.adaptive,
		Fair:     rng.FairFlush(),
		Stats:    rng.FlowStats(),
		Send:     f.fanOut,
	})
	f.coverage[node.ID()] = coverageMsg{
		Origin:   node.ID(),
		Coverage: rng.Coverage(),
		Name:     rng.Name(),
	}
	return f, nil
}

// NodeID returns the fabric's overlay node id.
func (f *Fabric) NodeID() guid.GUID { return f.node.ID() }

// FanoutPenalty reports the fan-out coalescer's current flush-rate penalty
// (1 = unthrottled) — a diagnostics window into how hard peer credit is
// braking this fabric's forwarding.
func (f *Fabric) FanoutPenalty() float64 { return f.fan.Penalty() }

// Range returns the attached Range.
func (f *Fabric) Range() *server.Range { return f.rng }

// Join enters the SCINET via a bootstrap fabric node, then announces this
// Range's coverage (and any cross-range interests) to every known node.
func (f *Fabric) Join(bootstrap guid.GUID) error {
	if err := f.node.Join(bootstrap); err != nil {
		return err
	}
	f.maybeActivateHierarchy()
	f.AnnounceCoverage(true)
	if f.hierarchyActive() {
		f.touchDigestAnnouncements()
	} else {
		f.announceInterests()
	}
	return nil
}

// AnnounceCoverage gossips this Range's coverage to all known overlay
// nodes.
func (f *Fabric) AnnounceCoverage(echo bool) {
	msg := coverageMsg{
		Origin:   f.node.ID(),
		Coverage: f.rng.Coverage(),
		Name:     f.rng.Name(),
		Echo:     echo,
	}
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	for _, peer := range f.node.Known() {
		_ = f.node.Route(peer, appCoverage, payload)
	}
}

// Coverage returns the known coverage table: fabric node id → covered path,
// sorted by node id.
func (f *Fabric) Coverage() map[guid.GUID]location.Path {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[guid.GUID]location.Path, len(f.coverage))
	for id, c := range f.coverage {
		out[id] = c.Coverage
	}
	return out
}

// CoveringNode returns the fabric node whose announced coverage most
// specifically contains the path.
func (f *Fabric) CoveringNode(p location.Path) (guid.GUID, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best guid.GUID
	bestDepth := -1
	ids := make([]guid.GUID, 0, len(f.coverage))
	for id := range f.coverage {
		ids = append(ids, id)
	}
	guid.Sort(ids) // deterministic tie-break
	for _, id := range ids {
		c := f.coverage[id]
		if c.Coverage == "" {
			continue
		}
		if c.Coverage.Contains(p) && c.Coverage.Depth() > bestDepth {
			best, bestDepth = id, c.Coverage.Depth()
		}
	}
	return best, bestDepth >= 0
}

// Submit routes a query to the Range covering its Where clause. Queries
// whose area this Range covers (or with no explicit area) execute locally.
// For remote subscription queries, owner receives the routed result events.
func (f *Fabric) Submit(q query.Query, owner *entity.CAA) (*Result, error) {
	target, remote := f.routeTarget(q)
	if !remote {
		res, err := f.rng.Submit(q)
		if err != nil {
			return nil, err
		}
		return &Result{
			QueryID:       q.ID,
			Deferred:      res.Deferred,
			Configuration: res.Configuration,
			Provider:      res.Provider,
		}, nil
	}

	xmlData, err := q.Encode()
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(queryMsg{
		Origin:  f.node.ID(),
		QueryID: q.ID,
		XML:     xmlData,
	})
	if err != nil {
		return nil, err
	}

	ch := make(chan queryResultMsg, 1)
	f.mu.Lock()
	f.waiters[q.ID] = ch
	if owner != nil {
		f.consumers[q.ID] = &outQuery{caa: owner, target: target}
	}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.waiters, q.ID)
		f.mu.Unlock()
	}()

	if err := f.node.Route(target, appQuery, payload); err != nil {
		f.dropConsumer(q.ID)
		return nil, err
	}
	select {
	case res := <-ch:
		if res.Error != "" {
			f.dropConsumer(q.ID)
			return nil, fmt.Errorf("scinet: remote range: %s", res.Error)
		}
		return &Result{
			QueryID:       q.ID,
			Deferred:      res.Deferred,
			Configuration: res.Configuration,
			Provider:      res.Provider,
		}, nil
	case <-f.clk.After(RequestTimeout):
		// The consumer entry must not outlive the failed round trip: an
		// abandoned entry would leak and keep routing stray events to an
		// application that was told its query failed. The serving side may
		// have succeeded (its reply merely late or lost), so withdraw the
		// query there too — otherwise it would keep a configuration, a
		// proxy CAA and a coalescer streaming events nobody receives.
		f.dropConsumer(q.ID)
		f.sendCancel(target, q.ID)
		return nil, ErrTimeout
	}
}

// sendCancel withdraws a forwarded query at its serving fabric.
func (f *Fabric) sendCancel(target, qid guid.GUID) {
	payload, err := json.Marshal(cancelMsg{QueryID: qid, Origin: f.node.ID()})
	if err != nil {
		return
	}
	_ = f.node.Route(target, appCancel, payload)
}

func (f *Fabric) dropConsumer(qid guid.GUID) {
	f.mu.Lock()
	delete(f.consumers, qid)
	f.mu.Unlock()
}

// routeTarget decides where a query executes: locally, or at the fabric
// node covering its explicit Where path.
func (f *Fabric) routeTarget(q query.Query) (guid.GUID, bool) {
	p := q.Where.Explicit.Path
	if p == "" {
		return guid.Nil, false
	}
	if own := f.rng.Coverage(); own != "" && own.Contains(p) {
		return guid.Nil, false
	}
	target, ok := f.CoveringNode(p)
	if !ok || target == f.node.ID() {
		return guid.Nil, false
	}
	return target, true
}

// deliver handles overlay payloads addressed to this fabric.
func (f *Fabric) deliver(d overlay.Delivery) {
	switch d.AppKind {
	case appCoverage:
		f.handleCoverage(d)
	case appQuery:
		f.handleRemoteQuery(d)
	case appQueryResult:
		var msg queryResultMsg
		if json.Unmarshal(d.Payload, &msg) != nil {
			return
		}
		f.mu.Lock()
		ch, ok := f.waiters[msg.QueryID]
		f.mu.Unlock()
		if ok {
			select {
			case ch <- msg:
			default:
			}
		} else if msg.Error == "" {
			// A success reply nobody is waiting for: the submitter already
			// timed out and gave up, so withdraw the query at the fabric
			// that just instantiated it.
			f.sendCancel(d.Origin, msg.QueryID)
		}
	case appCancel:
		var msg cancelMsg
		if json.Unmarshal(d.Payload, &msg) != nil {
			return
		}
		f.mu.Lock()
		sq, ok := f.served[msg.QueryID]
		f.mu.Unlock()
		// Only the query's own origin may withdraw it.
		if ok && sq.origin == msg.Origin {
			f.dropServed(msg.QueryID)
		}
	case appEvent:
		var msg eventMsg
		if json.Unmarshal(d.Payload, &msg) != nil {
			return
		}
		f.mu.Lock()
		oq, ok := f.consumers[msg.QueryID]
		f.mu.Unlock()
		if ok {
			oq.caa.Consume(msg.Event)
		}
	case appEventBatch:
		f.handleEventBatch(d)
	case appEventBatchAck:
		f.handleBatchAck(d)
	case appInterest:
		f.handleInterest(d)
	case appDigest:
		f.handleDigest(d)
	case appInterestSync:
		f.handleInterestSync(d)
	case appLeave:
		var msg leaveMsg
		if json.Unmarshal(d.Payload, &msg) != nil {
			return
		}
		f.peerGone(msg.Origin)
	case appStats:
		f.handleStats(d)
	case appStatsResult:
		var msg statsResultMsg
		if json.Unmarshal(d.Payload, &msg) != nil {
			return
		}
		f.mu.Lock()
		ch, ok := f.statsWait[msg.Corr]
		f.mu.Unlock()
		if ok {
			select {
			case ch <- msg:
			default:
			}
		}
	}
}

func (f *Fabric) handleCoverage(d overlay.Delivery) {
	var msg coverageMsg
	if json.Unmarshal(d.Payload, &msg) != nil {
		return
	}
	f.mu.Lock()
	_, known := f.coverage[msg.Origin]
	f.coverage[msg.Origin] = coverageMsg{Origin: msg.Origin, Coverage: msg.Coverage, Name: msg.Name}
	f.mu.Unlock()
	if !known {
		// The fleet grew: a configured hierarchy may now reach its minimum.
		f.maybeActivateHierarchy()
		// A newly learned fabric also needs our interests (a joiner's
		// interest announcements may have raced ahead of its coverage) —
		// flat announcements when flat, digest announcements when
		// hierarchical (unchanged summaries are suppressed at send time).
		f.announceInterestsTo(msg.Origin)
		if f.hierarchyActive() {
			f.refreshDigestLinks()
		}
	}
	if msg.Echo && !known {
		// Reply with our own coverage so the joiner learns us.
		reply := coverageMsg{
			Origin:   f.node.ID(),
			Coverage: f.rng.Coverage(),
			Name:     f.rng.Name(),
		}
		if payload, err := json.Marshal(reply); err == nil {
			_ = f.node.Route(msg.Origin, appCoverage, payload)
		}
	}
}

// handleRemoteQuery executes a forwarded query against the local Range,
// registering a proxy CAA that routes result events back to the origin
// through the per-peer outbound coalescer.
func (f *Fabric) handleRemoteQuery(d overlay.Delivery) {
	var msg queryMsg
	if json.Unmarshal(d.Payload, &msg) != nil {
		return
	}
	reply := queryResultMsg{QueryID: msg.QueryID}

	q, err := query.Decode(msg.XML)
	if err != nil {
		reply.Error = err.Error()
		f.sendResult(msg.Origin, reply)
		return
	}
	// Stand-in application for the remote owner: whole delivery runs it
	// consumes are coalesced and routed back through the overlay tagged
	// with the query id.
	origin := msg.Origin
	qid := msg.QueryID
	proxy := entity.NewRemoteBatchCAA(q.Owner, "scinet-proxy", func(events []event.Event) {
		f.sendQueryEvents(origin, qid, events)
	}, f.clk)
	if err := f.rng.AddApplication(proxy); err != nil {
		// A repeat query from an already-registered owner re-registers
		// silently (the Registrar renews, the profile overwrites), so any
		// error here is a real failure — range closed, rejected profile —
		// and must reach the origin instead of being swallowed: a Submit
		// against a dead registration could never deliver.
		reply.Error = err.Error()
		f.sendResult(origin, reply)
		return
	}
	f.mu.Lock()
	if f.closed {
		// Raced with Close after the proxy registered: undo the
		// registration (unless another served query still shares the owner)
		// so the closing fabric leaves no proxy behind in the Range.
		inUse := f.ownerRefs[q.Owner] > 0
		f.mu.Unlock()
		if !inUse {
			_ = f.rng.RemoveEntity(q.Owner)
		}
		reply.Error = ErrClosed.Error()
		f.sendResult(origin, reply)
		return
	}
	f.ownerRefs[q.Owner]++
	f.served[qid] = &servedQuery{origin: origin, owner: q.Owner}
	f.mu.Unlock()

	res, err := f.rng.Submit(q)
	if err != nil {
		reply.Error = err.Error()
		// The failed query must not leave its proxy behind: release the
		// serving-side record, which removes the proxy CAA when this was
		// the owner's last live query.
		f.dropServed(qid)
	} else {
		reply.Deferred = res.Deferred
		reply.Configuration = res.Configuration
		reply.Provider = res.Provider
		f.mu.Lock()
		sq, live := f.served[qid]
		if live {
			sq.cfg = res.Configuration
		}
		f.mu.Unlock()
		if !live && !res.Configuration.IsNil() {
			// The origin departed (or the fabric closed) while Submit was
			// instantiating: the served record — the only teardown handle —
			// is already gone, so the fresh configuration must die here or
			// it would run forever feeding a departed peer.
			_ = f.rng.Runtime().Teardown(res.Configuration)
		}
	}
	f.sendResult(origin, reply)
}

// dropServed releases one serving-side query record: its configuration is
// torn down, its outbound coalescer discarded, and — when this was the
// remote owner's last live query — the shared proxy CAA is removed from the
// Range so proxies never accumulate.
func (f *Fabric) dropServed(qid guid.GUID) {
	f.mu.Lock()
	sq, ok := f.served[qid]
	if !ok {
		f.mu.Unlock()
		return
	}
	delete(f.served, qid)
	f.ownerRefs[sq.owner]--
	last := f.ownerRefs[sq.owner] <= 0
	if last {
		delete(f.ownerRefs, sq.owner)
	}
	key := queueKey{peer: sq.origin, qid: qid}
	q := f.queues[key]
	delete(f.queues, key)
	f.mu.Unlock()

	if q != nil {
		q.Discard()
	}
	if !sq.cfg.IsNil() {
		_ = f.rng.Runtime().Teardown(sq.cfg)
	}
	if last {
		_ = f.rng.RemoveEntity(sq.owner)
	}
}

// ServedQueries returns the ids of forwarded queries this fabric currently
// serves, sorted (diagnostics and leak tests).
func (f *Fabric) ServedQueries() []guid.GUID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]guid.GUID, 0, len(f.served))
	for qid := range f.served {
		out = append(out, qid)
	}
	guid.Sort(out)
	return out
}

func (f *Fabric) sendResult(to guid.GUID, msg queryResultMsg) {
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	_ = f.node.Route(to, appQueryResult, payload)
}

// ----- cross-range fan-out -----

// AddInterest registers a cross-range interest: events matching flt that
// are published in sibling Ranges will be forwarded here in coalesced
// batches and ingested through the local Range's batched dispatch path.
// The interest is announced to every known fabric (and re-announced to
// fabrics learned later). Interests are refcounted by filter: a second
// AddInterest of the same filter bumps the count instead of duplicating
// the announcement, and only the matching number of RemoveInterest calls
// withdraws it.
func (f *Fabric) AddInterest(flt event.Filter) {
	f.mu.Lock()
	found := false
	for i := range f.local {
		if f.local[i].flt == flt {
			f.local[i].refs++
			found = true
			break
		}
	}
	var gen uint64
	hier := false
	if !found {
		f.local = append(f.local, localInterest{flt: flt, refs: 1})
		f.announceGen++
		gen = f.announceGen
		hier = f.hierOn
	}
	f.mu.Unlock()
	if !found {
		if hier {
			f.touchDigestAnnouncements()
		} else {
			f.announceChange(gen, []event.Filter{flt}, nil)
		}
	}
}

// RemoveInterest drops one reference to a previously added interest. The
// filter is withdrawn from peers only when its last reference goes — two
// SubscribeRemote calls sharing one filter survive the first withdrawal.
// Delta-aware peers get just the withdrawal; a withdrawal that empties the
// whole set makes peers drop this fabric's entry entirely.
func (f *Fabric) RemoveInterest(flt event.Filter) {
	f.mu.Lock()
	changed := false
	for i := range f.local {
		if f.local[i].flt == flt {
			f.local[i].refs--
			if f.local[i].refs <= 0 {
				f.local = append(f.local[:i], f.local[i+1:]...)
				changed = true
			}
			break
		}
	}
	closed := f.closed
	var gen uint64
	hier := false
	if changed && !closed {
		f.announceGen++
		gen = f.announceGen
		hier = f.hierOn
	}
	f.mu.Unlock()
	if !changed || closed {
		return
	}
	if hier {
		f.touchDigestAnnouncements()
		return
	}
	f.announceChange(gen, nil, []event.Filter{flt})
}

// SubscribeRemote subscribes owner to events matching flt published
// anywhere in the SCINET: a local mediator subscription receives both local
// publishes and ingested cross-range batches, and the filter is announced
// as an interest so sibling fabrics forward matching events here.
func (f *Fabric) SubscribeRemote(owner guid.GUID, flt event.Filter, h func(event.Event)) (mediator.Record, error) {
	rec, err := f.rng.Mediator().Subscribe(owner, flt, h, mediator.SubOptions{QueueLen: tapQueueLen})
	if err != nil {
		return mediator.Record{}, err
	}
	f.AddInterest(flt)
	return rec, nil
}

// UnsubscribeRemote tears down a SubscribeRemote subscription symmetrically:
// the local mediator record is cancelled and its announced interest
// withdrawn, so peers stop forwarding (and tear down idle taps) instead of
// shipping events nobody consumes.
func (f *Fabric) UnsubscribeRemote(rec mediator.Record) error {
	err := f.rng.Mediator().Cancel(rec.ID)
	f.RemoveInterest(rec.Filter)
	return err
}

// ForgetInterest drops one fabric's entry from the local interest table
// without touching the peer itself — a partial-knowledge hook for tests
// and experiments (a fabric that never learned of an interested peer must
// rely on relays to cover it, the multi-hop topology E13 exercises).
// In-flight gossip may re-add the entry; callers loop until it stays gone.
// It reports whether an entry was present.
func (f *Fabric) ForgetInterest(owner guid.GUID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.interests[owner]
	delete(f.interests, owner)
	if ok {
		f.refreshInterestSnapLocked()
	}
	return ok
}

// Interests returns the known interest table: fabric node → announced
// filters (diagnostics; the forwarding decisions read the live table).
func (f *Fabric) Interests() map[guid.GUID][]event.Filter {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[guid.GUID][]event.Filter, len(f.interests))
	for id, flts := range f.interests {
		out[id] = append([]event.Filter(nil), flts...)
	}
	return out
}

// announceInterests sends this fabric's full interest set to every known
// peer (join-time anti-entropy; no-op while the hierarchy is active).
func (f *Fabric) announceInterests() {
	for _, peer := range f.node.Known() {
		f.announceInterestsTo(peer)
	}
}

// announceChange propagates one local interest change to every known peer:
// a delta to peers whose chain is intact, a full set otherwise.
func (f *Fabric) announceChange(gen uint64, add, del []event.Filter) {
	for _, peer := range f.node.Known() {
		f.announceChangeTo(peer, gen, add, del)
	}
}

// announceChangeTo ships one interest change to one peer. The delta form
// goes only when the peer is known to understand generations and holds
// exactly the previous one; any doubt — first contact, a skipped or failed
// announcement, out-of-order change goroutines — falls back to the full
// set stamped with the current generation. A change already covered by a
// newer announcement to this peer is skipped outright.
func (f *Fabric) announceChangeTo(peer guid.GUID, gen uint64, add, del []event.Filter) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	msg := interestMsg{Owner: f.node.ID()}
	switch {
	case f.deltaAware[peer] && gen > 1 && f.sentGen[peer] == gen-1:
		msg.Gen = gen
		msg.Prev = gen - 1
		msg.Add = add
		msg.Del = del
		f.sentGen[peer] = gen
	case gen > f.sentGen[peer]:
		msg.Gen = f.announceGen
		msg.Full = true
		msg.Filters = f.localFiltersLocked()
		msg.Remove = len(msg.Filters) == 0
		f.sentGen[peer] = msg.Gen
	default:
		f.mu.Unlock()
		return // a newer announcement already covered this change
	}
	f.mu.Unlock()
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	_ = f.node.Route(peer, appInterest, payload)
}

// localFiltersLocked snapshots this fabric's own interest filters (one
// entry per distinct filter, whatever its refcount). Callers hold f.mu.
func (f *Fabric) localFiltersLocked() []event.Filter {
	out := make([]event.Filter, len(f.local))
	for i := range f.local {
		out[i] = f.local[i].flt
	}
	return out
}

// announceInterestsTo sends the full set to one peer on first contact —
// skipped when there is nothing to say, and in hierarchy mode (digests
// replace flat announcements there).
func (f *Fabric) announceInterestsTo(peer guid.GUID) {
	f.announceFull(peer, false)
}

// announceFullTo force-sends the full set to one peer — the resync reply,
// sent even when empty so a ghost entry at the peer is cleared.
func (f *Fabric) announceFullTo(peer guid.GUID) {
	f.announceFull(peer, true)
}

func (f *Fabric) announceFull(peer guid.GUID, force bool) {
	f.mu.Lock()
	filters := f.localFiltersLocked()
	skip := f.closed || f.hierOn || (!force && len(filters) == 0)
	gen := f.announceGen
	if !skip {
		f.sentGen[peer] = gen
	}
	f.mu.Unlock()
	if skip {
		return
	}
	msg := interestMsg{Owner: f.node.ID(), Gen: gen, Full: true, Filters: filters}
	msg.Remove = len(filters) == 0
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	_ = f.node.Route(peer, appInterest, payload)
}

// handleInterest ingests an interest announcement, establishes or tears
// down the local mediator tap, and re-gossips changed records to other
// peers so interests cross partially connected topologies. Generation-
// stamped announcements are ordered per owner: stale ones are discarded,
// deltas apply only on top of exactly the generation they name, and a gap
// triggers a full resync from the owner instead of a blind apply.
func (f *Fabric) handleInterest(d overlay.Delivery) {
	var msg interestMsg
	if json.Unmarshal(d.Payload, &msg) != nil {
		return
	}
	if msg.Owner == f.node.ID() {
		return // our own record, echoed back
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	if msg.Gen > 0 {
		f.deltaAware[msg.Owner] = true
	}
	changed := false
	resync := false
	switch {
	case msg.Gen > 0 && msg.Gen <= f.interestGen[msg.Owner]:
		// Stale or duplicate generation: nothing to apply or re-gossip.
	case msg.Gen == 0 || msg.Full || msg.Remove:
		// Legacy wholesale announcement (Gen zero) or a generation-stamped
		// full set: replace or delete outright.
		if msg.Gen > 0 {
			f.interestGen[msg.Owner] = msg.Gen
		}
		if msg.Remove || len(msg.Filters) == 0 {
			if _, ok := f.interests[msg.Owner]; ok {
				delete(f.interests, msg.Owner)
				changed = true
			}
		} else if !filtersEqual(f.interests[msg.Owner], msg.Filters) {
			f.interests[msg.Owner] = append([]event.Filter(nil), msg.Filters...)
			changed = true
		}
	case msg.Prev != f.interestGen[msg.Owner]:
		// A delta whose base we do not hold: the chain broke (lost or
		// reordered announcement) — ask the owner for the full set.
		resync = true
	default:
		// In-sequence delta: remove Del, add Add, drop the entry if empty
		// (an empty entry would cost snapshot scans for nothing).
		cur := f.interests[msg.Owner]
		next := make([]event.Filter, 0, len(cur)+len(msg.Add))
	keep:
		for _, fl := range cur {
			for _, dl := range msg.Del {
				if fl == dl {
					continue keep
				}
			}
			next = append(next, fl)
		}
	add:
		for _, al := range msg.Add {
			for _, fl := range next {
				if fl == al {
					continue add
				}
			}
			next = append(next, al)
		}
		f.interestGen[msg.Owner] = msg.Gen
		if len(next) == 0 {
			delete(f.interests, msg.Owner)
		} else {
			f.interests[msg.Owner] = next
		}
		changed = true
	}
	if changed {
		f.refreshInterestSnapLocked()
	}
	f.mu.Unlock()
	if resync {
		if payload, err := json.Marshal(interestSyncMsg{From: f.node.ID()}); err == nil {
			_ = f.node.Route(msg.Owner, appInterestSync, payload)
		}
		return
	}
	f.reconcileTaps()
	if !changed {
		return
	}
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	for _, peer := range f.node.Known() {
		if peer == d.Origin || peer == msg.Owner {
			continue
		}
		_ = f.node.Route(peer, appInterest, payload)
	}
}

func filtersEqual(a, b []event.Filter) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// desiredTapTypesLocked derives the mediator tap set the interest table
// demands: the minimal set of concrete filter types covering every type a
// peer announced, with hierarchical overlap deduplicated (an interest in
// "temperature.celsius" is already covered by a tap on "temperature", and
// tapping both would forward those events twice). wildcard is true when a
// peer's filter names no concrete type — or when declared semantic
// equivalences could make one event match two typed taps — in which case
// one residual-tier tap serves everything, exactly the pre-typed-tap
// behaviour. Callers hold f.mu.
func desiredTapTypesLocked(interests map[guid.GUID][]event.Filter, reg *ctxtype.Registry) (types []ctxtype.Type, wildcard bool) {
	if len(interests) == 0 {
		return nil, false
	}
	set := make(map[ctxtype.Type]bool)
	for _, flts := range interests {
		for _, fl := range flts {
			if fl.Type == "" || fl.Type == ctxtype.Wildcard {
				return nil, true
			}
			set[fl.Type] = true
		}
	}
	all := make([]ctxtype.Type, 0, len(set))
	for t := range set {
		all = append(all, t)
	}
	// Shallowest first, name-ordered for determinism: an ancestor always
	// precedes its descendants, so one pass keeps only uncovered types.
	sort.Slice(all, func(i, j int) bool {
		if di, dj := all[i].Depth(), all[j].Depth(); di != dj {
			return di < dj
		}
		return all[i] < all[j]
	})
	kept := all[:0]
outer:
	for _, t := range all {
		for _, k := range kept {
			if t.HasAncestor(k) {
				continue outer
			}
		}
		kept = append(kept, t)
	}
	// Equivalence guard: the dispatch index also matches an event to a tap
	// through the event type's declared equivalence class, so two kept taps
	// double-forward when any member of one tap's class reaches another
	// kept tap. Kept types have no ancestor pairs, so any double match must
	// route through a class member — scanning the kept types' classes is
	// sound. Fall back to the single residual tap rather than duplicate.
	if reg != nil && len(kept) > 1 {
		for _, k := range kept {
			for _, u := range reg.EquivSet(k) {
				hits := 0
				for _, k2 := range kept {
					if u.HasAncestor(k2) || reg.Satisfies(u, k2) {
						hits++
					}
				}
				if hits > 1 {
					return nil, true
				}
			}
		}
	}
	return kept, false
}

// reconcileTaps reconciles the mediator taps with demand: one batch
// subscription per type the interest table requires (desiredTapTypesLocked),
// or a single residual-tier tap when a wildcard interest forces it —
// typed taps ride the dispatch index's exact-pattern tier, so fan-out no
// longer drags the publisher's index-hit ratio. Demand is recomputed from
// the live interest table under the fabric lock on every pass (a caller's
// snapshot could be stale by the time it acts: a concurrent interest-add
// and interest-remove must never leave interested peers without a tap),
// and the loop runs until observation and state agree. Missing taps are
// established before superseded ones are cancelled, so a reshape (an
// ancestor interest subsuming a live descendant tap, or a wildcard
// fallback) never opens a window in which matching publishes reach no
// tap; the cost is that an event may transiently match both the old and
// the new tap during the handover and be forwarded twice — context
// streams are freshest-wins, so a rare duplicate at reconfiguration is
// preferred over silent loss. Every tap is filtered to locally produced
// events (Range == this Range), so ingested cross-range events — which
// keep their origin Range stamp — can never re-enter the forwarding
// path; no tap exists while no peer is interested, keeping the cost off
// Ranges nobody watches.
func (f *Fabric) reconcileTaps() {
	for {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return
		}
		types, wildcard := f.tapDemandLocked()
		want := make(map[ctxtype.Type]bool, len(types)+1)
		if wildcard {
			want[ctxtype.Wildcard] = true
		}
		for _, t := range types {
			want[t] = true
		}
		var add ctxtype.Type
		added := false
		for t := range want {
			if _, ok := f.taps[t]; !ok {
				add, added = t, true
				break
			}
		}
		var cancel []guid.GUID
		if !added {
			// Only after every wanted tap is live may the superseded ones
			// go: cancel-first would lose matching publishes in between.
			for t, id := range f.taps {
				if !want[t] {
					cancel = append(cancel, id)
					delete(f.taps, t)
				}
			}
		}
		f.mu.Unlock()
		for _, id := range cancel {
			_ = f.rng.Mediator().Cancel(id)
		}
		if !added {
			if len(cancel) > 0 {
				continue // re-check: demand may have shifted during cancels
			}
			return
		}
		flt := event.Filter{Range: f.rng.ID()}
		if add != ctxtype.Wildcard {
			flt.Type = add
		}
		rec, err := f.rng.Mediator().SubscribeBatch(f.node.ID(), flt, f.forwardLocal,
			mediator.SubOptions{QueueLen: tapQueueLen})
		if err != nil {
			return
		}
		f.mu.Lock()
		if _, dup := f.taps[add]; f.closed || dup {
			// Lost a race (concurrent establish, or closed meanwhile): ours
			// is surplus.
			f.mu.Unlock()
			_ = f.rng.Mediator().Cancel(rec.ID)
			if f.isClosed() {
				return
			}
			continue
		}
		f.taps[add] = rec.ID
		f.mu.Unlock()
		// Loop: more taps may be missing, or demand changed meanwhile.
	}
}

func (f *Fabric) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// forwardLocal is the mediator tap handler: every run of locally published
// events reaches the fan-out coalescer as one slice appended under one lock
// acquisition (the batch-fed remote fan-out edge).
func (f *Fabric) forwardLocal(events []event.Event) {
	if len(events) == 0 {
		return
	}
	if f.maxBatch > 1 {
		f.fan.AddAll(events)
		return
	}
	// Coalescing disabled: each event ships as its own batch message.
	for i := range events {
		f.fanOut(events[i : i+1])
	}
}

// fanOut ships one already-bounded chunk of locally published events to
// every next hop that wants it — flat-announced interested peers plus, in
// hierarchy mode, the hierarchy links whose digest admits the batch —
// stamped with this fabric as origin and a hop set covering origin plus
// all recipients: the loop-suppression contract that lets relays extend
// coverage without ever duplicating or echoing.
func (f *Fabric) fanOut(events []event.Event) {
	// Interest matching runs against the lock-free snapshots: a wide table
	// of per-peer filters must not serialize every flush behind f.mu. Close
	// empties both snapshots, so a closed fabric matches nothing.
	self := f.node.ID()
	recips := f.forwardTargets(events, guid.NewSet(self))
	if len(recips) == 0 {
		return
	}
	// Events travel as one native batch shared across every recipient: the
	// envelope (origin, batch id, hop set) is the only JSON this path
	// marshals, and binary or in-memory hops never serialize the events at
	// all. The flush slice aliases the coalescer's buffer, so copy before it
	// escapes into routed messages that outlive this call; legacy JSON hops
	// fold the events back into the payload via the registered app folder.
	owned := make([]event.Event, len(events))
	copy(owned, events)
	via := make([]guid.GUID, 0, len(recips)+1)
	via = append(via, self)
	via = append(via, recips...)
	payload, err := json.Marshal(eventBatchMsg{
		Origin:  self,
		BatchID: guid.New(guid.KindEvent),
		Via:     via,
	})
	if err != nil {
		return
	}
	batch := &wire.NativeBatch{Events: owned}
	for _, to := range recips {
		if f.node.RouteBatch(to, appEventBatch, payload, batch) == nil {
			f.BatchesForwarded.Inc()
			f.EventsForwarded.Add(uint64(len(owned)))
			f.noteSubtreeForward(to)
		}
	}
}

// handleEventBatch ingests a scinet.event_batch payload: routed query
// results go to their waiting consumer; fan-out batches enter the local
// Range through PublishAll (the batched dispatch path) and are relayed to
// interested peers the hop set does not cover.
func (f *Fabric) handleEventBatch(d overlay.Delivery) {
	var msg eventBatchMsg
	if json.Unmarshal(d.Payload, &msg) != nil {
		return
	}
	if msg.Origin == f.node.ID() {
		// A batch must never return to its origin.
		f.EchoesDropped.Inc()
		return
	}
	if !msg.QueryID.IsNil() {
		f.mu.Lock()
		oq, ok := f.consumers[msg.QueryID]
		f.mu.Unlock()
		if !ok {
			return
		}
		var events []event.Event
		got := len(msg.Events)
		if d.Batch != nil {
			events, _ = nativeEvents(d.Batch, guid.Nil)
			got = len(d.Batch.Events)
		} else {
			events, _ = decodeFrames(msg.Events, guid.Nil)
		}
		oq.caa.ConsumeAll(events)
		// Credit reports for routed-query traffic coalesce per peer: every
		// (peer, query) coalescer at the sender tracks the same cumulative
		// figure, so one frame per window covers them all.
		f.noteQueryAck(d.Origin, got)
		return
	}

	// Duplicate window: two relays may each cover the same fabric missing
	// from a sender's hop set; only the first copy of a batch id is
	// ingested.
	if !msg.BatchID.IsNil() && !f.markSeen(msg.BatchID) {
		f.DuplicatesDropped.Inc()
		return
	}

	// Events stamped with the local Range are echoes of our own production
	// regardless of what the envelope claims; events with no Range stamp
	// would be restamped as local by PublishAll and re-enter the forwarding
	// tap, so both are dropped for loop safety. A native batch applies the
	// same rules without ever touching JSON.
	var events []event.Event
	var echoes int
	got := len(msg.Events)
	if d.Batch != nil {
		events, echoes = nativeEvents(d.Batch, f.rng.ID())
		got = len(d.Batch.Events)
	} else {
		events, echoes = decodeFrames(msg.Events, f.rng.ID())
	}
	if echoes > 0 {
		f.EchoesDropped.Add(uint64(echoes))
	}
	// Ingest only what this fabric asked for: a coalesced chunk may carry
	// co-batched events matching none of our interests (whole batches
	// travel so relays can serve peers with different filters), and those
	// must not leak into local dispatch AddInterest never asked about.
	f.mu.Lock()
	local := f.localFiltersLocked()
	f.mu.Unlock()
	keep := make([]event.Event, 0, len(events))
	for i := range events {
		for j := range local {
			if local[j].MatchesIn(events[i], f.rng.Types()) {
				keep = append(keep, events[i])
				break
			}
		}
	}
	if len(keep) > 0 {
		f.BatchesIngested.Inc()
		f.EventsIngested.Add(uint64(len(keep)))
		// Attribute the ingest to the fabric that shipped it (origin or
		// relay): any drops it causes count against that link, and the ack
		// below reports them.
		_ = f.rng.PublishAllFrom(d.Origin, keep)
	}
	// The reply hint: report this Range's flow credit to whichever fabric
	// shipped the batch, so its coalescer can throttle. Noted after the
	// ingest so the report covers this batch's own drops, not last
	// batch's; coalesced per peer so a relayed burst answers with one
	// frame, not one per message.
	f.noteFanAck(d.Origin, got)
	// Relays match against the full batch: peers' filters differ from ours.
	relayed := 0
	if len(events) > 0 {
		relayed = f.relay(msg, events, d.Batch)
	}
	// A hierarchy-routed batch that crossed this hop for nobody — matched
	// no local filter, relayed nowhere — is a digest false positive:
	// tolerated spillover, counted so E16 can bound its rate.
	if len(events) > 0 && len(keep) == 0 && relayed == 0 && f.hierarchyActive() {
		f.SpilloverDropped.Inc()
	}
}

// nativeEvents applies decodeFrames' validation and loop-safety rules to a
// natively delivered batch. The batch is shared — the memory transport may
// hand one pointer to several local receivers — so event values are copied
// out and the batch itself is never mutated.
func nativeEvents(b *wire.NativeBatch, localRange guid.GUID) (events []event.Event, echoes int) {
	events = make([]event.Event, 0, len(b.Events))
	for i := range b.Events {
		e := b.Events[i]
		if err := e.Validate(); err != nil {
			continue
		}
		if !localRange.IsNil() && (e.Range.IsNil() || e.Range == localRange) {
			echoes++
			continue
		}
		events = append(events, e)
	}
	return events, echoes
}

// markSeen records a batch id in the bounded duplicate window, reporting
// whether it was new.
func (f *Fabric) markSeen(id guid.GUID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seen.Has(id) {
		return false
	}
	f.seen.Add(id)
	if len(f.seenRing) < seenWindow {
		f.seenRing = append(f.seenRing, id)
		return true
	}
	f.seen.Remove(f.seenRing[f.seenPos])
	f.seenRing[f.seenPos] = id
	f.seenPos = (f.seenPos + 1) % seenWindow
	return true
}

// sendBatchAck routes a flow-credit report to the fabric that shipped an
// event_batch: the cumulative dispatch drops attributed to *that fabric's*
// traffic (its receive health on this link — never the Range-wide total,
// which would blame it for other links' floods), the congestion this
// fabric has itself observed downstream of its relays (the transitive
// half, fan-out path only), and an unknown queue depth — drops, not
// depth, are the signal a Range can honestly report, since its delivery
// rings are per subscription. Routed-query acks carry no Downstream:
// query results are consumed here, not relayed, and folding unrelated
// fan-out congestion into them would throttle a healthy query stream for
// another link's collapse.
func (f *Fabric) sendBatchAck(to, qid guid.GUID, events int) error {
	msg := eventBatchAckMsg{
		Origin:    f.node.ID(),
		QueryID:   qid,
		Events:    events,
		Dropped:   f.rng.DispatchDropsFor(to),
		QueueFree: -1,
	}
	if qid.IsNil() {
		msg.DownstreamBy, msg.Downstream = f.downstreamByFor(to)
	}
	payload, err := json.Marshal(msg)
	if err != nil {
		return nil // unencodable: dropping the report is all we can do
	}
	err = f.node.Route(to, appEventBatchAck, payload)
	if err == nil {
		f.AcksSent.Inc()
	}
	return err
}

// DownstreamDrops reports the congestion this fabric has observed
// downstream of its forwarding: the sum over all per-origin accounts (max
// cumulative drops each observing fabric has reported, directly or via
// relays) — the transitive half of the credit loop that lets a multi-hop
// chain throttle at its origin.
func (f *Fabric) DownstreamDrops() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var total uint64
	for _, v := range f.downObs {
		total += v
	}
	return total
}

// downstreamByFor snapshots the accounts reported to one peer, excluding
// the account that peer itself observed — telling a fabric about its own
// receivers' drops would double-count them — and returns the map alongside
// its sum (the back-compat scalar). The excluded key set per recipient is
// fixed and every account is monotone, so both figures are monotone per
// recipient.
func (f *Fabric) downstreamByFor(peer guid.GUID) (map[guid.GUID]uint64, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var sum uint64
	var out map[guid.GUID]uint64
	for o, v := range f.downObs {
		if o == peer {
			continue
		}
		if out == nil {
			out = make(map[guid.GUID]uint64, len(f.downObs))
		}
		out[o] = v
		sum += v
	}
	return out, sum
}

// downstreamFor returns just the scalar figure of downstreamByFor,
// allocation-free — it runs in the ack coalescer's Figure callback on
// every ingested fan-out message.
func (f *Fabric) downstreamFor(peer guid.GUID) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var sum uint64
	for o, v := range f.downObs {
		if o != peer {
			sum += v
		}
	}
	return sum
}

// noteFanAck records an owed fan-path credit report toward one peer
// through its flow.AckCoalescer: the leading report and reports whose
// combined figure moved leave promptly (one per ack window even under a
// sustained drop storm — the figure is cumulative), while no-news reports
// wait out a fallback stretched past the deepest throttled flush cycle
// (flow's maxPenalty of 16 × the delay ceiling) — an all-clear decays the
// sender's penalty, so answering a relayed burst with per-message
// "nothing new" frames would wind the throttle down between the bursts
// still causing congestion downstream.
func (f *Fabric) noteFanAck(to guid.GUID, events int) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	a := f.facks[to]
	if a == nil {
		a = flow.NewAckCoalescer(flow.AckConfig{
			Clock:      f.clk,
			Window:     f.ackWindow,
			IdleWindow: f.ackWindow * fanAckIdleFactor,
			Figure: func() uint64 {
				return f.rng.DispatchDropsFor(to) + f.downstreamFor(to)
			},
			Send: func(events int) bool {
				return f.sendBatchAck(to, guid.Nil, events) == nil
			},
		})
		f.facks[to] = a
	}
	f.mu.Unlock()
	a.Note(events)
}

// fanAckIdleFactor stretches the no-news ack fallback beyond the deepest
// throttled flush cycle; see noteFanAck.
const fanAckIdleFactor = 20

// handleBatchAck feeds a receiver's credit report into the coalescer that
// serves it: the per-(peer, query) queue for routed-query acks, or the
// shared fan-out queue — via a per-peer baseline, since one coalescer
// multiplexes every interested peer — for fan-out acks. The baseline
// tracks the *combined* figure (the peer's own attributed drops plus the
// congestion it reports from further downstream; both monotone per
// reporter, so their sum is too): a delta from either throttles here, and
// the report's per-origin accounts are folded into this fabric's own
// downstream table so the next ack upstream carries them — a 3-hop
// collapse reaches the origin in two ack round trips. A combined figure
// below the baseline means the peer restarted under a reused GUID; the
// baseline resets so drop detection resumes immediately instead of
// freezing until the fresh counters re-pass the stale high-water mark.
func (f *Fabric) handleBatchAck(d overlay.Delivery) {
	var msg eventBatchAckMsg
	if json.Unmarshal(d.Payload, &msg) != nil {
		return
	}
	combined := msg.Dropped + msg.Downstream
	if msg.QueryAck {
		// One cumulative routed-query frame credits every coalescer toward
		// that peer: they all track the same per-peer drop figure.
		f.mu.Lock()
		var qs []*flow.Coalescer
		for k, q := range f.queues {
			if k.peer == msg.Origin {
				qs = append(qs, q)
			}
		}
		f.mu.Unlock()
		for _, q := range qs {
			q.UpdateCredit(combined, msg.QueueFree)
		}
		return
	}
	if !msg.QueryID.IsNil() {
		// Legacy per-query ack from a peer that predates QueryAck.
		f.mu.Lock()
		q := f.queues[queueKey{peer: msg.Origin, qid: msg.QueryID}]
		f.mu.Unlock()
		if q != nil {
			q.UpdateCredit(combined, msg.QueueFree)
		}
		return
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	last, seen := f.peerDrops[msg.Origin]
	f.peerDrops[msg.Origin] = combined
	var delta uint64
	if seen && combined > last {
		delta = combined - last
	}
	// Fold what this report teaches into the per-origin downstream
	// accounts. The peer's own receive-side figure is authoritative for
	// its account — set outright, so an adjacent restarted peer's reset
	// counter propagates one hop as a regression (which receivers
	// re-baseline on) instead of freezing behind a stale max. Accounts the
	// peer merely relays are merged by max: idempotent, so a figure
	// arriving twice — two relays, a cycle, or our own account echoed back
	// (skipped outright) — converges instead of amplifying. The max-merge
	// does mean a restarted sink's reset account un-freezes only at its
	// direct upstream until the fresh counter re-passes the old maximum;
	// versioned accounts (incarnation numbers) would lift that and are on
	// the roadmap — hop-by-hop credit keeps throttling correctly
	// meanwhile, since every adjacent pair exchanges live Dropped figures.
	if _, ok := f.downObs[msg.Origin]; ok || msg.Dropped > 0 {
		f.downObs[msg.Origin] = msg.Dropped
	}
	self := f.node.ID()
	for o, v := range msg.DownstreamBy {
		if o == self {
			continue
		}
		if v > f.downObs[o] {
			f.downObs[o] = v
		}
	}
	f.mu.Unlock()
	f.fan.NoteCredit(delta, msg.QueueFree)
}

// relay re-forwards an ingested batch to next hops outside its hop set —
// interested peers the origin did not know, and in hierarchy mode the
// links whose digest admits the batch (up toward the parent, down into
// matching subtrees, across to matching peer super-peers) — extending the
// hop set with every new recipient. When the batch arrived natively, the
// same shared batch pointer rides the relayed copies — events stay
// un-serialized across the whole relay chain unless a legacy hop forces a
// fold. It returns the number of next hops taken (zero means the batch
// terminated here).
func (f *Fabric) relay(msg eventBatchMsg, events []event.Event, batch *wire.NativeBatch) int {
	via := guid.NewSet(msg.Via...)
	via.Add(msg.Origin)
	via.Add(f.node.ID())
	// Matching runs against the lock-free snapshots, same as fanOut: relays
	// sit on the ingest path and must not serialize behind f.mu.
	extra := f.forwardTargets(events, via)
	if len(extra) == 0 {
		return 0
	}
	for _, id := range extra {
		via.Add(id)
	}
	out := eventBatchMsg{
		Origin:  msg.Origin,
		BatchID: msg.BatchID, // preserved, so receivers can dedup relayed copies
		Via:     via.Members(),
	}
	if batch == nil {
		out.Events = msg.Events
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return 0
	}
	// Forwarding honors this fabric's own credit state: while the fan-out
	// penalty is engaged, relayed batches queue into a bounded drop-oldest
	// backlog per peer instead of amplifying the origin's burst at line
	// rate into receivers already reporting collapse.
	for _, to := range extra {
		f.relayTo(to, payload, batch)
	}
	return len(extra)
}

// matchAny reports whether any filter accepts any event, using the Range's
// type registry for semantic equivalence.
func matchAny(filters []event.Filter, events []event.Event, rng *server.Range) bool {
	reg := rng.Types()
	for i := range filters {
		for j := range events {
			if filters[i].MatchesIn(events[j], reg) {
				return true
			}
		}
	}
	return false
}

// encodeFrames marshals events into batch frames, skipping unencodable
// ones.
func encodeFrames(events []event.Event) []json.RawMessage {
	frames := make([]json.RawMessage, 0, len(events))
	for i := range events {
		raw, err := json.Marshal(events[i])
		if err != nil {
			continue
		}
		frames = append(frames, raw)
	}
	return frames
}

// decodeFrames unmarshals and validates batch frames, skipping invalid
// ones. When localRange is non-nil the fan-out loop-safety rules apply:
// frames stamped with the local Range (echoes) or with no Range stamp at
// all (would be restamped as local and re-forwarded) are dropped, and
// counted separately in echoes so malformed frames never read as routing
// loops.
func decodeFrames(frames []json.RawMessage, localRange guid.GUID) (events []event.Event, echoes int) {
	events = make([]event.Event, 0, len(frames))
	for _, raw := range frames {
		var e event.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			continue
		}
		if err := e.Validate(); err != nil {
			continue
		}
		if !localRange.IsNil() && (e.Range.IsNil() || e.Range == localRange) {
			echoes++
			continue
		}
		events = append(events, e)
	}
	return events, echoes
}

// ----- outbound coalescers -----

// sendQueryEvents routes a run of result events for one forwarded query
// back to its origin fabric: through the per-peer coalescer when batching
// is enabled, as legacy single-event frames otherwise (old fabrics decode
// those).
func (f *Fabric) sendQueryEvents(to, qid guid.GUID, events []event.Event) {
	if len(events) == 0 {
		return
	}
	if f.maxBatch <= 1 {
		for i := range events {
			payload, err := json.Marshal(eventMsg{QueryID: qid, Event: events[i]})
			if err != nil {
				continue
			}
			if f.node.Route(to, appEvent, payload) == nil {
				f.BatchesForwarded.Inc()
				f.EventsForwarded.Inc()
			}
		}
		return
	}
	if q := f.queueFor(to, qid); q != nil {
		q.AddAll(events)
	}
}

// sendQueryBatch ships one bounded chunk as a scinet.event_batch message.
// Result events ride natively: the chunk aliases the coalescer's buffer, so
// it is copied before escaping, and legacy hops fold it back to frames.
func (f *Fabric) sendQueryBatch(to, qid guid.GUID, events []event.Event) {
	if len(events) == 0 {
		return
	}
	owned := make([]event.Event, len(events))
	copy(owned, events)
	payload, err := json.Marshal(eventBatchMsg{Origin: f.node.ID(), QueryID: qid})
	if err != nil {
		return
	}
	if f.node.RouteBatch(to, appEventBatch, payload, &wire.NativeBatch{Events: owned}) == nil {
		f.BatchesForwarded.Inc()
		f.EventsForwarded.Add(uint64(len(owned)))
	}
}

// queueFor returns the (peer, query) coalescer, creating it on first use
// (nil once the fabric has closed). Like the fan-out queue it reports into
// the Range's shared flow stats, so SCINET backpressure reads out of the
// same remote.backpressure.* gauges as the Range Service's.
func (f *Fabric) queueFor(to, qid guid.GUID) *flow.Coalescer {
	key := queueKey{peer: to, qid: qid}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	q, ok := f.queues[key]
	if !ok {
		q = flow.New(flow.Config{
			Clock:    f.clk,
			MaxBatch: f.maxBatch,
			MaxDelay: f.maxDelay,
			Adaptive: f.adaptive,
			Fair:     f.rng.FairFlush(),
			Stats:    f.rng.FlowStats(),
			Send:     func(batch []event.Event) { f.sendQueryBatch(to, qid, batch) },
		})
		f.queues[key] = q
	}
	return q
}

// ----- peer lifecycle -----

// peerGone tears down every piece of per-peer state after a fabric departs
// (announced leave, or the overlay forgetting an unresponsive node): its
// coverage and interests, the origin-side consumers of queries it served,
// the serving-side queries it originated (with their proxy CAAs), and its
// outbound coalescers.
func (f *Fabric) peerGone(peer guid.GUID) {
	f.mu.Lock()
	if f.closed || peer == f.node.ID() {
		f.mu.Unlock()
		return
	}
	delete(f.coverage, peer)
	if _, ok := f.interests[peer]; ok {
		delete(f.interests, peer)
		f.refreshInterestSnapLocked()
	}
	delete(f.peerDrops, peer)
	delete(f.sentGen, peer)
	delete(f.deltaAware, peer)
	delete(f.interestGen, peer)
	// Hierarchy state for the departed peer: its digests no longer route.
	hierChanged := false
	if _, ok := f.childDigests[peer]; ok {
		delete(f.childDigests, peer)
		hierChanged = true
	}
	if _, ok := f.peerDigests[peer]; ok {
		delete(f.peerDigests, peer)
		hierChanged = true
	}
	if f.hierSet && peer == f.hier.Parent && f.upDigest != nil {
		// The parent's downward summary died with it: route upward
		// conservatively until a parent speaks again.
		f.upDigest = nil
		hierChanged = true
	}
	delete(f.digestGens, peer)
	delete(f.digestSent, peer)
	delete(f.childFwd, peer)
	dcoal := f.digestCoal[peer]
	delete(f.digestCoal, peer)
	if hierChanged {
		f.refreshHierSnapLocked()
	}
	// The departed peer's downstream account (downObs) is deliberately
	// retained: figures reported to the remaining peers must stay
	// monotone, and max-merge makes a stale account harmless.
	ack := f.facks[peer]
	delete(f.facks, peer)
	qack := f.qacks[peer]
	delete(f.qacks, peer)
	relay := f.relays[peer]
	delete(f.relays, peer)
	for qid, oq := range f.consumers {
		if oq.target == peer {
			delete(f.consumers, qid)
		}
	}
	var gone []guid.GUID
	for qid, sq := range f.served {
		if sq.origin == peer {
			gone = append(gone, qid)
		}
	}
	var drop []*flow.Coalescer
	for k, q := range f.queues {
		if k.peer == peer {
			drop = append(drop, q)
			delete(f.queues, k)
		}
	}
	f.mu.Unlock()

	if ack != nil {
		ack.Stop()
	}
	if qack != nil {
		qack.Stop()
	}
	if relay != nil {
		relay.discard()
	}
	if dcoal != nil {
		dcoal.Stop()
	}
	for _, q := range drop {
		q.Discard()
	}
	guid.Sort(gone)
	for _, qid := range gone {
		f.dropServed(qid)
	}
	if hierChanged {
		// Remaining links' summaries just changed (a subtree vanished).
		f.touchDigestAnnouncements()
	}
	f.reconcileTaps()
}

// ----- fleet stats -----

// handleStats answers a fleet-stats probe with this Range's dispatch.stats.
func (f *Fabric) handleStats(d overlay.Delivery) {
	var msg statsQueryMsg
	if json.Unmarshal(d.Payload, &msg) != nil {
		return
	}
	payload, err := json.Marshal(statsResultMsg{
		Corr:  msg.Corr,
		Name:  f.rng.Name(),
		Stats: f.rng.StatsMap(),
	})
	if err != nil {
		return
	}
	_ = f.node.Route(msg.Origin, appStatsResult, payload)
}

// FleetDispatchStats collects dispatch.stats from every known fabric over
// the overlay and aggregates them with this Range's own snapshot. Peers
// that do not answer within timeout (default RequestTimeout) are left out;
// the rollup reports how many Ranges it covers.
func (f *Fabric) FleetDispatchStats(timeout time.Duration) (*FleetStats, error) {
	if timeout <= 0 {
		timeout = RequestTimeout
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	f.mu.Unlock()

	type probe struct {
		peer guid.GUID
		corr guid.GUID
		ch   chan statsResultMsg
	}
	var probes []probe
	for _, peer := range f.node.Known() {
		corr := guid.New(guid.KindQuery)
		ch := make(chan statsResultMsg, 1)
		f.mu.Lock()
		f.statsWait[corr] = ch
		f.mu.Unlock()
		payload, err := json.Marshal(statsQueryMsg{Origin: f.node.ID(), Corr: corr})
		if err == nil && f.node.Route(peer, appStats, payload) == nil {
			probes = append(probes, probe{peer: peer, corr: corr, ch: ch})
			continue
		}
		f.mu.Lock()
		delete(f.statsWait, corr)
		f.mu.Unlock()
	}

	fs := &FleetStats{Totals: make(map[string]float64)}
	add := func(node guid.GUID, name string, stats map[string]float64) {
		fs.Ranges++
		fs.PerRange = append(fs.PerRange, RangeStats{Node: node, Name: name, Stats: stats})
		for k, v := range stats {
			fs.Totals[k] += v
		}
	}
	add(f.node.ID(), f.rng.Name(), f.rng.StatsMap())

	deadline := f.clk.Now().Add(timeout)
	for _, p := range probes {
		select {
		case res := <-p.ch:
			add(p.peer, res.Name, res.Stats)
		case <-f.clk.After(deadline.Sub(f.clk.Now())):
		}
		f.mu.Lock()
		delete(f.statsWait, p.corr)
		f.mu.Unlock()
	}
	// A ratio of sums, not a sum of ratios.
	if hits, scanned := fs.Totals["index_hits"], fs.Totals["residual_scanned"]; hits+scanned > 0 {
		fs.Totals["index_hit_ratio"] = hits / (hits + scanned)
	} else {
		fs.Totals["index_hit_ratio"] = 1
	}
	sort.Slice(fs.PerRange, func(i, j int) bool { return fs.PerRange[i].Name < fs.PerRange[j].Name })
	return fs, nil
}

// Names returns the known range names keyed by fabric node, for
// diagnostics, sorted output.
func (f *Fabric) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.coverage))
	for _, c := range f.coverage {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// Close flushes outbound coalescers, announces departure so peers tear
// down per-peer state, releases every served query (removing their proxy
// CAAs from the Range), cancels the mediator tap and detaches the overlay
// node.
func (f *Fabric) Close() error {
	// Flush while the fabric is still open: the fan-out queue's recipients
	// come from the interest snapshot, which the closed transition empties,
	// so the pending batches must leave before it. (Fan-out
	// events published concurrently with Close may land after this flush;
	// they are dropped with the rest of the closing fabric's state.)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	flushed := make(map[*flow.Coalescer]bool, len(f.queues)+1)
	queues := make([]*flow.Coalescer, 0, len(f.queues)+1)
	for _, q := range f.queues {
		queues = append(queues, q)
		flushed[q] = true
	}
	queues = append(queues, f.fan)
	flushed[f.fan] = true
	f.mu.Unlock()
	for _, q := range queues {
		q.Flush()
	}

	f.mu.Lock()
	if f.closed {
		// Lost a race against a concurrent Close.
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	taps := make([]guid.GUID, 0, len(f.taps))
	for _, id := range f.taps {
		taps = append(taps, id)
	}
	f.taps = make(map[ctxtype.Type]guid.GUID)
	// Routed-query queues created between the open-phase flush and this
	// transition (queueFor refuses only once closed is set) join the sweep:
	// their pending events still go out below and their delay timers are
	// disarmed rather than left to fire against a closed node.
	late := make([]*flow.Coalescer, 0)
	for _, q := range f.queues {
		if !flushed[q] {
			late = append(late, q)
			queues = append(queues, q)
		}
	}
	f.queues = make(map[queueKey]*flow.Coalescer)
	served := make([]guid.GUID, 0, len(f.served))
	for qid := range f.served {
		served = append(served, qid)
	}
	f.consumers = make(map[guid.GUID]*outQuery)
	f.interests = make(map[guid.GUID][]event.Filter)
	f.refreshInterestSnapLocked() // fanOut/relay match nothing once closed
	acks := make([]*flow.AckCoalescer, 0, len(f.facks)+len(f.qacks))
	for _, a := range f.facks {
		acks = append(acks, a)
	}
	f.facks = make(map[guid.GUID]*flow.AckCoalescer)
	for _, a := range f.qacks {
		acks = append(acks, a)
	}
	f.qacks = make(map[guid.GUID]*flow.AckCoalescer)
	relays := make([]*relayQueue, 0, len(f.relays))
	for _, rq := range f.relays {
		relays = append(relays, rq)
	}
	f.relays = make(map[guid.GUID]*relayQueue)
	dcoals := make([]*flow.UpdateCoalescer, 0, len(f.digestCoal))
	for _, c := range f.digestCoal {
		dcoals = append(dcoals, c)
	}
	f.digestCoal = make(map[guid.GUID]*flow.UpdateCoalescer)
	var hierLinks []guid.GUID
	hierParent := f.hier.Parent
	hierPeers := append([]guid.GUID(nil), f.hier.Peers...)
	if f.hierOn {
		hierLinks = f.hierLinkIDsLocked()
	}
	f.hierOn = false
	if f.hierSet {
		f.hierSnap.Store(&hierView{}) // inactive: hierarchy routing matches nothing
	}
	f.mu.Unlock()
	for _, a := range acks {
		a.Stop()
	}
	for _, rq := range relays {
		rq.discard()
	}
	for _, c := range dcoals {
		c.Stop()
	}
	// Withdraw this fabric's digests so hierarchy neighbors stop routing
	// through it at once instead of waiting for the overlay to forget it.
	if len(hierLinks) > 0 {
		self := f.node.ID()
		isPeer := make(map[guid.GUID]bool, len(hierPeers))
		for _, p := range hierPeers {
			isPeer[p] = true
		}
		for _, to := range hierLinks {
			msg := digestMsg{Owner: self, Remove: true}
			switch {
			case to == hierParent:
				msg.Child = true
			case isPeer[to]:
				msg.Peer = true
			default:
				msg.Down = true
			}
			if payload, err := json.Marshal(msg); err == nil {
				_ = f.node.Route(to, appDigest, payload)
			}
		}
	}

	guid.Sort(taps)
	for _, id := range taps {
		_ = f.rng.Mediator().Cancel(id)
	}
	for _, q := range late {
		q.Flush()
	}
	for _, q := range queues {
		q.Discard()
	}
	if payload, err := json.Marshal(leaveMsg{Origin: f.node.ID()}); err == nil {
		for _, peer := range f.node.Known() {
			_ = f.node.Route(peer, appLeave, payload)
		}
	}
	guid.Sort(served)
	for _, qid := range served {
		f.dropServed(qid)
	}
	return f.node.Close()
}
