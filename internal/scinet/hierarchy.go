package scinet

// Grid-scale interest routing: the hierarchical digest layer.
//
// Flat interest gossip re-announces every fabric's full filter set to every
// peer — O(fleet²) messages per interest change and O(fleet) interest state
// per fabric, the wide-area scaling wall grid middleware hit at hundreds of
// sites. The hierarchy replaces that with summarized digests along a
// configured super-peer tree (overlay.PlanTree supplies the shape):
//
//   - a leaf announces its interests only to its super-peer, as a
//     wire.Digest (coarsened ctxtype prefixes + a Bloom filter over full
//     filter types) rather than as filters;
//   - a super-peer merges its children's digests with its own interests
//     into one subtree digest, announced up to its parent and level-wise to
//     its peer super-peers; it also sends each child a downward digest
//     summarizing the rest of the fleet (everything reachable *not* through
//     that child), which is what the child's tap demand and upward
//     forwarding gate on;
//   - event batches route along the links whose digest admits them
//     (false-positive tolerant: a digest may over-claim, never under-claim;
//     leaves count non-matching arrivals as spillover), with the existing
//     Via hop set and BatchID window providing exactly-once delivery, and
//     each hop reusing the per-link coalescer, relay backlog and credit
//     acks unchanged — PR 5/6 flow semantics hold per link;
//   - digest updates are whole-state summaries, rate-limited per link by a
//     flow.UpdateCoalescer (leading edge immediate, churn coalesced per
//     window) and suppressed entirely when the summary is unchanged, with
//     a per-announcer generation so reordered updates are discarded.
//
// An unknown digest (a link whose summary has not arrived yet) admits
// everything: staleness degrades to extra traffic, never to silent loss.

import (
	"encoding/json"
	"sort"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/overlay"
	"sci/internal/wire"
)

// App kinds of the hierarchy protocol.
const (
	// appDigest carries a wire.Digest interest summary along a hierarchy
	// link (child → parent, parent → child, or super-peer → super-peer).
	appDigest = "scinet.digest"
	// appInterestSync asks an interest owner to re-announce its full
	// filter set (a delta-generation gap was detected).
	appInterestSync = "scinet.interest_sync"
)

// defaultDigestWindow spaces digest re-announcements per link when the
// HierarchyConfig does not say otherwise: wide enough that mobility-grade
// interest churn coalesces, short enough that a fresh interest reaches the
// whole fleet at interactive latency (leading edges always ship at once).
const defaultDigestWindow = 100 * time.Millisecond

// HierarchyConfig attaches a fabric to a super-peer interest hierarchy.
// The zero value means flat (existing behavior): every field is opt-in, so
// small fleets run exactly the PR 3 flood protocol. Plans typically come
// from overlay.PlanTree.
type HierarchyConfig struct {
	// Parent is the super-peer this fabric announces its subtree digest
	// to (nil at a root).
	Parent guid.GUID
	// SuperPeer marks this fabric as an aggregation point: it accepts
	// children's digests and forwards batches into matching subtrees.
	SuperPeer bool
	// Peers are fellow super-peers exchanged with level-wise (for a forest
	// of roots: the other roots). Digests and batches cross the top of the
	// hierarchy through them.
	Peers []guid.GUID
	// Level is this fabric's distance from its root (informational,
	// surfaced through the per-level stats gauges).
	Level int
	// MinFleet keeps the fabric flat until it knows at least this many
	// fabrics (itself included): auto-flat for small fleets. Once reached
	// the hierarchy latches on. Zero activates immediately.
	MinFleet int
	// DigestWindow rate-limits digest updates per link (default
	// defaultDigestWindow).
	DigestWindow time.Duration
}

// digestMsg is one hierarchy digest announcement. Exactly one of
// Child/Down/Peer states the sender's relation to the receiver, so the
// receiver files the digest in the right table; Remove withdraws the
// sender's digest (departure).
//
// To names the link the update is for. Digest links are point-to-point but
// ride a DHT overlay whose Route falls back to closest-node delivery while
// the fleet is still converging (including looping a pre-Join send straight
// back to the sender) — and a misdelivered digest would otherwise latch the
// sender's sent-state and suppress every retry. A receiver that is not To
// bounces a Nak to the owner, which unlatches the link and retries on the
// window timer.
type digestMsg struct {
	Owner  guid.GUID `json:"owner"`
	To     guid.GUID `json:"to"`
	Nak    bool      `json:"nak,omitempty"`
	Child  bool      `json:"child,omitempty"`
	Down   bool      `json:"down,omitempty"`
	Peer   bool      `json:"peer,omitempty"`
	Remove bool      `json:"remove,omitempty"`
	// Digest is the wire.EncodeDigest binary form (absent with Remove and
	// Nak).
	Digest []byte `json:"digest,omitempty"`
}

// interestSyncMsg asks the receiving fabric to re-announce its full
// interest set to From (delta-generation gap recovery).
type interestSyncMsg struct {
	From guid.GUID `json:"from"`
}

// hierLink is one hierarchy neighbor in the routing snapshot. A nil digest
// means the link's summary is unknown and the link admits every batch
// (conservative: never a false negative).
type hierLink struct {
	id     guid.GUID
	digest *wire.Digest
}

// hierView is the lock-free snapshot of the hierarchy the fan-out and
// relay paths route by, rebuilt under f.mu whenever hierarchy state
// changes (digest arrival, activation, peer departure, close).
type hierView struct {
	active   bool
	parent   guid.GUID
	up       *wire.Digest // parent's downward digest; nil = unknown
	children []hierLink
	peers    []hierLink
}

// SetHierarchy attaches the fabric to a super-peer hierarchy (call before
// or after Join; reconfiguration replaces the previous attachment). With
// MinFleet unsatisfied the fabric stays flat until enough peers are known.
func (f *Fabric) SetHierarchy(cfg HierarchyConfig) {
	if cfg.DigestWindow <= 0 {
		cfg.DigestWindow = defaultDigestWindow
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.hier = cfg
	f.hierSet = true
	register := !f.hierStatsOn
	f.hierStatsOn = true
	f.refreshHierSnapLocked()
	f.mu.Unlock()
	if register {
		f.rng.AddStatsSource(f.hierarchyStats)
	}
	f.maybeActivateHierarchy()
}

// maybeActivateHierarchy latches the hierarchy on once the configured
// fleet size is reached. Activation withdraws this fabric's flat interest
// announcements (peers reach it through the hierarchy now) and starts the
// digest exchange.
func (f *Fabric) maybeActivateHierarchy() {
	fleet := len(f.node.Known()) + 1
	f.mu.Lock()
	if f.closed || !f.hierSet || f.hierOn || (f.hier.MinFleet > 0 && fleet < f.hier.MinFleet) {
		f.mu.Unlock()
		return
	}
	f.hierOn = true
	withdraw := len(f.local) > 0
	f.refreshHierSnapLocked()
	f.mu.Unlock()
	if withdraw {
		f.withdrawFlatAnnouncements()
	}
	f.touchDigestAnnouncements()
	f.reconcileTaps()
}

// hierSnapshot returns the current hierarchy routing view (nil while never
// configured — the flat fast path).
func (f *Fabric) hierSnapshot() *hierView {
	return f.hierSnap.Load()
}

// hierarchyActive reports whether hierarchical routing is latched on.
func (f *Fabric) hierarchyActive() bool {
	h := f.hierSnapshot()
	return h != nil && h.active
}

// refreshHierSnapLocked rebuilds the lock-free hierarchy view. Callers
// hold f.mu. The digests stored in the view are the immutable instances
// from the live tables (they are never mutated after construction), so
// sharing them lock-free is safe.
func (f *Fabric) refreshHierSnapLocked() {
	if !f.hierSet {
		return
	}
	v := &hierView{
		active: f.hierOn && !f.closed,
		parent: f.hier.Parent,
		up:     f.upDigest,
	}
	v.children = make([]hierLink, 0, len(f.childDigests))
	for id, d := range f.childDigests {
		v.children = append(v.children, hierLink{id: id, digest: d})
	}
	sort.Slice(v.children, func(i, j int) bool { return guid.Less(v.children[i].id, v.children[j].id) })
	v.peers = make([]hierLink, 0, len(f.hier.Peers))
	for _, id := range f.hier.Peers {
		v.peers = append(v.peers, hierLink{id: id, digest: f.peerDigests[id]})
	}
	f.hierSnap.Store(v)
}

// ----- digest computation -----

// localDigestInto folds this fabric's own interest filters into d. Callers
// hold f.mu. A filter with no concrete type widens to a wildcard.
func (f *Fabric) localDigestIntoLocked(d *wire.Digest) {
	for i := range f.local {
		d.AddType(string(f.local[i].flt.Type))
	}
}

// subtreeDigestLocked summarizes everything below and including this
// fabric: its own interests merged with every child's subtree digest — the
// summary announced up to the parent and level-wise to peer super-peers.
// Callers hold f.mu.
func (f *Fabric) subtreeDigestLocked() *wire.Digest {
	d := wire.NewDigest(0)
	f.localDigestIntoLocked(d)
	for _, cd := range f.childDigests {
		d.MergeFrom(cd)
	}
	return d
}

// downDigestLocked summarizes the rest of the fleet as seen by one child:
// this fabric's own interests, every *other* child's subtree, every peer
// super-peer's subtree, and the world above the parent. Unknown components
// (a peer or parent whose digest has not arrived) widen to a wildcard —
// the child must keep forwarding up rather than silently dropping.
// Callers hold f.mu.
func (f *Fabric) downDigestLocked(child guid.GUID) *wire.Digest {
	d := wire.NewDigest(0)
	f.localDigestIntoLocked(d)
	for id, cd := range f.childDigests {
		if id != child {
			d.MergeFrom(cd)
		}
	}
	if !f.hier.Parent.IsNil() {
		if f.upDigest == nil {
			d.SetWildcard()
		} else {
			d.MergeFrom(f.upDigest)
		}
	}
	for _, id := range f.hier.Peers {
		if pd := f.peerDigests[id]; pd == nil {
			d.SetWildcard()
		} else {
			d.MergeFrom(pd)
		}
	}
	return d
}

// ----- digest announcements -----

// hierLinkIDsLocked lists every hierarchy neighbor an announcement could be
// owed to: the parent, the configured peer super-peers, and every known
// child. Callers hold f.mu.
func (f *Fabric) hierLinkIDsLocked() []guid.GUID {
	out := make([]guid.GUID, 0, 1+len(f.hier.Peers)+len(f.childDigests))
	if !f.hier.Parent.IsNil() {
		out = append(out, f.hier.Parent)
	}
	out = append(out, f.hier.Peers...)
	for id := range f.childDigests {
		out = append(out, id)
	}
	return out
}

// digestCoalLocked returns the per-link digest update coalescer, creating
// it on first use. Callers hold f.mu.
func (f *Fabric) digestCoalLocked(to guid.GUID) *flow.UpdateCoalescer {
	c := f.digestCoal[to]
	if c == nil {
		c = flow.NewUpdateCoalescer(flow.UpdateConfig{
			Clock:  f.clk,
			Window: f.hier.DigestWindow,
			Send:   func() bool { return f.sendDigestTo(to) },
		})
		f.digestCoal[to] = c
	}
	return c
}

// touchDigestAnnouncements wakes the update coalescer of every hierarchy
// link: any of their summaries may have changed. Unchanged summaries are
// suppressed at send time, so over-touching costs no wire traffic.
func (f *Fabric) touchDigestAnnouncements() {
	f.mu.Lock()
	if f.closed || !f.hierOn {
		f.mu.Unlock()
		return
	}
	links := f.hierLinkIDsLocked()
	coals := make([]*flow.UpdateCoalescer, 0, len(links))
	for _, id := range links {
		coals = append(coals, f.digestCoalLocked(id))
	}
	f.mu.Unlock()
	for _, c := range coals {
		c.Touch()
	}
}

// isHierPeerLocked reports whether id is a configured peer super-peer.
// Callers hold f.mu.
func (f *Fabric) isHierPeerLocked(id guid.GUID) bool {
	for _, p := range f.hier.Peers {
		if p == id {
			return true
		}
	}
	return false
}

// sendDigestTo builds and routes the digest owed to one hierarchy link,
// stamped with the next generation. An unchanged summary is suppressed
// (the delta behavior: churn that cancels out never reaches the wire).
// Reports success; a false return makes the update coalescer retry on its
// window timer.
func (f *Fabric) sendDigestTo(to guid.GUID) bool {
	f.mu.Lock()
	if f.closed || !f.hierOn {
		f.mu.Unlock()
		return true
	}
	msg := digestMsg{Owner: f.node.ID(), To: to}
	var d *wire.Digest
	switch {
	case to == f.hier.Parent:
		msg.Child = true
		d = f.subtreeDigestLocked()
	case f.isHierPeerLocked(to):
		msg.Peer = true
		d = f.subtreeDigestLocked()
	case f.childDigests[to] != nil:
		msg.Down = true
		d = f.downDigestLocked(to)
	default:
		f.mu.Unlock()
		return true // link disappeared between touch and send
	}
	if prev := f.digestSent[to]; prev != nil && prev.Equal(d) {
		f.mu.Unlock()
		return true
	}
	f.hierGen++
	d.Gen = f.hierGen
	f.digestSent[to] = d
	f.mu.Unlock()
	msg.Digest = wire.EncodeDigest(d)
	payload, err := json.Marshal(msg)
	if err != nil {
		return true // unencodable: dropping the update is all we can do
	}
	if f.node.Route(to, appDigest, payload) != nil {
		f.mu.Lock()
		if f.digestSent[to] == d {
			delete(f.digestSent, to)
		}
		f.mu.Unlock()
		return false
	}
	f.DigestUpdatesSent.Inc()
	return true
}

// refreshDigestLinks unlatches every digest link and re-touches them —
// called when a new fleet member's coverage arrives. Routes that fell back
// to closest-node delivery before may reach their true target now that the
// overlay knows strictly more, and this also recovers the rare update whose
// bounce was itself misrouted. Steady fleets never take this path.
func (f *Fabric) refreshDigestLinks() {
	f.mu.Lock()
	if f.closed || !f.hierOn {
		f.mu.Unlock()
		return
	}
	for id := range f.digestSent {
		delete(f.digestSent, id)
	}
	f.mu.Unlock()
	f.touchDigestAnnouncements()
}

// retryDigestLink unlatches one link's sent-state after a bounced or
// looped-back update, so the next window-timer firing resends it.
func (f *Fabric) retryDigestLink(to guid.GUID) {
	if to.IsNil() {
		return
	}
	f.mu.Lock()
	if f.closed || !f.hierOn || f.digestSent[to] == nil {
		f.mu.Unlock()
		return
	}
	delete(f.digestSent, to)
	c := f.digestCoalLocked(to)
	f.mu.Unlock()
	c.Touch()
}

// handleDigest ingests one hierarchy digest announcement: it is filed by
// the sender's declared relation (child subtree, peer subtree, or the
// parent's downward rest-of-fleet summary), stale generations are
// discarded, and a change re-summarizes this fabric's own announcements
// and tap demand.
func (f *Fabric) handleDigest(d overlay.Delivery) {
	var msg digestMsg
	if json.Unmarshal(d.Payload, &msg) != nil {
		return
	}
	if msg.Nak || msg.Owner == f.node.ID() {
		// A wrong receiver bounced our update, or our own send looped back
		// (pre-Join routing with an empty table delivers locally): unlatch
		// the link so the window timer retries it.
		f.retryDigestLink(msg.To)
		return
	}
	if msg.To != f.node.ID() {
		// Misdelivered: the overlay routed the owner's update to us because
		// it did not know the real target yet. Bounce it so the owner
		// retries instead of believing the link is up to date.
		if nak, err := json.Marshal(digestMsg{Owner: f.node.ID(), To: msg.To, Nak: true}); err == nil {
			_ = f.node.Route(msg.Owner, appDigest, nak)
		}
		return
	}
	var dig *wire.Digest
	if !msg.Remove {
		var err error
		if dig, err = wire.DecodeDigest(msg.Digest); err != nil {
			return
		}
	}
	f.mu.Lock()
	if f.closed || !f.hierSet {
		f.mu.Unlock()
		return
	}
	if dig != nil {
		if last := f.digestGens[msg.Owner]; dig.Gen <= last {
			f.mu.Unlock()
			return // reordered update older than what we hold
		}
		f.digestGens[msg.Owner] = dig.Gen
	}
	changed := false
	switch {
	case msg.Child && f.hier.SuperPeer:
		if msg.Remove {
			if _, ok := f.childDigests[msg.Owner]; ok {
				delete(f.childDigests, msg.Owner)
				changed = true
			}
		} else if !dig.Equal(f.childDigests[msg.Owner]) {
			f.childDigests[msg.Owner] = dig
			changed = true
		} else {
			f.childDigests[msg.Owner] = dig
		}
	case msg.Peer && f.isHierPeerLocked(msg.Owner):
		if msg.Remove {
			if _, ok := f.peerDigests[msg.Owner]; ok {
				delete(f.peerDigests, msg.Owner)
				changed = true
			}
		} else if !dig.Equal(f.peerDigests[msg.Owner]) {
			f.peerDigests[msg.Owner] = dig
			changed = true
		} else {
			f.peerDigests[msg.Owner] = dig
		}
	case msg.Down && msg.Owner == f.hier.Parent:
		if msg.Remove {
			if f.upDigest != nil {
				f.upDigest = nil
				changed = true
			}
		} else if !dig.Equal(f.upDigest) {
			f.upDigest = dig
			changed = true
		} else {
			f.upDigest = dig
		}
	default:
		// Role mismatch (a digest from a node that is not a configured
		// relation): ignored rather than filed somewhere it could route.
	}
	if changed {
		f.refreshHierSnapLocked()
	}
	f.mu.Unlock()
	if changed {
		f.reconcileTaps()
		f.touchDigestAnnouncements()
	}
}

// ----- routing -----

// digestAdmits reports whether a link digest may cover any of the events:
// a candidate filter type is the event's type, any of its dotted
// ancestors, or any declared equivalence-class member — exactly the type
// forms Filter.MatchesIn accepts, so digest routing can over-deliver
// (false positive, counted as spillover downstream) but never starve a
// filter the flat protocol would have served. A nil digest admits
// everything (the summary has not arrived yet).
func digestAdmits(d *wire.Digest, events []event.Event, reg *ctxtype.Registry) bool {
	if d == nil || d.Wildcard() {
		return true
	}
	if d.Empty() {
		return false
	}
	for i := range events {
		for cur := events[i].Type; cur != ""; cur = cur.Parent() {
			if d.MightMatch(string(cur)) {
				return true
			}
		}
		if reg != nil {
			for _, u := range reg.EquivSet(events[i].Type) {
				if d.MightMatch(string(u)) {
					return true
				}
			}
		}
	}
	return false
}

// forwardTargets computes a batch's next hops, excluding via members: the
// flat-announced interested peers (exact filter match against the
// copy-on-write snapshot) plus, when the hierarchy is active, every
// hierarchy link whose digest admits the batch — up to the parent, down
// into matching subtrees, across to matching peer super-peers.
func (f *Fabric) forwardTargets(events []event.Event, via guid.Set) []guid.GUID {
	var out []guid.GUID
	taken := guid.NewSet()
	take := func(id guid.GUID) {
		taken.Add(id)
		out = append(out, id)
	}
	for _, ent := range f.interestSnapshot() {
		if via.Has(ent.owner) || taken.Has(ent.owner) {
			continue
		}
		if matchAny(ent.filters, events, f.rng) {
			take(ent.owner)
		}
	}
	h := f.hierSnapshot()
	if h != nil && h.active {
		reg := f.rng.Types()
		if !h.parent.IsNil() && !via.Has(h.parent) && !taken.Has(h.parent) && digestAdmits(h.up, events, reg) {
			take(h.parent)
		}
		for _, l := range h.children {
			if !via.Has(l.id) && !taken.Has(l.id) && digestAdmits(l.digest, events, reg) {
				take(l.id)
			}
		}
		for _, l := range h.peers {
			if !via.Has(l.id) && !taken.Has(l.id) && digestAdmits(l.digest, events, reg) {
				take(l.id)
			}
		}
	}
	return out
}

// noteSubtreeForward attributes one forwarded batch to the child subtree
// it entered, for the per-subtree gauges. Free on flat fabrics.
func (f *Fabric) noteSubtreeForward(to guid.GUID) {
	if f.hierSnapshot() == nil {
		return
	}
	f.mu.Lock()
	if _, ok := f.childDigests[to]; ok {
		f.childFwd[to]++
	}
	f.mu.Unlock()
}

// tapDemandLocked derives the mediator tap demand. Flat: the announced
// interest table, as before. Hierarchical: the flat table plus a prefix
// filter per digest prefix of every hierarchy link — a fabric must tap any
// local publish some subtree, peer super-peer, or the upward rest-of-fleet
// may want forwarded. An unknown or wildcard link digest forces the
// residual tap (never under-tap). Callers hold f.mu.
func (f *Fabric) tapDemandLocked() (types []ctxtype.Type, wildcard bool) {
	reg := f.rng.Types()
	if !f.hierOn {
		return desiredTapTypesLocked(f.interests, reg)
	}
	merged := make(map[guid.GUID][]event.Filter, len(f.interests)+len(f.childDigests)+len(f.hier.Peers)+1)
	for id, flts := range f.interests {
		merged[id] = flts
	}
	// addDigest folds one link digest into the demand map (as fresh filter
	// slices — never appended onto the live table's shared slices) and
	// reports whether it forces the residual tap.
	addDigest := func(id guid.GUID, d *wire.Digest) bool {
		if d == nil || d.Wildcard() {
			return true
		}
		flts := append([]event.Filter(nil), merged[id]...)
		for _, p := range d.Prefixes() {
			flts = append(flts, event.Filter{Type: ctxtype.Type(p)})
		}
		merged[id] = flts
		return false
	}
	if !f.hier.Parent.IsNil() {
		if addDigest(f.hier.Parent, f.upDigest) {
			return nil, true
		}
	}
	for id, d := range f.childDigests {
		if addDigest(id, d) {
			return nil, true
		}
	}
	for _, id := range f.hier.Peers {
		if addDigest(id, f.peerDigests[id]) {
			return nil, true
		}
	}
	return desiredTapTypesLocked(merged, reg)
}

// withdrawFlatAnnouncements retracts this fabric's flat interest entries
// from every known peer — called once at hierarchy activation, after which
// peers reach this fabric's interests through digests only.
func (f *Fabric) withdrawFlatAnnouncements() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.announceGen++
	gen := f.announceGen
	msg := interestMsg{Owner: f.node.ID(), Gen: gen, Full: true, Remove: true}
	f.mu.Unlock()
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	for _, peer := range f.node.Known() {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return
		}
		f.sentGen[peer] = gen
		f.mu.Unlock()
		_ = f.node.Route(peer, appInterest, payload)
	}
}

// ----- delta-gap recovery -----

// handleInterestSync re-announces this fabric's full interest set to a
// peer that detected a delta-generation gap (or holds a ghost entry: the
// reply is Full even when empty, clearing it).
func (f *Fabric) handleInterestSync(d overlay.Delivery) {
	var msg interestSyncMsg
	if json.Unmarshal(d.Payload, &msg) != nil || msg.From.IsNil() {
		return
	}
	f.announceFullTo(msg.From)
}

// ----- diagnostics and gauges -----

// InterestStateSize reports the per-fabric interest routing state: flat
// interest-table entries (non-empty ones — what fan-out actually scans)
// plus hierarchy digest links. The E16 sublinearity experiment plots this
// against fleet size.
func (f *Fabric) InterestStateSize() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, flts := range f.interests {
		if len(flts) > 0 {
			n++
		}
	}
	n += len(f.childDigests) + len(f.peerDigests)
	if f.upDigest != nil {
		n++
	}
	return n
}

// HierarchyCounts reports how much of the hierarchy this fabric has heard
// from: known child digests, known peer digests, and whether the parent's
// downward digest has arrived (convergence checks in tests and sims).
func (f *Fabric) HierarchyCounts() (children, peers int, upKnown bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.childDigests), len(f.peerDigests), f.upDigest != nil
}

// OverlayCounters reports the overlay node's delivered/relayed message
// counts. Summed across a fleet they measure total overlay traffic —
// E16's messages-per-publish metric.
func (f *Fabric) OverlayCounters() (delivered, relayed uint64) {
	return f.node.Delivered(), f.node.Relayed()
}

// maxSubtreeGauges bounds the per-subtree forwarding gauges, top-K plus an
// "other" bucket — same contract as the Range's per-source gauges.
const maxSubtreeGauges = 8

// subtreeCount is one per-subtree gauge entry: the child's short id (or
// "other" for the aggregated remainder) and its forwarded-batch count.
type subtreeCount struct {
	key string
	n   uint64
}

// topSubtreeForwards folds the per-child forward counts into at most
// maxSubtreeGauges labelled entries plus an "other" remainder. Callers
// hold f.mu.
//
//lint:bounded
func (f *Fabric) topSubtreeForwardsLocked() []subtreeCount {
	type kv struct {
		id guid.GUID
		n  uint64
	}
	all := make([]kv, 0, len(f.childFwd))
	for id, n := range f.childFwd {
		all = append(all, kv{id, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return guid.Less(all[i].id, all[j].id)
	})
	out := make([]subtreeCount, 0, maxSubtreeGauges+1)
	var other uint64
	for i, e := range all {
		if i < maxSubtreeGauges {
			out = append(out, subtreeCount{key: e.id.Short(), n: e.n})
			continue
		}
		other += e.n
	}
	if other > 0 {
		out = append(out, subtreeCount{key: "other", n: other})
	}
	return out
}

// hierarchyStats is the Range stats-source contributor registered by
// SetHierarchy: per-level hierarchy gauges under scinet.hier.*, with the
// per-subtree forwarding counts bounded through topSubtreeForwards.
func (f *Fabric) hierarchyStats() map[string]float64 {
	f.mu.Lock()
	out := map[string]float64{
		"scinet.hier.active":           b2f(f.hierOn),
		"scinet.hier.super":            b2f(f.hier.SuperPeer),
		"scinet.hier.level":            float64(f.hier.Level),
		"scinet.hier.children":         float64(len(f.childDigests)),
		"scinet.hier.peers":            float64(len(f.peerDigests)),
		"scinet.hier.gen":              float64(f.hierGen),
		"scinet.hier.interest_entries": float64(len(f.interests)),
	}
	for _, e := range f.topSubtreeForwardsLocked() {
		out["scinet.hier.subtree."+e.key+".forwarded"] = float64(e.n)
	}
	f.mu.Unlock()
	out["scinet.hier.spillover"] = float64(f.SpilloverDropped.Value())
	out["scinet.hier.digest_updates"] = float64(f.DigestUpdatesSent.Value())
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
