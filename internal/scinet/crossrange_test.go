package scinet

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mediator"
	"sci/internal/overlay"
	"sci/internal/query"
	"sci/internal/server"
	"sci/internal/transport"
)

// fanNet is an n-range SCINET for cross-range fan-out tests.
type fanNet struct {
	clk     *clock.Manual
	net     *transport.Memory
	ranges  []*server.Range
	fabrics []*Fabric
}

func newFanNet(t testing.TB, n, batchMax int) *fanNet {
	t.Helper()
	clk := clock.NewManual(epoch)
	net := transport.NewMemory(transport.MemoryConfig{Clock: clk})
	fn := &fanNet{clk: clk, net: net}
	for i := 0; i < n; i++ {
		rng := server.New(server.Config{
			Name:           fmt.Sprintf("r%d", i),
			Clock:          clk,
			Coverage:       location.Path(fmt.Sprintf("campus/r%d", i)),
			BatchMaxEvents: batchMax,
			BatchMaxDelay:  2 * time.Millisecond,
		})
		f, err := NewFabric(rng, net, clk)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := f.Join(fn.fabrics[0].NodeID()); err != nil {
				t.Fatal(err)
			}
		}
		fn.ranges = append(fn.ranges, rng)
		fn.fabrics = append(fn.fabrics, f)
	}
	return fn
}

func (fn *fanNet) close() {
	for _, f := range fn.fabrics {
		_ = f.Close()
	}
	for _, r := range fn.ranges {
		r.Close()
	}
	_ = fn.net.Close()
}

// counter tallies deliveries per event id, thread-safe.
type counter struct {
	mu   sync.Mutex
	seen map[guid.GUID]int
}

func newCounter() *counter { return &counter{seen: make(map[guid.GUID]int)} }

func (c *counter) handle(e event.Event) {
	c.mu.Lock()
	c.seen[e.ID]++
	c.mu.Unlock()
}

func (c *counter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.seen {
		n += v
	}
	return n
}

// exactlyOnce reports whether every one of the n expected events arrived
// exactly once.
func (c *counter) exactlyOnce(n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.seen) != n {
		return false
	}
	for _, v := range c.seen {
		if v != 1 {
			return false
		}
	}
	return true
}

func makeEvents(n int, clk clock.Clock) []event.Event {
	src := guid.New(guid.KindDevice)
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.New(ctxtype.TemperatureCelsius, src, uint64(i+1), clk.Now(),
			map[string]any{"value": float64(i)})
	}
	return out
}

func waitCoverage(t *testing.T, fn *fanNet) {
	t.Helper()
	waitFor(t, func() bool {
		for _, f := range fn.fabrics {
			if len(f.Coverage()) != len(fn.fabrics) {
				return false
			}
		}
		return true
	})
}

func (f *Fabric) hasTap() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.taps) > 0
}

func (f *Fabric) knowsInterest(owner guid.GUID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.interests[owner]
	return ok
}

// setInterests pins a fabric's interest table to exactly the given
// entries, re-asserting until no in-flight gossip disturbs it for 25ms.
func (f *Fabric) setInterests(table map[guid.GUID][]event.Filter) {
	for settled := 0; settled < 25; {
		f.mu.Lock()
		same := len(f.interests) == len(table)
		if same {
			for owner := range table {
				if _, ok := f.interests[owner]; !ok {
					same = false
					break
				}
			}
		}
		if !same {
			fresh := make(map[guid.GUID][]event.Filter, len(table))
			for owner, flts := range table {
				fresh[owner] = flts
			}
			f.interests = fresh
			f.refreshInterestSnapLocked()
		}
		f.mu.Unlock()
		if same {
			settled++
		} else {
			settled = 0
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrossRangeFanOutExactlyOnce: full interest knowledge, three ranges.
// A publishes a burst; the single subscriber in C receives every event
// exactly once, and nothing echoes back into A.
func TestCrossRangeFanOutExactlyOnce(t *testing.T) {
	fn := newFanNet(t, 3, 8)
	defer fn.close()
	fA, fB, fC := fn.fabrics[0], fn.fabrics[1], fn.fabrics[2]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fC.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return fA.knowsInterest(fC.NodeID()) && fB.knowsInterest(fC.NodeID()) && fA.hasTap()
	})

	const n = 16
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return recv.total() >= n })
	if !recv.exactlyOnce(n) {
		t.Fatalf("C deliveries not exactly-once: %d events, %d deliveries", len(recv.seen), recv.total())
	}
	// B holds no interest of its own and must not relay a batch whose hop
	// set already covers C.
	if got := fB.BatchesRelayed.Value(); got != 0 {
		t.Fatalf("B relayed %d batches with full origin knowledge", got)
	}
	if got := fA.BatchesIngested.Value(); got != 0 {
		t.Fatalf("A ingested %d of its own batches", got)
	}
}

// TestCrossRangeRelayViaMiddle: A does not know C's interest; B does. The
// batch reaches C through B's relay, exactly once, and never returns to A.
func TestCrossRangeRelayViaMiddle(t *testing.T) {
	fn := newFanNet(t, 3, 8)
	defer fn.close()
	fA, fB, fC := fn.fabrics[0], fn.fabrics[1], fn.fabrics[2]
	waitCoverage(t, fn)

	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	// B subscribes too (it is an aggregation point on the path).
	bRecv := newCounter()
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, bRecv.handle); err != nil {
		t.Fatal(err)
	}
	cRecv := newCounter()
	if _, err := fC.SubscribeRemote(guid.New(guid.KindApplication), flt, cRecv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return fA.knowsInterest(fB.NodeID()) && fA.knowsInterest(fC.NodeID()) &&
			fB.knowsInterest(fC.NodeID()) && fA.hasTap()
	})
	// Partial knowledge: A never learned of C's subscription. Re-gossiped
	// interest records may still be in flight, so delete until the entry
	// stays gone.
	for settled := 0; settled < 25; {
		fA.mu.Lock()
		_, present := fA.interests[fC.NodeID()]
		if present {
			delete(fA.interests, fC.NodeID())
			fA.refreshInterestSnapLocked()
		}
		fA.mu.Unlock()
		if present {
			settled = 0
		} else {
			settled++
		}
		time.Sleep(time.Millisecond)
	}

	const n = 8
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return cRecv.total() >= n && bRecv.total() >= n })
	// Give any stray duplicate a moment to land before asserting.
	time.Sleep(20 * time.Millisecond)
	if !cRecv.exactlyOnce(n) {
		t.Fatalf("C deliveries not exactly-once: %d events, %d deliveries", len(cRecv.seen), cRecv.total())
	}
	if !bRecv.exactlyOnce(n) {
		t.Fatalf("B deliveries not exactly-once: %d events, %d deliveries", len(bRecv.seen), bRecv.total())
	}
	if got := fB.BatchesRelayed.Value(); got == 0 {
		t.Fatal("B never relayed: C cannot have been reached via B")
	}
	if got := fA.BatchesIngested.Value(); got != 0 {
		t.Fatalf("A ingested %d batches of its own events", got)
	}
}

// TestCrossRangeCycleLoopSuppression: a directed interest ring A→B→C→A.
// A's publish travels B then C; C suppresses the hop back to A because A is
// the batch's origin and in its hop set.
func TestCrossRangeCycleLoopSuppression(t *testing.T) {
	fn := newFanNet(t, 3, 8)
	defer fn.close()
	fA, fB, fC := fn.fabrics[0], fn.fabrics[1], fn.fabrics[2]
	waitCoverage(t, fn)

	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	aRecv, bRecv, cRecv := newCounter(), newCounter(), newCounter()
	for i, h := range []struct {
		f *Fabric
		c *counter
	}{{fA, aRecv}, {fB, bRecv}, {fC, cRecv}} {
		if _, err := h.f.SubscribeRemote(guid.New(guid.KindApplication), flt, h.c.handle); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	waitFor(t, func() bool {
		return fA.knowsInterest(fB.NodeID()) && fB.knowsInterest(fC.NodeID()) &&
			fC.knowsInterest(fA.NodeID()) && fA.hasTap() && fB.hasTap() && fC.hasTap()
	})
	// Ring topology: each fabric only knows its successor's interest.
	fA.setInterests(map[guid.GUID][]event.Filter{fB.NodeID(): {flt}})
	fB.setInterests(map[guid.GUID][]event.Filter{fC.NodeID(): {flt}})
	fC.setInterests(map[guid.GUID][]event.Filter{fA.NodeID(): {flt}})

	const n = 8
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return bRecv.total() >= n && cRecv.total() >= n })
	time.Sleep(20 * time.Millisecond)
	if !aRecv.exactlyOnce(n) || !bRecv.exactlyOnce(n) || !cRecv.exactlyOnce(n) {
		t.Fatalf("ring deliveries not exactly-once: A=%d B=%d C=%d",
			aRecv.total(), bRecv.total(), cRecv.total())
	}
	if got := fB.BatchesRelayed.Value(); got == 0 {
		t.Fatal("B never relayed around the ring")
	}
	if got := fC.BatchesRelayed.Value(); got != 0 {
		t.Fatalf("C relayed %d batches: the echo to A was not suppressed", got)
	}
	if got := fA.BatchesIngested.Value(); got != 0 {
		t.Fatalf("A ingested %d batches: its own events came back", got)
	}

	// Belt and braces: a batch that somehow arrives at its own origin is
	// dropped, not ingested.
	frames := encodeFrames(makeEvents(1, fn.clk))
	payload, err := json.Marshal(eventBatchMsg{Origin: fA.NodeID(), Via: []guid.GUID{fA.NodeID()}, Events: frames})
	if err != nil {
		t.Fatal(err)
	}
	before := fA.EchoesDropped.Value()
	fA.handleEventBatch(overlay.Delivery{Origin: fC.NodeID(), AppKind: appEventBatch, Payload: payload})
	if fA.EchoesDropped.Value() != before+1 {
		t.Fatal("echo batch not counted as dropped")
	}
	if got := fA.BatchesIngested.Value(); got != 0 {
		t.Fatal("echo batch was ingested")
	}
}

// TestCrossRangeBatchBudget: N coalesced events cost exactly
// ⌈N/BatchMaxEvents⌉ overlay messages per interested peer.
func TestCrossRangeBatchBudget(t *testing.T) {
	const maxBatch, n = 8, 64
	fn := newFanNet(t, 2, maxBatch)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return recv.total() >= n })
	if !recv.exactlyOnce(n) {
		t.Fatalf("B deliveries not exactly-once: %d events, %d deliveries", len(recv.seen), recv.total())
	}
	if got, want := fA.BatchesForwarded.Value(), uint64(n/maxBatch); got != want {
		t.Fatalf("batches forwarded = %d, want %d (⌈%d/%d⌉ per peer)", got, want, n, maxBatch)
	}
	if got := fA.EventsForwarded.Value(); got != n {
		t.Fatalf("events forwarded = %d, want %d", got, n)
	}
	if got, want := fB.BatchesIngested.Value(), uint64(n/maxBatch); got != want {
		t.Fatalf("batches ingested = %d, want %d", got, want)
	}
}

// TestCrossRangeDelayFlush: a partial batch is held for BatchMaxDelay and
// flushed by the timer, not dribbled per event.
func TestCrossRangeDelayFlush(t *testing.T) {
	const maxBatch = 8
	fn := newFanNet(t, 2, maxBatch)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	const n = 3 // below the size bound: only the delay timer can flush
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.fan.PendingLen() == n })
	if got := fA.BatchesForwarded.Value(); got != 0 {
		t.Fatalf("partial batch left early: %d messages", got)
	}
	fn.clk.Advance(5 * time.Millisecond)
	waitFor(t, func() bool { return recv.total() >= n })
	if got := fA.BatchesForwarded.Value(); got != 1 {
		t.Fatalf("delay flush sent %d messages, want 1", got)
	}
	if !recv.exactlyOnce(n) {
		t.Fatalf("B deliveries not exactly-once after delay flush")
	}
}

// TestForwardedQueryProxyLifecycle covers the serving-side bookkeeping:
// served-query records replace the old write-only remote map, a failed
// query releases its proxy only when it is the owner's last, and an origin
// fabric's departure tears everything down.
func TestForwardedQueryProxyLifecycle(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	waitFor(t, func() bool {
		_, ok := tr.fLobby.CoveringNode("campus/lt/l10")
		return ok
	})

	caa := entity.NewCAA("capa", nil, tr.clk)
	if err := tr.lobby.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	q.Where.Explicit = location.AtPath("campus/lt/l10")
	if _, err := tr.fLobby.Submit(q, caa); err != nil {
		t.Fatal(err)
	}
	if got := tr.fL10.ServedQueries(); len(got) != 1 {
		t.Fatalf("served queries = %v, want 1", got)
	}
	if !tr.l10.Registrar().IsLive(caa.ID()) {
		t.Fatal("proxy CAA not registered in serving range")
	}

	// A failing query from the same owner must not tear down the live one's
	// proxy (reference counting), and must not leave a served record.
	bad := query.New(caa.ID(), query.What{Pattern: ctxtype.PrinterQueue}, query.ModeSubscribe)
	bad.Where.Explicit = location.AtPath("campus/lt/l10")
	if _, err := tr.fLobby.Submit(bad, caa); err == nil {
		t.Fatal("unsatisfiable forwarded query succeeded")
	}
	if got := tr.fL10.ServedQueries(); len(got) != 1 {
		t.Fatalf("served queries after failure = %v, want the 1 live query", got)
	}
	if !tr.l10.Registrar().IsLive(caa.ID()) {
		t.Fatal("shared proxy removed while a query from its owner is live")
	}

	// Origin departure: the serving side drops the query, its configuration
	// and the proxy registration.
	if err := tr.fLobby.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(tr.fL10.ServedQueries()) == 0 })
	waitFor(t, func() bool { return !tr.l10.Registrar().IsLive(caa.ID()) })
	waitFor(t, func() bool { return len(tr.l10.Runtime().Active()) == 0 })
}

// TestForwardedQueryErrorRemovesProxy: a query that fails outright leaves
// neither a served record nor a proxy registration behind.
func TestForwardedQueryErrorRemovesProxy(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	waitFor(t, func() bool {
		_, ok := tr.fLobby.CoveringNode("campus/lt/l10")
		return ok
	})
	caa := entity.NewCAA("capa", nil, tr.clk)
	if err := tr.lobby.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.PrinterQueue}, query.ModeSubscribe)
	q.Where.Explicit = location.AtPath("campus/lt/l10")
	if _, err := tr.fLobby.Submit(q, caa); err == nil {
		t.Fatal("unsatisfiable forwarded query succeeded")
	}
	if got := tr.fL10.ServedQueries(); len(got) != 0 {
		t.Fatalf("served queries after failed query = %v, want none", got)
	}
	waitFor(t, func() bool { return !tr.l10.Registrar().IsLive(caa.ID()) })
}

// TestForwardedQueryClosedRangeReportsError: when the serving Range cannot
// register the proxy (closed), the origin receives the error instead of the
// old silently swallowed AddApplication failure.
func TestForwardedQueryClosedRangeReportsError(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	waitFor(t, func() bool {
		_, ok := tr.fLobby.CoveringNode("campus/lt/l10")
		return ok
	})
	caa := entity.NewCAA("capa", nil, tr.clk)
	if err := tr.lobby.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	tr.l10.Close()
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	q.Where.Explicit = location.AtPath("campus/lt/l10")
	if _, err := tr.fLobby.Submit(q, caa); err == nil {
		t.Fatal("forwarded query against a closed range succeeded")
	}
	if got := tr.fL10.ServedQueries(); len(got) != 0 {
		t.Fatalf("served queries registered against a closed range: %v", got)
	}
}

// TestDuplicateBatchSuppressed: a relayed copy of an already-ingested
// batch id (two relays covering the same hop-set gap) is dropped.
func TestDuplicateBatchSuppressed(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}

	// Craft a foreign-stamped batch and deliver it twice, as two relays
	// racing to cover B would.
	events := makeEvents(4, fn.clk)
	foreign := guid.New(guid.KindRange)
	for i := range events {
		events[i].Range = foreign
	}
	msg := eventBatchMsg{
		Origin:  fA.NodeID(),
		BatchID: guid.New(guid.KindEvent),
		Via:     []guid.GUID{fA.NodeID(), fB.NodeID()},
		Events:  encodeFrames(events),
	}
	payload, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	d := overlay.Delivery{Origin: fA.NodeID(), AppKind: appEventBatch, Payload: payload}
	fB.handleEventBatch(d)
	fB.handleEventBatch(d)
	waitFor(t, func() bool { return recv.total() >= 4 })
	time.Sleep(20 * time.Millisecond)
	if !recv.exactlyOnce(4) {
		t.Fatalf("duplicate batch ingested: %d deliveries for 4 events", recv.total())
	}
	if got := fB.DuplicatesDropped.Value(); got != 1 {
		t.Fatalf("DuplicatesDropped = %d, want 1", got)
	}
	if got := fB.BatchesIngested.Value(); got != 1 {
		t.Fatalf("BatchesIngested = %d, want 1", got)
	}
}

// TestCloseFlushesPendingFanOut: a partial fan-out batch held for the
// delay timer still reaches interested peers when the fabric closes.
func TestCloseFlushesPendingFanOut(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	const n = 3 // below the size bound: held for the (manual, frozen) timer
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.fan.PendingLen() == n })
	if err := fA.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return recv.total() >= n })
	if !recv.exactlyOnce(n) {
		t.Fatalf("close flush deliveries not exactly-once: %d", recv.total())
	}
}

// TestRemoveInterestStopsForwarding: withdrawing the last interest clears
// the peer's table entry and tears down its forwarding tap.
func TestRemoveInterestStopsForwarding(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	fB.RemoveInterest(flt)
	waitFor(t, func() bool { return !fA.knowsInterest(fB.NodeID()) && !fA.hasTap() })

	if err := fn.ranges[0].PublishAll(makeEvents(8, fn.clk)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := recv.total(); got != 0 {
		t.Fatalf("withdrawn interest still delivered %d events", got)
	}
	if got := fA.BatchesForwarded.Value(); got != 0 {
		t.Fatalf("forwarded %d batches after withdrawal", got)
	}
}

// TestUnsubscribeRemoteSymmetricTeardown: cancelling through the fabric
// withdraws the interest, stops delivery, and lets the peer drop its tap.
func TestUnsubscribeRemoteSymmetricTeardown(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	rec, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	if err := fB.UnsubscribeRemote(rec); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !fA.knowsInterest(fB.NodeID()) && !fA.hasTap() })
	if err := fn.ranges[0].PublishAll(makeEvents(8, fn.clk)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := recv.total(); got != 0 {
		t.Fatalf("cancelled remote subscription still delivered %d events", got)
	}
}

// TestIngestFiltersCoBatchedEvents: a batch carrying events outside the
// receiver's interests injects only the matching ones into local dispatch.
func TestIngestFiltersCoBatchedEvents(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	// B asks only for temperature, but also has a local wildcard-ish
	// subscriber for door sightings that must never see Range-A events.
	tempRecv, doorRecv := newCounter(), newCounter()
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication),
		event.Filter{Type: ctxtype.TemperatureCelsius}, tempRecv.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := fn.ranges[1].Mediator().Subscribe(guid.New(guid.KindApplication),
		event.Filter{Type: ctxtype.LocationSightingDoor}, doorRecv.handle,
		mediator.SubOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	// Publish a mixed burst in A: temperatures plus door sightings that
	// will co-batch through the same fan-out chunks.
	src := guid.New(guid.KindDevice)
	mixed := makeEvents(8, fn.clk)
	for i := 0; i < 8; i++ {
		mixed = append(mixed, event.New(ctxtype.LocationSightingDoor, src,
			uint64(100+i), fn.clk.Now(), map[string]any{"place": "x"}))
	}
	if err := fn.ranges[0].PublishAll(mixed); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return tempRecv.total() >= 8 })
	time.Sleep(20 * time.Millisecond)
	if !tempRecv.exactlyOnce(8) {
		t.Fatalf("temperature deliveries not exactly-once: %d", tempRecv.total())
	}
	if got := doorRecv.total(); got != 0 {
		t.Fatalf("co-batched non-matching events leaked into local dispatch: %d", got)
	}
}

// TestCancelWithdrawsServedQuery: a scinet.cancel from the query's origin
// (the timeout/late-reply path) releases the serving side's record,
// configuration and proxy; a cancel from anyone else is ignored.
func TestCancelWithdrawsServedQuery(t *testing.T) {
	tr := newTwoRanges(t)
	defer tr.close()
	waitFor(t, func() bool {
		_, ok := tr.fLobby.CoveringNode("campus/lt/l10")
		return ok
	})
	caa := entity.NewCAA("capa", nil, tr.clk)
	if err := tr.lobby.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	q.Where.Explicit = location.AtPath("campus/lt/l10")
	if _, err := tr.fLobby.Submit(q, caa); err != nil {
		t.Fatal(err)
	}
	if len(tr.fL10.ServedQueries()) != 1 {
		t.Fatal("query not served")
	}

	// A forged cancel from a different fabric must not withdraw it.
	payload, err := json.Marshal(cancelMsg{QueryID: q.ID, Origin: guid.New(guid.KindServer)})
	if err != nil {
		t.Fatal(err)
	}
	tr.fL10.deliver(overlay.Delivery{AppKind: appCancel, Payload: payload})
	if len(tr.fL10.ServedQueries()) != 1 {
		t.Fatal("forged cancel withdrew the query")
	}

	// The origin's own cancel (what Submit sends on timeout) tears down.
	tr.fLobby.sendCancel(tr.fL10.NodeID(), q.ID)
	waitFor(t, func() bool { return len(tr.fL10.ServedQueries()) == 0 })
	waitFor(t, func() bool { return len(tr.l10.Runtime().Active()) == 0 })
	waitFor(t, func() bool { return !tr.l10.Registrar().IsLive(caa.ID()) })
}
