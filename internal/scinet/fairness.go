package scinet

import (
	"encoding/json"
	"sort"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/wire"
)

// ----- interest snapshot -----

// interestEntry is one peer's row of the copy-on-write interest snapshot
// fanOut and relay match against without holding f.mu: a large interest
// table must not stall batch ingest behind the fabric lock. The filter
// slices are shared with the live table, which replaces them wholesale on
// change and never mutates them in place.
type interestEntry struct {
	owner   guid.GUID
	filters []event.Filter
}

// refreshInterestSnapLocked rebuilds the snapshot from the live table,
// sorted by owner for deterministic recipient order. Called under f.mu at
// every point the interest table changes. Entries with no filters are
// skipped — they can never match, and a fleet's worth of empty rows would
// tax every flush and relay for nothing.
func (f *Fabric) refreshInterestSnapLocked() {
	snap := make([]interestEntry, 0, len(f.interests))
	for owner, flts := range f.interests {
		if len(flts) == 0 {
			continue
		}
		snap = append(snap, interestEntry{owner: owner, filters: flts})
	}
	sort.Slice(snap, func(i, j int) bool { return guid.Less(snap[i].owner, snap[j].owner) })
	f.interestSnap.Store(&snap)
}

// interestSnapshot returns the current snapshot (never nil after NewFabric).
func (f *Fabric) interestSnapshot() []interestEntry {
	if p := f.interestSnap.Load(); p != nil {
		return *p
	}
	return nil
}

// ----- credit-aware relay shedding -----

// maxRelayBacklog bounds how many relayed batch payloads wait toward one
// throttled peer before the oldest are shed.
const maxRelayBacklog = 64

// relayItem is one queued relayed batch: the encoded envelope payload plus
// the shared native batch when the events arrived un-serialized (nil on the
// legacy path, where the events are already spliced into the payload).
type relayItem struct {
	payload []byte
	batch   *wire.NativeBatch
}

// relayQueue buffers relayed batch payloads toward one peer while this
// fabric's forwarding is credit-throttled. Relayed payloads are queued
// already encoded — re-coalescing their events would mint new batch ids and
// defeat the receivers' duplicate suppression — drained in FIFO order on a
// penalty-stretched timer, and shed oldest-first beyond maxRelayBacklog, so
// a throttled relay stops amplifying load into an already-collapsed
// receiver.
type relayQueue struct {
	mu      sync.Mutex
	pending []relayItem
	timer   clock.Timer
	dead    bool
}

func (rq *relayQueue) discard() {
	rq.mu.Lock()
	rq.dead = true
	rq.pending = nil
	if rq.timer != nil {
		rq.timer.Stop()
		rq.timer = nil
	}
	rq.mu.Unlock()
}

// relayQueueFor returns the peer's relay queue, creating it on first use
// (nil once the fabric has closed).
func (f *Fabric) relayQueueFor(to guid.GUID) *relayQueue {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	rq := f.relays[to]
	if rq == nil {
		rq = &relayQueue{}
		f.relays[to] = rq
	}
	return rq
}

// relayDrainDelay is the pacing interval for a throttled relay backlog: the
// flush-delay ceiling stretched by the fan coalescer's penalty, mirroring
// how the fabric's own production is paced while peer credit is collapsed.
func (f *Fabric) relayDrainDelay() time.Duration {
	base := f.maxDelay
	if base <= 0 {
		base = f.ackWindow
	}
	if p := f.fan.Penalty(); p > 1 {
		return time.Duration(float64(base) * p)
	}
	return base
}

// relayTo forwards one relayed batch payload toward a peer: at line rate
// while forwarding is unthrottled and nothing is queued (the historical
// path), otherwise through the peer's bounded drop-oldest backlog.
func (f *Fabric) relayTo(to guid.GUID, payload []byte, batch *wire.NativeBatch) {
	rq := f.relayQueueFor(to)
	if rq == nil {
		return
	}
	if f.fan.Penalty() <= 1 {
		rq.mu.Lock()
		if !rq.dead && len(rq.pending) == 0 && rq.timer == nil {
			rq.mu.Unlock()
			if f.node.RouteBatch(to, appEventBatch, payload, batch) == nil {
				f.BatchesRelayed.Inc()
				f.noteSubtreeForward(to)
			}
			return
		}
		rq.mu.Unlock()
		// A backlog (or pending drain) exists: enqueue behind it to keep
		// per-peer FIFO order.
	}
	rq.mu.Lock()
	if rq.dead {
		rq.mu.Unlock()
		return
	}
	rq.pending = append(rq.pending, relayItem{payload: payload, batch: batch})
	if over := len(rq.pending) - maxRelayBacklog; over > 0 {
		rq.pending = append(rq.pending[:0], rq.pending[over:]...)
		f.BatchesRelayShed.Add(uint64(over))
	}
	if rq.timer == nil {
		rq.timer = f.clk.AfterFunc(f.relayDrainDelay(), func() { f.drainRelay(to, rq) })
	}
	rq.mu.Unlock()
}

// drainRelay ships the queued backlog toward one peer and re-arms while
// more arrives. The backlog bound caps each drain at maxRelayBacklog
// batches per stretched interval — the rate a collapsed receiver sees in
// place of line-rate amplification.
func (f *Fabric) drainRelay(to guid.GUID, rq *relayQueue) {
	rq.mu.Lock()
	rq.timer = nil
	if rq.dead {
		rq.mu.Unlock()
		return
	}
	pending := rq.pending
	rq.pending = nil
	rq.mu.Unlock()
	for _, it := range pending {
		if f.node.RouteBatch(to, appEventBatch, it.payload, it.batch) == nil {
			f.BatchesRelayed.Inc()
			f.noteSubtreeForward(to)
		}
	}
	rq.mu.Lock()
	if !rq.dead && len(rq.pending) > 0 && rq.timer == nil {
		rq.timer = f.clk.AfterFunc(f.relayDrainDelay(), func() { f.drainRelay(to, rq) })
	}
	rq.mu.Unlock()
}

// ----- coalesced routed-query acks -----

// noteQueryAck records an owed routed-query credit report toward one peer.
// Every (peer, query) coalescer at that peer tracks the same cumulative
// figure — the dispatch drops attributed to the peer's traffic here — so
// one shared per-peer AckCoalescer replaces the per-result-batch frames:
// ≤1 cumulative ack frame per peer per ack window however many queries and
// result batches ride the link. Query acks keep excluding Downstream
// figures: results are consumed here, not relayed, and folding unrelated
// fan-out congestion into them would throttle a healthy query stream for
// another link's collapse.
func (f *Fabric) noteQueryAck(to guid.GUID, events int) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	a := f.qacks[to]
	if a == nil {
		a = flow.NewAckCoalescer(flow.AckConfig{
			Clock:      f.clk,
			Window:     f.ackWindow,
			IdleWindow: f.ackWindow * fanAckIdleFactor,
			Figure:     func() uint64 { return f.rng.DispatchDropsFor(to) },
			Send: func(events int) bool {
				return f.sendQueryAck(to, events) == nil
			},
		})
		f.qacks[to] = a
	}
	f.mu.Unlock()
	a.Note(events)
}

// sendQueryAck routes one cumulative routed-query credit frame: QueryAck
// marks it as applying to every per-(peer, query) coalescer toward this
// fabric at the receiver.
func (f *Fabric) sendQueryAck(to guid.GUID, events int) error {
	msg := eventBatchAckMsg{
		Origin:    f.node.ID(),
		QueryAck:  true,
		Events:    events,
		Dropped:   f.rng.DispatchDropsFor(to),
		QueueFree: -1,
	}
	payload, err := json.Marshal(msg)
	if err != nil {
		return nil // unencodable: dropping the report is all we can do
	}
	err = f.node.Route(to, appEventBatchAck, payload)
	if err == nil {
		f.AcksSent.Inc()
	}
	return err
}
