package scinet

import (
	"encoding/json"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/metrics"
	"sci/internal/overlay"
)

// TestInterestRefcountSurvivesFirstWithdrawal: two SubscribeRemote calls
// sharing one filter keep the interest announced (and the peer's tap up)
// until the second cancellation — the first UnsubscribeRemote must not
// silence the survivor.
func TestInterestRefcountSurvivesFirstWithdrawal(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	first, second := newCounter(), newCounter()
	rec1, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, first.handle)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, second.handle)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	if err := fB.UnsubscribeRemote(rec1); err != nil {
		t.Fatal(err)
	}
	// Give any withdrawal gossip time to land; the interest must survive.
	time.Sleep(20 * time.Millisecond)
	if !fA.knowsInterest(fB.NodeID()) || !fA.hasTap() {
		t.Fatal("first withdrawal of a shared filter silenced the surviving subscription")
	}

	const n = 8
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return second.total() >= n })
	if !second.exactlyOnce(n) {
		t.Fatalf("survivor deliveries not exactly-once: %d", second.total())
	}
	if got := first.total(); got != 0 {
		t.Fatalf("cancelled subscription still delivered %d events", got)
	}

	// The last reference withdraws for real.
	if err := fB.UnsubscribeRemote(rec2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !fA.knowsInterest(fB.NodeID()) && !fA.hasTap() })
}

// tapTypes snapshots the fabric's live tap set.
func (f *Fabric) tapTypes() map[ctxtype.Type]bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[ctxtype.Type]bool, len(f.taps))
	for t := range f.taps {
		out[t] = true
	}
	return out
}

// TestTypedTapsRideExactIndex: a peer's typed interest produces a typed
// mediator tap that the dispatch index resolves without residual scanning,
// so cross-range forwarding stops dragging the publisher's index-hit
// ratio; a wildcard interest falls back to the residual tap.
func TestTypedTapsRideExactIndex(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })
	if taps := fA.tapTypes(); !taps[ctxtype.TemperatureCelsius] || len(taps) != 1 {
		t.Fatalf("taps = %v, want exactly the typed temperature tap", taps)
	}

	const n = 16
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return recv.total() >= n })
	if !recv.exactlyOnce(n) {
		t.Fatalf("typed-tap deliveries not exactly-once: %d", recv.total())
	}
	st := fn.ranges[0].DispatchStats()
	if st.ResidualScanned != 0 {
		t.Fatalf("typed tap still scanned the residual tier %d times", st.ResidualScanned)
	}
	if ratio := fn.ranges[0].Mediator().IndexHitRatio(); ratio != 1 {
		t.Fatalf("publisher index-hit ratio = %v with typed taps, want 1", ratio)
	}

	// A wildcard interest cannot ride the exact index: the taps collapse to
	// the single residual tap, the pre-typed-taps behaviour.
	wrec, err := fB.SubscribeRemote(guid.New(guid.KindApplication), event.Filter{}, recv.handle)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		taps := fA.tapTypes()
		return len(taps) == 1 && taps[ctxtype.Wildcard]
	})
	// Withdrawing it restores the typed tap.
	if err := fB.UnsubscribeRemote(wrec); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		taps := fA.tapTypes()
		return len(taps) == 1 && taps[ctxtype.TemperatureCelsius]
	})
}

// TestDesiredTapTypesDedup covers the tap-derivation rules: hierarchical
// overlap keeps only the shallowest covering type, any untyped filter (or
// an equivalence that would double-match one event) forces the wildcard
// fallback.
func TestDesiredTapTypesDedup(t *testing.T) {
	reg := ctxtype.NewRegistry()
	p1, p2 := guid.New(guid.KindServer), guid.New(guid.KindServer)

	// Hierarchical overlap: the ancestor covers its descendant.
	types, wildcard := desiredTapTypesLocked(map[guid.GUID][]event.Filter{
		p1: {{Type: ctxtype.TemperatureCelsius}, {Type: "temperature"}},
		p2: {{Type: ctxtype.LocationSightingDoor}},
	}, reg)
	if wildcard {
		t.Fatal("typed interests fell back to wildcard")
	}
	if len(types) != 2 || types[0] != "temperature" || types[1] != ctxtype.LocationSightingDoor {
		t.Fatalf("deduped taps = %v, want [temperature location.sighting.door]", types)
	}

	// An untyped filter forces the residual tap.
	_, wildcard = desiredTapTypesLocked(map[guid.GUID][]event.Filter{
		p1: {{Type: ctxtype.TemperatureCelsius}},
		p2: {{Source: guid.New(guid.KindDevice)}},
	}, reg)
	if !wildcard {
		t.Fatal("untyped interest did not force the wildcard tap")
	}

	// Declared equivalence between two kept types would double-forward any
	// event of either: the guard falls back to one residual tap.
	_, wildcard = desiredTapTypesLocked(map[guid.GUID][]event.Filter{
		p1: {{Type: ctxtype.LocationSightingDoor}},
		p2: {{Type: ctxtype.LocationSightingWLAN}}, // door ≡ wlan in the core registry
	}, reg)
	if !wildcard {
		t.Fatal("equivalent tap types did not force the wildcard fallback")
	}

	// No interests, no taps.
	types, wildcard = desiredTapTypesLocked(nil, reg)
	if len(types) != 0 || wildcard {
		t.Fatalf("empty table derived taps: %v %v", types, wildcard)
	}
}

func (f *Fabric) peerDropBaseline(peer guid.GUID) (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.peerDrops[peer]
	return v, ok
}

// TestFanOutAcksFlowBack: a receiving fabric acknowledges fan-out batches
// with its flow credit, and the sender records the per-peer baseline.
func TestFanOutAcksFlowBack(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	if err := fn.ranges[0].PublishAll(makeEvents(8, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return recv.total() >= 8 })
	waitFor(t, func() bool {
		_, ok := fA.peerDropBaseline(fB.NodeID())
		return ok
	})
	if fA.fan.Throttled() {
		t.Fatal("healthy acks throttled the fan-out coalescer")
	}
}

// TestReceiverOverloadThrottlesFanOut: collapsing credit reports from a
// peer reduce the sender's flush rate — size flushes stop, the stretched
// timer paces shipments — and the state is observable through the Range's
// remote.backpressure.* gauges and dispatch.stats map.
func TestReceiverOverloadThrottlesFanOut(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	recv := newCounter()
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, recv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.knowsInterest(fB.NodeID()) && fA.hasTap() })

	// Induce overload: B's receive-side drop counter climbs across acks.
	ack := func(dropped uint64) {
		payload, err := json.Marshal(eventBatchAckMsg{
			Origin: fB.NodeID(), Dropped: dropped, QueueFree: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fA.handleBatchAck(overlay.Delivery{Origin: fB.NodeID(), AppKind: appEventBatchAck, Payload: payload})
	}
	ack(0)   // baseline
	ack(50)  // 50 new drops: credit collapsed
	ack(120) // still collapsing
	if !fA.fan.Throttled() {
		t.Fatal("collapsing credit did not throttle the fan-out coalescer")
	}

	// A full batch that would normally size-flush instantly now waits for
	// the penalty-stretched timer: the flush rate fell.
	const n = 8
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fA.fan.PendingLen() == n })
	if got := fA.BatchesForwarded.Value(); got != 0 {
		t.Fatalf("throttled fan-out still size-flushed %d batches", got)
	}
	fn.clk.Advance(2 * time.Millisecond) // the unstretched BatchMaxDelay
	if got := fA.BatchesForwarded.Value(); got != 0 {
		t.Fatalf("throttled fan-out flushed at the unstretched delay")
	}
	fn.clk.Advance(32 * time.Millisecond) // penalty=4 → 8ms; generous margin
	waitFor(t, func() bool { return recv.total() >= n })
	if !recv.exactlyOnce(n) {
		t.Fatalf("throttled deliveries not exactly-once: %d", recv.total())
	}

	// Backpressure is observable: gauges and the dispatch.stats map.
	stats := fn.ranges[0].StatsMap()
	if stats["remote_backpressure_throttled"] != 1 {
		t.Fatalf("remote_backpressure_throttled = %v, want 1", stats["remote_backpressure_throttled"])
	}
	if stats["remote_backpressure_drops_reported"] != 120 {
		t.Fatalf("remote_backpressure_drops_reported = %v, want 120", stats["remote_backpressure_drops_reported"])
	}
	if stats["remote_backpressure_throttle_events"] < 2 {
		t.Fatalf("remote_backpressure_throttle_events = %v, want ≥ 2", stats["remote_backpressure_throttle_events"])
	}
	reg := new(metrics.Registry)
	fn.ranges[0].FillMetrics(reg)
	if got := reg.Gauge("remote.backpressure.throttled").Value(); got != 1 {
		t.Fatalf("remote.backpressure.throttled gauge = %d, want 1", got)
	}
	if got := reg.Gauge("remote.backpressure.drops_reported").Value(); got != 120 {
		t.Fatalf("remote.backpressure.drops_reported gauge = %d, want 120", got)
	}

	// Healthy credit recovers the flush rate (the penalty decays
	// multiplicatively, so a few clean reports are needed).
	for i := 0; i < 10 && fA.fan.Throttled(); i++ {
		ack(120)
	}
	if fA.fan.Throttled() {
		t.Fatal("healthy acks did not recover the fan-out coalescer")
	}
	if got := fn.ranges[0].StatsMap()["remote_backpressure_throttled"]; got != 0 {
		t.Fatalf("remote_backpressure_throttled = %v after recovery, want 0", got)
	}
}
