package scinet

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/overlay"
	"sci/internal/server"
	"sci/internal/transport"
	"sci/internal/wire"
)

// hierNet is an n-fabric SCINET attached to a super-peer hierarchy. Unlike
// fanNet it runs on the real clock: digest windows, batch delays and relay
// timers elapse on their own, so the big race test below can publish from
// many goroutines without anyone driving a manual clock.
type hierNet struct {
	net     *transport.Memory
	ranges  []*server.Range
	fabrics []*Fabric
}

// newHierNet builds n fabrics, applies the hierarchy spec (called with every
// fabric's node id and the fabric's index), then joins everyone through
// fabric 0.
func newHierNet(t testing.TB, n, batchMax int, spec func(ids []guid.GUID, i int) HierarchyConfig) *hierNet {
	t.Helper()
	net := transport.NewMemory(transport.MemoryConfig{})
	hn := &hierNet{net: net}
	for i := 0; i < n; i++ {
		rng := server.New(server.Config{
			Name:           fmt.Sprintf("h%d", i),
			Coverage:       location.Path(fmt.Sprintf("campus/h%d", i)),
			BatchMaxEvents: batchMax,
			BatchMaxDelay:  2 * time.Millisecond,
		})
		f, err := NewFabric(rng, net, nil)
		if err != nil {
			t.Fatal(err)
		}
		hn.ranges = append(hn.ranges, rng)
		hn.fabrics = append(hn.fabrics, f)
	}
	ids := make([]guid.GUID, n)
	for i, f := range hn.fabrics {
		ids[i] = f.NodeID()
	}
	for i, f := range hn.fabrics {
		f.SetHierarchy(spec(ids, i))
	}
	for i, f := range hn.fabrics {
		if i > 0 {
			if err := f.Join(hn.fabrics[0].NodeID()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return hn
}

func (hn *hierNet) close() {
	for _, f := range hn.fabrics {
		_ = f.Close()
	}
	for _, r := range hn.ranges {
		r.Close()
	}
	_ = hn.net.Close()
}

// digestMatches reports whether a held digest admits typ (nil = unknown =
// not yet converged, for the convergence waits below).
func digestMatches(d *wire.Digest, typ ctxtype.Type) bool {
	return d != nil && (d.Wildcard() || d.MightMatch(string(typ)))
}

func (f *Fabric) upMatches(typ ctxtype.Type) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return digestMatches(f.upDigest, typ)
}

func (f *Fabric) childMatches(child guid.GUID, typ ctxtype.Type) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return digestMatches(f.childDigests[child], typ)
}

// TestHierarchyExactlyOnceAcrossSuperPeers runs a 100-fabric fleet through
// a two-super-level hierarchy — one root, nine mid-level super-peers, ninety
// leaves — with concurrent publishers on leaves under different mids, and
// asserts every subscriber sees every event exactly once: the digest routing
// plus the Via hop set and BatchID window must not duplicate or lose a
// single delivery even while batches climb two levels and fan back down.
func TestHierarchyExactlyOnceAcrossSuperPeers(t *testing.T) {
	if testing.Short() {
		t.Skip("100-fabric fleet: skipped in -short")
	}
	const (
		mids   = 9
		leaves = 90
		total  = 1 + mids + leaves
		perPub = 25
	)
	topic := ctxtype.Type("grid.load")
	hn := newHierNet(t, total, 0, func(ids []guid.GUID, i int) HierarchyConfig {
		cfg := HierarchyConfig{DigestWindow: 5 * time.Millisecond}
		switch {
		case i == 0:
			cfg.SuperPeer = true
		case i <= mids:
			cfg.SuperPeer = true
			cfg.Parent = ids[0]
			cfg.Level = 1
		default:
			cfg.Parent = ids[1+(i-1-mids)%mids]
			cfg.Level = 2
		}
		return cfg
	})
	defer hn.close()

	root := hn.fabrics[0]
	midOf := func(leafIdx int) *Fabric { return hn.fabrics[1+(leafIdx-1-mids)%mids] }

	// Six subscribers on leaves under six different mids; four publishers on
	// other leaves, one of them sharing a mid with a subscriber so the
	// sibling short-path (leaf → mid → leaf, never reaching the root) is
	// exercised alongside the full two-level climb.
	subIdx := []int{10, 11, 12, 13, 14, 15}
	pubIdx := []int{19, 20, 21, 22}
	counters := make([]*counter, len(subIdx))
	for i, si := range subIdx {
		counters[i] = newCounter()
		c := counters[i]
		if _, err := hn.fabrics[si].SubscribeRemote(guid.New(guid.KindEntity), event.Filter{Type: topic}, c.handle); err != nil {
			t.Fatal(err)
		}
	}

	// Convergence: the root has heard from every mid, each mid from its ten
	// leaves, and the digest chain for the topic is complete along every
	// routing segment a published batch will traverse.
	waitFor(t, func() bool {
		if c, _, _ := root.HierarchyCounts(); c != mids {
			return false
		}
		for m := 1; m <= mids; m++ {
			if c, _, _ := hn.fabrics[m].HierarchyCounts(); c != leaves/mids {
				return false
			}
			if !hn.fabrics[m].upMatches(topic) {
				return false
			}
		}
		for _, si := range subIdx {
			mid := midOf(si)
			if !mid.childMatches(hn.fabrics[si].NodeID(), topic) {
				return false
			}
			if !root.childMatches(mid.NodeID(), topic) {
				return false
			}
		}
		for _, pi := range pubIdx {
			if !hn.fabrics[pi].upMatches(topic) || !hn.fabrics[pi].hasTap() {
				return false
			}
		}
		return true
	})

	// The subscribers never flat-announced: their interests travel as
	// digests only, so publishers must not hold flat entries for them.
	for _, pi := range pubIdx {
		for _, si := range subIdx {
			if hn.fabrics[pi].knowsInterest(hn.fabrics[si].NodeID()) {
				t.Fatalf("publisher %d holds a flat interest entry for subscriber %d: hierarchy did not replace flat announcements", pi, si)
			}
		}
	}

	var wg sync.WaitGroup
	for _, pi := range pubIdx {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			src := guid.New(guid.KindDevice)
			for k := 0; k < perPub; k++ {
				e := event.New(topic, src, uint64(k+1), time.Now(), map[string]any{"k": k})
				if err := hn.ranges[pi].Publish(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(pi)
	}
	wg.Wait()

	want := len(pubIdx) * perPub
	for i := range counters {
		c := counters[i]
		waitFor(t, func() bool { return c.exactlyOnce(want) })
	}
	// Late duplicates would arrive after the count is first reached: give
	// the fleet a moment and re-assert.
	time.Sleep(50 * time.Millisecond)
	for i, c := range counters {
		if !c.exactlyOnce(want) {
			t.Fatalf("subscriber %d: %d events delivered across %d ids, want %d exactly once",
				i, c.total(), len(c.seen), want)
		}
	}
}

// TestHierarchySpilloverCounted forces a digest false positive — a leaf
// whose 70 distinct interest prefixes overflow the digest into a wildcard —
// and asserts the resulting unwanted forward is dropped and counted as
// spillover, while genuinely matching events keep flowing. False positives
// must cost traffic, never correctness.
func TestHierarchySpilloverCounted(t *testing.T) {
	hn := newHierNet(t, 3, 0, func(ids []guid.GUID, i int) HierarchyConfig {
		cfg := HierarchyConfig{DigestWindow: 5 * time.Millisecond}
		if i == 0 {
			cfg.SuperPeer = true
		} else {
			cfg.Parent = ids[0]
			cfg.Level = 1
		}
		return cfg
	})
	defer hn.close()
	sub, pub := hn.fabrics[1], hn.fabrics[2]

	c := newCounter()
	for i := 0; i < 70; i++ {
		flt := event.Filter{Type: ctxtype.Type(fmt.Sprintf("w%d.x", i))}
		if _, err := sub.SubscribeRemote(guid.New(guid.KindEntity), flt, c.handle); err != nil {
			t.Fatal(err)
		}
	}

	// The overflowed digest reaches the publisher as a wildcard upward
	// summary (root's downward digest folds the subscriber's subtree in).
	waitFor(t, func() bool {
		pub.mu.Lock()
		wild := pub.upDigest != nil && pub.upDigest.Wildcard()
		pub.mu.Unlock()
		return wild && pub.hasTap()
	})

	src := guid.New(guid.KindDevice)
	if err := hn.ranges[2].Publish(event.New("nobody.cares", src, 1, time.Now(), nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sub.SpilloverDropped.Value() >= 1 })
	if got := c.total(); got != 0 {
		t.Fatalf("unmatched event delivered %d times, want spillover drop", got)
	}

	// A matching publish still lands exactly once despite the wildcard.
	if err := hn.ranges[2].Publish(event.New("w3.x", src, 2, time.Now(), nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.exactlyOnce(1) })
	if pub.DigestUpdatesSent.Value() == 0 && sub.DigestUpdatesSent.Value() == 0 {
		t.Fatal("no digest updates counted anywhere")
	}
}

// TestHierarchyMinFleetActivation keeps a configured hierarchy flat below
// MinFleet — flat interest announcements and fan-out as before — then
// latches it on when the fleet grows, withdrawing the flat entries and
// carrying later publishes through digests.
func TestHierarchyMinFleetActivation(t *testing.T) {
	topic := ctxtype.Type("grid.volt")
	net := transport.NewMemory(transport.MemoryConfig{})
	defer func() { _ = net.Close() }()
	var ranges []*server.Range
	var fabrics []*Fabric
	defer func() {
		for _, f := range fabrics {
			_ = f.Close()
		}
		for _, r := range ranges {
			r.Close()
		}
	}()
	mk := func(i int) *Fabric {
		rng := server.New(server.Config{
			Name:           fmt.Sprintf("h%d", i),
			Coverage:       location.Path(fmt.Sprintf("campus/h%d", i)),
			BatchMaxDelay:  2 * time.Millisecond,
			BatchMaxEvents: 0,
		})
		f, err := NewFabric(rng, net, nil)
		if err != nil {
			t.Fatal(err)
		}
		ranges = append(ranges, rng)
		fabrics = append(fabrics, f)
		return f
	}
	root := mk(0)
	leaf := mk(1)
	leaf.SetHierarchy(HierarchyConfig{Parent: root.NodeID(), MinFleet: 3, DigestWindow: 5 * time.Millisecond})
	root.SetHierarchy(HierarchyConfig{SuperPeer: true, MinFleet: 3, DigestWindow: 5 * time.Millisecond})
	if err := leaf.Join(root.NodeID()); err != nil {
		t.Fatal(err)
	}

	c := newCounter()
	if _, err := leaf.SubscribeRemote(guid.New(guid.KindEntity), event.Filter{Type: topic}, c.handle); err != nil {
		t.Fatal(err)
	}
	// Two fabrics < MinFleet 3: still flat, interest flat-announced.
	waitFor(t, func() bool { return root.knowsInterest(leaf.NodeID()) })
	if root.hierarchyActive() || leaf.hierarchyActive() {
		t.Fatal("hierarchy active below MinFleet")
	}
	src := guid.New(guid.KindDevice)
	if err := ranges[0].Publish(event.New(topic, src, 1, time.Now(), nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.exactlyOnce(1) })

	// A third fabric reaches MinFleet: everyone latches on, the leaf
	// withdraws its flat entry, and the digest chain replaces it.
	third := mk(2)
	third.SetHierarchy(HierarchyConfig{Parent: root.NodeID(), MinFleet: 3, DigestWindow: 5 * time.Millisecond})
	if err := third.Join(root.NodeID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return root.hierarchyActive() && leaf.hierarchyActive() && third.hierarchyActive()
	})
	waitFor(t, func() bool {
		return !root.knowsInterest(leaf.NodeID()) && root.childMatches(leaf.NodeID(), topic)
	})
	waitFor(t, func() bool { return third.upMatches(topic) && third.hasTap() })
	if err := ranges[2].Publish(event.New(topic, src, 2, time.Now(), nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.exactlyOnce(2) })
}

// interestRecorder is a bare overlay node on the fabric's memory network
// that records the appInterest announcements one fabric routes to it
// directly — the wire-level witness for the delta protocol tests.
// Re-gossiped copies relayed by other fabrics are ignored (same payload,
// different origin).
type interestRecorder struct {
	node *overlay.Node
	mu   sync.Mutex
	msgs []interestMsg
}

func newInterestRecorder(t *testing.T, fn *fanNet, from guid.GUID) *interestRecorder {
	t.Helper()
	rec := &interestRecorder{}
	node, err := overlay.NewNode(overlay.Config{
		Network: fn.net,
		Clock:   fn.clk,
		Deliver: func(d overlay.Delivery) {
			if d.AppKind != appInterest || d.Origin != from {
				return
			}
			var msg interestMsg
			if json.Unmarshal(d.Payload, &msg) != nil || msg.Owner != from {
				return
			}
			rec.mu.Lock()
			rec.msgs = append(rec.msgs, msg)
			rec.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.node = node
	if err := node.Join(fn.fabrics[0].NodeID()); err != nil {
		t.Fatal(err)
	}
	return rec
}

func (r *interestRecorder) recorded() []interestMsg {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]interestMsg(nil), r.msgs...)
}

// TestInterestDeltaAnnouncements watches the wire: after first contact
// establishes a generation-stamped full set, later single-filter changes
// must travel as deltas (Add/Del with Prev chaining), not as re-announced
// full sets.
func TestInterestDeltaAnnouncements(t *testing.T) {
	fn := newFanNet(t, 2, 0)
	defer fn.close()
	waitCoverage(t, fn)
	fb := fn.fabrics[1]

	rec := newInterestRecorder(t, fn, fb.NodeID())
	// Tell fb the recorder understands generations (a Gen-stamped hello),
	// as any delta-aware fabric would have.
	hello, err := json.Marshal(interestMsg{
		Owner: rec.node.ID(), Gen: 1, Full: true,
		Filters: []event.Filter{{Type: "hello.x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.node.Route(fb.NodeID(), appInterest, hello); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fb.knowsInterest(rec.node.ID()) })

	fltA := event.Filter{Type: "d.a"}
	fltB := event.Filter{Type: "d.b"}
	fb.AddInterest(fltA)
	waitFor(t, func() bool { return len(rec.recorded()) >= 1 })
	fb.AddInterest(fltB)
	waitFor(t, func() bool { return len(rec.recorded()) >= 2 })
	fb.RemoveInterest(fltA)
	waitFor(t, func() bool { return len(rec.recorded()) >= 3 })

	msgs := rec.recorded()
	if !msgs[0].Full || msgs[0].Gen != 1 || len(msgs[0].Filters) != 1 || msgs[0].Filters[0] != fltA {
		t.Fatalf("first announcement not the gen-1 full set: %+v", msgs[0])
	}
	if msgs[1].Full || msgs[1].Gen != 2 || msgs[1].Prev != 1 ||
		len(msgs[1].Add) != 1 || msgs[1].Add[0] != fltB || len(msgs[1].Del) != 0 {
		t.Fatalf("second announcement not the gen-2 add delta: %+v", msgs[1])
	}
	if msgs[2].Full || msgs[2].Gen != 3 || msgs[2].Prev != 2 ||
		len(msgs[2].Del) != 1 || msgs[2].Del[0] != fltA || len(msgs[2].Add) != 0 {
		t.Fatalf("third announcement not the gen-3 del delta: %+v", msgs[2])
	}
}

// TestInterestDeltaGapResync breaks a delta chain on purpose — the holder's
// generation is rolled back as if an announcement was lost — and asserts the
// next delta triggers a full resync from the owner instead of a blind apply.
func TestInterestDeltaGapResync(t *testing.T) {
	fn := newFanNet(t, 2, 0)
	defer fn.close()
	waitCoverage(t, fn)
	fa, fb := fn.fabrics[0], fn.fabrics[1]

	// fa announces once so fb knows it is delta-aware (gossip flows both
	// ways in this fleet).
	fa.AddInterest(event.Filter{Type: "x.only"})
	fltA := event.Filter{Type: "g.a"}
	fltB := event.Filter{Type: "g.b"}
	fltC := event.Filter{Type: "g.c"}
	fb.AddInterest(fltA)
	waitFor(t, func() bool {
		fb.mu.Lock()
		aware := fb.deltaAware[fa.NodeID()]
		fb.mu.Unlock()
		return aware && len(fa.Interests()[fb.NodeID()]) == 1
	})
	fb.AddInterest(fltB)
	waitFor(t, func() bool { return len(fa.Interests()[fb.NodeID()]) == 2 })

	// Roll fa back to generation 1 holding only fltA: to fa the gen-2 delta
	// now looks lost.
	fa.mu.Lock()
	fa.interestGen[fb.NodeID()] = 1
	fa.interests[fb.NodeID()] = []event.Filter{fltA}
	fa.refreshInterestSnapLocked()
	fa.mu.Unlock()

	// The next delta (gen 3, prev 2) hits the gap; fa must ask fb for the
	// full set and converge on all three filters at generation 3.
	fb.AddInterest(fltC)
	waitFor(t, func() bool {
		fa.mu.Lock()
		defer fa.mu.Unlock()
		return len(fa.interests[fb.NodeID()]) == 3 && fa.interestGen[fb.NodeID()] == 3
	})
}

// TestInterestSnapshotSkipsEmptyEntries pins the copy-on-write snapshot
// optimization: an entry with no filters can never match and must not cost
// fan-out and relay a scan slot.
func TestInterestSnapshotSkipsEmptyEntries(t *testing.T) {
	fn := newFanNet(t, 1, 0)
	defer fn.close()
	f := fn.fabrics[0]
	empty := guid.New(guid.KindServer)
	full := guid.New(guid.KindServer)
	f.mu.Lock()
	f.interests[empty] = []event.Filter{}
	f.interests[full] = []event.Filter{{Type: "s.t"}}
	f.refreshInterestSnapLocked()
	f.mu.Unlock()
	snap := f.interestSnapshot()
	if len(snap) != 1 || snap[0].owner != full {
		t.Fatalf("snapshot holds %d entries, want only the non-empty one", len(snap))
	}
}
