package scinet

// Tests for PR 6's overlay fairness work: a credit-throttled relay queues
// and sheds instead of amplifying at line rate, routed-query credit
// reports coalesce to one frame per peer per window, and the interest
// scan in fanOut/relay runs against the lock-free snapshot rather than
// under f.mu.

import (
	"encoding/json"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/overlay"
)

// injectRelayedBatch delivers a crafted fan-out batch to f as if origin had
// shipped it with the given hop set, returning the batch id.
func injectRelayedBatch(t *testing.T, f *Fabric, origin guid.GUID, via []guid.GUID, events []event.Event) guid.GUID {
	t.Helper()
	id := guid.New(guid.KindEvent)
	payload, err := json.Marshal(eventBatchMsg{
		Origin:  origin,
		BatchID: id,
		Via:     via,
		Events:  encodeFrames(events),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.handleEventBatch(overlay.Delivery{Origin: origin, AppKind: appEventBatch, Payload: payload})
	return id
}

// TestThrottledRelayShedsNotAmplifies: while B's fan-out credit is
// collapsed, batches B would relay toward C queue into a bounded
// drop-oldest backlog — counted as sheds beyond the bound — and drain in
// one capped chunk per penalty-stretched interval instead of hitting C at
// line rate.
func TestThrottledRelayShedsNotAmplifies(t *testing.T) {
	fn := newFanNet(t, 3, 8)
	defer fn.close()
	fA, fB, fC := fn.fabrics[0], fn.fabrics[1], fn.fabrics[2]
	waitCoverage(t, fn)

	// B knows only C's interest; A's hop set won't cover C, so B relays.
	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	fB.setInterests(map[guid.GUID][]event.Filter{fC.NodeID(): {flt}})

	events := makeEvents(1, fn.clk)
	for i := range events {
		events[i].Range = fn.ranges[0].ID() // stamped remote, so B ingests/relays
	}
	via := []guid.GUID{fA.NodeID(), fB.NodeID()}

	// Unthrottled: the historical line-rate path, one Route per relay.
	injectRelayedBatch(t, fB, fA.NodeID(), via, events)
	if got := fB.BatchesRelayed.Value(); got != 1 {
		t.Fatalf("unthrottled relay forwarded %d batches, want 1 at line rate", got)
	}

	// Collapse B's forwarding credit: 50 fresh drops double the penalty.
	injectAck(t, fB, fC.NodeID(), 0, 0) // baseline
	injectAck(t, fB, fC.NodeID(), 50, 0)
	if p := fB.FanoutPenalty(); p <= 1 {
		t.Fatalf("penalty = %v after fresh drops, want > 1", p)
	}

	// A relayed burst far over the backlog bound: nothing leaves at line
	// rate; the oldest beyond maxRelayBacklog are shed and attributed.
	const burst = maxRelayBacklog + 10
	for i := 0; i < burst; i++ {
		injectRelayedBatch(t, fB, fA.NodeID(), via, events)
	}
	if got := fB.BatchesRelayed.Value(); got != 1 {
		t.Fatalf("throttled relay forwarded %d batches at line rate, want 0 new", got-1)
	}
	if got := fB.BatchesRelayShed.Value(); got != burst-maxRelayBacklog {
		t.Fatalf("sheds = %d, want %d (burst %d, backlog bound %d)",
			got, burst-maxRelayBacklog, burst, maxRelayBacklog)
	}

	// The drain timer ships the bounded survivors after the
	// penalty-stretched interval (maxDelay 2ms × penalty 2).
	fn.clk.Advance(10 * time.Millisecond)
	waitFor(t, func() bool { return fB.BatchesRelayed.Value() == 1+maxRelayBacklog })
	if got := fB.BatchesRelayShed.Value(); got != burst-maxRelayBacklog {
		t.Fatalf("drain shed more: %d, want %d", got, burst-maxRelayBacklog)
	}
}

// TestRoutedQueryAckFrameBudget: a storm of routed-query result batches
// from one peer answers with a single cumulative credit frame per ack
// window — not one frame per batch — and one received QueryAck frame
// credits every per-(peer, query) coalescer toward that peer.
func TestRoutedQueryAckFrameBudget(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	// B holds a waiting consumer for a routed query it submitted to A.
	qid := guid.New(guid.KindQuery)
	sink := entity.NewCAA("sink", func(event.Event) {}, fn.clk)
	fB.mu.Lock()
	fB.consumers[qid] = &outQuery{caa: sink, target: fA.NodeID()}
	fB.mu.Unlock()

	base := fB.AcksSent.Value()
	const storm = 100
	events := makeEvents(1, fn.clk)
	for i := 0; i < storm; i++ {
		payload, err := json.Marshal(eventBatchMsg{
			Origin:  fA.NodeID(),
			QueryID: qid,
			Events:  encodeFrames(events),
		})
		if err != nil {
			t.Fatal(err)
		}
		fB.handleEventBatch(overlay.Delivery{Origin: fA.NodeID(), AppKind: appEventBatch, Payload: payload})
	}
	// Clock frozen: only the leading report leaves; the other 99 batches
	// coalesce behind it (the figure is cumulative and hasn't moved).
	if got := fB.AcksSent.Value() - base; got != 1 {
		t.Fatalf("result storm answered with %d ack frames, want 1 per window", got)
	}
	// The deferred no-news report fires once the idle window passes.
	fn.clk.Advance(fB.ackWindow * (fanAckIdleFactor + 1))
	waitFor(t, func() bool { return fB.AcksSent.Value()-base == 2 })

	// Receiver side: one cumulative QueryAck frame from B throttles every
	// per-(B, query) coalescer at A.
	q1 := fA.queueFor(fB.NodeID(), guid.New(guid.KindQuery))
	q2 := fA.queueFor(fB.NodeID(), guid.New(guid.KindQuery))
	for _, dropped := range []uint64{0, 50} { // baseline, then 50 fresh drops
		payload, err := json.Marshal(eventBatchAckMsg{
			Origin: fB.NodeID(), QueryAck: true, Dropped: dropped, QueueFree: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fA.handleBatchAck(overlay.Delivery{Origin: fB.NodeID(), AppKind: appEventBatchAck, Payload: payload})
	}
	if !q1.Throttled() || !q2.Throttled() {
		t.Fatalf("shared QueryAck credited q1=%v q2=%v, want both throttled",
			q1.Throttled(), q2.Throttled())
	}
}

// TestInterestScanRunsWithoutFabricLock: fanOut and relay match interests
// against the copy-on-write snapshot, so batch forwarding completes while
// another goroutine holds f.mu (the regression that motivated the
// snapshot: a wide interest table serialized every flush behind the
// fabric lock).
func TestInterestScanRunsWithoutFabricLock(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)

	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	fA.setInterests(map[guid.GUID][]event.Filter{fB.NodeID(): {flt}})

	events := makeEvents(2, fn.clk)
	fA.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fA.fanOut(events)
		// The relay scan too: B already in the hop set, so the scan is the
		// whole call.
		fA.relay(eventBatchMsg{
			Origin: fB.NodeID(),
			Via:    []guid.GUID{fA.NodeID(), fB.NodeID()},
			Events: encodeFrames(events),
		}, events, nil)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("interest scan blocked behind f.mu")
	}
	fA.mu.Unlock()

	if got := fA.BatchesForwarded.Value(); got == 0 {
		t.Fatal("fan-out under a held fabric lock forwarded nothing")
	}
}
