package scinet

// Tests for overlay-level transitive flow credit (PR 5): a relay folds the
// congestion it observes downstream into the acks it sends upstream, so a
// multi-hop chain throttles at the origin; per-peer baselines re-baseline
// when a peer rejoins with a reused GUID and a reset counter.

import (
	"encoding/json"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/overlay"
)

// injectAck delivers a crafted fan-out credit report to f as if peer had
// sent it.
func injectAck(t *testing.T, f *Fabric, peer guid.GUID, dropped, downstream uint64) {
	t.Helper()
	injectAckBy(t, f, peer, dropped, downstream, nil)
}

// injectAckBy additionally carries per-origin downstream accounts.
func injectAckBy(t *testing.T, f *Fabric, peer guid.GUID, dropped, downstream uint64, by map[guid.GUID]uint64) {
	t.Helper()
	payload, err := json.Marshal(eventBatchAckMsg{
		Origin: peer, Dropped: dropped, Downstream: downstream, DownstreamBy: by, QueueFree: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.handleBatchAck(overlay.Delivery{Origin: peer, AppKind: appEventBatchAck, Payload: payload})
}

// forgetUntilSettled prunes an interest entry until in-flight gossip stops
// re-adding it.
func forgetUntilSettled(f *Fabric, owner guid.GUID) {
	for settled := 0; settled < 25; {
		if f.ForgetInterest(owner) {
			settled = 0
		} else {
			settled++
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChainOriginThrottlesOnRelayDownstream: A forwards to B (A never
// learned C's interest); B relays to C. When C's credit collapses, B
// throttles toward C AND folds the observed drops into its own acks to A —
// so A, two hops from the congestion, throttles at the source.
func TestChainOriginThrottlesOnRelayDownstream(t *testing.T) {
	fn := newFanNet(t, 3, 8)
	defer fn.close()
	fA, fB, fC := fn.fabrics[0], fn.fabrics[1], fn.fabrics[2]
	waitCoverage(t, fn)

	flt := event.Filter{Type: ctxtype.TemperatureCelsius}
	bRecv, cRecv := newCounter(), newCounter()
	if _, err := fB.SubscribeRemote(guid.New(guid.KindApplication), flt, bRecv.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := fC.SubscribeRemote(guid.New(guid.KindApplication), flt, cRecv.handle); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return fA.knowsInterest(fB.NodeID()) && fB.knowsInterest(fC.NodeID()) && fA.hasTap()
	})
	// Partial knowledge: A relies on B's relay to reach C.
	forgetUntilSettled(fA, fC.NodeID())

	// Healthy round: establishes A's baseline for B (first ack is baseline
	// only) and proves the relay path.
	const n = 8
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return bRecv.total() >= n && cRecv.total() >= n })
	waitFor(t, func() bool {
		_, ok := fA.peerDropBaseline(fB.NodeID())
		return ok
	})
	if fA.fan.Throttled() || fB.fan.Throttled() {
		t.Fatal("healthy chain throttled")
	}

	// C reports mounting congestion from further downstream (a phantom
	// fourth fabric's account — a *direct* figure faked for C would be
	// truthfully reset by C's own live acks, since an account's owner is
	// authoritative for it). B must throttle its own fan-out AND remember
	// the congestion as downstream state.
	phantom := guid.New(guid.KindServer)
	injectAck(t, fB, fC.NodeID(), 0, 0) // baseline at B
	injectAckBy(t, fB, fC.NodeID(), 0, 50, map[guid.GUID]uint64{phantom: 50})
	injectAckBy(t, fB, fC.NodeID(), 0, 120, map[guid.GUID]uint64{phantom: 120})
	if !fB.fan.Throttled() {
		t.Fatal("relay did not throttle on its receiver's collapse")
	}
	if got := fB.DownstreamDrops(); got != 120 {
		t.Fatalf("relay downstream counter = %d, want 120", got)
	}

	// The next batch A ships makes B ack with the phantom's account: A —
	// which never heard from C, let alone the phantom — must throttle at
	// the source. The drop-bearing report is rate-limited to one per ack
	// window, so the manual clock runs the window out.
	if err := fn.ranges[0].PublishAll(makeEvents(n, fn.clk)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !fA.fan.Throttled() {
		if time.Now().After(deadline) {
			t.Fatal("origin never throttled on the relay-reported collapse")
		}
		fn.clk.Advance(2 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	if got := fA.DownstreamDrops(); got == 0 {
		t.Fatal("origin never folded the relay-reported congestion into its own counter")
	}
	// Observable in the origin Range's gauges.
	if got := fn.ranges[0].StatsMap()["remote_backpressure_throttled"]; got != 1 {
		t.Fatalf("origin remote_backpressure_throttled = %v, want 1", got)
	}
}

// TestDownstreamAccountsConvergeOnCycles: downstream congestion travels as
// per-origin accounts merged by max. A figure that laps a cycle — or
// returns to the fabric that first reported it — converges instead of
// being re-counted as fresh congestion on every round, and reports back to
// an account's owner exclude that account entirely. Without this, any
// bidirectional link or 3+-fabric interest ring would amplify one finite
// drop episode into a permanent mutual throttle.
func TestDownstreamAccountsConvergeOnCycles(t *testing.T) {
	fn := newFanNet(t, 3, 8)
	defer fn.close()
	fA, fB, fC := fn.fabrics[0], fn.fabrics[1], fn.fabrics[2]
	waitCoverage(t, fn)
	d := guid.New(guid.KindServer) // a 4th fabric two hops away

	// A learns of B's own congestion (direct account) and of D's (relayed
	// through B).
	injectAckBy(t, fA, fB.NodeID(), 50, 30, map[guid.GUID]uint64{d: 30})
	if got := fA.DownstreamDrops(); got != 80 {
		t.Fatalf("downstream total = %d, want 80 (B's 50 + D's 30)", got)
	}
	// Reports back to B exclude B's own account; reports to C carry both.
	if got := fA.downstreamFor(fB.NodeID()); got != 30 {
		t.Fatalf("downstreamFor(B) = %d, want 30 (B's own 50 excluded)", got)
	}
	if got := fA.downstreamFor(fC.NodeID()); got != 80 {
		t.Fatalf("downstreamFor(C) = %d, want 80", got)
	}

	// The same figures arriving again — another relay path, or a full lap
	// of a cycle — merge idempotently: no growth, no fresh delta upstream.
	injectAckBy(t, fA, fC.NodeID(), 0, 80, map[guid.GUID]uint64{fB.NodeID(): 50, d: 30})
	if got := fA.DownstreamDrops(); got != 80 {
		t.Fatalf("relayed copy re-counted: downstream total = %d, want 80", got)
	}
	// A's own account echoed back must be skipped outright.
	injectAckBy(t, fA, fC.NodeID(), 0, 999, map[guid.GUID]uint64{fA.NodeID(): 999})
	if got := fA.DownstreamDrops(); got != 80 {
		t.Fatalf("own account echoed back was folded: downstream total = %d, want 80", got)
	}
}

// TestPeerRejoinRebaselinesFanCredit: a peer that restarts under a reused
// GUID reports a regressed (reset) counter; the sender re-baselines rather
// than freezing drop detection until the fresh counter re-passes the stale
// high-water mark — and the regression itself is not read as congestion.
func TestPeerRejoinRebaselinesFanCredit(t *testing.T) {
	fn := newFanNet(t, 2, 8)
	defer fn.close()
	fA, fB := fn.fabrics[0], fn.fabrics[1]
	waitCoverage(t, fn)
	peer := fB.NodeID()

	injectAck(t, fA, peer, 1000, 0) // baseline
	injectAck(t, fA, peer, 1050, 0) // 50 fresh drops: throttled
	if !fA.fan.Throttled() {
		t.Fatal("drop delta did not throttle")
	}
	for i := 0; i < 10 && fA.fan.Throttled(); i++ {
		injectAck(t, fA, peer, 1050, 0)
	}
	if fA.fan.Throttled() {
		t.Fatal("healthy acks did not recover")
	}

	// Restart: the peer's counter resets. Regression is not congestion.
	injectAck(t, fA, peer, 0, 0)
	if fA.fan.Throttled() {
		t.Fatal("counter regression read as congestion")
	}
	// The stale 1050 baseline must be gone: 5 post-restart drops throttle
	// immediately instead of waiting for the counter to re-pass 1050.
	injectAck(t, fA, peer, 5, 0)
	if !fA.fan.Throttled() {
		t.Fatal("post-restart drops frozen behind the stale baseline")
	}
	// The peer's own account follows its authoritative (reset) counter, so
	// post-restart congestion propagates upstream instead of hiding behind
	// the stale pre-restart maximum.
	if got := fA.DownstreamDrops(); got != 5 {
		t.Fatalf("downstream account = %d, want the post-restart 5", got)
	}
}
