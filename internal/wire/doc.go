// Package wire defines the message envelope, framing and codecs used for
// all point-to-point communication in SCI.
//
// # Framing
//
// Every frame is a 4-byte big-endian length followed by at most MaxFrame
// payload bytes. Two payload encodings exist, and a frame declares its own:
// a JSON payload always begins with '{', a binary payload with the magic
// byte 0xB5 (which can never open a JSON document). A Decoder therefore
// handles arbitrarily interleaved JSON and binary frames on one connection
// with no negotiation state — negotiation only ever decides what a peer's
// Encoder emits.
//
// # JSON codec
//
// The original format: the JSON encoding of Message (src, dst, kind, corr,
// ttl, body). Every peer, of every version, decodes it. The Encoder
// assembles the envelope by hand in one pass over a pooled buffer — the
// pre-encoded Body is spliced in once, not re-validated, re-compacted and
// copied again as json.Marshal of the envelope used to do.
//
// # Binary codec
//
// The binary payload after the length prefix:
//
//	magic(0xB5) version(0x01) kindID(u8) flags(u8)
//	[kind: uvarint len + bytes]   when kindID == 0 (kind outside the table)
//	src(16 raw) dst(16 raw)
//	[corr: 16 raw]                flags bit 0
//	[ttl: zigzag varint]          flags bit 1
//	[body: uvarint len + bytes]   flags bit 2 — the kind-specific JSON body,
//	                              carried as an opaque sub-blob
//	[batch section]               flags bit 3
//
// kindID indexes the append-only kind table in binary.go (wire ABI); id 0
// means the kind string ships inline.
//
// The batch section encodes a whole event batch natively — the contiguous
// form a Message carries decoded in Message.Batch (NativeBatch):
//
//	credit: u8 present flag; when 1: events(zigzag) dropped(uvarint)
//	        queue_free(zigzag)
//	type dictionary deltas: uvarint count, each uvarint len + bytes
//	guid dictionary deltas: uvarint count, each 16 raw bytes
//	events: uvarint count, each:
//	    flags(u8: time, quality, payload present)
//	    id(16 raw — unique per event, never interned)
//	    type ref: uvarint; 0 = literal (uvarint len + bytes), n = dict[n-1]
//	    source/subject/range refs: uvarint; 0 = nil GUID,
//	        1 = literal 16 raw bytes, n = dict[n-2]
//	    seq(uvarint) [time: unixnano u64 be] [quality: float64 bits u64 be]
//	    [payload: uvarint len + JSON object bytes]
//
// # Dictionary interning
//
// Each connection direction carries two append-only dictionaries — context
// types and recurring GUIDs (source/subject/range; never event ids). The
// encoder assigns indices in first-use order and ships each entry exactly
// once, as a delta in the frame that first references it; the decoder
// appends deltas in stream order, so the index spaces stay aligned on any
// ordered byte stream. Both sides cap the dictionaries at maxDictEntries
// (overflow values ship as literals; a peer shipping more deltas than the
// cap is malformed), and the state dies with the connection: a redial
// starts empty on both ends.
//
// Steady-state binary encode is allocation-free: the frame is built in a
// reused buffer (taken from a sync.Pool at connection setup, returned when
// the connection dies), payload maps are encoded by a non-reflective
// appender with per-depth reused key slices, and dictionary hits cost a map
// lookup.
//
// # Version negotiation
//
// A dialing endpoint opens each connection with a JSON-encoded
// KindCodecHello frame listing the codecs it speaks, then waits briefly for
// the accept side's one-shot answer on the same socket (the only byte the
// accept side ever writes on an inbound connection). A codec-aware accept
// side answers with its choice (CodecHello.Chosen) and decodes whatever
// arrives next either way; a legacy accept side ignores the unknown kind —
// the same stance PR 2/PR 5 established for event.batch and credit fields —
// and the dialer's deadline expires into the JSON fallback. Forcing
// Codec "json" on an endpoint skips the hello entirely and emits strictly
// legacy frames, which doubles as an in-process stand-in for a legacy peer.
//
// Decoding is always mixed-version: unknown kinds, absent credit fields and
// JSON frames from a binary-negotiated peer all remain valid.
//
// # Native batches above this layer
//
// Message.Batch carries events decoded end to end: the memory transport
// delivers the pointer untouched, binary connections encode it as the batch
// section, and JSON connections fold it back into the legacy body with
// Materialize — for kinds that nest batches inside their own body format
// (the overlay's routed payloads), via the fold hook installed with
// RegisterBatchFolder.
package wire
