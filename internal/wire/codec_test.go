package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"time"
	"unicode/utf8"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

func testEvents(t *testing.T, n int) []event.Event {
	t.Helper()
	src := guid.New(guid.KindDevice)
	rng := guid.New(guid.KindRange)
	events := make([]event.Event, n)
	for i := range events {
		events[i] = event.New(ctxtype.TemperatureCelsius, src, uint64(i),
			time.Unix(1700000000, int64(i)*1e6), map[string]any{"value": float64(i) + 0.5})
		events[i].Range = rng
	}
	return events
}

// eventsEquivalent compares events modulo time representation (zone and
// monotonic clock are not wire properties).
func eventsEquivalent(t *testing.T, want, got []event.Event) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("event count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !w.Time.Equal(g.Time) {
			t.Fatalf("event %d time: want %v, got %v", i, w.Time, g.Time)
		}
		w.Time, g.Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("event %d: want %+v, got %+v", i, w, g)
		}
	}
}

func TestBinaryRoundTripEnvelope(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, CodecBinary)
	dec := NewDecoder(&buf)

	msgs := []Message{
		{Src: guid.New(guid.KindServer), Dst: guid.New(guid.KindServer), Kind: KindHeartbeat},
		{Src: guid.New(guid.KindServer), Dst: guid.New(guid.KindServer), Kind: KindQuery,
			Corr: guid.New(guid.KindQuery), TTL: 7, Body: json.RawMessage(`{"q":"x"}`)},
		{Src: guid.New(guid.KindServer), Dst: guid.New(guid.KindServer), Kind: Kind("custom.kind"),
			Body: json.RawMessage(`[1,2,3]`)},
	}
	for _, m := range msgs {
		if err := enc.Write(m); err != nil {
			t.Fatalf("write %s: %v", m.Kind, err)
		}
	}
	for _, want := range msgs {
		got, err := dec.Read()
		if err != nil {
			t.Fatalf("read %s: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round trip: want %+v, got %+v", want, got)
		}
	}
	if _, err := dec.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBinaryRoundTripBatch(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, CodecBinary)
	dec := NewDecoder(&buf)

	events := testEvents(t, 16)
	events[3].Subject = guid.New(guid.KindPerson)
	events[5].Quality = 0.75
	events[7].Time = time.Time{}
	events[9].Payload = nil
	events[11].Payload = map[string]any{
		"s": "text\nwith \"escapes\"", "b": true, "n": nil,
		"nested": map[string]any{"k": []any{1.0, "two", false}},
	}
	credit := &BatchCredit{Events: 16, Dropped: 42, QueueFree: -1}
	m, err := NewNativeEventBatch(guid.New(guid.KindServer), guid.New(guid.KindServer), events, credit)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(m); err != nil {
		t.Fatalf("write: %v", err)
	}
	firstLen := buf.Len()

	got, err := dec.Read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Kind != KindEventBatch || got.Batch == nil {
		t.Fatalf("expected native batch, got %+v", got)
	}
	if !reflect.DeepEqual(credit, got.Batch.Credit) {
		t.Fatalf("credit: want %+v, got %+v", credit, got.Batch.Credit)
	}
	eventsEquivalent(t, events, got.Batch.Events)
	if c, ok := got.BatchCreditInfo(); !ok || c.Dropped != 42 {
		t.Fatalf("BatchCreditInfo on native batch: %+v ok=%v", c, ok)
	}

	// A second batch over the same connection rides the dictionary: no new
	// type/GUID deltas, so the frame is much smaller.
	if err := enc.Write(m); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	secondLen := buf.Len()
	if secondLen >= firstLen {
		t.Fatalf("dictionary-interned frame not smaller: first %dB, second %dB", firstLen, secondLen)
	}
	got2, err := dec.Read()
	if err != nil {
		t.Fatalf("read 2: %v", err)
	}
	eventsEquivalent(t, events, got2.Batch.Events)
}

func TestBinaryDeterministicReencode(t *testing.T) {
	events := testEvents(t, 8)
	events[2].Payload = map[string]any{"z": 1.0, "a": "x", "m": map[string]any{"q": 2.0, "p": 3.0}}
	m, err := NewNativeEventBatch(guid.New(guid.KindServer), guid.New(guid.KindServer), events, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf1 bytes.Buffer
	if err := NewEncoder(&buf1, CodecBinary).Write(m); err != nil {
		t.Fatal(err)
	}
	decoded, err := NewDecoder(bytes.NewReader(buf1.Bytes())).Read()
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := NewEncoder(&buf2, CodecBinary).Write(decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("encode(decode(frame)) not byte-identical: %d vs %d bytes", buf1.Len(), buf2.Len())
	}
}

func TestMixedCodecStream(t *testing.T) {
	var buf bytes.Buffer
	jenc := NewEncoder(&buf, CodecJSON)
	benc := NewEncoder(&buf, CodecBinary)
	dec := NewDecoder(&buf)

	src, dst := guid.New(guid.KindServer), guid.New(guid.KindServer)
	events := testEvents(t, 4)
	native, err := NewNativeEventBatch(src, dst, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain := Message{Src: src, Dst: dst, Kind: KindHeartbeat}

	if err := jenc.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := benc.Write(native); err != nil {
		t.Fatal(err)
	}
	if err := jenc.Write(native); err != nil { // JSON encoder folds the batch
		t.Fatal(err)
	}

	if m, err := dec.Read(); err != nil || m.Kind != KindHeartbeat {
		t.Fatalf("frame 1: %+v, %v", m, err)
	}
	m2, err := dec.Read()
	if err != nil || m2.Batch == nil {
		t.Fatalf("frame 2 should be native: %+v, %v", m2, err)
	}
	m3, err := dec.Read()
	if err != nil {
		t.Fatalf("frame 3: %v", err)
	}
	if m3.Batch != nil {
		t.Fatal("JSON-encoded frame must not carry a native batch")
	}
	frames, err := m3.EventFrames()
	if err != nil || len(frames) != 4 {
		t.Fatalf("legacy frames: %d, %v", len(frames), err)
	}
	var first event.Event
	if err := json.Unmarshal(frames[0], &first); err != nil {
		t.Fatalf("legacy frame decode: %v", err)
	}
	if first.ID != events[0].ID || first.Type != events[0].Type {
		t.Fatalf("legacy frame mismatch: %+v vs %+v", first, events[0])
	}
}

func TestWriterEnvelopeMatchesJSONMarshal(t *testing.T) {
	msgs := []Message{
		{Src: guid.New(guid.KindServer), Dst: guid.New(guid.KindServer), Kind: KindHeartbeat},
		{Src: guid.New(guid.KindServer), Dst: guid.New(guid.KindDevice), Kind: KindQueryResult,
			Corr: guid.New(guid.KindQuery), TTL: 3, Body: json.RawMessage(`{"a":[1,2,{"b":"c"}]}`)},
	}
	for _, m := range msgs {
		want, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendEnvelopeJSON(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("envelope mismatch:\n marshal: %s\n  manual: %s", want, got)
		}
	}
}

func TestWriterRejectsInvalidBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	m := Message{Src: guid.New(guid.KindServer), Dst: guid.New(guid.KindServer),
		Kind: KindQuery, Body: json.RawMessage(`{"broken`)}
	if err := w.Write(m); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage for invalid body, got %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected write must emit nothing, wrote %d bytes", buf.Len())
	}
}

func TestMaterializeEventBatch(t *testing.T) {
	events := testEvents(t, 3)
	credit := &BatchCredit{Dropped: 7, QueueFree: 12}
	m, err := NewNativeEventBatch(guid.New(guid.KindServer), guid.New(guid.KindServer), events, credit)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := Materialize(m)
	if err != nil {
		t.Fatal(err)
	}
	if folded.Batch != nil {
		t.Fatal("materialized message still carries a native batch")
	}
	var body EventBatchBody
	if err := folded.DecodeBody(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Events) != 3 || body.Credit == nil || body.Credit.Dropped != 7 {
		t.Fatalf("legacy body: %+v", body)
	}
}

func TestMaterializeUnknownKindFails(t *testing.T) {
	m := Message{Src: guid.New(guid.KindServer), Dst: guid.New(guid.KindServer),
		Kind: Kind("no.folder"), Batch: &NativeBatch{Events: testEvents(t, 1)}}
	if _, err := Materialize(m); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
}

func TestDecoderCorruptInputTypedErrors(t *testing.T) {
	src, dst := guid.New(guid.KindServer), guid.New(guid.KindServer)
	events := testEvents(t, 4)
	m, err := NewNativeEventBatch(src, dst, events, &BatchCredit{Dropped: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewEncoder(&buf, CodecBinary).Write(m); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	// Truncations at every boundary must yield a typed error, never a panic.
	for cut := 0; cut < len(frame); cut++ {
		d := NewDecoder(bytes.NewReader(frame[:cut]))
		_, err := d.Read()
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
		if !isTypedWireError(err) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
	// Flipping each payload byte must never panic, and any error is typed.
	for i := 4; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0xFF
		d := NewDecoder(bytes.NewReader(mut))
		if _, err := d.Read(); err != nil && !isTypedWireError(err) {
			t.Fatalf("corruption at %d: untyped error %v", i, err)
		}
	}
}

func isTypedWireError(err error) bool {
	return errors.Is(err, ErrBadMessage) || errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, event.ErrBadEvent)
}

func TestEncoderDictRollbackOnFailedEncode(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, CodecBinary)
	dec := NewDecoder(&buf)

	bad := testEvents(t, 2)
	bad[1].Payload = map[string]any{"inf": math.Inf(1)} // unencodable
	src, dst := guid.New(guid.KindServer), guid.New(guid.KindServer)
	mBad, _ := NewNativeEventBatch(src, dst, bad, nil)
	if err := enc.Write(mBad); err == nil {
		t.Fatal("expected encode failure for Inf payload")
	}
	if buf.Len() != 0 {
		t.Fatalf("failed encode must ship nothing, wrote %d bytes", buf.Len())
	}

	// The dictionary must have rolled back: the next good frame re-ships its
	// deltas and the decoder — which never saw the failed frame — stays in
	// sync.
	good := testEvents(t, 4)
	mGood, _ := NewNativeEventBatch(src, dst, good, nil)
	if err := enc.Write(mGood); err != nil {
		t.Fatalf("write after rollback: %v", err)
	}
	got, err := dec.Read()
	if err != nil {
		t.Fatalf("read after rollback: %v", err)
	}
	eventsEquivalent(t, good, got.Batch.Events)
}

func FuzzDecoderRobustness(f *testing.F) {
	// Seed with valid frames of both codecs plus near-miss corruptions.
	src, dst := guid.New(guid.KindServer), guid.New(guid.KindServer)
	ev := event.New(ctxtype.TemperatureCelsius, guid.New(guid.KindDevice), 1,
		time.Unix(1700000000, 0), map[string]any{"value": 1.5})
	m, _ := NewNativeEventBatch(src, dst, []event.Event{ev}, &BatchCredit{Dropped: 3, QueueFree: -1})
	var bin bytes.Buffer
	_ = NewEncoder(&bin, CodecBinary).Write(m)
	f.Add(bin.Bytes())
	var js bytes.Buffer
	_ = NewEncoder(&js, CodecJSON).Write(m)
	f.Add(js.Bytes())
	f.Add([]byte{0, 0, 0, 2, magicByte, binaryVersion})
	f.Add([]byte{0, 0, 0, 1, '{'})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: a frame per loop or an error out
			msg, err := d.Read()
			if err != nil {
				if !isTypedWireError(err) && !errors.Is(err, ErrBadMessage) {
					// Allow the generic framing wrappers too.
					t.Fatalf("untyped decoder error: %v", err)
				}
				return
			}
			// Whatever decoded must re-encode on both codecs without panic.
			var sink bytes.Buffer
			_ = NewEncoder(&sink, CodecBinary).Write(msg)
			if msg.Batch == nil {
				_ = NewEncoder(&sink, CodecJSON).Write(msg)
			}
		}
	})
}

func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add("temperature.celsius", "room-1", uint64(7), 0.5, int64(1700000000), 3)
	f.Fuzz(func(t *testing.T, typ, payloadStr string, seq uint64, quality float64, unixSec int64, n int) {
		if n <= 0 || n > 64 {
			return
		}
		if math.IsNaN(quality) || math.IsInf(quality, 0) {
			return
		}
		// Invalid UTF-8 is coerced to U+FFFD by every JSON layer (ours and
		// encoding/json alike), so it cannot round-trip to the original.
		if !utf8.ValidString(typ) || !utf8.ValidString(payloadStr) {
			return
		}
		const maxSec = int64(1 << 33) // keep UnixNano in range
		if unixSec > maxSec || unixSec < -maxSec {
			return
		}
		src := guid.New(guid.KindDevice)
		events := make([]event.Event, n)
		for i := range events {
			events[i] = event.Event{
				ID: guid.New(guid.KindEvent), Type: ctxtype.Type(typ), Source: src,
				Seq: seq + uint64(i), Time: time.Unix(unixSec, int64(i)),
				Quality: quality,
				Payload: map[string]any{"s": payloadStr, "i": float64(i)},
			}
		}
		m, err := NewNativeEventBatch(src, guid.New(guid.KindServer), events, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf1 bytes.Buffer
		if err := NewEncoder(&buf1, CodecBinary).Write(m); err != nil {
			t.Skip() // unencodable inputs (e.g. huge frames) are not round-trip subjects
		}
		got, err := NewDecoder(bytes.NewReader(buf1.Bytes())).Read()
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		eventsEquivalent(t, events, got.Batch.Events)
		var buf2 bytes.Buffer
		if err := NewEncoder(&buf2, CodecBinary).Write(got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatal("round trip not byte-identical")
		}
	})
}
