package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randType builds a random dotted context type from a small alphabet of
// segments, 1–4 levels deep.
func randType(rng *rand.Rand) string {
	segs := rng.Intn(4) + 1
	var b bytes.Buffer
	for i := 0; i < segs; i++ {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "s%d", rng.Intn(50))
	}
	return b.String()
}

// TestDigestNoFalseNegatives is the digest's load-bearing property: across
// randomized filter sets — including merges and codec round trips — every
// type that was ever added must keep answering MightMatch true. A false
// positive is tolerated spillover; a false negative is a lost delivery.
func TestDigestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(120) + 1
		added := make(map[string]bool, n)
		d := NewDigest(uint64(trial))
		for i := 0; i < n; i++ {
			typ := randType(rng)
			added[typ] = true
			d.AddType(typ)
		}
		check := func(d *Digest, stage string) {
			for typ := range added {
				if !d.MightMatch(typ) {
					t.Fatalf("trial %d (%s): false negative for %q (wildcard=%v)", trial, stage, typ, d.Wildcard())
				}
			}
		}
		check(d, "fresh")

		// Round trip through the binary codec.
		dec, err := DecodeDigest(EncodeDigest(d))
		if err != nil {
			t.Fatalf("trial %d: round trip: %v", trial, err)
		}
		if !dec.Equal(d) || dec.Gen != d.Gen {
			t.Fatalf("trial %d: round trip changed digest", trial)
		}
		check(dec, "decoded")

		// Merge with a second random digest: everything from both sides
		// must survive.
		other := NewDigest(0)
		for i, m := 0, rng.Intn(80); i < m; i++ {
			typ := randType(rng)
			added[typ] = true
			other.AddType(typ)
		}
		d.MergeFrom(other)
		check(d, "merged")
	}
}

// TestDigestFalsePositiveRate bounds the other side: at realistic set
// sizes the digest must stay selective. With 2048 Bloom bits, k=4 and 120
// distinct types the analytic rate is ~0.4%; the test allows 2% across
// randomized sets (and requires the aggregate across trials to stay under
// 1%) so the fleet-level acceptance bar of <5% spillover has real margin.
func TestDigestFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Deeper types drawn from a handful of type families, so the coarse
	// prefix tier stays within DigestMaxPrefixes — the realistic fleet
	// shape (filter families share prefixes) and the Bloom tier's worst
	// case, since the prefix gate alone cannot reject the probes.
	familyType := func() string {
		return fmt.Sprintf("f%d.g%d.t%d.u%d", rng.Intn(6), rng.Intn(8), rng.Intn(40), rng.Intn(40))
	}
	var probes, fps int
	for trial := 0; trial < 50; trial++ {
		added := make(map[string]bool)
		d := NewDigest(0)
		for i := 0; i < 120; i++ {
			typ := familyType()
			added[typ] = true
			d.AddType(typ)
		}
		if d.Wildcard() {
			t.Fatalf("trial %d: 120 types overflowed to wildcard", trial)
		}
		trialProbes, trialFPs := 0, 0
		for i := 0; i < 2000; i++ {
			// Probe with types sharing the added population's prefixes but
			// (mostly) absent from the set — the worst case for the Bloom
			// tier, since the prefix gate passes.
			typ := familyType() + ".x"
			if added[typ] {
				continue
			}
			trialProbes++
			if d.MightMatch(typ) {
				trialFPs++
			}
		}
		probes += trialProbes
		fps += trialFPs
		if rate := float64(trialFPs) / float64(trialProbes); rate > 0.02 {
			t.Fatalf("trial %d: false-positive rate %.4f > 0.02", trial, rate)
		}
	}
	if rate := float64(fps) / float64(probes); rate > 0.01 {
		t.Fatalf("aggregate false-positive rate %.4f > 0.01 (%d/%d)", rate, fps, probes)
	}
}

func TestDigestWildcardAndOverflow(t *testing.T) {
	d := NewDigest(3)
	d.AddType("a.b.c")
	d.AddType("") // unbounded interest
	if !d.Wildcard() || !d.MightMatch("anything.at.all") {
		t.Fatal("empty type must widen the digest to a wildcard")
	}
	dec, err := DecodeDigest(EncodeDigest(d))
	if err != nil || !dec.Wildcard() || dec.Gen != 3 {
		t.Fatalf("wildcard round trip: %v wildcard=%v gen=%d", err, dec.Wildcard(), dec.Gen)
	}

	// Prefix overflow degrades to wildcard instead of dropping entries.
	d = NewDigest(0)
	for i := 0; i <= DigestMaxPrefixes; i++ {
		d.AddType(fmt.Sprintf("p%d.leaf", i))
	}
	if !d.Wildcard() {
		t.Fatal("prefix overflow must degrade to wildcard")
	}

	// Merging past the bound degrades the same way.
	a, b := NewDigest(0), NewDigest(0)
	for i := 0; i < DigestMaxPrefixes; i++ {
		a.AddType(fmt.Sprintf("a%d.leaf", i))
		b.AddType(fmt.Sprintf("b%d.leaf", i))
	}
	a.MergeFrom(b)
	if !a.Wildcard() {
		t.Fatal("merge overflow must degrade to wildcard")
	}
}

func TestDigestEmptyAndEqual(t *testing.T) {
	var empty Digest
	if !empty.Empty() || empty.MightMatch("a.b") {
		t.Fatal("zero digest must match nothing")
	}
	dec, err := DecodeDigest(EncodeDigest(&empty))
	if err != nil || !dec.Empty() {
		t.Fatalf("empty round trip: %v", err)
	}

	a, b := NewDigest(1), NewDigest(2)
	a.AddType("x.y.z")
	b.AddType("x.y.z")
	if !a.Equal(b) {
		t.Fatal("Equal must ignore generations")
	}
	b.AddType("q.r")
	if a.Equal(b) {
		t.Fatal("Equal must see the widened digest")
	}
}

func TestDecodeDigestRejectsMalformed(t *testing.T) {
	good := func() *Digest {
		d := NewDigest(9)
		d.AddType("a.b.c")
		return d
	}
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      {0x00, digestVersion, 0},
		"bad version":    {digestMagic, 0x7f, 0},
		"truncated":      EncodeDigest(good())[:5],
		"trailing":       append(EncodeDigest(good()), 0xff),
		"missing bloom":  {digestMagic, digestVersion, 0, 0 /*gen*/, 1 /*nprefixes*/, 1, 'a'},
		"overlong count": {digestMagic, digestVersion, 0, 0, 0xff, 0xff, 0x03},
	}
	for name, raw := range cases {
		if _, err := DecodeDigest(raw); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// FuzzDigestDecode pairs the round-trip property with decoder robustness:
// a valid encoding must survive unchanged, and arbitrary bytes must never
// panic or produce a digest that forgets a declared type.
func FuzzDigestDecode(f *testing.F) {
	seedDigest := NewDigest(42)
	seedDigest.AddType("building.floor3.temperature")
	seedDigest.AddType("badge.seen")
	f.Add(EncodeDigest(seedDigest))
	f.Add(EncodeDigest(NewDigest(0)))
	f.Add([]byte{digestMagic, digestVersion, 0})
	f.Add([]byte{digestMagic, digestVersion, digestFlagWildcard, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDigest(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to an equal digest.
		back, err := DecodeDigest(EncodeDigest(d))
		if err != nil {
			t.Fatalf("re-decode of valid digest failed: %v", err)
		}
		if !back.Equal(d) || back.Gen != d.Gen {
			t.Fatal("re-encode changed the digest")
		}
	})
}
