package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"sci/internal/guid"
)

func mkMsg(t *testing.T, kind Kind, body any) Message {
	t.Helper()
	m, err := NewMessage(guid.New(guid.KindServer), guid.New(guid.KindEntity), kind, body)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMessageAndDecodeBody(t *testing.T) {
	type payload struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	m := mkMsg(t, KindQuery, payload{Name: "bob", N: 7})
	var out payload
	if err := m.DecodeBody(&out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "bob" || out.N != 7 {
		t.Fatalf("body round trip: %+v", out)
	}
}

func TestNewMessageNilBody(t *testing.T) {
	m := mkMsg(t, KindHeartbeat, nil)
	if len(m.Body) != 0 {
		t.Fatal("nil body should produce empty Body")
	}
	var out map[string]any
	if err := m.DecodeBody(&out); err == nil {
		t.Fatal("DecodeBody on empty body should error")
	}
}

func TestNewMessageUnmarshalableBody(t *testing.T) {
	_, err := NewMessage(guid.New(guid.KindServer), guid.Nil, KindQuery, make(chan int))
	if err == nil {
		t.Fatal("channel body accepted")
	}
}

func TestReply(t *testing.T) {
	m := mkMsg(t, KindQuery, map[string]string{"q": "x"})
	m.Corr = guid.New(guid.KindQuery)
	r, err := m.Reply(KindQueryResult, map[string]string{"a": "y"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Src != m.Dst || r.Dst != m.Src {
		t.Fatal("reply did not swap endpoints")
	}
	if r.Corr != m.Corr {
		t.Fatal("reply lost correlation")
	}
	if r.Kind != KindQueryResult {
		t.Fatal("reply kind wrong")
	}
}

func TestValidate(t *testing.T) {
	m := mkMsg(t, KindEvent, nil)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.Kind = ""
	if bad.Validate() == nil {
		t.Fatal("empty kind accepted")
	}
	bad = m
	bad.Src = guid.Nil
	if bad.Validate() == nil {
		t.Fatal("nil src accepted")
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msgs := []Message{
		mkMsg(t, KindRegister, map[string]string{"name": "ce1"}),
		mkMsg(t, KindHeartbeat, nil),
		mkMsg(t, KindQuery, map[string]any{"what": "printer", "mode": "subscribe"}),
	}
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Src != want.Src || got.Dst != want.Dst {
			t.Fatalf("read %d mismatch: %v vs %v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected io.EOF at stream end, got %v", err)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Message{}); err == nil {
		t.Fatal("invalid message written")
	}
}

func TestReaderFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxFrame+1)
	buf.Write(lenBuf[:])
	r := NewReader(&buf)
	if _, err := r.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestReaderTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], 100)
	buf.Write(lenBuf[:])
	buf.WriteString("short")
	r := NewReader(&buf)
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated frame: got %v, want unexpected-EOF error", err)
	}
}

func TestReaderGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("this is not json")
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	buf.Write(lenBuf[:])
	buf.Write(payload)
	r := NewReader(&buf)
	if _, err := r.Read(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
}

func TestReaderInvalidEnvelope(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"kind":""}`)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	buf.Write(lenBuf[:])
	buf.Write(payload)
	r := NewReader(&buf)
	if _, err := r.Read(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		r := NewReader(conn)
		w := NewWriter(conn)
		for {
			m, err := r.Read()
			if err != nil {
				if errors.Is(err, io.EOF) {
					done <- nil
				} else {
					done <- err
				}
				return
			}
			reply, err := m.Reply(KindQueryResult, map[string]string{"echo": string(m.Kind)})
			if err != nil {
				done <- err
				return
			}
			if err := w.Write(reply); err != nil {
				done <- err
				return
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(conn)
	r := NewReader(conn)
	for i := 0; i < 10; i++ {
		m := mkMsg(t, KindQuery, map[string]int{"i": i})
		m.Corr = guid.New(guid.KindQuery)
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got.Corr != m.Corr {
			t.Fatal("correlation lost over TCP")
		}
		var body map[string]string
		if err := got.DecodeBody(&body); err != nil {
			t.Fatal(err)
		}
		if body["echo"] != string(KindQuery) {
			t.Fatalf("echo = %q", body["echo"])
		}
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// Property: write-then-read is the identity for arbitrary string bodies.
func TestPropRoundTripArbitraryBodies(t *testing.T) {
	f := func(key, val string, ttl uint8) bool {
		// JSON strings must be valid UTF-8; quick may generate invalid
		// sequences, so sanitise.
		key = strings.ToValidUTF8(key, "?")
		val = strings.ToValidUTF8(val, "?")
		m, err := NewMessage(guid.New(guid.KindServer), guid.New(guid.KindEntity),
			KindEvent, map[string]string{key: val})
		if err != nil {
			return false
		}
		m.TTL = int(ttl)
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(m); err != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		var body map[string]string
		if err := got.DecodeBody(&body); err != nil {
			return false
		}
		return got.Src == m.Src && got.Dst == m.Dst && got.TTL == m.TTL && body[key] == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	m, err := NewMessage(guid.New(guid.KindServer), guid.New(guid.KindEntity),
		KindEvent, map[string]string{"door": "L10.01"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := NewWriter(&buf).Write(m); err != nil {
			b.Fatal(err)
		}
		if _, err := NewReader(&buf).Read(); err != nil {
			b.Fatal(err)
		}
	}
}
