package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"sci/internal/event"
	"sci/internal/guid"
)

// Codec names a frame encoding. The decoder never needs to be told which
// one a peer uses — every binary frame leads with a magic byte that cannot
// begin a JSON document — so negotiation only ever gates the encoder.
type Codec string

const (
	// CodecJSON is the original length-prefixed JSON envelope. Every peer
	// speaks it; it is the fallback when negotiation fails or is skipped.
	CodecJSON Codec = "json"
	// CodecBinary is the length-prefixed binary envelope with native batch
	// sections and per-connection interned dictionaries (see doc.go).
	CodecBinary Codec = "binary"
)

// NativeBatch is a whole event batch carried in decoded form on a Message.
// The slice is handed over: once attached to a Message given to a transport
// the caller must neither mutate nor append to it (the in-process memory
// transport delivers it pointer-identical, possibly to several receivers),
// and receivers must copy events before modifying them.
type NativeBatch struct {
	// Events are the batched events, ordered as published.
	Events []event.Event
	// Credit optionally piggybacks the sender's receive-side flow-control
	// report, exactly like EventBatchBody.Credit on the JSON form.
	Credit *BatchCredit
}

// EncodeFrames marshals the batch's events to the per-event JSON frames the
// legacy body format carries.
func (nb *NativeBatch) EncodeFrames() ([]json.RawMessage, error) {
	if nb == nil || len(nb.Events) == 0 {
		return nil, fmt.Errorf("%w: empty event batch", ErrBadMessage)
	}
	frames := make([]json.RawMessage, len(nb.Events))
	for i := range nb.Events {
		raw, err := json.Marshal(nb.Events[i])
		if err != nil {
			return nil, fmt.Errorf("wire: marshal event: %w", err)
		}
		frames[i] = raw
	}
	return frames, nil
}

// NewNativeEventBatch builds a KindEventBatch message carrying the events
// natively. The events slice is handed over to the message (see
// NativeBatch); credit may be nil.
func NewNativeEventBatch(src, dst guid.GUID, events []event.Event, credit *BatchCredit) (Message, error) {
	if len(events) == 0 {
		return Message{}, fmt.Errorf("%w: empty event batch", ErrBadMessage)
	}
	return Message{
		Src: src, Dst: dst, Kind: KindEventBatch,
		Batch: &NativeBatch{Events: events, Credit: credit},
	}, nil
}

// BatchFolder rewrites a message whose native batch must be folded back
// into its kind-specific JSON body for a legacy peer. It receives the
// message with Batch already detached, the batch's events encoded as
// per-event frames, and the batch credit; it returns the JSON-only form.
// Layers that nest batches inside their own body formats (the overlay's
// routed payloads) register one per kind.
type BatchFolder func(m Message, frames []json.RawMessage, credit *BatchCredit) (Message, error)

var (
	folderMu sync.RWMutex
	folders  = make(map[Kind]BatchFolder)
)

// RegisterBatchFolder installs the legacy fold for one message kind.
// KindEventBatch needs none — its body format is this package's own.
func RegisterBatchFolder(k Kind, f BatchFolder) {
	folderMu.Lock()
	defer folderMu.Unlock()
	folders[k] = f
}

func folderFor(k Kind) BatchFolder {
	folderMu.RLock()
	defer folderMu.RUnlock()
	return folders[k]
}

// Materialize folds a native batch back into the legacy JSON-only message
// form: the exact frames and body layout a pre-binary peer expects. A
// message without a batch passes through unchanged.
func Materialize(m Message) (Message, error) {
	if m.Batch == nil {
		return m, nil
	}
	frames, err := m.Batch.EncodeFrames()
	if err != nil {
		return Message{}, err
	}
	credit := m.Batch.Credit
	out := m
	out.Batch = nil
	if m.Kind == KindEventBatch {
		body, err := json.Marshal(EventBatchBody{Events: frames, Credit: credit})
		if err != nil {
			return Message{}, fmt.Errorf("wire: marshal batch body: %w", err)
		}
		out.Body = body
		return out, nil
	}
	if f := folderFor(m.Kind); f != nil {
		return f(out, frames, credit)
	}
	return Message{}, fmt.Errorf("%w: no batch folder registered for kind %s", ErrBadMessage, m.Kind)
}

// CodecHello is the body of a KindCodecHello frame: the dialer's offer
// (Codecs, preferred first) or the accept side's answer (Chosen).
type CodecHello struct {
	Codecs []Codec `json:"codecs,omitempty"`
	Chosen Codec   `json:"chosen,omitempty"`
}

// NewCodecHello builds the dialer's opening offer. It is always encoded as
// JSON so a legacy peer can at least parse the envelope it ignores.
func NewCodecHello(src, dst guid.GUID, codecs ...Codec) (Message, error) {
	return NewMessage(src, dst, KindCodecHello, CodecHello{Codecs: codecs})
}

// NewCodecHelloAck builds the accept side's one-shot answer to an offer.
func NewCodecHelloAck(offer Message, chosen Codec) (Message, error) {
	return offer.Reply(KindCodecHello, CodecHello{Chosen: chosen})
}

// ChooseCodec picks the first offered codec this implementation speaks,
// falling back to JSON.
func ChooseCodec(offered []Codec) Codec {
	for _, c := range offered {
		if c == CodecBinary || c == CodecJSON {
			return c
		}
	}
	return CodecJSON
}

// frameBufPool recycles encode/decode frame buffers across connection
// churn: an Encoder or Decoder takes its buffers from the pool on first use
// and keeps them for its lifetime (steady state touches the pool not at
// all), and Release returns them when the connection dies so redials and
// accept-side turnover stop paying the warm-up allocations.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func poolGetBuf() []byte  { return (*(frameBufPool.Get().(*[]byte)))[:0] }
func poolPutBuf(b []byte) { b = b[:0]; frameBufPool.Put(&b) }

// Encoder frames messages onto an io.Writer with a selectable codec. Not
// safe for concurrent use; callers serialise (internal/transport does).
type Encoder struct {
	bw     *bufio.Writer
	codec  Codec
	lenBuf [4]byte
	bytes  atomic.Uint64

	// Reused encode state (taken from frameBufPool on first use).
	scratch    []byte
	payloadBuf []byte
	keyStack   [][]string

	// Per-connection interning dictionaries for the binary codec: types and
	// GUIDs already shipped to the peer, by index. newTypes/newGUIDs are the
	// current frame's dictionary deltas, kept for rollback when an encode
	// fails before the frame ships.
	types    map[string]uint32
	guids    map[guid.GUID]uint32
	newTypes []string
	newGUIDs []guid.GUID
}

// NewEncoder wraps w with the given codec ("" means JSON).
func NewEncoder(w io.Writer, codec Codec) *Encoder {
	if codec == "" {
		codec = CodecJSON
	}
	return &Encoder{bw: bufio.NewWriter(w), codec: codec}
}

// Codec reports the encoder's active codec.
func (e *Encoder) Codec() Codec { return e.codec }

// SetCodec switches the encoder's codec — the dial-side transition after a
// successful hello exchange. Dictionaries reset: the peer's decoder state
// starts empty with the connection.
func (e *Encoder) SetCodec(c Codec) {
	if c == "" {
		c = CodecJSON
	}
	e.codec = c
	e.types, e.guids = nil, nil
	e.newTypes, e.newGUIDs = nil, nil
}

// BytesWritten reports the cumulative bytes this encoder has put on the
// wire, length prefixes included. Safe to read concurrently with Write.
func (e *Encoder) BytesWritten() uint64 { return e.bytes.Load() }

// Release returns the encoder's pooled buffers; the encoder must not be
// used afterwards. Called when the owning connection dies.
func (e *Encoder) Release() {
	if e.scratch != nil {
		poolPutBuf(e.scratch)
		e.scratch = nil
	}
	if e.payloadBuf != nil {
		poolPutBuf(e.payloadBuf)
		e.payloadBuf = nil
	}
}

// Write frames and flushes one message. A native batch is encoded in place
// on the binary codec and folded to the legacy body format (Materialize) on
// the JSON codec, so callers attach batches without caring what the
// connection negotiated.
func (e *Encoder) Write(m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if e.scratch == nil {
		e.scratch = poolGetBuf()
	}
	var err error
	if e.codec == CodecBinary {
		e.scratch, err = e.appendBinary(e.scratch[:0], m)
		if err == nil && len(e.scratch) > MaxFrame {
			err = ErrFrameTooLarge
		}
		if err != nil {
			e.rollbackDict()
			return err
		}
		e.commitDict()
	} else {
		if m.Batch != nil {
			if m, err = Materialize(m); err != nil {
				return err
			}
		}
		e.scratch, err = appendEnvelopeJSON(e.scratch[:0], m)
		if err != nil {
			return err
		}
		if len(e.scratch) > MaxFrame {
			return ErrFrameTooLarge
		}
	}
	binary.BigEndian.PutUint32(e.lenBuf[:], uint32(len(e.scratch)))
	if _, err := e.bw.Write(e.lenBuf[:]); err != nil {
		return fmt.Errorf("wire: write length: %w", err)
	}
	if _, err := e.bw.Write(e.scratch); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if err := e.bw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	e.bytes.Add(uint64(len(e.scratch)) + 4)
	return nil
}

// Decoder unframes messages from an io.Reader, detecting each frame's codec
// from its leading byte (binary frames open with a magic byte that can
// never begin a JSON document), so one connection may interleave both. Not
// safe for concurrent use.
type Decoder struct {
	br     *bufio.Reader
	lenBuf [4]byte
	bytes  atomic.Uint64

	// buf is the reused binary-frame buffer (decoded fields are copied out,
	// so the frame memory never escapes a Read). JSON frames still allocate
	// per frame: their Body aliases the frame buffer by design.
	buf []byte

	// Per-connection mirror of the peer encoder's interning dictionaries,
	// appended to in stream order from each frame's dictionary deltas.
	types []string
	guids []guid.GUID
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReader(r)}
}

// BytesRead reports the cumulative bytes this decoder has consumed, length
// prefixes included. Safe to read concurrently with Read.
func (d *Decoder) BytesRead() uint64 { return d.bytes.Load() }

// Release returns the decoder's pooled buffer; the decoder must not be used
// afterwards.
func (d *Decoder) Release() {
	if d.buf != nil {
		poolPutBuf(d.buf)
		d.buf = nil
	}
}

// Read reads one framed message. On clean EOF between frames it returns
// io.EOF; a truncated frame yields io.ErrUnexpectedEOF; a corrupt frame a
// typed error wrapping ErrBadMessage (never a panic).
func (d *Decoder) Read() (Message, error) {
	if _, err := io.ReadFull(d.br, d.lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("wire: read length: %w", err)
	}
	n := int(binary.BigEndian.Uint32(d.lenBuf[:]))
	if n > MaxFrame {
		return Message{}, ErrFrameTooLarge
	}
	if n == 0 {
		return Message{}, fmt.Errorf("%w: empty frame", ErrBadMessage)
	}
	first, err := d.br.Peek(1)
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Message{}, fmt.Errorf("wire: read frame: %w", err)
	}
	if first[0] == magicByte {
		if d.buf == nil {
			d.buf = poolGetBuf()
		}
		if cap(d.buf) < n {
			poolPutBuf(d.buf)
			d.buf = make([]byte, n)
		}
		data := d.buf[:n]
		if _, err := io.ReadFull(d.br, data); err != nil {
			return Message{}, fmt.Errorf("wire: read frame: %w", err)
		}
		d.bytes.Add(uint64(n) + 4)
		return d.decodeBinaryFrame(data)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(d.br, data); err != nil {
		return Message{}, fmt.Errorf("wire: read frame: %w", err)
	}
	d.bytes.Add(uint64(n) + 4)
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	return m, nil
}
