package wire

// Interest digests are the hierarchical counterpart of the flat interest
// table: a fabric summarizes the event-filter types of a whole subtree as a
// small fixed-cost structure — a set of coarsened ctxtype prefixes plus a
// Bloom filter over the full type strings — that a super-peer can merge,
// re-summarize and forward instead of re-gossiping every peer's full filter
// set. The contract is one-sided: a digest may claim to match types nobody
// below it asked for (false positives are tolerated and counted as
// spillover by the routing layer), but it must never deny a type somebody
// did ask for. Both membership structures only ever over-approximate —
// prefixes coarsen, Bloom bits collide, overflow degrades to a wildcard —
// so the no-false-negative property holds by construction.
//
// The Bloom geometry is fixed (DigestBloomBits, DigestBloomHashes) so that
// merging two digests is a plain bitwise OR: digests from different fabrics
// and different fleet generations always union soundly.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

const (
	// digestMagic opens every binary interest digest. Distinct from the
	// batch codec's magic so the two framings can never be confused.
	digestMagic   = 0xD6
	digestVersion = 1

	// DigestBloomBits is the fixed Bloom filter width in bits. Fixed fleet
	// wide so OR-merging digests from any two fabrics is well-defined.
	// 2048 bits (256 bytes) keeps the false-positive rate under ~0.5% at
	// 150 distinct filter types (k=4).
	DigestBloomBits = 2048
	// DigestBloomHashes is the fixed number of Bloom probes per type.
	DigestBloomHashes = 4

	// DigestPrefixDepth caps coarsened type prefixes: "building.floor3.temp"
	// contributes the prefix "building.floor3". Coarse prefixes are the
	// cheap first gate (and the tap-demand surface); the Bloom filter over
	// full type strings is the second.
	DigestPrefixDepth = 2
	// DigestMaxPrefixes bounds the prefix set; a digest summarizing more
	// distinct prefixes degrades to a wildcard rather than growing without
	// bound or silently dropping entries (which would create a false
	// negative).
	DigestMaxPrefixes = 64
)

const digestBloomBytes = DigestBloomBits / 8

// Digest summarizes a set of event-filter types. The zero value matches
// nothing; AddType and MergeFrom only ever widen it. Not safe for
// concurrent mutation; the routing layer publishes immutable snapshots.
type Digest struct {
	// Gen is the announcer's generation for this digest: monotone per
	// announcing fabric, so receivers discard reordered (stale) updates.
	Gen uint64

	wildcard bool
	prefixes map[string]bool
	bloom    []byte
}

// NewDigest returns an empty digest at the given generation.
func NewDigest(gen uint64) *Digest {
	return &Digest{Gen: gen}
}

// CoarsenType truncates a dotted context type to DigestPrefixDepth
// segments — the coarsened prefix a digest stores and matches against.
func CoarsenType(t string) string {
	depth := 0
	for i := 0; i < len(t); i++ {
		if t[i] == '.' {
			depth++
			if depth == DigestPrefixDepth {
				return t[:i]
			}
		}
	}
	return t
}

// digestHash derives the two independent Bloom hash values for a type
// string (standard double hashing: probe i is h1 + i*h2).
func digestHash(t string) (h1, h2 uint64) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(t))
	sum := h.Sum64()
	return sum, (sum >> 33) | 1 // odd, so probes cycle the whole table
}

// AddType records one concrete filter type. An empty or wildcard type (or
// one overflowing the prefix bound) widens the digest to match everything.
func (d *Digest) AddType(t string) {
	if d.wildcard {
		return
	}
	if t == "" || t == "*" {
		d.SetWildcard()
		return
	}
	if d.prefixes == nil {
		d.prefixes = make(map[string]bool)
	}
	p := CoarsenType(t)
	if !d.prefixes[p] && len(d.prefixes) >= DigestMaxPrefixes {
		d.SetWildcard()
		return
	}
	d.prefixes[p] = true
	if d.bloom == nil {
		d.bloom = make([]byte, digestBloomBytes)
	}
	h1, h2 := digestHash(t)
	for i := 0; i < DigestBloomHashes; i++ {
		bit := (h1 + uint64(i)*h2) % DigestBloomBits
		d.bloom[bit/8] |= 1 << (bit % 8)
	}
}

// SetWildcard widens the digest to match every type (unbounded interest, or
// overflow past the prefix bound). The membership structures are dropped:
// a wildcard subsumes them.
func (d *Digest) SetWildcard() {
	d.wildcard = true
	d.prefixes = nil
	d.bloom = nil
}

// Wildcard reports whether the digest matches every type.
func (d *Digest) Wildcard() bool { return d.wildcard }

// Empty reports whether the digest matches nothing at all.
func (d *Digest) Empty() bool {
	return !d.wildcard && len(d.prefixes) == 0
}

// MergeFrom widens d to also match everything o matches. Sound for digests
// from any two announcers: the Bloom geometry is fixed, so the bit tables
// OR; prefix-set overflow degrades to a wildcard. Gen is untouched — the
// merged digest is the merger's to stamp.
func (d *Digest) MergeFrom(o *Digest) {
	if o == nil || d.wildcard {
		return
	}
	if o.wildcard {
		d.SetWildcard()
		return
	}
	for p := range o.prefixes {
		if d.prefixes == nil {
			d.prefixes = make(map[string]bool)
		}
		if !d.prefixes[p] && len(d.prefixes) >= DigestMaxPrefixes {
			d.SetWildcard()
			return
		}
		d.prefixes[p] = true
	}
	if o.bloom != nil {
		if d.bloom == nil {
			d.bloom = make([]byte, digestBloomBytes)
		}
		for i := range o.bloom {
			d.bloom[i] |= o.bloom[i]
		}
	}
}

// MightMatch reports whether the digest may cover the candidate filter
// type: the candidate's coarsened prefix must be present and the full
// string must hit the Bloom filter. False positives are possible (and
// tolerated by the routing layer); false negatives are not — a type that
// was ever added, or merged in, always answers true.
func (d *Digest) MightMatch(candidate string) bool {
	if d.wildcard {
		return true
	}
	if len(d.prefixes) == 0 || !d.prefixes[CoarsenType(candidate)] {
		return false
	}
	if d.bloom == nil {
		return false
	}
	h1, h2 := digestHash(candidate)
	for i := 0; i < DigestBloomHashes; i++ {
		bit := (h1 + uint64(i)*h2) % DigestBloomBits
		if d.bloom[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// Prefixes returns the coarsened prefixes, sorted (nil for a wildcard
// digest). The routing layer derives publisher-side tap demand from them.
func (d *Digest) Prefixes() []string {
	if len(d.prefixes) == 0 {
		return nil
	}
	out := make([]string, 0, len(d.prefixes))
	for p := range d.prefixes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two digests match the same type sets (generation
// excluded): the announce paths suppress re-sending an unchanged summary.
func (d *Digest) Equal(o *Digest) bool {
	if o == nil {
		return d == nil
	}
	if d == nil || d.wildcard != o.wildcard || len(d.prefixes) != len(o.prefixes) {
		return false
	}
	for p := range d.prefixes {
		if !o.prefixes[p] {
			return false
		}
	}
	// Bloom tables are nil or fixed-size; treat nil as all-zero.
	for i := 0; i < digestBloomBytes; i++ {
		var db, ob byte
		if d.bloom != nil {
			db = d.bloom[i]
		}
		if o.bloom != nil {
			ob = o.bloom[i]
		}
		if db != ob {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (d *Digest) Clone() *Digest {
	if d == nil {
		return nil
	}
	c := &Digest{Gen: d.Gen, wildcard: d.wildcard}
	if d.prefixes != nil {
		c.prefixes = make(map[string]bool, len(d.prefixes))
		for p := range d.prefixes {
			c.prefixes[p] = true
		}
	}
	if d.bloom != nil {
		c.bloom = append([]byte(nil), d.bloom...)
	}
	return c
}

// Digest wire flags.
const (
	digestFlagWildcard = 1 << 0
	digestFlagBloom    = 1 << 1
)

// ErrDigestCodec reports a malformed binary digest.
var ErrDigestCodec = errors.New("wire: malformed interest digest")

// EncodeDigest renders the digest in the compact binary framing used on the
// scinet.digest message path (base64-embedded in the JSON envelope, like
// the batch codec's frames ride their transport):
//
//	magic(0xD6) version(0x01) flags(u8) gen(uvarint)
//	nprefixes(uvarint) { len(uvarint) bytes }*
//	[ bloom(DigestBloomBits/8 bytes) ]   (present iff flagBloom)
func EncodeDigest(d *Digest) []byte {
	var flags byte
	if d.wildcard {
		flags |= digestFlagWildcard
	}
	if d.bloom != nil {
		flags |= digestFlagBloom
	}
	size := 3 + binary.MaxVarintLen64 + 1
	prefixes := d.Prefixes()
	for _, p := range prefixes {
		size += binary.MaxVarintLen64 + len(p)
	}
	if d.bloom != nil {
		size += len(d.bloom)
	}
	b := make([]byte, 0, size)
	b = append(b, digestMagic, digestVersion, flags)
	b = binary.AppendUvarint(b, d.Gen)
	b = binary.AppendUvarint(b, uint64(len(prefixes)))
	for _, p := range prefixes {
		b = binary.AppendUvarint(b, uint64(len(p)))
		b = append(b, p...)
	}
	if d.bloom != nil {
		b = append(b, d.bloom...)
	}
	return b
}

// DecodeDigest parses a binary digest. Malformed input (truncation, bad
// magic, inconsistent flags, out-of-bound prefix sets) returns
// ErrDigestCodec rather than a partial digest: a partial digest could deny
// types its sender declared, and false negatives are the one failure this
// structure must never exhibit.
func DecodeDigest(b []byte) (*Digest, error) {
	if len(b) < 3 || b[0] != digestMagic {
		return nil, fmt.Errorf("%w: bad header", ErrDigestCodec)
	}
	if b[1] != digestVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrDigestCodec, b[1])
	}
	flags := b[2]
	rest := b[3:]
	gen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: gen", ErrDigestCodec)
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > DigestMaxPrefixes {
		return nil, fmt.Errorf("%w: prefix count", ErrDigestCodec)
	}
	rest = rest[n:]
	d := &Digest{Gen: gen, wildcard: flags&digestFlagWildcard != 0}
	if count > 0 {
		d.prefixes = make(map[string]bool, count)
	}
	for i := uint64(0); i < count; i++ {
		plen, n := binary.Uvarint(rest)
		if n <= 0 || plen > uint64(len(rest)-n) {
			return nil, fmt.Errorf("%w: prefix length", ErrDigestCodec)
		}
		rest = rest[n:]
		p := string(rest[:plen])
		rest = rest[plen:]
		if strings.ContainsRune(p, 0) {
			return nil, fmt.Errorf("%w: prefix bytes", ErrDigestCodec)
		}
		d.prefixes[p] = true
	}
	if flags&digestFlagBloom != 0 {
		if len(rest) != digestBloomBytes {
			return nil, fmt.Errorf("%w: bloom size %d", ErrDigestCodec, len(rest))
		}
		d.bloom = append([]byte(nil), rest...)
	} else if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrDigestCodec)
	}
	if d.wildcard {
		// Canonicalize: a wildcard subsumes any carried membership state.
		d.prefixes, d.bloom = nil, nil
	} else if len(d.prefixes) > 0 && d.bloom == nil {
		return nil, fmt.Errorf("%w: prefixes without bloom", ErrDigestCodec)
	}
	return d, nil
}
