// The paper's hybrid communication model (Section 4) pairs distributed
// events with point-to-point messages. This file is the point-to-point
// half's envelope: a Message addressed by GUIDs (never by network
// addresses, per Section 3's overlay premise) with a JSON body. Framing and
// codecs live in codec.go/binary.go; the full wire contract is in doc.go.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"sci/internal/guid"
)

// MaxFrame bounds a single message (16 MiB) to protect readers from
// corrupted or hostile length prefixes.
const MaxFrame = 16 << 20

// Kind discriminates message purposes.
type Kind string

// Message kinds. Request kinds have a matching response kind; one-way kinds
// carry no correlation.
const (
	// Discovery / registration (Fig 5 sequence).
	KindAnnounce      Kind = "announce"       // RS → new entity: here is the Registrar
	KindRegister      Kind = "register"       // entity → Registrar
	KindRegisterAck   Kind = "register_ack"   // Registrar → entity: CS / Mediator handles
	KindDeregister    Kind = "deregister"     // entity → Registrar
	KindDeregisterAck Kind = "deregister_ack" //
	KindHeartbeat     Kind = "heartbeat"      // lease renewal / liveness

	// Queries (Fig 6).
	KindQuery       Kind = "query"        // CAA → CS
	KindQueryResult Kind = "query_result" // CS → CAA
	KindQueryError  Kind = "query_error"  //

	// Events crossing range boundaries. KindEvent carries one encoded event
	// in the body; KindEventBatch carries an EventBatchBody coalescing many.
	// Receivers decode both through Message.EventFrames, so a peer that still
	// ships the single-event form interoperates with a batching one.
	// KindEventBatchAck flows the other way: the receiver of an event.batch
	// reports its flow credit (BatchCredit) so the sending coalescer can
	// throttle. Peers that predate it simply never send it, and ignore it
	// when received — no negotiation needed.
	KindEvent         Kind = "event"
	KindEventBatch    Kind = "event.batch"
	KindEventBatchAck Kind = "event.batch_ack"

	// Advertisement (service) calls.
	KindServiceCall  Kind = "service_call"
	KindServiceReply Kind = "service_reply"

	// Overlay maintenance (SCINET).
	KindOverlayJoin      Kind = "overlay_join"
	KindOverlayJoinReply Kind = "overlay_join_reply"
	KindOverlayPing      Kind = "overlay_ping"
	KindOverlayPong      Kind = "overlay_pong"
	KindOverlayRoute     Kind = "overlay_route" // encapsulated routed payload

	// Codec negotiation. A dialer opens each connection with a codec.hello
	// listing the codecs it speaks; a codec-aware accept side answers once
	// on the same socket with its choice. Legacy peers never answer (the
	// dialer falls back to JSON after a short deadline) and ignore the
	// unknown kind when they receive it — the same no-negotiation-required
	// stance the event.batch and credit fields already rely on.
	KindCodecHello Kind = "codec.hello"
)

// Message is the wire envelope. Payload semantics depend on Kind.
type Message struct {
	// Src and Dst are entity GUIDs, not network addresses.
	Src guid.GUID `json:"src"`
	Dst guid.GUID `json:"dst"`
	// Kind selects the handler.
	Kind Kind `json:"kind"`
	// Corr correlates a response with its request; zero for one-way traffic.
	Corr guid.GUID `json:"corr,omitzero"`
	// TTL bounds forwarding hops for routed messages; decremented per hop.
	TTL int `json:"ttl,omitempty"`
	// Body is the kind-specific JSON payload.
	Body json.RawMessage `json:"body,omitempty"`
	// Batch optionally carries a whole event batch natively: decoded events
	// instead of per-event JSON frames. It rides pointer-identical through
	// the in-process memory transport and as one contiguous dictionary-
	// interned section of a binary frame on binary-negotiated connections;
	// encoders targeting a JSON-only peer fold it back into the legacy body
	// format via Materialize. It is never part of the JSON envelope.
	Batch *NativeBatch `json:"-"`
}

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrBadMessage    = errors.New("wire: malformed message")
)

// NewMessage builds a message with a marshalled body.
func NewMessage(src, dst guid.GUID, kind Kind, body any) (Message, error) {
	m := Message{Src: src, Dst: dst, Kind: kind}
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return Message{}, fmt.Errorf("wire: marshal body: %w", err)
		}
		m.Body = raw
	}
	return m, nil
}

// Reply builds a response to m with the correlation id carried over (or set
// to m's Corr if already present).
func (m Message) Reply(kind Kind, body any) (Message, error) {
	r, err := NewMessage(m.Dst, m.Src, kind, body)
	if err != nil {
		return Message{}, err
	}
	r.Corr = m.Corr
	return r, nil
}

// EventBatchBody is the payload of a KindEventBatch message: multiple
// independently encoded events, ordered as published. Events stay encoded
// at this layer (the envelope knows nothing of event schemas); senders
// marshal each event themselves and receivers unmarshal the frames they
// accept.
type EventBatchBody struct {
	Events []json.RawMessage `json:"events"`
	// Credit optionally piggybacks the sender's receive-side flow-control
	// state on return traffic, sparing a standalone ack. Absent on frames
	// from peers that predate it; receivers must treat nil as "no report",
	// never as an all-clear.
	Credit *BatchCredit `json:"credit,omitempty"`
}

// BatchCredit is a receiver's flow-control report: carried on a
// KindEventBatchAck reply (or piggybacked on an EventBatchBody heading the
// other way) so the peer's outbound coalescer can match its flush rate to
// what the receiver absorbs.
type BatchCredit struct {
	// Events counts the frames of the batch being acknowledged (0 on pure
	// piggyback reports).
	Events int `json:"events,omitempty"`
	// Dropped is the receiver's cumulative count of events it has had to
	// discard (full delivery queues); senders throttle on its deltas.
	Dropped uint64 `json:"dropped"`
	// QueueFree is the receiver's remaining delivery-queue capacity;
	// negative means unknown (the receiver has no single bounded queue).
	QueueFree int `json:"queue_free"`
}

// NewEventBatch builds a KindEventBatch message coalescing the given
// encoded events into one wire frame.
func NewEventBatch(src, dst guid.GUID, events []json.RawMessage) (Message, error) {
	return NewEventBatchWithCredit(src, dst, events, nil)
}

// NewEventBatchWithCredit builds a KindEventBatch message that additionally
// piggybacks the sender's pending receive-side flow-credit report, sparing
// the standalone event.batch_ack frame on a hot bidirectional link. A nil
// credit yields a plain batch.
func NewEventBatchWithCredit(src, dst guid.GUID, events []json.RawMessage, credit *BatchCredit) (Message, error) {
	if len(events) == 0 {
		return Message{}, fmt.Errorf("%w: empty event batch", ErrBadMessage)
	}
	return NewMessage(src, dst, KindEventBatch, EventBatchBody{Events: events, Credit: credit})
}

// NewEventBatchAck builds the credit reply to an event.batch message.
func NewEventBatchAck(src, dst guid.GUID, credit BatchCredit) (Message, error) {
	return NewMessage(src, dst, KindEventBatchAck, credit)
}

// BatchCreditInfo extracts the flow-credit report a message carries: the
// body of a KindEventBatchAck, or the optional Credit field piggybacked on
// a KindEventBatch. ok is false when the message carries none — including
// every frame from a peer that predates the credit fields, whose JSON
// simply lacks them.
func (m Message) BatchCreditInfo() (BatchCredit, bool) {
	if m.Batch != nil {
		if m.Batch.Credit == nil {
			return BatchCredit{}, false
		}
		return *m.Batch.Credit, true
	}
	switch m.Kind {
	case KindEventBatchAck:
		var c BatchCredit
		if err := m.DecodeBody(&c); err != nil {
			return BatchCredit{}, false
		}
		return c, true
	case KindEventBatch:
		var b EventBatchBody
		if err := m.DecodeBody(&b); err != nil || b.Credit == nil {
			return BatchCredit{}, false
		}
		return *b.Credit, true
	default:
		return BatchCredit{}, false
	}
}

// EventFrames returns the encoded events an event-bearing message carries:
// the batch's frames for KindEventBatch, or a single-element slice holding
// the body of a legacy KindEvent frame — the decode fallback that lets a
// batching receiver interleave old-format single-event traffic from peers
// that predate event.batch.
func (m Message) EventFrames() ([]json.RawMessage, error) {
	switch m.Kind {
	case KindEvent:
		if len(m.Body) == 0 {
			return nil, fmt.Errorf("%w: empty body for %s", ErrBadMessage, m.Kind)
		}
		return []json.RawMessage{m.Body}, nil
	case KindEventBatch:
		if m.Batch != nil {
			return m.Batch.EncodeFrames()
		}
		var b EventBatchBody
		if err := m.DecodeBody(&b); err != nil {
			return nil, err
		}
		if len(b.Events) == 0 {
			return nil, fmt.Errorf("%w: empty event batch", ErrBadMessage)
		}
		return b.Events, nil
	default:
		return nil, fmt.Errorf("%w: %s carries no events", ErrBadMessage, m.Kind)
	}
}

// DecodeBody unmarshals the body into out.
func (m Message) DecodeBody(out any) error {
	if len(m.Body) == 0 {
		return fmt.Errorf("%w: empty body for %s", ErrBadMessage, m.Kind)
	}
	if err := json.Unmarshal(m.Body, out); err != nil {
		return fmt.Errorf("%w: body of %s: %v", ErrBadMessage, m.Kind, err)
	}
	return nil
}

// Validate checks the envelope.
func (m Message) Validate() error {
	if m.Kind == "" {
		return fmt.Errorf("%w: empty kind", ErrBadMessage)
	}
	if m.Src.IsNil() {
		return fmt.Errorf("%w: nil src", ErrBadMessage)
	}
	return nil
}

// String renders a compact log form.
func (m Message) String() string {
	return fmt.Sprintf("msg{%s %s→%s}", m.Kind, m.Src.Short(), m.Dst.Short())
}

// Writer frames messages onto an io.Writer with the JSON codec. It is the
// historical name for a JSON-fixed Encoder; new code that negotiates a
// codec uses NewEncoder directly. Not safe for concurrent use; callers
// serialise (internal/transport does).
type Writer = Encoder

// NewWriter wraps w with a JSON-codec encoder.
func NewWriter(w io.Writer) *Writer { return NewEncoder(w, CodecJSON) }

// Reader unframes messages from an io.Reader. It is the historical name for
// a Decoder, which detects the codec of every frame from its leading byte,
// so mixed JSON/binary streams decode transparently. Not safe for
// concurrent use.
type Reader = Decoder

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return NewDecoder(r) }

// appendEnvelopeJSON appends the JSON wire form of m to b. It produces what
// json.Marshal(m) would, assembled by hand so the pre-encoded Body splices
// into the envelope once instead of being re-validated, re-compacted and
// copied a second time by the marshaller — the frame is built in a single
// pass over a reused buffer. The one property kept from json.Marshal is
// rejecting a Body that is not valid JSON (a hand-spliced frame must never
// ship an unparseable envelope).
func appendEnvelopeJSON(b []byte, m Message) ([]byte, error) {
	b = append(b, `{"src":"`...)
	b = appendGUIDText(b, m.Src)
	b = append(b, `","dst":"`...)
	b = appendGUIDText(b, m.Dst)
	b = append(b, `","kind":`...)
	b = appendJSONString(b, string(m.Kind))
	if !m.Corr.IsNil() {
		b = append(b, `,"corr":"`...)
		b = appendGUIDText(b, m.Corr)
		b = append(b, '"')
	}
	if m.TTL != 0 {
		b = append(b, `,"ttl":`...)
		b = strconv.AppendInt(b, int64(m.TTL), 10)
	}
	if len(m.Body) > 0 {
		if !json.Valid(m.Body) {
			return b, fmt.Errorf("%w: body is not valid JSON", ErrBadMessage)
		}
		b = append(b, `,"body":`...)
		b = append(b, m.Body...)
	}
	return append(b, '}'), nil
}

// appendGUIDText appends the canonical "kind:hex32" form of g — what
// g.MarshalText produces — without allocating.
func appendGUIDText(b []byte, g guid.GUID) []byte {
	const hexdigits = "0123456789abcdef"
	b = append(b, g.Kind().String()...)
	b = append(b, ':')
	for _, x := range g {
		b = append(b, hexdigits[x>>4], hexdigits[x&0x0f])
	}
	return b
}
