package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"strconv"
	"time"
	"unicode/utf8"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

// Binary frame layout (after the shared 4-byte big-endian length prefix;
// full contract in doc.go):
//
//	magic(0xB5) version(0x01) kindID(u8) flags(u8)
//	[kind uvarint-len + bytes]     when kindID == 0 (kind not in the table)
//	src(16) dst(16)
//	[corr(16)]                     flags&flagCorr
//	[ttl varint]                   flags&flagTTL
//	[body uvarint-len + bytes]     flags&flagBody (opaque JSON sub-blob)
//	[batch section]                flags&flagBatch
//
// The magic byte can never open a JSON document, so a decoder distinguishes
// the codecs per frame without negotiation state.
const (
	magicByte     = 0xB5
	binaryVersion = 1
)

// Envelope flags.
const (
	flagCorr byte = 1 << iota
	flagTTL
	flagBody
	flagBatch
)

// Per-event flags inside a batch section.
const (
	evfTime byte = 1 << iota
	evfQuality
	evfPayload
)

// maxDictEntries bounds each per-connection interning dictionary (types and
// GUIDs separately). Beyond it, values ship as literals; both sides enforce
// the bound so a hostile peer cannot grow decoder state without limit.
const maxDictEntries = 4096

// kindTable assigns the well-known kinds their one-byte wire ids. The order
// is wire ABI: append only. Index 0 is reserved for "kind shipped inline".
var kindTable = []Kind{
	0:  "",
	1:  KindAnnounce,
	2:  KindRegister,
	3:  KindRegisterAck,
	4:  KindDeregister,
	5:  KindDeregisterAck,
	6:  KindHeartbeat,
	7:  KindQuery,
	8:  KindQueryResult,
	9:  KindQueryError,
	10: KindEvent,
	11: KindEventBatch,
	12: KindEventBatchAck,
	13: KindServiceCall,
	14: KindServiceReply,
	15: KindOverlayJoin,
	16: KindOverlayJoinReply,
	17: KindOverlayPing,
	18: KindOverlayPong,
	19: KindOverlayRoute,
	20: KindCodecHello,
}

var kindIDs = func() map[Kind]byte {
	m := make(map[Kind]byte, len(kindTable))
	for i, k := range kindTable {
		if i > 0 {
			m[k] = byte(i)
		}
	}
	return m
}()

// ----- encoding -----

// appendBinary serialises one message into b. Per-event cost on the
// steady-state wire path: it must stay allocation-free so encode cost is
// bounded by the copy, not the collector.
//
//lint:hotpath
func (e *Encoder) appendBinary(b []byte, m Message) ([]byte, error) {
	var flags byte
	if !m.Corr.IsNil() {
		flags |= flagCorr
	}
	if m.TTL != 0 {
		flags |= flagTTL
	}
	if len(m.Body) > 0 {
		flags |= flagBody
	}
	if m.Batch != nil {
		flags |= flagBatch
	}
	id := kindIDs[m.Kind]
	b = append(b, magicByte, binaryVersion, id, flags)
	if id == 0 {
		b = binary.AppendUvarint(b, uint64(len(m.Kind)))
		b = append(b, m.Kind...)
	}
	b = append(b, m.Src[:]...)
	b = append(b, m.Dst[:]...)
	if flags&flagCorr != 0 {
		b = append(b, m.Corr[:]...)
	}
	if flags&flagTTL != 0 {
		b = binary.AppendVarint(b, int64(m.TTL))
	}
	if flags&flagBody != 0 {
		b = binary.AppendUvarint(b, uint64(len(m.Body)))
		b = append(b, m.Body...)
	}
	if flags&flagBatch != 0 {
		return e.appendBatch(b, m.Batch)
	}
	return b, nil
}

//lint:hotpath
func (e *Encoder) appendBatch(b []byte, nb *NativeBatch) ([]byte, error) {
	if nb.Credit != nil {
		b = append(b, 1)
		b = binary.AppendVarint(b, int64(nb.Credit.Events))
		b = binary.AppendUvarint(b, nb.Credit.Dropped)
		b = binary.AppendVarint(b, int64(nb.Credit.QueueFree))
	} else {
		b = append(b, 0)
	}

	// Dictionary deltas: every type/GUID of this batch not yet shipped to
	// the peer is assigned the next index and sent once, here, before the
	// events that reference it. Both sides append in stream order, so the
	// index spaces stay aligned on an ordered connection.
	if e.types == nil {
		//lint:allow hotpath dictionary maps built once per connection, before the first batch
		e.types = make(map[string]uint32)
		//lint:allow hotpath dictionary maps built once per connection, before the first batch
		e.guids = make(map[guid.GUID]uint32)
	}
	e.newTypes = e.newTypes[:0]
	e.newGUIDs = e.newGUIDs[:0]
	for i := range nb.Events {
		ev := &nb.Events[i]
		e.internType(string(ev.Type))
		e.internGUID(ev.Source)
		e.internGUID(ev.Subject)
		e.internGUID(ev.Range)
	}
	b = binary.AppendUvarint(b, uint64(len(e.newTypes)))
	for _, t := range e.newTypes {
		b = binary.AppendUvarint(b, uint64(len(t)))
		b = append(b, t...)
	}
	b = binary.AppendUvarint(b, uint64(len(e.newGUIDs)))
	for _, g := range e.newGUIDs {
		b = append(b, g[:]...)
	}

	b = binary.AppendUvarint(b, uint64(len(nb.Events)))
	for i := range nb.Events {
		var err error
		if b, err = e.appendEvent(b, &nb.Events[i]); err != nil {
			return b, err
		}
	}
	return b, nil
}

//lint:hotpath
func (e *Encoder) appendEvent(b []byte, ev *event.Event) ([]byte, error) {
	var fl byte
	if !ev.Time.IsZero() {
		fl |= evfTime
	}
	if ev.Quality != 0 {
		fl |= evfQuality
	}
	if ev.Payload != nil {
		fl |= evfPayload
	}
	b = append(b, fl)
	b = append(b, ev.ID[:]...) // event ids are unique: never interned
	b = e.appendTypeRef(b, string(ev.Type))
	b = e.appendGUIDRef(b, ev.Source)
	b = e.appendGUIDRef(b, ev.Subject)
	b = e.appendGUIDRef(b, ev.Range)
	b = binary.AppendUvarint(b, ev.Seq)
	if fl&evfTime != 0 {
		b = binary.BigEndian.AppendUint64(b, uint64(ev.Time.UnixNano()))
	}
	if fl&evfQuality != 0 {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ev.Quality))
	}
	if fl&evfPayload != 0 {
		if e.payloadBuf == nil {
			e.payloadBuf = poolGetBuf()
		}
		var err error
		//lint:allow hotpath the summary sees appendJSONFloat's fmt.Errorf, which fires only on malformed payloads
		e.payloadBuf, err = e.appendJSONMap(e.payloadBuf[:0], ev.Payload, 0)
		if err != nil {
			return b, err
		}
		b = binary.AppendUvarint(b, uint64(len(e.payloadBuf)))
		b = append(b, e.payloadBuf...)
	}
	return b, nil
}

// internType records t as a dictionary delta of the current frame if it is
// new and the dictionary has room.
func (e *Encoder) internType(t string) {
	if t == "" {
		return
	}
	if _, ok := e.types[t]; ok {
		return
	}
	if len(e.types) >= maxDictEntries {
		return
	}
	e.types[t] = uint32(len(e.types))
	e.newTypes = append(e.newTypes, t)
}

func (e *Encoder) internGUID(g guid.GUID) {
	if g.IsNil() {
		return
	}
	if _, ok := e.guids[g]; ok {
		return
	}
	if len(e.guids) >= maxDictEntries {
		return
	}
	e.guids[g] = uint32(len(e.guids))
	e.newGUIDs = append(e.newGUIDs, g)
}

// appendTypeRef writes a type reference: 0 = literal follows (uvarint len +
// bytes), n ≥ 1 = dictionary index n-1.
func (e *Encoder) appendTypeRef(b []byte, t string) []byte {
	if idx, ok := e.types[t]; ok {
		return binary.AppendUvarint(b, uint64(idx)+1)
	}
	b = binary.AppendUvarint(b, 0)
	b = binary.AppendUvarint(b, uint64(len(t)))
	return append(b, t...)
}

// appendGUIDRef writes a GUID reference: 0 = nil, 1 = literal 16 bytes
// follow, n ≥ 2 = dictionary index n-2.
func (e *Encoder) appendGUIDRef(b []byte, g guid.GUID) []byte {
	if g.IsNil() {
		return binary.AppendUvarint(b, 0)
	}
	if idx, ok := e.guids[g]; ok {
		return binary.AppendUvarint(b, uint64(idx)+2)
	}
	b = binary.AppendUvarint(b, 1)
	return append(b, g[:]...)
}

// commitDict accepts the current frame's dictionary deltas (the frame
// shipped); rollbackDict discards them (the frame never reached the peer,
// so the peer's mirror must not learn the entries).
func (e *Encoder) commitDict() {
	e.newTypes = e.newTypes[:0]
	e.newGUIDs = e.newGUIDs[:0]
}

func (e *Encoder) rollbackDict() {
	for _, t := range e.newTypes {
		delete(e.types, t)
	}
	for _, g := range e.newGUIDs {
		delete(e.guids, g)
	}
	e.newTypes = e.newTypes[:0]
	e.newGUIDs = e.newGUIDs[:0]
}

// ----- payload JSON encoding -----

const hexdigits = "0123456789abcdef"

// appendJSONMap appends the JSON encoding of a payload map with sorted keys
// (deterministic output, like encoding/json) without allocating in steady
// state: the per-depth key slices are reused across calls.
func (e *Encoder) appendJSONMap(b []byte, m map[string]any, depth int) ([]byte, error) {
	for len(e.keyStack) <= depth {
		e.keyStack = append(e.keyStack, nil)
	}
	keys := e.keyStack[depth][:0]
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	e.keyStack[depth] = keys
	b = append(b, '{')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, k)
		b = append(b, ':')
		var err error
		if b, err = e.appendJSONValue(b, m[k], depth+1); err != nil {
			return b, err
		}
	}
	return append(b, '}'), nil
}

func (e *Encoder) appendJSONValue(b []byte, v any, depth int) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...), nil
	case bool:
		if x {
			return append(b, "true"...), nil
		}
		return append(b, "false"...), nil
	case string:
		return appendJSONString(b, x), nil
	case float64:
		return appendJSONFloat(b, x)
	case float32:
		return appendJSONFloat(b, float64(x))
	case int:
		return strconv.AppendInt(b, int64(x), 10), nil
	case int64:
		return strconv.AppendInt(b, x, 10), nil
	case uint64:
		return strconv.AppendUint(b, x, 10), nil
	case json.Number:
		if !json.Valid([]byte(x)) {
			return b, fmt.Errorf("%w: invalid json.Number %q", ErrBadMessage, string(x))
		}
		return append(b, x...), nil
	case json.RawMessage:
		if !json.Valid(x) {
			return b, fmt.Errorf("%w: invalid raw payload value", ErrBadMessage)
		}
		return append(b, x...), nil
	case map[string]any:
		return e.appendJSONMap(b, x, depth)
	case []any:
		b = append(b, '[')
		for i, el := range x {
			if i > 0 {
				b = append(b, ',')
			}
			var err error
			if b, err = e.appendJSONValue(b, el, depth); err != nil {
				return b, err
			}
		}
		return append(b, ']'), nil
	default:
		// Uncommon payload value types take the reflective slow path.
		raw, err := json.Marshal(v)
		if err != nil {
			return b, fmt.Errorf("wire: encode payload value: %w", err)
		}
		return append(b, raw...), nil
	}
}

func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, fmt.Errorf("%w: unsupported float value in payload", ErrBadMessage)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	return strconv.AppendFloat(b, f, format, -1, 64), nil
}

func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c == '"' || c == '\\' || c < 0x20 {
				b = append(b, s[start:i]...)
				switch c {
				case '"':
					b = append(b, '\\', '"')
				case '\\':
					b = append(b, '\\', '\\')
				case '\n':
					b = append(b, '\\', 'n')
				case '\r':
					b = append(b, '\\', 'r')
				case '\t':
					b = append(b, '\\', 't')
				default:
					b = append(b, '\\', 'u', '0', '0', hexdigits[c>>4], hexdigits[c&0x0f])
				}
				start = i + 1
			}
			i++
			continue
		}
		// Invalid UTF-8 becomes U+FFFD, matching encoding/json, so encoded
		// payloads always decode to the same string they re-encode from.
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, "�"...)
			start = i + 1
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// ----- decoding -----

// cursor walks a binary frame with sticky bounds checking: the first
// failure latches and every later read returns zero values, so decode paths
// stay linear and the error surfaces once at the end.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cursor) rem() int { return len(c.b) - c.off }

func (c *cursor) u8() byte {
	if c.err != nil || c.off >= len(c.b) {
		c.fail("truncated frame at byte %d", c.off)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.rem() < n {
		c.fail("truncated frame: need %d bytes at offset %d, have %d", n, c.off, c.rem())
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail("bad varint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail("bad varint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if c.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *cursor) guid() guid.GUID {
	b := c.take(guid.Size)
	var g guid.GUID
	if c.err == nil {
		copy(g[:], b)
	}
	return g
}

// blob reads a uvarint-length-prefixed byte run, bounds-checked against the
// remaining frame.
func (c *cursor) blob() []byte {
	n := c.uvarint()
	if c.err == nil && n > uint64(c.rem()) {
		c.fail("blob length %d exceeds remaining %d bytes", n, c.rem())
		return nil
	}
	return c.take(int(n))
}

func (d *Decoder) decodeBinaryFrame(data []byte) (Message, error) {
	c := cursor{b: data}
	c.u8() // magic, already matched by Read
	if ver := c.u8(); c.err == nil && ver != binaryVersion {
		return Message{}, fmt.Errorf("%w: unsupported binary version %d", ErrBadMessage, ver)
	}
	kid := c.u8()
	flags := c.u8()
	var m Message
	switch {
	case c.err != nil:
	case kid == 0:
		m.Kind = Kind(c.blob())
	case int(kid) < len(kindTable):
		m.Kind = kindTable[kid]
	default:
		return Message{}, fmt.Errorf("%w: unknown kind id %d", ErrBadMessage, kid)
	}
	m.Src = c.guid()
	m.Dst = c.guid()
	if flags&flagCorr != 0 {
		m.Corr = c.guid()
	}
	if flags&flagTTL != 0 {
		m.TTL = int(c.varint())
	}
	if flags&flagBody != 0 {
		if raw := c.blob(); c.err == nil {
			m.Body = append(json.RawMessage(nil), raw...)
		}
	}
	if flags&flagBatch != 0 {
		m.Batch = d.decodeBatch(&c)
	}
	if c.err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, c.err)
	}
	if n := c.rem(); n != 0 {
		return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, n)
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	return m, nil
}

func (d *Decoder) decodeBatch(c *cursor) *NativeBatch {
	nb := &NativeBatch{}
	switch v := c.u8(); v {
	case 0:
	case 1:
		nb.Credit = &BatchCredit{
			Events:    int(c.varint()),
			Dropped:   c.uvarint(),
			QueueFree: int(c.varint()),
		}
	default:
		c.fail("bad credit flag %d", v)
	}

	ntypes := c.uvarint()
	if c.err == nil && ntypes > uint64(c.rem()) {
		c.fail("type delta count %d exceeds frame", ntypes)
	}
	for i := uint64(0); i < ntypes && c.err == nil; i++ {
		t := string(c.blob())
		if c.err != nil {
			break
		}
		if len(d.types) >= maxDictEntries {
			c.fail("type dictionary overflow")
			break
		}
		d.types = append(d.types, t)
	}
	nguids := c.uvarint()
	if c.err == nil && nguids > uint64(c.rem())/guid.Size {
		c.fail("guid delta count %d exceeds frame", nguids)
	}
	for i := uint64(0); i < nguids && c.err == nil; i++ {
		g := c.guid()
		if c.err != nil {
			break
		}
		if len(d.guids) >= maxDictEntries {
			c.fail("guid dictionary overflow")
			break
		}
		d.guids = append(d.guids, g)
	}

	nevents := c.uvarint()
	// Every event costs at least its flag byte + raw id, so the count is
	// bounded by the remaining frame; reject inflated counts before the
	// slice allocation trusts them.
	if c.err == nil && nevents > uint64(c.rem()/(1+guid.Size)) {
		c.fail("event count %d exceeds frame", nevents)
	}
	if c.err != nil {
		return nil
	}
	events := make([]event.Event, 0, nevents)
	for i := uint64(0); i < nevents && c.err == nil; i++ {
		events = append(events, d.decodeEvent(c))
	}
	if c.err != nil {
		return nil
	}
	nb.Events = events
	return nb
}

func (d *Decoder) decodeEvent(c *cursor) event.Event {
	var ev event.Event
	fl := c.u8()
	ev.ID = c.guid()
	ev.Type = d.typeRef(c)
	ev.Source = d.guidRef(c)
	ev.Subject = d.guidRef(c)
	ev.Range = d.guidRef(c)
	ev.Seq = c.uvarint()
	if fl&evfTime != 0 {
		ev.Time = time.Unix(0, int64(c.u64()))
	}
	if fl&evfQuality != 0 {
		ev.Quality = math.Float64frombits(c.u64())
	}
	if fl&evfPayload != 0 {
		raw := c.blob()
		if c.err == nil {
			if err := json.Unmarshal(raw, &ev.Payload); err != nil {
				c.fail("event payload: %v", err)
			}
		}
	}
	return ev
}

func (d *Decoder) typeRef(c *cursor) ctxtype.Type {
	r := c.uvarint()
	if c.err != nil {
		return ""
	}
	if r == 0 {
		return ctxtype.Type(c.blob())
	}
	if r-1 >= uint64(len(d.types)) {
		c.fail("type ref %d out of dictionary range %d", r, len(d.types))
		return ""
	}
	return ctxtype.Type(d.types[r-1])
}

func (d *Decoder) guidRef(c *cursor) guid.GUID {
	r := c.uvarint()
	switch {
	case c.err != nil || r == 0:
		return guid.Nil
	case r == 1:
		return c.guid()
	case r-2 < uint64(len(d.guids)):
		return d.guids[r-2]
	default:
		c.fail("guid ref %d out of dictionary range %d", r, len(d.guids))
		return guid.Nil
	}
}
