package wire

// Allocation cross-checks for this package's //lint:hotpath annotations
// (Encoder.appendBinary, appendBatch, appendEvent). The static analyzer
// proves the absence of allocating constructs up to the //lint:allow
// escapes (the once-per-connection dictionary maps, the payload JSON
// encoder's error path); these tests prove the escapes were justified —
// once the dictionaries and scratch buffers are warm, encoding a batch
// frame allocates nothing. internal/analysis/hotpath's registry test fails
// if an annotation exists without a covering check here.

import (
	"io"
	"testing"
	"time"

	"sci/internal/event"
	"sci/internal/guid"
)

// warmEncoder returns a binary encoder whose interning dictionaries and
// scratch buffers have already seen msg, plus a frame buffer with room.
func warmEncoder(t testing.TB) (*Encoder, Message, []byte) {
	t.Helper()
	src := guid.New(guid.KindServer)
	dst := guid.New(guid.KindServer)
	pub := guid.New(guid.KindApplication)
	events := make([]event.Event, 4)
	for i := range events {
		events[i] = event.Event{
			ID:      guid.New(guid.KindEvent),
			Type:    "bench.wire.hot",
			Source:  pub,
			Range:   src,
			Seq:     uint64(i + 1),
			Time:    time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC),
			Quality: 0.75,
			Payload: map[string]any{"value": 21.5, "seq": i},
		}
	}
	msg := Message{
		Src:  src,
		Dst:  dst,
		Kind: KindEventBatch,
		Batch: &NativeBatch{
			Events: events,
			Credit: &BatchCredit{Events: 4, Dropped: 0, QueueFree: 128},
		},
	}
	e := NewEncoder(io.Discard, CodecBinary)
	buf := make([]byte, 0, 4096)
	// First encode interns the batch's types and GUIDs and takes the
	// scratch buffers from the pool; everything after is steady state.
	out, err := e.appendBinary(buf, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty frame")
	}
	e.commitDict()
	return e, msg, buf
}

// TestHotpathEncodeZeroAlloc requires a warmed binary batch encode —
// envelope, credit, dictionary refs, four events with payloads — to
// allocate nothing.
func TestHotpathEncodeZeroAlloc(t *testing.T) {
	e, msg, buf := warmEncoder(t)
	allocs := testing.AllocsPerRun(500, func() {
		out, err := e.appendBinary(buf[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty frame")
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed binary encode allocates %.1f times per frame, want 0", allocs)
	}
}

func BenchmarkHotpathAppendBinary(b *testing.B) {
	e, msg, buf := warmEncoder(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.appendBinary(buf[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}
