package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"sci/internal/guid"
)

// frame encodes a minimal event-shaped payload for batch tests; this
// package treats frames as opaque JSON.
func frame(seq int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"seq":%d,"type":"test.reading"}`, seq))
}

func frames(seqs ...int) []json.RawMessage {
	out := make([]json.RawMessage, len(seqs))
	for i, s := range seqs {
		out[i] = frame(s)
	}
	return out
}

func TestEventBatchRoundTrip(t *testing.T) {
	src := guid.New(guid.KindServer)
	dst := guid.New(guid.KindEntity)
	m, err := NewEventBatch(src, dst, frames(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindEventBatch {
		t.Fatalf("kind = %s, want %s", m.Kind, KindEventBatch)
	}

	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(m); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := got.EventFrames()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("got %d frames, want 3", len(fs))
	}
	for i, f := range fs {
		var body struct {
			Seq int `json:"seq"`
		}
		if err := json.Unmarshal(f, &body); err != nil {
			t.Fatal(err)
		}
		if body.Seq != i+1 {
			t.Fatalf("frame %d carries seq %d, want %d (order must survive)", i, body.Seq, i+1)
		}
	}
}

func TestEventBatchRejectsEmpty(t *testing.T) {
	if _, err := NewEventBatch(guid.New(guid.KindServer), guid.New(guid.KindEntity), nil); err == nil {
		t.Fatal("want error for empty batch")
	}
}

func TestEventFramesSingleEventFallback(t *testing.T) {
	m := mkMsg(t, KindEvent, map[string]any{"seq": 9})
	fs, err := m.EventFrames()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !bytes.Equal(fs[0], m.Body) {
		t.Fatalf("fallback frames = %v", fs)
	}
}

func TestEventFramesRejectsOtherKinds(t *testing.T) {
	m := mkMsg(t, KindQuery, map[string]any{"q": 1})
	if _, err := m.EventFrames(); err == nil {
		t.Fatal("want error for non-event kind")
	}
	empty := Message{Src: guid.New(guid.KindServer), Dst: guid.New(guid.KindEntity), Kind: KindEvent}
	if _, err := empty.EventFrames(); err == nil {
		t.Fatal("want error for empty single-event body")
	}
}

// TestMixedStreamOldAndNewFrames interleaves legacy single-event frames
// between batches on one connection, as an old peer would produce, and
// checks a batch-aware reader decodes the whole stream in order.
func TestMixedStreamOldAndNewFrames(t *testing.T) {
	src := guid.New(guid.KindServer)
	dst := guid.New(guid.KindEntity)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	batch1, err := NewEventBatch(src, dst, frames(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewMessage(src, dst, KindEvent, json.RawMessage(frame(3)))
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := NewEventBatch(src, dst, frames(4, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Message{batch1, single, batch2} {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}

	r := NewReader(&buf)
	var seqs []int
	for i := 0; i < 3; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		fs, err := m.EventFrames()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			var body struct {
				Seq int `json:"seq"`
			}
			if err := json.Unmarshal(f, &body); err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, body.Seq)
		}
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("mixed stream order: got %v", seqs)
		}
	}
	if len(seqs) != 6 {
		t.Fatalf("decoded %d events, want 6", len(seqs))
	}
}

// TestMixedVersionStreamWithCredit interleaves credit-bearing event.batch
// frames, legacy single-event frames, credit-free batches (what an
// old-format peer ships) and standalone event.batch_ack frames on one
// connection, and checks both decode stances: a new-format reader sees
// every event in order plus exactly the credit reports that were sent,
// and an old-format reader — which knows nothing of the credit fields —
// still extracts every event untouched.
func TestMixedVersionStreamWithCredit(t *testing.T) {
	src := guid.New(guid.KindServer)
	dst := guid.New(guid.KindEntity)

	withCredit, err := NewEventBatch(src, dst, frames(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Piggyback a credit report the old wire format has no field for.
	var body EventBatchBody
	if err := withCredit.DecodeBody(&body); err != nil {
		t.Fatal(err)
	}
	body.Credit = &BatchCredit{Dropped: 7, QueueFree: 12}
	withCredit, err = NewMessage(src, dst, KindEventBatch, body)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewMessage(src, dst, KindEvent, json.RawMessage(frame(3)))
	if err != nil {
		t.Fatal(err)
	}
	oldBatch, err := NewEventBatch(src, dst, frames(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	ack, err := NewEventBatchAck(dst, src, BatchCredit{Events: 2, Dropped: 9, QueueFree: 0})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, m := range []Message{withCredit, single, oldBatch, ack} {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}

	// New-format reader: events in order, credit where carried.
	r := NewReader(&buf)
	var seqs []int
	var credits []BatchCredit
	for i := 0; i < 4; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if c, ok := m.BatchCreditInfo(); ok {
			credits = append(credits, c)
		}
		if m.Kind != KindEvent && m.Kind != KindEventBatch {
			continue
		}
		fs, err := m.EventFrames()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			var b struct {
				Seq int `json:"seq"`
			}
			if err := json.Unmarshal(f, &b); err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, b.Seq)
		}
	}
	if len(seqs) != 5 {
		t.Fatalf("decoded %d events, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("mixed-version stream order: got %v", seqs)
		}
	}
	if len(credits) != 2 {
		t.Fatalf("decoded %d credit reports, want 2 (piggyback + ack)", len(credits))
	}
	if credits[0].Dropped != 7 || credits[0].QueueFree != 12 {
		t.Fatalf("piggybacked credit = %+v", credits[0])
	}
	if credits[1].Dropped != 9 || credits[1].QueueFree != 0 {
		t.Fatalf("ack credit = %+v", credits[1])
	}
	// The credit-free batch must read as "no report", never as all-clear.
	if _, ok := oldBatch.BatchCreditInfo(); ok {
		t.Fatal("old-format batch invented a credit report")
	}

	// Old-format reader stance: decode the same credit-bearing batch with
	// the pre-credit body shape — the unknown field is skipped and every
	// event frame survives.
	var oldBody struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := withCredit.DecodeBody(&oldBody); err != nil {
		t.Fatal(err)
	}
	if len(oldBody.Events) != 2 {
		t.Fatalf("old-format decode got %d frames, want 2", len(oldBody.Events))
	}
}
