package eventbus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sci/internal/clock"
	"sci/internal/event"
	"sci/internal/guid"
)

// Quota configures per-publisher admission control: a token bucket per
// publishing source, applied before any dispatch work. Events are admitted
// while the publisher's bucket has tokens (one token per event); the bucket
// refills continuously at Rate tokens per second up to Burst. An over-quota
// publish either sheds the excess (counted, default) or fails the whole
// call with an *OverQuotaError, per Reject.
type Quota struct {
	// Rate is the sustained admission rate in events per second per
	// publisher. A Rate <= 0 disables admission control.
	Rate float64
	// Burst is the bucket depth: the largest instantaneous backlog one
	// publisher may admit ahead of its sustained rate. Defaults to one
	// second's worth of Rate (minimum 1).
	Burst int
	// Reject selects all-or-nothing admission: an over-quota batch is
	// refused in full with an *OverQuotaError instead of being clipped to
	// the available tokens with the excess shed-and-counted.
	Reject bool
	// Clock supplies refill time; defaults to the system clock.
	Clock clock.Clock
}

// ErrOverQuota is the sentinel matched by errors.Is for publishes refused by
// admission control in Reject mode.
var ErrOverQuota = errors.New("eventbus: publisher over quota")

// OverQuotaError reports a publish refused by per-publisher admission
// control. It unwraps to ErrOverQuota.
type OverQuotaError struct {
	// Publisher is the source the refused events were charged against.
	Publisher guid.GUID
	// Rejected is the number of events refused by this call.
	Rejected int
}

func (e *OverQuotaError) Error() string {
	return fmt.Sprintf("eventbus: publisher %s over quota (%d events rejected)", e.Publisher.Short(), e.Rejected)
}

func (e *OverQuotaError) Unwrap() error { return ErrOverQuota }

// WithQuota enables per-publisher admission control on the bus.
func WithQuota(q Quota) Option {
	return func(b *Bus) {
		if q.Rate <= 0 {
			return
		}
		if q.Burst <= 0 {
			q.Burst = int(q.Rate)
			if q.Burst < 1 {
				q.Burst = 1
			}
		}
		if q.Clock == nil {
			q.Clock = clock.Real()
		}
		b.quota = &q
	}
}

// maxQuotaSources bounds each stripe's per-publisher bucket table; an
// overflowing population (adversarial source churn) shares the nil-GUID
// bucket so the table cannot grow without bound. A variable, not a constant,
// so the bounding test can lower it.
var maxQuotaSources = 4096

// quotaBucket is one publisher's token bucket plus its rejected-event
// counter. Buckets live in a per-stripe copy-on-write table mirroring the
// drop-attribution table: the steady-state lookup is a lock-free pointer
// load and map probe; only the first publish from a new source takes the
// stripe's install lock.
type quotaBucket struct {
	mu       sync.Mutex
	inited   bool
	tokens   float64
	last     time.Time
	rejected atomic.Uint64
}

// admit refills the bucket to now and grants up to n tokens. In all-or-
// nothing mode (all=true) it grants either n or 0 and consumes nothing on
// refusal; otherwise it grants whatever the bucket holds.
func (qb *quotaBucket) admit(n int, now time.Time, rate float64, burst int, all bool) int {
	qb.mu.Lock()
	defer qb.mu.Unlock()
	if !qb.inited {
		qb.inited = true
		qb.tokens = float64(burst)
		qb.last = now
	} else if dt := now.Sub(qb.last).Seconds(); dt > 0 {
		qb.tokens += dt * rate
		if qb.tokens > float64(burst) {
			qb.tokens = float64(burst)
		}
		qb.last = now
	}
	grant := n
	if float64(grant) > qb.tokens {
		if all {
			return 0
		}
		grant = int(qb.tokens)
	}
	qb.tokens -= float64(grant)
	return grant
}

// srcQuotaTable is an immutable snapshot of a stripe's per-publisher
// buckets; the buckets themselves are shared across snapshots.
type srcQuotaTable struct {
	buckets map[guid.GUID]*quotaBucket
}

// quotaBucketFor returns the stripe's bucket for one publisher, installing
// it on first use (beyond maxQuotaSources, the shared nil-GUID overflow
// bucket). The fast path is lock-free; installs take quotaMu, a leaf lock.
func (sh *shard) quotaBucketFor(src guid.GUID) *quotaBucket {
	if t := sh.quotaTab.Load(); t != nil {
		if qb, ok := t.buckets[src]; ok {
			return qb
		}
	}
	sh.quotaMu.Lock()
	defer sh.quotaMu.Unlock()
	var old map[guid.GUID]*quotaBucket
	if t := sh.quotaTab.Load(); t != nil {
		if qb, ok := t.buckets[src]; ok {
			return qb // lost the install race
		}
		old = t.buckets
	}
	key := src
	if len(old) >= maxQuotaSources {
		if qb, ok := old[guid.Nil]; ok {
			return qb
		}
		key = guid.Nil // overflow bucket
	}
	nm := make(map[guid.GUID]*quotaBucket, len(old)+1)
	for k, v := range old {
		nm[k] = v
	}
	qb := &quotaBucket{}
	nm[key] = qb
	sh.quotaTab.Store(&srcQuotaTable{buckets: nm})
	return qb
}

// admitOne is the single-event admission check for Publish: the event is
// charged against its own Source. It reports whether the event may be
// dispatched; a refusal has already been counted, and err is non-nil only
// in Reject mode.
func (b *Bus) admitOne(e event.Event) (bool, error) {
	q := b.quota
	qb := b.idShard(e.Source).quotaBucketFor(e.Source)
	if qb.admit(1, q.Clock.Now(), q.Rate, q.Burst, q.Reject) == 1 {
		return true, nil
	}
	qb.rejected.Add(1)
	b.quotaRejected.Add(1)
	if q.Reject {
		return false, &OverQuotaError{Publisher: e.Source, Rejected: 1}
	}
	return false, nil
}

// admitBatch applies admission control to a validated batch. When pub is
// non-nil the whole batch is charged against pub; otherwise each run of
// consecutive same-Source events is charged against that source. The
// returned slice (which may alias events) holds the admitted subset in
// order; refused events have been counted. In Reject mode a shortfall fails
// the call — note that with per-source charging, runs admitted before the
// offending run have already consumed their tokens.
func (b *Bus) admitBatch(pub guid.GUID, events []event.Event) ([]event.Event, error) {
	q := b.quota
	now := q.Clock.Now()
	if !pub.IsNil() {
		qb := b.idShard(pub).quotaBucketFor(pub)
		grant := qb.admit(len(events), now, q.Rate, q.Burst, q.Reject)
		if grant == len(events) {
			return events, nil
		}
		rej := len(events) - grant
		qb.rejected.Add(uint64(rej))
		b.quotaRejected.Add(uint64(rej))
		if q.Reject {
			return nil, &OverQuotaError{Publisher: pub, Rejected: rej}
		}
		return events[:grant], nil
	}

	// Per-source charging: walk runs of consecutive same-Source events,
	// building a filtered slice only once something is refused.
	var out []event.Event
	shed := false
	for i := 0; i < len(events); {
		j := i + 1
		for j < len(events) && events[j].Source == events[i].Source {
			j++
		}
		run := events[i:j]
		src := run[0].Source
		qb := b.idShard(src).quotaBucketFor(src)
		grant := qb.admit(len(run), now, q.Rate, q.Burst, q.Reject)
		if rej := len(run) - grant; rej > 0 {
			qb.rejected.Add(uint64(rej))
			b.quotaRejected.Add(uint64(rej))
			if q.Reject {
				return nil, &OverQuotaError{Publisher: src, Rejected: rej}
			}
			if !shed {
				shed = true
				out = append(out, events[:i]...)
			}
		}
		if shed && grant > 0 {
			out = append(out, run[:grant]...)
		}
		i = j
	}
	if !shed {
		return events, nil
	}
	return out, nil
}

// QuotaRejectedFor returns the cumulative count of events refused by
// admission control charged against the given publisher. Publishers never
// refused read 0.
func (b *Bus) QuotaRejectedFor(pub guid.GUID) uint64 {
	var total uint64
	for _, sh := range b.shards {
		if t := sh.quotaTab.Load(); t != nil {
			if qb, ok := t.buckets[pub]; ok {
				total += qb.rejected.Load()
			}
		}
	}
	return total
}

// QuotaRejectedBySource returns a merged snapshot of per-publisher
// quota-refusal counts across all stripes. The nil-GUID key, when present,
// is the overflow bucket of publishers beyond the per-stripe tracking
// bound. Publishers tracked but never refused are omitted.
func (b *Bus) QuotaRejectedBySource() map[guid.GUID]uint64 {
	out := make(map[guid.GUID]uint64)
	for _, sh := range b.shards {
		if t := sh.quotaTab.Load(); t != nil {
			for src, qb := range t.buckets {
				if n := qb.rejected.Load(); n > 0 {
					out[src] += n
				}
			}
		}
	}
	return out
}
