package eventbus

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/leak"
)

var t0 = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

func mkEvent(t ctxtype.Type, seq uint64) event.Event {
	return event.New(t, guid.New(guid.KindDevice), seq, t0, nil)
}

// collect subscribes and accumulates delivered events into a slice guarded
// by a mutex, returning the accessor.
func collect(t *testing.T, b *Bus, f event.Filter, opts ...SubOption) (*Subscription, func() []event.Event) {
	t.Helper()
	var mu sync.Mutex
	var got []event.Event
	sub, err := b.Subscribe(f, func(e event.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sub, func() []event.Event {
		mu.Lock()
		defer mu.Unlock()
		out := make([]event.Event, len(got))
		copy(out, got)
		return out
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestPublishDeliversToMatchingSubs(t *testing.T) {
	b := New(nil)
	defer b.Close()
	_, gotTemp := collect(t, b, event.Filter{Type: ctxtype.TemperatureCelsius})
	_, gotAll := collect(t, b, event.Filter{})
	_, gotPrinter := collect(t, b, event.Filter{Type: ctxtype.PrinterStatus})

	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(gotTemp()) == 1 && len(gotAll()) == 1 })
	if len(gotPrinter()) != 0 {
		t.Fatal("printer sub received temperature event")
	}
}

func TestPublishValidates(t *testing.T) {
	b := New(nil)
	defer b.Close()
	if err := b.Publish(event.Event{}); err == nil {
		t.Fatal("invalid event accepted")
	}
}

func TestSubscribeNilHandler(t *testing.T) {
	b := New(nil)
	defer b.Close()
	if _, err := b.Subscribe(event.Filter{}, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestOrderingPerSubscription(t *testing.T) {
	b := New(nil)
	defer b.Close()
	_, got := collect(t, b, event.Filter{}, WithQueueLen(2048))
	const n = 500
	for i := 0; i < n; i++ {
		if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(got()) == n })
	for i, e := range got() {
		if e.Seq != uint64(i) {
			t.Fatalf("delivery out of order at %d: seq %d", i, e.Seq)
		}
	}
}

func TestDropOldestPolicy(t *testing.T) {
	b := New(nil)
	defer b.Close()
	block := make(chan struct{})
	var mu sync.Mutex
	var got []uint64
	first := make(chan struct{})
	var once sync.Once
	_, err := b.Subscribe(event.Filter{}, func(e event.Event) {
		once.Do(func() { close(first) })
		<-block
		mu.Lock()
		got = append(got, e.Seq)
		mu.Unlock()
	}, WithQueueLen(2), WithPolicy(DropOldest))
	if err != nil {
		t.Fatal(err)
	}
	// Publish one event and wait until the handler holds it (so the queue is
	// empty), then overfill the queue deterministically.
	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 0)); err != nil {
		t.Fatal(err)
	}
	<-first
	for i := 1; i <= 4; i++ { // queue cap 2: seqs 1,2 then 3 evicts 1, 4 evicts 2
		if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 3
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 0 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("DropOldest delivered %v, want [0 3 4]", got)
	}
	if s := b.Stats(); s.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", s.Dropped)
	}
}

func TestDropNewestPolicy(t *testing.T) {
	b := New(nil)
	defer b.Close()
	block := make(chan struct{})
	var mu sync.Mutex
	var got []uint64
	first := make(chan struct{})
	var once sync.Once
	_, err := b.Subscribe(event.Filter{}, func(e event.Event) {
		once.Do(func() { close(first) })
		<-block
		mu.Lock()
		got = append(got, e.Seq)
		mu.Unlock()
	}, WithQueueLen(2), WithPolicy(DropNewest))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 0)); err != nil {
		t.Fatal(err)
	}
	<-first
	for i := 1; i <= 4; i++ { // 1,2 admitted; 3,4 dropped
		if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 3
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("DropNewest delivered %v, want [0 1 2]", got)
	}
}

func TestOneShotSubscription(t *testing.T) {
	b := New(nil)
	defer b.Close()
	var calls atomic.Int32
	_, err := b.Subscribe(event.Filter{}, func(event.Event) {
		calls.Add(1)
	}, OneShot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = b.Publish(mkEvent(ctxtype.TemperatureCelsius, uint64(i)))
	}
	waitFor(t, func() bool { return calls.Load() == 1 })
	time.Sleep(20 * time.Millisecond) // would reveal extra deliveries
	if calls.Load() != 1 {
		t.Fatalf("one-shot delivered %d times", calls.Load())
	}
	waitFor(t, func() bool { return b.Stats().Subs == 0 })
}

func TestCancelStopsDelivery(t *testing.T) {
	b := New(nil)
	defer b.Close()
	sub, got := collect(t, b, event.Filter{})
	_ = b.Publish(mkEvent(ctxtype.TemperatureCelsius, 1))
	waitFor(t, func() bool { return len(got()) == 1 })
	sub.Cancel()
	sub.Cancel() // idempotent
	_ = b.Publish(mkEvent(ctxtype.TemperatureCelsius, 2))
	time.Sleep(20 * time.Millisecond)
	if len(got()) != 1 {
		t.Fatalf("delivered after cancel: %d events", len(got()))
	}
}

func TestCancelOwned(t *testing.T) {
	b := New(nil)
	defer b.Close()
	owner := guid.New(guid.KindApplication)
	other := guid.New(guid.KindApplication)
	collect(t, b, event.Filter{}, WithOwner(owner))
	collect(t, b, event.Filter{}, WithOwner(owner))
	_, gotOther := collect(t, b, event.Filter{}, WithOwner(other))
	if n := b.CancelOwned(owner); n != 2 {
		t.Fatalf("CancelOwned = %d, want 2", n)
	}
	if s := b.Stats(); s.Subs != 1 {
		t.Fatalf("Subs = %d, want 1", s.Subs)
	}
	_ = b.Publish(mkEvent(ctxtype.TemperatureCelsius, 1))
	waitFor(t, func() bool { return len(gotOther()) == 1 })
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	b := New(nil)
	collect(t, b, event.Filter{})
	b.Close()
	b.Close() // idempotent
	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 1)); err != ErrClosed {
		t.Fatalf("Publish after close: %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe(event.Filter{}, func(event.Event) {}); err != ErrClosed {
		t.Fatalf("Subscribe after close: %v, want ErrClosed", err)
	}
}

func TestSemanticEquivalenceDelivery(t *testing.T) {
	b := New(ctxtype.NewRegistry())
	defer b.Close()
	_, got := collect(t, b, event.Filter{Type: ctxtype.LocationSightingDoor})
	// A WLAN sighting must reach a door-sighting subscriber via equivalence.
	_ = b.Publish(mkEvent(ctxtype.LocationSightingWLAN, 1))
	waitFor(t, func() bool { return len(got()) == 1 })
}

func TestConcurrentPublishersAndSubscribers(t *testing.T) {
	defer leak.Check(t)()
	b := New(nil)
	defer b.Close()
	const pubs, perPub = 8, 200
	var delivered atomic.Int64
	for i := 0; i < 4; i++ {
		_, err := b.Subscribe(event.Filter{}, func(event.Event) {
			delivered.Add(1)
		}, WithQueueLen(pubs*perPub))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, uint64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return delivered.Load() == 4*pubs*perPub })
	s := b.Stats()
	if s.Published != pubs*perPub || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSubscriptionAccessors(t *testing.T) {
	b := New(nil)
	defer b.Close()
	owner := guid.New(guid.KindApplication)
	f := event.Filter{Type: ctxtype.PathRoute}
	sub, _ := collect(t, b, f, WithOwner(owner))
	if sub.ID().IsNil() || sub.ID().Kind() != guid.KindSubscription {
		t.Fatal("bad subscription id")
	}
	if sub.Owner() != owner {
		t.Fatal("owner not recorded")
	}
	if sub.Filter().Type != ctxtype.PathRoute {
		t.Fatal("filter not recorded")
	}
	if sub.String() == "" {
		t.Fatal("empty String")
	}
	ids := b.SubscriptionIDs()
	if len(ids) != 1 || ids[0] != sub.ID() {
		t.Fatal("SubscriptionIDs mismatch")
	}
}

func BenchmarkPublish1Sub(b *testing.B) {
	benchPublish(b, 1)
}

func BenchmarkPublish16Subs(b *testing.B) {
	benchPublish(b, 16)
}

func BenchmarkPublish256Subs(b *testing.B) {
	benchPublish(b, 256)
}

func benchPublish(b *testing.B, nsubs int) {
	bus := New(nil)
	defer bus.Close()
	for i := 0; i < nsubs; i++ {
		if _, err := bus.Subscribe(event.Filter{}, func(event.Event) {}, WithQueueLen(4096)); err != nil {
			b.Fatal(err)
		}
	}
	e := mkEvent(ctxtype.TemperatureCelsius, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bus.Publish(e); err != nil {
			b.Fatal(err)
		}
	}
}
