package eventbus

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/leak"
)

func mkEventFrom(src guid.GUID, seq uint64) event.Event {
	return event.New(ctxtype.TemperatureCelsius, src, seq, t0, nil)
}

func mkBatchFrom(src guid.GUID, n int, seq *uint64) []event.Event {
	out := make([]event.Event, 0, n)
	for i := 0; i < n; i++ {
		*seq++
		out = append(out, mkEventFrom(src, *seq))
	}
	return out
}

// TestQuotaAdmitsBurstThenClips: with the clock frozen, each publisher
// admits exactly its burst and sheds the rest, counted per source.
func TestQuotaAdmitsBurstThenClips(t *testing.T) {
	clk := clock.NewManual(t0)
	b := New(nil, WithQuota(Quota{Rate: 100, Burst: 10, Clock: clk}))
	defer b.Close()
	src := guid.New(guid.KindDevice)
	var seq uint64
	for i := 0; i < 5; i++ {
		if err := b.PublishAllOwnedFrom(src, mkBatchFrom(src, 5, &seq)); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.QuotaRejectedFor(src); got != 15 {
		t.Fatalf("rejected = %d, want 15 (25 offered, burst 10)", got)
	}
	if st := b.Stats(); st.QuotaRejected != 15 {
		t.Fatalf("Stats().QuotaRejected = %d, want 15", st.QuotaRejected)
	}
	// Advance the clock: 50ms at 100/s refills 5 tokens.
	clk.Advance(50 * time.Millisecond)
	if err := b.PublishAllOwnedFrom(src, mkBatchFrom(src, 10, &seq)); err != nil {
		t.Fatal(err)
	}
	if got := b.QuotaRejectedFor(src); got != 20 {
		t.Fatalf("rejected = %d after refill, want 20 (5 of 10 admitted)", got)
	}
}

// TestQuotaRejectMode: Reject surfaces a typed error instead of shedding,
// and a single-event Publish is all-or-nothing.
func TestQuotaRejectMode(t *testing.T) {
	clk := clock.NewManual(t0)
	b := New(nil, WithQuota(Quota{Rate: 100, Burst: 2, Reject: true, Clock: clk}))
	defer b.Close()
	src := guid.New(guid.KindDevice)
	var seq uint64
	for i := 0; i < 2; i++ {
		seq++
		if err := b.Publish(mkEventFrom(src, seq)); err != nil {
			t.Fatalf("within burst: %v", err)
		}
	}
	seq++
	err := b.Publish(mkEventFrom(src, seq))
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-burst Publish = %v, want ErrOverQuota", err)
	}
	var oq *OverQuotaError
	if !errors.As(err, &oq) || oq.Publisher != src || oq.Rejected != 1 {
		t.Fatalf("typed error = %+v", err)
	}
	if err := b.PublishAllOwnedFrom(src, mkBatchFrom(src, 3, &seq)); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-quota batch = %v, want ErrOverQuota", err)
	}
	// Another publisher is unaffected.
	other := guid.New(guid.KindDevice)
	var oseq uint64
	if err := b.PublishAllOwnedFrom(other, mkBatchFrom(other, 2, &oseq)); err != nil {
		t.Fatalf("independent publisher rejected: %v", err)
	}
}

// TestQuotaNilPublisherChargesPerSource: PublishAll (no explicit publisher)
// charges each run of events against its own Source.
func TestQuotaNilPublisherChargesPerSource(t *testing.T) {
	clk := clock.NewManual(t0)
	b := New(nil, WithQuota(Quota{Rate: 100, Burst: 4, Clock: clk}))
	defer b.Close()
	a := guid.New(guid.KindDevice)
	c := guid.New(guid.KindDevice)
	var aseq, cseq uint64
	batch := append(mkBatchFrom(a, 6, &aseq), mkBatchFrom(c, 3, &cseq)...)
	if err := b.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	if got := b.QuotaRejectedFor(a); got != 2 {
		t.Fatalf("source a rejected = %d, want 2 (6 offered, burst 4)", got)
	}
	if got := b.QuotaRejectedFor(c); got != 0 {
		t.Fatalf("source c rejected = %d, want 0 (3 within burst)", got)
	}
	by := b.QuotaRejectedBySource()
	if len(by) != 1 || by[a] != 2 {
		t.Fatalf("QuotaRejectedBySource = %v", by)
	}
}

// TestQuotaConcurrentFloodConservation: many goroutines flooding distinct
// sources race the bucket table; every source admits exactly its burst
// (frozen clock) and offered == admitted + rejected for each.
func TestQuotaConcurrentFloodConservation(t *testing.T) {
	defer leak.Check(t)()
	const (
		sources  = 8
		perG     = 500
		burst    = 25
		batchLen = 7
	)
	clk := clock.NewManual(t0)
	b := New(nil, WithQuota(Quota{Rate: 1000, Burst: burst, Clock: clk}))
	defer b.Close()

	var mu sync.Mutex
	counts := make(map[guid.GUID]int)
	if _, err := b.Subscribe(event.Filter{}, func(e event.Event) {
		mu.Lock()
		counts[e.Source]++
		mu.Unlock()
	}, WithQueueLen(sources*perG*batchLen)); err != nil {
		t.Fatal(err)
	}

	srcs := make([]guid.GUID, sources)
	for i := range srcs {
		srcs[i] = guid.New(guid.KindDevice)
	}
	var wg sync.WaitGroup
	for i := 0; i < sources; i++ {
		wg.Add(1)
		go func(src guid.GUID) {
			defer wg.Done()
			var seq uint64
			for j := 0; j < perG; j++ {
				_ = b.PublishAllOwnedFrom(src, mkBatchFrom(src, batchLen, &seq))
			}
		}(srcs[i])
	}
	wg.Wait()
	for _, src := range srcs {
		offered := uint64(perG * batchLen)
		rejected := b.QuotaRejectedFor(src)
		if admitted := offered - rejected; admitted != burst {
			t.Fatalf("source %s admitted %d, want exactly burst %d (frozen clock)",
				src.Short(), admitted, burst)
		}
	}
	// Every admitted event reached the subscriber: offered == delivered +
	// rejected per source.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, src := range srcs {
			if counts[src] != burst {
				return false
			}
		}
		return true
	})
}

// TestQuotaTableBounding: beyond maxQuotaSources distinct publishers per
// shard, newcomers share the nil-GUID overflow bucket instead of growing
// the table without bound.
func TestQuotaTableBounding(t *testing.T) {
	old := maxQuotaSources
	maxQuotaSources = 4
	defer func() { maxQuotaSources = old }()

	clk := clock.NewManual(t0)
	b := New(nil, WithShards(1), WithQuota(Quota{Rate: 100, Burst: 2, Clock: clk}))
	defer b.Close()

	var srcs []guid.GUID
	for i := 0; i < 8; i++ {
		src := guid.New(guid.KindDevice)
		srcs = append(srcs, src)
		var seq uint64
		if err := b.PublishAllOwnedFrom(src, mkBatchFrom(src, 3, &seq)); err != nil {
			t.Fatal(err)
		}
	}
	by := b.QuotaRejectedBySource()
	// First 4 sources own buckets (1 rejection each: 3 offered, burst 2);
	// the remaining 4 share the overflow bucket, whose burst admits 2 of
	// the 12 overflow events in total.
	named := 0
	for _, src := range srcs {
		if n, ok := by[src]; ok {
			named++
			if n != 1 {
				t.Fatalf("named source rejected %d, want 1", n)
			}
		}
	}
	if named != 4 {
		t.Fatalf("named quota buckets = %d, want maxQuotaSources = 4", named)
	}
	if got := by[guid.Nil]; got != 10 {
		t.Fatalf("overflow bucket rejected %d, want 10 (12 offered, burst 2)", got)
	}
}

// TestQuotaDisabledNoOverhead: without WithQuota, publishing carries no
// quota accounting at all.
func TestQuotaDisabledNoOverhead(t *testing.T) {
	b := New(nil)
	defer b.Close()
	src := guid.New(guid.KindDevice)
	var seq uint64
	if err := b.PublishAllOwnedFrom(src, mkBatchFrom(src, 100, &seq)); err != nil {
		t.Fatal(err)
	}
	if got := b.QuotaRejectedFor(src); got != 0 {
		t.Fatalf("quota accounting active without WithQuota: %d", got)
	}
	if st := b.Stats(); st.QuotaRejected != 0 {
		t.Fatalf("Stats().QuotaRejected = %d without quota", st.QuotaRejected)
	}
}
