package eventbus

// Allocation cross-checks for this package's //lint:hotpath annotations
// (Bus.dispatchRuns, Bus.lookupKeys, Subscription.enqueueRun,
// shard.dropCounter). The static hotpath analyzer proves the absence of
// allocating constructs up to its //lint:allow escapes; these tests prove
// the escapes were justified — the warmed steady-state publish path really
// is allocation-free. internal/analysis/hotpath's registry test fails if an
// annotation exists without a covering check here.

import (
	"sync"
	"testing"

	"sci/internal/event"
	"sci/internal/guid"
)

// parkedBus builds a bus with one exact-tier match-all subscription whose
// delivery loop is parked inside the handler, so nothing races the
// measured publisher, and returns the warmed batch to publish. cleanup
// unparks the handler and closes the bus.
func parkedBus(t testing.TB) (b *Bus, run []event.Event, pub guid.GUID) {
	t.Helper()
	b = New(nil)
	entered := make(chan struct{})
	block := make(chan struct{})
	var once sync.Once
	_, err := b.SubscribeBatch(event.Filter{Type: "bench.hot"}, func([]event.Event) {
		once.Do(func() { close(entered) })
		<-block
	}, WithQueueLen(32))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		close(block)
		b.Close()
	})

	pub = guid.New(guid.KindApplication)
	run = make([]event.Event, 4)
	for i := range run {
		run[i] = event.New("bench.hot", pub, uint64(i+1), t0, nil)
	}
	// Warm every install path the measured loop touches: the lookup-key
	// memo, the drop-counter table (the ring must be full so steady state
	// is the eviction path), the target-slice pool, and park the delivery
	// loop so drains never interleave with the measurement.
	for i := 0; i < 12; i++ {
		if err := b.PublishAllOwnedFrom(pub, run); err != nil {
			t.Fatal(err)
		}
	}
	<-entered
	return b, run, pub
}

// TestHotpathPublishZeroAlloc drives the full publish fan-out —
// dispatchRuns → lookupKeys → enqueueRun → dropCounter — through the
// exported owned-batch API and requires the warmed path to allocate
// nothing per batch.
func TestHotpathPublishZeroAlloc(t *testing.T) {
	b, run, pub := parkedBus(t)
	allocs := testing.AllocsPerRun(500, func() {
		if err := b.PublishAllOwnedFrom(pub, run); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("publish path allocates %.1f times per batch, want 0", allocs)
	}
}

// TestHotpathLookupKeysZeroAlloc pins the memoised hit path of lookupKeys.
func TestHotpathLookupKeysZeroAlloc(t *testing.T) {
	b, _, _ := parkedBus(t)
	allocs := testing.AllocsPerRun(500, func() {
		if ks := b.lookupKeys("bench.hot"); len(ks) == 0 {
			t.Fatal("no keys for warmed type")
		}
	})
	if allocs != 0 {
		t.Fatalf("lookupKeys hit path allocates %.1f times, want 0", allocs)
	}
}

// TestHotpathDropCounterZeroAlloc pins the lock-free table hit of
// dropCounter once a publisher's counter is installed.
func TestHotpathDropCounterZeroAlloc(t *testing.T) {
	b, _, pub := parkedBus(t)
	sh := b.typeShard("bench.hot")
	if sh.dropCounter(pub) == nil {
		t.Fatal("no drop counter after warm-up")
	}
	allocs := testing.AllocsPerRun(500, func() {
		sh.dropCounter(pub).Add(0)
	})
	if allocs != 0 {
		t.Fatalf("dropCounter hit path allocates %.1f times, want 0", allocs)
	}
}

func BenchmarkHotpathPublishOwned(b *testing.B) {
	bus, run, pub := parkedBus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bus.PublishAllOwnedFrom(pub, run); err != nil {
			b.Fatal(err)
		}
	}
}
