package eventbus

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/leak"
)

func TestPublishAllDeliversAcrossTypeRuns(t *testing.T) {
	b := New(nil)
	defer b.Close()
	_, gotTemp := collect(t, b, event.Filter{Type: ctxtype.TemperatureCelsius})
	_, gotPrinter := collect(t, b, event.Filter{Type: ctxtype.PrinterStatus})
	_, gotAll := collect(t, b, event.Filter{})

	batch := []event.Event{
		mkEvent(ctxtype.TemperatureCelsius, 1),
		mkEvent(ctxtype.TemperatureCelsius, 2),
		mkEvent(ctxtype.PrinterStatus, 3),
		mkEvent(ctxtype.PrinterStatus, 4),
		mkEvent(ctxtype.TemperatureCelsius, 5),
	}
	if err := b.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(gotAll()) == 5 })
	waitFor(t, func() bool { return len(gotTemp()) == 3 })
	waitFor(t, func() bool { return len(gotPrinter()) == 2 })

	for i, e := range gotTemp() {
		if want := []uint64{1, 2, 5}[i]; e.Seq != want {
			t.Fatalf("temp order: got seq %d at %d, want %d", e.Seq, i, want)
		}
	}
	for i, e := range gotAll() {
		if want := uint64(i + 1); e.Seq != want {
			t.Fatalf("wildcard order: got seq %d at %d, want %d", e.Seq, i, want)
		}
	}
	st := b.Stats()
	if st.Published != 5 {
		t.Fatalf("published = %d, want 5", st.Published)
	}
	if st.Delivered != 10 {
		t.Fatalf("delivered = %d, want 10", st.Delivered)
	}
}

func TestPublishAllAppliesFieldConstraints(t *testing.T) {
	b := New(nil)
	defer b.Close()
	src := guid.New(guid.KindDevice)
	other := guid.New(guid.KindDevice)
	_, got := collect(t, b, event.Filter{Type: ctxtype.TemperatureCelsius, Source: src})

	batch := []event.Event{
		event.New(ctxtype.TemperatureCelsius, src, 1, t0, nil),
		event.New(ctxtype.TemperatureCelsius, other, 2, t0, nil),
		event.New(ctxtype.TemperatureCelsius, src, 3, t0, nil),
	}
	if err := b.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 2 })
	if es := got(); es[0].Seq != 1 || es[1].Seq != 3 {
		t.Fatalf("wrong events delivered: %v", es)
	}
}

func TestSubscribeBatchDrainsBacklogAsOneSlice(t *testing.T) {
	b := New(nil)
	defer b.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var sizes []int
	var total int
	first := true
	_, err := b.SubscribeBatch(event.Filter{Type: ctxtype.TemperatureCelsius}, func(events []event.Event) {
		if first {
			first = false
			entered <- struct{}{}
			<-release
		}
		mu.Lock()
		sizes = append(sizes, len(events))
		total += len(events)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Park the delivery goroutine inside the first invocation, then queue a
	// backlog: it must arrive as one slice on the next wakeup.
	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 0)); err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := 1; i <= 5; i++ {
		if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return total == 6
	})
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 5 {
		t.Fatalf("batch sizes = %v, want [1 5]", sizes)
	}
}

func TestPublishAllOneShotDeliversExactlyOne(t *testing.T) {
	b := New(nil)
	defer b.Close()
	var n atomic.Int64
	sub, err := b.Subscribe(event.Filter{Type: ctxtype.TemperatureCelsius}, func(event.Event) {
		n.Add(1)
	}, OneShot())
	if err != nil {
		t.Fatal(err)
	}
	batch := []event.Event{
		mkEvent(ctxtype.TemperatureCelsius, 1),
		mkEvent(ctxtype.TemperatureCelsius, 2),
		mkEvent(ctxtype.TemperatureCelsius, 3),
	}
	if err := b.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sub.isClosed() })
	waitFor(t, func() bool { return len(b.SubscriptionIDs()) == 0 })
	if got := n.Load(); got != 1 {
		t.Fatalf("one-shot delivered %d events, want 1", got)
	}
}

func TestPublishAllValidatesWholeBatchUpFront(t *testing.T) {
	b := New(nil)
	defer b.Close()
	_, got := collect(t, b, event.Filter{})
	batch := []event.Event{
		mkEvent(ctxtype.TemperatureCelsius, 1),
		{}, // invalid: nil id/source
	}
	if err := b.PublishAll(batch); err == nil {
		t.Fatal("want validation error")
	}
	if st := b.Stats(); st.Published != 0 {
		t.Fatalf("published = %d after failed batch, want 0", st.Published)
	}
	if len(got()) != 0 {
		t.Fatal("events delivered from rejected batch")
	}
}

func TestPublishAllOnClosedBus(t *testing.T) {
	b := New(nil)
	b.Close()
	err := b.PublishAll([]event.Event{mkEvent(ctxtype.TemperatureCelsius, 1)})
	if err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if b.PublishAll(nil) != nil {
		t.Fatal("empty batch must be a no-op even on a closed bus")
	}
}

func TestPublishAllDropAccounting(t *testing.T) {
	b := New(nil)
	defer b.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	var delivered atomic.Int64
	_, err := b.Subscribe(event.Filter{Type: ctxtype.TemperatureCelsius}, func(event.Event) {
		if delivered.Add(1) == 1 {
			entered <- struct{}{}
			<-release
		}
	}, WithQueueLen(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 0)); err != nil {
		t.Fatal(err)
	}
	<-entered // queue is now empty, delivery goroutine parked in the handler

	batch := make([]event.Event, 5)
	for i := range batch {
		batch[i] = mkEvent(ctxtype.TemperatureCelsius, uint64(i+1))
	}
	if err := b.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3 (batch of 5 into queue of 2)", st.Dropped)
	}
	close(release)
	// DropOldest: the survivors are the last two of the batch.
	waitFor(t, func() bool { return delivered.Load() == 3 })
}

// TestConcurrentPublishAllAndChurn races batched publishes against
// subscription churn and equivalence-generation changes; run with -race.
func TestConcurrentPublishAllAndChurn(t *testing.T) {
	defer leak.Check(t)()
	reg := ctxtype.NewRegistry()
	b := New(reg, WithShards(4))
	defer b.Close()

	const (
		publishers = 4
		churners   = 4
		rounds     = 200
	)
	types := make([]ctxtype.Type, 8)
	for i := range types {
		types[i] = ctxtype.Type(fmt.Sprintf("churn.batch%d", i))
	}
	stop := make(chan struct{})
	var pubWG, churnWG sync.WaitGroup

	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			src := guid.New(guid.KindDevice)
			batch := make([]event.Event, 0, 16)
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				batch = batch[:0]
				for k := 0; k < 16; k++ {
					batch = append(batch, event.New(types[(r+k/4)%len(types)], src, uint64(r), t0, nil))
				}
				if err := b.PublishAll(batch); err != nil && err != ErrClosed {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for c := 0; c < churners; c++ {
		churnWG.Add(1)
		go func(c int) {
			defer churnWG.Done()
			for r := 0; r < rounds; r++ {
				f := event.Filter{Type: types[(c+r)%len(types)]}
				if r%5 == 0 {
					f = event.Filter{} // keep the residual tier busy too
				}
				sub, err := b.Subscribe(f, func(event.Event) {}, WithQueueLen(8))
				if err != nil {
					t.Error(err)
					return
				}
				sub.Cancel()
			}
		}(c)
	}

	churnWG.Wait() // churners are bounded; publishers run until stopped
	close(stop)
	pubWG.Wait()
	if len(b.SubscriptionIDs()) != 0 {
		t.Fatal("cancelled subscriptions left in the index")
	}
}
