package eventbus

// Tests for per-publisher drop attribution: every event discarded from a
// full subscription queue is counted against its publisher (the explicit
// attribution key of a PublishAllOwnedFrom ingest, or the event's own
// Source), so flow-credit acks can blame the traffic actually causing the
// drops instead of the bus-wide total.

import (
	"sync"
	"sync/atomic"
	"testing"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

// parkedSub subscribes with the given queue length and parks the delivery
// goroutine inside the handler after its first delivery, so subsequent
// publishes fill the ring deterministically.
func parkedSub(t *testing.T, b *Bus, queueLen int, policy DropPolicy) (release func()) {
	t.Helper()
	entered := make(chan struct{})
	gate := make(chan struct{})
	var delivered atomic.Int64
	_, err := b.Subscribe(event.Filter{Type: ctxtype.TemperatureCelsius}, func(event.Event) {
		if delivered.Add(1) == 1 {
			entered <- struct{}{}
			<-gate
		}
	}, WithQueueLen(queueLen), WithPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 0)); err != nil {
		t.Fatal(err)
	}
	<-entered // ring empty, delivery goroutine parked in the handler
	return func() { close(gate) }
}

func eventsFrom(src guid.GUID, n int, base uint64) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.New(ctxtype.TemperatureCelsius, src, base+uint64(i), t0, nil)
	}
	return out
}

// TestDropOldestBlamesTheFlooder: a hot publisher fills a subscriber's
// ring; an idle publisher's single event then evicts one of the flooder's.
// The drop must be attributed to the flooder — whose traffic is being lost
// — not to the innocent publisher whose arrival triggered the eviction.
func TestDropOldestBlamesTheFlooder(t *testing.T) {
	b := New(nil)
	defer b.Close()
	release := parkedSub(t, b, 4, DropOldest)
	defer release()

	flooder := guid.New(guid.KindDevice)
	idle := guid.New(guid.KindDevice)
	if err := b.PublishAllOwned(eventsFrom(flooder, 4, 1)); err != nil {
		t.Fatal(err) // ring now full of the flooder's events
	}
	if err := b.Publish(event.New(ctxtype.TemperatureCelsius, idle, 1, t0, nil)); err != nil {
		t.Fatal(err)
	}
	if got := b.DropsFor(flooder); got != 1 {
		t.Fatalf("DropsFor(flooder) = %d, want 1", got)
	}
	if got := b.DropsFor(idle); got != 0 {
		t.Fatalf("DropsFor(idle) = %d, want 0 — the eviction is not its fault", got)
	}
	if st := b.Stats(); st.Dropped != 1 {
		t.Fatalf("total dropped = %d, want 1", st.Dropped)
	}
}

// TestDropNewestBlamesTheArrival: under DropNewest the discarded events are
// the incoming ones, attributed to their own publisher.
func TestDropNewestBlamesTheArrival(t *testing.T) {
	b := New(nil)
	defer b.Close()
	release := parkedSub(t, b, 2, DropNewest)
	defer release()

	early := guid.New(guid.KindDevice)
	late := guid.New(guid.KindDevice)
	if err := b.PublishAllOwned(eventsFrom(early, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.PublishAllOwned(eventsFrom(late, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if got := b.DropsFor(late); got != 3 {
		t.Fatalf("DropsFor(late) = %d, want 3", got)
	}
	if got := b.DropsFor(early); got != 0 {
		t.Fatalf("DropsFor(early) = %d, want 0", got)
	}
}

// TestExplicitAttributionKeyOverridesSource: a PublishAllOwnedFrom ingest
// counts drops against the given endpoint key even though the events carry
// different Source GUIDs — the wire/overlay ingest case, where the link's
// sender, not the original producer, is the traffic to throttle.
func TestExplicitAttributionKeyOverridesSource(t *testing.T) {
	b := New(nil)
	defer b.Close()
	release := parkedSub(t, b, 2, DropOldest)
	defer release()

	endpoint := guid.New(guid.KindApplication)
	producer := guid.New(guid.KindDevice)
	// A run larger than the ring: the whole-ring replacement path. 5 events
	// into 2 slots = 3 drops, all against the endpoint key.
	if err := b.PublishAllOwnedFrom(endpoint, eventsFrom(producer, 5, 1)); err != nil {
		t.Fatal(err)
	}
	if got := b.DropsFor(endpoint); got != 3 {
		t.Fatalf("DropsFor(endpoint) = %d, want 3", got)
	}
	if got := b.DropsFor(producer); got != 0 {
		t.Fatalf("DropsFor(producer) = %d, want 0 — the key overrides Source", got)
	}
	// Later evictions of the retained run still blame the endpoint.
	if err := b.PublishAllOwnedFrom(endpoint, eventsFrom(producer, 1, 9)); err != nil {
		t.Fatal(err)
	}
	if got := b.DropsFor(endpoint); got != 4 {
		t.Fatalf("DropsFor(endpoint) after eviction = %d, want 4", got)
	}
	snap := b.DropsBySource()
	if len(snap) != 1 || snap[endpoint] != 4 {
		t.Fatalf("DropsBySource = %v, want {endpoint: 4}", snap)
	}
}

// TestDropAttributionSumsToTotal races mixed-source floods against a slow
// subscriber and checks the per-publisher attribution always sums to the
// bus-wide drop counter (run with -race).
func TestDropAttributionSumsToTotal(t *testing.T) {
	b := New(nil, WithShards(4))
	defer b.Close()
	if _, err := b.Subscribe(event.Filter{Type: ctxtype.TemperatureCelsius},
		func(event.Event) {}, WithQueueLen(8)); err != nil {
		t.Fatal(err)
	}

	const publishers = 4
	var wg sync.WaitGroup
	keys := make([]guid.GUID, publishers)
	for p := 0; p < publishers; p++ {
		keys[p] = guid.New(guid.KindApplication)
		wg.Add(1)
		go func(key guid.GUID) {
			defer wg.Done()
			src := guid.New(guid.KindDevice)
			for i := 0; i < 200; i++ {
				_ = b.PublishAllOwnedFrom(key, eventsFrom(src, 16, uint64(i*16+1)))
			}
		}(keys[p])
	}
	wg.Wait()

	var attributed uint64
	for _, n := range b.DropsBySource() {
		attributed += n
	}
	if total := b.Stats().Dropped; attributed != total {
		t.Fatalf("attributed drops = %d, bus total = %d", attributed, total)
	}
}
