package eventbus

// Tests for the two-tier sharded subscription index: placement, lookup
// semantics (hierarchy, equivalence, post-subscribe equivalence changes),
// dispatch counters, and race-hardened lifecycle churn. Run with -race.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/leak"
)

func TestIndexedHierarchicalDelivery(t *testing.T) {
	b := New(nil)
	defer b.Close()
	// An ancestor-pattern subscription must receive descendant events via
	// the exact index (the event's ancestor chain is part of the key set).
	_, gotParent := collect(t, b, event.Filter{Type: ctxtype.LocationSighting})
	_, gotExact := collect(t, b, event.Filter{Type: ctxtype.LocationSightingDoor})
	_, gotOther := collect(t, b, event.Filter{Type: ctxtype.PrinterStatus})

	if err := b.Publish(mkEvent(ctxtype.LocationSightingDoor, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(gotParent()) == 1 && len(gotExact()) == 1 })
	if len(gotOther()) != 0 {
		t.Fatal("unrelated subscription received the event")
	}
	if st := b.Stats(); st.IndexHits != 2 || st.ResidualScanned != 0 {
		t.Fatalf("index stats = %+v, want 2 hits / 0 residual", st)
	}
}

func TestEquivalenceDeclaredAfterSubscribe(t *testing.T) {
	reg := &ctxtype.Registry{}
	for _, ty := range []ctxtype.Type{"radar.ping", "sonar.ping"} {
		if err := reg.Register(ty); err != nil {
			t.Fatal(err)
		}
	}
	b := New(reg)
	defer b.Close()
	_, got := collect(t, b, event.Filter{Type: "radar.ping"})

	// Not yet equivalent: a sonar event must not reach the radar filter
	// (and the lookup-key memo now caches that answer).
	if err := b.Publish(mkEvent("sonar.ping", 1)); err != nil {
		t.Fatal(err)
	}
	// Declaring the equivalence bumps the registry generation, invalidating
	// the memo, so the next publish must be delivered.
	if err := reg.DeclareEquivalent("radar.ping", "sonar.ping"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(mkEvent("sonar.ping", 2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 1 })
	if es := got(); es[0].Seq != 2 {
		t.Fatalf("delivered seq %d, want 2 (pre-equivalence event must not match)", es[0].Seq)
	}
}

func TestExactIndexAppliesFieldConstraints(t *testing.T) {
	b := New(nil)
	defer b.Close()
	src := guid.New(guid.KindDevice)
	_, gotSrc := collect(t, b, event.Filter{Type: ctxtype.TemperatureCelsius, Source: src})

	other := event.New(ctxtype.TemperatureCelsius, guid.New(guid.KindDevice), 1, t0, nil)
	mine := event.New(ctxtype.TemperatureCelsius, src, 2, t0, nil)
	if err := b.Publish(other); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(mine); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(gotSrc()) == 1 })
	if es := gotSrc(); es[0].Seq != 2 {
		t.Fatalf("source constraint not applied on the index path: got seq %d", es[0].Seq)
	}
}

func TestResidualTierAndHitRatio(t *testing.T) {
	b := New(nil)
	defer b.Close()
	if r := b.IndexHitRatio(); r != 1 {
		t.Fatalf("idle ratio = %v, want 1", r)
	}
	_, gotAll := collect(t, b, event.Filter{Type: ctxtype.Wildcard})
	_, gotTyped := collect(t, b, event.Filter{Type: ctxtype.PrinterStatus})

	if err := b.Publish(mkEvent(ctxtype.PrinterStatus, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(gotAll()) == 1 && len(gotTyped()) == 1 })
	st := b.Stats()
	if st.IndexHits != 1 || st.ResidualScanned != 1 {
		t.Fatalf("stats = %+v, want 1 index hit and 1 residual scan", st)
	}
	if r := b.IndexHitRatio(); r != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", r)
	}
}

func TestShardStatsAccounting(t *testing.T) {
	b := New(nil, WithShards(4))
	defer b.Close()
	if b.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", b.Shards())
	}
	_, got := collect(t, b, event.Filter{Type: ctxtype.TemperatureCelsius})
	collect(t, b, event.Filter{})
	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 1 })
	shards := b.ShardStats()
	if len(shards) != 4 {
		t.Fatalf("len(ShardStats) = %d", len(shards))
	}
	var pub, exact, residual, patterns int
	for _, s := range shards {
		pub += int(s.Published)
		exact += s.Exact
		residual += s.Residual
		patterns += s.Patterns
	}
	if pub != 1 || exact != 1 || residual != 1 || patterns != 1 {
		t.Fatalf("aggregated shard stats pub=%d exact=%d residual=%d patterns=%d, want 1/1/1/1",
			pub, exact, residual, patterns)
	}
}

func TestWithShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		b := New(nil, WithShards(tc.in))
		if b.Shards() != tc.want {
			t.Fatalf("WithShards(%d) → %d stripes, want %d", tc.in, b.Shards(), tc.want)
		}
		b.Close()
	}
}

// TestConcurrentLifecycleChurn hammers Subscribe/Cancel/Publish/CancelOwned
// from many goroutines at once across exact and residual tiers; run under
// -race it is the core data-race check for the sharded index.
func TestConcurrentLifecycleChurn(t *testing.T) {
	defer leak.Check(t)()
	b := New(nil, WithShards(4))
	defer b.Close()
	types := []ctxtype.Type{
		ctxtype.TemperatureCelsius, ctxtype.PrinterStatus,
		ctxtype.LocationSightingDoor, ctxtype.Wildcard,
	}
	owners := make([]guid.GUID, 4)
	for i := range owners {
		owners[i] = guid.New(guid.KindApplication)
	}
	const (
		workers = 8
		rounds  = 300
	)
	var delivered atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []*Subscription
			for i := 0; i < rounds; i++ {
				switch rng.Intn(5) {
				case 0, 1: // subscribe
					f := event.Filter{}
					if ty := types[rng.Intn(len(types))]; ty != ctxtype.Wildcard {
						f.Type = ty
					}
					s, err := b.Subscribe(f, func(event.Event) { delivered.Add(1) },
						WithOwner(owners[rng.Intn(len(owners))]), WithQueueLen(8))
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, s)
				case 2: // cancel one of ours
					if len(mine) > 0 {
						i := rng.Intn(len(mine))
						mine[i].Cancel()
						mine = append(mine[:i], mine[i+1:]...)
					}
				case 3: // bulk-cancel an owner
					b.CancelOwned(owners[rng.Intn(len(owners))])
				default: // publish
					ty := types[rng.Intn(len(types)-1)] // concrete types only
					if err := b.Publish(mkEvent(ty, uint64(i))); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for _, s := range mine {
				s.Cancel()
			}
		}(int64(w + 1))
	}
	wg.Wait()
	// All subscriptions were cancelled (worker-local cancels may race with
	// CancelOwned, which is fine — Cancel is idempotent).
	waitFor(t, func() bool { return b.Stats().Subs == 0 })
	st := b.Stats()
	if st.Published == 0 {
		t.Fatal("no events published during churn")
	}
	if got := len(b.SubscriptionIDs()); got != 0 {
		t.Fatalf("%d subscriptions survived the churn", got)
	}
}

// TestCloseDuringChurn closes the bus while publishers and subscribers are
// active: Close must win cleanly (no deadlock, no leaked delivery
// goroutines — the deferred wg.Wait inside Close covers that) and
// subsequent operations must report ErrClosed.
func TestCloseDuringChurn(t *testing.T) {
	b := New(nil, WithShards(2))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := event.Filter{}
				if w%2 == 0 {
					f.Type = ctxtype.Type(fmt.Sprintf("churn.t%d", i%7))
				}
				s, err := b.Subscribe(f, func(event.Event) {})
				if err != nil {
					if err != ErrClosed {
						t.Errorf("Subscribe: %v", err)
					}
					return
				}
				if err := b.Publish(mkEvent(ctxtype.Type(fmt.Sprintf("churn.t%d", i%7)), uint64(i))); err != nil && err != ErrClosed {
					t.Errorf("Publish: %v", err)
					return
				}
				if i%3 == 0 {
					s.Cancel()
				}
			}
		}(w)
	}
	// Let the churn get going, then close underneath it.
	for b.Stats().Published < 50 {
		time.Sleep(time.Millisecond)
	}
	b.Close()
	close(stop)
	wg.Wait()
	if err := b.Publish(mkEvent(ctxtype.TemperatureCelsius, 1)); err != ErrClosed {
		t.Fatalf("Publish after close: %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe(event.Filter{}, func(event.Event) {}); err != ErrClosed {
		t.Fatalf("Subscribe after close: %v, want ErrClosed", err)
	}
	if got := b.Stats().Subs; got != 0 {
		t.Fatalf("Subs = %d after Close", got)
	}
}

// TestPublishConcurrentWithEquivalenceChanges exercises the lookup-key
// memo's copy-on-write invalidation while publishes race with
// DeclareEquivalent calls.
func TestPublishConcurrentWithEquivalenceChanges(t *testing.T) {
	defer leak.Check(t)()
	reg := &ctxtype.Registry{}
	b := New(reg)
	defer b.Close()
	_, got := collect(t, b, event.Filter{Type: "eq.a"})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			// Growing chain: eq.a ≡ eq.b0 ≡ eq.b1 ≡ … — each call bumps
			// the generation and invalidates the key memo mid-publish.
			if err := reg.DeclareEquivalent("eq.a", ctxtype.Type(fmt.Sprintf("eq.b%d", i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if err := b.Publish(mkEvent("eq.b0", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	// After the declarations settle, eq.b0 events must reach the eq.a
	// subscriber deterministically.
	if err := b.Publish(mkEvent("eq.b0", 999)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, e := range got() {
			if e.Seq == 999 {
				return true
			}
		}
		return false
	})
}
