// Package eventbus provides the in-process publish/subscribe fabric that a
// Range's Event Mediator is built on.
//
// The paper's hybrid communication model (Section 4) combines distributed
// events with point-to-point communication. Within one Range, all event
// traffic between Context Entities and Context Aware Applications flows
// through a Bus: producers publish typed events; subscribers receive the
// subset matching their Filter on a bounded queue serviced by a dedicated
// delivery goroutine, so one slow consumer can never stall producers or
// other consumers.
//
// # Dispatch architecture
//
// Dispatch is a two-tier subscription index, lock-striped across a
// power-of-two number of shards (WithShards):
//
//   - The exact tier indexes every subscription whose filter names a
//     concrete context-type pattern, keyed by that pattern in the shard the
//     pattern hashes to. A publish resolves its target set by looking up the
//     event's type, each of its ancestors in the dotted hierarchy, and the
//     members of its declared semantic-equivalence class — a handful of O(1)
//     map probes whose cost is independent of the total number of
//     subscriptions. The per-event key set is memoised in a copy-on-write
//     cache invalidated by the type registry's equivalence generation.
//   - The residual tier holds the remaining subscriptions — wildcard or
//     empty type patterns — which genuinely need per-event matching. Each
//     residual subscription lives in the shard its id hashes to; publishes
//     skip the residual scan entirely while the tier is empty.
//
// Because shards are independent, concurrent publishers on different
// context types never contend on a lock, and subscription churn in one
// shard does not serialise publishes through the others. Target slices are
// pooled, so a publish resolved purely through the exact index performs no
// allocation. Per-shard publish/deliver/drop counters and the bus-wide
// index-hit/residual-scan ratio (IndexHitRatio) make the index's
// effectiveness observable.
//
// # Batched delivery
//
// The pipeline is batch-native end to end. PublishAll accepts a slice of
// events and walks it in runs of consecutive same-type events, resolving
// the index once per run and appending each subscriber's share of the run
// to its ring buffer under a single lock acquisition with one wakeup.
// Delivery loops drain everything queued since the last wakeup into a
// reused slice and hand it to a BatchHandler in one call; single-event
// Handlers are adapted transparently, so per-event subscribers observe
// identical semantics while batch-aware consumers (SubscribeBatch) amortise
// their own downstream costs across the burst.
package eventbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

// DropPolicy selects behaviour when a subscriber's queue is full.
type DropPolicy int

const (
	// DropOldest discards the oldest queued event to admit the new one
	// (default: context data is freshest-wins).
	DropOldest DropPolicy = iota + 1
	// DropNewest discards the incoming event.
	DropNewest
)

// DefaultQueueLen is the per-subscription queue capacity when none is given.
const DefaultQueueLen = 64

// DefaultShards is the number of lock stripes when none is configured.
const DefaultShards = 8

// maxShards bounds WithShards to keep per-publish residual sweeps and
// shard-stat snapshots cheap.
const maxShards = 1024

// maxKeyCacheTypes bounds the memoised event-type → lookup-keys table; a
// running system sees few distinct event types, so the bound exists only to
// survive adversarial type churn.
const maxKeyCacheTypes = 4096

// ErrClosed is returned when operating on a closed Bus or subscription.
var ErrClosed = errors.New("eventbus: closed")

// Handler consumes delivered events. Handlers run on the subscription's
// delivery goroutine: they may block that subscription only.
type Handler func(event.Event)

// BatchHandler consumes delivered events a slice at a time: the delivery
// goroutine drains everything queued since the last wakeup and hands it over
// in one call, so consumers that can amortise per-event overhead (wire
// encoding, lock acquisition, fsync) see the whole backlog at once. The
// slice is reused between invocations; handlers must not retain it.
// Single-event Handlers are adapted onto this interface by Subscribe.
type BatchHandler func([]event.Event)

// Stats counts bus activity; retrieved via Bus.Stats.
type Stats struct {
	Published uint64 // events accepted by Publish
	Delivered uint64 // handler invocations completed
	Dropped   uint64 // events discarded by full queues
	Subs      int    // current live subscriptions
	// QuotaRejected counts events refused by per-publisher admission
	// control (WithQuota) before any dispatch work.
	QuotaRejected uint64
	// IndexHits counts targets resolved through the exact-pattern index.
	IndexHits uint64
	// ResidualScanned counts residual-tier filter evaluations: wildcard
	// subscriptions examined one by one per publish.
	ResidualScanned uint64
}

// ShardStats is one lock stripe's view of the dispatch load.
type ShardStats struct {
	Published uint64 // events whose type hashed to this shard
	Delivered uint64 // deliveries completed by subscriptions in this shard
	Dropped   uint64 // events discarded by full queues in this shard
	Patterns  int    // distinct exact-tier patterns indexed here
	Exact     int    // live exact-tier subscriptions
	Residual  int    // live residual-tier subscriptions
}

// Option configures a Bus.
type Option func(*Bus)

// WithShards sets the number of lock stripes (rounded up to a power of two,
// clamped to [1, 1024]). More shards reduce publisher contention at the cost
// of slightly dearer residual sweeps and stat snapshots.
func WithShards(n int) Option {
	return func(b *Bus) { b.nshards = n }
}

// maxDropSources bounds each stripe's per-publisher drop table; an
// overflowing population (adversarial source churn) folds into the nil-GUID
// bucket so the table cannot grow without bound.
const maxDropSources = 4096

// shard is one lock stripe: a slice of the exact-pattern index plus a slice
// of the residual (wildcard) list, with its own dispatch counters.
type shard struct {
	mu       sync.RWMutex
	exact    map[ctxtype.Type][]*Subscription // guarded by mu
	residual []*Subscription                  // guarded by mu

	// nresidual mirrors len(residual) so publishes can skip empty stripes
	// without taking the lock — with many stripes and few wildcard
	// subscriptions, the sweep costs one atomic load per stripe.
	nresidual atomic.Int64

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64

	// dropTab attributes every event discarded from a full queue in this
	// stripe to its publisher (the attribution key the enqueue carried, or
	// the discarded event's own Source). The table is copy-on-write — a
	// drop during an overload storm costs one pointer load, one map read
	// and one atomic add, no lock and no allocation; only the first drop
	// from a new publisher takes dropMu to install a fresh table.
	//
	//lint:lockorder eventbus.Subscription.mu < eventbus.shard.dropMu drop attribution runs under a subscription's lock; dropMu is a leaf and takes nothing
	dropMu  sync.Mutex // guards table installs only
	dropTab atomic.Pointer[srcDropTable]

	// quotaTab holds the per-publisher admission buckets homed in this
	// stripe (the stripe the publisher's id hashes to), with the same
	// copy-on-write install discipline and nil-GUID overflow bucket as
	// dropTab. Unused (never populated) when the bus has no quota.
	quotaMu  sync.Mutex // guards table installs only
	quotaTab atomic.Pointer[srcQuotaTable]
}

// srcDropTable is an immutable snapshot of a stripe's per-publisher drop
// counters; the counters themselves are shared across snapshots and
// mutated atomically.
type srcDropTable struct {
	counts map[guid.GUID]*atomic.Uint64
}

// dropCounter returns the stripe's drop counter for one publisher,
// installing it on first use (beyond maxDropSources, the nil-GUID overflow
// bucket). Safe to call under a subscription's lock: the fast path is
// lock-free and the install path takes only dropMu, a leaf lock.
//
//lint:hotpath
func (sh *shard) dropCounter(src guid.GUID) *atomic.Uint64 {
	if t := sh.dropTab.Load(); t != nil {
		if c, ok := t.counts[src]; ok {
			return c
		}
	}
	sh.dropMu.Lock()
	defer sh.dropMu.Unlock()
	var old map[guid.GUID]*atomic.Uint64
	if t := sh.dropTab.Load(); t != nil {
		if c, ok := t.counts[src]; ok {
			return c // lost the install race
		}
		old = t.counts
	}
	key := src
	if len(old) >= maxDropSources {
		if c, ok := old[guid.Nil]; ok {
			return c
		}
		key = guid.Nil // overflow bucket
	}
	//lint:allow hotpath cold install path: once per new publisher per stripe, behind the lock-free table hit
	nm := make(map[guid.GUID]*atomic.Uint64, len(old)+1)
	for k, v := range old {
		nm[k] = v
	}
	//lint:allow hotpath cold install path: one counter per new publisher, never per drop
	c := &atomic.Uint64{}
	nm[key] = c
	//lint:allow hotpath cold install path: one table copy per new publisher per stripe
	sh.dropTab.Store(&srcDropTable{counts: nm})
	return c
}

// keyTable memoises event type → index lookup keys for one equivalence
// generation of the registry. It is immutable once published; misses install
// a fresh copy (copy-on-write), so readers never take a lock.
type keyTable struct {
	gen  uint64
	keys map[ctxtype.Type][]ctxtype.Type
}

// Bus is a concurrent publish/subscribe dispatcher. Construct with New.
type Bus struct {
	reg     *ctxtype.Registry // optional: enables semantic-equivalence matching
	nshards int
	shards  []*shard
	mask    uint32

	closed  atomic.Bool
	closeMu sync.Mutex // serialises Close against itself

	published       atomic.Uint64
	delivered       atomic.Uint64
	dropped         atomic.Uint64
	indexHits       atomic.Uint64
	residualScanned atomic.Uint64
	residuals       atomic.Int64 // live residual subs; publishes skip the sweep at 0

	keys atomic.Pointer[keyTable]

	// quota, when non-nil, is the per-publisher admission config; the
	// disabled path costs one nil check per publish.
	quota         *Quota
	quotaRejected atomic.Uint64

	wg sync.WaitGroup
}

// New constructs a Bus. reg may be nil, in which case filters match on the
// type hierarchy only.
func New(reg *ctxtype.Registry, opts ...Option) *Bus {
	b := &Bus{reg: reg, nshards: DefaultShards}
	for _, o := range opts {
		o(b)
	}
	n := 1
	for n < b.nshards && n < maxShards {
		n <<= 1
	}
	b.nshards = n
	b.mask = uint32(n - 1)
	b.shards = make([]*shard, n)
	for i := range b.shards {
		b.shards[i] = &shard{exact: make(map[ctxtype.Type][]*Subscription)}
	}
	return b
}

// Shards returns the number of lock stripes.
func (b *Bus) Shards() int { return b.nshards }

// typeShard returns the stripe a pattern hashes to (FNV-1a, allocation-free).
func (b *Bus) typeShard(t ctxtype.Type) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(t); i++ {
		h ^= uint32(t[i])
		h *= 16777619
	}
	return b.shards[h&b.mask]
}

// idShard returns the stripe a residual subscription's id hashes to. Byte 0
// is the kind tag (constant across subscriptions), so hash the random bytes.
func (b *Bus) idShard(id guid.GUID) *shard {
	return b.shards[binary.BigEndian.Uint32(id[1:5])&b.mask]
}

// entry is one slot of a subscription's delivery ring: either a single
// event (per-event Publish) or a run — a slice of a batch shared, immutably,
// by every subscriber the run matched. Sharing runs makes a batched publish
// cost one slice header per subscriber instead of one struct copy per
// subscriber per event.
type entry struct {
	e   event.Event
	run []event.Event // non-nil: a shared batched run; never written through
	// pub is the publisher/endpoint the entry's events are attributed to for
	// drop accounting; nil means attribute each discarded event to its own
	// Source. Wire and overlay ingest set it to the sending endpoint so
	// credit acks can blame the link whose traffic is being lost.
	pub guid.GUID
}

// attribution returns the publisher a discarded event from this entry
// counts against: the explicit key when one was given, the event's own
// producer otherwise.
func (en *entry) attribution(e event.Event) guid.GUID {
	if !en.pub.IsNil() {
		return en.pub
	}
	return e.Source
}

// events reports the entry's weight against the queue's event capacity.
func (en *entry) events() int {
	if en.run != nil {
		return len(en.run)
	}
	return 1
}

// Subscription is one consumer's registration with the bus.
type Subscription struct {
	id     guid.GUID
	filter event.Filter
	owner  guid.GUID // the subscribing entity, for bookkeeping/diagnostics
	bus    *Bus

	// Index placement, fixed at Subscribe time.
	shard    *shard
	key      ctxtype.Type // exact-tier pattern ("" when residual)
	residual bool
	// matchAll is set when the filter's non-index constraints accept every
	// event, letting a batched publish admit a whole run without per-event
	// evaluation.
	matchAll bool

	mu     sync.Mutex
	queue  []entry // guarded by mu; ring of entries; capacity bounds total queued *events*
	head   int     // guarded by mu
	count  int     // guarded by mu; entries in the ring
	events int     // guarded by mu; events across those entries
	policy DropPolicy
	wake   chan struct{}
	closed bool // guarded by mu

	oneShot bool
	fired   atomic.Bool
}

// SubOption configures a subscription.
type SubOption func(*Subscription)

// WithQueueLen sets the bounded queue capacity in events (min 1).
func WithQueueLen(n int) SubOption {
	return func(s *Subscription) {
		if n < 1 {
			n = 1
		}
		//lint:allow guardedby options run at Subscribe time, before the subscription is indexed
		s.queue = make([]entry, n)
	}
}

// WithPolicy sets the full-queue policy.
func WithPolicy(p DropPolicy) SubOption {
	return func(s *Subscription) { s.policy = p }
}

// WithOwner records the subscribing entity's GUID.
func WithOwner(owner guid.GUID) SubOption {
	return func(s *Subscription) { s.owner = owner }
}

// OneShot makes the subscription cancel itself after the first delivery —
// the paper's "one-time subscription" query mode.
func OneShot() SubOption {
	return func(s *Subscription) { s.oneShot = true }
}

// Subscribe registers h for events matching f. The returned Subscription
// must be Cancelled when no longer needed.
//
// Filters naming a concrete type pattern are placed in the exact index under
// that pattern; wildcard and untyped filters join the residual tier.
//
// The handler is adapted onto the batch delivery loop: each wakeup drains
// the queue and invokes h once per drained event, preserving order.
func (b *Bus) Subscribe(f event.Filter, h Handler, opts ...SubOption) (*Subscription, error) {
	if h == nil {
		return nil, errors.New("eventbus: nil handler")
	}
	return b.subscribe(f, func(events []event.Event) {
		for i := range events {
			h(events[i])
		}
	}, opts)
}

// SubscribeBatch registers h for events matching f, delivering everything
// queued since the last wakeup as one slice per invocation. Otherwise
// identical to Subscribe.
func (b *Bus) SubscribeBatch(f event.Filter, h BatchHandler, opts ...SubOption) (*Subscription, error) {
	if h == nil {
		return nil, errors.New("eventbus: nil handler")
	}
	return b.subscribe(f, h, opts)
}

func (b *Bus) subscribe(f event.Filter, h BatchHandler, opts []SubOption) (*Subscription, error) {
	s := &Subscription{
		id:     guid.New(guid.KindSubscription),
		filter: f,
		bus:    b,
		policy: DropOldest,
		wake:   make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(s)
	}
	if s.queue == nil {
		s.queue = make([]entry, DefaultQueueLen)
	}

	s.residual = f.Type == "" || f.Type == ctxtype.Wildcard
	// Exact-tier type constraints are resolved by the index and residual
	// filters are untyped, so in both tiers a filter with no further
	// constraints accepts every candidate event.
	s.matchAll = f.Source.IsNil() && f.Subject.IsNil() && f.Range.IsNil() && f.MinQuality <= 0
	if s.residual {
		s.shard = b.idShard(s.id)
	} else {
		s.key = f.Type
		s.shard = b.typeShard(f.Type)
	}

	sh := s.shard
	sh.mu.Lock()
	// Re-checked under the stripe lock: Close sets the flag before sweeping
	// the stripes, so either we observe it here or Close observes us there.
	if b.closed.Load() {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	if s.residual {
		sh.residual = append(sh.residual, s)
		sh.nresidual.Add(1)
		b.residuals.Add(1)
	} else {
		sh.exact[s.key] = append(sh.exact[s.key], s)
	}
	b.wg.Add(1)
	sh.mu.Unlock()

	go func() {
		defer b.wg.Done()
		s.deliverLoop(h)
	}()
	return s, nil
}

// lookupKeys returns the exact-tier patterns an event of type t can match:
// t itself, each ancestor in the dotted hierarchy, and the members of t's
// declared equivalence class. The result is memoised per registry
// generation, so the hot path is a single map probe with no allocation.
//
//lint:hotpath
func (b *Bus) lookupKeys(t ctxtype.Type) []ctxtype.Type {
	var gen uint64
	if b.reg != nil {
		gen = b.reg.Generation()
	}
	kt := b.keys.Load()
	if kt != nil && kt.gen == gen {
		if ks, ok := kt.keys[t]; ok {
			return ks
		}
	}
	//lint:allow hotpath cache miss: once per new event type per registry generation
	ks := computeKeys(t, b.reg)
	//lint:allow hotpath cache miss: copy-on-write rebuild, amortised over every later hit
	nm := make(map[ctxtype.Type][]ctxtype.Type, 8)
	if kt != nil && kt.gen == gen && len(kt.keys) < maxKeyCacheTypes {
		for k, v := range kt.keys {
			nm[k] = v
		}
	}
	nm[t] = ks
	// A concurrent miss may overwrite this install; the loser's entry is
	// simply recomputed on its next publish.
	//lint:allow hotpath cache miss: the installed table is what makes the hit path allocation-free
	b.keys.Store(&keyTable{gen: gen, keys: nm})
	return ks
}

func computeKeys(t ctxtype.Type, reg *ctxtype.Registry) []ctxtype.Type {
	keys := make([]ctxtype.Type, 0, 4)
	for a := t; a != ""; a = a.Parent() {
		keys = append(keys, a)
	}
	if reg != nil {
	equiv:
		for _, eq := range reg.EquivSet(t) {
			for _, k := range keys {
				if k == eq {
					continue equiv
				}
			}
			keys = append(keys, eq)
		}
	}
	return keys
}

// targetPool recycles per-publish target slices across all buses.
var targetPool = sync.Pool{
	New: func() any {
		s := make([]*Subscription, 0, 16)
		return &s
	},
}

// Publish dispatches e to every matching subscription. It never blocks on
// slow consumers. Publish on a closed bus returns ErrClosed.
//
// Targets are resolved through the exact index (O(1) per lookup key) plus a
// sweep of the residual tier when it is non-empty; concurrent publishes on
// context types in different shards proceed without contending.
func (b *Bus) Publish(e event.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if b.closed.Load() {
		return ErrClosed
	}
	if b.quota != nil {
		ok, err := b.admitOne(e)
		if !ok {
			return err
		}
	}

	tp := targetPool.Get().(*[]*Subscription)
	targets := (*tp)[:0]

	// computeKeys puts the event's own type first, so the first iteration's
	// stripe doubles as the per-type counter's home — one hash, not two.
	var home *shard
	for _, k := range b.lookupKeys(e.Type) {
		sh := b.typeShard(k)
		if home == nil {
			home = sh
		}
		sh.mu.RLock()
		for _, s := range sh.exact[k] {
			if s.filter.MatchesRest(e) {
				targets = append(targets, s)
			}
		}
		sh.mu.RUnlock()
	}
	if hits := uint64(len(targets)); hits > 0 {
		b.indexHits.Add(hits)
	}

	if b.residuals.Load() > 0 {
		var scanned uint64
		for _, sh := range b.shards {
			if sh.nresidual.Load() == 0 {
				continue
			}
			sh.mu.RLock()
			scanned += uint64(len(sh.residual))
			for _, s := range sh.residual {
				if s.filter.MatchesIn(e, b.reg) {
					targets = append(targets, s)
				}
			}
			sh.mu.RUnlock()
		}
		if scanned > 0 {
			b.residualScanned.Add(scanned)
		}
	}

	b.published.Add(1)
	home.published.Add(1)
	for _, s := range targets {
		if n := s.enqueue(e); n > 0 {
			b.dropped.Add(uint64(n))
			s.shard.dropped.Add(uint64(n))
		}
	}
	for i := range targets {
		targets[i] = nil
	}
	*tp = targets[:0]
	targetPool.Put(tp)
	return nil
}

// PublishAll dispatches a batch of events in one call. The batch is copied
// once into a shared immutable buffer and walked as runs of consecutive
// events sharing a concrete type; for each run the exact index is resolved
// once and the residual tier swept once (rather than per event), and every
// matching subscription receives the run as a single ring entry — one slice
// header, one lock acquisition, one wakeup — instead of a per-event struct
// copy. Relative event order is preserved for every subscriber, and the
// caller's slice may be reused immediately.
//
// The whole batch is validated up front; on a validation error nothing is
// published. PublishAll on a closed bus returns ErrClosed.
func (b *Bus) PublishAll(events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	for i := range events {
		if err := events[i].Validate(); err != nil {
			return err
		}
	}
	if b.closed.Load() {
		return ErrClosed
	}
	if b.quota != nil {
		admitted, err := b.admitBatch(guid.Nil, events)
		if err != nil {
			return err
		}
		if len(admitted) == 0 {
			return nil
		}
		events = admitted
	}

	// One copy for the whole fan-out: subscriber rings hold views of this
	// buffer, so it must not alias the caller's (reusable) slice.
	shared := make([]event.Event, len(events))
	copy(shared, events)
	b.dispatchRuns(shared, guid.Nil)
	return nil
}

// PublishAllOwned is PublishAll for callers that hand the slice over: the
// bus retains it and shares views of it with subscriber rings, so the
// caller must never read or write it again. It exists to spare batch
// pipelines that already build a private slice per batch (the mediator's
// stamping layer, wire ingest) the defensive copy.
func (b *Bus) PublishAllOwned(events []event.Event) error {
	return b.PublishAllOwnedFrom(guid.Nil, events)
}

// PublishAllOwnedFrom is PublishAllOwned with an explicit drop-attribution
// key: every event of the batch later discarded from a full subscription
// queue is counted against pub (readable through DropsFor) instead of the
// event's own Source. Wire and overlay ingest pass the sending endpoint, so
// a credit ack can report the drops that endpoint's traffic caused — not
// the Range-wide total, and not the blameless co-tenant whose event a flood
// happened to evict. A nil pub falls back to per-event Source attribution.
func (b *Bus) PublishAllOwnedFrom(pub guid.GUID, events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	for i := range events {
		if err := events[i].Validate(); err != nil {
			return err
		}
	}
	if b.closed.Load() {
		return ErrClosed
	}
	if b.quota != nil {
		admitted, err := b.admitBatch(pub, events)
		if err != nil {
			return err
		}
		if len(admitted) == 0 {
			return nil
		}
		events = admitted
	}
	b.dispatchRuns(events, pub)
	return nil
}

// dispatchRuns walks a validated, bus-owned batch in type-runs and fans
// each run out to its matching subscriptions, attributing eventual drops to
// pub (nil: to each event's own Source).
//
//lint:hotpath
func (b *Bus) dispatchRuns(shared []event.Event, pub guid.GUID) {
	tp := targetPool.Get().(*[]*Subscription)
	targets := (*tp)[:0]

	for i := 0; i < len(shared); {
		j := i + 1
		for j < len(shared) && shared[j].Type == shared[i].Type {
			j++
		}
		run := shared[i:j]
		t := run[0].Type
		i = j

		targets = targets[:0]
		var home *shard
		for _, k := range b.lookupKeys(t) {
			sh := b.typeShard(k)
			if home == nil {
				home = sh
			}
			sh.mu.RLock()
			targets = append(targets, sh.exact[k]...)
			sh.mu.RUnlock()
		}
		if b.residuals.Load() > 0 {
			var scanned uint64
			for _, sh := range b.shards {
				if sh.nresidual.Load() == 0 {
					continue
				}
				sh.mu.RLock()
				scanned += uint64(len(sh.residual))
				targets = append(targets, sh.residual...)
				sh.mu.RUnlock()
			}
			if scanned > 0 {
				b.residualScanned.Add(scanned)
			}
		}

		b.published.Add(uint64(len(run)))
		home.published.Add(uint64(len(run)))

		var hits uint64
		for _, s := range targets {
			toSend := run
			if !s.matchAll {
				nmatch := 0
				for k := range run {
					if s.matchesEvent(run[k], b.reg) {
						nmatch++
					}
				}
				if nmatch == 0 {
					continue
				}
				if nmatch < len(run) {
					// Partial match: materialise this target's subset. It is
					// retained by the ring, so it cannot come from a reused
					// scratch buffer.
					//lint:allow hotpath partial-match subset is retained by the ring and must be owned memory
					ms := make([]event.Event, 0, nmatch)
					for k := range run {
						if s.matchesEvent(run[k], b.reg) {
							ms = append(ms, run[k])
						}
					}
					toSend = ms
				}
			}
			if !s.residual {
				hits += uint64(len(toSend))
			}
			if n := s.enqueueRun(toSend, pub); n > 0 {
				b.dropped.Add(uint64(n))
				s.shard.dropped.Add(uint64(n))
			}
		}
		if hits > 0 {
			b.indexHits.Add(hits)
		}
	}

	for i := range targets {
		targets[i] = nil
	}
	*tp = targets[:0]
	targetPool.Put(tp)
}

// matchesEvent applies the subscription's filter to one event: exact-tier
// subscriptions had their type constraint resolved by the index, so only
// the residual constraints remain; residual-tier filters match in full.
func (s *Subscription) matchesEvent(e event.Event, reg *ctxtype.Registry) bool {
	if s.residual {
		return s.filter.MatchesIn(e, reg)
	}
	return s.filter.MatchesRest(e)
}

// Stats returns a snapshot of bus counters.
func (b *Bus) Stats() Stats {
	n := 0
	for _, sh := range b.shards {
		sh.mu.RLock()
		for _, list := range sh.exact {
			n += len(list)
		}
		n += len(sh.residual)
		sh.mu.RUnlock()
	}
	return Stats{
		Published:       b.published.Load(),
		Delivered:       b.delivered.Load(),
		Dropped:         b.dropped.Load(),
		Subs:            n,
		QuotaRejected:   b.quotaRejected.Load(),
		IndexHits:       b.indexHits.Load(),
		ResidualScanned: b.residualScanned.Load(),
	}
}

// DropsFor returns the cumulative count of events discarded from full
// subscription queues attributed to the given publisher: the figure a
// flow-credit ack to that publisher's endpoint should carry. Publishers
// that never caused a drop read 0.
func (b *Bus) DropsFor(pub guid.GUID) uint64 {
	var total uint64
	for _, sh := range b.shards {
		if t := sh.dropTab.Load(); t != nil {
			if c, ok := t.counts[pub]; ok {
				total += c.Load()
			}
		}
	}
	return total
}

// DropsBySource returns a merged snapshot of the per-publisher drop
// attribution across all stripes. The nil-GUID key, when present, is the
// overflow bucket of publishers beyond the per-stripe tracking bound.
func (b *Bus) DropsBySource() map[guid.GUID]uint64 {
	out := make(map[guid.GUID]uint64)
	for _, sh := range b.shards {
		if t := sh.dropTab.Load(); t != nil {
			for src, c := range t.counts {
				out[src] += c.Load()
			}
		}
	}
	return out
}

// ShardStats returns a per-stripe snapshot of dispatch load, index ordered.
func (b *Bus) ShardStats() []ShardStats {
	out := make([]ShardStats, len(b.shards))
	for i, sh := range b.shards {
		sh.mu.RLock()
		st := ShardStats{
			Published: sh.published.Load(),
			Delivered: sh.delivered.Load(),
			Dropped:   sh.dropped.Load(),
			Patterns:  len(sh.exact),
			Residual:  len(sh.residual),
		}
		for _, list := range sh.exact {
			st.Exact += len(list)
		}
		sh.mu.RUnlock()
		out[i] = st
	}
	return out
}

// IndexHitRatio reports the fraction of dispatch work resolved through the
// exact index: hits / (hits + residual evaluations). It is 1 when every
// publish resolved via the index and approaches 0 when wildcard scans
// dominate; with no dispatch activity yet it reports 1.
func (b *Bus) IndexHitRatio() float64 {
	hits := b.indexHits.Load()
	res := b.residualScanned.Load()
	if hits+res == 0 {
		return 1
	}
	return float64(hits) / float64(hits+res)
}

// SubscriptionIDs returns the ids of live subscriptions (sorted, for tests
// and the registrar's diagnostics).
func (b *Bus) SubscriptionIDs() []guid.GUID {
	var out []guid.GUID
	for _, sh := range b.shards {
		sh.mu.RLock()
		for _, list := range sh.exact {
			for _, s := range list {
				out = append(out, s.id)
			}
		}
		for _, s := range sh.residual {
			out = append(out, s.id)
		}
		sh.mu.RUnlock()
	}
	guid.Sort(out)
	return out
}

// CancelOwned cancels every subscription owned by the given entity; used by
// the Mediator when an entity departs its Range (Section 3.4). It returns
// the number cancelled.
func (b *Bus) CancelOwned(owner guid.GUID) int {
	var victims []*Subscription
	for _, sh := range b.shards {
		sh.mu.RLock()
		for _, list := range sh.exact {
			for _, s := range list {
				if s.owner == owner {
					victims = append(victims, s)
				}
			}
		}
		for _, s := range sh.residual {
			if s.owner == owner {
				victims = append(victims, s)
			}
		}
		sh.mu.RUnlock()
	}
	for _, s := range victims {
		s.Cancel()
	}
	return len(victims)
}

// Close cancels all subscriptions and waits for delivery goroutines to exit.
// Further Publish/Subscribe calls fail with ErrClosed.
func (b *Bus) Close() {
	b.closeMu.Lock()
	if b.closed.Load() {
		b.closeMu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed.Store(true)
	var victims []*Subscription
	for _, sh := range b.shards {
		sh.mu.Lock()
		for key, list := range sh.exact {
			victims = append(victims, list...)
			delete(sh.exact, key)
		}
		victims = append(victims, sh.residual...)
		sh.residual = nil
		sh.nresidual.Store(0)
		sh.mu.Unlock()
	}
	b.residuals.Store(0)
	b.closeMu.Unlock()
	for _, s := range victims {
		s.Cancel()
	}
	b.wg.Wait()
}

// ID returns the subscription identifier.
func (s *Subscription) ID() guid.GUID { return s.id }

// Owner returns the subscribing entity's GUID (may be nil).
func (s *Subscription) Owner() guid.GUID { return s.owner }

// Filter returns the subscription's filter.
func (s *Subscription) Filter() event.Filter { return s.filter }

// Cancel removes the subscription and stops its delivery goroutine. Queued
// but undelivered events are discarded. Cancel is idempotent.
func (s *Subscription) Cancel() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Wake the delivery loop so it observes closure.
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.detach()
}

// detach removes the subscription from its stripe's index. Only the Cancel
// call that flipped s.closed reaches here, so removal runs at most once; a
// Close that already swept the stripe leaves nothing to remove.
func (s *Subscription) detach() {
	sh := s.shard
	sh.mu.Lock()
	if s.residual {
		for i, v := range sh.residual {
			if v == s {
				last := len(sh.residual) - 1
				sh.residual[i] = sh.residual[last]
				sh.residual[last] = nil
				sh.residual = sh.residual[:last]
				sh.nresidual.Add(-1)
				s.bus.residuals.Add(-1)
				break
			}
		}
	} else {
		list := sh.exact[s.key]
		for i, v := range list {
			if v == s {
				last := len(list) - 1
				list[i] = list[last]
				list[last] = nil
				list = list[:last]
				if len(list) == 0 {
					delete(sh.exact, s.key)
				} else {
					sh.exact[s.key] = list
				}
				break
			}
		}
	}
	sh.mu.Unlock()
}

// evictOldestLocked discards the single oldest queued event — the head of
// the head entry's run, or the head entry itself when it holds one event —
// and returns the publisher the discarded event is attributed to.
func (s *Subscription) evictOldestLocked() guid.GUID {
	en := &s.queue[s.head]
	s.events--
	if en.run != nil {
		src := en.attribution(en.run[0])
		en.run = en.run[1:]
		if len(en.run) > 0 {
			return src
		}
		s.queue[s.head] = entry{}
		s.head = (s.head + 1) % len(s.queue)
		s.count--
		return src
	}
	src := en.attribution(en.e)
	s.queue[s.head] = entry{}
	s.head = (s.head + 1) % len(s.queue)
	s.count--
	return src
}

// pushLocked appends en to the ring. The caller has checked capacity: the
// ring array can always hold the entry, because every entry carries at
// least one event and total queued events are bounded by the array length.
func (s *Subscription) pushLocked(en entry) {
	s.queue[(s.head+s.count)%len(s.queue)] = en
	s.count++
	s.events += en.events()
}

// enqueue adds e to the ring buffer, applying the drop policy. It returns
// the number of events discarded by the call: 0 when e was admitted with no
// eviction, 1 when the queue was full (either e itself under DropNewest, or
// the evicted oldest event under DropOldest). A closed subscription admits
// nothing and drops nothing.
func (s *Subscription) enqueue(e event.Event) int {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	admitted := true
	dropped := 0
	if s.events == len(s.queue) {
		dropped = 1
		if s.policy == DropNewest {
			admitted = false
			s.shard.dropCounter(e.Source).Add(1)
		} else {
			s.shard.dropCounter(s.evictOldestLocked()).Add(1)
		}
	}
	if admitted {
		slot := &s.queue[(s.head+s.count)%len(s.queue)]
		slot.e = e
		slot.run = nil
		slot.pub = guid.Nil
		s.count++
		s.events++
	}
	s.mu.Unlock()
	if admitted {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return dropped
}

// enqueueRun appends a shared batched run to the ring as one entry — one
// lock acquisition, one slice header, at most one wakeup — with drop
// accounting identical to enqueueing the run's events one at a time: every
// discarded event is attributed to its publisher (pub when set, its own
// Source otherwise), whichever entry it was discarded from. The run is
// retained by the ring and must never be written to again. It returns the
// number of events discarded; a closed subscription admits nothing and
// drops nothing.
//
//lint:hotpath
func (s *Subscription) enqueueRun(run []event.Event, pub guid.GUID) int {
	if len(run) == 0 {
		return 0
	}
	// dropRun attributes a clipped stretch of the incoming run: one counter
	// add when the whole ingest carries an attribution key, per-event
	// Source otherwise.
	//lint:allow hotpath non-escaping closure, stack-allocated; the benchmark holds it to zero
	dropRun := func(clipped []event.Event) {
		if !pub.IsNil() {
			s.shard.dropCounter(pub).Add(uint64(len(clipped)))
			return
		}
		for i := range clipped {
			s.shard.dropCounter(clipped[i].Source).Add(1)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	capEvents := len(s.queue)
	dropped := 0
	admitted := true
	if s.policy == DropNewest {
		free := capEvents - s.events
		if free <= 0 {
			admitted = false
			dropped = len(run)
			dropRun(run)
		} else if len(run) > free {
			dropped = len(run) - free
			dropRun(run[free:])
			run = run[:free]
		}
	} else { // DropOldest: final content is the newest capEvents events
		if len(run) >= capEvents {
			dropped = s.events + len(run) - capEvents
			for s.count > 0 {
				s.shard.dropCounter(s.evictOldestLocked()).Add(1)
			}
			dropRun(run[:len(run)-capEvents])
			run = run[len(run)-capEvents:]
		} else {
			for s.events+len(run) > capEvents {
				dropped++
				s.shard.dropCounter(s.evictOldestLocked()).Add(1)
			}
		}
	}
	if admitted {
		s.pushLocked(entry{run: run, pub: pub})
	}
	s.mu.Unlock()
	if admitted {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return dropped
}

// drain appends every queued event to buf under one lock acquisition and
// empties the ring, returning the extended buffer and the closed flag (read
// under the same lock, saving the delivery loop a second acquisition per
// wakeup cycle).
func (s *Subscription) drain(buf []event.Event) ([]event.Event, bool) {
	s.mu.Lock()
	n := len(s.queue)
	for s.count > 0 {
		en := s.queue[s.head]
		s.queue[s.head] = entry{}
		s.head = (s.head + 1) % n
		s.count--
		if en.run != nil {
			buf = append(buf, en.run...)
		} else {
			buf = append(buf, en.e)
		}
	}
	s.events = 0
	closed := s.closed
	s.mu.Unlock()
	return buf, closed
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// deliverLoop drains the ring into a reused slice per wakeup and hands the
// whole backlog to the batch handler in one call, so a consumer behind a
// burst pays the wakeup and lock cost once per burst instead of per event.
func (s *Subscription) deliverLoop(h BatchHandler) {
	var buf []event.Event
	for {
		var closed bool
		buf, closed = s.drain(buf[:0])
		if len(buf) == 0 {
			if closed {
				return
			}
			<-s.wake
			continue
		}
		if s.oneShot {
			if !s.fired.CompareAndSwap(false, true) {
				return
			}
			h(buf[:1])
			s.bus.delivered.Add(1)
			s.shard.delivered.Add(1)
			s.Cancel()
			return
		}
		h(buf)
		s.bus.delivered.Add(uint64(len(buf)))
		s.shard.delivered.Add(uint64(len(buf)))
		for i := range buf {
			buf[i] = event.Event{} // release payload references while buf is pooled
		}
	}
}

// String implements fmt.Stringer for diagnostics.
func (s *Subscription) String() string {
	return fmt.Sprintf("sub{%s %s}", s.id.Short(), s.filter)
}
