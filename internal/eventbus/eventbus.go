// Package eventbus provides the in-process publish/subscribe fabric that a
// Range's Event Mediator is built on.
//
// The paper's hybrid communication model (Section 4) combines distributed
// events with point-to-point communication. Within one Range, all event
// traffic between Context Entities and Context Aware Applications flows
// through a Bus: producers publish typed events; subscribers receive the
// subset matching their Filter on a bounded queue serviced by a dedicated
// delivery goroutine, so one slow consumer can never stall producers or
// other consumers.
package eventbus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

// DropPolicy selects behaviour when a subscriber's queue is full.
type DropPolicy int

const (
	// DropOldest discards the oldest queued event to admit the new one
	// (default: context data is freshest-wins).
	DropOldest DropPolicy = iota + 1
	// DropNewest discards the incoming event.
	DropNewest
)

// DefaultQueueLen is the per-subscription queue capacity when none is given.
const DefaultQueueLen = 64

// ErrClosed is returned when operating on a closed Bus or subscription.
var ErrClosed = errors.New("eventbus: closed")

// Handler consumes delivered events. Handlers run on the subscription's
// delivery goroutine: they may block that subscription only.
type Handler func(event.Event)

// Stats counts bus activity; retrieved via Bus.Stats.
type Stats struct {
	Published uint64 // events accepted by Publish
	Delivered uint64 // handler invocations completed
	Dropped   uint64 // events discarded by full queues
	Subs      int    // current live subscriptions
}

// Bus is a concurrent publish/subscribe dispatcher. Construct with New.
type Bus struct {
	reg *ctxtype.Registry // optional: enables semantic-equivalence matching

	mu     sync.RWMutex
	subs   map[guid.GUID]*Subscription
	closed bool

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64

	wg sync.WaitGroup
}

// New constructs a Bus. reg may be nil, in which case filters match on the
// type hierarchy only.
func New(reg *ctxtype.Registry) *Bus {
	return &Bus{
		reg:  reg,
		subs: make(map[guid.GUID]*Subscription),
	}
}

// Subscription is one consumer's registration with the bus.
type Subscription struct {
	id     guid.GUID
	filter event.Filter
	owner  guid.GUID // the subscribing entity, for bookkeeping/diagnostics
	bus    *Bus

	mu     sync.Mutex
	queue  []event.Event // ring buffer
	head   int
	count  int
	policy DropPolicy
	wake   chan struct{}
	closed bool

	oneShot bool
	fired   atomic.Bool
}

// SubOption configures a subscription.
type SubOption func(*Subscription)

// WithQueueLen sets the bounded queue capacity (min 1).
func WithQueueLen(n int) SubOption {
	return func(s *Subscription) {
		if n < 1 {
			n = 1
		}
		s.queue = make([]event.Event, n)
	}
}

// WithPolicy sets the full-queue policy.
func WithPolicy(p DropPolicy) SubOption {
	return func(s *Subscription) { s.policy = p }
}

// WithOwner records the subscribing entity's GUID.
func WithOwner(owner guid.GUID) SubOption {
	return func(s *Subscription) { s.owner = owner }
}

// OneShot makes the subscription cancel itself after the first delivery —
// the paper's "one-time subscription" query mode.
func OneShot() SubOption {
	return func(s *Subscription) { s.oneShot = true }
}

// Subscribe registers h for events matching f. The returned Subscription
// must be Cancelled when no longer needed.
func (b *Bus) Subscribe(f event.Filter, h Handler, opts ...SubOption) (*Subscription, error) {
	if h == nil {
		return nil, errors.New("eventbus: nil handler")
	}
	s := &Subscription{
		id:     guid.New(guid.KindSubscription),
		filter: f,
		bus:    b,
		policy: DropOldest,
		wake:   make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(s)
	}
	if s.queue == nil {
		s.queue = make([]event.Event, DefaultQueueLen)
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.subs[s.id] = s
	b.wg.Add(1)
	b.mu.Unlock()

	go func() {
		defer b.wg.Done()
		s.deliverLoop(h)
	}()
	return s, nil
}

// Publish dispatches e to every matching subscription. It never blocks on
// slow consumers. Publish on a closed bus returns ErrClosed.
func (b *Bus) Publish(e event.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrClosed
	}
	// Snapshot matching subs under read lock; enqueue outside per-sub locks.
	var targets []*Subscription
	for _, s := range b.subs {
		if s.filter.MatchesIn(e, b.reg) {
			targets = append(targets, s)
		}
	}
	b.mu.RUnlock()

	b.published.Add(1)
	for _, s := range targets {
		if n := s.enqueue(e); n > 0 {
			b.dropped.Add(uint64(n))
		}
	}
	return nil
}

// Stats returns a snapshot of bus counters.
func (b *Bus) Stats() Stats {
	b.mu.RLock()
	n := len(b.subs)
	b.mu.RUnlock()
	return Stats{
		Published: b.published.Load(),
		Delivered: b.delivered.Load(),
		Dropped:   b.dropped.Load(),
		Subs:      n,
	}
}

// SubscriptionIDs returns the ids of live subscriptions (sorted, for tests
// and the registrar's diagnostics).
func (b *Bus) SubscriptionIDs() []guid.GUID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]guid.GUID, 0, len(b.subs))
	for id := range b.subs {
		out = append(out, id)
	}
	guid.Sort(out)
	return out
}

// CancelOwned cancels every subscription owned by the given entity; used by
// the Mediator when an entity departs its Range (Section 3.4). It returns
// the number cancelled.
func (b *Bus) CancelOwned(owner guid.GUID) int {
	b.mu.RLock()
	var victims []*Subscription
	for _, s := range b.subs {
		if s.owner == owner {
			victims = append(victims, s)
		}
	}
	b.mu.RUnlock()
	for _, s := range victims {
		s.Cancel()
	}
	return len(victims)
}

// Close cancels all subscriptions and waits for delivery goroutines to exit.
// Further Publish/Subscribe calls fail with ErrClosed.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	victims := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		victims = append(victims, s)
	}
	b.mu.Unlock()
	for _, s := range victims {
		s.Cancel()
	}
	b.wg.Wait()
}

// ID returns the subscription identifier.
func (s *Subscription) ID() guid.GUID { return s.id }

// Owner returns the subscribing entity's GUID (may be nil).
func (s *Subscription) Owner() guid.GUID { return s.owner }

// Filter returns the subscription's filter.
func (s *Subscription) Filter() event.Filter { return s.filter }

// Cancel removes the subscription and stops its delivery goroutine. Queued
// but undelivered events are discarded. Cancel is idempotent.
func (s *Subscription) Cancel() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Wake the delivery loop so it observes closure.
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.bus.mu.Lock()
	delete(s.bus.subs, s.id)
	s.bus.mu.Unlock()
}

// enqueue adds e to the ring buffer, applying the drop policy. It returns
// the number of events discarded by the call: 0 when e was admitted with no
// eviction, 1 when the queue was full (either e itself under DropNewest, or
// the evicted oldest event under DropOldest). A closed subscription admits
// nothing and drops nothing.
func (s *Subscription) enqueue(e event.Event) int {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	admitted := true
	dropped := 0
	n := len(s.queue)
	if s.count == n {
		dropped = 1
		switch s.policy {
		case DropNewest:
			admitted = false
		default: // DropOldest
			s.head = (s.head + 1) % n
			s.count--
		}
	}
	if admitted {
		s.queue[(s.head+s.count)%n] = e
		s.count++
	}
	s.mu.Unlock()
	if admitted {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return dropped
}

// dequeue removes the oldest queued event.
func (s *Subscription) dequeue() (event.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return event.Event{}, false
	}
	e := s.queue[s.head]
	s.queue[s.head] = event.Event{}
	s.head = (s.head + 1) % len(s.queue)
	s.count--
	return e, true
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Subscription) deliverLoop(h Handler) {
	for {
		for {
			e, ok := s.dequeue()
			if !ok {
				break
			}
			if s.oneShot {
				if !s.fired.CompareAndSwap(false, true) {
					return
				}
			}
			h(e)
			s.bus.delivered.Add(1)
			if s.oneShot {
				s.Cancel()
				return
			}
		}
		if s.isClosed() {
			return
		}
		<-s.wake
	}
}

// String implements fmt.Stringer for diagnostics.
func (s *Subscription) String() string {
	return fmt.Sprintf("sub{%s %s}", s.id.Short(), s.filter)
}
